package fairmc_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"fairmc"
	"fairmc/conc"
	"fairmc/progs"
)

// racyConc is a lost-update bug at the conc level, used where the
// report tests need a finding.
func racyConc(t *conc.T) {
	x := conc.NewIntVar(t, "x", 0)
	wg := conc.NewWaitGroup(t, "wg", 2)
	for i := 0; i < 2; i++ {
		t.Go("inc", func(t *conc.T) {
			v := x.Load(t)
			x.Store(t, v+1)
			wg.Done(t)
		})
	}
	wg.Wait(t)
	t.Assert(x.Load(t) == 2, "lost update")
}

func encodeReport(t *testing.T, res *fairmc.Result, program string, opts fairmc.Options) []byte {
	t.Helper()
	data, err := res.RunReport(program, opts).Encode()
	if err != nil {
		t.Fatalf("encoding run report: %v", err)
	}
	return data
}

// TestRunReportParallelDeterminism: for a fixed program, options, and
// seed, the encoded run report is byte-identical at Parallelism 1 and
// 4, for both the prefix-parallel systematic search and the
// stride-parallel random walk (the latter with a finding, confirmed so
// the reproducibility verdict is exercised too).
func TestRunReportParallelDeterminism(t *testing.T) {
	spin, ok := progs.Lookup("spinloop")
	if !ok {
		t.Fatal("spinloop program missing")
	}
	cases := []struct {
		name    string
		prog    func(*conc.T)
		program string
		opts    fairmc.Options
	}{
		{"dfs-spinloop", spin.Body, "spinloop", fairmc.Options{
			Fair:         true,
			ContextBound: -1,
			MaxSteps:     10000,
		}},
		{"random-racy", racyConc, "racy-increment", fairmc.Options{
			Fair:                   true,
			RandomWalk:             true,
			MaxExecutions:          400,
			MaxSteps:               1000,
			Seed:                   3,
			ContinueAfterViolation: true,
			ConfirmRuns:            3,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var ref []byte
			for _, p := range []int{1, 4} {
				opts := tc.opts
				opts.Parallelism = p
				res, err := fairmc.Check(tc.prog, opts)
				if err != nil {
					t.Fatalf("p=%d: %v", p, err)
				}
				data := encodeReport(t, res, tc.program, opts)
				if ref == nil {
					ref = data
					continue
				}
				if !bytes.Equal(ref, data) {
					t.Fatalf("run report differs between p=1 and p=%d:\n%s\nvs\n%s", p, ref, data)
				}
			}
		})
	}
}

// TestRunReportSurvivesResume: interrupting a search at an execution
// budget, checkpointing, and resuming produces the same run report
// bytes as the uninterrupted search.
func TestRunReportSurvivesResume(t *testing.T) {
	opts := fairmc.Options{
		Fair:                   true,
		RandomWalk:             true,
		MaxExecutions:          400,
		MaxSteps:               1000,
		Seed:                   7,
		ContinueAfterViolation: true,
		ProgramName:            "racy-increment",
	}
	baseline, err := fairmc.Check(racyConc, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := encodeReport(t, baseline, "racy-increment", opts)

	path := filepath.Join(t.TempDir(), "search.ckpt")
	first := opts
	first.MaxExecutions = 150
	first.CheckpointPath = path
	rep1, err := fairmc.Check(racyConc, first)
	if err != nil {
		t.Fatal(err)
	}
	if !rep1.ExecBounded {
		t.Fatalf("first phase did not stop on the execution budget: %+v", rep1.Report)
	}
	ck, err := fairmc.LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("loading checkpoint: %v", err)
	}
	second := opts
	second.CheckpointPath = path
	second.Resume = ck
	resumed, err := fairmc.Check(racyConc, second)
	if err != nil {
		t.Fatal(err)
	}
	got := encodeReport(t, resumed, "racy-increment", second)
	if !bytes.Equal(want, got) {
		t.Fatalf("resumed run report differs from uninterrupted baseline:\n%s\nvs\n%s", want, got)
	}
}

// TestRunReportShape: spot-checks the report contents for a finding
// run — schema tag, echoed options, and a sorted findings list with
// stack-free messages.
func TestRunReportShape(t *testing.T) {
	opts := fairmc.Defaults()
	res, err := fairmc.Check(racyConc, opts)
	if err != nil {
		t.Fatal(err)
	}
	rr := res.RunReport("racy-increment", opts)
	if rr.Schema != "fairmc/run-report/v2" {
		t.Fatalf("schema = %q", rr.Schema)
	}
	if rr.Program != "racy-increment" || rr.Strategy != "dfs" {
		t.Fatalf("identity wrong: %+v", rr)
	}
	if !rr.Options.Fair || rr.Options.FairK != 1 || !rr.Options.Conformance {
		t.Fatalf("options echo wrong: %+v", rr.Options)
	}
	if len(rr.Findings) != 1 {
		t.Fatalf("findings = %+v, want one violation", rr.Findings)
	}
	f := rr.Findings[0]
	if f.Kind != "violation" || f.Execution != res.FirstBugExecution ||
		f.Message == "" || f.Reproducibility == "" {
		t.Fatalf("finding wrong: %+v", f)
	}
	if rr.Counters.Executions != res.Executions || rr.Counters.Violations == 0 {
		t.Fatalf("counters wrong: %+v", rr.Counters)
	}
}
