#!/usr/bin/env bash
# Observability smoke test: run the checker with -progress and
# -metrics-out on the spinloop fixture, validate the emitted run
# report against the checked-in JSON Schema, and require the report
# bytes to be identical at -p 1 and -p 4 (the determinism contract of
# docs/OBSERVABILITY.md).
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/fairmc" ./cmd/fairmc
fairmc="$workdir/fairmc"

"$fairmc" -prog spinloop -p 1 -progress \
    -metrics-out "$workdir/report-p1.json" \
    -events-out "$workdir/events.jsonl" > "$workdir/run.txt"
grep -q "run report written" "$workdir/run.txt" || {
    echo "FAIL: CLI did not report writing the run report"
    cat "$workdir/run.txt"
    exit 1
}

go run ./ci/validate_report.go docs/run-report.schema.json "$workdir/report-p1.json"

# The event stream must be line-delimited JSON with the expected
# lifecycle events present.
python3 - "$workdir/events.jsonl" <<'EOF'
import json, sys
types = set()
with open(sys.argv[1]) as f:
    for line in f:
        types.add(json.loads(line)["type"])
missing = {"schedule", "yield", "exec_end"} - types
if missing:
    sys.exit(f"FAIL: event stream missing types {missing} (got {types})")
print("OK: event stream is valid JSONL with", types)
EOF

"$fairmc" -prog spinloop -p 4 -metrics-out "$workdir/report-p4.json" > /dev/null
if ! cmp -s "$workdir/report-p1.json" "$workdir/report-p4.json"; then
    echo "FAIL: run report differs between -p 1 and -p 4"
    diff "$workdir/report-p1.json" "$workdir/report-p4.json" || true
    exit 1
fi

# A finding run must validate too (findings entries, reproducibility).
"$fairmc" -prog peterson-bug -metrics-out "$workdir/report-bug.json" > /dev/null || rc=$?
if [ "${rc:-0}" -ne 1 ]; then
    echo "FAIL: peterson-bug exited ${rc:-0}, want 1"
    exit 1
fi
go run ./ci/validate_report.go docs/run-report.schema.json "$workdir/report-bug.json"

echo "OK: run report validates and is identical at -p 1 and -p 4"
