#!/usr/bin/env bash
# Nondeterminism-quarantine smoke test: run the deliberately
# nondeterministic fixture end to end through the CLI and require the
# search to quarantine the diverging subtrees, warn about them, and
# still exit 0 — a quarantine is incomplete coverage, not a finding.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/fairmc" ./cmd/fairmc
fairmc="$workdir/fairmc"

rc=0
"$fairmc" -prog nondet-counter -maxexec 300 -maxsteps 2000 \
    > "$workdir/out.txt" 2>&1 || rc=$?
cat "$workdir/out.txt"

if [ "$rc" -ne 0 ]; then
    echo "FAIL: nondet-counter run exited $rc, want 0 (quarantine is a warning, not a finding)"
    exit 1
fi
grep -Eq "warning: [0-9]+ subtree\(s\) quarantined" "$workdir/out.txt" || {
    echo "FAIL: no quarantine warning in output"
    exit 1
}
grep -q "nondeterminism:" "$workdir/out.txt" || {
    echo "FAIL: no per-subtree nondeterminism report in output"
    exit 1
}

# The defense can be switched off: without conformance digests the
# fixture's hidden counter goes unnoticed and nothing is quarantined.
rc=0
"$fairmc" -prog nondet-counter -maxexec 300 -maxsteps 2000 -no-conformance \
    > "$workdir/off.txt" 2>&1 || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "FAIL: -no-conformance run exited $rc, want 0"
    cat "$workdir/off.txt"
    exit 1
fi
if grep -q "quarantined" "$workdir/off.txt"; then
    echo "FAIL: -no-conformance run still quarantined subtrees"
    cat "$workdir/off.txt"
    exit 1
fi
echo "OK: quarantine fires with conformance on, silent with it off"
