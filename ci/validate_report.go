// Command validate_report checks a fairmc run report against the
// checked-in JSON Schema, using a deliberately small validator that
// covers the subset the schema uses: type, properties, required,
// items, enum, and additionalProperties. No third-party dependency,
// which is the point — CI stays stdlib-only.
//
// Usage: go run ./ci/validate_report.go docs/run-report.schema.json report.json
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: validate_report SCHEMA DOCUMENT")
		os.Exit(2)
	}
	schema, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "schema: %v\n", err)
		os.Exit(2)
	}
	doc, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintf(os.Stderr, "document: %v\n", err)
		os.Exit(2)
	}
	var errs []string
	validate(schema.(map[string]any), doc, "$", &errs)
	if len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "schema violation:", e)
		}
		os.Exit(1)
	}
	fmt.Printf("%s conforms to %s\n", os.Args[2], os.Args[1])
}

func load(path string) (any, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, err
	}
	return v, nil
}

// validate appends a message to errs for every violation of schema at
// doc, with at as the JSONPath-ish location for diagnostics.
func validate(schema map[string]any, doc any, at string, errs *[]string) {
	if want, ok := schema["type"].(string); ok && !hasType(doc, want) {
		*errs = append(*errs, fmt.Sprintf("%s: got %s, want %s", at, typeName(doc), want))
		return
	}
	if enum, ok := schema["enum"].([]any); ok {
		found := false
		for _, v := range enum {
			if v == doc {
				found = true
				break
			}
		}
		if !found {
			*errs = append(*errs, fmt.Sprintf("%s: %v not in enum %v", at, doc, enum))
		}
	}
	switch v := doc.(type) {
	case map[string]any:
		props, _ := schema["properties"].(map[string]any)
		if req, ok := schema["required"].([]any); ok {
			for _, r := range req {
				if _, present := v[r.(string)]; !present {
					*errs = append(*errs, fmt.Sprintf("%s: missing required field %q", at, r))
				}
			}
		}
		for key, val := range v {
			sub, known := props[key]
			if !known {
				if add, ok := schema["additionalProperties"].(bool); ok && !add {
					*errs = append(*errs, fmt.Sprintf("%s: unexpected field %q", at, key))
				}
				continue
			}
			validate(sub.(map[string]any), val, at+"."+key, errs)
		}
	case []any:
		if items, ok := schema["items"].(map[string]any); ok {
			for i, el := range v {
				validate(items, el, fmt.Sprintf("%s[%d]", at, i), errs)
			}
		}
	}
}

func hasType(v any, want string) bool {
	switch want {
	case "object":
		_, ok := v.(map[string]any)
		return ok
	case "array":
		_, ok := v.([]any)
		return ok
	case "string":
		_, ok := v.(string)
		return ok
	case "boolean":
		_, ok := v.(bool)
		return ok
	case "number":
		_, ok := v.(float64)
		return ok
	case "integer":
		f, ok := v.(float64)
		return ok && f == math.Trunc(f)
	case "null":
		return v == nil
	}
	return false
}

func typeName(v any) string {
	switch v.(type) {
	case map[string]any:
		return "object"
	case []any:
		return "array"
	case string:
		return "string"
	case bool:
		return "boolean"
	case float64:
		return "number"
	case nil:
		return "null"
	}
	return fmt.Sprintf("%T", v)
}
