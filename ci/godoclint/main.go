// Command godoclint enforces godoc coverage: every exported
// identifier in the packages it is pointed at — types, functions,
// methods, and package-level consts and vars, plus exported struct
// fields under -fields — must carry a doc comment. A deliberately
// small go/ast walk, no third-party dependency, so CI stays
// stdlib-only.
//
// Usage: go run ./ci/godoclint [-fields] DIR [DIR...]
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// checkFields extends the lint to exported struct fields. Off by
// default: JSON-mirror structs with self-describing field names are
// repo idiom, but API packages opt in for full coverage.
var checkFields = flag.Bool("fields", false, "also require docs on exported struct fields")

func main() {
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: godoclint [-fields] DIR [DIR...]")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range flag.Args() {
		bad += lintDir(dir)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "godoclint: %d exported identifiers without doc comments\n", bad)
		os.Exit(1)
	}
}

// lintDir parses every non-test .go file in dir and reports exported
// identifiers missing docs; it returns how many it found.
func lintDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "godoclint: %s: %v\n", dir, err)
		os.Exit(2)
	}
	bad := 0
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		fmt.Printf("%s:%d: %s %s has no doc comment\n",
			filepath.ToSlash(p.Filename), p.Line, kind, name)
		bad++
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						kind := "function"
						if d.Recv != nil {
							kind = "method"
						}
						report(d.Pos(), kind, d.Name.Name)
					}
				case *ast.GenDecl:
					bad += lintGenDecl(d, report)
				}
			}
		}
	}
	return bad
}

// lintGenDecl checks a const/var/type block. A doc comment on the
// block covers a single-spec declaration; multi-spec blocks need (and
// grouped const/var specs may share) per-spec comments, matching how
// godoc renders them.
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) int {
	bad := 0
	kind := map[token.Token]string{token.CONST: "const", token.VAR: "var", token.TYPE: "type"}[d.Tok]
	if kind == "" {
		return 0
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && d.Doc == nil {
				report(s.Pos(), kind, s.Name.Name)
				bad++
			}
			if st, ok := s.Type.(*ast.StructType); ok && *checkFields {
				for _, f := range st.Fields.List {
					for _, n := range f.Names {
						if n.IsExported() && f.Doc == nil && f.Comment == nil {
							report(f.Pos(), "field", s.Name.Name+"."+n.Name)
							bad++
						}
					}
				}
			}
		case *ast.ValueSpec:
			if s.Doc != nil || d.Doc != nil {
				continue
			}
			for _, n := range s.Names {
				if n.IsExported() {
					report(s.Pos(), kind, n.Name)
					bad++
				}
			}
		}
	}
	return bad
}
