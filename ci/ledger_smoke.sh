#!/usr/bin/env bash
# Durable-service smoke test with real processes: run the multi-job
# checking service (-serve -ledger) with a pool worker, submit three
# jobs, and require every artifact to be byte-identical to the local
# run it mirrors. Then do it again on a fresh ledger, kill -9 the
# service mid-run, restart it on the same ledger, and require the
# exact same artifacts — the WAL recovery contract of docs/SERVICE.md.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/fairmc" ./cmd/fairmc
fairmc="$workdir/fairmc"
port=$((20000 + RANDOM % 20000))
url="http://127.0.0.1:$port"

# The job matrix: program, reference -p. spinloop exhausts cleanly,
# peterson-bug stops at a confirmed violation — both completion shapes.
progs=(spinloop peterson-bug spinloop)
pars=(2 1 1)

# Local references, through the same reporting path.
for i in 0 1 2; do
    "$fairmc" -prog "${progs[$i]}" -p "${pars[$i]}" \
        -metrics-out "$workdir/local-$i.json" > /dev/null || true
done

submit_all() {
    for i in 0 1 2; do
        "$fairmc" -submit "$url" -prog "${progs[$i]}" -p "${pars[$i]}" > /dev/null
    done
}

# wait_done LABEL: poll -status until every job reports done+[report].
wait_done() {
    local label=$1
    for _ in $(seq 300); do
        local out
        out=$("$fairmc" -status "$url" 2>/dev/null) || { sleep 0.2; continue; }
        local done_count
        done_count=$(echo "$out" | grep -c 'done.*\[report\]' || true)
        [ "$done_count" -eq 3 ] && return 0
        sleep 0.2
    done
    echo "FAIL: $label: jobs never finished"
    "$fairmc" -status "$url" || true
    exit 1
}

fetch_all() {
    local prefix=$1
    for i in 0 1 2; do
        "$fairmc" -status "$url" -job "j$((i + 1))" \
            -metrics-out "$workdir/$prefix-$i.json" > /dev/null
    done
}

check_against_local() {
    local prefix=$1 label=$2
    for i in 0 1 2; do
        if ! cmp -s "$workdir/local-$i.json" "$workdir/$prefix-$i.json"; then
            echo "FAIL: $label: j$((i + 1)) (${progs[$i]} -p ${pars[$i]}) artifact differs from local run"
            diff "$workdir/local-$i.json" "$workdir/$prefix-$i.json" || true
            exit 1
        fi
        go run ./ci/validate_report.go docs/run-report.schema.json "$workdir/$prefix-$i.json"
    done
}

# --- Pass 1: uninterrupted service run ---
mkdir -p "$workdir/ledger1" "$workdir/wd1"
"$fairmc" -serve "127.0.0.1:$port" -ledger "$workdir/ledger1" \
    > "$workdir/svc1.txt" 2>&1 &
svc=$!
sleep 0.3
"$fairmc" -worker "$url" -workdir "$workdir/wd1" -retry-base 25ms -retry-max 400ms \
    > "$workdir/pool1.txt" 2>&1 &
pool=$!
submit_all
wait_done "pass 1"
fetch_all base
check_against_local base "pass 1"
kill "$pool" 2>/dev/null || true
kill "$svc" 2>/dev/null || true
wait "$pool" "$svc" 2>/dev/null || true

# --- Pass 2: kill -9 the service mid-run, restart, same artifacts ---
mkdir -p "$workdir/ledger2" "$workdir/wd2"
"$fairmc" -serve "127.0.0.1:$port" -ledger "$workdir/ledger2" \
    > "$workdir/svc2a.txt" 2>&1 &
svc=$!
sleep 0.3
"$fairmc" -worker "$url" -workdir "$workdir/wd2" -retry-base 25ms -retry-max 400ms \
    > "$workdir/pool2a.txt" 2>&1 &
pool=$!
submit_all
# Land the kill while shards are still being committed (if the run is
# already done, the restart still has to serve artifacts from the
# ledger alone — both timings are valid recovery cases).
sleep 0.5
kill -9 "$svc"
kill "$pool" 2>/dev/null || true
wait "$pool" 2>/dev/null || true

"$fairmc" -serve "127.0.0.1:$port" -ledger "$workdir/ledger2" \
    > "$workdir/svc2b.txt" 2>&1 &
svc=$!
sleep 0.3
"$fairmc" -worker "$url" -workdir "$workdir/wd2" -retry-base 25ms -retry-max 400ms \
    > "$workdir/pool2b.txt" 2>&1 &
pool=$!
wait_done "pass 2 (after kill -9 + restart)"
fetch_all recovered
check_against_local recovered "pass 2 (after kill -9 + restart)"
if ! grep -q "re-queued\|resumed\|replay" "$workdir/svc2b.txt"; then
    # Informational only: the restart may have found everything done.
    true
fi
kill "$pool" 2>/dev/null || true
kill "$svc" 2>/dev/null || true
wait "$pool" "$svc" 2>/dev/null || true

echo "OK: service artifacts are byte-identical to local runs, including across kill -9 + WAL recovery"
