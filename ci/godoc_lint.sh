#!/usr/bin/env bash
# Godoc coverage gate: the partial-order-reduction package (home of
# the DPOR work-unit API) must document every exported identifier
# including struct fields; the search package must document every
# exported top-level identifier and method. Runs the stdlib-only
# ci/godoclint checker — no network, no third-party tools.
set -euo pipefail

cd "$(dirname "$0")/.."

go run ./ci/godoclint -fields internal/por
go run ./ci/godoclint internal/search

echo "OK: godoc coverage holds for internal/por and internal/search"
