#!/usr/bin/env bash
# Chaos smoke test: the distributed determinism contract must survive
# injected faults. Two layers:
#
#   1. The seeded in-process chaos harness under the race detector:
#      three workers behind deterministic fault injectors (drops,
#      delays, duplicates, truncations, resets, partition windows),
#      one killed mid-run, plus the spool-replay and idempotency
#      suites. Each test asserts the merged report equals a fault-free
#      local run, byte for byte.
#
#   2. A CLI-level run: coordinator + two workers started with
#      -chaos-scenario standard (different -chaos-seed each), with the
#      merged run report diffed against a fault-free local -p 2
#      baseline. Faults here hit real loopback HTTP, not an in-process
#      handler.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go test -race -count=1 \
    -run 'TestDistChaos|TestDistSpoolReplay|TestDistDuplicateResultPost|TestDistLateResultAfterRequeue|TestDistStaleWorkerID|TestDistHeartbeatMetricsDedup|TestDistLoadShedding' \
    ./internal/dist/

go build -race -o "$workdir/fairmc" ./cmd/fairmc
fairmc="$workdir/fairmc"
port=$((20000 + RANDOM % 20000))
url="http://127.0.0.1:$port"

# Fault-free baseline: spinloop is exhausted without findings, so the
# merge must cover every shard for the reports to match.
"$fairmc" -prog spinloop -p 2 -metrics-out "$workdir/local.json" > /dev/null

"$fairmc" -prog spinloop -p 2 -serve "127.0.0.1:$port" \
    -metrics-out "$workdir/chaos.json" > "$workdir/coord.txt" 2>&1 &
coord=$!
for i in 1 2; do
    "$fairmc" -worker "$url" -p 1 \
        -chaos-scenario standard -chaos-seed "$((6 + i))" \
        -retry-base 25ms -retry-max 400ms -join-timeout 15s \
        > "$workdir/w$i.txt" 2>&1 &
    eval "w$i=\$!"
done
rc=0
wait "$coord" || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "FAIL: chaos coordinator exited $rc, want 0"
    cat "$workdir/coord.txt"
    exit 1
fi
# Chaos workers may exit nonzero after the coordinator is gone (their
# last retry window can outlive the drain); only a hang is a failure.
for pid in "$w1" "$w2"; do
    for _ in $(seq 200); do
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.1
    done
    if kill -0 "$pid" 2>/dev/null; then
        echo "FAIL: chaos worker still running 20s after the coordinator exited"
        cat "$workdir/w1.txt" "$workdir/w2.txt"
        kill "$pid" 2>/dev/null || true
        exit 1
    fi
    wait "$pid" 2>/dev/null || true
done

if ! cmp -s "$workdir/local.json" "$workdir/chaos.json"; then
    echo "FAIL: run report differs between fault-free local -p 2 and chaos run"
    diff "$workdir/local.json" "$workdir/chaos.json" || true
    exit 1
fi
go run ./ci/validate_report.go docs/run-report.schema.json "$workdir/chaos.json"

echo "OK: merged run report under injected faults is byte-identical to the fault-free baseline"
