#!/usr/bin/env bash
# Markdown link checker for the repo docs: every relative link and
# every file path mentioned in backticks with a known doc/script
# extension must exist. External (http/https) links are not fetched —
# CI must not depend on the network.
set -euo pipefail

cd "$(dirname "$0")/.."

files=(README.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs/*.md)
fail=0

for f in "${files[@]}"; do
    [ -f "$f" ] || continue
    dir=$(dirname "$f")
    # Markdown link targets: [text](target), minus external and anchors.
    while IFS= read -r target; do
        target=${target%%#*}
        [ -n "$target" ] || continue
        case "$target" in
            http://*|https://*|mailto:*) continue ;;
        esac
        if ! [ -e "$dir/$target" ] && ! [ -e "$target" ]; then
            echo "FAIL: $f links to missing target: $target"
            fail=1
        fi
    done < <(grep -oE '\]\(([^)]+)\)' "$f" | sed -E 's/^\]\(//; s/\)$//')
    # Backticked repo paths like `docs/OBSERVABILITY.md` or
    # `ci/report_smoke.sh`: the named file must exist.
    while IFS= read -r path; do
        if ! [ -e "$path" ]; then
            echo "FAIL: $f mentions missing file: $path"
            fail=1
        fi
    done < <(grep -oE '`(docs|ci|cmd|internal|examples|progs)/[A-Za-z0-9._/-]+\.(md|sh|json|go)`' "$f" | tr -d '\`')
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "OK: all doc links and referenced paths resolve"
