#!/usr/bin/env bash
# Weak-memory litmus smoke test: run the litmus fixture family through
# the CLI under -mm=tso and require (a) the documented verdict for each
# fixture — SB finds its weak outcome, the fenced/control shapes
# exhaust clean — and (b) a byte-identical run report at -p 1 and -p 4:
# flush-agent steps are ordinary transitions, so TSO searches keep the
# same determinism contract as everything else.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/fairmc" ./cmd/fairmc
fairmc="$workdir/fairmc"

# prog:expected-exit (0 = clean exhaust, 1 = finding)
cases="litmus-sb:1 litmus-sb-fenced:0 litmus-mp:0 litmus-lb:0"

for case in $cases; do
    prog=${case%%:*}
    want=${case##*:}
    for p in 1 4; do
        rc=0
        "$fairmc" -prog "$prog" -mm tso -maxsteps 10000 -p "$p" \
            -metrics-out "$workdir/$prog-p$p.json" \
            > "$workdir/$prog-p$p.txt" 2>&1 || rc=$?
        if [ "$rc" -ne "$want" ]; then
            echo "FAIL: $prog -mm tso -p $p exited $rc, want $want"
            cat "$workdir/$prog-p$p.txt"
            exit 1
        fi
    done
    if ! cmp -s "$workdir/$prog-p1.json" "$workdir/$prog-p4.json"; then
        echo "FAIL: $prog -mm tso run report differs between -p 1 and -p 4"
        diff "$workdir/$prog-p1.json" "$workdir/$prog-p4.json" || true
        exit 1
    fi
done

# The weak outcome must be a memory-model finding, not a logic bug: the
# same binary under the default SC model exhausts SB clean.
rc=0
"$fairmc" -prog litmus-sb -maxsteps 10000 -p 1 \
    > "$workdir/sb-sc.txt" 2>&1 || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "FAIL: litmus-sb under SC exited $rc, want 0"
    cat "$workdir/sb-sc.txt"
    exit 1
fi

# A bounded store buffer is a different search space with the same
# contract: cap 1 forces eager flushes and SB still finds the weak
# outcome (one buffered store per thread is all it takes).
rc=0
"$fairmc" -prog litmus-sb -mm tso -tso-buf 1 -maxsteps 10000 -p 1 \
    -metrics-out "$workdir/sb-cap1.json" > "$workdir/sb-cap1.txt" 2>&1 || rc=$?
if [ "$rc" -ne 1 ]; then
    echo "FAIL: litmus-sb -mm tso -tso-buf 1 exited $rc, want 1"
    cat "$workdir/sb-cap1.txt"
    exit 1
fi

echo "OK: litmus verdicts hold under -mm=tso and reports are identical at -p 1/4"
