#!/usr/bin/env bash
# Distributed-search smoke test: run a coordinator with two worker
# processes over loopback HTTP and require the final run report to be
# byte-identical to a local run with the same -p (the determinism
# contract of docs/DISTRIBUTED.md), both on a clean search and on one
# that stops at a finding. Reports are validated against the
# checked-in JSON Schema.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/fairmc" ./cmd/fairmc
fairmc="$workdir/fairmc"
port=$((20000 + RANDOM % 20000))
url="http://127.0.0.1:$port"

# finish_worker PID LOG: a worker that joined normally exits 0 after
# the coordinator's drain. Two nonzero exits are correct behavior, not
# smoke failures: a worker that never joined (it lost the startup race
# against a search that finished first), and a worker that missed the
# coordinator's bounded post-drain grace window — on a loaded host a
# session can blip mid-search, and the rejoin loop then finds the
# finished coordinator gone and gives up once its budget expires.
# Both paths end with the worker bounding its own lifetime ("giving up
# rejoin"); nothing gets killed. Anything else nonzero is a failure.
finish_worker() {
    local pid=$1 log=$2 wrc=0
    for _ in $(seq 80); do
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.1
    done
    if kill -0 "$pid" 2>/dev/null; then
        echo "FAIL: worker still running 8s after the coordinator exited (join timeout is 5s)"
        cat "$log"
        kill "$pid" 2>/dev/null || true
        exit 1
    fi
    wait "$pid" || wrc=$?
    if [ "$wrc" -ne 0 ] && grep -q "joined" "$log" \
        && ! grep -q "giving up rejoin" "$log"; then
        echo "FAIL: joined worker exited $wrc"
        cat "$log"
        exit 1
    fi
}

# distrun PROG EXPECTED_EXIT OUT.json [EXTRA_FLAGS...]: coordinator +
# 2 workers. Workers retry joining, so start order does not matter.
distrun() {
    local prog=$1 want=$2 out=$3 rc=0
    shift 3
    "$fairmc" -prog "$prog" -p 2 -serve "127.0.0.1:$port" \
        -dist-state "$workdir/state-$prog.json" \
        -metrics-out "$out" "$@" > "$workdir/coord-$prog.txt" 2>&1 &
    local coord=$!
    "$fairmc" -worker "$url" -p 1 -join-timeout 5s -retry-base 25ms -retry-max 400ms \
        > "$workdir/w1-$prog.txt" 2>&1 &
    local w1=$!
    "$fairmc" -worker "$url" -p 1 -join-timeout 5s -retry-base 25ms -retry-max 400ms \
        > "$workdir/w2-$prog.txt" 2>&1 &
    local w2=$!
    wait "$coord" || rc=$?
    if [ "$rc" -ne "$want" ]; then
        echo "FAIL: $prog coordinator exited $rc, want $want"
        cat "$workdir/coord-$prog.txt"
        exit 1
    fi
    finish_worker "$w1" "$workdir/w1-$prog.txt"
    finish_worker "$w2" "$workdir/w2-$prog.txt"
}

# Clean search: spinloop is exhausted without findings (exit 0).
"$fairmc" -prog spinloop -p 2 -metrics-out "$workdir/local-clean.json" > /dev/null
distrun spinloop 0 "$workdir/dist-clean.json"
if ! cmp -s "$workdir/local-clean.json" "$workdir/dist-clean.json"; then
    echo "FAIL: spinloop run report differs between local -p 2 and distributed"
    diff "$workdir/local-clean.json" "$workdir/dist-clean.json" || true
    exit 1
fi
go run ./ci/validate_report.go docs/run-report.schema.json "$workdir/dist-clean.json"

# Finding search: peterson-bug stops at a confirmed violation (exit 1),
# and the distributed merge must stop at the same execution.
rc=0
"$fairmc" -prog peterson-bug -p 2 -metrics-out "$workdir/local-bug.json" > /dev/null || rc=$?
if [ "$rc" -ne 1 ]; then
    echo "FAIL: local peterson-bug exited $rc, want 1"
    exit 1
fi
distrun peterson-bug 1 "$workdir/dist-bug.json"
if ! cmp -s "$workdir/local-bug.json" "$workdir/dist-bug.json"; then
    echo "FAIL: peterson-bug run report differs between local -p 2 and distributed"
    diff "$workdir/local-bug.json" "$workdir/dist-bug.json" || true
    exit 1
fi
go run ./ci/validate_report.go docs/run-report.schema.json "$workdir/dist-bug.json"

# DPOR search: the work-unit plan grows as units merge, and the merged
# report must be byte-identical to the SEQUENTIAL DPOR run (docs/
# DPOR.md's determinism contract — the distributed merge consumes units
# in spawn order). msqueue-bug stops at a confirmed violation (exit 1).
rc=0
"$fairmc" -prog msqueue-bug -fair=false -dpor -maxsteps 5000 \
    -metrics-out "$workdir/local-dpor.json" > /dev/null || rc=$?
if [ "$rc" -ne 1 ]; then
    echo "FAIL: local sequential DPOR msqueue-bug exited $rc, want 1"
    exit 1
fi
distrun msqueue-bug 1 "$workdir/dist-dpor.json" -fair=false -dpor -maxsteps 5000
if ! cmp -s "$workdir/local-dpor.json" "$workdir/dist-dpor.json"; then
    echo "FAIL: msqueue-bug DPOR run report differs between sequential and distributed"
    diff "$workdir/local-dpor.json" "$workdir/dist-dpor.json" || true
    exit 1
fi
go run ./ci/validate_report.go docs/run-report.schema.json "$workdir/dist-dpor.json"

echo "OK: distributed run reports are byte-identical to local runs and validate"
