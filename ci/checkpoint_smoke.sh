#!/usr/bin/env bash
# Checkpoint/resume smoke test: SIGINT a checkpointed search mid-run,
# resume it from the checkpoint, and require the resumed report to be
# identical to an uninterrupted baseline modulo wall-clock times.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/fairmc" ./cmd/fairmc
fairmc="$workdir/fairmc"

# Uninterrupted baseline.
"$fairmc" -prog bakery-2 -random -seed 9 -p 1 -maxexec 30000 \
    > "$workdir/baseline.txt"

# Same search with a much larger budget so it cannot finish on its own,
# checkpointed frequently; kill it with SIGINT once a checkpoint lands.
"$fairmc" -prog bakery-2 -random -seed 9 -p 1 -maxexec 2000000 \
    -checkpoint "$workdir/ck.json" -ckpt-interval 100ms \
    > "$workdir/interrupted.txt" 2>&1 &
pid=$!
for _ in $(seq 1 200); do
    [ -s "$workdir/ck.json" ] && break
    sleep 0.05
done
if ! [ -s "$workdir/ck.json" ]; then
    echo "FAIL: no checkpoint written within 10s"
    kill "$pid" 2>/dev/null || true
    exit 1
fi
kill -INT "$pid"
rc=0
wait "$pid" || rc=$?
if [ "$rc" -ne 3 ]; then
    echo "FAIL: interrupted run exited $rc, want 3"
    cat "$workdir/interrupted.txt"
    exit 1
fi
grep -q "interrupted; checkpoint written" "$workdir/interrupted.txt" || {
    echo "FAIL: interrupted run did not report its checkpoint"
    cat "$workdir/interrupted.txt"
    exit 1
}

# Resume with the baseline's budget; program/strategy/seed/parallelism
# come from the checkpoint. The finished report must match the baseline.
"$fairmc" -resume "$workdir/ck.json" -maxexec 30000 > "$workdir/resumed.txt"

normalize() { sed -E 's/\([0-9.]+s,/(TIME,/' "$1"; }
if ! diff <(normalize "$workdir/baseline.txt") <(normalize "$workdir/resumed.txt"); then
    echo "FAIL: resumed report differs from uninterrupted baseline"
    exit 1
fi
echo "OK: resumed report matches uninterrupted baseline"
