// Benchmarks regenerating each table and figure of the paper's
// evaluation (§4), plus micro-benchmarks of the checker itself.
//
//	go test -bench=. -benchmem
//
// Each experiment benchmark runs a scaled-down configuration of the
// corresponding experiment and reports its domain metrics
// (states, executions, executions-to-bug) via b.ReportMetric, so a
// run both times the reproduction and re-derives the paper's shapes.
// cmd/experiments runs the full-size versions.
package fairmc_test

import (
	"fmt"
	"testing"
	"time"

	"fairmc"
	"fairmc/conc"
	"fairmc/internal/experiments"
	"fairmc/internal/liveness"
	"fairmc/internal/search"
	"fairmc/internal/state"
	"fairmc/progs"
)

// BenchmarkFig2NonterminatingExecutions regenerates Figure 2's
// measurement: the nonterminating executions explored by an unfair
// depth-bounded search of the Figure 1 program grow exponentially with
// the depth bound. The reported metric is the growth factor across
// the sweep.
func BenchmarkFig2NonterminatingExecutions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig2([]int{8, 12, 16}, experiments.Budget{
			CellTime: 30 * time.Second,
		})
		last := rows[len(rows)-1].NonTerminating
		first := rows[0].NonTerminating
		if first > 0 {
			b.ReportMetric(float64(last)/float64(first), "growth")
		}
		b.ReportMetric(float64(last), "nonterm@16")
	}
}

// BenchmarkTable1Characteristics regenerates Table 1: one fair
// execution of every input program, reporting the largest program's
// scale.
func BenchmarkTable1Characteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		for _, r := range rows {
			if r.Name == "Singularity kernel" {
				b.ReportMetric(float64(r.SyncOps), "singularity-syncops")
				b.ReportMetric(float64(r.Threads), "singularity-threads")
			}
		}
	}
}

// BenchmarkTable2StateCoverage regenerates one cell of Table 2
// (dining philosophers 2, cb=2): stateful reference count, fair
// stateless coverage, and the 100%-coverage check.
func BenchmarkTable2StateCoverage(b *testing.B) {
	body := progs.Philosophers(2)
	for i := 0; i < b.N; i++ {
		ref := state.NewCoverage()
		search.Explore(body, search.Options{
			Fair: false, ContextBound: 2, MaxSteps: 1 << 16,
			StatefulPrune: true, Monitor: ref,
		})
		cov := state.NewCoverage()
		rep := search.Explore(body, search.Options{
			Fair: true, ContextBound: 2, MaxSteps: 1 << 16, Monitor: cov,
		})
		if len(cov.Missing(ref)) != 0 {
			b.Fatal("fair search missed states")
		}
		b.ReportMetric(float64(ref.Count()), "total-states")
		b.ReportMetric(float64(cov.Count()), "fair-states")
		b.ReportMetric(float64(rep.Executions), "fair-executions")
	}
}

// BenchmarkFig5PhilosophersSearchTime regenerates a Figure 5 point:
// wall-clock to complete the fair cb=1 search of the dining
// philosophers (3), against the unfair db=20 search (the paper's
// fastest unfair configuration).
func BenchmarkFig5PhilosophersSearchTime(b *testing.B) {
	body := progs.Philosophers(3)
	for i := 0; i < b.N; i++ {
		fair := search.Explore(body, search.Options{
			Fair: true, ContextBound: 1, MaxSteps: 1 << 16,
			TimeLimit: 60 * time.Second,
		})
		unfair := search.Explore(body, search.Options{
			Fair: false, ContextBound: 1, DepthBound: 20, RandomTail: true,
			MaxSteps: 20 * 64, Seed: 20, TimeLimit: 60 * time.Second,
		})
		b.ReportMetric(fair.Elapsed.Seconds(), "fair-s")
		b.ReportMetric(unfair.Elapsed.Seconds(), "unfair-db20-s")
		b.ReportMetric(float64(fair.Executions), "fair-executions")
		b.ReportMetric(float64(unfair.Executions), "unfair-executions")
	}
}

// BenchmarkFig6WSQSearchTime regenerates a Figure 6 point: the same
// comparison on the work-stealing queue with 2 stealers.
func BenchmarkFig6WSQSearchTime(b *testing.B) {
	body := progs.WorkStealingQueue(progs.WSQConfig{Items: 2, Stealers: 2})
	for i := 0; i < b.N; i++ {
		fair := search.Explore(body, search.Options{
			Fair: true, ContextBound: 1, MaxSteps: 1 << 16,
			TimeLimit: 120 * time.Second,
		})
		unfair := search.Explore(body, search.Options{
			Fair: false, ContextBound: 1, DepthBound: 30, RandomTail: true,
			MaxSteps: 30 * 64, Seed: 30, TimeLimit: 120 * time.Second,
		})
		b.ReportMetric(fair.Elapsed.Seconds(), "fair-s")
		b.ReportMetric(unfair.Elapsed.Seconds(), "unfair-db30-s")
	}
}

// BenchmarkTable3BugFinding regenerates one Table 3 row: executions to
// the first detection of the lock-free-steal WSQ bug, fair vs unfair.
func BenchmarkTable3BugFinding(b *testing.B) {
	rows := []string{"wsq-bug2-lockfree-steal"}
	for i := 0; i < b.N; i++ {
		out := experiments.Table3(rows, experiments.Budget{
			CellTime: 120 * time.Second,
		})
		r := out[0]
		if !r.FairFound {
			b.Fatal("fair search did not find the bug")
		}
		b.ReportMetric(float64(r.FairExecutions), "fair-execs-to-bug")
		if r.UnfairFound {
			b.ReportMetric(float64(r.UnfairExecutions), "unfair-execs-to-bug")
		} else {
			b.ReportMetric(-1, "unfair-execs-to-bug")
		}
	}
}

// BenchmarkGoodSamaritanDetection regenerates §4.3.1: time to find and
// classify the worker-group shutdown spin.
func BenchmarkGoodSamaritanDetection(b *testing.B) {
	p, _ := progs.Lookup("workergroup-spin")
	for i := 0; i < b.N; i++ {
		rep := search.Explore(p.Body, search.Options{
			Fair: true, ContextBound: -1, MaxSteps: 2000,
			TimeLimit: 120 * time.Second,
		})
		if rep.Divergence == nil {
			b.Fatal("no divergence")
		}
		k := liveness.Classify(rep.Divergence, liveness.Options{}).Kind
		if k != liveness.GoodSamaritanViolation {
			b.Fatalf("classified as %v", k)
		}
		b.ReportMetric(float64(rep.DivergenceExecution), "execs-to-detect")
	}
}

// BenchmarkPromiseLivelockDetection regenerates §4.3.2: time to find
// and classify the Figure 8 stale-read livelock.
func BenchmarkPromiseLivelockDetection(b *testing.B) {
	p, _ := progs.Lookup("promise-livelock")
	for i := 0; i < b.N; i++ {
		rep := search.Explore(p.Body, search.Options{
			Fair: true, ContextBound: -1, MaxSteps: 2000,
			TimeLimit: 120 * time.Second,
		})
		if rep.Divergence == nil {
			b.Fatal("no divergence")
		}
		k := liveness.Classify(rep.Divergence, liveness.Options{}).Kind
		if k != liveness.FairNontermination {
			b.Fatalf("classified as %v", k)
		}
		b.ReportMetric(float64(rep.DivergenceExecution), "execs-to-detect")
	}
}

// BenchmarkEngineExecution measures the raw cost of one complete
// deterministic execution (the unit of stateless model checking).
func BenchmarkEngineExecution(b *testing.B) {
	p, _ := progs.Lookup("spinloop")
	opts := fairmc.Defaults()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := fairmc.RunOnce(p.Body, opts)
		if r.Outcome != fairmc.Terminated {
			b.Fatal(r.Outcome)
		}
	}
}

// BenchmarkEngineExecutionSingularity measures one execution of the
// largest program (14 threads, thousands of scheduling points).
func BenchmarkEngineExecutionSingularity(b *testing.B) {
	p, _ := progs.Lookup("singularity")
	opts := fairmc.Defaults()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := fairmc.RunOnce(p.Body, opts)
		if r.Outcome != fairmc.Terminated {
			b.Fatal(r.Outcome)
		}
	}
}

// BenchmarkFairSearchSpinloop measures a complete fair DFS of the
// Figure 3 program (the Figure 4 pruning in action).
func BenchmarkFairSearchSpinloop(b *testing.B) {
	p, _ := progs.Lookup("spinloop")
	for i := 0; i < b.N; i++ {
		rep := search.Explore(p.Body, search.Options{
			Fair: true, ContextBound: -1, MaxSteps: 1 << 16,
		})
		if !rep.Exhausted {
			b.Fatal("not exhausted")
		}
		b.ReportMetric(float64(rep.Executions), "executions")
	}
}

// BenchmarkParallelSpeedup sweeps the worker count over a fixed
// random-walk workload (stride sharding: the explored schedules are
// identical for every P, so the work is constant and only the wall
// clock moves). Reported execs/s is the headline metric; speedup over
// P=1 is execs/s(P)/execs/s(1). Note the sweep is only meaningful on
// a multi-core host — with GOMAXPROCS=1 all P collapse to sequential
// throughput.
func BenchmarkParallelSpeedup(b *testing.B) {
	body := progs.WorkStealingQueue(progs.WSQConfig{Items: 2, Stealers: 2})
	const execs = 200
	for _, p := range []int{1, 2, 4, 8} {
		p := p
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			var total time.Duration
			for i := 0; i < b.N; i++ {
				rep := search.Explore(body, search.Options{
					Fair:                    true,
					RandomWalk:              true,
					MaxExecutions:           execs,
					MaxSteps:                1 << 14,
					Seed:                    42,
					Parallelism:             p,
					ContinueAfterViolation:  true,
					ContinueAfterDivergence: true,
				})
				if rep.Executions != execs {
					b.Fatalf("executions = %d, want %d", rep.Executions, execs)
				}
				total += rep.Elapsed
			}
			b.ReportMetric(float64(execs)*float64(b.N)/total.Seconds(), "execs/s")
		})
	}
}

// BenchmarkAblationFairK measures the cost of weakening the fairness
// updates (§3's k-th-yield parameterization): larger k processes fewer
// window boundaries, prunes unfair cycles later, and explores more
// executions for the same coverage.
func BenchmarkAblationFairK(b *testing.B) {
	p, _ := progs.Lookup("spinloop")
	for _, k := range []int{1, 2, 4} {
		k := k
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep := search.Explore(p.Body, search.Options{
					Fair:         true,
					FairK:        k,
					ContextBound: -1,
					MaxSteps:     1 << 16,
				})
				if !rep.Exhausted {
					b.Fatal("not exhausted")
				}
				b.ReportMetric(float64(rep.Executions), "executions")
			}
		})
	}
}

// BenchmarkAblationSleepSets measures sleep-set partial-order
// reduction on an unfair exhaustive search: same states, fewer
// executions. The workload must terminate under every schedule (no
// spin loops), since the unfair search cannot prune cycles; three
// writers on disjoint variables maximize independence.
func BenchmarkAblationSleepSets(b *testing.B) {
	prog := func(t *conc.T) {
		vars := make([]*conc.IntVar, 3)
		for i := range vars {
			vars[i] = conc.NewIntVar(t, "v", 0)
		}
		wg := conc.NewWaitGroup(t, "wg", 3)
		for i := 0; i < 3; i++ {
			i := i
			t.Go("w", func(t *conc.T) {
				vars[i].Store(t, 1)
				vars[i].Store(t, 2)
				wg.Done(t)
			})
		}
		wg.Wait(t)
	}
	for _, sleep := range []bool{false, true} {
		sleep := sleep
		name := "plain"
		if sleep {
			name = "sleepsets"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cov := state.NewCoverage()
				rep := search.Explore(prog, search.Options{
					Fair:         false,
					ContextBound: -1, // exhaustive: where POR matters
					MaxSteps:     1 << 16,
					SleepSets:    sleep,
					Monitor:      cov,
				})
				if !rep.Exhausted {
					b.Fatal("not exhausted")
				}
				b.ReportMetric(float64(rep.Executions), "executions")
				b.ReportMetric(float64(cov.Count()), "states")
			}
		})
	}
}

// BenchmarkAblationDPOR measures dynamic partial-order reduction on
// the same independent-writer workload as the sleep-set ablation.
func BenchmarkAblationDPOR(b *testing.B) {
	prog := func(t *conc.T) {
		vars := make([]*conc.IntVar, 3)
		for i := range vars {
			vars[i] = conc.NewIntVar(t, "v", 0)
		}
		wg := conc.NewWaitGroup(t, "wg", 3)
		for i := 0; i < 3; i++ {
			i := i
			t.Go("w", func(t *conc.T) {
				vars[i].Store(t, 1)
				vars[i].Store(t, 2)
				wg.Done(t)
			})
		}
		wg.Wait(t)
	}
	for _, mode := range []string{"plain", "dpor", "dpor+sleep"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep := search.Explore(prog, search.Options{
					Fair:         false,
					ContextBound: -1,
					MaxSteps:     1 << 16,
					DPOR:         mode != "plain",
					SleepSets:    mode == "dpor+sleep",
				})
				if !rep.Exhausted {
					b.Fatal("not exhausted")
				}
				b.ReportMetric(float64(rep.Executions), "executions")
			}
		})
	}
}

// BenchmarkAblationFingerprint measures the state-capture overhead a
// coverage monitor adds to the fair search.
func BenchmarkAblationFingerprint(b *testing.B) {
	p, _ := progs.Lookup("spinloop")
	run := func(mon fairmc.Options) *search.Report {
		return search.Explore(p.Body, search.Options{
			Fair:         true,
			ContextBound: -1,
			MaxSteps:     1 << 16,
			Monitor:      mon.Monitor,
		})
	}
	b.Run("bare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if rep := run(fairmc.Options{}); !rep.Exhausted {
				b.Fatal("not exhausted")
			}
		}
	})
	b.Run("coverage", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if rep := run(fairmc.Options{Monitor: state.NewCoverage()}); !rep.Exhausted {
				b.Fatal("not exhausted")
			}
		}
	})
}
