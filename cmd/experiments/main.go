// Command experiments regenerates the tables and figures of the
// paper's evaluation (§4) on this reproduction's substrate.
//
// Usage:
//
//	experiments [-run fig2|table1|table2|fig56|table3|liveness|strategies|parallel|conformance|obs|dist|engine|dpor|tso|all]
//	            [-celltime 60s] [-dbounds 20,30,40,50,60] [-quick]
//	            [-workers 1,2,4,8] [-parexecs 2000] [-json BENCH_parallel.json]
//	            [-confexecs 2000] [-confreps 3] [-confjson BENCH_conformance.json]
//	            [-obsexecs 5000] [-obsreps 5] [-obsjson BENCH_obs.json]
//	            [-distworkers 1,2,4] [-distexecs 2000] [-distjson BENCH_dist.json]
//	            [-engexecs 2000] [-engreps 5] [-engjson BENCH_engine.json]
//	            [-dporworkers 1,2,4] [-dporjson BENCH_dpor.json]
//	            [-tsojson BENCH_tso.json]
//
// Absolute numbers differ from the paper's (different substrate,
// different hardware); the shapes — exponential growth in Figure 2,
// full coverage with fairness in Table 2, fairness finding every bug
// faster in Table 3 — are the reproduction targets. EXPERIMENTS.md
// records a reference run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"fairmc/internal/experiments"
)

func main() {
	var (
		run       = flag.String("run", "all", "experiment to run: fig2|table1|table2|fig56|table3|liveness|strategies|parallel|conformance|obs|dist|engine|dpor|tso|all")
		cellTime  = flag.Duration("celltime", 60*time.Second, "time budget per experiment cell")
		dbounds   = flag.String("dbounds", "20,30,40,50,60", "depth bounds for the unfair Table 2 runs")
		fig2b     = flag.String("fig2bounds", "8,10,12,14,16,18,20", "depth bounds for Figure 2")
		quick     = flag.Bool("quick", false, "small bounds and budgets for a fast smoke run")
		csvDir    = flag.String("csv", "", "also write machine-readable CSVs into this directory")
		workers   = flag.String("workers", "1,2,4,8", "worker counts for the parallel sweep")
		parExecs  = flag.Int64("parexecs", 2000, "executions per parallel-sweep cell")
		jsonOut   = flag.String("json", "BENCH_parallel.json", "output file for the parallel sweep (\"\" = stdout only)")
		cfExecs   = flag.Int64("confexecs", 2000, "executions per conformance-overhead cell")
		cfReps    = flag.Int("confreps", 3, "repetitions per conformance-overhead cell (best wall clock kept)")
		cfJSON    = flag.String("confjson", "BENCH_conformance.json", "output file for the conformance sweep (\"\" = stdout only)")
		obsExecs  = flag.Int64("obsexecs", 5000, "executions per observability-overhead configuration")
		obsReps   = flag.Int("obsreps", 5, "repetitions per observability configuration (best wall clock kept)")
		obsJSON   = flag.String("obsjson", "BENCH_obs.json", "output file for the observability sweep (\"\" = stdout only)")
		distWkrs  = flag.String("distworkers", "1,2,4", "worker counts for the distributed sweep")
		distExecs = flag.Int64("distexecs", 2000, "executions per distributed-sweep cell")
		distJSON  = flag.String("distjson", "BENCH_dist.json", "output file for the distributed sweep (\"\" = stdout only)")
		engExecs  = flag.Int64("engexecs", 2000, "executions per engine-speed cell")
		engReps   = flag.Int("engreps", 5, "repetitions per engine-speed cell (best wall clock kept)")
		engJSON   = flag.String("engjson", "BENCH_engine.json", "output file for the engine-speed sweep (\"\" = stdout only)")
		dporWkrs  = flag.String("dporworkers", "1,2,4", "worker counts for the DPOR scaling sweep")
		dporJSON  = flag.String("dporjson", "BENCH_dpor.json", "output file for the DPOR sweep (\"\" = stdout only)")
		tsoJSON   = flag.String("tsojson", "BENCH_tso.json", "output file for the weak-memory sweep (\"\" = stdout only)")
	)
	flag.Parse()
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	csvDirGlobal = *csvDir

	budget := experiments.Budget{CellTime: *cellTime}
	fig2Bounds := parseInts(*fig2b)
	depthBounds := parseInts(*dbounds)
	if *quick {
		budget.CellTime = 10 * time.Second
		fig2Bounds = []int{12, 16, 20, 24}
		depthBounds = []int{20, 40}
	}

	ran := false
	want := func(name string) bool {
		if *run == "all" || *run == name {
			ran = true
			return true
		}
		return false
	}
	if want("fig2") {
		runFig2(fig2Bounds, budget)
	}
	if want("table1") {
		runTable1()
	}
	if want("table2") || want("fig56") {
		runTable2(depthBounds, budget, *run != "fig56")
	}
	if want("table3") {
		runTable3(budget)
	}
	if want("liveness") {
		runLiveness(budget)
	}
	if want("strategies") {
		runStrategies(budget)
	}
	if want("parallel") {
		execs := *parExecs
		if *quick {
			execs = 200
		}
		runParallel(parseInts(*workers), execs, *jsonOut)
	}
	if want("conformance") {
		execs, reps := *cfExecs, *cfReps
		if *quick {
			execs, reps = 200, 1
		}
		runConformance(execs, reps, *cfJSON)
	}
	if want("obs") {
		execs, reps := *obsExecs, *obsReps
		if *quick {
			execs, reps = 500, 2
		}
		runObs(execs, reps, *obsJSON)
	}
	if want("dist") {
		execs := *distExecs
		if *quick {
			execs = 200
		}
		runDist(parseInts(*distWkrs), execs, *distJSON)
	}
	if want("engine") {
		execs, reps := *engExecs, *engReps
		if *quick {
			execs, reps = 200, 2
		}
		runEngine(execs, reps, *engJSON)
	}
	if want("dpor") {
		runDpor(parseInts(*dporWkrs), *quick, *dporJSON)
	}
	if want("tso") {
		runTso(*quick, *tsoJSON)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
		os.Exit(2)
	}
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad integer %q\n", part)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

func runFig2(bounds []int, budget experiments.Budget) {
	fmt.Println("== Figure 2: nonterminating executions vs depth bound ==")
	fmt.Println("   (Figure 1 program, 2 philosophers, unfair depth-bounded DFS)")
	fmt.Printf("%-12s %-24s %-12s\n", "depth bound", "nonterminating execs", "total execs")
	rows := experiments.Fig2(bounds, budget)
	csv := newCSV("fig2", "depth_bound", "nonterminating", "executions", "timed_out")
	defer csv.close()
	for _, r := range rows {
		mark := ""
		if r.TimedOut {
			mark = " *"
		}
		fmt.Printf("%-12d %-24d %-12d%s\n", r.DepthBound, r.NonTerminating, r.Executions, mark)
		csv.row(fmt.Sprint(r.DepthBound), fmt.Sprint(r.NonTerminating),
			fmt.Sprint(r.Executions), fmt.Sprint(r.TimedOut))
	}
	fmt.Println()
}

func runTable1() {
	fmt.Println("== Table 1: characteristics of input programs ==")
	fmt.Printf("%-22s %6s %8s %9s\n", "program", "LOC", "threads", "sync ops")
	csv := newCSV("table1", "program", "loc", "threads", "sync_ops")
	defer csv.close()
	for _, r := range experiments.Table1() {
		fmt.Printf("%-22s %6d %8d %9d\n", r.Name, r.LOC, r.Threads, r.SyncOps)
		csv.row(r.Name, fmt.Sprint(r.LOC), fmt.Sprint(r.Threads), fmt.Sprint(r.SyncOps))
	}
	fmt.Println()
}

func runTable2(depthBounds []int, budget experiments.Budget, printStates bool) {
	if printStates {
		fmt.Println("== Table 2: states visited, with and without fairness ==")
	} else {
		fmt.Println("== Figures 5/6: search completion time, with and without fairness ==")
	}
	sort.Ints(depthBounds)
	header := fmt.Sprintf("%-24s %-6s %8s %10s", "config", "strat", "total", "fair")
	for _, db := range depthBounds {
		header += fmt.Sprintf(" %9s", fmt.Sprintf("db=%d", db))
	}
	fmt.Println(header + "   (runs that hit the budget are marked *)")

	// Compute cell by cell so long runs stream their progress.
	csv := newCSV("table2", "config", "strategy", "total_states", "total_timeout",
		"fair_states", "fair_100pct", "fair_seconds", "fair_timeout",
		"depth_bound", "nofair_states", "nofair_seconds", "nofair_timeout")
	defer csv.close()
	for _, cfg := range experiments.Table2Configs() {
		for _, st := range experiments.Strategies() {
			cs := experiments.Table2(
				[]experiments.Table2Config{cfg},
				[]experiments.Strategy{st},
				depthBounds, budget)
			printTable2Cell(cs[0], depthBounds, printStates)
			c := cs[0]
			for _, db := range depthBounds {
				nf := c.NoFair[db]
				csv.row(c.Config, c.Strategy,
					fmt.Sprint(c.TotalStates), fmt.Sprint(c.TotalTimedOut),
					fmt.Sprint(c.FairStates), fmt.Sprint(c.Fair100),
					fmt.Sprintf("%.3f", c.FairTime.Seconds()), fmt.Sprint(c.FairTimedOut),
					fmt.Sprint(db), fmt.Sprint(nf.States),
					fmt.Sprintf("%.3f", nf.Time.Seconds()), fmt.Sprint(nf.TimedOut))
			}
		}
	}
	fmt.Println()
}

func printTable2Cell(c experiments.Table2Cell, depthBounds []int, printStates bool) {
	var cols []string
	if printStates {
		cols = append(cols, fmt.Sprintf("%8s", starred(fmt.Sprint(c.TotalStates), c.TotalTimedOut)))
		// "=" marks 100% coverage of the stateful reference set
		// (the paper's headline result); "<" marks missed states.
		cover := "="
		if !c.Fair100 {
			cover = "<"
		}
		cols = append(cols, fmt.Sprintf("%10s", starred(fmt.Sprint(c.FairStates)+cover, c.FairTimedOut)))
		for _, db := range depthBounds {
			nf := c.NoFair[db]
			cols = append(cols, fmt.Sprintf("%9s", starred(fmt.Sprint(nf.States), nf.TimedOut)))
		}
	} else {
		cols = append(cols, fmt.Sprintf("%8s", "-"))
		cols = append(cols, fmt.Sprintf("%10s", starred(fmtDur(c.FairTime), c.FairTimedOut)))
		for _, db := range depthBounds {
			nf := c.NoFair[db]
			cols = append(cols, fmt.Sprintf("%9s", starred(fmtDur(nf.Time), nf.TimedOut)))
		}
	}
	fmt.Printf("%-24s %-6s %s\n", c.Config, c.Strategy, strings.Join(cols, " "))
}

func starred(s string, timedOut bool) string {
	if timedOut {
		return s + "*"
	}
	return s
}

func fmtDur(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}

func runTable3(budget experiments.Budget) {
	fmt.Println("== Table 3: executions and time to first bug, fair vs unfair ==")
	fmt.Println("   (fair: cb=2; unfair: cb=2 + depth bound 250 + random tail)")
	fmt.Printf("%-32s %14s %10s %16s %10s\n",
		"bug", "fair execs", "fair time", "unfair execs", "unfair t")
	csv := newCSV("table3", "bug", "fair_found", "fair_executions", "fair_by_divergence",
		"fair_seconds", "unfair_found", "unfair_executions", "unfair_seconds")
	defer csv.close()
	for _, r := range experiments.Table3(experiments.Table3Bugs(), budget) {
		csv.row(r.Bug, fmt.Sprint(r.FairFound), fmt.Sprint(r.FairExecutions),
			fmt.Sprint(r.FairByDivergence), fmt.Sprintf("%.3f", r.FairTime.Seconds()),
			fmt.Sprint(r.UnfairFound), fmt.Sprint(r.UnfairExecutions),
			fmt.Sprintf("%.3f", r.UnfairTime.Seconds()))
		fe := "-"
		if r.FairFound {
			fe = fmt.Sprint(r.FairExecutions)
			if r.FairByDivergence {
				fe += " (div)"
			}
		}
		ue := "-"
		if r.UnfairFound {
			ue = fmt.Sprint(r.UnfairExecutions)
		}
		fmt.Printf("%-32s %14s %10s %16s %10s\n",
			r.Bug, fe, fmtDur(r.FairTime), ue, fmtDur(r.UnfairTime))
	}
	fmt.Println()
}

func runStrategies(budget experiments.Budget) {
	fmt.Println("== Extension: strategy comparison (executions to first finding) ==")
	fmt.Println("   (fair DFS cb=2 vs uniform random walk vs PCT d=3; '-' = not found)")
	fmt.Printf("%-32s %12s %12s %12s\n", "bug", "fair dfs", "random", "pct")
	csv := newCSV("strategies", "bug", "fair_dfs", "random_walk", "pct")
	defer csv.close()
	show := func(v int64) string {
		if v < 0 {
			return "-"
		}
		return fmt.Sprint(v)
	}
	for _, r := range experiments.CompareStrategies(experiments.Table3Bugs(), budget) {
		fmt.Printf("%-32s %12s %12s %12s\n", r.Bug, show(r.FairDFS), show(r.RandomWalk), show(r.PCT))
		csv.row(r.Bug, show(r.FairDFS), show(r.RandomWalk), show(r.PCT))
	}
	fmt.Println()
}

func runParallel(workers []int, execs int64, jsonPath string) {
	fmt.Println("== Extension: parallel exploration throughput ==")
	fmt.Println("   (stride-sharded random walk, wsq 2x2, identical schedules at every P)")
	rep := experiments.ParallelSweep(workers, execs)
	fmt.Printf("   gomaxprocs=%d numcpu=%d program=%s seed=%d\n",
		rep.GOMAXPROCS, rep.NumCPU, rep.Program, rep.Seed)
	if rep.Warning != "" {
		fmt.Fprintf(os.Stderr, "warning: %s\n", rep.Warning)
	}
	fmt.Printf("%-14s %12s %12s %12s\n", "single-thread", "executions", "elapsed", "execs/s")
	for _, r := range rep.SingleThread {
		fmt.Printf("%-14s %12d %12s %12.0f\n",
			r.Program, r.Executions, fmtDur(r.Elapsed), r.ExecsPerSec)
	}
	fmt.Printf("%-6s %12s %12s %12s %9s\n", "p", "executions", "elapsed", "execs/s", "speedup")
	for _, r := range rep.Rows {
		fmt.Printf("%-6d %12d %12s %12.0f %8.2fx\n",
			r.Parallelism, r.Executions, fmtDur(r.Elapsed), r.ExecsPerSec, r.Speedup)
	}
	if jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("   wrote %s\n", jsonPath)
	}
	fmt.Println()
}

func runConformance(execs int64, reps int, jsonPath string) {
	fmt.Println("== Extension: conformance-checking overhead ==")
	fmt.Println("   (execution-bounded DFS, digest checking on vs off, best of reps)")
	rep := experiments.ConformanceSweep(execs, reps)
	fmt.Printf("   gomaxprocs=%d numcpu=%d reps=%d\n", rep.GOMAXPROCS, rep.NumCPU, rep.Reps)
	fmt.Printf("%-12s %12s %12s %12s %9s %10s\n",
		"program", "executions", "on", "off", "overhead", "identical")
	csv := newCSV("conformance", "program", "executions", "on_seconds", "off_seconds",
		"overhead", "quarantined", "identical")
	defer csv.close()
	for _, r := range rep.Rows {
		fmt.Printf("%-12s %12d %12s %12s %8.2fx %10v\n",
			r.Program, r.Executions, fmtDur(r.ElapsedOn), fmtDur(r.ElapsedOff),
			r.Overhead, r.Identical)
		csv.row(r.Program, fmt.Sprint(r.Executions),
			fmt.Sprintf("%.3f", r.ElapsedOn.Seconds()),
			fmt.Sprintf("%.3f", r.ElapsedOff.Seconds()),
			fmt.Sprintf("%.3f", r.Overhead),
			fmt.Sprint(r.Quarantined), fmt.Sprint(r.Identical))
	}
	if jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("   wrote %s\n", jsonPath)
	}
	fmt.Println()
}

func runObs(execs int64, reps int, jsonPath string) {
	fmt.Println("== Extension: observability overhead ==")
	fmt.Println("   (spinloop random walk, metrics registry and event stream vs bare, best of reps)")
	rep := experiments.ObsSweep(execs, reps)
	fmt.Printf("   gomaxprocs=%d numcpu=%d program=%s reps=%d\n",
		rep.GOMAXPROCS, rep.NumCPU, rep.Program, rep.Reps)
	fmt.Printf("%-16s %12s %12s %12s %9s\n", "config", "executions", "best", "execs/s", "overhead")
	csv := newCSV("obs", "config", "executions", "best_seconds", "execs_per_sec", "overhead")
	defer csv.close()
	for _, r := range rep.Rows {
		fmt.Printf("%-16s %12d %12s %12.0f %8.3fx\n",
			r.Config, r.Executions, fmtDur(r.Best), r.ExecsPerSec, r.Overhead)
		csv.row(r.Config, fmt.Sprint(r.Executions),
			fmt.Sprintf("%.3f", r.Best.Seconds()),
			fmt.Sprintf("%.0f", r.ExecsPerSec),
			fmt.Sprintf("%.3f", r.Overhead))
	}
	if jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("   wrote %s\n", jsonPath)
	}
	fmt.Println()
}

func runDist(workers []int, execs int64, jsonPath string) {
	fmt.Println("== Extension: distributed exploration throughput ==")
	fmt.Println("   (coordinator + workers over loopback HTTP, wsq 2x2, identical merged report at every W)")
	rep := experiments.DistSweep(workers, execs)
	fmt.Printf("   gomaxprocs=%d numcpu=%d program=%s seed=%d shards=%d (mirrors -p %d)\n",
		rep.GOMAXPROCS, rep.NumCPU, rep.Program, rep.Seed, rep.Shards, rep.RefParallelism)
	fmt.Printf("%-8s %6s %8s %12s %12s %12s %9s %10s\n",
		"workers", "chaos", "faults", "executions", "elapsed", "execs/s", "speedup", "identical")
	csv := newCSV("dist", "workers", "chaos", "faults", "executions", "elapsed_seconds", "execs_per_sec", "speedup", "identical")
	defer csv.close()
	for _, r := range rep.Rows {
		fmt.Printf("%-8d %6v %8d %12d %12s %12.0f %8.2fx %10v\n",
			r.Workers, r.Chaos, r.Faults, r.Executions, fmtDur(r.Elapsed), r.ExecsPerSec, r.Speedup, r.Identical)
		csv.row(fmt.Sprint(r.Workers), fmt.Sprint(r.Chaos), fmt.Sprint(r.Faults),
			fmt.Sprint(r.Executions),
			fmt.Sprintf("%.3f", r.Elapsed.Seconds()),
			fmt.Sprintf("%.0f", r.ExecsPerSec),
			fmt.Sprintf("%.3f", r.Speedup), fmt.Sprint(r.Identical))
	}
	if jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("   wrote %s\n", jsonPath)
	}
	fmt.Println()
}

func runEngine(execs int64, reps int, jsonPath string) {
	fmt.Println("== Extension: engine fast-path throughput ==")
	fmt.Println("   (single-thread run-to-completion executions, best of reps; speedup vs the")
	fmt.Println("    same program's no-fastpath row; pre-PR baseline is a recorded constant)")
	rep := experiments.EngineSweep(execs, reps)
	fmt.Printf("   gomaxprocs=%d numcpu=%d reps=%d\n", rep.GOMAXPROCS, rep.NumCPU, rep.Reps)
	fmt.Printf("   pre-PR baseline (%s @ %s): %.0f execs/s, %.0f allocs/exec\n",
		rep.Baseline.Program, rep.Baseline.Commit,
		rep.Baseline.ExecsPerSec, rep.Baseline.AllocsPerExec)
	fmt.Printf("%-12s %-16s %12s %12s %12s %12s %9s\n",
		"program", "config", "executions", "best", "execs/s", "allocs/exec", "speedup")
	csv := newCSV("engine", "program", "config", "executions", "best_seconds",
		"execs_per_sec", "allocs_per_exec", "speedup")
	defer csv.close()
	for _, r := range rep.Rows {
		fmt.Printf("%-12s %-16s %12d %12s %12.0f %12.1f %8.2fx\n",
			r.Program, r.Config, r.Executions, fmtDur(r.Best),
			r.ExecsPerSec, r.AllocsPerExec, r.Speedup)
		csv.row(r.Program, r.Config, fmt.Sprint(r.Executions),
			fmt.Sprintf("%.3f", r.Best.Seconds()),
			fmt.Sprintf("%.0f", r.ExecsPerSec),
			fmt.Sprintf("%.1f", r.AllocsPerExec),
			fmt.Sprintf("%.3f", r.Speedup))
	}
	fmt.Printf("   speedup vs pre-PR baseline: %.2fx   reports identical (fastpath on/off): %v\n",
		rep.SpeedupVsPrePR, rep.ReportsIdentical)
	if jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("   wrote %s\n", jsonPath)
	}
	fmt.Println()
}

func runDpor(workers []int, quick bool, jsonPath string) {
	fmt.Println("== Extension: DPOR work-unit reduction and scaling ==")
	fmt.Println("   (unfair full-depth DFS vs DPOR vs DPOR+sleepsets; scaling drains the")
	fmt.Println("    same unit frontier at each -p, reports byte-identical at every P)")
	rep := experiments.DporSweep(workers, quick)
	fmt.Printf("   gomaxprocs=%d numcpu=%d\n", rep.GOMAXPROCS, rep.NumCPU)
	if rep.Warning != "" {
		fmt.Fprintf(os.Stderr, "warning: %s\n", rep.Warning)
	}
	fmt.Printf("%-16s %12s %12s %12s %8s %8s %10s\n",
		"program", "plain", "dpor", "dpor+sleep", "races", "pruned", "reduction")
	csv := newCSV("dpor", "program", "plain_execs", "dpor_execs", "dpor_sleep_execs",
		"races", "units_pruned", "reduction")
	defer csv.close()
	for _, r := range rep.Reduction {
		fmt.Printf("%-16s %12d %12d %12d %8d %8d %9.1fx\n",
			r.Program, r.PlainExecs, r.DporExecs, r.DporSleepExecs,
			r.Races, r.UnitsPruned, r.Reduction)
		csv.row(r.Program, fmt.Sprint(r.PlainExecs), fmt.Sprint(r.DporExecs),
			fmt.Sprint(r.DporSleepExecs), fmt.Sprint(r.Races),
			fmt.Sprint(r.UnitsPruned), fmt.Sprintf("%.3f", r.Reduction))
	}
	for _, r := range rep.Bug {
		fmt.Printf("   first bug on %s: plain %d executions (found=%v), DPOR %d (found=%v)\n",
			r.Program, r.PlainExecs, r.PlainFound, r.DporExecs, r.DporFound)
	}
	fmt.Printf("%-6s %12s %12s %12s %9s %10s   (scale: %s)\n",
		"p", "executions", "elapsed", "execs/s", "speedup", "identical", rep.ScaleProgram)
	for _, r := range rep.Scale {
		fmt.Printf("%-6d %12d %12s %12.0f %8.2fx %10v\n",
			r.Parallelism, r.Executions, fmtDur(r.Elapsed), r.ExecsPerSec, r.Speedup, r.Identical)
	}
	if jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("   wrote %s\n", jsonPath)
	}
	fmt.Println()
}

func runTso(quick bool, jsonPath string) {
	fmt.Println("== Extension: weak-memory verdict matrix (SC vs TSO) ==")
	fmt.Println("   (each fixture searched under both models with its designated strategy;")
	fmt.Println("    'find@' is the 1-based execution that produced the finding; clean* =")
	fmt.Println("    randomized budget ran out with no finding)")
	rep := experiments.TsoSweep(quick)
	fmt.Printf("   gomaxprocs=%d numcpu=%d\n", rep.GOMAXPROCS, rep.NumCPU)
	fmt.Printf("%-24s %-16s %-9s %9s %-10s %9s %9s %8s %6s\n",
		"program", "strategy", "sc", "sc execs", "tso", "find@", "tso execs", "flushes", "match")
	csv := newCSV("tso", "program", "strategy", "sc_verdict", "sc_executions",
		"tso_verdict", "tso_finding_execution", "tso_executions",
		"tso_buffered_stores", "tso_flushes", "tso_fences", "tso_forwards", "match")
	defer csv.close()
	for _, r := range rep.Rows {
		find := "-"
		if r.TSO.FindingExecution > 0 {
			find = fmt.Sprint(r.TSO.FindingExecution)
		}
		fmt.Printf("%-24s %-16s %-9s %9d %-10s %9s %9d %8d %6v\n",
			r.Program, r.Strategy, r.SC.Verdict, r.SC.Executions,
			r.TSO.Verdict, find, r.TSO.Executions, r.TSO.Flushes, r.Match)
		csv.row(r.Program, r.Strategy, r.SC.Verdict, fmt.Sprint(r.SC.Executions),
			r.TSO.Verdict, fmt.Sprint(r.TSO.FindingExecution), fmt.Sprint(r.TSO.Executions),
			fmt.Sprint(r.TSO.BufferedStores), fmt.Sprint(r.TSO.Flushes),
			fmt.Sprint(r.TSO.Fences), fmt.Sprint(r.TSO.Forwards), fmt.Sprint(r.Match))
	}
	fmt.Printf("   all verdicts match the fixtures' documented matrix: %v\n", rep.AllMatch)
	if jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("   wrote %s\n", jsonPath)
	}
	fmt.Println()
}

func runLiveness(budget experiments.Budget) {
	fmt.Println("== §4.3: liveness findings ==")
	fmt.Printf("%-24s %-8s %-30s %8s %8s\n", "program", "found", "classification", "execs", "steps")
	csv := newCSV("liveness", "program", "found", "classification", "executions", "steps")
	defer csv.close()
	for _, r := range experiments.LivenessDemos(budget) {
		csv.row(r.Program, fmt.Sprint(r.Found), r.Kind.String(),
			fmt.Sprint(r.Executions), fmt.Sprint(r.Steps))
		found := "no"
		kind := "-"
		if r.Found {
			found = "yes"
			kind = r.Kind.String()
		}
		fmt.Printf("%-24s %-8s %-30s %8d %8d\n", r.Program, found, kind, r.Executions, r.Steps)
	}
	fmt.Println()
}

// csvDirGlobal is the -csv target ("" = disabled).
var csvDirGlobal string

// csvWriter appends rows to <csvdir>/<name>.csv, writing the header on
// first use. A nil *csvWriter (CSV disabled) swallows writes.
type csvWriter struct {
	f *os.File
}

func newCSV(name string, header ...string) *csvWriter {
	if csvDirGlobal == "" {
		return nil
	}
	f, err := os.Create(csvDirGlobal + "/" + name + ".csv")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return nil
	}
	w := &csvWriter{f: f}
	w.row(header...)
	return w
}

func (w *csvWriter) row(cols ...string) {
	if w == nil {
		return
	}
	fmt.Fprintln(w.f, strings.Join(cols, ","))
}

func (w *csvWriter) close() {
	if w != nil {
		w.f.Close()
	}
}
