// Command fairmc runs the fair stateless model checker on one of the
// built-in model programs.
//
// Usage:
//
//	fairmc -list
//	fairmc -prog wsq-bug2-lockfree-steal [-cb 2] [-fair=true]
//	       [-maxsteps 5000] [-depthbound 0] [-randomtail]
//	       [-maxexec 0] [-timelimit 60s] [-trace] [-seed 1] [-p N]
//
// -p sets the parallel worker count (default GOMAXPROCS) and applies
// to both systematic and random searches; -p 1 is the sequential
// searcher. -race, -sleepsets and -dpor force sequential search.
//
// Long runs can be hardened with -watchdog (per-step wedge detector),
// -checkpoint FILE (periodic resumable snapshots; also written on
// SIGINT/SIGTERM), and -resume FILE (continue a checkpointed search).
//
// The nondeterminism defense is on by default: prefix replays are
// verified against per-step conformance digests, a persistently
// diverging subtree is quarantined after -div-retries replay attempts
// (reported as a warning; a search with quarantines never claims
// exhaustion), and every finding is replayed -confirm times and tagged
// with a reproducibility verdict ("stable (n/n)" or "flaky (k/n)").
// -no-conformance disables the digest verification, -confirm 0 the
// confirmation pass.
//
// Observability: -progress prints a live telemetry line every few
// seconds, -metrics-out FILE writes the deterministic run report
// (JSON, schema docs/run-report.schema.json), -events-out FILE streams
// structured JSONL trace events, and -pprof ADDR serves net/http/pprof.
// See docs/OBSERVABILITY.md.
//
// Exit status: codes 0–4, defined once in this command's -h output
// (the exitStatusHelp text below) and summarized in the README's
// "Exit status" section.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"fairmc"
	"fairmc/internal/trace"
	"fairmc/progs"
)

// exitStatusHelp is the canonical definition of the exit codes,
// printed by -h and referenced by the README and the package comment.
// Keep the wording here; everything else points at it.
const exitStatusHelp = `exit status:
  0  no findings (including searches that only quarantined
     nondeterministic subtrees, which are reported as warnings)
  1  a safety violation, deadlock, divergence, wedged thread, or race
     was found (and, when -confirm > 0, at least one finding was
     confirmed reproducible)
  2  usage error (bad flags, unknown program, invalid option combination)
  3  interrupted by SIGINT/SIGTERM (a final checkpoint is written first
     when -checkpoint is set; resume with -resume)
  4  findings exist but every one failed its confirmation replays
     (flaky — likely program nondeterminism, not a trustworthy
     counterexample)`

// fatalUsage prints a diagnostic and exits with the usage status.
func fatalUsage(v any) {
	fmt.Fprintln(os.Stderr, v)
	os.Exit(2)
}

func main() {
	var (
		list       = flag.Bool("list", false, "list the built-in programs and exit")
		prog       = flag.String("prog", "", "program to check (see -list)")
		fair       = flag.Bool("fair", true, "use the fair scheduler (Algorithm 1)")
		fairK      = flag.Int("fairk", 1, "process every k-th yield (the paper's parameterization)")
		cb         = flag.Int("cb", -1, "preemption bound; -1 = unbounded DFS")
		depthBound = flag.Int("depthbound", 0, "stop branching after this many steps (unfair searches)")
		randomTail = flag.Bool("randomtail", false, "finish depth-bounded executions with random scheduling")
		maxSteps   = flag.Int64("maxsteps", 100000, "per-execution step bound (divergence detector)")
		maxExec    = flag.Int64("maxexec", 0, "execution budget; 0 = unbounded")
		timeLimit  = flag.Duration("timelimit", 0, "wall-clock budget; 0 = unbounded")
		seed       = flag.Uint64("seed", 1, "seed for random tails and random walks")
		printTrace = flag.Bool("trace", false, "print the repro trace of any finding")
		saveFile   = flag.String("save", "", "write the finding's schedule to this file")
		replayFile = flag.String("replay", "", "replay a saved schedule file instead of searching")
		randomWalk = flag.Bool("random", false, "random-walk search instead of systematic DFS (needs -maxexec or -timelimit)")
		pct        = flag.Bool("pct", false, "probabilistic concurrency testing (needs -maxexec or -timelimit)")
		pctDepth   = flag.Int("pctdepth", 3, "PCT target bug depth d")
		sleepSets  = flag.Bool("sleepsets", false, "sleep-set partial-order reduction (unfair searches only)")
		dpor       = flag.Bool("dpor", false, "dynamic partial-order reduction (unfair, terminating programs only)")
		raceDetect = flag.Bool("race", false, "attach the happens-before race detector")
		iterative  = flag.Int("iterative", -1, "iterative context bounding up to this preemption budget")
		parallel   = flag.Int("p", runtime.GOMAXPROCS(0), "worker count for the search; 1 = sequential")
		watchdog   = flag.Duration("watchdog", 30*time.Second, "per-step wedge detector: abort an execution whose thread reaches no scheduling point within this interval; 0 disables")
		ckptFile   = flag.String("checkpoint", "", "write resumable search checkpoints to this file")
		ckptEvery  = flag.Duration("ckpt-interval", 30*time.Second, "interval between periodic checkpoints")
		resumeFile = flag.String("resume", "", "resume a search from this checkpoint file")
		confirm    = flag.Int("confirm", 3, "confirmation replays per finding (reproducibility verdict); 0 disables")
		divRetries = flag.Int("div-retries", 2, "replay attempts before a diverging (nondeterministic) subtree is quarantined; 0 quarantines on first divergence")
		noConform  = flag.Bool("no-conformance", false, "disable per-step conformance digests on prefix replays")
		progress   = flag.Bool("progress", false, "print a live telemetry line to stderr every 2s")
		metricsOut = flag.String("metrics-out", "", "write the final deterministic run report (JSON) to this file")
		eventsOut  = flag.String("events-out", "", "stream structured trace events (JSONL) to this file")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Usage = func() {
		out := flag.CommandLine.Output()
		fmt.Fprintf(out, "usage: fairmc [flags]\n\n")
		flag.PrintDefaults()
		fmt.Fprintf(out, "\n%s\n", exitStatusHelp)
	}
	flag.Parse()

	// Modes that share state across executions cannot shard; fall back
	// to the sequential searcher unless the user asked for -p
	// explicitly, in which case refuse rather than silently comply.
	if *parallel > 1 && (*raceDetect || *sleepSets || *dpor) {
		explicit := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "p" {
				explicit = true
			}
		})
		if explicit {
			fmt.Fprintln(os.Stderr, "-p > 1 is incompatible with -race, -sleepsets and -dpor")
			os.Exit(2)
		}
		*parallel = 1
	}

	if *list {
		for _, p := range progs.All() {
			bug := ""
			if p.ExpectBug != "" {
				bug = " [expect: " + p.ExpectBug + "]"
			}
			fmt.Printf("%-32s %s%s\n", p.Name, p.Description, bug)
		}
		return
	}
	// A checkpoint records the identity of the search it belongs to, so
	// -resume can supply the program, strategy, seed and worker count
	// when the matching flags are not given explicitly. Semantic options
	// beyond those (e.g. -fair, -cb) still have to match; Validate
	// rejects the resume otherwise. Budgets (-maxexec, -timelimit) are
	// deliberately fresh on every resume.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	var resumeCkpt *fairmc.Checkpoint
	if *resumeFile != "" {
		ck, err := fairmc.LoadCheckpoint(*resumeFile)
		if err != nil {
			fatalUsage(err)
		}
		resumeCkpt = ck
		if *prog == "" {
			*prog = ck.Meta.Program
		}
		if !explicit["random"] && !explicit["pct"] {
			switch ck.Meta.Strategy {
			case "random":
				*randomWalk = true
			case "pct":
				*pct = true
			}
		}
		if !explicit["seed"] {
			*seed = ck.Meta.Seed
		}
		if !explicit["p"] && ck.Meta.Parallelism > 0 {
			*parallel = ck.Meta.Parallelism
		}
		// Keep checkpointing the resumed search to the same file
		// unless the user redirected it.
		if *ckptFile == "" {
			*ckptFile = *resumeFile
		}
	}

	p, ok := progs.Lookup(*prog)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown program %q (use -list)\n", *prog)
		os.Exit(2)
	}

	opts := fairmc.Options{
		Fair:          *fair,
		FairK:         *fairK,
		ContextBound:  *cb,
		DepthBound:    *depthBound,
		RandomTail:    *randomTail,
		RandomWalk:    *randomWalk,
		PCT:           *pct,
		PCTDepth:      *pctDepth,
		SleepSets:     *sleepSets,
		DPOR:          *dpor,
		MaxSteps:      *maxSteps,
		MaxExecutions: *maxExec,
		TimeLimit:     *timeLimit,
		Seed:          *seed,
		Parallelism:   *parallel,
		Watchdog:      *watchdog,
		ProgramName:   *prog,
		ConfirmRuns:   *confirm,
		// In Options, 0 means "default retries" and negative means none;
		// on the command line 0 plainly means none.
		DivergenceRetries:  *divRetries,
		DisableConformance: *noConform,
	}
	if *divRetries == 0 {
		opts.DivergenceRetries = -1
	}
	if *ckptFile != "" {
		opts.CheckpointPath = *ckptFile
		opts.CheckpointInterval = *ckptEvery
	}
	opts.Resume = resumeCkpt

	// Observability. The live metrics registry feeds the -progress
	// reporter; the run report written by -metrics-out derives from the
	// merged search report instead and is deterministic (see
	// docs/OBSERVABILITY.md). Both apply to a single search, so reject
	// them for -replay (no search) and -iterative (many searches).
	if (*progress || *metricsOut != "" || *eventsOut != "") &&
		(*replayFile != "" || *iterative >= 0) {
		fatalUsage("-progress/-metrics-out/-events-out observe a single search; they are not supported with -replay or -iterative")
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof: %v\n", err)
			}
		}()
	}
	var metrics *fairmc.Metrics
	if *progress {
		metrics = fairmc.NewMetrics()
		opts.Metrics = metrics
	}
	var recorder *fairmc.EventRecorder
	var eventsFile *os.File
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			fatalUsage(err)
		}
		eventsFile = f
		// Parallel workers emit in bursts that outrun the single encoder
		// goroutine; a deep queue keeps short searches lossless. Long
		// searches may still drop (and count) events — by design the
		// queue never blocks the scheduler.
		recorder = fairmc.NewEventRecorder(f, 1<<16)
		opts.EventSink = recorder
	}

	// A first SIGINT/SIGTERM asks the search to stop at the next
	// execution boundary, which also flushes a final checkpoint; a
	// second signal kills the process the classic way.
	stop := make(chan struct{})
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		close(stop)
		<-sigs
		os.Exit(130)
	}()
	opts.Stop = stop

	if *replayFile != "" {
		data, err := os.ReadFile(*replayFile)
		if err != nil {
			fatalUsage(err)
		}
		meta, sched, err := trace.Unmarshal(data)
		if err != nil {
			fatalUsage(err)
		}
		if err := meta.Validate(p.Name); err != nil {
			fatalUsage(err)
		}
		opts.Fair = meta.Fair
		if meta.FairK > 0 {
			opts.FairK = meta.FairK
		}
		if meta.MaxSteps > 0 {
			opts.MaxSteps = meta.MaxSteps
		}
		r, err := fairmc.Replay(p.Body, sched, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "replay of %s failed: %v\n", *replayFile, err)
			if r != nil {
				fmt.Fprintf(os.Stderr, "  got %d steps in before the divergence (outcome %s, expected %s)\n",
					r.Steps, r.Outcome, meta.Outcome)
			}
			os.Exit(1)
		}
		fmt.Printf("replayed %s: outcome %s (expected %s)\n", *replayFile, r.Outcome, meta.Outcome)
		if *printTrace {
			fmt.Print(r.FormatTrace())
		}
		if r.Outcome != fairmc.Terminated {
			os.Exit(1)
		}
		return
	}

	if *iterative >= 0 {
		if *ckptFile != "" || resumeCkpt != nil {
			fatalUsage("-checkpoint/-resume are not supported with -iterative (each bound is its own search)")
		}
		reports, err := fairmc.CheckIterative(p.Body, *iterative, opts)
		if err != nil {
			fatalUsage(err)
		}
		fmt.Printf("program:     %s\n", p.Name)
		for _, br := range reports {
			status := "clean"
			switch {
			case br.FirstBug != nil:
				status = "FOUND " + br.FirstBug.Outcome.String()
			case br.Divergence != nil:
				status = "FOUND divergence"
			case !br.Exhausted:
				status = "incomplete"
			}
			fmt.Printf("cb=%d: %d executions, %s (%.2fs)\n",
				br.Bound, br.Executions, status, br.Elapsed.Seconds())
		}
		last := reports[len(reports)-1]
		if last.FirstBug != nil || last.Divergence != nil {
			os.Exit(1)
		}
		return
	}

	start := time.Now()
	var progressDone chan struct{}
	if *progress {
		progressDone = make(chan struct{})
		go func() {
			tick := time.NewTicker(2 * time.Second)
			defer tick.Stop()
			for {
				select {
				case <-progressDone:
					return
				case <-tick.C:
					s := metrics.Snapshot()
					fmt.Fprintf(os.Stderr,
						"progress: %d execs, %d steps, frontier %d, yields %d, fair-blocked %d, edges +%d/-%d, quarantined %d, wedges %d\n",
						s.Executions, s.Steps, s.Frontier, s.Yields,
						s.FairBlocked, s.EdgeAdds, s.EdgeErases,
						s.Quarantined, s.Wedges)
				}
			}
		}()
	}
	var res *fairmc.Result
	var err error
	if *raceDetect {
		res, err = fairmc.CheckRaces(p.Body, opts)
	} else {
		res, err = fairmc.Check(p.Body, opts)
	}
	if progressDone != nil {
		close(progressDone)
	}
	// The exit switch below calls os.Exit, which skips deferred
	// functions — flush the event stream and write the run report here,
	// before any classification can exit.
	if recorder != nil {
		if cerr := recorder.Close(); cerr != nil {
			fmt.Fprintf(os.Stderr, "event stream: %v\n", cerr)
		}
		if n := recorder.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "warning: %d trace event(s) dropped by the bounded event queue (slow writer)\n", n)
		}
		if cerr := eventsFile.Close(); cerr != nil {
			fmt.Fprintf(os.Stderr, "event stream: %v\n", cerr)
		}
	}
	if err != nil {
		fatalUsage(err)
	}
	if *metricsOut != "" {
		data, rerr := res.RunReport(p.Name, opts).Encode()
		if rerr == nil {
			rerr = os.WriteFile(*metricsOut, data, 0o644)
		}
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "run report: %v\n", rerr)
		} else {
			fmt.Printf("run report written to %s\n", *metricsOut)
		}
	}
	fmt.Printf("program:     %s\n", p.Name)
	fmt.Printf("executions:  %d (%.2fs, max depth %d)\n",
		res.Executions, time.Since(start).Seconds(), res.MaxDepth)
	if res.CheckpointError != "" {
		fmt.Fprintf(os.Stderr, "warning: %s\n", res.CheckpointError)
	}
	for _, wf := range res.WorkerFailures {
		fmt.Fprintf(os.Stderr, "worker failure (%s unit %d, attempt %d): %s\n",
			wf.Mode, wf.Unit, wf.Attempt, wf.Panic)
	}
	if res.Skipped > 0 {
		fmt.Fprintf(os.Stderr, "warning: %d work unit(s) skipped after repeated worker failures; coverage is incomplete\n",
			res.Skipped)
	}
	if res.Quarantined > 0 {
		fmt.Fprintf(os.Stderr, "warning: %d subtree(s) quarantined — the program is not a deterministic function of its schedule there; coverage is incomplete\n",
			res.Quarantined)
		const maxShown = 8
		for i, nr := range res.Nondeterminism {
			if i == maxShown {
				fmt.Fprintf(os.Stderr, "  … and %d more\n", len(res.Nondeterminism)-maxShown)
				break
			}
			fmt.Fprintf(os.Stderr, "  nondeterminism: %s\n", nr.String())
		}
	}
	for _, r := range res.Races {
		fmt.Printf("RACE: %s\n", r)
	}
	save := func(r *fairmc.ExecResult) {
		if *saveFile == "" {
			return
		}
		data, err := trace.Marshal(trace.Meta{
			Program:  p.Name,
			Fair:     opts.Fair,
			FairK:    opts.FairK,
			MaxSteps: opts.MaxSteps,
			Outcome:  r.Outcome.String(),
		}, r.Schedule)
		if err == nil {
			err = os.WriteFile(*saveFile, data, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "saving schedule: %v\n", err)
			return
		}
		fmt.Printf("schedule saved to %s\n", *saveFile)
	}
	// findingExit is 1 for a confirmed (or unconfirmed — ConfirmRuns=0)
	// finding and 4 when the confirmation pass ran and every replay
	// failed to reproduce it: the "finding" is likely an artifact of
	// program nondeterminism, and the distinct status lets scripts keep
	// treating exit 1 as a trustworthy counterexample.
	findingExit := func(v *fairmc.Reproducibility) int {
		if v == nil {
			return 1
		}
		fmt.Printf("reproducibility: %s\n", v)
		if v.Stable() {
			return 1
		}
		if v.FirstFailure != "" {
			fmt.Printf("  %s\n", v.FirstFailure)
		}
		return 4
	}
	switch {
	case res.FirstBug != nil:
		fmt.Printf("FOUND %s at execution %d:\n", res.FirstBug.Outcome, res.FirstBugExecution)
		if res.FirstBug.Violation != nil {
			fmt.Printf("  %s\n", res.FirstBug.Violation)
		}
		for _, b := range res.FirstBug.Blocked {
			fmt.Printf("  blocked: thread %d (%s) at %s\n", b.Tid, b.Name, b.Op)
		}
		if *printTrace {
			fmt.Print(res.FirstBug.FormatTrace())
		}
		save(res.FirstBug)
		os.Exit(findingExit(res.BugReproducibility))
	case res.Divergence != nil:
		fmt.Printf("FOUND divergence at execution %d (after %d steps)\n",
			res.DivergenceExecution, res.Divergence.Steps)
		fmt.Printf("classification: %s\n", res.Liveness)
		if *printTrace {
			fmt.Print(res.Divergence.FormatTrace())
		}
		save(res.Divergence)
		os.Exit(findingExit(res.DivergenceReproducibility))
	case res.FirstWedge != nil:
		fmt.Printf("FOUND wedged execution at execution %d:\n", res.FirstWedgeExecution)
		if res.FirstWedge.Wedge != nil {
			fmt.Printf("  %s\n", res.FirstWedge.Wedge)
		}
		if *printTrace {
			fmt.Print(res.FirstWedge.FormatTrace())
		}
		// No save(): a wedge is timing-dependent and its final step is
		// deliberately absent from the schedule, so replay cannot
		// reproduce it.
		os.Exit(1)
	case len(res.Races) > 0:
		fmt.Printf("FOUND %d race(s)\n", len(res.Races))
		os.Exit(1)
	case res.Interrupted:
		if *ckptFile != "" {
			fmt.Printf("interrupted; checkpoint written to %s (resume with -resume %s)\n", *ckptFile, *ckptFile)
		} else {
			fmt.Println("interrupted (no -checkpoint set; progress lost)")
		}
		os.Exit(3)
	case res.Exhausted:
		fmt.Println("OK: schedule tree exhausted, no findings")
	default:
		fmt.Println("no findings within budget (search incomplete)")
	}
}
