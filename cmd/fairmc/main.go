// Command fairmc runs the fair stateless model checker on one of the
// built-in model programs.
//
// Usage:
//
//	fairmc -list
//	fairmc -prog wsq-bug2-lockfree-steal [-cb 2] [-fair=true]
//	       [-maxsteps 5000] [-depthbound 0] [-randomtail]
//	       [-maxexec 0] [-timelimit 60s] [-trace] [-seed 1] [-p N]
//
// -p sets the parallel worker count (default GOMAXPROCS) and applies
// to both systematic and random searches; -p 1 is the sequential
// searcher. -race (and -sleepsets without -dpor) force sequential
// search; -dpor parallelizes via serializable work units (docs/DPOR.md)
// and produces the identical report at any -p.
//
// Long runs can be hardened with -watchdog (per-step wedge detector),
// -checkpoint FILE (periodic resumable snapshots; also written on
// SIGINT/SIGTERM), and -resume FILE (continue a checkpointed search).
//
// The nondeterminism defense is on by default: prefix replays are
// verified against per-step conformance digests, a persistently
// diverging subtree is quarantined after -div-retries replay attempts
// (reported as a warning; a search with quarantines never claims
// exhaustion), and every finding is replayed -confirm times and tagged
// with a reproducibility verdict ("stable (n/n)" or "flaky (k/n)").
// -no-conformance disables the digest verification, -confirm 0 the
// confirmation pass.
//
// Observability: -progress prints a live telemetry line every few
// seconds, -metrics-out FILE writes the deterministic run report
// (JSON, schema docs/run-report.schema.json), -events-out FILE streams
// structured JSONL trace events, and -pprof ADDR serves net/http/pprof.
// See docs/OBSERVABILITY.md.
//
// Distributed mode (docs/DISTRIBUTED.md): -serve ADDR runs the search
// as a coordinator handing lease-based shards to workers started with
// -worker URL on any machine with the same build. The final report is
// byte-identical to a local run with the same -p; -dist-state FILE
// makes the coordinator resumable after a crash. Worker↔coordinator
// calls retry with exponential backoff (-retry-base, -retry-max,
// -retry-attempts), joins and rejoins are bounded by -join-timeout,
// and -chaos-scenario NAME with -chaos-seed N injects a deterministic
// fault schedule (drops, delays, duplicates, truncations, resets,
// partitions) for resilience testing — the merged report stays
// byte-identical under chaos.
//
// Service mode (docs/SERVICE.md): -serve ADDR -ledger DIR runs the
// durable multi-job checking service — submissions, shard progress
// and final reports are committed to a write-ahead ledger, so a
// killed service restarts with the same artifacts and never re-runs
// committed work. -submit/-status/-cancel (with -job) are its
// clients; -worker pointed at a service URL automatically becomes a
// pool worker shared across jobs.
//
// Exit status: codes 0–4, defined once on the fairmc facade
// (fairmc.ExitStatusHelp, printed by -h) and summarized in the
// README's "Exit status" section.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"fairmc"
	"fairmc/internal/dist"
	"fairmc/internal/dist/transport"
	"fairmc/internal/engine"
	"fairmc/internal/faultinject"
	"fairmc/internal/trace"
	"fairmc/progs"
)

// fatalUsage prints a diagnostic and exits with the usage status.
func fatalUsage(v any) {
	fmt.Fprintln(os.Stderr, v)
	os.Exit(fairmc.ExitUsage)
}

func main() {
	var (
		list       = flag.Bool("list", false, "list the built-in programs and exit")
		prog       = flag.String("prog", "", "program to check (see -list)")
		fair       = flag.Bool("fair", true, "use the fair scheduler (Algorithm 1)")
		fairK      = flag.Int("fairk", 1, "process every k-th yield (the paper's parameterization)")
		cb         = flag.Int("cb", -1, "preemption bound; -1 = unbounded DFS")
		depthBound = flag.Int("depthbound", 0, "stop branching after this many steps (unfair searches)")
		randomTail = flag.Bool("randomtail", false, "finish depth-bounded executions with random scheduling")
		maxSteps   = flag.Int64("maxsteps", 100000, "per-execution step bound (divergence detector)")
		memModel   = flag.String("mm", "sc", "memory model for conc.Memory programs: sc (sequential consistency) or tso (store buffers with searched flush scheduling)")
		tsoBufCap  = flag.Int("tso-buf", 0, "per-thread store-buffer capacity under -mm=tso; 0 = unbounded")
		maxExec    = flag.Int64("maxexec", 0, "execution budget; 0 = unbounded")
		timeLimit  = flag.Duration("timelimit", 0, "wall-clock budget; 0 = unbounded")
		seed       = flag.Uint64("seed", 1, "seed for random tails and random walks")
		printTrace = flag.Bool("trace", false, "print the repro trace of any finding")
		saveFile   = flag.String("save", "", "write the finding's schedule to this file")
		replayFile = flag.String("replay", "", "replay a saved schedule file instead of searching")
		randomWalk = flag.Bool("random", false, "random-walk search instead of systematic DFS (needs -maxexec or -timelimit)")
		pct        = flag.Bool("pct", false, "probabilistic concurrency testing (needs -maxexec or -timelimit)")
		pctDepth   = flag.Int("pctdepth", 3, "PCT target bug depth d")
		sleepSets  = flag.Bool("sleepsets", false, "sleep-set partial-order reduction (unfair searches only)")
		dpor       = flag.Bool("dpor", false, "dynamic partial-order reduction (unfair, terminating programs only)")
		raceDetect = flag.Bool("race", false, "attach the happens-before race detector")
		iterative  = flag.Int("iterative", -1, "iterative context bounding up to this preemption budget")
		parallel   = flag.Int("p", runtime.GOMAXPROCS(0), "worker count for the search; 1 = sequential")
		watchdog   = flag.Duration("watchdog", 30*time.Second, "per-step wedge detector: abort an execution whose thread reaches no scheduling point within this interval; 0 disables")
		ckptFile   = flag.String("checkpoint", "", "write resumable search checkpoints to this file")
		ckptEvery  = flag.Duration("ckpt-interval", 30*time.Second, "interval between periodic checkpoints")
		resumeFile = flag.String("resume", "", "resume a search from this checkpoint file")
		confirm    = flag.Int("confirm", 3, "confirmation replays per finding (reproducibility verdict); 0 disables")
		divRetries = flag.Int("div-retries", 2, "replay attempts before a diverging (nondeterministic) subtree is quarantined; 0 quarantines on first divergence")
		noConform  = flag.Bool("no-conformance", false, "disable per-step conformance digests on prefix replays")
		noFastPath = flag.Bool("no-fastpath", false, "disable the engine fast path (step batching, prefix memoization, engine pooling); reports are byte-identical either way")
		progress   = flag.Bool("progress", false, "print a live telemetry line to stderr every 2s")
		metricsOut = flag.String("metrics-out", "", "write the final deterministic run report (JSON) to this file")
		eventsOut  = flag.String("events-out", "", "stream structured trace events (JSONL) to this file")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		serveAddr  = flag.String("serve", "", "run as a distributed-search coordinator on this address (e.g. 127.0.0.1:7171); -p sets the local run the merged report mirrors")
		workerURL  = flag.String("worker", "", "run as a distributed-search worker against this coordinator URL (e.g. http://host:7171); -p sets the concurrent shard capacity")
		distState  = flag.String("dist-state", "", "coordinator state file: progress survives a coordinator crash/restart (with -serve)")
		leaseTTL   = flag.Duration("lease-ttl", dist.DefaultLeaseTTL, "shard lease duration; a worker silent this long loses its shard (with -serve)")
		workDir    = flag.String("workdir", "", "worker scratch directory for per-shard checkpoints and spooled results (with -worker)")
		chaosName  = flag.String("chaos-scenario", "", "inject a deterministic fault schedule from this preset scenario (with -worker or -serve; see docs/DISTRIBUTED.md)")
		chaosSeed  = flag.Uint64("chaos-seed", 1, "seed for the deterministic fault schedule (with -chaos-scenario)")
		retryBase  = flag.Duration("retry-base", 100*time.Millisecond, "initial backoff between retries of a worker-to-coordinator call (with -worker)")
		retryMax   = flag.Duration("retry-max", 5*time.Second, "backoff ceiling for worker-to-coordinator retries (with -worker)")
		retryTries = flag.Int("retry-attempts", 8, "attempts per worker-to-coordinator call before it counts as a failure (with -worker)")
		joinWait   = flag.Duration("join-timeout", dist.DefaultJoinTimeout, "give up joining (or rejoining) the coordinator after this long (with -worker)")
		ledgerDir  = flag.String("ledger", "", "service ledger directory: with -serve, run the durable multi-job checking service instead of a single-search coordinator (docs/SERVICE.md)")
		maxJobs    = flag.Int("max-jobs", 0, "admission bound on queued+running jobs; excess submissions get 429 (with -serve -ledger); 0 = default")
		maxActive  = flag.Int("max-active", 0, "how many jobs explore concurrently (with -serve -ledger); 0 = default")
		submitURL  = flag.String("submit", "", "submit this search as a job to the service at this URL and exit; -p sets the local run the report mirrors")
		statusURL  = flag.String("status", "", "print job status from the service at this URL and exit (-job selects one job; add -metrics-out to download its run report)")
		cancelURL  = flag.String("cancel", "", "cancel -job at the service at this URL and exit")
		jobID      = flag.String("job", "", "job id for -status and -cancel")
	)
	flag.Usage = func() {
		out := flag.CommandLine.Output()
		fmt.Fprintf(out, "usage: fairmc [flags]\n\n")
		flag.PrintDefaults()
		fmt.Fprintf(out, "\n%s\n", fairmc.ExitStatusHelp)
	}
	flag.Parse()

	// Modes that share state across executions cannot shard; fall back
	// to the sequential searcher unless the user asked for -p
	// explicitly, in which case refuse rather than silently comply.
	// DPOR is exempt: its state lives in serializable work units, so it
	// shards at any -p (and -sleepsets rides inside the units).
	if *parallel > 1 && (*raceDetect || (*sleepSets && !*dpor)) {
		explicit := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "p" {
				explicit = true
			}
		})
		if explicit {
			fmt.Fprintln(os.Stderr, "-p > 1 is incompatible with -race and with -sleepsets without -dpor")
			os.Exit(2)
		}
		*parallel = 1
	}

	if *list {
		for _, p := range progs.All() {
			bug := ""
			if p.ExpectBug != "" {
				bug = " [expect: " + p.ExpectBug + "]"
			}
			fmt.Printf("%-32s %s%s\n", p.Name, p.Description, bug)
		}
		return
	}

	// Worker mode: the coordinator supplies the program and every
	// search option, so all search flags are ignored; only -p
	// (capacity), -workdir, the retry/join tuning and the chaos flags
	// apply. The URL is probed once: a jobs service gets a pool worker
	// that hops between jobs, a single-search coordinator gets the
	// classic worker.
	if *workerURL != "" {
		if *serveAddr != "" {
			fatalUsage("-worker and -serve are mutually exclusive")
		}
		retry := transport.Policy{
			MaxAttempts: *retryTries,
			BaseDelay:   *retryBase,
			MaxDelay:    *retryMax,
			Seed:        *chaosSeed,
		}
		if urlIsService(*workerURL) {
			runPoolWorkerMode(*workerURL, *parallel, *workDir, retry, *joinWait)
		} else {
			runWorkerMode(*workerURL, *parallel, *workDir, retry, *joinWait,
				chaosInjector(*chaosName, *chaosSeed))
		}
		return
	}

	// Service clients and the service itself need no local search setup.
	if *statusURL != "" {
		clientStatus(*statusURL, *jobID, *metricsOut)
		return
	}
	if *cancelURL != "" {
		clientCancel(*cancelURL, *jobID)
		return
	}
	if *serveAddr != "" && *ledgerDir != "" {
		runService(*serveAddr, *ledgerDir, *maxJobs, *maxActive, *leaseTTL)
		return
	}
	// A checkpoint records the identity of the search it belongs to, so
	// -resume can supply the program, strategy, seed and worker count
	// when the matching flags are not given explicitly. Semantic options
	// beyond those (e.g. -fair, -cb) still have to match; Validate
	// rejects the resume otherwise. Budgets (-maxexec, -timelimit) are
	// deliberately fresh on every resume.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	var resumeCkpt *fairmc.Checkpoint
	if *resumeFile != "" {
		ck, err := fairmc.LoadCheckpoint(*resumeFile)
		if err != nil {
			fatalUsage(err)
		}
		resumeCkpt = ck
		if *prog == "" {
			*prog = ck.Meta.Program
		}
		if !explicit["random"] && !explicit["pct"] {
			switch ck.Meta.Strategy {
			case "random":
				*randomWalk = true
			case "pct":
				*pct = true
			}
		}
		if !explicit["seed"] {
			*seed = ck.Meta.Seed
		}
		if !explicit["p"] && ck.Meta.Parallelism > 0 {
			*parallel = ck.Meta.Parallelism
		}
		// Keep checkpointing the resumed search to the same file
		// unless the user redirected it.
		if *ckptFile == "" {
			*ckptFile = *resumeFile
		}
	}

	p, ok := progs.Lookup(*prog)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown program %q (use -list)\n", *prog)
		os.Exit(2)
	}

	opts := fairmc.Options{
		Fair:          *fair,
		FairK:         *fairK,
		ContextBound:  *cb,
		DepthBound:    *depthBound,
		RandomTail:    *randomTail,
		RandomWalk:    *randomWalk,
		PCT:           *pct,
		PCTDepth:      *pctDepth,
		SleepSets:     *sleepSets,
		DPOR:          *dpor,
		MaxSteps:      *maxSteps,
		MemModel:      *memModel,
		TSOBufCap:     *tsoBufCap,
		MaxExecutions: *maxExec,
		TimeLimit:     *timeLimit,
		Seed:          *seed,
		Parallelism:   *parallel,
		Watchdog:      *watchdog,
		ProgramName:   *prog,
		ConfirmRuns:   *confirm,
		// In Options, 0 means "default retries" and negative means none;
		// on the command line 0 plainly means none.
		DivergenceRetries:  *divRetries,
		DisableConformance: *noConform,
		NoFastPath:         *noFastPath,
	}
	if *divRetries == 0 {
		opts.DivergenceRetries = -1
	}
	if *ckptFile != "" {
		opts.CheckpointPath = *ckptFile
		opts.CheckpointInterval = *ckptEvery
	}
	opts.Resume = resumeCkpt

	// Submission client: ship the search flags to a service as one job.
	// The program must exist in this build too — same-build is already
	// the distributed-mode contract, and it catches typos locally.
	if *submitURL != "" {
		if *timeLimit != 0 {
			fatalUsage("-submit needs a deterministic budget: use -maxexec (-timelimit cannot be sharded)")
		}
		if *ckptFile != "" || resumeCkpt != nil {
			fatalUsage("-submit jobs persist in the service ledger, not -checkpoint/-resume")
		}
		clientSubmit(*submitURL, *prog, opts, *parallel)
		return
	}

	// Coordinator mode: plan the search, serve the worker protocol,
	// and report the merged result through the same path as a local
	// run. The merged report is byte-identical to a local run with
	// the same -p, so everything downstream (run report, exit status)
	// behaves as if the search had run in this process.
	if *serveAddr != "" {
		if *replayFile != "" || *iterative >= 0 || *raceDetect || (*sleepSets && !*dpor) {
			fatalUsage("-serve is incompatible with -replay, -iterative, -race, and -sleepsets without -dpor (their state cannot be sharded)")
		}
		if *timeLimit != 0 {
			fatalUsage("-serve needs a deterministic budget: use -maxexec (-timelimit cannot be sharded)")
		}
		if *ckptFile != "" || resumeCkpt != nil {
			fatalUsage("-serve persists progress in -dist-state, not -checkpoint/-resume")
		}
		serveCoordinator(p, opts, *parallel, *serveAddr, *distState, *leaseTTL,
			*progress, *metricsOut, *eventsOut, *printTrace, *saveFile,
			chaosInjector(*chaosName, *chaosSeed))
		return
	}

	// Observability. The live metrics registry feeds the -progress
	// reporter; the run report written by -metrics-out derives from the
	// merged search report instead and is deterministic (see
	// docs/OBSERVABILITY.md). Both apply to a single search, so reject
	// them for -replay (no search) and -iterative (many searches).
	if (*progress || *metricsOut != "" || *eventsOut != "") &&
		(*replayFile != "" || *iterative >= 0) {
		fatalUsage("-progress/-metrics-out/-events-out observe a single search; they are not supported with -replay or -iterative")
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof: %v\n", err)
			}
		}()
	}
	var metrics *fairmc.Metrics
	if *progress {
		metrics = fairmc.NewMetrics()
		opts.Metrics = metrics
	}
	var recorder *fairmc.EventRecorder
	var eventsFile *os.File
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			fatalUsage(err)
		}
		eventsFile = f
		// Parallel workers emit in bursts that outrun the single encoder
		// goroutine; a deep queue keeps short searches lossless. Long
		// searches may still drop (and count) events — by design the
		// queue never blocks the scheduler.
		recorder = fairmc.NewEventRecorder(f, 1<<16)
		opts.EventSink = recorder
	}

	// A first SIGINT/SIGTERM asks the search to stop at the next
	// execution boundary, which also flushes a final checkpoint; a
	// second signal kills the process the classic way.
	stop := make(chan struct{})
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		close(stop)
		<-sigs
		os.Exit(130)
	}()
	opts.Stop = stop

	if *replayFile != "" {
		data, err := os.ReadFile(*replayFile)
		if err != nil {
			fatalUsage(err)
		}
		meta, sched, err := trace.Unmarshal(data)
		if err != nil {
			fatalUsage(err)
		}
		if err := meta.Validate(p.Name); err != nil {
			fatalUsage(err)
		}
		opts.Fair = meta.Fair
		if meta.FairK > 0 {
			opts.FairK = meta.FairK
		}
		if meta.MaxSteps > 0 {
			opts.MaxSteps = meta.MaxSteps
		}
		if meta.MemModel != "" {
			opts.MemModel = meta.MemModel
			opts.TSOBufCap = meta.TSOBufCap
		}
		r, err := fairmc.Replay(p.Body, sched, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "replay of %s failed: %v\n", *replayFile, err)
			if r != nil {
				fmt.Fprintf(os.Stderr, "  got %d steps in before the divergence (outcome %s, expected %s)\n",
					r.Steps, r.Outcome, meta.Outcome)
			}
			os.Exit(1)
		}
		fmt.Printf("replayed %s: outcome %s (expected %s)\n", *replayFile, r.Outcome, meta.Outcome)
		if *printTrace {
			fmt.Print(r.FormatTrace())
		}
		if r.Outcome != fairmc.Terminated {
			os.Exit(1)
		}
		return
	}

	if *iterative >= 0 {
		if *ckptFile != "" || resumeCkpt != nil {
			fatalUsage("-checkpoint/-resume are not supported with -iterative (each bound is its own search)")
		}
		reports, err := fairmc.CheckIterative(p.Body, *iterative, opts)
		if err != nil {
			fatalUsage(err)
		}
		fmt.Printf("program:     %s\n", p.Name)
		for _, br := range reports {
			status := "clean"
			switch {
			case br.FirstBug != nil:
				status = "FOUND " + br.FirstBug.Outcome.String()
			case br.Divergence != nil:
				status = "FOUND divergence"
			case !br.Exhausted:
				status = "incomplete"
			}
			fmt.Printf("cb=%d: %d executions, %s (%.2fs)\n",
				br.Bound, br.Executions, status, br.Elapsed.Seconds())
		}
		last := reports[len(reports)-1]
		if last.FirstBug != nil || last.Divergence != nil {
			os.Exit(1)
		}
		return
	}

	start := time.Now()
	var stopProgress func()
	if *progress {
		stopProgress = startProgress(metrics)
	}
	var res *fairmc.Result
	var err error
	if *raceDetect {
		res, err = fairmc.CheckRaces(p.Body, opts)
	} else {
		res, err = fairmc.Check(p.Body, opts)
	}
	if stopProgress != nil {
		stopProgress()
	}
	// The exit switch below calls os.Exit, which skips deferred
	// functions — flush the event stream and write the run report here,
	// before any classification can exit.
	if recorder != nil {
		if cerr := recorder.Close(); cerr != nil {
			fmt.Fprintf(os.Stderr, "event stream: %v\n", cerr)
		}
		if n := recorder.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "warning: %d trace event(s) dropped by the bounded event queue (slow writer)\n", n)
		}
		if cerr := eventsFile.Close(); cerr != nil {
			fmt.Fprintf(os.Stderr, "event stream: %v\n", cerr)
		}
	}
	if err != nil {
		fatalUsage(err)
	}
	hint := "no -checkpoint set; progress lost"
	if *ckptFile != "" {
		hint = fmt.Sprintf("checkpoint written to %s (resume with -resume %s)", *ckptFile, *ckptFile)
	}
	finishSearch(res, p.Name, opts, start, outputConfig{
		printTrace:    *printTrace,
		saveFile:      *saveFile,
		metricsOut:    *metricsOut,
		interruptHint: hint,
	})
}

// outputConfig is the reporting configuration finishSearch needs; the
// local and coordinator paths both end here.
type outputConfig struct {
	printTrace    bool
	saveFile      string
	metricsOut    string
	interruptHint string // printed after "interrupted; "
}

// finishSearch prints the human summary, writes the run report, and
// exits with the shared fairmc exit status. It is the single end of
// every search, local or distributed.
func finishSearch(res *fairmc.Result, program string, opts fairmc.Options, start time.Time, out outputConfig) {
	if out.metricsOut != "" {
		data, rerr := res.RunReport(program, opts).Encode()
		if rerr == nil {
			rerr = os.WriteFile(out.metricsOut, data, 0o644)
		}
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "run report: %v\n", rerr)
		} else {
			fmt.Printf("run report written to %s\n", out.metricsOut)
		}
	}
	fmt.Printf("program:     %s\n", program)
	fmt.Printf("executions:  %d (%.2fs, max depth %d)\n",
		res.Executions, time.Since(start).Seconds(), res.MaxDepth)
	if res.CheckpointError != "" {
		fmt.Fprintf(os.Stderr, "warning: %s\n", res.CheckpointError)
	}
	for _, wf := range res.WorkerFailures {
		fmt.Fprintf(os.Stderr, "worker failure (%s unit %d, attempt %d): %s\n",
			wf.Mode, wf.Unit, wf.Attempt, wf.Panic)
	}
	if res.Skipped > 0 {
		fmt.Fprintf(os.Stderr, "warning: %d work unit(s) skipped after repeated worker failures; coverage is incomplete\n",
			res.Skipped)
	}
	if res.Quarantined > 0 {
		fmt.Fprintf(os.Stderr, "warning: %d subtree(s) quarantined — the program is not a deterministic function of its schedule there; coverage is incomplete\n",
			res.Quarantined)
		const maxShown = 8
		for i, nr := range res.Nondeterminism {
			if i == maxShown {
				fmt.Fprintf(os.Stderr, "  … and %d more\n", len(res.Nondeterminism)-maxShown)
				break
			}
			fmt.Fprintf(os.Stderr, "  nondeterminism: %s\n", nr.String())
		}
	}
	for _, r := range res.Races {
		fmt.Printf("RACE: %s\n", r)
	}
	save := func(r *fairmc.ExecResult) {
		if out.saveFile == "" {
			return
		}
		data, err := trace.Marshal(trace.Meta{
			Program:   program,
			Fair:      opts.Fair,
			FairK:     opts.FairK,
			MaxSteps:  opts.MaxSteps,
			MemModel:  opts.MemModel,
			TSOBufCap: opts.TSOBufCap,
			Outcome:   r.Outcome.String(),
		}, r.Schedule)
		if err == nil {
			err = os.WriteFile(out.saveFile, data, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "saving schedule: %v\n", err)
			return
		}
		fmt.Printf("schedule saved to %s\n", out.saveFile)
	}
	// A flaky confirmation verdict prints its first failure so the
	// nondeterminism is diagnosable; the distinct ExitFlaky status lets
	// scripts keep treating ExitFinding as a trustworthy counterexample.
	reproLine := func(v *fairmc.Reproducibility) {
		if v == nil {
			return
		}
		fmt.Printf("reproducibility: %s\n", v)
		if !v.Stable() && v.FirstFailure != "" {
			fmt.Printf("  %s\n", v.FirstFailure)
		}
	}
	switch {
	case res.FirstBug != nil:
		fmt.Printf("FOUND %s at execution %d:\n", res.FirstBug.Outcome, res.FirstBugExecution)
		if res.FirstBug.Violation != nil {
			fmt.Printf("  %s\n", res.FirstBug.Violation)
		}
		for _, b := range res.FirstBug.Blocked {
			fmt.Printf("  blocked: thread %d (%s) at %s\n", b.Tid, b.Name, b.Op)
		}
		if out.printTrace {
			fmt.Print(res.FirstBug.FormatTrace())
		}
		save(res.FirstBug)
		reproLine(res.BugReproducibility)
	case res.Divergence != nil:
		fmt.Printf("FOUND divergence at execution %d (after %d steps)\n",
			res.DivergenceExecution, res.Divergence.Steps)
		fmt.Printf("classification: %s\n", res.Liveness)
		if out.printTrace {
			fmt.Print(res.Divergence.FormatTrace())
		}
		save(res.Divergence)
		reproLine(res.DivergenceReproducibility)
	case res.FirstWedge != nil:
		fmt.Printf("FOUND wedged execution at execution %d:\n", res.FirstWedgeExecution)
		if res.FirstWedge.Wedge != nil {
			fmt.Printf("  %s\n", res.FirstWedge.Wedge)
		}
		if out.printTrace {
			fmt.Print(res.FirstWedge.FormatTrace())
		}
		// No save(): a wedge is timing-dependent and its final step is
		// deliberately absent from the schedule, so replay cannot
		// reproduce it.
	case len(res.Races) > 0:
		fmt.Printf("FOUND %d race(s)\n", len(res.Races))
	case res.Interrupted:
		fmt.Printf("interrupted (%s)\n", out.interruptHint)
	case res.Exhausted:
		fmt.Println("OK: schedule tree exhausted, no findings")
	default:
		fmt.Println("no findings within budget (search incomplete)")
	}
	if code := res.ExitStatus(); code != fairmc.ExitOK {
		os.Exit(code)
	}
}

// startProgress starts the live telemetry line and returns its stop
// function.
func startProgress(metrics *fairmc.Metrics) (stop func()) {
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(2 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				s := metrics.Snapshot()
				fmt.Fprintf(os.Stderr,
					"progress: %d execs, %d steps, frontier %d, yields %d, fair-blocked %d, edges +%d/-%d, quarantined %d, wedges %d\n",
					s.Executions, s.Steps, s.Frontier, s.Yields,
					s.FairBlocked, s.EdgeAdds, s.EdgeErases,
					s.Quarantined, s.Wedges)
			}
		}
	}()
	return func() { close(done) }
}

// serveCoordinator runs the search as a distributed coordinator and
// reports the merged result exactly like a local run with -p
// refParallelism.
func serveCoordinator(p progs.Program, opts fairmc.Options, refParallelism int,
	addr, statePath string, leaseTTL time.Duration,
	progress bool, metricsOut, eventsOut string, printTrace bool, saveFile string,
	chaos *faultinject.Injector) {
	// The coordinator always keeps a registry: worker heartbeat deltas
	// merge into it and it is served at /metrics; -progress reads it
	// like a local run.
	metrics := fairmc.NewMetrics()
	var eventsFile *os.File
	if eventsOut != "" {
		f, err := os.Create(eventsOut)
		if err != nil {
			fatalUsage(err)
		}
		eventsFile = f
	}
	cfg := dist.CoordinatorConfig{
		Prog:           p.Body,
		Program:        p.Name,
		Options:        opts,
		RefParallelism: refParallelism,
		LeaseTTL:       leaseTTL,
		StatePath:      statePath,
		Metrics:        metrics,
		Chaos:          chaos,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "coordinator: "+format+"\n", args...)
		},
	}
	if chaos != nil {
		chaos.OnFault = func(string) { metrics.DistFaultsInjected.Inc() }
	}
	if eventsFile != nil {
		cfg.EventWriter = eventsFile
	}
	coord, err := dist.NewCoordinator(cfg)
	if err != nil {
		fatalUsage(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatalUsage(err)
	}
	plan := coord.Plan()
	fmt.Fprintf(os.Stderr, "coordinator: serving %s on http://%s (%s strategy, %d shards, report mirrors -p %d)\n",
		p.Name, ln.Addr(), plan.Strategy, len(plan.Shards), plan.RefParallelism)
	srv := &http.Server{Handler: coord.Handler()}
	go func() {
		if serr := srv.Serve(ln); serr != nil && serr != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "coordinator: serve: %v\n", serr)
		}
	}()
	// A first SIGINT/SIGTERM seals the merge at the current horizon and
	// reports an interrupted (but, with -dist-state, resumable) search;
	// a second signal kills the process the classic way.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		coord.Interrupt()
		<-sigs
		os.Exit(130)
	}()
	start := time.Now()
	var stopProgress func()
	if progress {
		stopProgress = startProgress(metrics)
	}
	rep := coord.Wait()
	if stopProgress != nil {
		stopProgress()
	}
	// Keep serving briefly so every worker observes the done response
	// and exits cleanly; a crashed worker would hold the drain open, so
	// bound the grace period.
	select {
	case <-coord.Drained():
	case <-time.After(2 * time.Second):
	}
	srv.Close()
	if eventsFile != nil {
		if cerr := eventsFile.Close(); cerr != nil {
			fmt.Fprintf(os.Stderr, "event stream: %v\n", cerr)
		}
	}
	hint := "no -dist-state set; progress lost"
	if statePath != "" {
		hint = fmt.Sprintf("state written to %s (resume by restarting the coordinator with -dist-state %s)",
			statePath, statePath)
	}
	finishSearch(fairmc.ResultFromReport(rep), p.Name, opts, start, outputConfig{
		printTrace:    printTrace,
		saveFile:      saveFile,
		metricsOut:    metricsOut,
		interruptHint: hint,
	})
}

// chaosInjector resolves the -chaos-scenario/-chaos-seed flags into a
// deterministic fault injector, or nil when chaos is off.
func chaosInjector(name string, seed uint64) *faultinject.Injector {
	if name == "" {
		return nil
	}
	sc, ok := faultinject.Lookup(name)
	if !ok {
		fatalUsage(fmt.Sprintf("unknown -chaos-scenario %q (have: %s)",
			name, strings.Join(faultinject.Names(), ", ")))
	}
	return faultinject.New(seed, sc)
}

// runWorkerMode runs this process as a distributed-search worker: the
// coordinator supplies the program name and every search option.
func runWorkerMode(url string, capacity int, workDir string,
	retry transport.Policy, joinTimeout time.Duration, chaos *faultinject.Injector) {
	cleanup := func() {}
	if workDir == "" {
		// A scratch directory still helps within one worker process: a
		// cancelled shard that comes back keeps its checkpoint and a
		// spooled result survives until replay. Survive restarts by
		// passing -workdir explicitly.
		d, err := os.MkdirTemp("", "fairmc-worker-")
		if err != nil {
			fatalUsage(err)
		}
		workDir = d
		cleanup = func() { os.RemoveAll(d) }
	}
	stop := make(chan struct{})
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		close(stop)
		<-sigs
		os.Exit(130)
	}()
	metrics := fairmc.NewMetrics()
	var rt http.RoundTripper
	if chaos != nil {
		chaos.OnFault = func(string) { metrics.DistFaultsInjected.Inc() }
		rt = chaos.RoundTripper(nil)
	}
	err := dist.RunWorker(dist.WorkerConfig{
		URL:      url,
		Capacity: capacity,
		WorkDir:  workDir,
		Lookup: func(name string) (func(*engine.T), bool) {
			p, ok := progs.Lookup(name)
			if !ok {
				return nil, false
			}
			return p.Body, true
		},
		Metrics:     metrics,
		Retry:       retry,
		JoinTimeout: joinTimeout,
		Transport:   rt,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "worker: "+format+"\n", args...)
		},
		Stop: stop,
	})
	cleanup()
	if err != nil {
		fmt.Fprintf(os.Stderr, "worker: %v\n", err)
		if errors.Is(err, dist.ErrSpecMismatch) {
			os.Exit(fairmc.ExitUsage)
		}
		os.Exit(1)
	}
}
