// Service mode and its clients: -serve with -ledger runs the durable
// multi-job checking service (internal/dist/jobs); -submit, -status
// and -cancel talk to one; -worker autodetects whether its URL is a
// service (pool mode) or a single-search coordinator (legacy mode).
// See docs/SERVICE.md.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fairmc"
	"fairmc/internal/dist"
	"fairmc/internal/dist/jobs"
	"fairmc/internal/dist/transport"
	"fairmc/internal/engine"
	"fairmc/progs"
)

// progLookup adapts the built-in program registry to the service's
// Lookup signature.
func progLookup(name string) (func(*engine.T), bool) {
	p, ok := progs.Lookup(name)
	if !ok {
		return nil, false
	}
	return p.Body, true
}

// runService serves the durable checking service until SIGINT/SIGTERM
// (first signal: graceful close — running jobs stay resumable in the
// ledger; second signal: hard exit).
func runService(addr, dir string, maxJobs, maxActive int, leaseTTL time.Duration) {
	metrics := fairmc.NewMetrics()
	s, err := jobs.New(jobs.Config{
		Dir:       dir,
		Lookup:    progLookup,
		MaxActive: maxActive,
		MaxJobs:   maxJobs,
		LeaseTTL:  leaseTTL,
		Metrics:   metrics,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fatalUsage(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatalUsage(err)
	}
	fmt.Fprintf(os.Stderr, "service: serving jobs on http://%s (ledger %s)\n", ln.Addr(), dir)
	srv := &http.Server{Handler: s.Handler()}
	done := make(chan struct{})
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "service: shutting down (unfinished jobs resume on restart)")
		srv.Close()
		if cerr := s.Close(); cerr != nil {
			fmt.Fprintf(os.Stderr, "service: close: %v\n", cerr)
		}
		close(done)
		<-sigs
		os.Exit(130)
	}()
	if serr := srv.Serve(ln); serr != nil && serr != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "service: serve: %v\n", serr)
		os.Exit(1)
	}
	<-done
}

// httpJSON performs one request and decodes the JSON reply into out
// (skipped when out is nil), surfacing non-2xx replies as errors with
// the body text.
func httpJSON(method, url string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d: %s", url, resp.StatusCode, bytes.TrimSpace(data))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// clientSubmit submits one job built from the search flags and prints
// its id.
func clientSubmit(url, program string, opts fairmc.Options, refParallelism int) {
	if program == "" {
		fatalUsage("-submit needs -prog (the service validates it against its own registry)")
	}
	body, err := json.Marshal(jobs.SubmitRequest{
		Spec:           dist.SpecFromOptions(program, opts),
		RefParallelism: refParallelism,
		ConfirmRuns:    opts.ConfirmRuns,
	})
	if err != nil {
		fatalUsage(err)
	}
	var sr jobs.SubmitResponse
	if err := httpJSON(http.MethodPost, url+jobs.PathJobs, body, &sr); err != nil {
		fmt.Fprintf(os.Stderr, "submit: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("submitted %s (program %s, report mirrors -p %d)\n", sr.JobID, program, refParallelism)
}

// clientStatus prints the job table, or one job's status; with -job
// and -metrics-out it also downloads the artifact.
func clientStatus(url, jobID, metricsOut string) {
	if jobID == "" {
		var list jobs.ListResponse
		if err := httpJSON(http.MethodGet, url+jobs.PathJobs, nil, &list); err != nil {
			fmt.Fprintf(os.Stderr, "status: %v\n", err)
			os.Exit(1)
		}
		if len(list.Jobs) == 0 {
			fmt.Println("no jobs")
			return
		}
		for _, js := range list.Jobs {
			printJob(js)
		}
		return
	}
	var js jobs.JobStatus
	if err := httpJSON(http.MethodGet, url+jobs.PathJobs+"/"+jobID, nil, &js); err != nil {
		fmt.Fprintf(os.Stderr, "status: %v\n", err)
		os.Exit(1)
	}
	printJob(js)
	if metricsOut != "" {
		if !js.HasReport {
			fmt.Fprintf(os.Stderr, "status: %s has no report yet\n", jobID)
			os.Exit(1)
		}
		resp, err := http.Get(url + jobs.PathJobs + "/" + jobID + "/report")
		if err == nil && resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("HTTP %d", resp.StatusCode)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "artifact: %v\n", err)
			os.Exit(1)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err == nil {
			err = os.WriteFile(metricsOut, data, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "artifact: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("run report written to %s\n", metricsOut)
	}
}

func printJob(js jobs.JobStatus) {
	extra := ""
	if js.Shards > 0 {
		extra = fmt.Sprintf(" %d/%d shards", js.Decided, js.Shards)
	}
	if js.Error != "" {
		extra += " (" + js.Error + ")"
	}
	if js.HasReport {
		extra += " [report]"
	}
	fmt.Printf("%-8s %-32s %-10s%s\n", js.JobID, js.Program, js.State, extra)
}

// clientCancel asks the service to cancel one job.
func clientCancel(url, jobID string) {
	if jobID == "" {
		fatalUsage("-cancel needs -job ID")
	}
	var cr jobs.CancelResponse
	if err := httpJSON(http.MethodPost, url+jobs.PathJobs+"/"+jobID+"/cancel", nil, &cr); err != nil {
		fmt.Fprintf(os.Stderr, "cancel: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %s\n", cr.JobID, cr.State)
}

// urlIsService probes URL for the jobs-service assign endpoint; a
// single-search coordinator answers it 404.
func urlIsService(url string) bool {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url + jobs.PathAssign)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	var asn jobs.AssignResponse
	return json.NewDecoder(resp.Body).Decode(&asn) == nil
}

// runPoolWorkerMode serves a jobs service with this process until
// SIGINT/SIGTERM.
func runPoolWorkerMode(url string, capacity int, workDir string,
	retry transport.Policy, joinTimeout time.Duration) {
	cleanup := func() {}
	if workDir == "" {
		d, err := os.MkdirTemp("", "fairmc-pool-")
		if err != nil {
			fatalUsage(err)
		}
		workDir = d
		cleanup = func() { os.RemoveAll(d) }
	}
	stop := make(chan struct{})
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		close(stop)
		<-sigs
		os.Exit(130)
	}()
	fmt.Fprintf(os.Stderr, "worker: serving jobs service %s\n", url)
	err := jobs.RunPoolWorker(jobs.PoolConfig{
		URL:         url,
		Capacity:    capacity,
		WorkDir:     workDir,
		Lookup:      progLookup,
		Metrics:     fairmc.NewMetrics(),
		Retry:       retry,
		JoinTimeout: joinTimeout,
		Stop:        stop,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "worker: "+format+"\n", args...)
		},
	})
	cleanup()
	if err != nil {
		fmt.Fprintf(os.Stderr, "worker: %v\n", err)
		os.Exit(1)
	}
}
