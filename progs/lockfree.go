package progs

import (
	"fmt"

	"fairmc/conc"
)

// This file models classic lock-free structures — the "low-level
// synchronization libraries that typically employ nonblocking
// algorithms" the paper names as CHESS inputs that are impossible to
// modify into terminating form by hand (§4.1). Their CAS retry loops
// are exactly the cyclic structure fair scheduling exists for.

// treiberStack is a Treiber stack over model memory: nodes live in
// parallel arrays (value, next) indexed by node id+1, with 0 meaning
// nil; top holds the current head. Push and pop use CAS retry loops.
//
// The correct variant packs a version counter into the top word (the
// counted-pointer / IBM tag defense): every successful CAS bumps the
// version, so a top that went A → B → A no longer compares equal.
// With aba set the version is omitted and pop installs the next
// pointer it cached before the interference — the textbook ABA bug:
// the stale next resurrects a node another thread already popped.
type treiberStack struct {
	top    *conc.IntVar   // versioned: version<<verShift | (node id + 1)
	next   *conc.IntArray // next[node] = successor id + 1
	value  *conc.IntArray
	pushes *conc.IntArray // per-node push count, for the harness invariant
	alloc  *conc.IntVar   // bump allocator for node ids
	aba    bool
}

const (
	stackNil = int64(0)
	verShift = 16
	nodeMask = int64(1)<<verShift - 1
)

// bump returns the packed top word with node installed and, in the
// correct variant, the version advanced.
func (s *treiberStack) bump(old, node int64) int64 {
	if s.aba {
		return node // BUG: no version tag
	}
	ver := old >> verShift
	return (ver+1)<<verShift | node
}

func newTreiberStack(t *conc.T, capacity int, aba bool) *treiberStack {
	return &treiberStack{
		top:    conc.NewIntVar(t, "stack.top", stackNil),
		next:   conc.NewIntArray(t, "stack.next", capacity),
		value:  conc.NewIntArray(t, "stack.value", capacity),
		pushes: conc.NewIntArray(t, "stack.pushes", capacity),
		alloc:  conc.NewIntVar(t, "stack.alloc", 0),
		aba:    aba,
	}
}

// newNode allocates a fresh node holding v.
func (s *treiberStack) newNode(t *conc.T, v int64) int64 {
	id := s.alloc.Add(t, 1) - 1
	if int(id) >= s.value.Len() {
		t.Failf("treiber: node arena exhausted")
	}
	s.value.Set(t, int(id), v)
	return id + 1
}

// push pushes a fresh node with value v (CAS retry loop).
func (s *treiberStack) push(t *conc.T, v int64) {
	s.pushNode(t, s.newNode(t, v))
}

// pushNode pushes node n (also used by the ABA harness to re-push a
// popped node).
func (s *treiberStack) pushNode(t *conc.T, n int64) {
	for {
		t.Label(11)
		old := s.top.Load(t)
		s.next.Set(t, int(n-1), old&nodeMask)
		if s.top.CompareAndSwap(t, old, s.bump(old, n)) {
			s.pushes.Set(t, int(n-1), s.pushes.Get(t, int(n-1))+1)
			return
		}
		t.Yield() // CAS-retry back edge: be a good samaritan
	}
}

// pop removes the top node and returns (node, value); (0, 0) if empty.
func (s *treiberStack) pop(t *conc.T) (int64, int64) {
	for {
		t.Label(12)
		old := s.top.Load(t)
		node := old & nodeMask
		if node == stackNil {
			return stackNil, 0
		}
		// Read the successor pointer of the observed top. In the
		// buggy variant this cached value can go stale between here
		// and the CAS; the version tag of the correct variant makes
		// the CAS fail in exactly that case.
		nxt := s.next.Get(t, int(node-1))
		if s.top.CompareAndSwap(t, old, s.bump(old, nxt)) {
			return node, s.value.Get(t, int(node-1))
		}
		t.Yield()
	}
}

// TreiberConfig parameterizes the stack harness.
type TreiberConfig struct {
	// ABA plants the stale-next bug.
	ABA bool
}

// TreiberStack builds the ABA harness: the stack starts as [A, B]
// (A on top). Thread 1 begins popping A (reads top=A, next=B) — and
// in the window before its CAS, thread 2 pops A, pops B, and pushes A
// back (so top=A again but A.next=nil). Thread 1's CAS then succeeds
// in the buggy variant, installing the stale next pointer B — a node
// thread 2 already owns — corrupting the stack: B is popped twice.
func TreiberStack(cfg TreiberConfig) func(*conc.T) {
	return func(t *conc.T) {
		s := newTreiberStack(t, 8, cfg.ABA)
		popped := make([]*conc.IntVar, 3)
		for i := range popped {
			popped[i] = conc.NewIntVar(t, fmt.Sprintf("popped%d", i), 0)
		}
		wg := conc.NewWaitGroup(t, "wg", 2)
		s.push(t, 100) // value 100 -> node B (bottom)
		s.push(t, 101) // value 101 -> node A (top)

		t.Go("victim", func(t *conc.T) {
			// One pop; under ABA interference it returns a corrupted
			// view.
			if n, _ := s.pop(t); n != stackNil {
				popped[n-1].Add(t, 1)
			}
			wg.Done(t)
		})
		t.Go("interferer", func(t *conc.T) {
			// Pop A, pop B, push A back: the classic ABA recipe.
			if n, _ := s.pop(t); n != stackNil {
				popped[n-1].Add(t, 1)
				if n2, _ := s.pop(t); n2 != stackNil {
					popped[n2-1].Add(t, 1)
				}
				s.pushNode(t, n)
			}
			wg.Done(t)
		})
		wg.Wait(t)
		// Drain what remains.
		for {
			t.Label(1)
			n, _ := s.pop(t)
			if n == stackNil {
				break
			}
			popped[n-1].Add(t, 1)
		}
		// The linearizability invariant: no node is popped more often
		// than it was pushed. The ABA corruption breaks it — the stale
		// next pointer resurrects a node its current owner never
		// re-pushed.
		for i := 0; i < 2; i++ {
			pops := popped[i].Load(t)
			pushes := s.pushes.Get(t, i)
			t.Assert(pops <= pushes,
				fmt.Sprintf("node %d popped %d times but pushed %d (ABA)", i+1, pops, pushes))
		}
	}
}

// TicketLock is the classic fetch-and-increment ticket lock: each
// acquirer draws a ticket and spins (yielding) until now-serving
// reaches it. Starvation-free by construction; the harness asserts
// mutual exclusion and FIFO admission.
func TicketLock(threads int) func(*conc.T) {
	if threads < 2 {
		panic("progs: TicketLock needs >= 2 threads")
	}
	return func(t *conc.T) {
		nextTicket := conc.NewIntVar(t, "nextTicket", 0)
		nowServing := conc.NewIntVar(t, "nowServing", 0)
		occupancy := conc.NewIntVar(t, "cs", 0)
		admitted := conc.NewIntVar(t, "admitted", 0)
		wg := conc.NewWaitGroup(t, "wg", int64(threads))
		for i := 0; i < threads; i++ {
			t.Go(fmt.Sprintf("t%d", i), func(t *conc.T) {
				ticket := nextTicket.Add(t, 1) - 1
				for {
					t.Label(1)
					if nowServing.Load(t) == ticket {
						break
					}
					t.Yield()
				}
				t.Assert(occupancy.Add(t, 1) == 1, "mutual exclusion")
				// FIFO: the k-th admission holds ticket k.
				t.Assert(admitted.Add(t, 1)-1 == ticket, "FIFO admission order")
				occupancy.Add(t, -1)
				nowServing.Add(t, 1)
				wg.Done(t)
			})
		}
		wg.Wait(t)
	}
}

func init() {
	register(Program{
		Name:        "treiber",
		Description: "Treiber stack with ABA-safe pop (correct)",
		Body:        TreiberStack(TreiberConfig{}),
	})
	register(Program{
		Name:        "treiber-aba",
		Description: "Treiber stack with the textbook ABA bug in pop",
		ExpectBug:   "stack corruption (double pop)",
		Body:        TreiberStack(TreiberConfig{ABA: true}),
	})
	register(Program{
		Name:        "ticketlock",
		Description: "ticket lock: mutual exclusion + FIFO admission, 2 threads",
		Body:        TicketLock(2),
	})
}
