package progs

import (
	"fmt"

	"fairmc/conc"
)

// This file models the Dryad channel layer evaluated in the paper
// (Table 1: "Dryad Channels", 5 threads; "Dryad Fifo", 25 threads;
// Table 3: Dryad bugs 1–4). Dryad vertices exchange records over
// flow-controlled FIFO channels built from a ring buffer, a lock, and
// Win32 events for space/data wakeups, with timeout-based retry loops
// — the synchronization skeleton reproduced here. The four planted
// bugs follow Table 3's storyline: three races found in the channel
// code, and a fourth previously unknown bug introduced by an incorrect
// fix of bug 3 that only fair search finds.

// DryadBug selects a planted defect in the channel implementation.
type DryadBug int

const (
	// DryadCorrect is the race-free channel.
	DryadCorrect DryadBug = iota
	// DryadBug1: send pre-checks occupancy without the lock and then
	// enqueues without re-checking, overflowing the ring.
	DryadBug1
	// DryadBug2: recv publishes the freed slot (count--) and releases
	// the lock before reading the record out of the ring.
	DryadBug2
	// DryadBug3: recv blocks on the data event, but send signals it
	// only on the empty->nonempty transition; the lost wakeup strands
	// a receiver.
	DryadBug3
	// DryadBug4: the "fix" for bug 3 — reset-then-wait in recv — has
	// its own window: the reset wipes a signal that arrived after the
	// occupancy check, and the receiver strands again. Deeper
	// interleaving than bug 3; the paper's unfair search misses it.
	DryadBug4
)

func (b DryadBug) String() string {
	switch b {
	case DryadCorrect:
		return "correct"
	case DryadBug1:
		return "bug1-unlocked-occupancy"
	case DryadBug2:
		return "bug2-read-after-release"
	case DryadBug3:
		return "bug3-lost-wakeup"
	case DryadBug4:
		return "bug4-reset-race"
	default:
		return fmt.Sprintf("bug(%d)", int(b))
	}
}

// dryadEOF is the in-band end-of-stream marker.
const dryadEOF = -1

// dchan is the flow-controlled Dryad-style channel.
type dchan struct {
	capacity int64
	buf      *conc.IntArray
	count    *conc.IntVar
	sendIdx  *conc.IntVar
	recvIdx  *conc.IntVar
	mu       *conc.Mutex
	dataEv   *conc.Event // auto-reset: records available
	spaceEv  *conc.Event // auto-reset: space available
	bug      DryadBug
}

func newDChan(t *conc.T, name string, capacity int, bug DryadBug) *dchan {
	return &dchan{
		capacity: int64(capacity),
		buf:      conc.NewIntArray(t, name+".buf", capacity),
		count:    conc.NewIntVar(t, name+".count", 0),
		sendIdx:  conc.NewIntVar(t, name+".sendIdx", 0),
		recvIdx:  conc.NewIntVar(t, name+".recvIdx", 0),
		mu:       conc.NewMutex(t, name+".mu"),
		dataEv:   conc.NewEvent(t, name+".data", false, false),
		spaceEv:  conc.NewEvent(t, name+".space", false, false),
		bug:      bug,
	}
}

// send enqueues v, retrying with a timed wait while the channel is
// full.
func (c *dchan) send(t *conc.T, v int64) {
	for {
		t.Label(20)
		if c.bug == DryadBug1 {
			// BUG: occupancy checked outside the lock; a concurrent
			// sender can fill the remaining slot before we lock.
			if c.count.Load(t) >= c.capacity {
				c.spaceEv.WaitTimeout(t)
				continue
			}
			c.mu.Lock(t)
		} else {
			c.mu.Lock(t)
			if c.count.Load(t) >= c.capacity {
				c.mu.Unlock(t)
				c.spaceEv.WaitTimeout(t) // finite timeout => yield
				continue
			}
		}
		wasEmpty := c.count.Load(t) == 0
		si := c.sendIdx.Load(t)
		c.buf.Set(t, int(si%c.capacity), v)
		c.sendIdx.Store(t, si+1)
		newCount := c.count.Add(t, 1)
		t.Assert(newCount <= c.capacity, "dryad channel ring overflow")
		c.mu.Unlock(t)
		switch c.bug {
		case DryadBug3:
			// BUG: signal only on the empty->nonempty transition, an
			// "optimization" that loses wakeups.
			if wasEmpty {
				c.dataEv.Set(t)
			}
		default:
			c.dataEv.Set(t)
		}
		return
	}
}

// recv dequeues a record, waiting while the channel is empty.
func (c *dchan) recv(t *conc.T) int64 {
	for {
		t.Label(30)
		c.mu.Lock(t)
		cnt := c.count.Load(t)
		if cnt > 0 {
			ri := c.recvIdx.Load(t)
			c.recvIdx.Store(t, ri+1)
			if c.bug == DryadBug2 {
				// BUG: free the slot and release the lock before
				// reading it; a sender can overwrite the record.
				c.count.Add(t, -1)
				c.mu.Unlock(t)
				v := c.buf.Get(t, int(ri%c.capacity))
				c.spaceEv.Set(t)
				return v
			}
			v := c.buf.Get(t, int(ri%c.capacity))
			c.count.Add(t, -1)
			c.mu.Unlock(t)
			c.spaceEv.Set(t)
			return v
		}
		c.mu.Unlock(t)
		switch c.bug {
		case DryadBug3:
			// BUG: block on the event; with the conditional signal in
			// send, the wakeup for this receiver can be lost.
			c.dataEv.Wait(t)
		case DryadBug4:
			// BUG: the incorrect fix — reset the (possibly already
			// signaled) event, then block. A signal arriving between
			// the occupancy check and the reset is wiped.
			c.dataEv.Reset(t)
			c.dataEv.Wait(t)
		default:
			c.dataEv.WaitTimeout(t) // finite timeout => yield
		}
	}
}

// DryadConfig parameterizes the Dryad channels harness.
type DryadConfig struct {
	// Records is the number of records pushed through the pipeline.
	Records int
	// Capacity is the per-channel ring capacity.
	Capacity int
	// Senders is the number of producer threads feeding the first
	// channel (>1 exercises the sender/sender races of bug 1).
	Senders int
	// Receivers is the number of consumers on the final channel
	// (>1 exercises the lost-wakeup bugs 3 and 4).
	Receivers int
	// Direct removes the forwarding vertex: producers feed the
	// consumers' channel directly. The bug-hunting configurations use
	// it to keep the interleaving space small.
	Direct bool
	// Bug selects a planted defect.
	Bug DryadBug
}

// DryadChannels builds the Table 1 "Dryad Channels" harness: Senders
// producers push distinct records into a channel, a forwarding vertex
// copies them into a second channel, and Receivers consumers drain it.
// Every record must arrive exactly once; the consumers' per-record
// counters catch duplication and corruption, and lost wakeups show up
// as deadlocks.
func DryadChannels(cfg DryadConfig) func(*conc.T) {
	if cfg.Records < 1 || cfg.Capacity < 1 || cfg.Senders < 1 || cfg.Receivers < 1 {
		panic("progs: bad DryadConfig")
	}
	return func(t *conc.T) {
		out := newDChan(t, "out", cfg.Capacity, cfg.Bug)
		in := out
		workers := cfg.Senders + cfg.Receivers
		if !cfg.Direct {
			in = newDChan(t, "in", cfg.Capacity, cfg.Bug)
			workers++
		}
		seen := make([]*conc.IntVar, cfg.Records)
		for i := range seen {
			seen[i] = conc.NewIntVar(t, fmt.Sprintf("seen%d", i), 0)
		}
		wg := conc.NewWaitGroup(t, "wg", int64(workers))
		prodDone := conc.NewIntVar(t, "prodDone", 0)

		perSender := cfg.Records / cfg.Senders
		for s := 0; s < cfg.Senders; s++ {
			s := s
			lo := s * perSender
			hi := lo + perSender
			if s == cfg.Senders-1 {
				hi = cfg.Records
			}
			t.Go(fmt.Sprintf("producer%d", s), func(t *conc.T) {
				for v := lo; v < hi; v++ {
					in.send(t, int64(v))
				}
				if cfg.Direct && prodDone.Add(t, 1) == int64(cfg.Senders) {
					// Last producer closes the stream.
					for r := 0; r < cfg.Receivers; r++ {
						out.send(t, dryadEOF)
					}
				}
				wg.Done(t)
			})
		}
		if !cfg.Direct {
			t.Go("forwarder", func(t *conc.T) {
				for i := 0; i < cfg.Records; i++ {
					t.Label(1)
					out.send(t, in.recv(t))
				}
				for r := 0; r < cfg.Receivers; r++ {
					out.send(t, dryadEOF)
				}
				wg.Done(t)
			})
		}
		for r := 0; r < cfg.Receivers; r++ {
			t.Go(fmt.Sprintf("consumer%d", r), func(t *conc.T) {
				for {
					t.Label(1)
					v := out.recv(t)
					if v == dryadEOF {
						break
					}
					t.Assert(v >= 0 && v < int64(cfg.Records),
						fmt.Sprintf("corrupted record %d", v))
					seen[v].Add(t, 1)
				}
				wg.Done(t)
			})
		}
		wg.Wait(t)
		for i, s := range seen {
			n := s.Load(t)
			t.Assert(n != 0, fmt.Sprintf("record %d lost", i))
			t.Assert(n == 1, fmt.Sprintf("record %d delivered %d times", i, n))
		}
	}
}

// DryadFifo builds the Table 1 "Dryad Fifo" configuration: Width
// independent three-stage pipelines (producer -> forwarder ->
// consumer) over the same channel substrate. With Width = 8 the
// program runs 25 threads, matching the paper's row.
func DryadFifo(width, records int) func(*conc.T) {
	if width < 1 || records < 1 {
		panic("progs: bad DryadFifo config")
	}
	return func(t *conc.T) {
		wg := conc.NewWaitGroup(t, "wg", int64(width*3))
		for w := 0; w < width; w++ {
			w := w
			in := newDChan(t, fmt.Sprintf("p%d.in", w), 2, DryadCorrect)
			out := newDChan(t, fmt.Sprintf("p%d.out", w), 2, DryadCorrect)
			sum := conc.NewIntVar(t, fmt.Sprintf("p%d.sum", w), 0)
			t.Go(fmt.Sprintf("p%d.producer", w), func(t *conc.T) {
				for v := 1; v <= records; v++ {
					in.send(t, int64(v))
				}
				in.send(t, dryadEOF)
				wg.Done(t)
			})
			t.Go(fmt.Sprintf("p%d.forwarder", w), func(t *conc.T) {
				for {
					t.Label(1)
					v := in.recv(t)
					out.send(t, v)
					if v == dryadEOF {
						break
					}
				}
				wg.Done(t)
			})
			t.Go(fmt.Sprintf("p%d.consumer", w), func(t *conc.T) {
				for {
					t.Label(1)
					v := out.recv(t)
					if v == dryadEOF {
						break
					}
					sum.Add(t, v)
				}
				t.Assert(sum.Load(t) == int64(records*(records+1)/2),
					"pipeline checksum")
				wg.Done(t)
			})
		}
		wg.Wait(t)
	}
}

func init() {
	register(Program{
		Name:        "dryad-channels",
		Description: "Table 1 'Dryad Channels': 2 producers, forwarder, 2 consumers over flow-controlled channels",
		Body: DryadChannels(DryadConfig{
			Records: 4, Capacity: 2, Senders: 2, Receivers: 2,
		}),
	})
	// Each bug needs a slightly different shape to manifest: bug 1
	// needs two racing senders; bug 2 needs a sender refilling the
	// slot a receiver just freed; bug 3's lost wakeup needs two
	// records in flight (capacity >= 2) and two receivers; bug 4's
	// reset race needs only one receiver to strand itself on the
	// final record.
	bugConfigs := []DryadConfig{
		{Records: 2, Capacity: 1, Senders: 2, Receivers: 1, Direct: true, Bug: DryadBug1},
		{Records: 2, Capacity: 1, Senders: 1, Receivers: 1, Direct: true, Bug: DryadBug2},
		{Records: 2, Capacity: 2, Senders: 1, Receivers: 2, Direct: true, Bug: DryadBug3},
		{Records: 1, Capacity: 1, Senders: 1, Receivers: 1, Direct: true, Bug: DryadBug4},
	}
	for _, cfg := range bugConfigs {
		cfg := cfg
		register(Program{
			Name:        fmt.Sprintf("dryad-%s", cfg.Bug),
			Description: fmt.Sprintf("Table 3: Dryad channels with planted %s", cfg.Bug),
			ExpectBug:   "safety violation or deadlock",
			Body:        DryadChannels(cfg),
		})
	}
	register(Program{
		Name:        "dryad-fifo",
		Description: "Table 1 'Dryad Fifo': 8 three-stage pipelines, 25 threads",
		Body:        DryadFifo(8, 2),
	})
}
