// Package progs contains the model programs used throughout the
// reproduction: the paper's running examples (Figures 1 and 3), the
// two coverage programs of Table 2 (dining philosophers and the
// work-stealing queue), and synthetic equivalents of the industrial
// programs of Table 1 (Promise, APE, Dryad channels, Dryad FIFO, the
// Singularity boot, and the worker-group library of §4.3.1), with the
// paper's bug classes seeded behind configuration flags.
//
// Every program is a func(*conc.T) plus metadata, registered in All.
package progs

import (
	"fmt"
	"sort"

	"fairmc/conc"
)

// Program is a named model program.
type Program struct {
	// Name is the registry key (e.g. "philosophers-2").
	Name string
	// Description says what the program models and which paper
	// experiment uses it.
	Description string
	// ExpectBug names the planted defect, or "" for correct programs.
	ExpectBug string
	// Body is the main-thread function.
	Body func(*conc.T)
}

var registry = map[string]Program{}

func register(p Program) {
	if _, dup := registry[p.Name]; dup {
		panic(fmt.Sprintf("progs: duplicate program %q", p.Name))
	}
	registry[p.Name] = p
}

// All returns every registered program sorted by name.
func All() []Program {
	out := make([]Program, 0, len(registry))
	for _, p := range registry {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup returns the named program.
func Lookup(name string) (Program, bool) {
	p, ok := registry[name]
	return p, ok
}
