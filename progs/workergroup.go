package progs

import (
	"fmt"

	"fairmc/conc"
)

// WorkerGroup models the parallel-task library of §4.3.1 (Figure 7):
// a group of worker threads takes tasks from a shared queue; an idle
// worker parks in WorkerGroup.Idle, yielding ("YieldExponential")
// until work arrives or the group stops.
//
// Both the group and each worker carry a stop flag. During shutdown
// the group flag is set first and the per-worker flags afterwards. In
// the window where group.stop is already true but a worker's own stop
// flag is not, Idle returns immediately (its loop is guarded by
// group.stop) and Worker.Run's outer loop spins through
// Run -> Idle -> Run *without ever yielding*: a good-samaritan
// violation that starves the very thread trying to set worker.stop —
// exactly the bug CHESS found in the paper.

// WorkerGroupBug selects the §4.3.1 defect.
type WorkerGroupBug int

const (
	// WorkerGroupCorrect yields in the outer loop, closing the window.
	WorkerGroupCorrect WorkerGroupBug = iota
	// WorkerGroupSpin reproduces Figure 7: no yield in the window.
	WorkerGroupSpin
)

// workerGroup is the shared library state.
type workerGroup struct {
	stop  *conc.IntVar   // group-wide stop flag
	queue *conc.Channel  // task queue
	wstop []*conc.IntVar // per-worker stop flags
	bug   WorkerGroupBug
}

// idle is WorkerGroup::Idle: wait for work, yielding, until the group
// stops. Returns a task id or 0 ("null") when stopping.
func (g *workerGroup) idle(t *conc.T) int64 {
	for {
		t.Label(10)
		if g.stop.Load(t) == 1 {
			return 0
		}
		if v, _, ok := g.queue.TryRecv(t); ok {
			return v
		}
		// No work to be found. Yield to other threads.
		t.Yield() // currentWorker.YieldExponential()
	}
}

// run is Worker::Run (Figure 7).
func (g *workerGroup) run(t *conc.T, me int) {
	task := int64(0)
	for {
		t.Label(1)
		if g.wstop[me].Load(t) == 1 {
			return
		}
		for {
			t.Label(2)
			if g.wstop[me].Load(t) == 1 || task == 0 {
				break
			}
			// Perform task, then pop the next one.
			task, _, _ = g.queue.TryRecv(t)
		}
		if g.wstop[me].Load(t) != 1 {
			task = g.idle(t)
		}
		if g.bug == WorkerGroupCorrect {
			// The fix: yield on the outer back edge so the
			// stop-setting thread can run during the window.
			t.Yield()
		}
		// BUG (WorkerGroupSpin): when group.stop is set but our own
		// stop flag is not yet, idle() returns immediately and this
		// outer loop spins without yielding until the time slice
		// expires, starving the shutdown thread.
	}
}

// WorkerGroupConfig parameterizes the harness.
type WorkerGroupConfig struct {
	// Workers is the number of worker threads.
	Workers int
	// Tasks is the number of tasks enqueued before shutdown.
	Tasks int
	// Bug selects the §4.3.1 defect.
	Bug WorkerGroupBug
}

// WorkerGroupProg builds the harness: workers drain a task queue; the
// main thread then shuts the library down by setting group.stop
// followed by each worker's stop flag.
func WorkerGroupProg(cfg WorkerGroupConfig) func(*conc.T) {
	if cfg.Workers < 1 {
		panic("progs: WorkerGroupProg needs at least one worker")
	}
	return func(t *conc.T) {
		g := &workerGroup{
			stop:  conc.NewIntVar(t, "group.stop", 0),
			queue: conc.NewChannel(t, "tasks", cfg.Tasks+1),
			bug:   cfg.Bug,
		}
		handles := make([]*conc.Handle, cfg.Workers)
		for i := 0; i < cfg.Workers; i++ {
			g.wstop = append(g.wstop, conc.NewIntVar(t, fmt.Sprintf("worker%d.stop", i), 0))
		}
		for i := 0; i < cfg.Workers; i++ {
			i := i
			handles[i] = t.Go(fmt.Sprintf("worker%d", i), func(t *conc.T) {
				g.run(t, i)
			})
		}
		for v := 1; v <= cfg.Tasks; v++ {
			g.queue.Send(t, int64(v))
		}
		// Shutdown: the group flag first, the worker flags afterwards —
		// opening the window of Figure 7.
		g.stop.Store(t, 1)
		for i := 0; i < cfg.Workers; i++ {
			g.wstop[i].Store(t, 1)
		}
		for _, h := range handles {
			h.Join(t)
		}
	}
}

func init() {
	register(Program{
		Name:        "workergroup",
		Description: "§4.3.1 library with the outer-loop yield fix (correct)",
		Body:        WorkerGroupProg(WorkerGroupConfig{Workers: 2, Tasks: 1}),
	})
	register(Program{
		Name:        "workergroup-spin",
		Description: "Figure 7: worker spins unyieldingly in the shutdown window",
		ExpectBug:   "good-samaritan violation",
		Body:        WorkerGroupProg(WorkerGroupConfig{Workers: 2, Tasks: 1, Bug: WorkerGroupSpin}),
	})
}
