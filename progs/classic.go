package progs

import (
	"fmt"

	"fairmc/conc"
)

// This file is a corpus of classic shared-memory algorithms, each
// built from raw shared variables with spin-and-yield loops — the
// style of code fair stateless model checking exists for. The correct
// variants are fair-terminating and pass exhaustive fair search; the
// planted variants reproduce each algorithm's classic bug.

// enterCS/exitCS wrap a critical section with a mutual-exclusion
// assertion on a shared occupancy counter.
func enterCS(t *conc.T, occupancy *conc.IntVar) {
	t.Assert(occupancy.Add(t, 1) == 1, "mutual exclusion violated")
}

func exitCS(t *conc.T, occupancy *conc.IntVar) {
	occupancy.Add(t, -1)
}

// Peterson builds Peterson's two-thread mutual-exclusion algorithm.
// With buggy set, each thread checks its rival's intent flag *before*
// publishing its own — the classic store/load reordering bug — and
// both threads can enter the critical section together.
func Peterson(buggy bool) func(*conc.T) {
	return func(t *conc.T) {
		flags := conc.NewIntArray(t, "flag", 2)
		turn := conc.NewIntVar(t, "turn", 0)
		occupancy := conc.NewIntVar(t, "cs", 0)
		wg := conc.NewWaitGroup(t, "wg", 2)
		for i := 0; i < 2; i++ {
			me := i
			other := 1 - i
			t.Go(fmt.Sprintf("p%d", me), func(t *conc.T) {
				if buggy {
					// BUG: peek at the rival before publishing intent.
					if flags.Get(t, other) == 0 {
						flags.Set(t, me, 1)
						turn.Store(t, int64(other))
					} else {
						flags.Set(t, me, 1)
						turn.Store(t, int64(other))
						for flags.Get(t, other) == 1 && turn.Load(t) == int64(other) {
							t.Label(1)
							t.Yield()
						}
					}
				} else {
					flags.Set(t, me, 1)
					turn.Store(t, int64(other))
					for flags.Get(t, other) == 1 && turn.Load(t) == int64(other) {
						t.Label(1)
						t.Yield()
					}
				}
				enterCS(t, occupancy)
				exitCS(t, occupancy)
				flags.Set(t, me, 0)
				wg.Done(t)
			})
		}
		wg.Wait(t)
	}
}

// Bakery builds Lamport's bakery algorithm for n threads. With buggy
// set, the "choosing" doorway flag is omitted, so a thread can observe
// a rival mid-ticket-draw and both can hold the smallest ticket — the
// bug the choosing flag exists to prevent.
func Bakery(n int, buggy bool) func(*conc.T) {
	if n < 2 {
		panic("progs: Bakery needs n >= 2")
	}
	return func(t *conc.T) {
		choosing := conc.NewIntArray(t, "choosing", n)
		number := conc.NewIntArray(t, "number", n)
		occupancy := conc.NewIntVar(t, "cs", 0)
		wg := conc.NewWaitGroup(t, "wg", int64(n))
		for i := 0; i < n; i++ {
			me := i
			t.Go(fmt.Sprintf("b%d", me), func(t *conc.T) {
				// Doorway: draw a ticket greater than every ticket seen.
				if !buggy {
					choosing.Set(t, me, 1)
				}
				max := int64(0)
				for j := 0; j < n; j++ {
					if v := number.Get(t, j); v > max {
						max = v
					}
				}
				number.Set(t, me, max+1)
				if !buggy {
					choosing.Set(t, me, 0)
				}
				// Wait for every rival with a smaller (ticket, id).
				for j := 0; j < n; j++ {
					if j == me {
						continue
					}
					for {
						t.Label(1)
						if choosing.Get(t, j) == 0 {
							break
						}
						t.Yield()
					}
					for {
						t.Label(2)
						nj := number.Get(t, j)
						ni := number.Get(t, me)
						if nj == 0 || nj > ni || (nj == ni && j > me) {
							break
						}
						t.Yield()
					}
				}
				enterCS(t, occupancy)
				exitCS(t, occupancy)
				number.Set(t, me, 0)
				wg.Done(t)
			})
		}
		wg.Wait(t)
	}
}

// Barrier builds a sense-reversing barrier reused for rounds rounds by
// n threads. After every barrier crossing each thread asserts that all
// n threads finished the round's work — the property a barrier exists
// to provide. With buggy set, the barrier reuses a single sense
// without reversing it, so a fast thread can lap the barrier and a
// slow one strand — detected as a deadlock or assertion failure.
func Barrier(n, rounds int, buggy bool) func(*conc.T) {
	if n < 2 || rounds < 1 {
		panic("progs: Barrier needs n >= 2, rounds >= 1")
	}
	return func(t *conc.T) {
		count := conc.NewIntVar(t, "count", 0)
		sense := conc.NewIntVar(t, "sense", 0)
		work := make([]*conc.IntVar, rounds)
		for r := range work {
			work[r] = conc.NewIntVar(t, fmt.Sprintf("work%d", r), 0)
		}
		wg := conc.NewWaitGroup(t, "wg", int64(n))
		for i := 0; i < n; i++ {
			t.Go(fmt.Sprintf("t%d", i), func(t *conc.T) {
				mySense := int64(0)
				for r := 0; r < rounds; r++ {
					// Do this round's work (atomic: it is the assertion
					// subject, not the algorithm under test).
					work[r].Add(t, 1)
					// Arrive at the barrier.
					if buggy {
						// BUG: fixed sense; a reused barrier releases
						// threads from different rounds inconsistently.
						if count.Add(t, 1) == int64(n) {
							count.Store(t, 0)
							sense.Store(t, 1)
						} else {
							for {
								t.Label(1)
								if sense.Load(t) == 1 {
									break
								}
								t.Yield()
							}
						}
					} else {
						mySense = 1 - mySense
						if count.Add(t, 1) == int64(n) {
							count.Store(t, 0)
							sense.Store(t, mySense)
						} else {
							for {
								t.Label(1)
								if sense.Load(t) == mySense {
									break
								}
								t.Yield()
							}
						}
					}
					t.Assert(work[r].Load(t) == int64(n),
						fmt.Sprintf("round %d incomplete after barrier", r))
				}
				wg.Done(t)
			})
		}
		wg.Wait(t)
	}
}

// ReadersWriters exercises the RWMutex: readers verify no writer is
// active, writers verify exclusive access.
func ReadersWriters(readers, writers int) func(*conc.T) {
	return func(t *conc.T) {
		rw := conc.NewRWMutex(t, "rw")
		activeReaders := conc.NewIntVar(t, "ar", 0)
		activeWriters := conc.NewIntVar(t, "aw", 0)
		wg := conc.NewWaitGroup(t, "wg", int64(readers+writers))
		for i := 0; i < readers; i++ {
			t.Go(fmt.Sprintf("r%d", i), func(t *conc.T) {
				rw.RLock(t)
				activeReaders.Add(t, 1)
				t.Assert(activeWriters.Load(t) == 0, "reader overlaps writer")
				activeReaders.Add(t, -1)
				rw.RUnlock(t)
				wg.Done(t)
			})
		}
		for i := 0; i < writers; i++ {
			t.Go(fmt.Sprintf("w%d", i), func(t *conc.T) {
				rw.Lock(t)
				t.Assert(activeWriters.Add(t, 1) == 1, "two writers")
				t.Assert(activeReaders.Load(t) == 0, "writer overlaps reader")
				activeWriters.Add(t, -1)
				rw.Unlock(t)
				wg.Done(t)
			})
		}
		wg.Wait(t)
	}
}

// BoundedBuffer is the textbook condition-variable bounded buffer:
// producers and consumers share a ring protected by a mutex with
// not-full/not-empty condition variables. Every item is delivered
// exactly once, in order per producer.
func BoundedBuffer(producers, consumers, perProducer, capacity int) func(*conc.T) {
	if producers < 1 || consumers < 1 || perProducer < 1 || capacity < 1 {
		panic("progs: bad BoundedBuffer config")
	}
	return func(t *conc.T) {
		total := producers * perProducer
		mu := conc.NewMutex(t, "mu")
		notFull := conc.NewCond(t, "notFull", mu)
		notEmpty := conc.NewCond(t, "notEmpty", mu)
		buf := conc.NewIntArray(t, "buf", capacity)
		count := conc.NewIntVar(t, "count", 0)
		in := conc.NewIntVar(t, "in", 0)
		out := conc.NewIntVar(t, "out", 0)
		taken := conc.NewIntVar(t, "taken", 0)
		seen := make([]*conc.IntVar, total)
		for i := range seen {
			seen[i] = conc.NewIntVar(t, fmt.Sprintf("seen%d", i), 0)
		}
		wg := conc.NewWaitGroup(t, "wg", int64(producers+consumers))

		for p := 0; p < producers; p++ {
			base := p * perProducer
			t.Go(fmt.Sprintf("prod%d", p), func(t *conc.T) {
				for k := 0; k < perProducer; k++ {
					mu.Lock(t)
					for count.Load(t) == int64(capacity) {
						t.Label(1)
						notFull.Wait(t)
					}
					i := in.Load(t)
					buf.Set(t, int(i)%capacity, int64(base+k))
					in.Store(t, i+1)
					count.Add(t, 1)
					notEmpty.Signal(t)
					mu.Unlock(t)
				}
				wg.Done(t)
			})
		}
		for c := 0; c < consumers; c++ {
			t.Go(fmt.Sprintf("cons%d", c), func(t *conc.T) {
				for {
					mu.Lock(t)
					for count.Load(t) == 0 {
						t.Label(1)
						if taken.Load(t) == int64(total) {
							mu.Unlock(t)
							wg.Done(t)
							return
						}
						notEmpty.Wait(t)
					}
					o := out.Load(t)
					v := buf.Get(t, int(o)%capacity)
					out.Store(t, o+1)
					count.Add(t, -1)
					taken.Add(t, 1)
					notFull.Signal(t)
					if taken.Load(t) == int64(total) {
						// Release any consumers parked on notEmpty.
						notEmpty.Broadcast(t)
					}
					mu.Unlock(t)
					seen[v].Add(t, 1)
				}
			})
		}
		wg.Wait(t)
		for i, s := range seen {
			t.Assert(s.Load(t) == 1, fmt.Sprintf("item %d delivered %d times", i, s.Peek()))
		}
	}
}

func init() {
	register(Program{
		Name:        "peterson",
		Description: "Peterson's 2-thread mutual exclusion (correct)",
		Body:        Peterson(false),
	})
	register(Program{
		Name:        "peterson-bug",
		Description: "Peterson's with the check-before-publish reordering bug",
		ExpectBug:   "mutual exclusion violation",
		Body:        Peterson(true),
	})
	register(Program{
		Name:        "bakery-2",
		Description: "Lamport's bakery, 2 threads (correct)",
		Body:        Bakery(2, false),
	})
	register(Program{
		Name:        "bakery-bug",
		Description: "Lamport's bakery without the choosing flag",
		ExpectBug:   "mutual exclusion violation",
		Body:        Bakery(2, true),
	})
	register(Program{
		Name:        "barrier",
		Description: "sense-reversing barrier, 2 threads x 2 rounds (correct)",
		Body:        Barrier(2, 2, false),
	})
	register(Program{
		Name:        "barrier-bug",
		Description: "reused barrier without sense reversal",
		ExpectBug:   "deadlock or incomplete round",
		Body:        Barrier(2, 2, true),
	})
	register(Program{
		Name:        "readerswriters",
		Description: "readers/writers over RWMutex (correct)",
		Body:        ReadersWriters(2, 1),
	})
	register(Program{
		Name:        "boundedbuffer",
		Description: "condition-variable bounded buffer, 1x1 over capacity 1 (correct)",
		Body:        BoundedBuffer(1, 1, 2, 1),
	})
}
