package progs_test

import (
	"testing"
	"time"

	"fairmc"
	"fairmc/internal/engine"
	"fairmc/progs"
)

// verify runs an exhaustive fair search and requires a clean pass.
func verify(t *testing.T, name string, body func(*fairmc.Options)) {
	t.Helper()
	p, ok := progs.Lookup(name)
	if !ok {
		t.Fatalf("program %q not registered", name)
	}
	opts := fairmc.Defaults()
	// Exhaustive verification runs under a preemption bound, like the
	// paper's coverage experiments: the unbounded dfs cells took the
	// paper hundreds to thousands of seconds on programs this size.
	opts.ContextBound = 2
	opts.TimeLimit = 120 * time.Second
	if body != nil {
		body(&opts)
	}
	res := mustCheck(t, p.Body, opts)
	if !res.Ok() {
		if res.FirstBug != nil {
			t.Fatalf("%s: %s", name, res.FirstBug.FormatTrace())
		}
		t.Fatalf("%s: divergence: %s", name, res.Liveness)
	}
	if !res.Exhausted {
		t.Fatalf("%s: not exhausted (%d executions, %v)", name, res.Executions, res.Elapsed)
	}
}

// falsify runs a search and requires a finding.
func falsify(t *testing.T, name string, opts fairmc.Options) *fairmc.Result {
	t.Helper()
	p, ok := progs.Lookup(name)
	if !ok {
		t.Fatalf("program %q not registered", name)
	}
	res := mustCheck(t, p.Body, opts)
	if res.FirstBug == nil && res.Divergence == nil {
		t.Fatalf("%s: nothing found in %d executions", name, res.Executions)
	}
	return res
}

func TestPetersonVerified(t *testing.T) {
	verify(t, "peterson", nil)
}

func TestPetersonBugFound(t *testing.T) {
	res := falsify(t, "peterson-bug", fairmc.Defaults())
	if res.FirstBug == nil || res.FirstBug.Outcome != fairmc.Violation {
		t.Fatalf("expected mutual-exclusion violation, got %+v", res.Report)
	}
}

func TestBakeryVerified(t *testing.T) {
	// The bakery's ticket loops make this a larger space; bound
	// preemptions like the paper's coverage runs.
	verify(t, "bakery-2", func(o *fairmc.Options) { o.ContextBound = 2 })
}

func TestBakeryBugFound(t *testing.T) {
	opts := fairmc.Defaults()
	opts.ContextBound = 2
	res := falsify(t, "bakery-bug", opts)
	if res.FirstBug == nil {
		t.Fatalf("expected safety violation, got divergence: %s", res.Liveness)
	}
}

func TestBarrierVerified(t *testing.T) {
	verify(t, "barrier", func(o *fairmc.Options) { o.ContextBound = 2 })
}

func TestBarrierBugFound(t *testing.T) {
	opts := fairmc.Defaults()
	opts.ContextBound = 2
	opts.MaxSteps = 2000
	falsify(t, "barrier-bug", opts)
}

func TestReadersWritersVerified(t *testing.T) {
	verify(t, "readerswriters", nil)
}

func TestBoundedBufferVerified(t *testing.T) {
	verify(t, "boundedbuffer", func(o *fairmc.Options) { o.ContextBound = 2 })
}

func TestTreiberVerified(t *testing.T) {
	verify(t, "treiber", func(o *fairmc.Options) { o.ContextBound = 2 })
}

func TestTreiberABAFound(t *testing.T) {
	opts := fairmc.Defaults()
	opts.ContextBound = 2
	opts.MaxSteps = 3000
	opts.TimeLimit = 60 * time.Second
	res := falsify(t, "treiber-aba", opts)
	if res.FirstBug == nil {
		t.Fatalf("expected safety violation, got divergence: %s", res.Liveness)
	}
}

func TestTicketLockVerified(t *testing.T) {
	verify(t, "ticketlock", nil)
}

func TestMSQueueVerified(t *testing.T) {
	// cb=2 on the 3-worker config runs past the test budget (hundreds
	// of thousands of executions); cb=1 exhausts and still checks
	// every single-preemption interleaving.
	verify(t, "msqueue", func(o *fairmc.Options) { o.ContextBound = 1 })
}

func TestMSQueueBugFound(t *testing.T) {
	opts := fairmc.Defaults()
	opts.ContextBound = 2
	opts.MaxSteps = 3000
	opts.TimeLimit = 60 * time.Second
	res := falsify(t, "msqueue-bug", opts)
	if res.FirstBug == nil {
		t.Fatalf("expected safety violation, got divergence: %s", res.Liveness)
	}
}

func TestSeqlockVerified(t *testing.T) {
	verify(t, "seqlock", func(o *fairmc.Options) { o.ContextBound = 2 })
}

func TestSeqlockTornReadFound(t *testing.T) {
	opts := fairmc.Defaults()
	opts.ContextBound = 2
	opts.MaxSteps = 3000
	opts.TimeLimit = 60 * time.Second
	res := falsify(t, "seqlock-torn", opts)
	if res.FirstBug == nil {
		t.Fatalf("expected torn-read violation, got divergence: %s", res.Liveness)
	}
}

func TestSeqlockNeedsFairness(t *testing.T) {
	// The reader retry loops put cycles in the state space. Under an
	// adversarial schedule that keeps a mid-write writer parked and a
	// reader running, the unfair engine spins forever (diverges at the
	// step bound); the fair scheduler cuts the same schedule off after
	// two windows and terminates.
	p, _ := progs.Lookup("seqlock")
	// Drive the writer (tid 1) into the middle of its update (four
	// grants: start, lock, seq increment, first store — the sequence
	// counter is now odd), then starve it in favor of the readers.
	writerSteps := 0
	adversary := engine.FuncChooser(func(ctx *engine.ChooseContext) (engine.Alt, bool) {
		// Let main finish spawning everyone first.
		if ctx.Cands[0].Tid == 0 {
			return ctx.Cands[0], true
		}
		if writerSteps < 4 {
			for _, c := range ctx.Cands {
				if c.Tid == 1 {
					writerSteps++
					return c, true
				}
			}
		}
		return ctx.Cands[len(ctx.Cands)-1], true
	})
	unfair := engine.Run(p.Body, adversary, engine.Config{Fair: false, MaxSteps: 400})
	if unfair.Outcome != fairmc.Diverged {
		t.Fatalf("unfair adversarial run: %v, want diverged", unfair.Outcome)
	}
	writerSteps = 0
	fair := engine.Run(p.Body, adversary, engine.Config{Fair: true, MaxSteps: 400})
	if fair.Outcome != fairmc.Terminated {
		t.Fatalf("fair adversarial run: %v, want terminated", fair.Outcome)
	}
}
