package progs_test

// Verdict tests for the weak-memory fixture family: every fixture's
// documented SC/TSO/TSO-fenced verdict is asserted here, so the matrix
// in the fixtures' doc comments is executable, not aspirational.

import (
	"testing"
	"time"

	"fairmc"
	"fairmc/progs"
)

// tsoOpts is bugOpts under the TSO memory model.
func tsoOpts() fairmc.Options {
	o := bugOpts()
	o.MemModel = "tso"
	return o
}

// checkClean asserts that a bounded fair search finds nothing.
func checkClean(t *testing.T, name string, opts fairmc.Options) *fairmc.Result {
	t.Helper()
	p, ok := progs.Lookup(name)
	if !ok {
		t.Fatalf("program %q not registered", name)
	}
	res := mustCheck(t, p.Body, opts)
	if !res.Ok() {
		if res.FirstBug != nil {
			t.Fatalf("%s: unexpected bug: %s", name, res.FirstBug.FormatTrace())
		}
		t.Fatalf("%s: unexpected divergence: %v", name, res.Liveness)
	}
	return res
}

func TestWeakMemoryFixturesPassUnderSC(t *testing.T) {
	// Under sequential consistency (the default) the whole family is
	// correct: the planted bugs are memory-model bugs, not logic bugs.
	for _, name := range []string{
		"litmus-sb", "litmus-sb-fenced", "litmus-mp", "litmus-lb",
		"peterson-tso", "peterson-tso-fenced",
		"seqlock-tso", "seqlock-tso-fenced",
		"wm-tso-livelock", "wm-tso-livelock-fenced",
	} {
		name := name
		t.Run(name, func(t *testing.T) {
			checkClean(t, name, bugOpts())
		})
	}
}

func TestLitmusSBWeakOutcomeUnderTSO(t *testing.T) {
	res := checkFindsBug(t, "litmus-sb", tsoOpts())
	if res.FirstBug.Outcome != fairmc.Violation {
		t.Fatalf("outcome = %v, want violation", res.FirstBug.Outcome)
	}
	// The weak outcome is pure flush delay: the counterexample schedule
	// must replay to the same verdict under the same memory model.
	p, _ := progs.Lookup("litmus-sb")
	rr := mustReplay(t, p.Body, res.FirstBug.Schedule, tsoOpts())
	if rr.Outcome != res.FirstBug.Outcome {
		t.Fatalf("replay outcome = %v, want %v", rr.Outcome, res.FirstBug.Outcome)
	}
}

func TestLitmusSBFencedExhaustsUnderTSO(t *testing.T) {
	res := checkClean(t, "litmus-sb-fenced", tsoOpts())
	if !res.Exhausted {
		t.Fatalf("fenced SB search did not exhaust: %+v", res.Report)
	}
}

func TestLitmusControlsPassUnderTSO(t *testing.T) {
	// MP and LB hold under TSO (FIFO buffers; no load/store reordering):
	// if either fails here the model is weaker than TSO.
	for _, name := range []string{"litmus-mp", "litmus-lb"} {
		name := name
		t.Run(name, func(t *testing.T) {
			res := checkClean(t, name, tsoOpts())
			if !res.Exhausted {
				t.Fatalf("%s search did not exhaust: %+v", name, res.Report)
			}
		})
	}
}

func TestPetersonTSOBugAllStrategies(t *testing.T) {
	p, ok := progs.Lookup("peterson-tso")
	if !ok {
		t.Fatal("peterson-tso not registered")
	}
	// Flush delay is first-class scheduler nondeterminism, so every
	// strategy enumerates it natively — including plain fair DFS, which
	// the old pump-thread encoding drowned in yield subtrees. The DFS
	// run uses preemption bound 0: the violation is pure flush delay
	// (no program-thread preemption needed — agent steps are exempt
	// from the bound), and the zero-preemption space is small enough to
	// reach it systematically.
	t.Run("dfs", func(t *testing.T) {
		o := tsoOpts()
		o.ContextBound = 0
		checkFindsBug(t, "peterson-tso", o)
	})
	t.Run("pct", func(t *testing.T) {
		res := mustCheck(t, p.Body, fairmc.Options{
			Fair: true, PCT: true, PCTDepth: 3,
			MaxExecutions: 20000, MaxSteps: 5000, Seed: 3,
			MemModel:  "tso",
			TimeLimit: 60 * time.Second,
		})
		if res.FirstBug == nil {
			t.Fatalf("PCT found no TSO violation in %d executions", res.Executions)
		}
	})
	t.Run("dpor", func(t *testing.T) {
		res := mustCheck(t, p.Body, fairmc.Options{
			Fair: false, ContextBound: -1, DPOR: true, SleepSets: true,
			MaxSteps: 600, ContinueAfterDivergence: true,
			TimeLimit: 60 * time.Second,
			MemModel:  "tso",
		})
		if res.FirstBug == nil {
			t.Fatalf("DPOR found no TSO violation in %d executions", res.Executions)
		}
	})
}

func TestPetersonTSOFencedCleanUnderTSO(t *testing.T) {
	// At preemption bound 0 the fenced variant's TSO space is fully
	// exhaustible: a complete proof that the fence closes the bug class
	// the DFS subtest above exhibits at the same bound.
	o := tsoOpts()
	o.ContextBound = 0
	res := checkClean(t, "peterson-tso-fenced", o)
	if !res.Exhausted {
		t.Fatalf("fenced Peterson cb=0 search did not exhaust: %+v", res.Report)
	}
}

func TestSeqlockTornUnderTSO(t *testing.T) {
	// The torn read needs a precise flush interleaving deep in a large
	// space; systematic DFS drowns in the early subtrees, while the
	// randomized strategies find it in seconds — the paper's
	// strategy-comparison lesson, replayed on a memory-model bug.
	p, ok := progs.Lookup("seqlock-tso")
	if !ok {
		t.Fatal("seqlock-tso not registered")
	}
	res := mustCheck(t, p.Body, fairmc.Options{
		Fair: true, RandomWalk: true,
		MaxExecutions: 20000, MaxSteps: 5000, Seed: 3,
		MemModel:  "tso",
		TimeLimit: 60 * time.Second,
	})
	if res.FirstBug == nil {
		t.Fatalf("random walk found no torn read in %d executions", res.Executions)
	}
	if res.FirstBug.Outcome != fairmc.Violation {
		t.Fatalf("outcome = %v, want violation", res.FirstBug.Outcome)
	}
}

func TestSeqlockFencedCleanUnderTSO(t *testing.T) {
	// The same random walk that breaks the unfenced variant in a few
	// hundred executions stays clean on the fenced one.
	p, _ := progs.Lookup("seqlock-tso-fenced")
	res := mustCheck(t, p.Body, fairmc.Options{
		Fair: true, RandomWalk: true,
		MaxExecutions: 20000, MaxSteps: 5000, Seed: 3,
		MemModel:  "tso",
		TimeLimit: 60 * time.Second,
	})
	if !res.Ok() {
		t.Fatalf("random walk flagged the fenced seqlock: %+v", res.Report)
	}
}

// livelockOpts mirrors the other livelock-detection tests: unbounded
// preemptions, small divergence bound.
func livelockOpts(mm string) fairmc.Options {
	return fairmc.Options{
		Fair:         true,
		ContextBound: -1,
		MaxSteps:     400,
		TimeLimit:    30 * time.Second,
		MemModel:     mm,
	}
}

func TestWMLivelockOnlyUnderTSO(t *testing.T) {
	// The fixture fair-terminates under SC; under TSO an adversarial
	// flush schedule livelocks it — and because both threads yield every
	// round and the flush agents keep running, the diverging execution
	// is fair: it must classify as fair nontermination, not as a
	// good-samaritan violation.
	t.Run("sc-terminates", func(t *testing.T) {
		res := checkClean(t, "wm-tso-livelock", livelockOpts("sc"))
		if !res.Exhausted {
			t.Fatalf("SC search did not exhaust: %+v", res.Report)
		}
	})
	t.Run("tso-livelocks", func(t *testing.T) {
		p, _ := progs.Lookup("wm-tso-livelock")
		res := mustCheck(t, p.Body, livelockOpts("tso"))
		if res.FirstBug != nil {
			t.Fatalf("unexpected safety bug: %s", res.FirstBug.FormatTrace())
		}
		if res.Divergence == nil {
			t.Fatalf("TSO livelock not detected: %+v", res.Report)
		}
		if res.Liveness == nil || res.Liveness.Kind != fairmc.FairNontermination {
			t.Fatalf("liveness = %v, want fair nontermination", res.Liveness)
		}
	})
	t.Run("tso-fenced-terminates", func(t *testing.T) {
		res := checkClean(t, "wm-tso-livelock-fenced", livelockOpts("tso"))
		if !res.Exhausted {
			t.Fatalf("fenced TSO search did not exhaust: %+v", res.Report)
		}
	})
}
