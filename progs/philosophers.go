package progs

import (
	"fmt"

	"fairmc/conc"
)

// PhilosophersTry builds the paper's Figure 1 program generalized to n
// philosophers: each philosopher grabs one fork, TryAcquires the
// other, and on failure releases and retries (yielding, as a good
// samaritan, on the back edge of the retry loop). Adjacent
// philosophers acquire in opposite orders, so the retry loops create
// cycles in the state space — including a *fair* livelock cycle in
// which everyone keeps acquiring, failing, and releasing in lockstep.
// The fair checker detects it by diverging (Theorem 6); unfair
// depth-bounded search merely burns exponentially many executions
// unrolling the cycles (Figure 2).
func PhilosophersTry(n int) func(*conc.T) {
	if n < 2 {
		panic("progs: PhilosophersTry needs n >= 2")
	}
	return func(t *conc.T) {
		forks := make([]*conc.Mutex, n)
		for i := range forks {
			forks[i] = conc.NewMutex(t, fmt.Sprintf("fork%d", i))
		}
		eats := conc.NewIntVar(t, "eats", 0)
		eating := conc.NewIntArray(t, "eating", n)
		wg := conc.NewWaitGroup(t, "done", int64(n))
		for i := 0; i < n; i++ {
			i := i
			// Circular acquisition order — philosopher i grabs fork i
			// and then tries fork i+1 — so adjacent philosophers
			// contend in opposite orders, exactly as in Figure 1.
			first, second := forks[i], forks[(i+1)%n]
			t.Go(fmt.Sprintf("phil%d", i), func(t *conc.T) {
				for {
					t.Label(1)
					first.Lock(t)
					if second.TryLock(t) {
						break
					}
					first.Unlock(t)
					t.Yield() // back edge of the retry loop
				}
				// Eat: both forks held; neighbors must not be eating.
				eating.Set(t, i, 1)
				t.Assert(eating.Get(t, (i+1)%n) == 0, "right neighbor eating with shared fork")
				t.Assert(eating.Get(t, (i+n-1)%n) == 0, "left neighbor eating with shared fork")
				eating.Set(t, i, 0)
				eats.Add(t, 1)
				first.Unlock(t)
				second.Unlock(t)
				wg.Done(t)
			})
		}
		wg.Wait(t)
		t.Assert(eats.Load(t) == int64(n), "every philosopher ate")
	}
}

// Philosophers builds the fair-terminating dining-philosophers
// configuration used for the coverage experiments (Table 2): each
// philosopher acquires its forks in global index order with a
// spin-then-yield loop. The spin loops make the state space cyclic —
// plain stateless search does not terminate on it — but the fork
// ordering excludes both deadlock and livelock, so every fair
// execution terminates and the fair checker exhausts the space.
func Philosophers(n int) func(*conc.T) {
	if n < 2 {
		panic("progs: Philosophers needs n >= 2")
	}
	return func(t *conc.T) {
		forks := make([]*conc.Mutex, n)
		for i := range forks {
			forks[i] = conc.NewMutex(t, fmt.Sprintf("fork%d", i))
		}
		eats := conc.NewIntVar(t, "eats", 0)
		wg := conc.NewWaitGroup(t, "done", int64(n))
		spinLock := func(t *conc.T, m *conc.Mutex, pc int) {
			for {
				t.Label(pc)
				if m.TryLock(t) {
					return
				}
				t.Yield()
			}
		}
		for i := 0; i < n; i++ {
			lo, hi := i, (i+1)%n
			if lo > hi {
				lo, hi = hi, lo
			}
			low, high := forks[lo], forks[hi]
			t.Go(fmt.Sprintf("phil%d", i), func(t *conc.T) {
				spinLock(t, low, 1)
				spinLock(t, high, 2)
				eats.Add(t, 1) // eat (mutual exclusion held by construction)
				high.Unlock(t)
				low.Unlock(t)
				wg.Done(t)
			})
		}
		wg.Wait(t)
		t.Assert(eats.Load(t) == int64(n), "every philosopher ate")
	}
}

func init() {
	register(Program{
		Name:        "philosophers-2",
		Description: "Table 2 coverage config: 2 dining philosophers, ordered spin-lock forks",
		Body:        Philosophers(2),
	})
	register(Program{
		Name:        "philosophers-3",
		Description: "Table 2 coverage config: 3 dining philosophers, ordered spin-lock forks",
		Body:        Philosophers(3),
	})
	register(Program{
		Name:        "philosophers-try-2",
		Description: "Figure 1: 2 philosophers with TryAcquire retry loops (fair livelock)",
		ExpectBug:   "livelock",
		Body:        PhilosophersTry(2),
	})
	register(Program{
		Name:        "philosophers-try-3",
		Description: "Figure 1 generalized to 3 philosophers (fair livelock)",
		ExpectBug:   "livelock",
		Body:        PhilosophersTry(3),
	})
}
