package progs

import "fairmc/conc"

// SpinLoop is the paper's Figure 3 program: thread t sets x to 1;
// thread u spins — yielding on each iteration, the good-samaritan
// discipline — until it observes the store. Its state space has the
// cycle (a,c) -> (a,d) -> (a,c) that defeats plain stateless search;
// the fair scheduler prunes it after two unrollings (Figure 4).
func SpinLoop(t *conc.T) {
	x := conc.NewIntVar(t, "x", 0)
	hu := t.Go("u", func(t *conc.T) {
		for {
			t.Label(1) // loop head (a,c)
			if x.Load(t) == 1 {
				break
			}
			t.Label(2) // about to yield (a,d)
			t.Yield()
		}
	})
	ht := t.Go("t", func(t *conc.T) {
		x.Store(t, 1)
	})
	ht.Join(t)
	hu.Join(t)
}

// SpinLoopNoYield is SpinLoop without the yield: the spinner violates
// the good-samaritan property, so the fair checker diverges with a GS
// classification instead of a livelock.
func SpinLoopNoYield(t *conc.T) {
	x := conc.NewIntVar(t, "x", 0)
	hu := t.Go("u", func(t *conc.T) {
		for {
			t.Label(1)
			if x.Load(t) == 1 {
				break
			}
			// BUG: spins without yielding.
		}
	})
	ht := t.Go("t", func(t *conc.T) {
		x.Store(t, 1)
	})
	ht.Join(t)
	hu.Join(t)
}

func init() {
	register(Program{
		Name:        "spinloop",
		Description: "Figure 3: spin-wait on a flag with a good-samaritan yield",
		Body:        SpinLoop,
	})
	register(Program{
		Name:        "spinloop-noyield",
		Description: "Figure 3 variant whose spinner never yields (GS violation)",
		ExpectBug:   "good-samaritan violation",
		Body:        SpinLoopNoYield,
	})
}
