package progs

import (
	"fairmc/conc"
	"fairmc/internal/minios"
)

// Singularity is the paper's flagship demonstration: systematically
// testing the entire boot and shutdown of the Singularity research OS
// (Table 1: 14 threads). The real system is two hundred thousand lines
// of kernel; what the experiment exercises — and what the minios
// substrate preserves — is the synchronization skeleton: a memory
// manager signaling readiness, a filesystem service and generic
// services registering with a sealed name server, drivers polling
// hardware bring-up with finite (yielding) timeouts, applications
// calling services over request/response IPC ports with filesystem
// round trips, and a broadcast shutdown joined by the kernel. The
// program "runs forever" in spirit; the harness bounds the apps'
// requests, making it fair-terminating exactly as §2 prescribes.
func Singularity(cfg minios.Config) func(*conc.T) {
	return minios.Boot(cfg)
}

func init() {
	register(Program{
		Name: "singularity",
		Description: "Table 1 'Singularity kernel': boot and shutdown of the minios model " +
			"(memory, name server+fs, 4 drivers, 4 services, 3 apps; 14 threads)",
		Body: Singularity(minios.Config{
			Drivers: 4, Services: 4, Apps: 3, RequestsPerApp: 1, Inodes: 4,
		}),
	})
	register(Program{
		Name:        "singularity-small",
		Description: "Reduced minios boot for exhaustive checking (6 threads)",
		Body: Singularity(minios.Config{
			Drivers: 1, Services: 1, Apps: 1, RequestsPerApp: 1, Inodes: 2,
		}),
	})
}

func init() {
	register(Program{
		Name: "singularity-disk",
		Description: "interrupt-driven disk stack: device, IRQ controller, driver port, 2 clients " +
			"(minios substrate)",
		Body: minios.DiskSubsystem(minios.DiskConfig{
			Sectors: 3, Clients: 2, ReadsPerClient: 1,
		}),
	})
}
