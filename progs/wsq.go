package progs

import (
	"fmt"

	"fairmc/conc"
)

// WSQBug selects a planted defect in the work-stealing queue. The
// three bugs mirror the classes of the paper's Table 3 WSQ bugs found
// in the C# Futures implementation of the Cilk THE protocol: all are
// owner/stealer races on the last element of the deque.
type WSQBug int

const (
	// WSQCorrect is the race-free protocol.
	WSQCorrect WSQBug = iota
	// WSQBug1: the owner's pop fast path uses an off-by-one bound
	// (head <= tail instead of head < tail) and claims the last item
	// without taking the lock, racing a stealer.
	WSQBug1
	// WSQBug2: steal reads head/tail and claims the item without
	// holding the lock.
	WSQBug2
	// WSQBug3: the owner's pop slow path reuses the head value read
	// before acquiring the lock instead of re-reading it (the
	// "should read once again" pattern of Figure 8).
	WSQBug3
)

func (b WSQBug) String() string {
	switch b {
	case WSQCorrect:
		return "correct"
	case WSQBug1:
		return "bug1-pop-fastpath"
	case WSQBug2:
		return "bug2-lockfree-steal"
	case WSQBug3:
		return "bug3-stale-head"
	default:
		return fmt.Sprintf("bug(%d)", int(b))
	}
}

// wsq is a work-stealing deque in the style of the Cilk THE protocol
// with a lock resolving owner/stealer conflicts (the protocol of the
// paper's reference [20], Leijen's Futures library). The queue holds
// task ids in [head, tail); the owner pushes and pops at the tail,
// stealers take from the head under the lock.
type wsq struct {
	head, tail *conc.IntVar
	tasks      *conc.IntArray
	lock       *conc.Mutex
	bug        WSQBug
}

const wsqEmpty = -1

func newWSQ(t *conc.T, capacity int, bug WSQBug) *wsq {
	return &wsq{
		head:  conc.NewIntVar(t, "wsq.head", 0),
		tail:  conc.NewIntVar(t, "wsq.tail", 0),
		tasks: conc.NewIntArray(t, "wsq.tasks", capacity),
		lock:  conc.NewMutex(t, "wsq.lock"),
		bug:   bug,
	}
}

// push appends a task at the tail (owner only).
func (q *wsq) push(t *conc.T, v int64) {
	tl := q.tail.Load(t)
	q.tasks.Set(t, int(tl), v)
	q.tail.Store(t, tl+1)
}

// pop removes the task at the tail (owner only), or returns wsqEmpty.
func (q *wsq) pop(t *conc.T) int64 {
	tl := q.tail.Load(t) - 1
	q.tail.Store(t, tl) // publish intent before inspecting head
	hd := q.head.Load(t)

	fast := hd < tl
	if q.bug == WSQBug1 {
		fast = hd <= tl // BUG: claims the last item without the lock
	}
	if fast {
		return q.tasks.Get(t, int(tl))
	}
	if hd > tl {
		// The deque was empty; normalize and bail out.
		q.tail.Store(t, hd)
		return wsqEmpty
	}
	// hd == tl: exactly one item; contend with stealers under the lock.
	q.lock.Lock(t)
	hd2 := q.head.Load(t)
	if q.bug == WSQBug3 {
		hd2 = hd // BUG: stale head — should read head once again
	}
	if hd2 == tl {
		// The item is still ours.
		q.head.Store(t, tl+1)
		q.tail.Store(t, tl+1)
		q.lock.Unlock(t)
		return q.tasks.Get(t, int(tl))
	}
	// A stealer took it; normalize the empty deque.
	q.tail.Store(t, hd2)
	q.lock.Unlock(t)
	return wsqEmpty
}

// steal removes the task at the head, or returns wsqEmpty.
func (q *wsq) steal(t *conc.T) int64 {
	if q.bug == WSQBug2 {
		// BUG: lock-free steal races other stealers and the owner's
		// pop of the last item.
		hd := q.head.Load(t)
		tl := q.tail.Load(t)
		if hd >= tl {
			return wsqEmpty
		}
		v := q.tasks.Get(t, int(hd))
		q.head.Store(t, hd+1)
		return v
	}
	q.lock.Lock(t)
	hd := q.head.Load(t)
	tl := q.tail.Load(t)
	if hd >= tl {
		q.lock.Unlock(t)
		return wsqEmpty
	}
	v := q.tasks.Get(t, int(hd))
	q.head.Store(t, hd+1)
	q.lock.Unlock(t)
	return v
}

// WSQConfig parameterizes the work-stealing-queue harness.
type WSQConfig struct {
	// Items is the number of tasks the owner pushes.
	Items int
	// Stealers is the number of stealer threads (Table 2 uses 1, 2).
	Stealers int
	// Bug selects a planted defect (WSQCorrect for none).
	Bug WSQBug
}

// WorkStealingQueue builds the WSQ harness: an owner pushes Items
// tasks and then pops until empty while Stealers steal in
// spin-and-yield loops until the owner finishes. Every task must be
// consumed exactly once; the planted bugs make a task be consumed
// twice (or lost) in some interleaving.
//
// The stealers' retry loops make the program nonterminating under
// unfair schedules — before fair scheduling, CHESS required manually
// rewriting exactly this kind of loop (§4.1).
func WorkStealingQueue(cfg WSQConfig) func(*conc.T) {
	if cfg.Items < 1 || cfg.Stealers < 0 {
		panic("progs: bad WSQConfig")
	}
	return func(t *conc.T) {
		q := newWSQ(t, cfg.Items, cfg.Bug)
		done := conc.NewIntVar(t, "done", 0)
		// taken[i] counts consumptions of task i.
		taken := make([]*conc.IntVar, cfg.Items)
		for i := range taken {
			taken[i] = conc.NewIntVar(t, fmt.Sprintf("taken%d", i), 0)
		}
		wg := conc.NewWaitGroup(t, "wg", int64(1+cfg.Stealers))

		t.Go("owner", func(t *conc.T) {
			for i := 0; i < cfg.Items; i++ {
				q.push(t, int64(i))
			}
			for {
				t.Label(1)
				v := q.pop(t)
				if v == wsqEmpty {
					break
				}
				taken[v].Add(t, 1)
			}
			done.Store(t, 1)
			wg.Done(t)
		})
		for s := 0; s < cfg.Stealers; s++ {
			t.Go(fmt.Sprintf("stealer%d", s), func(t *conc.T) {
				for {
					t.Label(1)
					v := q.steal(t)
					if v != wsqEmpty {
						taken[v].Add(t, 1)
						continue
					}
					if done.Load(t) == 1 {
						break
					}
					t.Yield() // be a good samaritan while the deque is empty
				}
				wg.Done(t)
			})
		}
		wg.Wait(t)
		for i := range taken {
			n := taken[i].Load(t)
			t.Assert(n != 0, fmt.Sprintf("task %d lost", i))
			t.Assert(n == 1, fmt.Sprintf("task %d consumed %d times", i, n))
		}
	}
}

func init() {
	register(Program{
		Name:        "wsq-1",
		Description: "Table 2 coverage config: work-stealing queue, 1 stealer, 2 items",
		Body:        WorkStealingQueue(WSQConfig{Items: 2, Stealers: 1}),
	})
	register(Program{
		Name:        "wsq-2",
		Description: "Table 2 coverage config: work-stealing queue, 2 stealers, 2 items",
		Body:        WorkStealingQueue(WSQConfig{Items: 2, Stealers: 2}),
	})
	for _, b := range []WSQBug{WSQBug1, WSQBug2, WSQBug3} {
		b := b
		register(Program{
			Name:        fmt.Sprintf("wsq-%s", b),
			Description: fmt.Sprintf("Table 3: work-stealing queue with planted %s", b),
			ExpectBug:   "safety violation",
			Body:        WorkStealingQueue(WSQConfig{Items: 2, Stealers: 2, Bug: b}),
		})
	}
}
