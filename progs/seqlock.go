package progs

import (
	"fmt"

	"fairmc/conc"
)

// Seqlock models the classic sequence lock: a writer brackets its
// updates with sequence-counter increments (odd = write in progress);
// readers snapshot the counter, read the data, and retry if the
// counter was odd or changed. The reader retry loop — spin, observe,
// yield, retry — is exactly the cyclic structure fair stateless model
// checking exists for: without fairness the checker unrolls reader
// retries forever; with it, the retry cycles are pruned as unfair and
// the search terminates.
//
// The protected data is a pair (a, b) with the invariant b == a + 1.
// The buggy variant omits the *entry* increment (the writer "only
// publishes at the end"), so a reader can see a torn pair while
// concluding from the counter that the snapshot was consistent.

// SeqlockConfig parameterizes the harness.
type SeqlockConfig struct {
	// Writers is the number of writer threads (serialized by a lock,
	// as in real seqlocks); each performs one update.
	Writers int
	// Readers is the number of reader threads; each takes one
	// consistent snapshot.
	Readers int
	// Buggy omits the sequence increment at writer entry.
	Buggy bool
}

// Seqlock builds the harness.
func Seqlock(cfg SeqlockConfig) func(*conc.T) {
	if cfg.Writers < 1 || cfg.Readers < 1 {
		panic("progs: bad SeqlockConfig")
	}
	return func(t *conc.T) {
		seq := conc.NewIntVar(t, "seq", 0)
		a := conc.NewIntVar(t, "a", 0)
		b := conc.NewIntVar(t, "b", 1)
		wmu := conc.NewMutex(t, "wmu")
		wg := conc.NewWaitGroup(t, "wg", int64(cfg.Writers+cfg.Readers))

		for w := 0; w < cfg.Writers; w++ {
			val := int64(10 * (w + 1))
			t.Go(fmt.Sprintf("writer%d", w), func(t *conc.T) {
				wmu.Lock(t)
				if !cfg.Buggy {
					seq.Add(t, 1) // odd: write in progress
				}
				a.Store(t, val)
				b.Store(t, val+1)
				if cfg.Buggy {
					seq.Add(t, 2) // BUG: publish-only, no entry mark
				} else {
					seq.Add(t, 1) // even again: write complete
				}
				wmu.Unlock(t)
				wg.Done(t)
			})
		}
		for r := 0; r < cfg.Readers; r++ {
			t.Go(fmt.Sprintf("reader%d", r), func(t *conc.T) {
				for {
					t.Label(1)
					s1 := seq.Load(t)
					if s1%2 == 1 {
						t.Yield() // writer in progress: be a good samaritan
						continue
					}
					av := a.Load(t)
					bv := b.Load(t)
					s2 := seq.Load(t)
					if s1 != s2 {
						t.Yield() // raced a writer: retry
						continue
					}
					// The seqlock's contract: this snapshot is
					// consistent.
					t.Assert(bv == av+1,
						fmt.Sprintf("torn read: a=%d b=%d (seq %d)", av, bv, s1))
					break
				}
				wg.Done(t)
			})
		}
		wg.Wait(t)
	}
}

func init() {
	register(Program{
		Name:        "seqlock",
		Description: "sequence lock, 1 writer / 2 readers with retry loops (correct)",
		Body:        Seqlock(SeqlockConfig{Writers: 1, Readers: 2}),
	})
	register(Program{
		Name:        "seqlock-torn",
		Description: "seqlock whose writer skips the entry increment (torn reads)",
		ExpectBug:   "torn read",
		Body:        Seqlock(SeqlockConfig{Writers: 1, Readers: 1, Buggy: true}),
	})
}
