package progs

import (
	"fmt"

	"fairmc/conc"
)

// msQueue is the Michael & Scott two-lock concurrent queue (PODC'96):
// a linked list with a dummy head node, a head lock serializing
// dequeuers and a tail lock serializing enqueuers. Its correctness
// hinges on the dummy node keeping enqueuers and dequeuers from ever
// touching the same node: with the dummy, head==tail means empty and
// the two sides never conflict.
//
// The planted bug removes the dummy-node discipline: dequeue reads the
// value out of the node *after* releasing the head lock ("shrink the
// critical section"), racing an enqueuer that links through — and
// overwrites next/value of — the same node when the queue drains to
// one element.
type msQueue struct {
	head, tail *conc.IntVar // node id + 1
	next       *conc.IntArray
	value      *conc.IntArray
	alloc      *conc.IntVar
	hlock      *conc.Mutex
	tlock      *conc.Mutex
	bug        bool
}

func newMSQueue(t *conc.T, capacity int, bug bool) *msQueue {
	q := &msQueue{
		head:  conc.NewIntVar(t, "q.head", 0),
		tail:  conc.NewIntVar(t, "q.tail", 0),
		next:  conc.NewIntArray(t, "q.next", capacity),
		value: conc.NewIntArray(t, "q.value", capacity),
		alloc: conc.NewIntVar(t, "q.alloc", 0),
		hlock: conc.NewMutex(t, "q.hlock"),
		tlock: conc.NewMutex(t, "q.tlock"),
		bug:   bug,
	}
	// Dummy node.
	d := q.newNode(t, -1)
	q.head.Store(t, d)
	q.tail.Store(t, d)
	return q
}

func (q *msQueue) newNode(t *conc.T, v int64) int64 {
	id := q.alloc.Add(t, 1) - 1
	if int(id) >= q.value.Len() {
		t.Failf("msqueue: node arena exhausted")
	}
	q.value.Set(t, int(id), v)
	q.next.Set(t, int(id), 0)
	return id + 1
}

// enqueue appends v under the tail lock.
func (q *msQueue) enqueue(t *conc.T, v int64) {
	n := q.newNode(t, v)
	q.tlock.Lock(t)
	tl := q.tail.Load(t)
	q.next.Set(t, int(tl-1), n)
	q.tail.Store(t, n)
	q.tlock.Unlock(t)
}

// dequeue removes the oldest value; ok is false when empty.
func (q *msQueue) dequeue(t *conc.T) (v int64, ok bool) {
	q.hlock.Lock(t)
	hd := q.head.Load(t)
	nxt := q.next.Get(t, int(hd-1))
	if nxt == 0 {
		q.hlock.Unlock(t)
		return 0, false
	}
	if q.bug {
		// BUG: advance head and release the lock before reading the
		// value — "the node is ours now, no need to hold the lock".
		// But the new head is the queue's new *dummy*, which a
		// concurrent enqueuer mutates (links a successor) and, when
		// the arena recycles… here the simpler race: a second
		// dequeuer can advance past the node and a fresh enqueue can
		// rewrite the cell before we read it.
		q.head.Store(t, nxt)
		q.hlock.Unlock(t)
		// Recycle the old dummy eagerly into the allocator — the
		// premature-free that makes the unlocked read observable.
		q.recycle(t, hd)
		return q.value.Get(t, int(nxt-1)), true
	}
	v = q.value.Get(t, int(nxt-1))
	q.head.Store(t, nxt)
	q.hlock.Unlock(t)
	return v, true
}

// recycle returns a node to the bump allocator if it was the most
// recent allocation high-water mark lowering is impossible; instead
// model reuse by handing the slot to the next allocation when the
// arena is exhausted. For the harness's purposes a simple overwrite
// marker suffices: stamp the node so a late reader sees garbage.
func (q *msQueue) recycle(t *conc.T, node int64) {
	q.value.Set(t, int(node-1), -999)
	q.next.Set(t, int(node-1), 0)
}

// MSQueue builds the harness: one producer enqueues 1..Items, two
// consumers drain; every value must be received exactly once and no
// consumer may observe the recycle stamp.
func MSQueue(items int, bug bool) func(*conc.T) {
	if items < 1 {
		panic("progs: MSQueue needs items >= 1")
	}
	return func(t *conc.T) {
		q := newMSQueue(t, items+2, bug)
		seen := make([]*conc.IntVar, items)
		for i := range seen {
			seen[i] = conc.NewIntVar(t, fmt.Sprintf("seen%d", i), 0)
		}
		done := conc.NewIntVar(t, "done", 0)
		wg := conc.NewWaitGroup(t, "wg", 3)
		t.Go("producer", func(t *conc.T) {
			for v := 1; v <= items; v++ {
				q.enqueue(t, int64(v))
			}
			done.Store(t, 1)
			wg.Done(t)
		})
		for c := 0; c < 2; c++ {
			t.Go(fmt.Sprintf("consumer%d", c), func(t *conc.T) {
				for {
					t.Label(1)
					if v, ok := q.dequeue(t); ok {
						t.Assert(v >= 1 && v <= int64(items),
							fmt.Sprintf("garbage value %d dequeued", v))
						seen[v-1].Add(t, 1)
						continue
					}
					if done.Load(t) == 1 {
						// One last look after the producer finished.
						if v, ok := q.dequeue(t); ok {
							t.Assert(v >= 1 && v <= int64(items),
								fmt.Sprintf("garbage value %d dequeued", v))
							seen[v-1].Add(t, 1)
							continue
						}
						break
					}
					t.Yield()
				}
				wg.Done(t)
			})
		}
		wg.Wait(t)
		for i, s := range seen {
			n := s.Load(t)
			t.Assert(n != 0, fmt.Sprintf("value %d lost", i+1))
			t.Assert(n == 1, fmt.Sprintf("value %d delivered %d times", i+1, n))
		}
	}
}

func init() {
	register(Program{
		Name:        "msqueue",
		Description: "Michael-Scott two-lock queue, 1 producer / 2 consumers (correct)",
		Body:        MSQueue(2, false),
	})
	register(Program{
		Name:        "msqueue-bug",
		Description: "two-lock queue reading the value after releasing the head lock",
		ExpectBug:   "garbage or duplicate dequeue",
		Body:        MSQueue(2, true),
	})
}
