package progs

import (
	"fmt"

	"fairmc/conc"
)

// SeqlockTSO is a seqlock whose writers coordinate with a Dekker-style
// flag handshake over plain memory: each writer raises its flag, checks
// the rival's flag, and only enters the write section if the rival is
// absent (otherwise it skips its round). The write section is the usual
// seqlock protocol — bump the sequence to odd, write both data words,
// bump back to even — and the reader takes the usual optimistic
// snapshot: read seq, read data, re-read seq, and trust the data only
// if the sequence was even and unchanged.
//
// Under SC the flag handshake excludes concurrent writers (the classic
// store-buffering argument: two concurrent entrants would each need
// their load to precede the other's program-order-earlier store, a
// cycle), so the sequence increases monotonically and every
// even-and-stable snapshot is consistent. Under TSO the flag stores can
// hide in the writers' buffers, both writers pass the check, both read
// the same starting sequence — so their seq stores carry identical
// values and the reader's re-check can no longer distinguish "one
// writer finished" from "a second writer is mid-flight": interleaved
// flushes let it observe an even, stable sequence with torn data
// (d0 != d1). A fence
// between each writer's flag store and flag load (fenced = true)
// restores writer exclusion and with it reader consistency — the write
// section itself needs no fences because each buffer drains in FIFO
// order.
func SeqlockTSO(fenced bool) func(*conc.T) {
	const (
		seq   = 0
		d0    = 1
		d1    = 2
		flagA = 3
		flagB = 4
	)
	return func(t *conc.T) {
		mem := conc.NewMemory(t, "mem", 5)
		wg := conc.NewWaitGroup(t, "wg", 3)
		for w := 0; w < 2; w++ {
			myFlag, rivalFlag, val := flagA, flagB, int64(w+1)
			if w == 1 {
				myFlag, rivalFlag = flagB, flagA
			}
			t.Go(fmt.Sprintf("writer%d", w), func(t *conc.T) {
				mem.Store(t, myFlag, 1)
				if fenced {
					mem.Fence(t)
				}
				if mem.Load(t, rivalFlag) == 0 {
					s := mem.Load(t, seq)
					mem.Store(t, seq, s+1)
					mem.Store(t, d0, val)
					mem.Store(t, d1, val)
					mem.Store(t, seq, s+2)
				}
				mem.Store(t, myFlag, 0)
				wg.Done(t)
			})
		}
		t.Go("reader", func(t *conc.T) {
			for attempt := 0; attempt < 2; attempt++ {
				s1 := mem.Load(t, seq)
				if s1%2 != 0 {
					t.Yield()
					continue
				}
				v0 := mem.Load(t, d0)
				v1 := mem.Load(t, d1)
				if mem.Load(t, seq) != s1 {
					t.Yield()
					continue
				}
				t.Assert(v0 == v1, "seqlock: stable even sequence implies untorn data")
			}
			wg.Done(t)
		})
		wg.Wait(t)
		mem.Drain(t)
	}
}

func init() {
	register(Program{
		Name:        "seqlock-tso",
		Description: "seqlock with Dekker-flag writer exclusion (consistent under -mm=sc, torn reads under -mm=tso)",
		ExpectBug:   "torn read under -mm=tso: writers both pass the flag check",
		Body:        SeqlockTSO(false),
	})
	register(Program{
		Name:        "seqlock-tso-fenced",
		Description: "seqlock with fenced Dekker-flag writer exclusion (consistent under every memory model)",
		Body:        SeqlockTSO(true),
	})
}
