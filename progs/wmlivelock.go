package progs

import "fairmc/conc"

// WMLivelock is a fixture that livelocks under TSO and fair-terminates
// under SC — the fixture that shows the fair scheduler and the weak
// memory subsystem composing rather than merely coexisting.
//
// Two threads run rounds of the store-buffering shape with a round
// counter: in round k each thread stores k to its own variable, loads
// the other's variable, and the threads exchange the loaded values
// over rendezvous channels. They stop — jointly, since both evaluate
// the same predicate on the same pair — as soon as either thread
// observed the other's CURRENT round value; a stale value (any lag at
// all) means another round.
//
// Under SC the usual store-buffering cycle argument applies round by
// round: both loads reading stale values would require each load to
// precede the other thread's program-order-earlier store of k, a
// cycle, so every execution exits in round 1 and the state space is
// tiny. Under TSO the buffers lag: each round buffers one more store,
// and as long as flushing trails by at least one entry both loads
// read stale rounds forever. Crucially the diverging executions are
// FAIR — both threads yield every round, and the flush agents the
// fair scheduler's priority relation forces to run do run, every
// round; the flushes just never catch up. Memory fairness alone
// cannot rescue the program: the checker must classify this as a fair
// nontermination (livelock), not a good-samaritan violation. A fence
// between each round's store and load (fenced = true) restores the SC
// argument — the store of k is globally visible before the load — and
// with it round-1 termination.
func WMLivelock(fenced bool) func(*conc.T) {
	const (
		x = 0
		y = 1
	)
	return func(t *conc.T) {
		mem := conc.NewMemory(t, "mem", 2)
		chA := conc.NewChannel(t, "chA", 0)
		chB := conc.NewChannel(t, "chB", 0)
		wg := conc.NewWaitGroup(t, "wg", 2)
		t.Go("a", func(t *conc.T) {
			for k := int64(1); ; k++ {
				t.Label(1)
				mem.Store(t, x, k)
				if fenced {
					mem.Fence(t)
				}
				ra := mem.Load(t, y)
				chA.Send(t, ra)
				rb, _ := chB.Recv(t)
				if ra == k || rb == k {
					break
				}
				t.Yield()
			}
			wg.Done(t)
		})
		t.Go("b", func(t *conc.T) {
			for k := int64(1); ; k++ {
				t.Label(1)
				mem.Store(t, y, k)
				if fenced {
					mem.Fence(t)
				}
				rb := mem.Load(t, x)
				ra, _ := chA.Recv(t)
				chB.Send(t, rb)
				if ra == k || rb == k {
					break
				}
				t.Yield()
			}
			wg.Done(t)
		})
		wg.Wait(t)
		mem.Drain(t)
	}
}

func init() {
	register(Program{
		Name:        "wm-tso-livelock",
		Description: "round-counter store buffering with rendezvous exchange (fair-terminates under -mm=sc, livelocks under -mm=tso)",
		ExpectBug:   "fair nontermination under -mm=tso",
		Body:        WMLivelock(false),
	})
	register(Program{
		Name:        "wm-tso-livelock-fenced",
		Description: "round-counter store buffering with fences (fair-terminates under every memory model)",
		Body:        WMLivelock(true),
	})
}
