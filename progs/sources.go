package progs

import "embed"

// Sources embeds the model-program source files so the Table 1
// experiment can report lines of code for each program, mirroring the
// paper's "LOC" column.
//
//go:embed *.go
var Sources embed.FS

// SourceLOC returns the number of lines in the named source file of
// this package (e.g. "wsq.go"), or 0 if it does not exist.
func SourceLOC(file string) int {
	data, err := Sources.ReadFile(file)
	if err != nil {
		return 0
	}
	n := 0
	for _, b := range data {
		if b == '\n' {
			n++
		}
	}
	return n
}
