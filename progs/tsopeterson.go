package progs

import (
	"fmt"

	"fairmc/conc"
)

// PetersonTSO is Peterson's algorithm over conc.Memory — plain racy
// memory governed by the checked memory model (-mm), the canonical
// relaxed-memory demonstration. Under sequential consistency (the
// default) the algorithm is correct; under -mm=tso the intent-flag and
// turn stores can still sit in the writer's store buffer when the
// rival loads them from global memory (the writer's own loads are
// served by store-to-load forwarding, which makes it worse: it sees
// its turn store, the rival does not), both threads see "no rival",
// and mutual exclusion breaks. An MFENCE between the stores and the
// loads (fenced = true) restores correctness under TSO.
//
// Flush delay is first-class scheduler nondeterminism here: each
// thread's store buffer registers a flush agent whose steps the search
// enumerates like any thread, so DFS, PCT, and DPOR all find the
// unfenced violation under -mm=tso.
func PetersonTSO(fenced bool) func(*conc.T) {
	const (
		flag0 = 0
		flag1 = 1
		turn  = 2
	)
	return func(t *conc.T) {
		mem := conc.NewMemory(t, "mem", 3)
		occupancy := conc.NewIntVar(t, "cs", 0)
		wg := conc.NewWaitGroup(t, "wg", 2)
		for me := 0; me < 2; me++ {
			other := 1 - me
			myFlag, rivalFlag := flag0, flag1
			if me == 1 {
				myFlag, rivalFlag = flag1, flag0
			}
			t.Go(fmt.Sprintf("p%d", me), func(t *conc.T) {
				mem.Store(t, myFlag, 1)
				mem.Store(t, turn, int64(other))
				if fenced {
					mem.Fence(t) // drain before inspecting the rival
				}
				for {
					t.Label(1)
					if mem.Load(t, rivalFlag) != 1 ||
						mem.Load(t, turn) != int64(other) {
						break
					}
					t.Yield()
				}
				t.Assert(occupancy.Add(t, 1) == 1, "mutual exclusion under the checked memory model")
				occupancy.Add(t, -1)
				mem.Store(t, myFlag, 0)
				wg.Done(t)
			})
		}
		wg.Wait(t)
		mem.Drain(t)
	}
}

func init() {
	register(Program{
		Name:        "peterson-tso",
		Description: "Peterson's over conc.Memory, no fence (correct under -mm=sc, mutual exclusion breaks under -mm=tso)",
		ExpectBug:   "mutual exclusion violation under -mm=tso",
		Body:        PetersonTSO(false),
	})
	register(Program{
		Name:        "peterson-tso-fenced",
		Description: "Peterson's over conc.Memory with an MFENCE (correct under every memory model)",
		Body:        PetersonTSO(true),
	})
}
