package progs

import (
	"fmt"

	"fairmc/conc"
	"fairmc/internal/tso"
)

// PetersonTSO is Peterson's algorithm running over the TSO store-
// buffer memory of internal/tso — the canonical relaxed-memory
// demonstration. Under sequential consistency the algorithm is
// correct (see progs/classic.go); under TSO the intent-flag store can
// still sit in the writer's buffer when the rival loads the flag from
// global memory, both threads see "no rival", and mutual exclusion
// breaks. An MFENCE between the store and the load (fenced = true)
// restores correctness.
//
// The checker needs no relaxed-memory support: the buffers and their
// pump threads are ordinary model code, so TSO reorderings are just
// thread interleavings.
func PetersonTSO(fenced bool) func(*conc.T) {
	const (
		flag0 = 0
		flag1 = 1
		turn  = 2
	)
	return func(t *conc.T) {
		mem := tso.New(t, "tso", 2, 3, 2)
		occupancy := conc.NewIntVar(t, "cs", 0)
		wg := conc.NewWaitGroup(t, "wg", 2)
		for me := 0; me < 2; me++ {
			me := me
			other := 1 - me
			myFlag, rivalFlag := flag0, flag1
			if me == 1 {
				myFlag, rivalFlag = flag1, flag0
			}
			t.Go(fmt.Sprintf("p%d", me), func(t *conc.T) {
				mem.Store(t, me, myFlag, 1)
				mem.Store(t, me, turn, int64(other))
				if fenced {
					mem.Fence(t, me) // drain before inspecting the rival
				}
				for {
					t.Label(1)
					if mem.Load(t, me, rivalFlag) != 1 ||
						mem.Load(t, me, turn) != int64(other) {
						break
					}
					t.Yield()
				}
				t.Assert(occupancy.Add(t, 1) == 1, "mutual exclusion under TSO")
				occupancy.Add(t, -1)
				mem.Store(t, me, myFlag, 0)
				wg.Done(t)
			})
		}
		wg.Wait(t)
		mem.Close(t)
	}
}

func init() {
	register(Program{
		Name:        "peterson-tso",
		Description: "Peterson's over TSO store buffers, no fence (mutual exclusion breaks)",
		ExpectBug:   "mutual exclusion violation under TSO",
		Body:        PetersonTSO(false),
	})
	register(Program{
		Name:        "peterson-tso-fenced",
		Description: "Peterson's over TSO store buffers with an MFENCE (correct)",
		Body:        PetersonTSO(true),
	})
}
