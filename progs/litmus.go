// Litmus tests: the classic two-thread weak-memory shapes, expressed
// over conc.Memory so that the checked memory model (-mm) decides their
// verdicts. Each fixture documents its expected verdict matrix; the
// assertions encode the forbidden outcome, so "fail" means the checker
// reports an assertion violation for some schedule.
//
//	fixture            -mm=sc   -mm=tso   -mm=tso fenced
//	litmus-sb          pass     FAIL      pass (litmus-sb-fenced)
//	litmus-mp          pass     pass      —
//	litmus-lb          pass     pass      —
//
// SB (store buffering) is the one shape TSO distinguishes from SC:
// both stores can hide in their owners' buffers while both loads read
// the initial values from memory. MP (message passing) stays correct
// under TSO because store buffers drain in FIFO order, and LB (load
// buffering) stays correct because TSO never reorders a load with a
// later store — both serve as controls that the TSO implementation is
// not weaker than TSO.
package progs

import "fairmc/conc"

// LitmusSB is the store-buffering litmus test: two threads each store
// to their own variable and then load the other's. Under SC the
// outcome r0 == 0 && r1 == 0 is impossible (whichever load executes
// last must see the other thread's completed store); under TSO both
// stores can still be buffered when the loads run, so both loads read
// 0. An MFENCE between each thread's store and load (fenced = true)
// forbids the weak outcome again.
func LitmusSB(fenced bool) func(*conc.T) {
	const (
		x = 0
		y = 1
	)
	return func(t *conc.T) {
		mem := conc.NewMemory(t, "mem", 2)
		r0 := conc.NewIntVar(t, "r0", -1)
		r1 := conc.NewIntVar(t, "r1", -1)
		wg := conc.NewWaitGroup(t, "wg", 2)
		t.Go("a", func(t *conc.T) {
			mem.Store(t, x, 1)
			if fenced {
				mem.Fence(t)
			}
			r0.Store(t, mem.Load(t, y))
			wg.Done(t)
		})
		t.Go("b", func(t *conc.T) {
			mem.Store(t, y, 1)
			if fenced {
				mem.Fence(t)
			}
			r1.Store(t, mem.Load(t, x))
			wg.Done(t)
		})
		wg.Wait(t)
		t.Assert(r0.Load(t) == 1 || r1.Load(t) == 1,
			"store buffering: at least one load observes the other store")
		mem.Drain(t)
	}
}

// LitmusMP is the message-passing litmus test: a producer writes data
// and then raises a flag; a consumer spins on the flag and then reads
// the data. TSO keeps this correct — each store buffer drains in FIFO
// order, so the data store is globally visible before the flag store.
// The consumer's spin also exercises memory fairness: the flag store
// only becomes visible when the producer's flush agent runs, and the
// fair scheduler's priority relation guarantees that it eventually
// does, so the spin terminates in every fair execution.
func LitmusMP(t *conc.T) {
	const (
		data = 0
		flag = 1
	)
	mem := conc.NewMemory(t, "mem", 2)
	wg := conc.NewWaitGroup(t, "wg", 2)
	t.Go("producer", func(t *conc.T) {
		mem.Store(t, data, 42)
		mem.Store(t, flag, 1)
		wg.Done(t)
	})
	t.Go("consumer", func(t *conc.T) {
		for {
			t.Label(1)
			if mem.Load(t, flag) == 1 {
				break
			}
			t.Yield()
		}
		t.Assert(mem.Load(t, data) == 42,
			"message passing: flag implies data (FIFO store buffers)")
		wg.Done(t)
	})
	wg.Wait(t)
	mem.Drain(t)
}

// LitmusLB is the load-buffering litmus test: each thread loads the
// other's variable and then stores to its own. The outcome
// r0 == 1 && r1 == 1 requires a load to read from a program-order
// later store — a load/store reordering that TSO (like SC) forbids.
func LitmusLB(t *conc.T) {
	const (
		x = 0
		y = 1
	)
	mem := conc.NewMemory(t, "mem", 2)
	r0 := conc.NewIntVar(t, "r0", -1)
	r1 := conc.NewIntVar(t, "r1", -1)
	wg := conc.NewWaitGroup(t, "wg", 2)
	t.Go("a", func(t *conc.T) {
		r0.Store(t, mem.Load(t, y))
		mem.Store(t, x, 1)
		wg.Done(t)
	})
	t.Go("b", func(t *conc.T) {
		r1.Store(t, mem.Load(t, x))
		mem.Store(t, y, 1)
		wg.Done(t)
	})
	wg.Wait(t)
	t.Assert(!(r0.Load(t) == 1 && r1.Load(t) == 1),
		"load buffering: loads do not read from program-order later stores")
	mem.Drain(t)
}

func init() {
	register(Program{
		Name:        "litmus-sb",
		Description: "store-buffering litmus (passes under -mm=sc, weak outcome reachable under -mm=tso)",
		ExpectBug:   "r0 == 0 && r1 == 0 under -mm=tso",
		Body:        LitmusSB(false),
	})
	register(Program{
		Name:        "litmus-sb-fenced",
		Description: "store-buffering litmus with MFENCEs (passes under every memory model)",
		Body:        LitmusSB(true),
	})
	register(Program{
		Name:        "litmus-mp",
		Description: "message-passing litmus (passes under sc and tso: FIFO store buffers)",
		Body:        LitmusMP,
	})
	register(Program{
		Name:        "litmus-lb",
		Description: "load-buffering litmus (passes under sc and tso: no load/store reordering)",
		Body:        LitmusLB,
	})
}
