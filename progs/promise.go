package progs

import "fairmc/conc"

// Promise models the paper's §4.3.2 subject: a data-parallelism
// primitive whose consumers wait for a producer to resolve a value.
// The implementation is "optimized for efficiency": waiters first
// check a couple of fast-path conditions and only then fall into a
// spin-with-sleep loop — exactly the shape of Figure 8.
//
// The buggy variant reproduces Figure 8's livelock: the spin loop
// waits on a stale local copy of the shared state word instead of
// re-reading it ("// BUG: should read x once again"). Because the
// waiter sleeps (a yielding operation) in the loop, the resulting
// infinite execution is *fair* and satisfies the good-samaritan
// property, so the checker classifies the divergence as a livelock —
// the hard-to-find kind of bug the paper reports: "it only occurred in
// those rare thread interleavings in which the common cases … were
// inapplicable".

// PromiseBug selects the Figure 8 defect.
type PromiseBug int

const (
	// PromiseCorrect re-reads the shared state on every spin.
	PromiseCorrect PromiseBug = iota
	// PromiseStaleRead spins on a stale local copy (Figure 8).
	PromiseStaleRead
)

// promise is the model promise cell: state is 0 (pending), 1
// (resolved); fastFlag models the "common case" conditions that let a
// waiter return without spinning.
type promise struct {
	state    *conc.IntVar
	value    *conc.IntVar
	fastFlag *conc.IntVar
	bug      PromiseBug
}

func newPromise(t *conc.T, bug PromiseBug) *promise {
	return &promise{
		state:    conc.NewIntVar(t, "promise.state", 0),
		value:    conc.NewIntVar(t, "promise.value", 0),
		fastFlag: conc.NewIntVar(t, "promise.fast", 0),
		bug:      bug,
	}
}

// resolve publishes the value and flips the state word.
func (p *promise) resolve(t *conc.T, v int64) {
	p.value.Store(t, v)
	p.state.Store(t, 1)
}

// wait blocks until the promise resolves and returns its value,
// following Figure 8's structure.
func (p *promise) wait(t *conc.T) int64 {
	xTemp := p.state.Load(t) // int x_temp = InterlockedRead(x)
	if xTemp == 1 {
		return p.value.Load(t) // if (common case 1) break
	}
	if p.fastFlag.Load(t) == 1 && p.state.Load(t) == 1 {
		return p.value.Load(t) // if (common case 2) break
	}
	// Spin in the uncommon case.
	for xTemp != 1 {
		t.Label(1)
		t.Sleep(1) // Sleep(1); // yield
		if p.bug != PromiseStaleRead {
			xTemp = p.state.Load(t)
		}
		// BUG (PromiseStaleRead): should read x once again.
	}
	return p.value.Load(t)
}

// PromiseConfig parameterizes the promise harness.
type PromiseConfig struct {
	// Waiters is the number of consumer threads.
	Waiters int
	// Bug selects the Figure 8 defect.
	Bug PromiseBug
}

// Promise builds the harness: a producer resolves the promise (after
// first setting the fast-path flag, so the common cases usually apply)
// while Waiters wait for it and check the value. With PromiseStaleRead
// the rare interleaving in which a waiter enters the spin loop before
// the resolve livelocks.
func Promise(cfg PromiseConfig) func(*conc.T) {
	if cfg.Waiters < 1 {
		panic("progs: Promise needs at least one waiter")
	}
	return func(t *conc.T) {
		p := newPromise(t, cfg.Bug)
		wg := conc.NewWaitGroup(t, "wg", int64(cfg.Waiters))
		for i := 0; i < cfg.Waiters; i++ {
			t.Go("waiter", func(t *conc.T) {
				v := p.wait(t)
				t.Assert(v == 42, "promise value")
				wg.Done(t)
			})
		}
		t.Go("producer", func(t *conc.T) {
			p.fastFlag.Store(t, 1)
			p.resolve(t, 42)
		})
		wg.Wait(t)
	}
}

func init() {
	register(Program{
		Name:        "promise",
		Description: "§4.3.2 subject: promise cell with spin-then-sleep waiters (correct)",
		Body:        Promise(PromiseConfig{Waiters: 2}),
	})
	register(Program{
		Name:        "promise-livelock",
		Description: "Figure 8: waiter spins on a stale local copy of the state word",
		ExpectBug:   "livelock",
		Body:        Promise(PromiseConfig{Waiters: 2, Bug: PromiseStaleRead}),
	})
}
