package progs

import (
	"sync/atomic"

	"fairmc/conc"
)

// nondetSeq lives OUTSIDE the conc API on purpose: it survives across
// executions, so every run of NondetCounter observes a fresh value. The
// program is therefore not a deterministic function of its schedule —
// the defect class the conformance checker exists to catch (a model
// program reading wall-clock time, unseeded randomness, or leftover
// global state behaves the same way).
var nondetSeq int64

// NondetCounter stores the hidden counter into a shared variable, so
// the worker's pending operation — store(x, k) on run k — differs on
// every run, from the worker's very first schedulable step. Two
// properties make this the worst case for a replayer: the divergence
// sits at the *front* of every schedule, inside any replayed prefix
// (nondeterminism that only changes an execution's tail can hide
// beyond the deepest branch point), and the counter never repeats, so
// no divergence-retry attempt ever swings back into conformance (a
// cyclic function of the counter would, every period-th retry). The
// search must detect the divergence and quarantine the subtree rather
// than search a wrong tree.
func NondetCounter(t *conc.T) {
	x := conc.NewIntVar(t, "x", 0)
	done := conc.NewIntVar(t, "done", 0)
	n := atomic.AddInt64(&nondetSeq, 1)
	h := t.Go("worker", func(t *conc.T) {
		x.Store(t, n)
		done.Store(t, 1)
	})
	for done.Load(t) == 0 {
		t.Yield()
	}
	h.Join(t)
}

func init() {
	register(Program{
		Name:        "nondet-counter",
		Description: "deliberately nondeterministic: stores a counter read outside the scheduler (divergence-quarantine fixture)",
		ExpectBug:   "schedule nondeterminism (hidden cross-execution state)",
		Body:        NondetCounter,
	})
}
