package progs

import (
	"fmt"

	"fairmc/conc"
)

// APE models the Asynchronous Processing Environment of Table 1: a
// Windows library offering a work-item queue serviced by a pool of
// worker threads, with completion tracking and a cancellation path
// driven by a timer thread. The harness is fair-terminating (the
// paper's point is that such long-running libraries need *no* manual
// modification once the checker is fair): workers and the timer run
// retry loops with yields until the environment shuts down.

// APEConfig parameterizes the harness.
type APEConfig struct {
	// Workers is the pool size.
	Workers int
	// Items is the number of work items posted.
	Items int
	// WithTimer adds the watchdog thread exercising the cancel path.
	WithTimer bool
}

// APE builds the harness: main posts Items work items, the pool
// processes them (each exactly once), a completion count releases
// main, and the shutdown path stops the workers and the timer.
func APE(cfg APEConfig) func(*conc.T) {
	if cfg.Workers < 1 || cfg.Items < 1 {
		panic("progs: bad APEConfig")
	}
	return func(t *conc.T) {
		queue := conc.NewChannel(t, "workq", cfg.Items)
		stop := conc.NewIntVar(t, "stop", 0)
		completed := conc.NewIntVar(t, "completed", 0)
		processed := make([]*conc.IntVar, cfg.Items)
		for i := range processed {
			processed[i] = conc.NewIntVar(t, fmt.Sprintf("item%d", i), 0)
		}
		doneEv := conc.NewEvent(t, "alldone", true, false)
		wg := conc.NewWaitGroup(t, "wg", int64(cfg.Workers))

		for w := 0; w < cfg.Workers; w++ {
			t.Go(fmt.Sprintf("worker%d", w), func(t *conc.T) {
				for {
					t.Label(1)
					if v, _, ok := queue.TryRecv(t); ok {
						processed[v].Add(t, 1)
						if completed.Add(t, 1) == int64(cfg.Items) {
							doneEv.Set(t)
						}
						continue
					}
					if stop.Load(t) == 1 {
						break
					}
					t.Sleep(1) // idle back-off: finite timeout => yield
				}
				wg.Done(t)
			})
		}
		if cfg.WithTimer {
			t.Go("timer", func(t *conc.T) {
				// Watchdog: periodically wake and check for shutdown;
				// the cancel path would fire on a deadline, which the
				// model abstracts as the stop flag.
				for {
					t.Label(1)
					if stop.Load(t) == 1 {
						break
					}
					t.Sleep(10)
				}
			})
		}
		for i := 0; i < cfg.Items; i++ {
			queue.Send(t, int64(i))
		}
		doneEv.Wait(t)
		stop.Store(t, 1)
		wg.Wait(t)
		for i, p := range processed {
			t.Assert(p.Load(t) == 1, fmt.Sprintf("item %d processed %d times", i, p.Peek()))
		}
	}
}

func init() {
	register(Program{
		Name:        "ape",
		Description: "Table 1 'APE': worker pool with idle back-off and a watchdog timer (4 threads)",
		Body:        APE(APEConfig{Workers: 2, Items: 2, WithTimer: true}),
	})
}
