package progs_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"fairmc"
	"fairmc/conc"
	"fairmc/progs"
)

// smoke runs one fair execution and requires clean termination.
func smoke(t *testing.T, name string) *fairmc.ExecResult {
	t.Helper()
	p, ok := progs.Lookup(name)
	if !ok {
		t.Fatalf("program %q not registered", name)
	}
	r := fairmc.RunOnce(p.Body, fairmc.Defaults())
	if r.Outcome != fairmc.Terminated {
		t.Fatalf("%s: outcome = %v\n%s", name, r.Outcome, r.FormatTrace())
	}
	return r
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"spinloop", "spinloop-noyield",
		"philosophers-2", "philosophers-3",
		"philosophers-try-2", "philosophers-try-3",
		"wsq-1", "wsq-2",
		"wsq-bug1-pop-fastpath", "wsq-bug2-lockfree-steal", "wsq-bug3-stale-head",
		"promise", "promise-livelock",
		"workergroup", "workergroup-spin",
		"dryad-channels", "dryad-fifo",
		"dryad-bug1-unlocked-occupancy", "dryad-bug2-read-after-release",
		"dryad-bug3-lost-wakeup", "dryad-bug4-reset-race",
		"ape", "singularity", "singularity-small",
		"peterson", "peterson-bug", "bakery-2", "bakery-bug",
		"barrier", "barrier-bug", "readerswriters", "boundedbuffer",
		"treiber", "treiber-aba", "ticketlock",
		"msqueue", "msqueue-bug", "seqlock", "seqlock-torn",
		"peterson-tso", "peterson-tso-fenced", "singularity-disk",
		"litmus-sb", "litmus-sb-fenced", "litmus-mp", "litmus-lb",
		"seqlock-tso", "seqlock-tso-fenced",
		"wm-tso-livelock", "wm-tso-livelock-fenced",
		"nondet-counter",
	}
	all := progs.All()
	names := map[string]bool{}
	for _, p := range all {
		names[p.Name] = true
		if p.Description == "" {
			t.Errorf("%s: empty description", p.Name)
		}
	}
	for _, w := range want {
		if !names[w] {
			t.Errorf("missing program %q", w)
		}
	}
	if len(all) < len(want) {
		t.Errorf("registry has %d programs, want >= %d", len(all), len(want))
	}
}

func TestCorrectProgramsTerminateOnce(t *testing.T) {
	for _, name := range []string{
		"spinloop", "philosophers-2", "philosophers-3",
		"wsq-1", "wsq-2", "promise", "workergroup",
		"dryad-channels", "dryad-fifo", "ape",
		"singularity", "singularity-small",
	} {
		name := name
		t.Run(name, func(t *testing.T) {
			smoke(t, name)
		})
	}
}

func TestSingularityScale(t *testing.T) {
	// Table 1 claims 14 threads for the Singularity row.
	r := smoke(t, "singularity")
	if r.Threads != 14 {
		t.Fatalf("singularity threads = %d, want 14", r.Threads)
	}
}

func TestDryadFifoScale(t *testing.T) {
	// Table 1 claims 25 threads for the Dryad FIFO row.
	r := smoke(t, "dryad-fifo")
	if r.Threads != 25 {
		t.Fatalf("dryad-fifo threads = %d, want 25", r.Threads)
	}
}

// checkFindsBug asserts that a bounded fair search finds a safety bug.
func checkFindsBug(t *testing.T, name string, opts fairmc.Options) *fairmc.Result {
	t.Helper()
	p, ok := progs.Lookup(name)
	if !ok {
		t.Fatalf("program %q not registered", name)
	}
	res := mustCheck(t, p.Body, opts)
	if res.FirstBug == nil {
		t.Fatalf("%s: no bug found in %d executions (%v)", name, res.Executions, res.Elapsed)
	}
	return res
}

func bugOpts() fairmc.Options {
	return fairmc.Options{
		Fair:         true,
		ContextBound: 2, // the paper's Table 3 runs with 2 preemptions
		MaxSteps:     5000,
		TimeLimit:    30 * time.Second,
	}
}

func TestWSQBugsFound(t *testing.T) {
	for _, name := range []string{
		"wsq-bug1-pop-fastpath",
		"wsq-bug2-lockfree-steal",
		"wsq-bug3-stale-head",
	} {
		name := name
		t.Run(name, func(t *testing.T) {
			res := checkFindsBug(t, name, bugOpts())
			if res.FirstBug.Outcome != fairmc.Violation {
				t.Fatalf("outcome = %v, want violation", res.FirstBug.Outcome)
			}
			if res.FirstBug.Violation == nil ||
				!strings.Contains(res.FirstBug.Violation.Msg, "task") {
				t.Fatalf("unexpected violation: %+v", res.FirstBug.Violation)
			}
		})
	}
}

func TestWSQCorrectHasNoBugUnderCB2(t *testing.T) {
	p, _ := progs.Lookup("wsq-1")
	res := mustCheck(t, p.Body, fairmc.Options{
		Fair:         true,
		ContextBound: 2,
		MaxSteps:     5000,
		TimeLimit:    60 * time.Second,
	})
	if !res.Ok() {
		t.Fatalf("correct WSQ flagged: bug=%v divergence=%v", res.FirstBug, res.Divergence)
	}
	if !res.Exhausted {
		t.Fatalf("search did not exhaust: %+v", res.Report)
	}
}

func TestDryadBugsFound(t *testing.T) {
	// The planted defects manifest as assertion violations, deadlocks,
	// or — for the strand-plus-retry shapes — fair divergences (a
	// blocked consumer leaves a producer retrying forever). All three
	// are detections; only the fair checker sees the last kind.
	for _, name := range []string{
		"dryad-bug1-unlocked-occupancy",
		"dryad-bug2-read-after-release",
		"dryad-bug3-lost-wakeup",
		"dryad-bug4-reset-race",
	} {
		name := name
		t.Run(name, func(t *testing.T) {
			p, _ := progs.Lookup(name)
			res := mustCheck(t, p.Body, bugOpts())
			if res.FirstBug == nil && res.Divergence == nil {
				t.Fatalf("%s: nothing found in %d executions (%v)",
					name, res.Executions, res.Elapsed)
			}
		})
	}
}

func TestPhilosophersTryLivelockDetected(t *testing.T) {
	p, _ := progs.Lookup("philosophers-try-2")
	res := mustCheck(t, p.Body, fairmc.Options{
		Fair:         true,
		ContextBound: -1,
		MaxSteps:     400, // small divergence bound keeps the test fast
		TimeLimit:    30 * time.Second,
	})
	if res.FirstBug != nil {
		t.Fatalf("unexpected safety bug: %s", res.FirstBug.FormatTrace())
	}
	if res.Divergence == nil {
		t.Fatalf("livelock not detected: %+v", res.Report)
	}
	if res.Liveness == nil || res.Liveness.Kind != fairmc.FairNontermination {
		t.Fatalf("liveness = %v, want fair nontermination", res.Liveness)
	}
}

func TestPromiseLivelockDetected(t *testing.T) {
	p, _ := progs.Lookup("promise-livelock")
	res := mustCheck(t, p.Body, fairmc.Options{
		Fair:         true,
		ContextBound: -1,
		MaxSteps:     400,
		TimeLimit:    30 * time.Second,
	})
	if res.Divergence == nil {
		t.Fatalf("livelock not detected: %+v", res.Report)
	}
	if res.Liveness.Kind != fairmc.FairNontermination {
		t.Fatalf("liveness = %v, want fair nontermination\n%s", res.Liveness.Kind, res.Liveness)
	}
}

func TestWorkerGroupGSViolationDetected(t *testing.T) {
	p, _ := progs.Lookup("workergroup-spin")
	res := mustCheck(t, p.Body, fairmc.Options{
		Fair:         true,
		ContextBound: -1,
		MaxSteps:     600,
		TimeLimit:    60 * time.Second,
	})
	if res.Divergence == nil {
		t.Fatalf("GS violation not detected: %+v", res.Report)
	}
	if res.Liveness.Kind != fairmc.GoodSamaritanViolation {
		t.Fatalf("liveness = %v, want GS violation\n%s", res.Liveness.Kind, res.Liveness)
	}
}

func TestSpinloopNoYieldGSViolation(t *testing.T) {
	p, _ := progs.Lookup("spinloop-noyield")
	res := mustCheck(t, p.Body, fairmc.Options{
		Fair:         true,
		ContextBound: -1,
		MaxSteps:     400,
	})
	if res.Divergence == nil {
		t.Fatalf("no divergence: %+v", res.Report)
	}
	if res.Liveness.Kind != fairmc.GoodSamaritanViolation {
		t.Fatalf("liveness = %v\n%s", res.Liveness.Kind, res.Liveness)
	}
}

func TestSpinloopFairSearchExhausts(t *testing.T) {
	p, _ := progs.Lookup("spinloop")
	res := mustCheck(t, p.Body, fairmc.Defaults())
	if !res.Ok() || !res.Exhausted {
		t.Fatalf("spinloop check: %+v", res.Report)
	}
}

func TestPhilosophers2FairSearchExhausts(t *testing.T) {
	// The Table 2 coverage configuration must be fully explorable
	// under fair DFS despite its cyclic state space.
	p, _ := progs.Lookup("philosophers-2")
	res := mustCheck(t, p.Body, fairmc.Options{
		Fair:         true,
		ContextBound: 2,
		MaxSteps:     20000,
		TimeLimit:    60 * time.Second,
	})
	if !res.Ok() {
		t.Fatalf("philosophers-2 flagged: bug=%v divergence=%v", res.FirstBug, res.Divergence)
	}
	if !res.Exhausted {
		t.Fatalf("cb=2 fair search did not exhaust: %+v", res.Report)
	}
}

func TestNondetCounterQuarantined(t *testing.T) {
	// The deliberately nondeterministic fixture must be detected and
	// quarantined — not searched as if its schedules were meaningful,
	// and never reported as a bug.
	p, ok := progs.Lookup("nondet-counter")
	if !ok {
		t.Fatal("nondet-counter not registered")
	}
	for _, par := range []int{1, 4} {
		par := par
		t.Run(fmt.Sprintf("parallelism-%d", par), func(t *testing.T) {
			res := mustCheck(t, p.Body, fairmc.Options{
				Fair:          true,
				ContextBound:  -1,
				MaxSteps:      2000,
				MaxExecutions: 300,
				Parallelism:   par,
				TimeLimit:     60 * time.Second,
			})
			if res.Quarantined == 0 {
				t.Fatalf("nondeterminism not quarantined: %+v", res.Report)
			}
			if len(res.Nondeterminism) == 0 {
				t.Fatalf("Quarantined = %d but no NondeterminismReports", res.Quarantined)
			}
			nr := res.Nondeterminism[0]
			if nr.Step < 0 || nr.Attempts < 1 {
				t.Fatalf("malformed report: %+v", nr)
			}
			if res.FirstBug != nil {
				t.Fatalf("nondeterminism misreported as a bug: %s", res.FirstBug.FormatTrace())
			}
		})
	}
}

func TestBugReplays(t *testing.T) {
	// A found bug's schedule must replay to the same outcome.
	p, _ := progs.Lookup("wsq-bug2-lockfree-steal")
	res := checkFindsBug(t, "wsq-bug2-lockfree-steal", bugOpts())
	rr := mustReplay(t, p.Body, res.FirstBug.Schedule, bugOpts())
	if rr.Outcome != res.FirstBug.Outcome {
		t.Fatalf("replay outcome = %v, want %v", rr.Outcome, res.FirstBug.Outcome)
	}
}

// mustCheck and mustReplay unwrap the facade's error return; the
// options in these tests are statically valid.
func mustCheck(t *testing.T, prog func(*conc.T), opts fairmc.Options) *fairmc.Result {
	t.Helper()
	res, err := fairmc.Check(prog, opts)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return res
}

func mustReplay(t *testing.T, prog func(*conc.T), sched []fairmc.Alt, opts fairmc.Options) *fairmc.ExecResult {
	t.Helper()
	r, err := fairmc.Replay(prog, sched, opts)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return r
}
