// Workstealing: find a planted owner/stealer race in the Cilk-style
// work-stealing deque (the paper's Table 3 subject) and replay it.
//
// The planted bug is a lock-free steal: the stealer reads head/tail
// and claims the head item without holding the conflict-resolution
// lock, racing the owner's pop of the last element. The checker finds
// the interleaving in which one task is consumed twice, and the
// recorded schedule replays the violation deterministically.
//
// Run with: go run ./examples/workstealing
package main

import (
	"fmt"

	"fairmc"
	"fairmc/progs"
)

func main() {
	prog, _ := progs.Lookup("wsq-bug2-lockfree-steal")
	opts := fairmc.Options{
		Fair:         true,
		ContextBound: 2, // the paper's Table 3 uses 2 preemptions
		MaxSteps:     5000,
	}
	fmt.Println("checking the work-stealing queue with the lock-free-steal bug...")
	res := must(fairmc.Check(prog.Body, opts))
	if res.FirstBug == nil {
		fmt.Println("no bug found (unexpected)")
		return
	}
	fmt.Printf("found after %d executions (%.3fs): %s\n",
		res.FirstBugExecution, res.Elapsed.Seconds(), res.FirstBug.Violation)

	fmt.Println("\nreplaying the recorded schedule:")
	replay := must(fairmc.Replay(prog.Body, res.FirstBug.Schedule, opts))
	fmt.Printf("replay outcome: %v (deterministic reproduction)\n", replay.Outcome)

	fmt.Println("\nrepro trace:")
	fmt.Print(replay.FormatTrace())

	fmt.Println("\nthe correct protocol passes the same search:")
	ok := must(fairmc.Check(progs.WorkStealingQueue(progs.WSQConfig{Items: 2, Stealers: 2}), opts))
	fmt.Printf("exhausted=%v findings=%v executions=%d\n", ok.Exhausted, !ok.Ok(), ok.Executions)
}

// must unwraps the facade's error return: the options in this example
// are statically valid, so an error is a programming bug here.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
