// Quickstart: write a small concurrent program against the conc API,
// check it, read the counterexample, fix the bug, and check again.
//
// The program is a bank account with a racy withdraw: two clients each
// check the balance and then withdraw, without holding a lock across
// the check-then-act. The checker finds the interleaving where both
// checks pass and the account goes negative.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"fairmc"
	"fairmc/conc"
)

// account builds the program; locked selects the fixed version.
func account(locked bool) func(*conc.T) {
	return func(t *conc.T) {
		balance := conc.NewIntVar(t, "balance", 100)
		mu := conc.NewMutex(t, "mu")
		wg := conc.NewWaitGroup(t, "wg", 2)
		withdraw := func(t *conc.T, amount int64) {
			if locked {
				mu.Lock(t)
				defer mu.Unlock(t)
			}
			if balance.Load(t) >= amount {
				b := balance.Load(t)
				balance.Store(t, b-amount)
			}
		}
		for i := 0; i < 2; i++ {
			t.Go("client", func(t *conc.T) {
				withdraw(t, 80)
				wg.Done(t)
			})
		}
		wg.Wait(t)
		t.Assert(balance.Load(t) >= 0, "balance must never go negative")
	}
}

func main() {
	fmt.Println("== checking the racy version ==")
	res := must(fairmc.Check(account(false), fairmc.Defaults()))
	if res.FirstBug == nil {
		fmt.Println("unexpected: no bug found")
		return
	}
	fmt.Printf("found a %s after %d executions:\n",
		res.FirstBug.Outcome, res.FirstBugExecution)
	fmt.Printf("  %s\n", res.FirstBug.Violation)
	fmt.Println("\ncounterexample, one column per thread (yields marked *):")
	fmt.Print(res.FirstBug.FormatColumns(16))

	fmt.Println("\n== checking the locked version ==")
	res = must(fairmc.Check(account(true), fairmc.Defaults()))
	switch {
	case !res.Ok():
		fmt.Println("unexpected: still buggy")
	case res.Exhausted:
		fmt.Printf("OK: all %d interleavings explored, no violations\n", res.Executions)
	default:
		fmt.Printf("no violation within budget (%d executions)\n", res.Executions)
	}
}

// must unwraps the facade's error return: the options in this example
// are statically valid, so an error is a programming bug here.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
