// Spinloop: the paper's Figure 3 program, and why stateless search
// needs a fair scheduler.
//
// Thread t sets x := 1; thread u spins (yielding) until it sees the
// store. The spin loop puts a cycle in the state space:
//
//	(a,c) --u--> (a,d) --u--> (a,c) ...
//
// Without fairness, a depth-bounded stateless search wastes its budget
// unrolling that cycle; with the fair scheduler, the second yield of u
// adds the priority edge (u,t) — the Figure 4 emulation — and the
// whole search exhausts in a handful of executions.
//
// Run with: go run ./examples/spinloop
package main

import (
	"fmt"

	"fairmc"
	"fairmc/progs"
)

func main() {
	prog, _ := progs.Lookup("spinloop")

	fmt.Println("== fair search (Algorithm 1) ==")
	fair := must(fairmc.Check(prog.Body, fairmc.Options{
		Fair:         true,
		ContextBound: -1,
		MaxSteps:     100000,
	}))
	fmt.Printf("exhausted=%v executions=%d maxdepth=%d findings=%v\n",
		fair.Exhausted, fair.Executions, fair.MaxDepth, !fair.Ok())

	fmt.Println("\n== unfair search, depth bound 30 (no random tail) ==")
	unfair := must(fairmc.Check(prog.Body, fairmc.Options{
		Fair:         false,
		ContextBound: -1,
		DepthBound:   30,
		MaxSteps:     31,
	}))
	fmt.Printf("exhausted=%v executions=%d nonterminating=%d\n",
		unfair.Exhausted, unfair.Executions, unfair.NonTerminating)
	fmt.Println("   (every nonterminating execution is a wasted unrolling of the spin cycle)")

	fmt.Println("\n== one fair execution under an adversarial schedule ==")
	r := fairmc.RunOnce(prog.Body, fairmc.Defaults())
	fmt.Printf("terminates in %d steps; trace:\n", r.Steps)
	for i, s := range r.Trace {
		y := ""
		if s.Yield {
			y = " [yield]"
		}
		fmt.Printf("  %2d: %s %s%s\n", i, s.Alt, s.Info, y)
	}
}

// must unwraps the facade's error return: the options in this example
// are statically valid, so an error is a programming bug here.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
