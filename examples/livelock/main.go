// Livelock: detect the fair nontermination in the paper's Figure 1
// dining-philosophers program.
//
// Each philosopher grabs one fork, TryAcquires the other, and on
// failure releases and retries. The retry cycle in which both
// philosophers acquire, fail, and release in lockstep is *fair* —
// every thread keeps being scheduled — so no fair scheduler can prune
// it: it is a genuine livelock. The checker detects it by generating
// an execution that exceeds the step bound and classifying its tail.
//
// Run with: go run ./examples/livelock
package main

import (
	"fmt"

	"fairmc"
	"fairmc/progs"
)

func main() {
	prog, _ := progs.Lookup("philosophers-try-2")
	fmt.Println("checking Figure 1 (2 dining philosophers with TryAcquire)...")
	res := must(fairmc.Check(prog.Body, fairmc.Options{
		Fair:         true,
		ContextBound: -1,
		MaxSteps:     500, // the "large bound" of §2, scaled to the model
	}))
	if res.Divergence == nil {
		fmt.Println("no livelock found (unexpected)")
		return
	}
	fmt.Printf("divergence found at execution %d: an execution exceeded %d steps\n",
		res.DivergenceExecution, res.Divergence.Steps)
	fmt.Printf("\nclassification:\n%s\n", res.Liveness)

	fmt.Println("tail of the diverging execution (the livelock cycle):")
	tr := res.Divergence.Trace
	for _, s := range tr[len(tr)-12:] {
		y := ""
		if s.Yield {
			y = " [yield]"
		}
		fmt.Printf("  %s %s%s\n", s.Alt, s.Info, y)
	}

	fmt.Println("\nfor contrast, the ordered-acquire variant is livelock-free:")
	ok := must(fairmc.Check(progs.Philosophers(2), fairmc.Options{
		Fair:         true,
		ContextBound: 2,
		MaxSteps:     100000,
	}))
	fmt.Printf("  exhausted=%v, findings=%v\n", ok.Exhausted, !ok.Ok())
}

// must unwraps the facade's error return: the options in this example
// are statically valid, so an error is a programming bug here.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
