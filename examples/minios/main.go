// Minios: the paper's flagship demonstration in miniature — "we have
// successfully booted the Singularity operating system under the
// control of CHESS".
//
// This example boots the minios kernel model (memory manager, name
// server, filesystem service, drivers, services, applications) under
// the fair checker three ways: one adversarially scheduled boot with
// per-thread statistics, a few hundred random-walk boots, and a
// bounded systematic search of a reduced configuration — all without
// modifying the "runs forever" service loops, which is the capability
// the fair scheduler added to CHESS.
//
// Run with: go run ./examples/minios
package main

import (
	"fmt"
	"time"

	"fairmc"
	"fairmc/internal/minios"
)

func main() {
	full := minios.Config{Drivers: 4, Services: 4, Apps: 3, RequestsPerApp: 2, Inodes: 4}

	fmt.Printf("== one boot/shutdown under the fair scheduler (%d threads) ==\n", full.Threads())
	r := fairmc.RunOnce(minios.Boot(full), fairmc.Defaults())
	fmt.Printf("outcome: %v in %d scheduling points\n", r.Outcome, r.Steps)
	fmt.Println("per-thread activity (steps / yields):")
	for _, s := range r.PerThread {
		fmt.Printf("  %-12s %5d / %d\n", s.Name, s.Steps, s.Yields)
	}

	fmt.Println("\n== 300 random-walk boots (seeded, reproducible) ==")
	walk := fairmc.Defaults()
	walk.RandomWalk = true
	walk.MaxExecutions = 300
	walk.Seed = 2026
	res := must(fairmc.Check(minios.Boot(full), walk))
	fmt.Printf("executions: %d, findings: %v, longest boot: %d steps\n",
		res.Executions, !res.Ok(), res.MaxDepth)

	fmt.Println("\n== bounded systematic search of the reduced config ==")
	small := minios.Config{Drivers: 1, Services: 1, Apps: 1, RequestsPerApp: 1, Inodes: 2}
	opts := fairmc.Defaults()
	opts.ContextBound = 1
	opts.TimeLimit = 60 * time.Second
	res = must(fairmc.Check(minios.Boot(small), opts))
	switch {
	case !res.Ok():
		fmt.Println("boot invariant broken (unexpected)")
	case res.Exhausted:
		fmt.Printf("exhausted: all %d single-preemption interleavings clean\n", res.Executions)
	default:
		fmt.Printf("clean after %d executions (budget hit)\n", res.Executions)
	}
}

// must unwraps the facade's error return: the options in this example
// are statically valid, so an error is a programming bug here.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
