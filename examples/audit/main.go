// Audit: combine iterative context bounding with the happens-before
// race detector to grade how broken a piece of code is.
//
// The subject is a statistics aggregator with two flaws of different
// severity: a benign-looking unsynchronized flag (a data race that
// happens to be harmless here) and a lost-update on the aggregate
// (an actual wrong answer, needing one preemption to show). The
// race detector flags both unsynchronized accesses on every run;
// iterative bounding reports the minimal preemption count that turns
// the second flaw into a failed assertion.
//
// Run with: go run ./examples/audit
package main

import (
	"fmt"

	"fairmc"
	"fairmc/conc"
)

func aggregator(t *conc.T) {
	total := conc.NewIntVar(t, "total", 0)
	started := conc.NewIntVar(t, "started", 0) // unsynchronized flag
	wg := conc.NewWaitGroup(t, "wg", 2)
	for i := 0; i < 2; i++ {
		sample := int64(10 * (i + 1))
		t.Go("sampler", func(t *conc.T) {
			started.Store(t, 1) // racy write, benign
			v := total.Load(t)  // lost-update race, not benign
			total.Store(t, v+sample)
			wg.Done(t)
		})
	}
	wg.Wait(t)
	t.Assert(total.Load(t) == 30, "all samples aggregated")
}

func main() {
	fmt.Println("== iterative context bounding ==")
	reports := must(fairmc.CheckIterative(aggregator, 4, fairmc.Defaults()))
	for _, br := range reports {
		verdict := "clean"
		if br.FirstBug != nil {
			verdict = "FOUND " + br.FirstBug.Outcome.String()
		}
		fmt.Printf("  cb=%d: %6d executions, %s\n", br.Bound, br.Executions, verdict)
	}
	last := reports[len(reports)-1]
	if last.FirstBug != nil {
		fmt.Printf("minimal counterexample needs %d preemption(s):\n", last.Bound)
		fmt.Printf("  %s\n", last.FirstBug.Violation)
	}

	fmt.Println("\n== happens-before race audit ==")
	res := must(fairmc.CheckRaces(aggregator, fairmc.Options{
		Fair:                   true,
		ContextBound:           1,
		MaxSteps:               10000,
		ContinueAfterViolation: true, // keep searching to collect races
	}))
	if len(res.Races) == 0 {
		fmt.Println("no races (unexpected)")
		return
	}
	for _, r := range res.Races {
		fmt.Printf("  %s\n", r)
	}
	fmt.Println("\nnote: the 'started' race never fails an assertion — only the")
	fmt.Println("race detector sees it; the 'total' race is also a wrong answer.")
}

// must unwraps the facade's error return: the options in this example
// are statically valid, so an error is a programming bug here.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
