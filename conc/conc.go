// Package conc is the concurrency API that model programs are written
// against. It plays the role of the Win32/.NET synchronization API
// that CHESS intercepts: every operation on these types is a
// scheduling point controlled by the checker, so a program written
// with conc has no uncontrolled nondeterminism and any execution can
// be replayed from its schedule.
//
// A model program is a function func(*conc.T) run as the main thread;
// it spawns further threads with T.Go and shares state exclusively
// through the objects created by the New* constructors. Plain Go
// variables may be used only for thread-local state.
//
// The fairness-relevant API is deliberately faithful to the paper:
// T.Yield and T.Sleep are yielding transitions (the good-samaritan
// signal), as is every *Timeout operation ("every synchronization
// operation with a finite timeout", §4). Blocking operations such as
// Mutex.Lock disable the thread instead of spinning, so they never
// trip the fair scheduler.
package conc

import (
	"fairmc/internal/engine"
	"fairmc/internal/syncmodel"
	"fairmc/internal/wm"
)

// T is the per-thread handle passed to every thread body. See
// engine.T for the core methods: ID, Name, Go, Yield, Sleep, Choose,
// Label, Assert, Failf.
type T = engine.T

// Handle refers to a spawned thread; Handle.Join blocks until it
// exits.
type Handle = engine.Handle

// Mutex is a non-reentrant lock with Lock / TryLock / LockTimeout /
// Unlock. TryLock is the paper's TryAcquire; LockTimeout additionally
// yields.
type Mutex = syncmodel.Mutex

// RWMutex is a reader/writer lock.
type RWMutex = syncmodel.RWMutex

// Semaphore is a counting semaphore.
type Semaphore = syncmodel.Semaphore

// Cond is a condition variable bound to a Mutex.
type Cond = syncmodel.Cond

// Event is a Win32-style (manual- or auto-reset) event.
type Event = syncmodel.Event

// WaitGroup counts outstanding work.
type WaitGroup = syncmodel.WaitGroup

// Channel is a bounded FIFO channel of int64 values (capacity zero
// gives rendezvous semantics).
type Channel = syncmodel.Channel

// IntVar is a shared integer with volatile load/store and interlocked
// read-modify-write operations.
type IntVar = syncmodel.IntVar

// IntArray is a fixed-size shared array of integers.
type IntArray = syncmodel.IntArray

// AnyVar is a shared variable holding an arbitrary (deterministically
// printable) value.
type AnyVar = syncmodel.AnyVar

// NewMutex creates a mutex named for diagnostics and fingerprints.
func NewMutex(t *T, name string) *Mutex { return syncmodel.NewMutex(t, name) }

// NewRWMutex creates a reader/writer lock.
func NewRWMutex(t *T, name string) *RWMutex { return syncmodel.NewRWMutex(t, name) }

// NewSemaphore creates a counting semaphore with an initial count and
// an optional maximum (0 = unbounded).
func NewSemaphore(t *T, name string, initial, max int64) *Semaphore {
	return syncmodel.NewSemaphore(t, name, initial, max)
}

// NewCond creates a condition variable bound to m.
func NewCond(t *T, name string, m *Mutex) *Cond { return syncmodel.NewCond(t, name, m) }

// NewEvent creates an event; manual selects manual-reset semantics.
func NewEvent(t *T, name string, manual, signaled bool) *Event {
	return syncmodel.NewEvent(t, name, manual, signaled)
}

// NewWaitGroup creates a wait group with an initial count.
func NewWaitGroup(t *T, name string, initial int64) *WaitGroup {
	return syncmodel.NewWaitGroup(t, name, initial)
}

// NewChannel creates a bounded channel (capacity >= 0).
func NewChannel(t *T, name string, capacity int) *Channel {
	return syncmodel.NewChannel(t, name, capacity)
}

// NewIntVar creates a shared integer variable.
func NewIntVar(t *T, name string, initial int64) *IntVar {
	return syncmodel.NewIntVar(t, name, initial)
}

// NewIntArray creates a zero-initialized shared integer array.
func NewIntArray(t *T, name string, n int) *IntArray {
	return syncmodel.NewIntArray(t, name, n)
}

// NewAnyVar creates a shared variable holding initial.
func NewAnyVar(t *T, name string, initial any) *AnyVar {
	return syncmodel.NewAnyVar(t, name, initial)
}

// Memory is a block of shared variables governed by the memory model
// the check runs under (-mm): sequentially consistent by default, or
// TSO with per-thread store buffers, store-to-load forwarding, and
// engine-scheduled flush steps (internal/wm). Unlike IntVar — which is
// always sequentially consistent, modeling an interlocked/volatile
// variable — a Memory models plain racy memory whose weak behaviors
// the search enumerates. Memory.Fence is the store-barrier; the other
// conc objects (Mutex, Channel, …) are checker primitives and are NOT
// memory fences: they do not drain store buffers.
type Memory = wm.Memory

// NewMemory creates a Memory of n int64 variables, all zero, governed
// by the configured memory model (Options.MemModel / -mm, with
// Options.TSOBufCap / -tso-buf bounding each thread's store buffer).
func NewMemory(t *T, name string, n int) *Memory {
	return wm.New(t, name, n)
}

// Once is a one-time initialization gate with blocking semantics.
type Once = syncmodel.Once

// Barrier is a reusable blocking rendezvous for a fixed party count.
type Barrier = syncmodel.Barrier

// NewOnce creates a one-time initialization gate.
func NewOnce(t *T, name string) *Once { return syncmodel.NewOnce(t, name) }

// NewBarrier creates a reusable barrier for parties threads.
func NewBarrier(t *T, name string, parties int64) *Barrier {
	return syncmodel.NewBarrier(t, name, parties)
}
