package fairmc_test

import (
	"errors"
	"strings"
	"testing"

	"fairmc"
	"fairmc/conc"
	"fairmc/progs"
)

func TestDefaults(t *testing.T) {
	opts := fairmc.Defaults()
	if !opts.Fair {
		t.Error("Defaults not fair")
	}
	if opts.ContextBound >= 0 {
		t.Error("Defaults bounds preemptions")
	}
	if opts.MaxSteps <= 0 {
		t.Error("Defaults has no divergence bound")
	}
}

func TestCheckCleanProgram(t *testing.T) {
	res := mustCheck(t, func(t *conc.T) {
		x := conc.NewIntVar(t, "x", 0)
		h := t.Go("w", func(t *conc.T) { x.Store(t, 1) })
		h.Join(t)
		t.Assert(x.Load(t) == 1, "join ordering")
	}, fairmc.Defaults())
	if !res.Ok() {
		t.Fatalf("clean program flagged: %+v", res.Report)
	}
	if !res.Exhausted {
		t.Fatalf("not exhausted: %+v", res.Report)
	}
	if res.Liveness != nil {
		t.Fatal("liveness report without divergence")
	}
}

func TestCheckFindsAssertion(t *testing.T) {
	res := mustCheck(t, func(t *conc.T) {
		x := conc.NewIntVar(t, "x", 0)
		t.Go("w", func(t *conc.T) { x.Store(t, 1) })
		t.Assert(x.Load(t) == 0, "racy read")
	}, fairmc.Defaults())
	if res.FirstBug == nil {
		t.Fatal("assertion violation not found")
	}
	if res.Ok() {
		t.Fatal("Ok() true despite bug")
	}
	if res.FirstBug.Outcome != fairmc.Violation {
		t.Fatalf("outcome = %v", res.FirstBug.Outcome)
	}
	// The recorded schedule replays to the same violation.
	replay := mustReplay(t, func(t *conc.T) {
		x := conc.NewIntVar(t, "x", 0)
		t.Go("w", func(t *conc.T) { x.Store(t, 1) })
		t.Assert(x.Load(t) == 0, "racy read")
	}, res.FirstBug.Schedule, fairmc.Defaults())
	if replay.Outcome != fairmc.Violation {
		t.Fatalf("replay outcome = %v", replay.Outcome)
	}
}

func TestCheckClassifiesLivelock(t *testing.T) {
	opts := fairmc.Defaults()
	opts.MaxSteps = 400
	res := mustCheck(t, progs.Promise(progs.PromiseConfig{
		Waiters: 1, Bug: progs.PromiseStaleRead,
	}), opts)
	if res.Divergence == nil || res.Liveness == nil {
		t.Fatalf("no divergence/liveness: %+v", res.Report)
	}
	if res.Liveness.Kind != fairmc.FairNontermination {
		t.Fatalf("kind = %v", res.Liveness.Kind)
	}
}

func TestRunOnceSmoke(t *testing.T) {
	r := fairmc.RunOnce(progs.SpinLoop, fairmc.Defaults())
	if r.Outcome != fairmc.Terminated {
		t.Fatalf("outcome = %v", r.Outcome)
	}
	if len(r.Trace) == 0 {
		t.Fatal("RunOnce did not record a trace")
	}
}

func TestChooseExploresAllValues(t *testing.T) {
	seen := map[int]bool{}
	res := mustCheck(t, func(t *conc.T) {
		seen[t.Choose(4)] = true
	}, fairmc.Defaults())
	if !res.Exhausted || len(seen) != 4 {
		t.Fatalf("explored %d values, exhausted=%v", len(seen), res.Exhausted)
	}
}

func TestCheckRacesFindsMissingLock(t *testing.T) {
	res := mustRaces(t, func(t *conc.T) {
		x := conc.NewIntVar(t, "x", 0)
		wg := conc.NewWaitGroup(t, "wg", 2)
		for i := 0; i < 2; i++ {
			v := int64(i)
			t.Go("w", func(t *conc.T) {
				x.Store(t, v)
				wg.Done(t)
			})
		}
		wg.Wait(t)
	}, fairmc.Defaults())
	if len(res.Races) == 0 {
		t.Fatal("no races reported")
	}
	if res.Ok() {
		t.Fatal("Ok() true despite races")
	}
}

func TestCheckRacesCleanOnLockedProgram(t *testing.T) {
	res := mustRaces(t, func(t *conc.T) {
		x := conc.NewIntVar(t, "x", 0)
		m := conc.NewMutex(t, "m")
		wg := conc.NewWaitGroup(t, "wg", 2)
		for i := 0; i < 2; i++ {
			t.Go("w", func(t *conc.T) {
				m.Lock(t)
				x.Add(t, 1)
				m.Unlock(t)
				wg.Done(t)
			})
		}
		wg.Wait(t)
	}, fairmc.Defaults())
	if !res.Ok() {
		t.Fatalf("locked program flagged: races=%v", res.Races)
	}
}

func TestCheckIterativeFindsMinimalBound(t *testing.T) {
	// The lost-update race needs exactly one preemption: the cb=0
	// iteration is clean and cb=1 finds it.
	racy := func(t *conc.T) {
		x := conc.NewIntVar(t, "x", 0)
		wg := conc.NewWaitGroup(t, "wg", 2)
		for i := 0; i < 2; i++ {
			t.Go("inc", func(t *conc.T) {
				v := x.Load(t)
				x.Store(t, v+1)
				wg.Done(t)
			})
		}
		wg.Wait(t)
		t.Assert(x.Load(t) == 2, "lost update")
	}
	reports := mustIterative(t, racy, 5, fairmc.Defaults())
	if len(reports) != 2 {
		t.Fatalf("iterations = %d, want 2 (stop at first finding)", len(reports))
	}
	if reports[0].Bound != 0 || reports[0].FirstBug != nil {
		t.Fatalf("cb=0 iteration wrong: %+v", reports[0])
	}
	if reports[1].Bound != 1 || reports[1].FirstBug == nil {
		t.Fatalf("cb=1 iteration wrong: %+v", reports[1])
	}
}

func TestCheckProperty(t *testing.T) {
	// Token ring: GF(turn=0) and GF(turn=1) hold on the livelock tail;
	// FG(turn=0) does not.
	var turn *conc.IntVar
	ring := func(t *conc.T) {
		turn = conc.NewIntVar(t, "turn", 0)
		for i := 0; i < 2; i++ {
			me := int64(i)
			t.Go("p", func(t *conc.T) {
				for {
					t.Label(1)
					if turn.Load(t) == me {
						turn.Store(t, 1-me)
					}
					t.Yield()
				}
			})
		}
	}
	opts := fairmc.Defaults()
	opts.MaxSteps = 400
	res := mustProperty(t, ring, func() fairmc.Property {
		return fairmc.Property{
			InfinitelyOften: []fairmc.Pred{
				{Name: "turn=0", Eval: func(*fairmc.Engine) bool { return turn.Peek() == 0 }},
				{Name: "turn=1", Eval: func(*fairmc.Engine) bool { return turn.Peek() == 1 }},
			},
			EventuallyAlways: []fairmc.Pred{
				{Name: "turn=0", Eval: func(*fairmc.Engine) bool { return turn.Peek() == 0 }},
			},
		}
	}, 64, opts)
	if res.Divergence == nil || res.Property == nil {
		t.Fatalf("no divergence/property report: %+v", res.Report)
	}
	if len(res.Property.Violations) != 1 {
		t.Fatalf("violations = %v, want just the FG conjunct", res.Property.Violations)
	}
	if res.Property.Violations[0].Temporal != "FG" {
		t.Fatalf("violation = %v", res.Property.Violations[0])
	}
}

func TestCheckPropertyNoDivergence(t *testing.T) {
	res := mustProperty(t, func(t *conc.T) { t.Yield() }, func() fairmc.Property {
		return fairmc.Property{}
	}, 0, fairmc.Defaults())
	if res.Property != nil {
		t.Fatal("property report without divergence")
	}
	if !res.Ok() {
		t.Fatalf("clean program flagged: %+v", res.Report)
	}
}

// The must* helpers unwrap the facade's error return; every option set
// in these tests is statically valid, so an error is a test bug.
func mustCheck(t *testing.T, prog func(*conc.T), opts fairmc.Options) *fairmc.Result {
	t.Helper()
	res, err := fairmc.Check(prog, opts)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return res
}

func mustRaces(t *testing.T, prog func(*conc.T), opts fairmc.Options) *fairmc.Result {
	t.Helper()
	res, err := fairmc.CheckRaces(prog, opts)
	if err != nil {
		t.Fatalf("CheckRaces: %v", err)
	}
	return res
}

func mustReplay(t *testing.T, prog func(*conc.T), sched []fairmc.Alt, opts fairmc.Options) *fairmc.ExecResult {
	t.Helper()
	r, err := fairmc.Replay(prog, sched, opts)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return r
}

func mustIterative(t *testing.T, prog func(*conc.T), maxBound int, opts fairmc.Options) []fairmc.BoundReport {
	t.Helper()
	reports, err := fairmc.CheckIterative(prog, maxBound, opts)
	if err != nil {
		t.Fatalf("CheckIterative: %v", err)
	}
	return reports
}

func mustProperty(t *testing.T, prog func(*conc.T), build func() fairmc.Property, window int, opts fairmc.Options) *fairmc.PropertyResult {
	t.Helper()
	res, err := fairmc.CheckProperty(prog, build, window, opts)
	if err != nil {
		t.Fatalf("CheckProperty: %v", err)
	}
	return res
}

// TestReplayBadSchedule: replaying a schedule that does not belong to
// the program returns a structured error instead of panicking, for
// both a diverging and a truncated schedule.
func TestReplayBadSchedule(t *testing.T) {
	prog := func(t *conc.T) {
		h := t.Go("w", func(t *conc.T) { t.Yield() })
		h.Join(t)
		t.Assert(false, "always fails")
	}
	res := mustCheck(t, prog, fairmc.Defaults())
	if res.FirstBug == nil {
		t.Fatal("no bug found")
	}
	sched := res.FirstBug.Schedule

	// A schedule step naming a thread that cannot be scheduled.
	_, err := fairmc.Replay(prog, []fairmc.Alt{{Tid: 42, Arg: -1}}, fairmc.Defaults())
	var re *fairmc.ReplayError
	if !errors.As(err, &re) {
		t.Fatalf("diverging replay error = %v, want a *ReplayError", err)
	}
	if re.Step != 0 {
		t.Fatalf("divergence step = %d, want 0", re.Step)
	}

	// A truncated prefix of a real schedule applies cleanly but ends
	// before the recorded outcome.
	r, err := fairmc.Replay(prog, sched[:len(sched)-1], fairmc.Defaults())
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated replay error = %v, want truncation diagnostic", err)
	}
	if r == nil || r.Outcome != fairmc.Aborted {
		t.Fatalf("truncated replay result = %+v, want the partial Aborted result", r)
	}

	// The full schedule still replays cleanly.
	rr := mustReplay(t, prog, sched, fairmc.Defaults())
	if rr.Outcome != fairmc.Violation {
		t.Fatalf("full replay outcome = %v, want Violation", rr.Outcome)
	}
}

// TestCheckInvalidOptions: the facade surfaces option misuse as an
// error, not a panic.
func TestCheckInvalidOptions(t *testing.T) {
	bad := fairmc.Defaults()
	bad.RandomWalk = true // no budget: never exhausts
	if _, err := fairmc.Check(func(t *conc.T) {}, bad); err == nil {
		t.Fatal("invalid options accepted")
	}
	bad = fairmc.Defaults()
	bad.StatefulPrune = true // unsound with Fair
	if _, err := fairmc.CheckRaces(func(t *conc.T) {}, bad); err == nil {
		t.Fatal("invalid options accepted by CheckRaces")
	}
	if _, err := fairmc.CheckIterative(func(t *conc.T) {}, 1, bad); err == nil {
		t.Fatal("invalid options accepted by CheckIterative")
	}
}
