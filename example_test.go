package fairmc_test

import (
	"fmt"

	"fairmc"
	"fairmc/conc"
)

// ExampleCheck verifies a correct concurrent handoff exhaustively and
// then catches the bug introduced by removing the synchronization.
func ExampleCheck() {
	handoff := func(sync bool) func(*conc.T) {
		return func(t *conc.T) {
			data := conc.NewIntVar(t, "data", 0)
			ready := conc.NewEvent(t, "ready", true, false)
			t.Go("producer", func(t *conc.T) {
				data.Store(t, 42)
				ready.Set(t)
			})
			if sync {
				ready.Wait(t)
			}
			t.Assert(data.Load(t) == 42, "consumer saw the payload")
		}
	}

	good, _ := fairmc.Check(handoff(true), fairmc.Defaults())
	fmt.Println("with event:", good.Exhausted && good.Ok())

	bad, _ := fairmc.Check(handoff(false), fairmc.Defaults())
	fmt.Println("without event:", bad.FirstBug != nil)
	// Output:
	// with event: true
	// without event: true
}

// ExampleCheck_livelock shows livelock detection: two threads forever
// deferring to each other, each politely yielding, make a fair
// nonterminating execution that only a fair scheduler can expose.
func ExampleCheck_livelock() {
	overPolite := func(t *conc.T) {
		turn := conc.NewIntVar(t, "turn", 0)
		for i := 0; i < 2; i++ {
			me := int64(i)
			t.Go("guest", func(t *conc.T) {
				for {
					t.Label(1)
					if turn.Load(t) == me {
						turn.Store(t, 1-me) // after you!
					}
					t.Yield()
				}
			})
		}
	}
	opts := fairmc.Defaults()
	opts.MaxSteps = 300 // the divergence bound
	res, _ := fairmc.Check(overPolite, opts)
	fmt.Println("diverged:", res.Divergence != nil)
	fmt.Println("classified:", res.Liveness.Kind)
	// Output:
	// diverged: true
	// classified: fair nontermination (livelock)
}

// ExampleReplay reproduces a finding from its recorded schedule.
func ExampleReplay() {
	racy := func(t *conc.T) {
		x := conc.NewIntVar(t, "x", 0)
		t.Go("w", func(t *conc.T) { x.Store(t, 1) })
		t.Assert(x.Load(t) == 0, "expected to run before the writer")
	}
	res, _ := fairmc.Check(racy, fairmc.Defaults())
	replayed, _ := fairmc.Replay(racy, res.FirstBug.Schedule, fairmc.Defaults())
	fmt.Println("reproduced:", replayed.Outcome == res.FirstBug.Outcome)
	// Output:
	// reproduced: true
}
