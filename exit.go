package fairmc

import "fairmc/internal/liveness"

// Exit status codes shared by the CLI, the distributed coordinator,
// and workers; ExitStatusHelp is the canonical human-readable
// definition (printed by fairmc -h and quoted in the README). Classify
// a finished check with Result.ExitStatus instead of re-deriving these
// from report fields.
const (
	// ExitOK: no findings (including searches that only quarantined
	// nondeterministic subtrees, which are reported as warnings).
	ExitOK = 0
	// ExitFinding: a safety violation, deadlock, divergence, wedged
	// thread, or race was found (and, when the confirmation pass ran,
	// at least one finding was confirmed reproducible).
	ExitFinding = 1
	// ExitUsage: usage error (bad flags, unknown program, invalid
	// option combination, protocol/config mismatch).
	ExitUsage = 2
	// ExitInterrupted: stopped by SIGINT/SIGTERM before completion;
	// resumable when a checkpoint or coordinator state file was
	// written.
	ExitInterrupted = 3
	// ExitFlaky: findings exist but every one failed its confirmation
	// replays — likely program nondeterminism, not a trustworthy
	// counterexample.
	ExitFlaky = 4
)

// ExitStatusHelp is the canonical definition of the exit codes,
// printed by the CLI's -h and referenced by the README. Keep the
// wording here; everything else points at it.
const ExitStatusHelp = `exit status:
  0  no findings (including searches that only quarantined
     nondeterministic subtrees, which are reported as warnings)
  1  a safety violation, deadlock, divergence, wedged thread, or race
     was found (and, when -confirm > 0, at least one finding was
     confirmed reproducible)
  2  usage error (bad flags, unknown program, invalid option combination)
  3  interrupted by SIGINT/SIGTERM (a final checkpoint is written first
     when -checkpoint is set; resume with -resume)
  4  findings exist but every one failed its confirmation replays
     (flaky — likely program nondeterminism, not a trustworthy
     counterexample)`

// ExitStatus classifies the check outcome into the shared exit codes:
// the first finding in the CLI's reporting order decides, a finding
// whose confirmation pass failed every replay downgrades to ExitFlaky,
// and an interrupted search without findings is ExitInterrupted.
func (r *Result) ExitStatus() int {
	confirmed := func(v *Reproducibility) int {
		if v == nil || v.Stable() {
			return ExitFinding
		}
		return ExitFlaky
	}
	switch {
	case r.FirstBug != nil:
		return confirmed(r.BugReproducibility)
	case r.Divergence != nil:
		return confirmed(r.DivergenceReproducibility)
	case r.FirstWedge != nil:
		return ExitFinding
	case len(r.Races) > 0:
		return ExitFinding
	case r.Interrupted:
		return ExitInterrupted
	default:
		return ExitOK
	}
}

// ResultFromReport wraps an already-merged search report as a Result,
// running the same divergence classification Check performs. The
// distributed coordinator uses it to turn its merged report into the
// Result the CLI's reporting path (and ExitStatus) consumes.
func ResultFromReport(rep *Report) *Result {
	res := &Result{Report: rep}
	if rep.Divergence != nil {
		res.Liveness = liveness.Classify(rep.Divergence, liveness.Options{})
	}
	return res
}
