// Package fairmc is a fair stateless model checker for multithreaded
// model programs, reproducing Musuvathi & Qadeer, "Fair Stateless
// Model Checking" (PLDI 2008) — the fairness algorithm of the CHESS
// model checker.
//
// A stateless model checker runs a concurrent test over and over,
// steering the thread schedule so that every run takes a different
// interleaving, without ever capturing program states. Plain stateless
// search cannot handle nonterminating programs: unrolling the cycles
// in the state space swamps the search, and livelocks are invisible.
// fairmc explores instead with a *fair demonic scheduler* (Algorithm 1
// of the paper): threads that yield while others are starved lose
// priority, so unfair cycles are pruned after at most two unrollings,
// while every yield-free execution — and therefore every state
// reachable without yields — is still explored.
//
// # Writing a model program
//
// Programs are written against the conc package:
//
//	func prog(t *conc.T) {
//		x := conc.NewIntVar(t, "x", 0)
//		h := t.Go("worker", func(t *conc.T) { x.Store(t, 1) })
//		for x.Load(t) != 1 { // spin…
//			t.Yield() // …but be a good samaritan
//		}
//		h.Join(t)
//	}
//
// # Checking
//
//	res, err := fairmc.Check(prog, fairmc.Defaults())
//	switch {
//	case res.FirstBug != nil:        // safety violation or deadlock
//	case res.Liveness != nil:        // livelock or GS violation
//	}
//
// The four outcomes of the paper's semi-algorithm map to the result
// as: (1) safety violation -> FirstBug; (2) good-samaritan violation
// and (3) fair nontermination -> Divergence plus the Liveness
// classification; (4) clean termination -> Exhausted with no findings.
package fairmc

import (
	"fmt"
	"io"

	"fairmc/conc"
	"fairmc/internal/core"
	"fairmc/internal/engine"
	"fairmc/internal/liveness"
	"fairmc/internal/obs"
	"fairmc/internal/race"
	"fairmc/internal/search"
)

// Options configures a check; see the field documentation in
// internal/search. Use Defaults as a starting point.
type Options = search.Options

// Report is the summary statistics of a search.
type Report = search.Report

// ExecResult is the result of one execution, including its schedule
// and (for repro runs) a full trace.
type ExecResult = engine.Result

// Alt is one scheduling decision; a schedule ([]Alt) identifies an
// execution and is the unit of replay.
type Alt = engine.Alt

// ReplayError is the structured diagnostic Replay returns when a
// schedule diverges from the program (corrupted, truncated, or
// recorded elsewhere); match it with errors.As.
type ReplayError = engine.ReplayError

// DivergenceError is the structured diagnostic of a conformance
// failure during replay: the program stopped being a deterministic
// function of the schedule (wall-clock reads, unseeded randomness,
// goroutines outside the conc API…). It pinpoints the first divergent
// step with the expected and observed operations; match it with
// errors.As.
type DivergenceError = engine.DivergenceError

// StepDigest is the per-step conformance summary recorded by replays
// and verified by strict re-replays (see DivergenceError).
type StepDigest = engine.StepDigest

// NondeterminismReport describes one subtree the search quarantined
// after its schedule prefix persistently stopped conforming; see
// Report.Quarantined and Report.Nondeterminism.
type NondeterminismReport = search.NondeterminismReport

// Reproducibility is the confirmation verdict attached to a finding
// when Options.ConfirmRuns > 0: stable (every confirmation replay
// reproduced it) or flaky (k of n).
type Reproducibility = search.Reproducibility

// LivenessReport classifies a divergence as a good-samaritan
// violation or a fair nontermination (livelock).
type LivenessReport = liveness.Report

// Outcome values of an individual execution.
const (
	Terminated = engine.Terminated
	Deadlock   = engine.Deadlock
	Violation  = engine.Violation
	Diverged   = engine.Diverged
	Aborted    = engine.Aborted
	Wedged     = engine.Wedged
)

// Checkpoint is a resumable snapshot of search progress; see
// Options.CheckpointPath / Options.Resume.
type Checkpoint = search.Checkpoint

// WorkerFailure is one recovered parallel-worker crash, reported in
// Report.WorkerFailures.
type WorkerFailure = search.WorkerFailure

// LoadCheckpoint reads a checkpoint written via Options.CheckpointPath
// for use as Options.Resume.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	return search.LoadCheckpoint(path)
}

// Kind values of a liveness classification.
const (
	GoodSamaritanViolation = liveness.GoodSamaritanViolation
	FairNontermination     = liveness.FairNontermination
)

// Defaults returns the recommended options: fair scheduling, full DFS
// (no preemption bound), a generous per-execution step bound that
// serves as the divergence detector, and a 3-run confirmation pass so
// every reported finding carries a Reproducibility verdict.
func Defaults() Options {
	return Options{
		Fair:         true,
		ContextBound: -1,
		MaxSteps:     100000,
		ConfirmRuns:  3,
	}
}

// Race is one unsynchronized access pair found by the happens-before
// detector.
type Race = race.Race

// Metrics is the live telemetry registry of the observability layer
// (internal/obs): attach one via Options.Metrics and read Snapshot from
// any goroutine while the check runs. Metrics count work actually
// performed — including divergence retries and parallel work the
// merged report discards — so they are not deterministic across
// Parallelism; use Result.RunReport for deterministic output.
type Metrics = obs.Metrics

// MetricsSnapshot is a point-in-time copy of a Metrics registry.
type MetricsSnapshot = obs.Snapshot

// NewMetrics returns an empty metrics registry for Options.Metrics.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// EventRecorder is the bounded, non-blocking structured event sink of
// the observability layer: attach one via Options.EventSink and it
// serializes schedule points, yield-window closures, findings, and
// checkpoint/quarantine lifecycle events as JSONL. Call Close when the
// check returns to flush the stream.
type EventRecorder = obs.Recorder

// Event is one structured trace record of the event stream; see
// docs/OBSERVABILITY.md for the per-type schema.
type Event = obs.Event

// NewEventRecorder starts an event recorder draining into w with the
// given queue capacity (values < 1 use a default of 4096). Emission
// never blocks: when the queue is full, events are dropped and counted
// (EventRecorder.Dropped), so a slow writer can never stall the
// scheduler.
func NewEventRecorder(w io.Writer, buffer int) *EventRecorder {
	return obs.NewRecorder(w, buffer)
}

// RunReport is the deterministic machine-readable summary of a check;
// see Result.RunReport.
type RunReport = obs.RunReport

// Result is the outcome of a Check: the search report plus, when a
// divergence was found, its liveness classification.
type Result struct {
	*Report
	// Liveness is non-nil when the search found a diverging fair
	// execution; it says whether the divergence is a good-samaritan
	// violation or a livelock.
	Liveness *LivenessReport
	// Races holds the unsynchronized access pairs found when the
	// check ran with CheckRaces.
	Races []Race
}

// Ok reports that the check finished without findings: no safety
// violation, no deadlock, no divergence, no race.
func (r *Result) Ok() bool {
	return r.FirstBug == nil && r.Divergence == nil && len(r.Races) == 0
}

// RunReport assembles the deterministic machine-readable summary of
// the check: for a fixed program, options, and seed, the Encode bytes
// are identical at any Options.Parallelism and across a
// checkpoint/resume cycle, because every field derives from the merged
// search report (wall-clock time, worker counts, and stack traces are
// deliberately excluded). program names the program under test; opts
// must be the options the check ran with.
func (r *Result) RunReport(program string, opts Options) *RunReport {
	fairK := opts.FairK
	if fairK <= 0 {
		fairK = 1
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = engine.DefaultMaxSteps
	}
	mm, _ := core.ParseMemModel(opts.MemModel) // validated by Check
	bufCap := 0
	if mm == core.MemTSO {
		bufCap = opts.TSOBufCap
	}
	rep := r.Report
	out := &RunReport{
		Schema:   obs.ReportSchema,
		Program:  program,
		Strategy: search.StrategyName(&opts),
		Seed:     opts.Seed,
		Options: obs.RunOptions{
			Fair:         opts.Fair,
			FairK:        fairK,
			ContextBound: opts.ContextBound,
			DepthBound:   opts.DepthBound,
			RandomTail:   opts.RandomTail,
			PCTDepth:     opts.PCTDepth,
			MaxSteps:     maxSteps,
			Conformance:  !opts.DisableConformance,
			MemModel:     mm.String(),
			TSOBufCap:    bufCap,
		},
		Counters: obs.RunCounters{
			Executions:     rep.Executions,
			TotalSteps:     rep.TotalSteps,
			MaxDepth:       rep.MaxDepth,
			Yields:         rep.Yields,
			EdgeAdds:       rep.EdgeAdds,
			EdgeErases:     rep.EdgeErases,
			FairBlocked:    rep.FairBlocked,
			NonTerminating: rep.NonTerminating,
			PrunedVisited:  rep.PrunedVisited,
			PrunedSleep:    rep.PrunedSleep,
			Deadlocks:      rep.Deadlocks,
			Violations:     rep.Violations,
			Wedges:         rep.Wedges,
			Quarantined:    rep.Quarantined,
			Skipped:        rep.Skipped,
			Races:          int64(len(r.Races)),
			BufferedStores: rep.BufferedStores,
			Flushes:        rep.Flushes,
			Fences:         rep.Fences,
			Forwards:       rep.Forwards,
		},
		Outcome: obs.RunOutcome{
			Exhausted:   rep.Exhausted,
			ExecBounded: rep.ExecBounded,
			TimedOut:    rep.TimedOut,
			Interrupted: rep.Interrupted,
		},
		Findings: []obs.RunFinding{},
	}
	if rep.FirstBug != nil {
		kind := "violation"
		if rep.FirstBug.Outcome == engine.Deadlock {
			kind = "deadlock"
		}
		out.Findings = append(out.Findings,
			runFinding(kind, rep.FirstBug, rep.FirstBugExecution, rep.BugReproducibility))
	}
	if rep.Divergence != nil {
		out.Findings = append(out.Findings,
			runFinding("livelock", rep.Divergence, rep.DivergenceExecution, rep.DivergenceReproducibility))
	}
	if rep.FirstWedge != nil {
		out.Findings = append(out.Findings,
			runFinding("wedge", rep.FirstWedge, rep.FirstWedgeExecution, nil))
	}
	// Execution order, which is deterministic; the assembly order above
	// is not (a wedge can precede a bug).
	for i := 1; i < len(out.Findings); i++ {
		for j := i; j > 0 && out.Findings[j].Execution < out.Findings[j-1].Execution; j-- {
			out.Findings[j], out.Findings[j-1] = out.Findings[j-1], out.Findings[j]
		}
	}
	return out
}

// runFinding builds one report finding from a finding result. The
// message is stack-free: goroutine stacks vary run to run and would
// break report determinism.
func runFinding(kind string, fr *ExecResult, exec int64, repro *Reproducibility) obs.RunFinding {
	f := obs.RunFinding{
		Kind:        kind,
		Execution:   exec,
		Steps:       fr.Steps,
		ScheduleLen: len(fr.Schedule),
	}
	switch {
	case fr.Violation != nil && !fr.Violation.IsPanic:
		f.Message = fr.Violation.String()
	case fr.Violation != nil:
		f.Message = "thread panic"
	case fr.Wedge != nil:
		f.Message = fr.Wedge.String()
	case kind == "livelock":
		f.Message = "execution exceeded the step bound under the fair scheduler"
	case kind == "deadlock":
		f.Message = "no thread enabled with live threads remaining"
	}
	if repro != nil {
		f.Reproducibility = repro.String()
	}
	return f
}

// Check explores prog under opts and classifies any divergence. An
// invalid option combination is reported as an error instead of a
// panic.
func Check(prog func(*conc.T), opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	rep := search.Explore(prog, opts)
	res := &Result{Report: rep}
	if rep.Divergence != nil {
		res.Liveness = liveness.Classify(rep.Divergence, liveness.Options{})
	}
	return res, nil
}

// CheckRaces is Check with the happens-before race detector attached:
// accesses to shared variables that are unordered by synchronization
// are reported even on executions where nothing misbehaves. Composes
// with any monitor already set in opts. The detector is a monitor, so
// CheckRaces requires Parallelism <= 1.
func CheckRaces(prog func(*conc.T), opts Options) (*Result, error) {
	d := race.NewDetector()
	if opts.Monitor != nil {
		opts.Monitor = engine.MultiMonitor{opts.Monitor, d}
	} else {
		opts.Monitor = d
	}
	res, err := Check(prog, opts)
	if err != nil {
		return nil, err
	}
	res.Races = d.Races()
	return res, nil
}

// BoundReport is one step of an iterative context-bounded search.
type BoundReport struct {
	// Bound is the preemption budget of this iteration.
	Bound int
	// Report is the search report at this bound.
	*Report
}

// CheckIterative runs iterative context bounding (Musuvathi & Qadeer,
// PLDI 2007): the search is repeated with preemption budgets
// 0, 1, …, maxBound, so bugs are found with the *smallest* number of
// preemptions that exposes them — the most debuggable counterexample.
// Iteration stops at the first budget that finds something.
func CheckIterative(prog func(*conc.T), maxBound int, opts Options) ([]BoundReport, error) {
	var out []BoundReport
	for b := 0; b <= maxBound; b++ {
		opts.ContextBound = b
		if err := opts.Validate(); err != nil {
			return nil, err
		}
		rep := search.Explore(prog, opts)
		out = append(out, BoundReport{Bound: b, Report: rep})
		if rep.FirstBug != nil || rep.Divergence != nil {
			break
		}
	}
	return out, nil
}

// Replay re-executes prog along a previously recorded schedule with
// full trace recording, reproducing a bug found by Check. A schedule
// that diverges from the program (corrupted, truncated, recorded
// against a different program or configuration — or a program that is
// nondeterministic under its own schedule) is reported as an error
// (*ReplayError or, with digests, *DivergenceError, both pinpointing
// the first divergent step); the partial result is returned alongside
// it for diagnosis. ReplayVerified additionally checks per-step
// conformance digests.
func Replay(prog func(*conc.T), schedule []engine.Alt, opts Options) (*ExecResult, error) {
	return ReplayVerified(prog, schedule, nil, opts)
}

// ReplayVerified is Replay with per-step conformance verification:
// digests recorded alongside the schedule (ExecResult.Digests of a
// finding) are compared at every step, so nondeterminism that keeps
// the scheduled thread runnable — but changes what it is about to do —
// is still detected and pinpointed.
func ReplayVerified(prog func(*conc.T), schedule []engine.Alt, digests []StepDigest, opts Options) (*ExecResult, error) {
	mm, err := core.ParseMemModel(opts.MemModel)
	if err != nil {
		return nil, err
	}
	ch := &engine.ReplayChooser{Schedule: schedule, Digests: digests, Strict: true}
	r := engine.Run(prog, ch, engine.Config{
		Fair:          opts.Fair,
		FairK:         opts.FairK,
		MaxSteps:      opts.MaxSteps,
		MemModel:      mm,
		TSOBufCap:     opts.TSOBufCap,
		RecordTrace:   true,
		RecordDigests: true,
		NoFastPath:    opts.NoFastPath,
	})
	// A not-schedulable step sets both diagnostics; keep returning the
	// legacy *ReplayError for that case so existing errors.As callers
	// still match. Digest mismatches only set Div.
	if ch.Err != nil {
		return r, ch.Err
	}
	if ch.Div != nil {
		return r, ch.Div
	}
	if r.Outcome == engine.Aborted && r.Steps == int64(len(schedule)) {
		return r, fmt.Errorf("fairmc: replay consumed all %d schedule steps without reaching the recorded outcome (truncated schedule?)", len(schedule))
	}
	return r, nil
}

// RunOnce executes prog once under the fair scheduler with a
// run-to-completion policy — the quickest way to smoke-test a model
// program before a full check.
func RunOnce(prog func(*conc.T), opts Options) *ExecResult {
	mm, err := core.ParseMemModel(opts.MemModel)
	if err != nil {
		panic(err) // Check surfaces this as an error; RunOnce has no error path
	}
	return engine.Run(prog, engine.RunToCompletionChooser{}, engine.Config{
		Fair:        opts.Fair,
		FairK:       opts.FairK,
		MaxSteps:    opts.MaxSteps,
		MemModel:    mm,
		TSOBufCap:   opts.TSOBufCap,
		RecordTrace: true,
		NoFastPath:  opts.NoFastPath,
	})
}

// Engine is the running execution a Pred's Eval observes (rarely
// needed directly: predicates usually close over model objects and
// read them with Peek).
type Engine = engine.Engine

// Pred is a named predicate over the model state, sampled after every
// transition; use object Peek accessors inside Eval.
type Pred = liveness.Pred

// Property is a conjunction of GF ("infinitely often") and FG
// ("eventually always") predicates — the liveness fragment of the
// paper's §6 future-work item.
type Property = liveness.Property

// PropertyReport is the verdict of a property check on a diverging
// execution's tail.
type PropertyReport = liveness.PropertyReport

// PropertyResult couples a Check result with the property verdict.
type PropertyResult struct {
	*Result
	// Property is the verdict for the diverging execution, or nil if
	// no divergence was found (liveness verdicts only apply to
	// diverging executions).
	Property *PropertyReport
}

// lazyPropertyMonitor defers monitor construction to the first step of
// each execution, when the program has created the objects the
// predicates reference, and rebuilds it per execution.
type lazyPropertyMonitor struct {
	build  func() Property
	window int
	inner  *liveness.PropertyMonitor
}

func (l *lazyPropertyMonitor) AfterInit(e *engine.Engine) { l.inner = nil }
func (l *lazyPropertyMonitor) AfterStep(e *engine.Engine) {
	if l.inner == nil {
		l.inner = liveness.NewPropertyMonitor(l.build(), l.window)
		l.inner.AfterInit(e)
	}
	l.inner.AfterStep(e)
}

// CheckProperty explores prog and evaluates the liveness property on
// the first diverging execution's tail. Because model objects are
// created inside the program, build runs once per execution, after the
// program's first transition; have prog publish object references
// (e.g. into captured pointers) that build closes over. window is the
// number of tail samples evaluated (0 = 256).
func CheckProperty(prog func(*conc.T), build func() Property, window int, opts Options) (*PropertyResult, error) {
	mon := &lazyPropertyMonitor{build: build, window: window}
	if opts.Monitor != nil {
		opts.Monitor = engine.MultiMonitor{opts.Monitor, mon}
	} else {
		opts.Monitor = mon
	}
	res, err := Check(prog, opts)
	if err != nil {
		return nil, err
	}
	out := &PropertyResult{Result: res}
	if res.Divergence != nil && mon.inner != nil {
		out.Property = mon.inner.Report(res.Divergence)
	}
	return out, nil
}
