module fairmc

go 1.22
