package fairmc_test

import (
	"bytes"
	"path/filepath"
	"sync/atomic"
	"testing"

	"fairmc"
	"fairmc/conc"
	"fairmc/progs"
)

// The determinism suite pins the fast path's core contract: batching,
// memoization, and pooling are pure speed — the deterministic run
// report is byte-for-byte identical with the fast path on or off, at
// any parallelism, and across a checkpoint/resume cycle. Fixtures
// cover the three scheduler regimes: an exhaustive fair DFS
// (spinloop), a quarantining search over a program that is not a
// deterministic function of its schedule (nondet-counter), and a DPOR
// reduction (where the memoized candidate sets feed sleep-set and
// backtrack bookkeeping).

func checkReport(t *testing.T, prog func(*conc.T), program string, opts fairmc.Options) ([]byte, *fairmc.Result) {
	t.Helper()
	res, err := fairmc.Check(prog, opts)
	if err != nil {
		t.Fatalf("%s: %v", program, err)
	}
	return encodeReport(t, res, program, opts), res
}

// nondetRacySeq lives outside the conc API on purpose (like
// progs.NondetCounter's counter): it survives across executions, so
// the value each run stores differs and any replay of a recorded
// prefix containing the store diverges from its digests.
var nondetRacySeq int64

// nondetRacy has a genuine store-store race — so DPOR spawns child
// units that must replay a prefix — over a value that changes every
// run, so those replays quarantine. It terminates without fair
// scheduling (WaitGroup blocks instead of spinning), as DPOR requires.
func nondetRacy(t *conc.T) {
	x := conc.NewIntVar(t, "x", 0)
	n := atomic.AddInt64(&nondetRacySeq, 1)
	wg := conc.NewWaitGroup(t, "wg", 2)
	t.Go("a", func(t *conc.T) {
		x.Store(t, n)
		wg.Done(t)
	})
	t.Go("b", func(t *conc.T) {
		x.Store(t, 1)
		wg.Done(t)
	})
	wg.Wait(t)
}

func lookupBody(t *testing.T, name string) func(*conc.T) {
	t.Helper()
	p, ok := progs.Lookup(name)
	if !ok {
		t.Fatalf("program %q missing", name)
	}
	return p.Body
}

// TestFastPathReportInvariance: the run report does not depend on the
// fast path or on the worker count.
func TestFastPathReportInvariance(t *testing.T) {
	cases := []struct {
		name     string
		prog     func(*conc.T)
		opts     fairmc.Options
		parallel []int
		// crossP additionally requires the report to be identical across
		// parallelism levels. That holds for deterministic programs; a
		// quarantining search legitimately partitions nondeterministic
		// subtrees differently per worker count (sequential quarantine is
		// per-subtree, prefix-parallel quarantine is per-prefix), so for
		// those the suite pins fastpath on/off identity at each level.
		crossP bool
	}{
		{"spinloop", lookupBody(t, "spinloop"), fairmc.Options{
			Fair:         true,
			ContextBound: -1,
			MaxSteps:     10000,
		}, []int{1, 4}, true},
		{"nondet-counter", lookupBody(t, "nondet-counter"), fairmc.Options{
			Fair:          true,
			ContextBound:  -1,
			MaxSteps:      10000,
			MaxExecutions: 300,
		}, []int{1, 4}, false},
		// TSO turns flush delay into schedulable steps: the digests,
		// schedules, and wm counters those steps produce must be
		// byte-identical across parallelism and fast-path settings like
		// any other transition.
		{"litmus-sb-tso", lookupBody(t, "litmus-sb"), fairmc.Options{
			Fair:                   true,
			ContextBound:           -1,
			MaxSteps:               10000,
			MemModel:               "tso",
			ContinueAfterViolation: true,
		}, []int{1, 4}, true},
		// DPOR runs as serializable work units merged in spawn order,
		// so the report is identical at any worker count too. racyConc
		// gives it a real race to reduce around.
		{"dpor-racy", racyConc, fairmc.Options{
			Fair:                   false,
			ContextBound:           -1,
			MaxSteps:               10000,
			DPOR:                   true,
			ContinueAfterViolation: true,
		}, []int{1, 4}, true},
		// DPOR over a program that is not a deterministic function of
		// its schedule: child units replay a recorded prefix, observe a
		// conformance divergence, and quarantine. Each unit's verdict is
		// independent of worker scheduling, so the report stays
		// byte-identical across parallelism levels as well.
		{"dpor-nondet", nondetRacy, fairmc.Options{
			Fair:         false,
			ContextBound: -1,
			MaxSteps:     10000,
			DPOR:         true,
		}, []int{1, 4}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var ref []byte
			for _, p := range tc.parallel {
				if !tc.crossP {
					ref = nil
				}
				for _, noFast := range []bool{false, true} {
					opts := tc.opts
					opts.Parallelism = p
					opts.NoFastPath = noFast
					data, _ := checkReport(t, tc.prog, tc.name, opts)
					if ref == nil {
						ref = data
						continue
					}
					if !bytes.Equal(ref, data) {
						t.Fatalf("run report differs at p=%d nofastpath=%v:\n%s\nvs\n%s",
							p, noFast, ref, data)
					}
				}
			}
		})
	}
}

// TestFastPathCheckpointResume: a search interrupted at half its
// executions, checkpointed with the fast path ON, and resumed with the
// fast path OFF reproduces the uninterrupted report exactly — the
// checkpoint format and options hash are fast-path-agnostic, and memo
// state is never persisted (restored frames fall back to digest
// validation).
func TestFastPathCheckpointResume(t *testing.T) {
	fixtures := []struct {
		name string
		prog func(*conc.T)
		opts fairmc.Options
	}{
		{"spinloop", lookupBody(t, "spinloop"), fairmc.Options{
			Fair:         true,
			ContextBound: -1,
			MaxSteps:     10000,
		}},
		{"nondet-counter", lookupBody(t, "nondet-counter"), fairmc.Options{
			Fair:          true,
			ContextBound:  -1,
			MaxSteps:      10000,
			MaxExecutions: 300,
		}},
		// TSO searches checkpoint like any other: the options hash folds
		// the memory model in, frontier alternatives include flush
		// steps, and the v5 wm counters ride the counter block.
		{"litmus-sb-tso", lookupBody(t, "litmus-sb"), fairmc.Options{
			Fair:                   true,
			ContextBound:           -1,
			MaxSteps:               10000,
			MemModel:               "tso",
			ContinueAfterViolation: true,
		}},
		// DPOR checkpoints its unit frontier (format v4); a resumed run
		// regenerates the same spawn order and merges identically.
		{"dpor-racy", racyConc, fairmc.Options{
			Fair:                   false,
			ContextBound:           -1,
			MaxSteps:               10000,
			DPOR:                   true,
			ContinueAfterViolation: true,
		}},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			opts := fx.opts
			opts.ProgramName = fx.name
			want, res := checkReport(t, fx.prog, fx.name, opts)
			if res.Executions < 4 {
				t.Fatalf("fixture too small to split: %d executions", res.Executions)
			}

			path := filepath.Join(t.TempDir(), "search.ckpt")
			first := opts
			first.MaxExecutions = res.Executions / 2
			first.CheckpointPath = path
			rep1, err := fairmc.Check(fx.prog, first)
			if err != nil {
				t.Fatal(err)
			}
			if !rep1.ExecBounded {
				t.Fatalf("first phase did not stop on the execution budget: %+v", rep1.Report)
			}
			ck, err := fairmc.LoadCheckpoint(path)
			if err != nil {
				t.Fatalf("loading checkpoint: %v", err)
			}
			second := opts
			second.CheckpointPath = path
			second.Resume = ck
			second.NoFastPath = true // cross the boundary: resume on the slow path
			resumed, err := fairmc.Check(fx.prog, second)
			if err != nil {
				t.Fatal(err)
			}
			got := encodeReport(t, resumed, fx.name, second)
			if !bytes.Equal(want, got) {
				t.Fatalf("resumed run report differs from uninterrupted baseline:\n%s\nvs\n%s",
					want, got)
			}
		})
	}
}
