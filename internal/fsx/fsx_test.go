package fsx

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomicCreatesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")

	if err := WriteFileAtomic(OS, path, []byte("v1")); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v1" {
		t.Fatalf("read after create: %q, %v", got, err)
	}

	if err := WriteFileAtomic(OS, path, []byte("v2-longer")); err != nil {
		t.Fatalf("WriteFileAtomic replace: %v", err)
	}
	got, err = os.ReadFile(path)
	if err != nil || string(got) != "v2-longer" {
		t.Fatalf("read after replace: %q, %v", got, err)
	}
}

func TestWriteFileAtomicLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 5; i++ {
		if err := WriteFileAtomic(OS, filepath.Join(dir, "f"), []byte("x")); err != nil {
			t.Fatalf("WriteFileAtomic: %v", err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "f" {
		names := make([]string, 0, len(ents))
		for _, e := range ents {
			names = append(names, e.Name())
		}
		t.Fatalf("directory not clean after atomic writes: %v", names)
	}
}

func TestWriteFileAtomicConcurrent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shared")
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() { done <- WriteFileAtomic(OS, path, []byte("payload")) }()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent WriteFileAtomic: %v", err)
		}
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "payload" {
		t.Fatalf("read: %q, %v", got, err)
	}
}

func TestSyncDir(t *testing.T) {
	if err := SyncDir(OS, t.TempDir()); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
}
