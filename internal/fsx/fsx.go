// Package fsx is the durability seam of the checker: one shared
// implementation of the atomic+fsync write/rename discipline
// (WriteFileAtomic) behind a small filesystem interface (FS) that the
// chaos layer can wrap with injected disk faults.
//
// Every component that persists state — search checkpoints, the
// distributed coordinator's state file, the worker result spool, and
// the job ledger's write-ahead log — goes through this package, so the
// crash-safety argument ("a crash at any point leaves either the
// previous file or the new one, never a mix") is made exactly once,
// and internal/faultinject can prove it under torn writes, lost
// renames, and failing fsyncs by substituting FS.
package fsx

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync/atomic"
)

// File is the writable-handle surface persistence code needs: write,
// read (replay paths), fsync, close.
type File interface {
	Write(p []byte) (int, error)
	Read(p []byte) (int, error)
	Sync() error
	Close() error
	Name() string
}

// FS is the filesystem operations surface persistence code needs.
// Production code uses OS; tests substitute a faultinject.FSInjector
// to model torn writes, lost renames, fsync failures, and read
// corruption.
type FS interface {
	// OpenFile opens a file with the given flags (os.O_*).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadFile reads a whole file.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// ReadDir lists a directory in name order.
	ReadDir(name string) ([]fs.DirEntry, error)
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm os.FileMode) error
	// Stat describes a file.
	Stat(name string) (os.FileInfo, error)
	// Truncate cuts a file to size (torn-tail repair).
	Truncate(name string, size int64) error
	// Glob matches files like filepath.Glob.
	Glob(pattern string) ([]string, error)
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }
func (osFS) Glob(pattern string) ([]string, error)        { return filepath.Glob(pattern) }

// tmpSeq distinguishes concurrent temp files within one process; the
// PID distinguishes processes sharing a directory.
var tmpSeq atomic.Int64

// SyncDir fsyncs a directory so a rename (or create/remove) inside it
// survives a crash. Without it the rename itself can be lost, silently
// rolling the file back to its previous contents.
func SyncDir(fsys FS, dir string) error {
	d, err := fsys.OpenFile(dir, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}

// WriteFileAtomic persists data at path so that a crash at any point
// leaves either the previous file or the new one, never a mix: write
// to a temp file in the destination directory, fsync it, rename over
// the target, then fsync the parent directory. This is the single
// durable-write implementation behind search checkpoints, the
// distributed coordinator's state file, the worker result spool, and
// the job ledger's segment rotation.
func WriteFileAtomic(fsys FS, path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp := filepath.Join(dir, fmt.Sprintf(".%s.tmp-%d-%d",
		filepath.Base(path), os.Getpid(), tmpSeq.Add(1)))
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	if serr := f.Sync(); werr == nil {
		werr = serr
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = fsys.Rename(tmp, path)
	}
	if werr != nil {
		fsys.Remove(tmp)
		return werr
	}
	return SyncDir(fsys, dir)
}
