package experiments

import (
	"runtime"
	"time"

	"fairmc/conc"
	"fairmc/internal/search"
	"fairmc/progs"
)

// ConformanceRow measures what schedule-conformance checking costs on
// one deterministic subject: the same execution-bounded search run with
// digest recording/checking on (the default) and off, with Overhead the
// on/off wall-clock ratio. Identical asserts the defense is pure
// observation — both modes must explore the same number of executions,
// reach the same exhaustion verdict, and quarantine nothing.
type ConformanceRow struct {
	Program     string        `json:"program"`
	Executions  int64         `json:"executions"`
	ElapsedOn   time.Duration `json:"elapsed_on_ns"`
	ElapsedOff  time.Duration `json:"elapsed_off_ns"`
	Overhead    float64       `json:"overhead"`
	Quarantined int64         `json:"quarantined"`
	Identical   bool          `json:"identical"`
}

// ConformanceReport bundles the sweep with host facts and the repetition
// count (each mode keeps its best-of-Reps wall clock to damp scheduler
// noise on shared machines).
type ConformanceReport struct {
	Reps       int              `json:"reps"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	NumCPU     int              `json:"num_cpu"`
	Rows       []ConformanceRow `json:"rows"`
}

// ConformanceSweep times the DFS on deterministic programs with
// conformance checking enabled vs disabled. The subjects are
// execution-bounded so both modes do identical work and the wall clock
// is the measurement; deterministic subjects make Quarantined=0 part of
// the expected output rather than a flake source.
func ConformanceSweep(execs int64, reps int) ConformanceReport {
	if reps < 1 {
		reps = 1
	}
	peterson, _ := progs.Lookup("peterson")
	subjects := []struct {
		name string
		body func(*conc.T)
		opts search.Options
	}{
		{
			name: "peterson",
			body: peterson.Body,
			opts: search.Options{Fair: true, ContextBound: 2, MaxSteps: 1 << 12},
		},
		{
			name: "wsq-2x2",
			body: progs.WorkStealingQueue(progs.WSQConfig{Items: 2, Stealers: 2}),
			opts: search.Options{Fair: true, ContextBound: 2, MaxSteps: 1 << 14},
		},
	}
	out := ConformanceReport{
		Reps:       reps,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	for _, sub := range subjects {
		opts := sub.opts
		opts.MaxExecutions = execs
		opts.ContinueAfterViolation = true

		run := func(disable bool) *search.Report {
			o := opts
			o.DisableConformance = disable
			best := search.Explore(sub.body, o)
			for i := 1; i < reps; i++ {
				if r := search.Explore(sub.body, o); r.Elapsed < best.Elapsed {
					best = r
				}
			}
			return best
		}
		on := run(false)
		off := run(true)

		row := ConformanceRow{
			Program:     sub.name,
			Executions:  on.Executions,
			ElapsedOn:   on.Elapsed,
			ElapsedOff:  off.Elapsed,
			Quarantined: on.Quarantined,
			Identical: on.Executions == off.Executions &&
				on.Exhausted == off.Exhausted &&
				on.Quarantined == 0 && off.Quarantined == 0,
		}
		if off.Elapsed > 0 {
			row.Overhead = on.Elapsed.Seconds() / off.Elapsed.Seconds()
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}
