package experiments

import (
	"bytes"
	"runtime"
	"time"

	"fairmc"
	"fairmc/conc"
	"fairmc/internal/engine"
	"fairmc/internal/search"
	"fairmc/progs"
)

// EngineRow is one point of the engine-speed sweep: a fixed number of
// run-to-completion executions of one subject, timed under one engine
// configuration. Speedup is ExecsPerSec normalized to the same
// subject's no-fastpath row, so it isolates what the fast path buys on
// the hardware the sweep actually ran on.
type EngineRow struct {
	Program       string        `json:"program"`
	Config        string        `json:"config"`
	Executions    int64         `json:"executions"`
	Best          time.Duration `json:"best_ns"`
	ExecsPerSec   float64       `json:"execs_per_sec"`
	AllocsPerExec float64       `json:"allocs_per_exec"`
	Speedup       float64       `json:"speedup"`
}

// EngineBaseline is the pre-fast-path reference point this PR is
// measured against. It is a recorded constant, not a rerun: the numbers
// were measured with the same loop (spinloop, run-to-completion,
// Fair+RecordTrace, best of reps) at the commit named in Commit, before
// any fast-path code existed, on the same class of host the sweep
// targets.
type EngineBaseline struct {
	Commit        string  `json:"commit"`
	Program       string  `json:"program"`
	ExecsPerSec   float64 `json:"execs_per_sec"`
	AllocsPerExec float64 `json:"allocs_per_exec"`
	Note          string  `json:"note"`
}

// EngineReport bundles the sweep with host facts, the recorded pre-PR
// baseline, the headline SpeedupVsPrePR (the spinloop fastpath-pooled
// row against the baseline), and ReportsIdentical — a search-level
// check that the deterministic run report is byte-for-byte the same
// with the fast path on and off.
type EngineReport struct {
	Reps             int            `json:"reps"`
	GOMAXPROCS       int            `json:"gomaxprocs"`
	NumCPU           int            `json:"num_cpu"`
	Baseline         EngineBaseline `json:"pre_pr_baseline"`
	Rows             []EngineRow    `json:"rows"`
	SpeedupVsPrePR   float64        `json:"speedup_vs_pre_pr"`
	ReportsIdentical bool           `json:"reports_identical"`
}

// engineSubject pairs a sweep subject with its body.
type engineSubject struct {
	name string
	body func(*conc.T)
}

// EngineSweep times raw single-thread engine throughput — execs
// run-to-completion executions per measurement, best wall clock of reps
// kept — under three configurations: the legacy handshake
// (no-fastpath), the baton-passing fast path on a fresh engine per
// execution (fastpath), and the fast path drawing engines from a pool
// (fastpath-pooled, the configuration searches actually use).
func EngineSweep(execs int64, reps int) EngineReport {
	if reps < 1 {
		reps = 1
	}
	spin, ok := progs.Lookup("spinloop")
	if !ok {
		panic("experiments: spinloop subject missing")
	}
	subjects := []engineSubject{
		{"spinloop", spin.Body},
		{"wsq-2x2", progs.WorkStealingQueue(progs.WSQConfig{Items: 2, Stealers: 2})},
	}
	out := EngineReport{
		Reps:       reps,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Baseline: EngineBaseline{
			Commit:        "0b4bf92",
			Program:       "spinloop",
			ExecsPerSec:   46500,
			AllocsPerExec: 122,
			Note: "recorded constant: measured at the pre-fast-path seed commit " +
				"with this sweep's spinloop loop (best of reps, single-CPU container)",
		},
	}
	configs := []string{"no-fastpath", "fastpath", "fastpath-pooled"}
	type key struct{ prog, cfg string }
	best := make(map[key]time.Duration)
	// Interleave configurations across reps so thermal and scheduler
	// drift hit every configuration equally.
	for rep := 0; rep < reps; rep++ {
		for _, sub := range subjects {
			for _, cfg := range configs {
				d := timeEngineRuns(sub.body, cfg, execs)
				k := key{sub.name, cfg}
				if prev, seen := best[k]; !seen || d < prev {
					best[k] = d
				}
			}
		}
	}
	for _, sub := range subjects {
		var basePerSec float64
		for _, cfg := range configs {
			d := best[key{sub.name, cfg}]
			row := EngineRow{
				Program:       sub.name,
				Config:        cfg,
				Executions:    execs,
				Best:          d,
				ExecsPerSec:   float64(execs) / d.Seconds(),
				AllocsPerExec: engineAllocsPerExec(sub.body, cfg),
			}
			if basePerSec == 0 {
				basePerSec = row.ExecsPerSec
			}
			row.Speedup = row.ExecsPerSec / basePerSec
			out.Rows = append(out.Rows, row)
			if sub.name == out.Baseline.Program && cfg == "fastpath-pooled" {
				out.SpeedupVsPrePR = row.ExecsPerSec / out.Baseline.ExecsPerSec
			}
		}
	}
	out.ReportsIdentical = engineReportsIdentical(subjects, execs)
	return out
}

// engineConfig is the measurement configuration: it matches the loop
// the pre-PR baseline was recorded with (fair scheduling and trace
// recording on, everything else default).
func engineConfig(noFastPath bool) engine.Config {
	return engine.Config{Fair: true, RecordTrace: true, NoFastPath: noFastPath}
}

// timeEngineRuns runs n run-to-completion executions under one
// configuration and returns the wall clock.
func timeEngineRuns(body func(*conc.T), cfg string, n int64) time.Duration {
	ecfg := engineConfig(cfg == "no-fastpath")
	start := time.Now()
	if cfg == "fastpath-pooled" {
		var pool engine.Pool
		for i := int64(0); i < n; i++ {
			pool.Run(body, engine.RunToCompletionChooser{}, ecfg)
		}
		pool.Close()
	} else {
		for i := int64(0); i < n; i++ {
			engine.Run(body, engine.RunToCompletionChooser{}, ecfg)
		}
	}
	return time.Since(start)
}

// engineAllocsPerExec measures steady-state heap allocations per
// execution from malloc-counter deltas (the pooled row warms the pool
// first so the one-time engine construction is excluded).
func engineAllocsPerExec(body func(*conc.T), cfg string) float64 {
	const n = 200
	ecfg := engineConfig(cfg == "no-fastpath")
	var pool *engine.Pool
	if cfg == "fastpath-pooled" {
		pool = &engine.Pool{}
		pool.Run(body, engine.RunToCompletionChooser{}, ecfg)
		defer pool.Close()
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < n; i++ {
		if pool != nil {
			pool.Run(body, engine.RunToCompletionChooser{}, ecfg)
		} else {
			engine.Run(body, engine.RunToCompletionChooser{}, ecfg)
		}
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / n
}

// engineReportsIdentical runs the same execution-bounded random walk
// with the fast path on and off on every subject and compares the
// deterministic run reports byte for byte — the sweep's correctness
// gate, not a throughput measurement.
func engineReportsIdentical(subjects []engineSubject, execs int64) bool {
	if execs > 500 {
		execs = 500
	}
	for _, sub := range subjects {
		opts := search.Options{
			Fair:                    true,
			RandomWalk:              true,
			MaxExecutions:           execs,
			MaxSteps:                1 << 14,
			Seed:                    42,
			Parallelism:             1,
			ContinueAfterViolation:  true,
			ContinueAfterDivergence: true,
		}
		fast := opts
		slow := opts
		slow.NoFastPath = true
		encode := func(o search.Options) []byte {
			rep := search.Explore(sub.body, o)
			buf, err := (&fairmc.Result{Report: rep}).RunReport(sub.name, o).Encode()
			if err != nil {
				panic(err)
			}
			return buf
		}
		if !bytes.Equal(encode(fast), encode(slow)) {
			return false
		}
	}
	return true
}
