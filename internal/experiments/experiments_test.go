package experiments_test

import (
	"testing"
	"time"

	"fairmc/internal/experiments"
	"fairmc/internal/liveness"
)

func TestFig2GrowsWithDepthBound(t *testing.T) {
	rows := experiments.Fig2([]int{8, 12, 16, 20}, experiments.Budget{
		CellTime: 60 * time.Second,
	})
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.TimedOut {
			t.Fatalf("row %d timed out: %+v", i, r)
		}
	}
	// Nonterminating executions must grow (the paper: exponentially).
	if rows[0].NonTerminating <= 0 {
		t.Fatalf("no nonterminating executions at db=%d", rows[0].DepthBound)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].NonTerminating <= rows[i-1].NonTerminating {
			t.Fatalf("nonterminating count not growing: %+v", rows)
		}
	}
	// Check the growth is super-linear across the range (shape of
	// Figure 2's log-scale straight line).
	if rows[3].NonTerminating < 4*rows[0].NonTerminating {
		t.Fatalf("growth too slow: %d -> %d", rows[0].NonTerminating, rows[3].NonTerminating)
	}
}

func TestTable1Characteristics(t *testing.T) {
	rows := experiments.Table1()
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	byName := map[string]experiments.Table1Row{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.LOC <= 0 {
			t.Errorf("%s: LOC = %d", r.Name, r.LOC)
		}
		if r.Threads < 3 {
			t.Errorf("%s: threads = %d", r.Name, r.Threads)
		}
		if r.SyncOps <= 0 {
			t.Errorf("%s: sync ops = %d", r.Name, r.SyncOps)
		}
	}
	if got := byName["Singularity kernel"].Threads; got != 14 {
		t.Errorf("singularity threads = %d, want 14", got)
	}
	if got := byName["Dryad Fifo"].Threads; got != 25 {
		t.Errorf("dryad fifo threads = %d, want 25", got)
	}
	// The Singularity row must dwarf the small programs in sync ops,
	// as in the paper (167924 vs. tens).
	if byName["Singularity kernel"].SyncOps < 4*byName["Dining Philosophers"].SyncOps {
		t.Errorf("singularity not the largest: %+v", rows)
	}
}

func TestTable2SmallestConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("coverage experiment in -short mode")
	}
	// The full dfs cells take minutes (as in the paper, where dfs runs
	// took hundreds to thousands of seconds); the test sticks to the
	// small context bounds.
	cfgs := experiments.Table2Configs()[:1] // Dining Philosophers 2
	strategies := []experiments.Strategy{
		{Name: "cb=1", ContextBound: 1},
		{Name: "cb=2", ContextBound: 2},
	}
	cells := experiments.Table2(cfgs, strategies, []int{20, 40}, experiments.Budget{
		CellTime: 60 * time.Second,
	})
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	for _, c := range cells {
		if c.TotalTimedOut || c.FairTimedOut {
			t.Fatalf("%s/%s timed out: %+v", c.Config, c.Strategy, c)
		}
		if c.TotalStates <= 0 {
			t.Fatalf("%s/%s: no reference states", c.Config, c.Strategy)
		}
		// Table 2's headline: fairness achieves 100% state coverage.
		if !c.Fair100 {
			t.Fatalf("%s/%s: fair search missed states (fair %d, total %d)",
				c.Config, c.Strategy, c.FairStates, c.TotalStates)
		}
		// Fairness may visit MORE states than the bounded reference
		// (it introduces extra preemption points, paper §4.2.1).
		if c.FairStates < c.TotalStates {
			t.Fatalf("%s/%s: fair %d < total %d", c.Config, c.Strategy,
				c.FairStates, c.TotalStates)
		}
	}
	// A larger preemption budget must reach at least as many states.
	if cells[1].TotalStates < cells[0].TotalStates {
		t.Fatalf("cb=2 states %d < cb=1 states %d", cells[1].TotalStates, cells[0].TotalStates)
	}
}

func TestTable3SampleBugs(t *testing.T) {
	if testing.Short() {
		t.Skip("bug-finding experiment in -short mode")
	}
	rows := experiments.Table3([]string{
		"wsq-bug2-lockfree-steal",
		"dryad-bug4-reset-race",
	}, experiments.Budget{CellTime: 30 * time.Second})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.FairFound {
			t.Errorf("%s: fair search found nothing", r.Bug)
		}
	}
	// The reset race (bug 4) manifests as a stranded thread, which
	// only the fair search detects (via divergence).
	if rows[1].UnfairFound {
		t.Logf("note: unfair search found dryad-bug4 too: %+v", rows[1])
	}
	if !rows[1].FairByDivergence && rows[1].FairFound {
		t.Logf("note: dryad-bug4 found as safety violation: %+v", rows[1])
	}
}

func TestLivenessDemos(t *testing.T) {
	rows := experiments.LivenessDemos(experiments.Budget{CellTime: 60 * time.Second})
	want := map[string]liveness.Kind{
		"workergroup-spin":   liveness.GoodSamaritanViolation,
		"promise-livelock":   liveness.FairNontermination,
		"philosophers-try-2": liveness.FairNontermination,
		"spinloop-noyield":   liveness.GoodSamaritanViolation,
	}
	for _, r := range rows {
		if !r.Found {
			t.Errorf("%s: no divergence found", r.Program)
			continue
		}
		if want[r.Program] != r.Kind {
			t.Errorf("%s: kind = %v, want %v", r.Program, r.Kind, want[r.Program])
		}
	}
}

func TestCompareStrategies(t *testing.T) {
	if testing.Short() {
		t.Skip("strategy comparison in -short mode")
	}
	rows := experiments.CompareStrategies([]string{
		"dryad-bug2-read-after-release",
		"wsq-bug2-lockfree-steal",
	}, experiments.Budget{CellTime: 30 * time.Second})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.FairDFS < 0 {
			t.Errorf("%s: fair DFS found nothing", r.Bug)
		}
		if r.RandomWalk < 0 && r.PCT < 0 {
			t.Errorf("%s: neither randomized strategy found it", r.Bug)
		}
	}
}
