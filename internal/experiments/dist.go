package experiments

import (
	"encoding/json"
	"net/http/httptest"
	"runtime"
	"sync"
	"time"

	"fairmc/internal/dist"
	"fairmc/internal/engine"
	"fairmc/internal/search"
	"fairmc/progs"
)

// DistRow is one point of the distributed-exploration sweep: the same
// execution-bounded random-walk workload run through a coordinator
// with a different number of in-process workers (real HTTP over
// loopback, so the protocol overhead is in the measurement). The
// merged report is the same at every worker count — Identical records
// that check against the 1-worker row.
type DistRow struct {
	Workers     int           `json:"workers"`
	Executions  int64         `json:"executions"`
	Elapsed     time.Duration `json:"elapsed_ns"`
	ExecsPerSec float64       `json:"execs_per_sec"`
	Speedup     float64       `json:"speedup"`
	Identical   bool          `json:"identical"`
}

// DistReport bundles the sweep with its fixed plan facts.
type DistReport struct {
	Program        string    `json:"program"`
	Seed           uint64    `json:"seed"`
	RefParallelism int       `json:"ref_parallelism"`
	Shards         int       `json:"shards"`
	GOMAXPROCS     int       `json:"gomaxprocs"`
	NumCPU         int       `json:"num_cpu"`
	Rows           []DistRow `json:"rows"`
}

// DistSweep measures coordinator/worker throughput at each worker
// count. Work is execution-bounded and stride-sharded, so every row
// explores the identical schedule set; wall clock (including lease
// round-trips and heartbeats) is the measurement.
func DistSweep(workers []int, execs int64) DistReport {
	const program = "wsq-2x2"
	body := progs.WorkStealingQueue(progs.WSQConfig{Items: 2, Stealers: 2})
	opts := search.Options{
		Fair:                    true,
		RandomWalk:              true,
		MaxExecutions:           execs,
		MaxSteps:                1 << 14,
		Seed:                    42,
		ContinueAfterViolation:  true,
		ContinueAfterDivergence: true,
	}
	out := DistReport{
		Program:        program,
		Seed:           opts.Seed,
		RefParallelism: 2,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		NumCPU:         runtime.NumCPU(),
	}
	lookup := func(name string) (func(*engine.T), bool) {
		if name != program {
			return nil, false
		}
		return body, true
	}
	var baseline []byte
	var base float64
	for _, w := range workers {
		start := time.Now()
		coord, err := dist.NewCoordinator(dist.CoordinatorConfig{
			Prog:           body,
			Program:        program,
			Options:        opts,
			RefParallelism: out.RefParallelism,
		})
		if err != nil {
			panic(err)
		}
		srv := httptest.NewServer(coord.Handler())
		var wg sync.WaitGroup
		for i := 0; i < w; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				dist.RunWorker(dist.WorkerConfig{URL: srv.URL, Lookup: lookup})
			}()
		}
		rep := coord.Wait()
		wg.Wait()
		srv.Close()
		elapsed := time.Since(start)

		norm := *rep
		norm.Elapsed = 0
		enc, err := json.Marshal(&norm)
		if err != nil {
			panic(err)
		}
		if baseline == nil {
			baseline = enc
		}
		out.Shards = len(coord.Plan().Shards)
		row := DistRow{
			Workers:     w,
			Executions:  rep.Executions,
			Elapsed:     elapsed,
			ExecsPerSec: float64(rep.Executions) / elapsed.Seconds(),
			Identical:   string(enc) == string(baseline),
		}
		if base == 0 {
			base = row.ExecsPerSec
		}
		row.Speedup = row.ExecsPerSec / base
		out.Rows = append(out.Rows, row)
	}
	return out
}
