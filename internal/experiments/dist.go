package experiments

import (
	"encoding/json"
	"net/http/httptest"
	"runtime"
	"sync"
	"time"

	"fairmc/internal/dist"
	"fairmc/internal/dist/transport"
	"fairmc/internal/engine"
	"fairmc/internal/faultinject"
	"fairmc/internal/search"
	"fairmc/progs"
)

// DistRow is one point of the distributed-exploration sweep: the same
// execution-bounded random-walk workload run through a coordinator
// with a different number of in-process workers (real HTTP over
// loopback, so the protocol overhead is in the measurement). The
// merged report is the same at every worker count — Identical records
// that check against the 1-worker row.
type DistRow struct {
	Workers     int           `json:"workers"`
	Chaos       bool          `json:"chaos"`
	Faults      int64         `json:"faults"`
	Executions  int64         `json:"executions"`
	Elapsed     time.Duration `json:"elapsed_ns"`
	ExecsPerSec float64       `json:"execs_per_sec"`
	Speedup     float64       `json:"speedup"`
	Identical   bool          `json:"identical"`
}

// DistReport bundles the sweep with its fixed plan facts.
type DistReport struct {
	Program        string    `json:"program"`
	Seed           uint64    `json:"seed"`
	RefParallelism int       `json:"ref_parallelism"`
	Shards         int       `json:"shards"`
	GOMAXPROCS     int       `json:"gomaxprocs"`
	NumCPU         int       `json:"num_cpu"`
	ChaosScenario  string    `json:"chaos_scenario"`
	Rows           []DistRow `json:"rows"`
}

// DistSweep measures coordinator/worker throughput at each worker
// count. Work is execution-bounded and stride-sharded, so every row
// explores the identical schedule set; wall clock (including lease
// round-trips and heartbeats) is the measurement. A final chaos row
// repeats the largest worker count with every worker behind a
// deterministic fault injector (the "flaky" scenario: dropped and
// delayed calls), putting a price on the retry/backoff machinery —
// and its Identical check proves the merged report does not move
// under faults.
func DistSweep(workers []int, execs int64) DistReport {
	const program = "wsq-2x2"
	body := progs.WorkStealingQueue(progs.WSQConfig{Items: 2, Stealers: 2})
	opts := search.Options{
		Fair:                    true,
		RandomWalk:              true,
		MaxExecutions:           execs,
		MaxSteps:                1 << 14,
		Seed:                    42,
		ContinueAfterViolation:  true,
		ContinueAfterDivergence: true,
	}
	out := DistReport{
		Program:        program,
		Seed:           opts.Seed,
		RefParallelism: 2,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		NumCPU:         runtime.NumCPU(),
		ChaosScenario:  "flaky",
	}
	lookup := func(name string) (func(*engine.T), bool) {
		if name != program {
			return nil, false
		}
		return body, true
	}
	var baseline []byte
	var base float64
	runOnce := func(w int, chaos bool) {
		start := time.Now()
		coord, err := dist.NewCoordinator(dist.CoordinatorConfig{
			Prog:           body,
			Program:        program,
			Options:        opts,
			RefParallelism: out.RefParallelism,
		})
		if err != nil {
			panic(err)
		}
		srv := httptest.NewServer(coord.Handler())
		injectors := make([]*faultinject.Injector, w)
		var wg sync.WaitGroup
		for i := 0; i < w; i++ {
			cfg := dist.WorkerConfig{URL: srv.URL, Lookup: lookup}
			if chaos {
				in := faultinject.New(uint64(i)+1, faultinject.MustLookup(out.ChaosScenario))
				injectors[i] = in
				cfg.Transport = in.RoundTripper(nil)
				// Quick backoff keeps the row a measure of the retry
				// machinery, not of idle sleeping.
				cfg.Retry = transport.Policy{
					MaxAttempts: 6,
					BaseDelay:   5 * time.Millisecond,
					MaxDelay:    100 * time.Millisecond,
					Seed:        uint64(i) + 1,
				}
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				dist.RunWorker(cfg)
			}()
		}
		rep := coord.Wait()
		wg.Wait()
		srv.Close()
		elapsed := time.Since(start)

		norm := *rep
		norm.Elapsed = 0
		enc, err := json.Marshal(&norm)
		if err != nil {
			panic(err)
		}
		if baseline == nil {
			baseline = enc
		}
		out.Shards = len(coord.Plan().Shards)
		row := DistRow{
			Workers:     w,
			Chaos:       chaos,
			Executions:  rep.Executions,
			Elapsed:     elapsed,
			ExecsPerSec: float64(rep.Executions) / elapsed.Seconds(),
			Identical:   string(enc) == string(baseline),
		}
		for _, in := range injectors {
			if in != nil {
				row.Faults += in.Total()
			}
		}
		if base == 0 {
			base = row.ExecsPerSec
		}
		row.Speedup = row.ExecsPerSec / base
		out.Rows = append(out.Rows, row)
	}
	for _, w := range workers {
		runOnce(w, false)
	}
	if len(workers) > 0 {
		runOnce(workers[len(workers)-1], true)
	}
	return out
}
