package experiments

import (
	"runtime"
	"time"

	"fairmc/internal/search"
	"fairmc/progs"
)

// ParallelRow is one point of the parallel-exploration sweep: a fixed
// random-walk workload rerun with a different worker count. Because
// stride sharding explores the identical schedule set for every
// Parallelism, Executions is constant across rows and ExecsPerSec is
// the only moving number; Speedup is ExecsPerSec normalized to the
// P=1 row.
type ParallelRow struct {
	Parallelism int           `json:"parallelism"`
	Executions  int64         `json:"executions"`
	Elapsed     time.Duration `json:"elapsed_ns"`
	ExecsPerSec float64       `json:"execs_per_sec"`
	Speedup     float64       `json:"speedup"`
}

// ParallelReport bundles the sweep with the host facts a reader needs
// to interpret it: with GOMAXPROCS=1 every row collapses to sequential
// throughput and Speedup hovers around 1 regardless of Parallelism.
type ParallelReport struct {
	Program    string        `json:"program"`
	Seed       uint64        `json:"seed"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Rows       []ParallelRow `json:"rows"`
}

// ParallelSweep measures random-walk throughput of the work-stealing
// queue subject at each worker count. The workload is execution-
// bounded, not time-bounded, so every row does the same work and the
// wall clock is the measurement.
func ParallelSweep(workers []int, execs int64) ParallelReport {
	body := progs.WorkStealingQueue(progs.WSQConfig{Items: 2, Stealers: 2})
	out := ParallelReport{
		Program:    "wsq-2x2",
		Seed:       42,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	var base float64
	for _, p := range workers {
		rep := search.Explore(body, search.Options{
			Fair:                    true,
			RandomWalk:              true,
			MaxExecutions:           execs,
			MaxSteps:                1 << 14,
			Seed:                    out.Seed,
			Parallelism:             p,
			ContinueAfterViolation:  true,
			ContinueAfterDivergence: true,
		})
		row := ParallelRow{
			Parallelism: p,
			Executions:  rep.Executions,
			Elapsed:     rep.Elapsed,
			ExecsPerSec: float64(rep.Executions) / rep.Elapsed.Seconds(),
		}
		if base == 0 {
			base = row.ExecsPerSec
		}
		row.Speedup = row.ExecsPerSec / base
		out.Rows = append(out.Rows, row)
	}
	return out
}
