package experiments

import (
	"fmt"
	"runtime"
	"time"

	"fairmc/conc"
	"fairmc/internal/search"
	"fairmc/progs"
)

// ParallelRow is one point of the parallel-exploration sweep: a fixed
// random-walk workload rerun with a different worker count. Because
// stride sharding explores the identical schedule set for every
// Parallelism, Executions is constant across rows and ExecsPerSec is
// the only moving number; Speedup is ExecsPerSec normalized to the
// P=1 row.
type ParallelRow struct {
	Parallelism int           `json:"parallelism"`
	Executions  int64         `json:"executions"`
	Elapsed     time.Duration `json:"elapsed_ns"`
	ExecsPerSec float64       `json:"execs_per_sec"`
	Speedup     float64       `json:"speedup"`
}

// SingleThreadRow is the sequential reference throughput of one
// subject: a P=1 random walk over the same execution budget. These rows
// anchor the sweep — parallel speedup only means something relative to
// what one thread does on the same host.
type SingleThreadRow struct {
	Program     string        `json:"program"`
	Executions  int64         `json:"executions"`
	Elapsed     time.Duration `json:"elapsed_ns"`
	ExecsPerSec float64       `json:"execs_per_sec"`
}

// ParallelReport bundles the sweep with the host facts a reader needs
// to interpret it: with GOMAXPROCS=1 every row collapses to sequential
// throughput and Speedup hovers around 1 regardless of Parallelism.
type ParallelReport struct {
	Program    string `json:"program"`
	Seed       uint64 `json:"seed"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// Warning is set when the host cannot actually exercise the sweep's
	// parallelism (NumCPU below the largest worker count): the speedup
	// column then measures scheduling overhead, not scaling.
	Warning      string            `json:"warning,omitempty"`
	SingleThread []SingleThreadRow `json:"single_thread"`
	Rows         []ParallelRow     `json:"rows"`
}

// ParallelSweep measures random-walk throughput of the work-stealing
// queue subject at each worker count. The workload is execution-
// bounded, not time-bounded, so every row does the same work and the
// wall clock is the measurement.
func ParallelSweep(workers []int, execs int64) ParallelReport {
	body := progs.WorkStealingQueue(progs.WSQConfig{Items: 2, Stealers: 2})
	out := ParallelReport{
		Program:    "wsq-2x2",
		Seed:       42,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	maxW := 0
	for _, p := range workers {
		if p > maxW {
			maxW = p
		}
	}
	if out.NumCPU < maxW {
		out.Warning = fmt.Sprintf(
			"host has %d CPU(s) but the sweep asks for up to %d workers: "+
				"rows collapse toward single-thread throughput and speedup is not meaningful",
			out.NumCPU, maxW)
	}
	spin, ok := progs.Lookup("spinloop")
	if !ok {
		panic("experiments: spinloop subject missing")
	}
	singles := []struct {
		name string
		body func(*conc.T)
	}{
		{"spinloop", spin.Body},
		{"wsq-2x2", body},
	}
	for _, sub := range singles {
		rep := search.Explore(sub.body, search.Options{
			Fair:                    true,
			RandomWalk:              true,
			MaxExecutions:           execs,
			MaxSteps:                1 << 14,
			Seed:                    out.Seed,
			Parallelism:             1,
			ContinueAfterViolation:  true,
			ContinueAfterDivergence: true,
		})
		out.SingleThread = append(out.SingleThread, SingleThreadRow{
			Program:     sub.name,
			Executions:  rep.Executions,
			Elapsed:     rep.Elapsed,
			ExecsPerSec: float64(rep.Executions) / rep.Elapsed.Seconds(),
		})
	}
	var base float64
	for _, p := range workers {
		rep := search.Explore(body, search.Options{
			Fair:                    true,
			RandomWalk:              true,
			MaxExecutions:           execs,
			MaxSteps:                1 << 14,
			Seed:                    out.Seed,
			Parallelism:             p,
			ContinueAfterViolation:  true,
			ContinueAfterDivergence: true,
		})
		row := ParallelRow{
			Parallelism: p,
			Executions:  rep.Executions,
			Elapsed:     rep.Elapsed,
			ExecsPerSec: float64(rep.Executions) / rep.Elapsed.Seconds(),
		}
		if base == 0 {
			base = row.ExecsPerSec
		}
		row.Speedup = row.ExecsPerSec / base
		out.Rows = append(out.Rows, row)
	}
	return out
}
