package experiments

import (
	"io"
	"runtime"
	"time"

	"fairmc/internal/obs"
	"fairmc/internal/search"
	"fairmc/progs"
)

// ObsRow is one configuration of the observability-overhead sweep: the
// same execution-bounded workload run with progressively more
// instrumentation attached. Overhead is Best normalized to the baseline
// row (1.0 = no measurable cost).
type ObsRow struct {
	Config      string        `json:"config"`
	Executions  int64         `json:"executions"`
	Best        time.Duration `json:"best_ns"`
	ExecsPerSec float64       `json:"execs_per_sec"`
	Overhead    float64       `json:"overhead"`
}

// ObsReport bundles the sweep with the host facts needed to interpret
// it. The acceptance target is the "metrics" row: the registry is
// flushed once per execution from plain engine-local counters, so its
// overhead should stay under 5% on the spinloop subject. The
// "metrics+events" row is informational — per-step event emission is
// expected to cost more and is off by default.
type ObsReport struct {
	Program    string   `json:"program"`
	Seed       uint64   `json:"seed"`
	Reps       int      `json:"reps"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	Rows       []ObsRow `json:"rows"`
}

// ObsSweep measures the cost of the observability layer on the Figure 3
// spinloop subject: an execution-bounded sequential random walk run
// bare, with the metrics registry attached, and with both metrics and a
// discarding event stream attached. Configurations are interleaved
// across reps (best wall clock kept) so thermal drift hits all three
// equally.
func ObsSweep(execs int64, reps int) ObsReport {
	p, ok := progs.Lookup("spinloop")
	if !ok {
		panic("experiments: spinloop subject missing")
	}
	if reps < 1 {
		reps = 1
	}
	out := ObsReport{
		Program:    p.Name,
		Seed:       42,
		Reps:       reps,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	configs := []string{"baseline", "metrics", "metrics+events"}
	best := make(map[string]ObsRow, len(configs))
	for rep := 0; rep < reps; rep++ {
		for _, cfg := range configs {
			opts := search.Options{
				Fair:          true,
				RandomWalk:    true,
				MaxExecutions: execs,
				MaxSteps:      1 << 14,
				Seed:          out.Seed,
				Parallelism:   1,
			}
			var rec *obs.Recorder
			switch cfg {
			case "metrics":
				opts.Metrics = obs.NewMetrics()
			case "metrics+events":
				opts.Metrics = obs.NewMetrics()
				rec = obs.NewRecorder(io.Discard, 1<<14)
				opts.EventSink = rec
			}
			r := search.Explore(p.Body, opts)
			if rec != nil {
				rec.Close()
			}
			row, seen := best[cfg]
			if !seen || r.Elapsed < row.Best {
				best[cfg] = ObsRow{
					Config:      cfg,
					Executions:  r.Executions,
					Best:        r.Elapsed,
					ExecsPerSec: float64(r.Executions) / r.Elapsed.Seconds(),
				}
			}
		}
	}
	base := best["baseline"].Best.Seconds()
	for _, cfg := range configs {
		row := best[cfg]
		row.Overhead = row.Best.Seconds() / base
		out.Rows = append(out.Rows, row)
	}
	return out
}
