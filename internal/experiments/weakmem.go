package experiments

import (
	"runtime"
	"time"

	"fairmc/internal/search"
)

// TsoCell is one (program, memory model) measurement of the weak-memory
// sweep: the search verdict, how many executions it took to reach it,
// and the weak-memory counters that show how much buffer machinery the
// run exercised (all zero under SC).
type TsoCell struct {
	// Verdict is "violation" (safety bug found), "livelock" (fair
	// nontermination found), "pass" (exhausted clean), or "clean*"
	// (budget ran out with no finding — the randomized strategies never
	// exhaust, so their clean cells are always starred).
	Verdict    string `json:"verdict"`
	Executions int64  `json:"executions"`
	// FindingExecution is the 1-based index of the execution that
	// produced the finding (0 when Verdict is pass/clean*): the
	// "executions to first bug" column of the litmus table.
	FindingExecution int64         `json:"finding_execution"`
	Elapsed          time.Duration `json:"elapsed_ns"`
	BufferedStores   int64         `json:"buffered_stores"`
	Flushes          int64         `json:"flushes"`
	Fences           int64         `json:"fences"`
	Forwards         int64         `json:"forwards"`
}

// TsoRow is one fixture of the weak-memory verdict matrix: the same
// program and search strategy run under SC and under TSO, with the
// expected TSO verdict so the table is self-checking.
type TsoRow struct {
	Program  string `json:"program"`
	Strategy string `json:"strategy"`
	// ExpectedTSO is the verdict the fixture's doc comment promises
	// under -mm=tso; Match reports whether the measured cell agrees
	// (treating clean* as pass for the randomized strategies).
	ExpectedTSO string  `json:"expected_tso"`
	Match       bool    `json:"match"`
	SC          TsoCell `json:"sc"`
	TSO         TsoCell `json:"tso"`
}

// TsoReport bundles the weak-memory sweep: the litmus/fixture verdict
// matrix under SC vs TSO, one row per fixture (fenced variants are
// separate rows, so each unfenced/fenced pair reads as the paper-style
// "bug under TSO / fixed by fences" comparison).
type TsoReport struct {
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	AllMatch   bool     `json:"all_match"`
	Rows       []TsoRow `json:"rows"`
}

// tsoSubjects pairs each weak-memory fixture with the search strategy
// its verdict test uses (progs/weakmem_test.go): the litmus shapes and
// the livelock are exhaustible by fair DFS, Peterson needs preemption
// bound 0 to keep the flush-tail subtrees tractable, and the seqlock's
// torn read is a deep needle only the randomized strategies find.
type tsoSubject struct {
	name     string
	strategy string
	expected string
	opts     search.Options
}

func tsoSubjects(quick bool) []tsoSubject {
	fairDFS := search.Options{
		Fair: true, ContextBound: -1, MaxSteps: 5000,
		TimeLimit: 60 * time.Second,
	}
	petersonDFS := search.Options{
		Fair: true, ContextBound: 0, MaxSteps: 5000,
		TimeLimit: 60 * time.Second,
	}
	randomWalk := search.Options{
		Fair: true, RandomWalk: true, Seed: 3,
		MaxExecutions: 20000, MaxSteps: 5000,
		TimeLimit: 60 * time.Second,
	}
	livelockDFS := search.Options{
		Fair: true, ContextBound: -1, MaxSteps: 400,
		TimeLimit: 60 * time.Second,
	}
	subjects := []tsoSubject{
		{"litmus-sb", "fair dfs", "violation", fairDFS},
		{"litmus-sb-fenced", "fair dfs", "pass", fairDFS},
		{"litmus-mp", "fair dfs", "pass", fairDFS},
		{"litmus-lb", "fair dfs", "pass", fairDFS},
		{"wm-tso-livelock", "fair dfs ms=400", "livelock", livelockDFS},
		{"wm-tso-livelock-fenced", "fair dfs ms=400", "pass", livelockDFS},
		{"seqlock-tso", "random walk", "violation", randomWalk},
		{"seqlock-tso-fenced", "random walk", "pass", randomWalk},
		{"peterson-tso", "fair dfs cb=0", "violation", petersonDFS},
		{"peterson-tso-fenced", "fair dfs cb=0", "pass", petersonDFS},
	}
	if quick {
		// The Peterson cells are the expensive ones (hundreds of
		// thousands of executions to exhaust the fenced space).
		subjects = subjects[:8]
	}
	return subjects
}

func tsoCell(name string, opts search.Options) TsoCell {
	rep := search.Explore(dporSubject(name), opts)
	cell := TsoCell{
		Executions:     rep.Executions,
		Elapsed:        rep.Elapsed,
		BufferedStores: rep.BufferedStores,
		Flushes:        rep.Flushes,
		Fences:         rep.Fences,
		Forwards:       rep.Forwards,
	}
	switch {
	case rep.FirstBug != nil:
		cell.Verdict = "violation"
		cell.FindingExecution = rep.FirstBugExecution
	case rep.Divergence != nil:
		cell.Verdict = "livelock"
		cell.FindingExecution = rep.DivergenceExecution
	case rep.Exhausted:
		cell.Verdict = "pass"
	default:
		cell.Verdict = "clean*"
	}
	return cell
}

// TsoSweep runs the weak-memory verdict matrix: every fixture under SC
// and under TSO with its designated strategy. quick drops the two
// Peterson cells, the only ones that take more than a couple of
// seconds.
func TsoSweep(quick bool) TsoReport {
	out := TsoReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		AllMatch:   true,
	}
	for _, s := range tsoSubjects(quick) {
		scOpts := s.opts
		scOpts.MemModel = "sc"
		tsoOpts := s.opts
		tsoOpts.MemModel = "tso"
		row := TsoRow{
			Program:     s.name,
			Strategy:    s.strategy,
			ExpectedTSO: s.expected,
			SC:          tsoCell(s.name, scOpts),
			TSO:         tsoCell(s.name, tsoOpts),
		}
		got := row.TSO.Verdict
		if got == "clean*" {
			got = "pass"
		}
		row.Match = got == s.expected
		if !row.Match {
			out.AllMatch = false
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}
