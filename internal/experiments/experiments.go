// Package experiments regenerates every table and figure of the
// paper's evaluation (§4) on this reproduction's substrate:
//
//	Figure 2 — nonterminating executions vs. depth bound
//	Table 1  — input program characteristics
//	Table 2  — state coverage per search strategy, fair vs. unfair
//	Figures 5/6 — search completion time, fair vs. unfair
//	Table 3  — executions and time to first bug, fair vs. unfair
//	§4.3.1/§4.3.2 — liveness findings (GS violation, livelock)
//
// Each experiment takes a Budget so the same code serves quick test
// runs and the full cmd/experiments regeneration. Absolute numbers
// differ from the paper's (different substrate and hardware); the
// shapes are what the reproduction checks.
package experiments

import (
	"time"

	"fairmc/conc"
	"fairmc/internal/engine"
	"fairmc/internal/liveness"
	"fairmc/internal/minios"
	"fairmc/internal/search"
	"fairmc/internal/state"
	"fairmc/progs"
)

// Budget bounds one experiment cell.
type Budget struct {
	// CellTime limits each individual search; 0 means no limit.
	CellTime time.Duration
	// MaxExecutions caps executions per search; 0 means unbounded.
	MaxExecutions int64
}

// ----- Figure 2 ---------------------------------------------------------

// Fig2Row is one point of Figure 2.
type Fig2Row struct {
	DepthBound     int
	NonTerminating int64
	Executions     int64
	TimedOut       bool
}

// Fig2 counts, for each depth bound, the nonterminating executions an
// unfair depth-bounded DFS explores on the Figure 1 two-philosopher
// program. The paper's point: the count grows exponentially with the
// bound.
func Fig2(bounds []int, budget Budget) []Fig2Row {
	prog := progs.PhilosophersTry(2)
	rows := make([]Fig2Row, 0, len(bounds))
	for _, db := range bounds {
		rep := search.Explore(prog, search.Options{
			Fair:          false,
			ContextBound:  -1,
			DepthBound:    db,
			RandomTail:    false,
			MaxSteps:      int64(db) + 1,
			TimeLimit:     budget.CellTime,
			MaxExecutions: budget.MaxExecutions,
		})
		rows = append(rows, Fig2Row{
			DepthBound:     db,
			NonTerminating: rep.NonTerminating,
			Executions:     rep.Executions,
			TimedOut:       rep.TimedOut || rep.ExecBounded,
		})
	}
	return rows
}

// ----- Table 1 ----------------------------------------------------------

// Table1Row mirrors the paper's Table 1: program characteristics.
type Table1Row struct {
	Name    string
	LOC     int   // lines of model source
	Threads int   // threads created per execution
	SyncOps int64 // scheduling points per execution
}

// Table1 runs each Table 1 program once under the fair scheduler and
// reports its scale.
func Table1() []Table1Row {
	cells := []struct {
		name, display, file string
	}{
		{"philosophers-try-2", "Dining Philosophers", "philosophers.go"},
		{"wsq-2", "Work-Stealing Queue", "wsq.go"},
		{"promise", "Promise", "promise.go"},
		{"ape", "APE", "ape.go"},
		{"dryad-channels", "Dryad Channels", "dryad.go"},
		{"dryad-fifo", "Dryad Fifo", "dryad.go"},
		{"singularity", "Singularity kernel", "singularity.go"},
	}
	rows := make([]Table1Row, 0, len(cells))
	for _, c := range cells {
		p, ok := progs.Lookup(c.name)
		if !ok {
			panic("experiments: unknown program " + c.name)
		}
		var body func(*conc.T)
		if c.name == "philosophers-try-2" {
			// The livelocked Figure 1 program diverges under the fair
			// scheduler; measure its scale on the livelock-free
			// coverage variant instead.
			body = progs.Philosophers(2)
		} else {
			body = p.Body
		}
		threads, steps := measureOnce(body)
		loc := progs.SourceLOC(c.file)
		if c.name == "singularity" {
			// The Singularity model lives in the minios substrate.
			loc += minios.SourceLOC()
		}
		rows = append(rows, Table1Row{
			Name:    c.display,
			LOC:     loc,
			Threads: threads,
			SyncOps: steps,
		})
	}
	return rows
}

// measureOnce runs one representative fair execution and reports its
// thread count and scheduling-point count.
func measureOnce(body func(*conc.T)) (threads int, steps int64) {
	r := engine.Run(body, engine.RunToCompletionChooser{}, engine.Config{
		Fair:     true,
		MaxSteps: 1 << 20,
	})
	if r.Outcome != engine.Terminated {
		panic("experiments: Table 1 program did not terminate: " + r.Outcome.String())
	}
	return r.Threads, r.Steps
}

// ----- Table 2 ----------------------------------------------------------

// Strategy names a Table 2 search strategy.
type Strategy struct {
	// Name is "cb=1", "cb=2", "cb=3" or "dfs".
	Name string
	// ContextBound is the preemption budget; -1 for dfs.
	ContextBound int
}

// Strategies returns the paper's four Table 2 strategies.
func Strategies() []Strategy {
	return []Strategy{
		{Name: "cb=1", ContextBound: 1},
		{Name: "cb=2", ContextBound: 2},
		{Name: "cb=3", ContextBound: 3},
		{Name: "dfs", ContextBound: -1},
	}
}

// Table2Cell is one strategy row of one configuration.
type Table2Cell struct {
	Config   string
	Strategy string
	// TotalStates is the stateful-search reference count.
	TotalStates int
	// TotalTimedOut marks an incomplete reference search.
	TotalTimedOut bool
	// FairStates is the coverage of the fair stateless search, and
	// FairTime its duration; Fair100 reports full coverage of the
	// reference set.
	FairStates   int
	FairTime     time.Duration
	FairTimedOut bool
	Fair100      bool
	// NoFair maps depth bound -> coverage of the unfair search with
	// random tail (the paper's db=20..60 columns).
	NoFair map[int]Table2NoFairCell
}

// Table2NoFairCell is one unfair depth-bounded run.
type Table2NoFairCell struct {
	States   int
	Time     time.Duration
	TimedOut bool
}

// Table2Config names one program configuration of Table 2.
type Table2Config struct {
	Name string
	Body func(*conc.T)
}

// Table2Configs returns the paper's four configurations.
func Table2Configs() []Table2Config {
	return []Table2Config{
		{Name: "Dining Philosophers 2", Body: progs.Philosophers(2)},
		{Name: "Dining Philosophers 3", Body: progs.Philosophers(3)},
		{Name: "Work-Stealing Queue 1", Body: progs.WorkStealingQueue(progs.WSQConfig{Items: 2, Stealers: 1})},
		{Name: "Work-Stealing Queue 2", Body: progs.WorkStealingQueue(progs.WSQConfig{Items: 2, Stealers: 2})},
	}
}

// Table2 runs the coverage experiment for the given configurations,
// strategies and depth bounds.
func Table2(configs []Table2Config, strategies []Strategy, depthBounds []int, budget Budget) []Table2Cell {
	var cells []Table2Cell
	for _, cfg := range configs {
		for _, st := range strategies {
			cells = append(cells, table2Cell(cfg, st, depthBounds, budget))
		}
	}
	return cells
}

func table2Cell(cfg Table2Config, st Strategy, depthBounds []int, budget Budget) Table2Cell {
	cell := Table2Cell{
		Config:   cfg.Name,
		Strategy: st.Name,
		NoFair:   map[int]Table2NoFairCell{},
	}

	// Ground truth: stateful search with the same preemption budget.
	ref := state.NewCoverage()
	refRep := search.Explore(cfg.Body, search.Options{
		Fair:          false,
		ContextBound:  st.ContextBound,
		MaxSteps:      1 << 16,
		StatefulPrune: true,
		Monitor:       ref,
		TimeLimit:     budget.CellTime,
		MaxExecutions: budget.MaxExecutions,
	})
	cell.TotalStates = ref.Count()
	cell.TotalTimedOut = refRep.TimedOut || refRep.ExecBounded

	// Fair stateless search.
	fairCov := state.NewCoverage()
	fairRep := search.Explore(cfg.Body, search.Options{
		Fair:          true,
		ContextBound:  st.ContextBound,
		MaxSteps:      1 << 16,
		Monitor:       fairCov,
		TimeLimit:     budget.CellTime,
		MaxExecutions: budget.MaxExecutions,
	})
	cell.FairStates = fairCov.Count()
	cell.FairTime = fairRep.Elapsed
	cell.FairTimedOut = fairRep.TimedOut || fairRep.ExecBounded
	cell.Fair100 = len(fairCov.Missing(ref)) == 0

	// Unfair searches pruned at each depth bound, finished with the
	// seeded random tail.
	for _, db := range depthBounds {
		cov := state.NewCoverage()
		rep := search.Explore(cfg.Body, search.Options{
			Fair:          false,
			ContextBound:  st.ContextBound,
			DepthBound:    db,
			RandomTail:    true,
			MaxSteps:      int64(db) * 64,
			Monitor:       cov,
			Seed:          uint64(db),
			TimeLimit:     budget.CellTime,
			MaxExecutions: budget.MaxExecutions,
		})
		cell.NoFair[db] = Table2NoFairCell{
			States:   cov.Count(),
			Time:     rep.Elapsed,
			TimedOut: rep.TimedOut || rep.ExecBounded,
		}
	}
	return cell
}

// ----- Table 3 ----------------------------------------------------------

// Table3Row compares fair and unfair bug finding on one planted bug.
type Table3Row struct {
	Bug string
	// Fair search (cb=2).
	FairExecutions int64
	FairTime       time.Duration
	FairFound      bool
	// FairByDivergence marks detections via fair divergence (stranded
	// thread + retry loop) rather than an assertion/deadlock.
	FairByDivergence bool
	// Unfair search (cb=2, depth bound 250 with random tail).
	UnfairExecutions int64
	UnfairTime       time.Duration
	UnfairFound      bool
}

// Table3Bugs returns the seven planted-bug programs of Table 3.
func Table3Bugs() []string {
	return []string{
		"wsq-bug1-pop-fastpath",
		"wsq-bug2-lockfree-steal",
		"wsq-bug3-stale-head",
		"dryad-bug1-unlocked-occupancy",
		"dryad-bug2-read-after-release",
		"dryad-bug3-lost-wakeup",
		"dryad-bug4-reset-race",
	}
}

// Table3 measures executions and time to the first detection with and
// without fairness, with the paper's parameters: context bound 2, and
// depth bound 250 for the unfair search.
func Table3(bugs []string, budget Budget) []Table3Row {
	rows := make([]Table3Row, 0, len(bugs))
	for _, name := range bugs {
		p, ok := progs.Lookup(name)
		if !ok {
			panic("experiments: unknown program " + name)
		}
		row := Table3Row{Bug: name}

		fair := search.Explore(p.Body, search.Options{
			Fair:          true,
			ContextBound:  2,
			MaxSteps:      5000,
			TimeLimit:     budget.CellTime,
			MaxExecutions: budget.MaxExecutions,
		})
		row.FairTime = fair.Elapsed
		switch {
		case fair.FirstBug != nil:
			row.FairFound = true
			row.FairExecutions = fair.FirstBugExecution
		case fair.Divergence != nil:
			row.FairFound = true
			row.FairByDivergence = true
			row.FairExecutions = fair.DivergenceExecution
		}

		unfair := search.Explore(p.Body, search.Options{
			Fair:          false,
			ContextBound:  2,
			DepthBound:    250,
			RandomTail:    true,
			MaxSteps:      int64(250) * 64,
			Seed:          1,
			TimeLimit:     budget.CellTime,
			MaxExecutions: budget.MaxExecutions,
		})
		row.UnfairTime = unfair.Elapsed
		if unfair.FirstBug != nil {
			row.UnfairFound = true
			row.UnfairExecutions = unfair.FirstBugExecution
		}
		rows = append(rows, row)
	}
	return rows
}

// ----- §4.3 liveness findings -------------------------------------------

// LivenessRow is one §4.3 demonstration.
type LivenessRow struct {
	Program    string
	Found      bool
	Kind       liveness.Kind
	Executions int64
	Steps      int64 // length of the diverging execution
}

// LivenessDemos reproduces §4.3.1 (good-samaritan violation in the
// worker-group library) and §4.3.2 (livelock in Promise).
func LivenessDemos(budget Budget) []LivenessRow {
	// The per-case step bound is the divergence detector. The
	// philosophers' livelock needs many executions before DFS wanders
	// into the unrolled fair cycle, so it runs with a smaller bound.
	cases := []struct {
		name     string
		maxSteps int64
	}{
		{"workergroup-spin", 2000},
		{"promise-livelock", 2000},
		{"philosophers-try-2", 500},
		{"spinloop-noyield", 2000},
	}
	rows := make([]LivenessRow, 0, len(cases))
	for _, c := range cases {
		p, ok := progs.Lookup(c.name)
		if !ok {
			panic("experiments: unknown program " + c.name)
		}
		rep := search.Explore(p.Body, search.Options{
			Fair:          true,
			ContextBound:  -1,
			MaxSteps:      c.maxSteps,
			TimeLimit:     budget.CellTime,
			MaxExecutions: budget.MaxExecutions,
		})
		row := LivenessRow{Program: c.name}
		if rep.Divergence != nil {
			row.Found = true
			row.Executions = rep.DivergenceExecution
			row.Steps = rep.Divergence.Steps
			row.Kind = liveness.Classify(rep.Divergence, liveness.Options{}).Kind
		}
		rows = append(rows, row)
	}
	return rows
}

// ----- Extension: strategy comparison -------------------------------------

// StrategyRow compares bug-finding strategies on one planted bug.
type StrategyRow struct {
	Bug string
	// ExecutionsToBug per strategy; -1 = not found within budget.
	FairDFS    int64
	RandomWalk int64
	PCT        int64
}

// CompareStrategies races the systematic fair search (cb=2), the
// uniform random walk, and PCT (d=3) on the given bugs — an extension
// beyond the paper contrasting its systematic approach with the
// randomized CHESS-lineage schedulers that followed it.
func CompareStrategies(bugs []string, budget Budget) []StrategyRow {
	rows := make([]StrategyRow, 0, len(bugs))
	for _, name := range bugs {
		p, ok := progs.Lookup(name)
		if !ok {
			panic("experiments: unknown program " + name)
		}
		row := StrategyRow{Bug: name, FairDFS: -1, RandomWalk: -1, PCT: -1}

		runOne := func(opts search.Options) int64 {
			opts.MaxSteps = 5000
			opts.TimeLimit = budget.CellTime
			if budget.MaxExecutions > 0 {
				opts.MaxExecutions = budget.MaxExecutions
			} else if opts.RandomWalk || opts.PCT {
				opts.MaxExecutions = 200000
			}
			rep := search.Explore(p.Body, opts)
			switch {
			case rep.FirstBug != nil:
				return rep.FirstBugExecution
			case rep.Divergence != nil:
				return rep.DivergenceExecution
			default:
				return -1
			}
		}
		row.FairDFS = runOne(search.Options{Fair: true, ContextBound: 2})
		row.RandomWalk = runOne(search.Options{Fair: true, ContextBound: -1, RandomWalk: true, Seed: 1})
		row.PCT = runOne(search.Options{Fair: true, ContextBound: -1, PCT: true, PCTDepth: 3, Seed: 1})
		rows = append(rows, row)
	}
	return rows
}
