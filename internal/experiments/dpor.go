package experiments

import (
	"fmt"
	"reflect"
	"runtime"
	"time"

	"fairmc/conc"
	"fairmc/internal/obs"
	"fairmc/internal/search"
	"fairmc/progs"
)

// DporReductionRow compares how many executions a full unfair DFS,
// DPOR, and DPOR+sleep-sets explore to exhaust one subject's schedule
// tree. Reduction is PlainExecs over DporSleepExecs — the combined
// partial-order reduction factor.
type DporReductionRow struct {
	Program          string        `json:"program"`
	PlainExecs       int64         `json:"plain_execs"`
	PlainElapsed     time.Duration `json:"plain_elapsed_ns"`
	DporExecs        int64         `json:"dpor_execs"`
	DporElapsed      time.Duration `json:"dpor_elapsed_ns"`
	DporSleepExecs   int64         `json:"dpor_sleep_execs"`
	DporSleepElapsed time.Duration `json:"dpor_sleep_elapsed_ns"`
	Races            int64         `json:"races"`
	UnitsPruned      int64         `json:"units_pruned"`
	Reduction        float64       `json:"reduction"`
}

// DporBugRow compares executions to the first finding on a buggy
// subject: the plain DFS and DPOR stop at the same class of bug, DPOR
// after exploring a fraction of the interleavings.
type DporBugRow struct {
	Program    string `json:"program"`
	PlainExecs int64  `json:"plain_execs"`
	PlainFound bool   `json:"plain_found"`
	DporExecs  int64  `json:"dpor_execs"`
	DporFound  bool   `json:"dpor_found"`
}

// DporScaleRow is one point of the DPOR parallel sweep: the same
// work-unit frontier drained with a different worker count. Executions
// is constant across rows (units are merged in spawn order regardless
// of P) and Identical confirms the whole report matched the P=1 row.
type DporScaleRow struct {
	Parallelism int           `json:"parallelism"`
	Executions  int64         `json:"executions"`
	Elapsed     time.Duration `json:"elapsed_ns"`
	ExecsPerSec float64       `json:"execs_per_sec"`
	Speedup     float64       `json:"speedup"`
	Identical   bool          `json:"identical"`
}

// DporReport bundles the DPOR evaluation: reduction vs the full DFS,
// bug-finding economy, and scaling of the work-unit frontier at -p,
// with the host facts a reader needs to interpret the scaling rows.
type DporReport struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	// Warning is set when the host cannot actually exercise the sweep's
	// parallelism (NumCPU below the largest worker count): the speedup
	// column then measures scheduling overhead, not scaling.
	Warning      string             `json:"warning,omitempty"`
	Reduction    []DporReductionRow `json:"reduction"`
	Bug          []DporBugRow       `json:"bug"`
	ScaleProgram string             `json:"scale_program"`
	Scale        []DporScaleRow     `json:"scale"`
}

// dporBase are the option shared by every cell: DPOR's precondition is
// an unfair, terminating subject, so the fair scheduler stays off and
// the step bound is the divergence backstop.
func dporBase() search.Options {
	return search.Options{Fair: false, ContextBound: -1, MaxSteps: 5000}
}

// dporSubject resolves a registered program or panics — a sweep over a
// missing subject is a harness bug, not a measurement.
func dporSubject(name string) func(*conc.T) {
	p, ok := progs.Lookup(name)
	if !ok {
		panic(fmt.Sprintf("experiments: subject %q missing", name))
	}
	return p.Body
}

// DporSweep measures DPOR against the plain unfair DFS: executions to
// exhaust clean subjects (with and without sleep sets on top), and
// executions to the first finding on a buggy one, then drains one
// subject's work-unit frontier at each worker count. quick shrinks the
// subject list to the cheap cells.
func DporSweep(workers []int, quick bool) DporReport {
	out := DporReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	maxW := 0
	for _, p := range workers {
		if p > maxW {
			maxW = p
		}
	}
	if out.NumCPU < maxW {
		out.Warning = fmt.Sprintf(
			"host has %d CPU(s) but the sweep asks for up to %d workers: "+
				"rows collapse toward single-thread throughput and speedup is not meaningful",
			out.NumCPU, maxW)
	}

	cleans := []string{"barrier-bug", "boundedbuffer"}
	if quick {
		cleans = cleans[:1]
	}
	for _, name := range cleans {
		body := dporSubject(name)
		plain := search.Explore(body, dporBase())
		dporOpts := dporBase()
		dporOpts.DPOR = true
		m := &obs.Metrics{}
		dporOpts.Metrics = m
		dpor := search.Explore(body, dporOpts)
		dporOpts.Metrics = nil
		bothOpts := dporOpts
		bothOpts.SleepSets = true
		both := search.Explore(body, bothOpts)
		row := DporReductionRow{
			Program:          name,
			PlainExecs:       plain.Executions,
			PlainElapsed:     plain.Elapsed,
			DporExecs:        dpor.Executions,
			DporElapsed:      dpor.Elapsed,
			DporSleepExecs:   both.Executions,
			DporSleepElapsed: both.Elapsed,
			Races:            m.Snapshot().DporRaces,
			UnitsPruned:      m.Snapshot().DporUnitsPruned,
		}
		if both.Executions > 0 {
			row.Reduction = float64(plain.Executions) / float64(both.Executions)
		}
		out.Reduction = append(out.Reduction, row)
	}

	if !quick {
		body := dporSubject("msqueue-bug")
		plain := search.Explore(body, dporBase())
		dporOpts := dporBase()
		dporOpts.DPOR = true
		dpor := search.Explore(body, dporOpts)
		out.Bug = append(out.Bug, DporBugRow{
			Program:    "msqueue-bug",
			PlainExecs: plain.Executions,
			PlainFound: plain.FirstBug != nil,
			DporExecs:  dpor.Executions,
			DporFound:  dpor.FirstBug != nil,
		})
	}

	out.ScaleProgram = "boundedbuffer"
	scaleOpts := dporBase()
	scaleOpts.DPOR = true
	if quick {
		// The sleep-set frontier is two orders of magnitude smaller;
		// quick mode trades measurement weight for wall clock.
		scaleOpts.SleepSets = true
	}
	var ref *search.Report
	var base float64
	for _, p := range workers {
		opts := scaleOpts
		opts.Parallelism = p
		rep := search.Explore(dporSubject(out.ScaleProgram), opts)
		row := DporScaleRow{
			Parallelism: p,
			Executions:  rep.Executions,
			Elapsed:     rep.Elapsed,
			ExecsPerSec: float64(rep.Executions) / rep.Elapsed.Seconds(),
		}
		if ref == nil {
			ref = rep
			base = row.ExecsPerSec
		}
		row.Speedup = row.ExecsPerSec / base
		norm := func(r *search.Report) search.Report {
			c := *r
			c.Elapsed = 0
			return c
		}
		row.Identical = reflect.DeepEqual(norm(ref), norm(rep))
		out.Scale = append(out.Scale, row)
	}
	return out
}
