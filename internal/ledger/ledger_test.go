package ledger

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"fairmc/internal/faultinject"
	"fairmc/internal/fsx"
	"fairmc/internal/obs"
)

type payload struct {
	N int    `json:"n"`
	S string `json:"s,omitempty"`
}

func appendN(t *testing.T, l *Ledger, n int, tag string) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := l.Append("test", payload{N: i, S: tag}, true); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func open(t *testing.T, dir string, opts Options) (*Ledger, *Recovery) {
	t.Helper()
	l, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := open(t, dir, Options{})
	if len(rec.Records) != 0 {
		t.Fatalf("fresh ledger replayed %d records", len(rec.Records))
	}
	appendN(t, l, 10, "a")
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec2 := open(t, dir, Options{})
	defer l2.Close()
	if len(rec2.Records) != 10 {
		t.Fatalf("replayed %d records, want 10", len(rec2.Records))
	}
	for i, r := range rec2.Records {
		if r.Seq != uint64(i+1) || r.Type != "test" {
			t.Fatalf("record %d: seq=%d type=%q", i, r.Seq, r.Type)
		}
		var p payload
		if err := json.Unmarshal(r.Data, &p); err != nil || p.N != i {
			t.Fatalf("record %d payload: %s (%v)", i, r.Data, err)
		}
	}
	// Sequence numbers continue after restart.
	seq, err := l2.Append("test", payload{N: 10}, true)
	if err != nil || seq != 11 {
		t.Fatalf("post-restart append: seq=%d err=%v", seq, err)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, _ := open(t, dir, Options{SegmentBytes: 256})
	appendN(t, l, 40, strings.Repeat("x", 32))
	l.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %v", segs)
	}
	l2, rec := open(t, dir, Options{SegmentBytes: 256})
	defer l2.Close()
	if len(rec.Records) != 40 {
		t.Fatalf("replayed %d records across segments, want 40", len(rec.Records))
	}
	for i, r := range rec.Records {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d out of order: seq=%d", i, r.Seq)
		}
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _ := open(t, dir, Options{})
	appendN(t, l, 5, "keep")
	l.Close()

	// Tear the tail: append half of a plausible frame.
	seg := filepath.Join(dir, "wal-00000000.seg")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{40, 0, 0, 0, 0xde, 0xad}) // length=40, torn mid-CRC
	f.Close()
	before, _ := os.Stat(seg)

	m := obs.NewMetrics()
	l2, rec := open(t, dir, Options{Metrics: m})
	if rec.TornTails != 1 {
		t.Fatalf("TornTails = %d, want 1", rec.TornTails)
	}
	if len(rec.Records) != 5 || len(rec.Quarantined) != 0 {
		t.Fatalf("records=%d quarantined=%d", len(rec.Records), len(rec.Quarantined))
	}
	after, _ := os.Stat(seg)
	if after.Size() >= before.Size() {
		t.Fatalf("torn tail not truncated: %d -> %d", before.Size(), after.Size())
	}
	if m.LedgerTornTails.Load() != 1 || m.LedgerReplayed.Load() != 5 {
		t.Fatalf("metrics: tornTails=%d replayed=%d", m.LedgerTornTails.Load(), m.LedgerReplayed.Load())
	}
	// Appends continue cleanly on the repaired tail.
	if seq, err := l2.Append("test", payload{N: 5}, true); err != nil || seq != 6 {
		t.Fatalf("append after repair: seq=%d err=%v", seq, err)
	}
	l2.Close()
	_, rec3 := open(t, dir, Options{})
	if len(rec3.Records) != 6 {
		t.Fatalf("after repair+append replay got %d records, want 6", len(rec3.Records))
	}
}

func TestMidSegmentCorruptionQuarantines(t *testing.T) {
	dir := t.TempDir()
	l, _ := open(t, dir, Options{SegmentBytes: 256})
	appendN(t, l, 40, strings.Repeat("x", 32))
	l.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 3 {
		t.Fatalf("need >=3 segments, got %d", len(segs))
	}
	// Flip one payload byte in the middle of a NON-last segment.
	victim := segs[1]
	data, _ := os.ReadFile(victim)
	data[len(data)/2] ^= 0xff
	os.WriteFile(victim, data, 0o644)

	m := obs.NewMetrics()
	l2, rec := open(t, dir, Options{SegmentBytes: 256, Metrics: m})
	defer l2.Close()
	if len(rec.Quarantined) != 1 {
		t.Fatalf("Quarantined = %+v, want 1 entry", rec.Quarantined)
	}
	q := rec.Quarantined[0]
	if q.Segment != filepath.Base(victim) || q.Reason == "" {
		t.Fatalf("quarantine report: %+v", q)
	}
	if _, err := os.Stat(victim + ".quar"); err != nil {
		t.Fatalf("quarantined segment not sealed aside: %v", err)
	}
	if _, err := os.Stat(victim); !os.IsNotExist(err) {
		t.Fatalf("original corrupt segment still present: %v", err)
	}
	// Records before the corruption and from later segments survive.
	if len(rec.Records) >= 40 || len(rec.Records) == 0 {
		t.Fatalf("replayed %d records, want partial set", len(rec.Records))
	}
	for i := 1; i < len(rec.Records); i++ {
		if rec.Records[i].Seq <= rec.Records[i-1].Seq {
			t.Fatal("replayed records out of order")
		}
	}
	if m.LedgerQuarantines.Load() != 1 {
		t.Fatalf("LedgerQuarantines = %d", m.LedgerQuarantines.Load())
	}
}

func TestReadCorruptionCaughtByCRC(t *testing.T) {
	dir := t.TempDir()
	l, _ := open(t, dir, Options{})
	appendN(t, l, 8, "r")
	l.Close()

	// Every ReadFile flips one bit — the CRC must catch it; the only
	// acceptable outcomes are torn-tail truncation (bit in last frame)
	// or quarantine (bit elsewhere), never silently wrong data.
	in := faultinject.NewFS(11, faultinject.FSScenario{
		Rules: []faultinject.FSRule{{Path: "wal-", ReadCorrupt: 1}},
	}, fsx.OS)
	m := &obs.Metrics{}
	in.OnFault = func(string) { m.FSFaultsInjected.Inc() }
	l2, rec, err := Open(dir, Options{FS: in, Metrics: m})
	if err != nil {
		t.Fatalf("Open under read corruption: %v", err)
	}
	defer l2.Close()
	if rec.TornTails+len(rec.Quarantined) == 0 {
		t.Fatalf("corrupted read not detected: %d records, %d torn, %d quar",
			len(rec.Records), rec.TornTails, len(rec.Quarantined))
	}
	snap := m.Snapshot()
	if snap.FSFaultsInjected == 0 {
		t.Fatal("fault injector fired without counting FSFaultsInjected")
	}
	if snap.LedgerTornTails+snap.LedgerQuarantines == 0 {
		t.Fatalf("repair happened but was not counted: %+v", snap)
	}
	for _, r := range rec.Records {
		var p payload
		if err := json.Unmarshal(r.Data, &p); err != nil || p.S != "r" {
			t.Fatalf("surviving record is corrupt: %s", r.Data)
		}
	}
}

func TestSyncErrorSurfacesAndFreezes(t *testing.T) {
	dir := t.TempDir()
	in := faultinject.NewFS(2, faultinject.FSScenario{
		Rules: []faultinject.FSRule{{Path: "wal-", SyncErr: 1}},
	}, fsx.OS)
	// Segment creation itself syncs; with SyncErr=1 Open must fail
	// loudly rather than continue on an undurable segment.
	if _, _, err := Open(dir, Options{FS: in}); err == nil {
		t.Fatal("Open with failing fsync should error")
	}

	// Now a ledger that opens clean but whose appends hit sync errors.
	dir2 := t.TempDir()
	l, _ := open(t, dir2, Options{})
	l.Close()
	in2 := faultinject.NewFS(2, faultinject.FSScenario{
		Rules: []faultinject.FSRule{{Path: "wal-", SyncErr: 1}},
	}, fsx.OS)
	// Opening an existing ledger only stats + opens the tail, no sync.
	l2, _, err := Open(dir2, Options{FS: in2})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if _, err := l2.Append("test", payload{N: 1}, true); err == nil {
		t.Fatal("synced append with failing fsync should error")
	}
	// The ledger freezes after a failed commit: later appends fail too.
	if _, err := l2.Append("test", payload{N: 2}, true); err == nil {
		t.Fatal("append after freeze should error")
	}
}

func TestShortWriteFreezesThenRecovers(t *testing.T) {
	dir := t.TempDir()
	l, _ := open(t, dir, Options{})
	appendN(t, l, 3, "pre")
	l.Close()

	// Exactly the 4th write to the tail tears (ordinal-scheduled).
	in := faultinject.NewFS(5, faultinject.FSScenario{
		Rules: []faultinject.FSRule{{Path: "wal-", ShortWrite: 1}},
	}, fsx.OS)
	l2, _, err := Open(dir, Options{FS: in})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if _, err := l2.Append("test", payload{N: 99}, true); err == nil {
		t.Fatal("torn append should error")
	}
	l2.Close()

	// Recovery truncates the torn frame; the 3 committed records and
	// append capability survive.
	l3, rec := open(t, dir, Options{})
	defer l3.Close()
	if len(rec.Records) != 3 || rec.TornTails != 1 {
		t.Fatalf("records=%d tornTails=%d, want 3/1", len(rec.Records), rec.TornTails)
	}
	if seq, err := l3.Append("test", payload{N: 4}, true); err != nil || seq != 4 {
		t.Fatalf("append after recovery: seq=%d err=%v", seq, err)
	}
}

func TestFreeze(t *testing.T) {
	l, _ := open(t, t.TempDir(), Options{})
	if _, err := l.Append("test", payload{N: 1}, true); err != nil {
		t.Fatal(err)
	}
	l.Freeze()
	if _, err := l.Append("test", payload{N: 2}, true); err == nil {
		t.Fatal("append after Freeze should fail")
	}
	if err := l.Close(); err == nil {
		t.Fatal("Close after Freeze should not report clean shutdown")
	}
}

func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l, _ := open(t, dir, Options{SegmentBytes: 512})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := l.Append("test", payload{N: g*100 + i}, i%5 == 0); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	l.Close()

	_, rec := open(t, dir, Options{})
	if len(rec.Records) != 200 {
		t.Fatalf("replayed %d records, want 200", len(rec.Records))
	}
	seen := map[uint64]bool{}
	for _, r := range rec.Records {
		if seen[r.Seq] {
			t.Fatalf("duplicate seq %d", r.Seq)
		}
		seen[r.Seq] = true
	}
}

func TestImplausibleLengthIsCorruption(t *testing.T) {
	dir := t.TempDir()
	l, _ := open(t, dir, Options{SegmentBytes: 128})
	appendN(t, l, 10, strings.Repeat("y", 24))
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 2 {
		t.Fatalf("need 2 segments, got %d", len(segs))
	}
	// Stamp a giant length field over a mid-file frame of segment 0.
	data, _ := os.ReadFile(segs[0])
	copy(data[len(segMagic):], []byte{0xff, 0xff, 0xff, 0x7f})
	os.WriteFile(segs[0], data, 0o644)

	l2, rec := open(t, dir, Options{SegmentBytes: 128})
	defer l2.Close()
	if len(rec.Quarantined) != 1 || !strings.Contains(rec.Quarantined[0].Reason, "length") {
		t.Fatalf("quarantine = %+v", rec.Quarantined)
	}
}

func TestBadMagicQuarantined(t *testing.T) {
	dir := t.TempDir()
	l, _ := open(t, dir, Options{SegmentBytes: 128})
	appendN(t, l, 10, strings.Repeat("z", 24))
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 2 {
		t.Fatalf("need 2 segments, got %d", len(segs))
	}
	data, _ := os.ReadFile(segs[0])
	copy(data, "XXXXXXXX")
	os.WriteFile(segs[0], data, 0o644)

	l2, rec := open(t, dir, Options{SegmentBytes: 128})
	defer l2.Close()
	if len(rec.Quarantined) != 1 || rec.Quarantined[0].Reason != "bad segment magic" {
		t.Fatalf("quarantine = %+v", rec.Quarantined)
	}
}

func TestTornSegmentCreationRemoved(t *testing.T) {
	dir := t.TempDir()
	l, _ := open(t, dir, Options{})
	appendN(t, l, 2, "a")
	l.Close()
	// Simulate a crash during creation of the NEXT segment: a file with
	// only half the magic.
	os.WriteFile(filepath.Join(dir, "wal-00000001.seg"), []byte("FMC"), 0o644)

	l2, rec := open(t, dir, Options{})
	defer l2.Close()
	if rec.TornTails != 1 || len(rec.Records) != 2 {
		t.Fatalf("tornTails=%d records=%d", rec.TornTails, len(rec.Records))
	}
	if seq, err := l2.Append("test", payload{N: 9}, true); err != nil || seq != 3 {
		t.Fatalf("append: seq=%d err=%v", seq, err)
	}
}

func TestCrashAtEveryAppendBoundary(t *testing.T) {
	// For each k, freeze the ledger after k successful appends, then
	// reopen and check all k records are intact and appendable.
	for k := 0; k <= 6; k++ {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			dir := t.TempDir()
			l, _ := open(t, dir, Options{SegmentBytes: 200})
			for i := 0; i < k; i++ {
				if _, err := l.Append("test", payload{N: i}, true); err != nil {
					t.Fatal(err)
				}
			}
			l.Freeze() // kill -9 from the disk's perspective

			l2, rec := open(t, dir, Options{SegmentBytes: 200})
			defer l2.Close()
			if len(rec.Records) != k {
				t.Fatalf("replayed %d, want %d", len(rec.Records), k)
			}
			if seq, err := l2.Append("test", payload{N: k}, true); err != nil || seq != uint64(k+1) {
				t.Fatalf("append: seq=%d err=%v", seq, err)
			}
		})
	}
}
