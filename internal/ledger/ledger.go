// Package ledger is the durable memory of the checking service: an
// append-only, segmented write-ahead log that records every commitment
// the jobs layer makes — submissions, shard grants and completions,
// findings, final reports — so a kill -9'd coordinator can restart,
// replay the log, and resume with nothing lost but in-flight work.
//
// Design, in order of what it defends against:
//
//   - Process crash mid-append: every record is framed as
//     [u32 length][u32 CRC32C][payload]; a crash can only tear the
//     LAST record of the LAST segment, and recovery truncates that
//     torn tail so appends continue on a clean boundary. The frame
//     is written with a single Write call, so the tail is a prefix.
//   - Lost directory entries: segment creation and rotation fsync the
//     parent directory (via internal/fsx), so a crash cannot roll a
//     visible segment back out of the namespace.
//   - Silent media corruption: a record whose CRC32C fails in the
//     MIDDLE of the log (not the writable tail) cannot be repaired by
//     truncation without discarding good later records, so the whole
//     segment is sealed aside (renamed *.quar), the loss is reported
//     structurally in Recovery.Quarantined, and replay continues with
//     later segments. Never a panic, never a silent skip.
//
// The ledger knows nothing about jobs or shards: records are
// (seq, type, JSON payload) triples, and the jobs layer owns the
// schema. Sequence numbers are assigned by the ledger and strictly
// increase across restarts, so replay order is total and duplicated
// appends are detectable by the layer above.
package ledger

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"fairmc/internal/fsx"
	"fairmc/internal/obs"
)

// segMagic is the 8-byte header of every segment file.
const segMagic = "FMCWAL01"

// maxRecordLen bounds a single record frame. A length field above this
// is treated as corruption (a garbage frame would otherwise make
// recovery try to allocate gigabytes).
const maxRecordLen = 64 << 20

// defaultSegmentBytes is the rotation threshold: a segment that has
// grown past this size is sealed and a new one started.
const defaultSegmentBytes = 4 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record is one replayed ledger entry.
type Record struct {
	// Seq is the ledger-assigned sequence number, strictly increasing
	// across segments and restarts.
	Seq uint64 `json:"seq"`
	// Type names the record schema (owned by the layer above).
	Type string `json:"type"`
	// Data is the record payload, opaque to the ledger.
	Data json.RawMessage `json:"data,omitempty"`
}

// QuarantineReport describes one segment sealed aside during recovery
// because a non-tail record failed validation.
type QuarantineReport struct {
	// Segment is the original segment file name (now renamed to
	// Segment + ".quar").
	Segment string `json:"segment"`
	// Offset is the byte offset of the first bad frame.
	Offset int64 `json:"offset"`
	// Reason describes what failed (CRC mismatch, bad length, ...).
	Reason string `json:"reason"`
	// RecordsKept is how many records earlier in the segment were
	// intact and replayed before the corruption.
	RecordsKept int `json:"recordsKept"`
}

// Recovery is what Open learned from the existing log.
type Recovery struct {
	// Records are the intact records of all readable segments, in
	// sequence order.
	Records []Record
	// Quarantined lists segments sealed aside for corruption.
	Quarantined []QuarantineReport
	// TornTails counts partially-written tail records truncated (0 or
	// 1 per open in practice; counted for telemetry).
	TornTails int
}

// Options configures Open.
type Options struct {
	// FS is the filesystem to use; nil means the real one. Tests
	// substitute a faultinject.FSInjector.
	FS fsx.FS
	// SegmentBytes is the rotation threshold; 0 means the default
	// (4 MiB).
	SegmentBytes int64
	// Metrics, when set, receives ledger counters (appends, replays,
	// torn tails, quarantines).
	Metrics *obs.Metrics
	// Logf, when set, receives recovery notices (torn tail truncated,
	// segment quarantined).
	Logf func(format string, args ...any)
}

// Ledger is an open write-ahead log. Append is safe for concurrent
// use.
type Ledger struct {
	dir  string
	fs   fsx.FS
	opts Options

	mu      sync.Mutex
	f       fsx.File // current segment, opened for append
	segIdx  int      // index of the current segment
	segSize int64    // bytes written to the current segment
	nextSeq uint64
	frozen  bool
}

// Open opens (or creates) the ledger in dir, replaying existing
// segments. It returns the open ledger and what recovery found; the
// caller rebuilds its state from Recovery.Records before appending.
func Open(dir string, opts Options) (*Ledger, *Recovery, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = fsx.OS
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("ledger: mkdir %s: %w", dir, err)
	}

	l := &Ledger{dir: dir, fs: fsys, opts: opts, nextSeq: 1}
	rec, err := l.replay()
	if err != nil {
		return nil, nil, err
	}
	if err := l.openTail(); err != nil {
		return nil, nil, err
	}
	if m := opts.Metrics; m != nil {
		m.LedgerReplayed.Add(int64(len(rec.Records)))
		m.LedgerTornTails.Add(int64(rec.TornTails))
		m.LedgerQuarantines.Add(int64(len(rec.Quarantined)))
	}
	return l, rec, nil
}

func (l *Ledger) segPath(idx int) string {
	return filepath.Join(l.dir, fmt.Sprintf("wal-%08d.seg", idx))
}

// segments lists existing segment files in index order.
func (l *Ledger) segments() ([]string, error) {
	names, err := l.fs.Glob(filepath.Join(l.dir, "wal-*.seg"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	return names, nil
}

// segIndex parses the numeric index out of a segment path.
func segIndex(path string) (int, bool) {
	base := filepath.Base(path)
	if !strings.HasPrefix(base, "wal-") || !strings.HasSuffix(base, ".seg") {
		return 0, false
	}
	var idx int
	if _, err := fmt.Sscanf(base, "wal-%08d.seg", &idx); err != nil {
		return 0, false
	}
	return idx, true
}

// replay reads every segment, applying the repair policy: a bad frame
// at the tail of the LAST segment is truncated (torn write from a
// crash); a bad frame anywhere else quarantines its segment.
func (l *Ledger) replay() (*Recovery, error) {
	segs, err := l.segments()
	if err != nil {
		return nil, fmt.Errorf("ledger: list segments: %w", err)
	}
	rec := &Recovery{}
	var maxSeq uint64
	for i, seg := range segs {
		last := i == len(segs)-1
		idx, ok := segIndex(seg)
		if !ok {
			continue
		}
		if idx >= l.segIdx {
			l.segIdx = idx
		}
		records, badOff, badReason, err := readSegment(l.fs, seg)
		if err != nil {
			return nil, err
		}
		switch {
		case badReason == "":
			// Fully intact.
		case last && badReason == "missing segment magic":
			// Crash during segment creation: the header itself is torn.
			// Nothing in the file is usable; remove it and let openTail
			// recreate the segment at the same index.
			if err := l.fs.Remove(seg); err != nil {
				return nil, fmt.Errorf("ledger: remove torn segment %s: %w", seg, err)
			}
			rec.TornTails++
			l.logf("ledger: removed torn empty segment %s (%s)", filepath.Base(seg), badReason)
		case badReason == "bad segment magic" || badReason == "missing segment magic":
			// A sealed segment whose header is wrong is corruption, not
			// a torn append: quarantine it whole.
			if err := l.fs.Rename(seg, seg+".quar"); err != nil {
				return nil, fmt.Errorf("ledger: quarantine %s: %w", seg, err)
			}
			rec.Quarantined = append(rec.Quarantined, QuarantineReport{
				Segment: filepath.Base(seg),
				Offset:  badOff,
				Reason:  badReason,
			})
			l.logf("ledger: quarantined %s (%s)", filepath.Base(seg), badReason)
		case last:
			// Torn tail: the crash tore the final append. Truncate to
			// the last good frame boundary so appends continue.
			if err := l.fs.Truncate(seg, badOff); err != nil {
				return nil, fmt.Errorf("ledger: truncate torn tail of %s: %w", seg, err)
			}
			rec.TornTails++
			l.logf("ledger: truncated torn tail of %s at offset %d (%s)",
				filepath.Base(seg), badOff, badReason)
		default:
			// Corruption in a sealed segment: records after the bad
			// frame are unreachable (framing is lost), so seal the
			// whole segment aside and report it. Records before the
			// corruption were already collected and stay replayed.
			if err := l.fs.Rename(seg, seg+".quar"); err != nil {
				return nil, fmt.Errorf("ledger: quarantine %s: %w", seg, err)
			}
			rec.Quarantined = append(rec.Quarantined, QuarantineReport{
				Segment:     filepath.Base(seg),
				Offset:      badOff,
				Reason:      badReason,
				RecordsKept: len(records),
			})
			l.logf("ledger: quarantined %s (offset %d: %s), %d records kept",
				filepath.Base(seg), badOff, badReason, len(records))
		}
		for _, r := range records {
			if r.Seq > maxSeq {
				maxSeq = r.Seq
			}
		}
		rec.Records = append(rec.Records, records...)
	}
	sort.SliceStable(rec.Records, func(i, j int) bool {
		return rec.Records[i].Seq < rec.Records[j].Seq
	})
	l.nextSeq = maxSeq + 1
	return rec, nil
}

// readSegment parses one segment file. It returns the intact records,
// and — if a frame failed — the offset of the first bad frame and a
// reason ("" means the segment is fully intact).
func readSegment(fsys fsx.FS, path string) (records []Record, badOff int64, badReason string, err error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, 0, "", fmt.Errorf("ledger: read %s: %w", path, err)
	}
	if len(data) < len(segMagic) {
		return nil, 0, "missing segment magic", nil
	}
	if string(data[:len(segMagic)]) != segMagic {
		return nil, 0, "bad segment magic", nil
	}
	off := int64(len(segMagic))
	for int(off) < len(data) {
		rest := data[off:]
		if len(rest) < 8 {
			return records, off, "truncated frame header", nil
		}
		length := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if length > maxRecordLen {
			return records, off, fmt.Sprintf("implausible record length %d", length), nil
		}
		if len(rest) < 8+int(length) {
			return records, off, "truncated record payload", nil
		}
		payload := rest[8 : 8+int(length)]
		if crc32.Checksum(payload, crcTable) != sum {
			return records, off, "crc mismatch", nil
		}
		var r Record
		if jerr := json.Unmarshal(payload, &r); jerr != nil {
			return records, off, fmt.Sprintf("bad record json: %v", jerr), nil
		}
		records = append(records, r)
		off += 8 + int64(length)
	}
	return records, 0, "", nil
}

// openTail opens the last segment for appending (creating the first
// segment if the ledger is empty).
func (l *Ledger) openTail() error {
	path := l.segPath(l.segIdx)
	st, err := l.fs.Stat(path)
	switch {
	case err == nil:
		f, oerr := l.fs.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if oerr != nil {
			return fmt.Errorf("ledger: open tail segment: %w", oerr)
		}
		l.f = f
		l.segSize = st.Size()
		return nil
	case os.IsNotExist(err):
		return l.newSegmentLocked()
	default:
		return fmt.Errorf("ledger: stat tail segment: %w", err)
	}
}

// newSegmentLocked creates segment l.segIdx with its magic header and
// fsyncs the directory so the new file survives a crash.
func (l *Ledger) newSegmentLocked() error {
	path := l.segPath(l.segIdx)
	f, err := l.fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("ledger: create segment: %w", err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return fmt.Errorf("ledger: write segment magic: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("ledger: sync new segment: %w", err)
	}
	if err := fsx.SyncDir(l.fs, l.dir); err != nil {
		f.Close()
		return fmt.Errorf("ledger: sync dir: %w", err)
	}
	l.f = f
	l.segSize = int64(len(segMagic))
	return nil
}

// Append durably adds a record. The payload v is JSON-encoded into the
// record's data field; sync forces an fsync before returning (commit
// points — shard completions, job state transitions — must sync;
// advisory records like grants may ride along with the next sync).
// The assigned sequence number is returned.
func (l *Ledger) Append(recType string, v any, sync bool) (uint64, error) {
	var data json.RawMessage
	if v != nil {
		b, err := json.Marshal(v)
		if err != nil {
			return 0, fmt.Errorf("ledger: marshal %s: %w", recType, err)
		}
		data = b
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.frozen {
		return 0, fmt.Errorf("ledger: frozen")
	}
	if l.f == nil {
		return 0, fmt.Errorf("ledger: closed")
	}

	seq := l.nextSeq
	payload, err := json.Marshal(Record{Seq: seq, Type: recType, Data: data})
	if err != nil {
		return 0, fmt.Errorf("ledger: marshal record: %w", err)
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	copy(frame[8:], payload)

	// One Write call per frame: a crash mid-write leaves a prefix of
	// the frame, which recovery recognizes as a torn tail.
	if _, err := l.f.Write(frame); err != nil {
		// The tail may now hold a partial frame; recovery will truncate
		// it. Refuse further appends so the caller fails loudly.
		l.frozen = true
		return 0, fmt.Errorf("ledger: append %s: %w", recType, err)
	}
	l.segSize += int64(len(frame))
	if sync {
		if err := l.f.Sync(); err != nil {
			l.frozen = true
			return 0, fmt.Errorf("ledger: sync %s: %w", recType, err)
		}
	}
	l.nextSeq = seq + 1
	if m := l.opts.Metrics; m != nil {
		m.LedgerAppends.Inc()
	}

	if l.segSize >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// rotateLocked seals the current segment (fsync) and starts the next.
func (l *Ledger) rotateLocked() error {
	if err := l.f.Sync(); err != nil {
		l.frozen = true
		return fmt.Errorf("ledger: sync before rotate: %w", err)
	}
	if err := l.f.Close(); err != nil {
		l.frozen = true
		return fmt.Errorf("ledger: close before rotate: %w", err)
	}
	l.segIdx++
	if err := l.newSegmentLocked(); err != nil {
		l.frozen = true
		return err
	}
	return nil
}

// Sync forces pending appends to disk.
func (l *Ledger) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.frozen || l.f == nil {
		return fmt.Errorf("ledger: frozen or closed")
	}
	return l.f.Sync()
}

// Freeze makes every future Append fail without touching the file —
// from the disk's perspective, the process is dead. The crash-recovery
// harness uses it to simulate kill -9 at a precise point.
func (l *Ledger) Freeze() {
	l.mu.Lock()
	l.frozen = true
	l.mu.Unlock()
}

// Close syncs and closes the tail segment.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	f := l.f
	l.f = nil
	serr := f.Sync()
	if cerr := f.Close(); serr == nil {
		serr = cerr
	}
	if l.frozen {
		// A frozen ledger's last write may be torn; don't report a
		// clean close.
		return fmt.Errorf("ledger: closed after freeze")
	}
	return serr
}

func (l *Ledger) logf(format string, args ...any) {
	if l.opts.Logf != nil {
		l.opts.Logf(format, args...)
	}
}
