package obs

import "encoding/json"

// ReportSchema identifies the run-report JSON layout; bump it on any
// field change. docs/run-report.schema.json (checked by the CI smoke
// step) must match. v2 added the memory-model options (memModel,
// tsoBufCap) and the weak-memory counters.
const ReportSchema = "fairmc/run-report/v2"

// RunReport is the final machine-readable summary of a search,
// assembled by the fairmc facade from the merged search report.
//
// Unlike a live Metrics snapshot, every field here is deterministic:
// for a fixed program, options, and seed the encoded report is
// byte-identical at any Parallelism and across checkpoint/resume,
// because it is derived only from counters the search merges in
// frontier/index order (and deliberately excludes wall-clock time,
// worker counts, and anything else that varies run to run).
type RunReport struct {
	// Schema is always ReportSchema.
	Schema string `json:"schema"`
	// Program is the name of the program under test (Options.
	// ProgramName or the CLI's program argument).
	Program string `json:"program"`
	// Strategy is the search strategy: "dfs", "random", or "pct".
	Strategy string `json:"strategy"`
	// Seed drives the random strategies and random tails.
	Seed uint64 `json:"seed"`

	Options  RunOptions  `json:"options"`
	Counters RunCounters `json:"counters"`
	Outcome  RunOutcome  `json:"outcome"`
	// Findings lists the search's findings (first bug, first
	// divergence, first wedge) in execution order.
	Findings []RunFinding `json:"findings"`
}

// RunOptions echoes the semantically relevant search options, so a
// report is self-describing.
type RunOptions struct {
	Fair         bool  `json:"fair"`
	FairK        int   `json:"fairK"`
	ContextBound int   `json:"contextBound"`
	DepthBound   int   `json:"depthBound,omitempty"`
	RandomTail   bool  `json:"randomTail,omitempty"`
	PCTDepth     int   `json:"pctDepth,omitempty"`
	MaxSteps     int64 `json:"maxSteps"`
	Conformance  bool  `json:"conformance"`
	// MemModel is the memory model searched under ("sc" or "tso");
	// TSOBufCap the per-thread store-buffer capacity (0 = unbounded,
	// meaningful only under TSO).
	MemModel  string `json:"memModel"`
	TSOBufCap int    `json:"tsoBufCap,omitempty"`
}

// RunCounters are the merged, deterministic search counters.
type RunCounters struct {
	Executions     int64 `json:"executions"`
	TotalSteps     int64 `json:"totalSteps"`
	MaxDepth       int64 `json:"maxDepth"`
	Yields         int64 `json:"yields"`
	EdgeAdds       int64 `json:"edgeAdds"`
	EdgeErases     int64 `json:"edgeErases"`
	FairBlocked    int64 `json:"fairBlocked"`
	NonTerminating int64 `json:"nonTerminating"`
	PrunedVisited  int64 `json:"prunedVisited"`
	PrunedSleep    int64 `json:"prunedSleep"`
	Deadlocks      int64 `json:"deadlocks"`
	Violations     int64 `json:"violations"`
	Wedges         int64 `json:"wedges"`
	Quarantined    int64 `json:"quarantined"`
	Skipped        int64 `json:"skipped"`
	Races          int64 `json:"races"`
	// Weak-memory counters (zero under SC with no wm.Memory use):
	// stores buffered, flush steps scheduled, fences completed, and
	// loads served by store-to-load forwarding.
	BufferedStores int64 `json:"bufferedStores"`
	Flushes        int64 `json:"flushes"`
	Fences         int64 `json:"fences"`
	Forwards       int64 `json:"forwards"`
}

// RunOutcome describes how the search stopped.
type RunOutcome struct {
	// Exhausted reports full exploration of the schedule tree.
	Exhausted bool `json:"exhausted"`
	// ExecBounded / TimedOut / Interrupted report which budget or
	// signal stopped the search instead.
	ExecBounded bool `json:"execBounded"`
	TimedOut    bool `json:"timedOut"`
	Interrupted bool `json:"interrupted"`
}

// RunFinding is one finding in the report: Kind is "violation",
// "deadlock", "livelock" (diverging fair execution), or "wedge".
type RunFinding struct {
	Kind string `json:"kind"`
	// Execution is the 1-based index of the execution that found it.
	Execution int64 `json:"execution"`
	// Steps is the length of the finding execution; ScheduleLen the
	// length of its recorded repro schedule (0 when not replayable).
	Steps       int64 `json:"steps"`
	ScheduleLen int   `json:"scheduleLen"`
	// Message is the finding's one-line description (no stack traces:
	// goroutine stacks vary run to run).
	Message string `json:"message,omitempty"`
	// Reproducibility is the confirmation verdict ("stable (3/3)",
	// "flaky (1/3)") when the confirmation pass ran, else empty.
	Reproducibility string `json:"reproducibility,omitempty"`
}

// Encode renders the report as indented JSON with a trailing newline,
// the exact bytes the CLI writes and the determinism tests compare.
func (r *RunReport) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
