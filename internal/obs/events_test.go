package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRecorderOrdering: events from one goroutine come out as valid
// JSONL in emission order.
func TestRecorderOrdering(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf, 64)
	const n = 20
	for i := 0; i < n; i++ {
		r.Emit(Event{Type: "schedule", Exec: 1, Step: int64(i),
			Schedule: &ScheduleEvent{Tid: i % 3, Candidates: 2, Enabled: 2}})
	}
	if err := r.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if r.Emitted() != n || r.Dropped() != 0 {
		t.Fatalf("emitted=%d dropped=%d, want %d/0", r.Emitted(), r.Dropped(), n)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != n {
		t.Fatalf("got %d lines, want %d", len(lines), n)
	}
	for i, line := range lines {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i, err, line)
		}
		if ev.Type != "schedule" || ev.Step != int64(i) || ev.Schedule == nil ||
			ev.Schedule.Tid != i%3 {
			t.Fatalf("line %d out of order or mangled: %+v", i, ev)
		}
	}
}

// blockingWriter blocks every Write until release is closed, standing
// in for a stalled disk or pipe.
type blockingWriter struct {
	release chan struct{}
	buf     bytes.Buffer
}

func (w *blockingWriter) Write(p []byte) (int, error) {
	<-w.release
	return w.buf.Write(p)
}

// TestRecorderOverflowNeverBlocks: with the writer wedged, emission
// must stay non-blocking — overflow is counted, not waited out.
func TestRecorderOverflowNeverBlocks(t *testing.T) {
	w := &blockingWriter{release: make(chan struct{})}
	r := NewRecorder(w, 8)
	done := make(chan struct{})
	const n = 5000
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			// Long messages defeat the drain goroutine's 4KiB bufio
			// buffer quickly, so it wedges on the writer early on.
			r.Emit(Event{Type: "finding", Exec: int64(i),
				Finding: &FindingEvent{Kind: "violation", Message: strings.Repeat("x", 256)}})
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Emit blocked on a wedged writer")
	}
	if r.Dropped() == 0 {
		t.Fatal("no events dropped despite a wedged writer and a full queue")
	}
	if r.Emitted()+r.Dropped() != n {
		t.Fatalf("emitted %d + dropped %d != %d", r.Emitted(), r.Dropped(), n)
	}
	close(w.release)
	if err := r.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Everything accepted into the queue must have reached the writer.
	got := int64(bytes.Count(w.buf.Bytes(), []byte("\n")))
	if got != r.Emitted() {
		t.Fatalf("wrote %d lines, emitted %d", got, r.Emitted())
	}
}

// TestRecorderCloseIdempotent: double Close is safe and post-Close
// emission drops instead of panicking on a closed channel.
func TestRecorderCloseIdempotent(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf, 4)
	r.Emit(Event{Type: "exec_end", ExecEnd: &ExecEndEvent{Outcome: "terminated"}})
	if err := r.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	before := r.Dropped()
	r.Emit(Event{Type: "exec_end"})
	if r.Dropped() != before+1 {
		t.Fatalf("post-close Emit not counted as dropped")
	}
}

// TestRecorderConcurrentEmitClose races emitters against Close; under
// -race this doubles as a locking test for the closed/ch handoff.
func TestRecorderConcurrentEmitClose(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf, 16)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Emit(Event{Type: "schedule", Schedule: &ScheduleEvent{Tid: j}})
			}
		}()
	}
	r.Close()
	wg.Wait()
	if r.Emitted()+r.Dropped() != 4000 {
		t.Fatalf("emitted %d + dropped %d != 4000", r.Emitted(), r.Dropped())
	}
}
