package obs

import (
	"sync"
	"testing"
)

// TestCounterConcurrent hammers one counter from many goroutines; run
// with -race in CI, the count must be exact.
func TestCounterConcurrent(t *testing.T) {
	const workers, perWorker = 8, 10000
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				if j%2 == 0 {
					c.Inc()
				} else {
					c.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(42)
	if got := g.Load(); got != 42 {
		t.Fatalf("gauge = %d, want 42", got)
	}
	g.Set(-3)
	if got := g.Load(); got != -3 {
		t.Fatalf("gauge = %d, want -3", got)
	}
}

func TestHistBuckets(t *testing.T) {
	var h Hist
	for _, v := range []int64{0, 1, 2, 3, 8, -5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
	// -5 clamps to 0; sum = 0+1+2+3+8+0.
	if got := h.Sum(); got != 14 {
		t.Fatalf("sum = %d, want 14", got)
	}
	// Buckets: v==0 (le 0, count 2: the 0 and the clamped -5), v==1
	// (le 1), v in [2,4) (le 3, count 2), v in [8,16) (le 15).
	want := []HistBucket{{Le: 0, Count: 2}, {Le: 1, Count: 1}, {Le: 3, Count: 2}, {Le: 15, Count: 1}}
	got := h.Buckets()
	if len(got) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestFlushExecOutcomes(t *testing.T) {
	m := NewMetrics()
	outcomes := []string{"terminated", "deadlock", "violation", "diverged", "aborted", "wedged", "terminated"}
	for _, o := range outcomes {
		m.FlushExec(ExecFlush{Steps: 10, Yields: 2, Choices: 9, Candidates: 18,
			FairBlocked: 1, EdgeAdds: 3, EdgeErases: 3, Outcome: o})
	}
	s := m.Snapshot()
	if s.Executions != 7 || s.Steps != 70 || s.Yields != 14 || s.Choices != 63 ||
		s.Candidates != 126 || s.FairBlocked != 7 || s.EdgeAdds != 21 || s.EdgeErases != 21 {
		t.Fatalf("snapshot totals wrong: %+v", s)
	}
	if s.Terminations != 2 || s.Deadlocks != 1 || s.Violations != 1 ||
		s.Diverged != 1 || s.Aborts != 1 || s.Wedges != 1 {
		t.Fatalf("outcome counters wrong: %+v", s)
	}
	if m.ExecSteps.Count() != 7 || m.ExecSteps.Sum() != 70 {
		t.Fatalf("exec-steps histogram wrong: count=%d sum=%d",
			m.ExecSteps.Count(), m.ExecSteps.Sum())
	}
}

// TestFlushExecConcurrent flushes from parallel workers the way a
// parallel search does; totals must be exact under -race.
func TestFlushExecConcurrent(t *testing.T) {
	const workers, perWorker = 4, 2500
	m := NewMetrics()
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				m.FlushExec(ExecFlush{Steps: 3, Yields: 1, Outcome: "terminated"})
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if s.Executions != workers*perWorker || s.Steps != 3*workers*perWorker ||
		s.Yields != workers*perWorker || s.Terminations != workers*perWorker {
		t.Fatalf("concurrent flush totals wrong: %+v", s)
	}
}

// TestSnapshotSubMergeRoundtrip models the distributed telemetry path:
// a worker's registry advances, the delta since the last heartbeat is
// forwarded, and the coordinator merges it — totals must match a
// single shared registry.
func TestSnapshotSubMergeRoundtrip(t *testing.T) {
	worker := NewMetrics()
	coord := NewMetrics()
	prev := worker.Snapshot()
	for round := 0; round < 3; round++ {
		for j := 0; j <= round; j++ {
			worker.FlushExec(ExecFlush{Steps: 5, Yields: 2, Choices: 4,
				FairBlocked: 1, EdgeAdds: 2, EdgeErases: 1, Outcome: "terminated"})
		}
		worker.Quarantined.Inc()
		cur := worker.Snapshot()
		coord.Merge(cur.Sub(prev))
		prev = cur
	}
	w, c := worker.Snapshot(), coord.Snapshot()
	if c.Executions != w.Executions || c.Steps != w.Steps || c.Yields != w.Yields ||
		c.Choices != w.Choices || c.FairBlocked != w.FairBlocked ||
		c.EdgeAdds != w.EdgeAdds || c.EdgeErases != w.EdgeErases ||
		c.Terminations != w.Terminations || c.Quarantined != w.Quarantined {
		t.Fatalf("merged deltas diverge from source registry:\n%+v\nvs\n%+v", c, w)
	}
	if got, want := coord.ExecSteps.Count(), worker.ExecSteps.Count(); got != want {
		t.Fatalf("histogram count = %d, want %d", got, want)
	}
}

// TestSnapshotSubDelta: Sub subtracts counters but carries the gauge
// value through (a gauge is a level, not a rate).
func TestSnapshotSubDelta(t *testing.T) {
	m := NewMetrics()
	m.FlushExec(ExecFlush{Steps: 10, Outcome: "terminated"})
	first := m.Snapshot()
	m.FlushExec(ExecFlush{Steps: 7, Outcome: "deadlock"})
	m.Frontier.Set(5)
	second := m.Snapshot()
	d := second.Sub(first)
	if d.Executions != 1 || d.Steps != 7 || d.Deadlocks != 1 || d.Terminations != 0 {
		t.Fatalf("delta wrong: %+v", d)
	}
	if d.Frontier != 5 {
		t.Fatalf("delta frontier = %d, want the level 5", d.Frontier)
	}
}
