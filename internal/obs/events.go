package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// Event is one structured trace record. Exactly one of the optional
// payload fields is populated, selected by Type. Events serialize as
// single-line JSON (JSONL) in the order the drain goroutine dequeues
// them, which for a sequential search is emission order.
type Event struct {
	// Type discriminates the payload: "schedule", "yield", "exec_end",
	// "finding", "quarantine", "checkpoint", or "resume".
	Type string `json:"type"`
	// Exec is the execution index the event belongs to, when known.
	Exec int64 `json:"exec,omitempty"`
	// Step is the zero-based step index within the execution, for
	// schedule and yield events.
	Step int64 `json:"step,omitempty"`

	Schedule   *ScheduleEvent   `json:"schedule,omitempty"`
	Yield      *YieldEvent      `json:"yield,omitempty"`
	ExecEnd    *ExecEndEvent    `json:"execEnd,omitempty"`
	Finding    *FindingEvent    `json:"finding,omitempty"`
	Quarantine *QuarantineEvent `json:"quarantine,omitempty"`
	Checkpoint *CheckpointEvent `json:"checkpoint,omitempty"`
}

// ScheduleEvent records one scheduling decision: thread Tid was chosen
// out of Candidates schedulable threads (Enabled counts all enabled
// threads before the fairness filter).
type ScheduleEvent struct {
	Tid        int  `json:"tid"`
	Candidates int  `json:"candidates"`
	Enabled    int  `json:"enabled"`
	Preemption bool `json:"preemption,omitempty"`
}

// YieldEvent records the closure of thread Tid's k-th-yield window:
// the fair scheduler added priority edges {Tid}×H where
// H = (E(Tid) ∪ D(Tid)) \ S(Tid) (Algorithm 1 lines 23–29).
type YieldEvent struct {
	Tid int   `json:"tid"`
	H   []int `json:"h"`
}

// ExecEndEvent records the end of one engine execution.
type ExecEndEvent struct {
	Outcome string `json:"outcome"`
	Steps   int    `json:"steps"`
	Yields  int    `json:"yields"`
}

// FindingEvent records a bug or livelock finding surfaced by the
// search: Kind is "deadlock", "violation", "livelock", or "wedge".
type FindingEvent struct {
	Kind    string `json:"kind"`
	Steps   int    `json:"steps"`
	Message string `json:"message,omitempty"`
}

// QuarantineEvent records a subtree abandoned after persistent replay
// divergence.
type QuarantineEvent struct {
	PrefixLen int    `json:"prefixLen"`
	Attempts  int    `json:"attempts"`
	Reason    string `json:"reason,omitempty"`
}

// CheckpointEvent records a checkpoint write ("checkpoint") or a
// search resumed from one ("resume").
type CheckpointEvent struct {
	Path       string `json:"path,omitempty"`
	Executions int64  `json:"executions"`
}

// Recorder is a bounded, non-blocking JSONL event sink. Emit never
// blocks: when the buffer is full the event is dropped and the dropped
// counter incremented, so attaching a slow writer can lose events but
// can never stall the scheduler hot path. A single drain goroutine
// serializes events to the writer; call Close to flush and stop it.
type Recorder struct {
	mu      sync.RWMutex // guards closed vs. close(ch)
	ch      chan Event
	done    chan struct{}
	dropped atomic.Int64
	emitted atomic.Int64
	closed  bool
	once    sync.Once
	err     error
}

// NewRecorder starts a recorder draining into w with the given queue
// capacity (values < 1 use a default of 4096). The caller retains
// ownership of w but must not write to it until Close returns.
func NewRecorder(w io.Writer, buffer int) *Recorder {
	if buffer < 1 {
		buffer = 4096
	}
	r := &Recorder{
		ch:   make(chan Event, buffer),
		done: make(chan struct{}),
	}
	go r.drain(w)
	return r
}

func (r *Recorder) drain(w io.Writer) {
	defer close(r.done)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for ev := range r.ch {
		if r.err == nil {
			r.err = enc.Encode(ev) // Encode appends the newline
		}
	}
	if err := bw.Flush(); r.err == nil {
		r.err = err
	}
}

// Emit enqueues an event without blocking. Events emitted after Close
// are dropped.
func (r *Recorder) Emit(ev Event) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		r.dropped.Add(1)
		return
	}
	select {
	case r.ch <- ev:
		r.emitted.Add(1)
	default:
		r.dropped.Add(1)
	}
}

// Dropped returns the number of events discarded because the queue was
// full (or the recorder closed).
func (r *Recorder) Dropped() int64 { return r.dropped.Load() }

// Emitted returns the number of events accepted into the queue.
func (r *Recorder) Emitted() int64 { return r.emitted.Load() }

// Close stops accepting events, waits for the drain goroutine to flush
// everything already queued, and returns the first write error, if
// any. Close is idempotent.
func (r *Recorder) Close() error {
	r.once.Do(func() {
		r.mu.Lock()
		r.closed = true
		close(r.ch)
		r.mu.Unlock()
		<-r.done
	})
	return r.err
}
