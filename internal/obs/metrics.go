// Package obs is the observability layer of the checker: a lock-cheap
// metrics registry the engine and searcher update while a check runs,
// a bounded non-blocking event recorder that serializes structured
// scheduling events as JSONL, and the deterministic machine-readable
// run report the CLI emits at the end of a search.
//
// The package deliberately depends on nothing but the standard
// library: the engine and the searcher import obs, never the other way
// around, so events and reports carry plain values (ints, strings)
// rather than engine types.
//
// Two kinds of output with two different contracts:
//
//   - Metrics (this file) are live telemetry. They count work actually
//     performed — including divergence-retry replays, cancelled
//     parallel subtrees, and other work the merged search report
//     discards — so they are NOT deterministic across worker counts.
//     Reading them is always safe from any goroutine.
//   - The run report (report.go) is derived only from the merged
//     search report, which merges in frontier/index order, so it is
//     byte-identical for the same seed at any parallelism and across
//     checkpoint/resume.
//
// See docs/OBSERVABILITY.md for the paper-level meaning of every
// metric.
package obs

import "sync/atomic"

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use. All methods are safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomically updated instantaneous value (e.g. the current
// frontier depth). The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set stores the current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets is the number of power-of-two histogram buckets: bucket
// i counts observations v with bits.Len64(v) == i, i.e. bucket 0 is
// v == 0, bucket i ≥ 1 is v in [2^(i-1), 2^i). 64-bit values need at
// most 65 buckets; execution lengths never exceed 2^40 in practice but
// the full range costs nothing.
const histBuckets = 65

// Hist is a power-of-two bucketed histogram of non-negative int64
// observations. The zero value is ready to use; all methods are safe
// for concurrent use.
type Hist struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one observation. Negative values clamp to zero.
func (h *Hist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bitLen(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// bitLen is bits.Len64 without the import (the only use in this
// package).
func bitLen(v uint64) int {
	n := 0
	for v != 0 {
		v >>= 1
		n++
	}
	return n
}

// Count returns the number of observations.
func (h *Hist) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Hist) Sum() int64 { return h.sum.Load() }

// Buckets returns a snapshot of the non-empty buckets as (upper bound,
// count) pairs in ascending bound order. The upper bound of bucket i
// is 2^i - 1 (inclusive).
func (h *Hist) Buckets() []HistBucket {
	var out []HistBucket
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		hi := int64(-1) // sentinel for the overflow bucket
		if i < 63 {
			hi = int64(1)<<uint(i) - 1
		}
		out = append(out, HistBucket{Le: hi, Count: n})
	}
	return out
}

// HistBucket is one non-empty histogram bucket: Count observations
// were ≤ Le (Le = -1 marks the open-ended overflow bucket).
type HistBucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// Metrics is the registry of live search telemetry. One registry is
// shared by every engine and worker of a check (Options.Metrics);
// updates are atomic, so attaching it to a parallel search is safe.
// The hot path is kept cheap by accumulation: the engine counts
// per-execution in plain locals and flushes once per execution via
// FlushExec.
type Metrics struct {
	// Executions counts engine runs flushed into the registry. This
	// includes divergence-retry replays and parallel work later
	// discarded by the ordered merge, so it can exceed the report's
	// execution count (see the package comment).
	Executions Counter
	// Steps is the total number of scheduled transitions.
	Steps Counter
	// Choices is the total number of scheduling decisions (Chooser
	// calls), and Candidates the total number of alternatives offered
	// across them; Candidates/Choices is the mean branching factor.
	Choices    Counter
	Candidates Counter
	// Yields counts yielding transitions — the good-samaritan events
	// that close fairness windows (Algorithm 1 lines 23–29).
	Yields Counter
	// EdgeAdds counts priority-edge insertions P := P ∪ {t}×H at yield
	// window boundaries; EdgeErases counts removals by Algorithm 1
	// line 13 (P := P \ (Tid × {t})).
	EdgeAdds   Counter
	EdgeErases Counter
	// FairBlocked counts (step, thread) pairs where an enabled thread
	// was excluded from scheduling by a priority edge: the size of
	// pre(P, ES) ∩ ES summed over all steps.
	FairBlocked Counter
	// Outcome counters, one per engine outcome.
	Terminations Counter
	Deadlocks    Counter
	Violations   Counter
	Diverged     Counter
	Aborts       Counter
	// Wedges counts executions cut by the watchdog (outcome Wedged).
	Wedges Counter
	// ReplayDivergences counts prefix replays that stopped conforming
	// to their recorded digests (each retry attempt counts once).
	ReplayDivergences Counter
	// Quarantined counts subtrees abandoned after persistent replay
	// divergence.
	Quarantined Counter
	// WorkerRetries counts recovered parallel-worker crashes (each
	// failed attempt counts once, whether or not the retry succeeded).
	WorkerRetries Counter
	// InlineSteps counts steps the engine fast path granted without any
	// goroutine handoff (the running thread granted itself the next
	// step); Handoffs counts direct thread-to-thread baton handoffs.
	// Steps - InlineSteps - Handoffs is the engine-mediated remainder.
	InlineSteps Counter
	Handoffs    Counter
	// EngineReuses counts executions that drew a recycled engine from a
	// pool instead of allocating one (engine.Pool).
	EngineReuses Counter
	// Weak-memory counters (internal/wm, -mm=tso): stores buffered
	// instead of written to memory, flush-agent steps draining them,
	// fences completed, and loads served by store-to-load forwarding
	// from the issuing thread's own buffer.
	WMBufferedStores Counter
	WMFlushes        Counter
	WMFences         Counter
	WMForwards       Counter
	// PrefixHits counts replayed scheduling points validated against a
	// memoized candidate snapshot (internal/search prefix memoization);
	// PrefixMisses counts replayed points that fell back to recomputing
	// the conformance digest.
	PrefixHits   Counter
	PrefixMisses Counter
	// Checkpoints counts checkpoint files written.
	Checkpoints Counter
	// DistRetries counts retried worker↔coordinator HTTP calls (each
	// re-sent attempt counts once; the first attempt of a call does
	// not).
	DistRetries Counter
	// DistFaultsInjected counts faults the chaos layer injected into
	// the dist transport (drops, delays, duplicates, truncations,
	// resets, partitioned requests — internal/faultinject).
	DistFaultsInjected Counter
	// BreakerOpens counts closed→open transitions of a dist circuit
	// breaker (an unreachable peer tripping fail-fast mode).
	BreakerOpens Counter
	// SpooledResults counts completed shard reports a worker spooled to
	// its -workdir because the coordinator was unreachable; the spool is
	// replayed on rejoin, so each spooled result is work saved, not
	// lost.
	SpooledResults Counter
	// ShedRequests counts requests the coordinator refused with 429 +
	// Retry-After under load (graceful degradation, not failure).
	ShedRequests Counter
	// LedgerAppends counts records appended to the job ledger WAL.
	LedgerAppends Counter
	// LedgerReplayed counts records recovered from the ledger on open.
	LedgerReplayed Counter
	// LedgerTornTails counts partially-written tail records truncated
	// during ledger recovery (the expected residue of a crash mid-append;
	// repair, not data loss).
	LedgerTornTails Counter
	// LedgerQuarantines counts ledger segments sealed aside because a
	// non-tail record failed its CRC (silent corruption; the segment is
	// renamed *.quar and replay continues with later segments).
	LedgerQuarantines Counter
	// FSFaultsInjected counts filesystem faults the chaos layer injected
	// (short writes, torn renames, fsync errors, read corruption —
	// internal/faultinject's FSInjector).
	FSFaultsInjected Counter
	// Job lifecycle counters for the durable checking service
	// (internal/dist/jobs): submissions accepted, jobs reaching a
	// terminal state (done or failed), cancellations, and submissions
	// refused with 429 because the job queue was full.
	JobsSubmitted Counter
	JobsDone      Counter
	JobsCancelled Counter
	JobsShed      Counter
	// DPOR work-unit counters (internal/search/dpor.go): race-reversal
	// proposals found by trace analysis, child units pruned because
	// their path was already spawned or taken, and the instantaneous
	// depth of the unmerged unit queue.
	DporRaces       Counter
	DporUnitsPruned Counter
	DporUnitQueue   Gauge
	// Frontier is the per-strategy frontier depth: the DFS stack depth
	// (sequential systematic search), the number of unmerged frontier
	// prefixes (prefix-parallel search), the number of unmerged work
	// units (DPOR), or the next unmerged execution index (random
	// strategies).
	Frontier Gauge
	// ExecSteps is the distribution of execution lengths in steps.
	ExecSteps Hist
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return &Metrics{} }

// ExecFlush is the per-execution accumulation the engine hands to
// FlushExec once per engine run, keeping the per-step hot path free of
// atomic operations.
type ExecFlush struct {
	Steps       int64
	Yields      int64
	Choices     int64
	Candidates  int64
	FairBlocked int64
	EdgeAdds    int64
	EdgeErases  int64
	InlineSteps int64
	Handoffs    int64
	// Weak-memory accumulation (engine.WMCounters).
	BufferedStores int64
	Flushes        int64
	Fences         int64
	Forwards       int64
	// Outcome is the engine outcome's string form ("terminated",
	// "deadlock", "violation", "diverged", "aborted", "wedged").
	Outcome string
}

// FlushExec folds one finished execution into the registry.
func (m *Metrics) FlushExec(f ExecFlush) {
	m.Executions.Inc()
	m.Steps.Add(f.Steps)
	m.Yields.Add(f.Yields)
	m.Choices.Add(f.Choices)
	m.Candidates.Add(f.Candidates)
	m.FairBlocked.Add(f.FairBlocked)
	m.EdgeAdds.Add(f.EdgeAdds)
	m.EdgeErases.Add(f.EdgeErases)
	m.InlineSteps.Add(f.InlineSteps)
	m.Handoffs.Add(f.Handoffs)
	m.WMBufferedStores.Add(f.BufferedStores)
	m.WMFlushes.Add(f.Flushes)
	m.WMFences.Add(f.Fences)
	m.WMForwards.Add(f.Forwards)
	m.ExecSteps.Observe(f.Steps)
	switch f.Outcome {
	case "terminated":
		m.Terminations.Inc()
	case "deadlock":
		m.Deadlocks.Inc()
	case "violation":
		m.Violations.Inc()
	case "diverged":
		m.Diverged.Inc()
	case "aborted":
		m.Aborts.Inc()
	case "wedged":
		m.Wedges.Inc()
	}
}

// Snapshot is a point-in-time copy of every metric, suitable for
// progress display or JSON encoding. Field values are read atomically
// but not as one transaction: a snapshot taken while workers run may
// mix values from adjacent executions.
type Snapshot struct {
	Executions         int64        `json:"executions"`
	Steps              int64        `json:"steps"`
	Choices            int64        `json:"choices"`
	Candidates         int64        `json:"candidates"`
	Yields             int64        `json:"yields"`
	EdgeAdds           int64        `json:"edgeAdds"`
	EdgeErases         int64        `json:"edgeErases"`
	FairBlocked        int64        `json:"fairBlocked"`
	Terminations       int64        `json:"terminations"`
	Deadlocks          int64        `json:"deadlocks"`
	Violations         int64        `json:"violations"`
	Diverged           int64        `json:"diverged"`
	Aborts             int64        `json:"aborts"`
	Wedges             int64        `json:"wedges"`
	ReplayDivergences  int64        `json:"replayDivergences"`
	Quarantined        int64        `json:"quarantined"`
	WorkerRetries      int64        `json:"workerRetries"`
	InlineSteps        int64        `json:"inlineSteps"`
	Handoffs           int64        `json:"handoffs"`
	EngineReuses       int64        `json:"engineReuses"`
	WMBufferedStores   int64        `json:"wmBufferedStores"`
	WMFlushes          int64        `json:"wmFlushes"`
	WMFences           int64        `json:"wmFences"`
	WMForwards         int64        `json:"wmForwards"`
	PrefixHits         int64        `json:"prefixHits"`
	PrefixMisses       int64        `json:"prefixMisses"`
	Checkpoints        int64        `json:"checkpoints"`
	DistRetries        int64        `json:"distRetries"`
	DistFaultsInjected int64        `json:"distFaultsInjected"`
	BreakerOpens       int64        `json:"breakerOpens"`
	SpooledResults     int64        `json:"spooledResults"`
	ShedRequests       int64        `json:"shedRequests"`
	LedgerAppends      int64        `json:"ledgerAppends"`
	LedgerReplayed     int64        `json:"ledgerReplayed"`
	LedgerTornTails    int64        `json:"ledgerTornTails"`
	LedgerQuarantines  int64        `json:"ledgerQuarantines"`
	FSFaultsInjected   int64        `json:"fsFaultsInjected"`
	JobsSubmitted      int64        `json:"jobsSubmitted"`
	JobsDone           int64        `json:"jobsDone"`
	JobsCancelled      int64        `json:"jobsCancelled"`
	JobsShed           int64        `json:"jobsShed"`
	DporRaces          int64        `json:"dporRaces"`
	DporUnitsPruned    int64        `json:"dporUnitsPruned"`
	DporUnitQueue      int64        `json:"dporUnitQueue"`
	Frontier           int64        `json:"frontier"`
	ExecSteps          []HistBucket `json:"execSteps,omitempty"`
}

// Sub returns the counter-wise difference s - prev: the work performed
// between the two snapshots. Distributed workers post these deltas to
// the coordinator so each increment is counted exactly once. The
// Frontier gauge is not a counter and carries s's value unchanged;
// histogram buckets subtract bucket-wise.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	d := Snapshot{
		Executions:         s.Executions - prev.Executions,
		Steps:              s.Steps - prev.Steps,
		Choices:            s.Choices - prev.Choices,
		Candidates:         s.Candidates - prev.Candidates,
		Yields:             s.Yields - prev.Yields,
		EdgeAdds:           s.EdgeAdds - prev.EdgeAdds,
		EdgeErases:         s.EdgeErases - prev.EdgeErases,
		FairBlocked:        s.FairBlocked - prev.FairBlocked,
		Terminations:       s.Terminations - prev.Terminations,
		Deadlocks:          s.Deadlocks - prev.Deadlocks,
		Violations:         s.Violations - prev.Violations,
		Diverged:           s.Diverged - prev.Diverged,
		Aborts:             s.Aborts - prev.Aborts,
		Wedges:             s.Wedges - prev.Wedges,
		ReplayDivergences:  s.ReplayDivergences - prev.ReplayDivergences,
		Quarantined:        s.Quarantined - prev.Quarantined,
		WorkerRetries:      s.WorkerRetries - prev.WorkerRetries,
		InlineSteps:        s.InlineSteps - prev.InlineSteps,
		Handoffs:           s.Handoffs - prev.Handoffs,
		EngineReuses:       s.EngineReuses - prev.EngineReuses,
		WMBufferedStores:   s.WMBufferedStores - prev.WMBufferedStores,
		WMFlushes:          s.WMFlushes - prev.WMFlushes,
		WMFences:           s.WMFences - prev.WMFences,
		WMForwards:         s.WMForwards - prev.WMForwards,
		PrefixHits:         s.PrefixHits - prev.PrefixHits,
		PrefixMisses:       s.PrefixMisses - prev.PrefixMisses,
		Checkpoints:        s.Checkpoints - prev.Checkpoints,
		DistRetries:        s.DistRetries - prev.DistRetries,
		DistFaultsInjected: s.DistFaultsInjected - prev.DistFaultsInjected,
		BreakerOpens:       s.BreakerOpens - prev.BreakerOpens,
		SpooledResults:     s.SpooledResults - prev.SpooledResults,
		ShedRequests:       s.ShedRequests - prev.ShedRequests,
		LedgerAppends:      s.LedgerAppends - prev.LedgerAppends,
		LedgerReplayed:     s.LedgerReplayed - prev.LedgerReplayed,
		LedgerTornTails:    s.LedgerTornTails - prev.LedgerTornTails,
		LedgerQuarantines:  s.LedgerQuarantines - prev.LedgerQuarantines,
		FSFaultsInjected:   s.FSFaultsInjected - prev.FSFaultsInjected,
		JobsSubmitted:      s.JobsSubmitted - prev.JobsSubmitted,
		JobsDone:           s.JobsDone - prev.JobsDone,
		JobsCancelled:      s.JobsCancelled - prev.JobsCancelled,
		JobsShed:           s.JobsShed - prev.JobsShed,
		DporRaces:          s.DporRaces - prev.DporRaces,
		DporUnitsPruned:    s.DporUnitsPruned - prev.DporUnitsPruned,
		DporUnitQueue:      s.DporUnitQueue,
		Frontier:           s.Frontier,
	}
	prevAt := make(map[int64]int64, len(prev.ExecSteps))
	for _, b := range prev.ExecSteps {
		prevAt[b.Le] = b.Count
	}
	for _, b := range s.ExecSteps {
		if n := b.Count - prevAt[b.Le]; n > 0 {
			d.ExecSteps = append(d.ExecSteps, HistBucket{Le: b.Le, Count: n})
		}
	}
	return d
}

// Merge folds a snapshot delta (Snapshot.Sub) into the registry; the
// distributed coordinator aggregates worker telemetry this way. The
// Frontier gauge is skipped — per-worker instantaneous values do not
// sum; the coordinator tracks its own frontier (unmerged shards).
func (m *Metrics) Merge(d Snapshot) {
	m.Executions.Add(d.Executions)
	m.Steps.Add(d.Steps)
	m.Choices.Add(d.Choices)
	m.Candidates.Add(d.Candidates)
	m.Yields.Add(d.Yields)
	m.EdgeAdds.Add(d.EdgeAdds)
	m.EdgeErases.Add(d.EdgeErases)
	m.FairBlocked.Add(d.FairBlocked)
	m.Terminations.Add(d.Terminations)
	m.Deadlocks.Add(d.Deadlocks)
	m.Violations.Add(d.Violations)
	m.Diverged.Add(d.Diverged)
	m.Aborts.Add(d.Aborts)
	m.Wedges.Add(d.Wedges)
	m.ReplayDivergences.Add(d.ReplayDivergences)
	m.Quarantined.Add(d.Quarantined)
	m.WorkerRetries.Add(d.WorkerRetries)
	m.InlineSteps.Add(d.InlineSteps)
	m.Handoffs.Add(d.Handoffs)
	m.EngineReuses.Add(d.EngineReuses)
	m.WMBufferedStores.Add(d.WMBufferedStores)
	m.WMFlushes.Add(d.WMFlushes)
	m.WMFences.Add(d.WMFences)
	m.WMForwards.Add(d.WMForwards)
	m.PrefixHits.Add(d.PrefixHits)
	m.PrefixMisses.Add(d.PrefixMisses)
	m.Checkpoints.Add(d.Checkpoints)
	m.DistRetries.Add(d.DistRetries)
	m.DistFaultsInjected.Add(d.DistFaultsInjected)
	m.BreakerOpens.Add(d.BreakerOpens)
	m.SpooledResults.Add(d.SpooledResults)
	m.ShedRequests.Add(d.ShedRequests)
	m.LedgerAppends.Add(d.LedgerAppends)
	m.LedgerReplayed.Add(d.LedgerReplayed)
	m.LedgerTornTails.Add(d.LedgerTornTails)
	m.LedgerQuarantines.Add(d.LedgerQuarantines)
	m.FSFaultsInjected.Add(d.FSFaultsInjected)
	m.JobsSubmitted.Add(d.JobsSubmitted)
	m.JobsDone.Add(d.JobsDone)
	m.JobsCancelled.Add(d.JobsCancelled)
	m.DporRaces.Add(d.DporRaces)
	m.DporUnitsPruned.Add(d.DporUnitsPruned)
	// DporUnitQueue is a gauge and is skipped like Frontier.
	m.JobsShed.Add(d.JobsShed)
	for _, b := range d.ExecSteps {
		idx := 63 // open-ended overflow bucket
		if b.Le >= 0 {
			idx = bitLen(uint64(b.Le)+1) - 1
		}
		m.ExecSteps.buckets[idx].Add(b.Count)
		m.ExecSteps.count.Add(b.Count)
		// Bucket sums are lossy (the histogram stores bounds, not raw
		// values); approximate with the bucket's upper bound.
		if b.Le >= 0 {
			m.ExecSteps.sum.Add(b.Count * b.Le)
		}
	}
}

// Snapshot copies the current metric values.
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		Executions:         m.Executions.Load(),
		Steps:              m.Steps.Load(),
		Choices:            m.Choices.Load(),
		Candidates:         m.Candidates.Load(),
		Yields:             m.Yields.Load(),
		EdgeAdds:           m.EdgeAdds.Load(),
		EdgeErases:         m.EdgeErases.Load(),
		FairBlocked:        m.FairBlocked.Load(),
		Terminations:       m.Terminations.Load(),
		Deadlocks:          m.Deadlocks.Load(),
		Violations:         m.Violations.Load(),
		Diverged:           m.Diverged.Load(),
		Aborts:             m.Aborts.Load(),
		Wedges:             m.Wedges.Load(),
		ReplayDivergences:  m.ReplayDivergences.Load(),
		Quarantined:        m.Quarantined.Load(),
		WorkerRetries:      m.WorkerRetries.Load(),
		InlineSteps:        m.InlineSteps.Load(),
		Handoffs:           m.Handoffs.Load(),
		EngineReuses:       m.EngineReuses.Load(),
		WMBufferedStores:   m.WMBufferedStores.Load(),
		WMFlushes:          m.WMFlushes.Load(),
		WMFences:           m.WMFences.Load(),
		WMForwards:         m.WMForwards.Load(),
		PrefixHits:         m.PrefixHits.Load(),
		PrefixMisses:       m.PrefixMisses.Load(),
		Checkpoints:        m.Checkpoints.Load(),
		DistRetries:        m.DistRetries.Load(),
		DistFaultsInjected: m.DistFaultsInjected.Load(),
		BreakerOpens:       m.BreakerOpens.Load(),
		SpooledResults:     m.SpooledResults.Load(),
		ShedRequests:       m.ShedRequests.Load(),
		LedgerAppends:      m.LedgerAppends.Load(),
		LedgerReplayed:     m.LedgerReplayed.Load(),
		LedgerTornTails:    m.LedgerTornTails.Load(),
		LedgerQuarantines:  m.LedgerQuarantines.Load(),
		FSFaultsInjected:   m.FSFaultsInjected.Load(),
		JobsSubmitted:      m.JobsSubmitted.Load(),
		JobsDone:           m.JobsDone.Load(),
		JobsCancelled:      m.JobsCancelled.Load(),
		JobsShed:           m.JobsShed.Load(),
		DporRaces:          m.DporRaces.Load(),
		DporUnitsPruned:    m.DporUnitsPruned.Load(),
		DporUnitQueue:      m.DporUnitQueue.Load(),
		Frontier:           m.Frontier.Load(),
		ExecSteps:          m.ExecSteps.Buckets(),
	}
}
