package race_test

import (
	"testing"

	"fairmc/internal/engine"
	"fairmc/internal/race"
	"fairmc/internal/search"
	"fairmc/internal/syncmodel"
	"fairmc/progs"
)

// detect runs a full fair search with the detector attached and
// returns the accumulated races.
func detect(t *testing.T, prog func(*engine.T)) []race.Race {
	t.Helper()
	d := race.NewDetector()
	rep := search.Explore(prog, search.Options{
		Fair:         true,
		ContextBound: 2,
		MaxSteps:     10000,
		Monitor:      d,
	})
	if rep.FirstBug != nil {
		t.Fatalf("unexpected bug: %s", rep.FirstBug.FormatTrace())
	}
	return d.Races()
}

func TestUnlockedWritesRace(t *testing.T) {
	races := detect(t, func(t *engine.T) {
		x := syncmodel.NewIntVar(t, "x", 0)
		wg := syncmodel.NewWaitGroup(t, "wg", 2)
		for i := 0; i < 2; i++ {
			v := int64(i)
			t.Go("w", func(t *engine.T) {
				x.Store(t, v) // unsynchronized write
				wg.Done(t)
			})
		}
		wg.Wait(t)
	})
	if len(races) == 0 {
		t.Fatal("no race on unsynchronized writes")
	}
	found := false
	for _, r := range races {
		if r.ObjName == "x" && r.WriteWrite {
			found = true
		}
	}
	if !found {
		t.Fatalf("no write/write race on x: %v", races)
	}
}

func TestLockedWritesDoNotRace(t *testing.T) {
	races := detect(t, func(t *engine.T) {
		x := syncmodel.NewIntVar(t, "x", 0)
		m := syncmodel.NewMutex(t, "m")
		wg := syncmodel.NewWaitGroup(t, "wg", 2)
		for i := 0; i < 2; i++ {
			v := int64(i)
			t.Go("w", func(t *engine.T) {
				m.Lock(t)
				x.Store(t, v)
				m.Unlock(t)
				wg.Done(t)
			})
		}
		wg.Wait(t)
	})
	for _, r := range races {
		if r.ObjName == "x" {
			t.Fatalf("false race on locked variable: %v", r)
		}
	}
}

func TestSpawnJoinOrderAccesses(t *testing.T) {
	races := detect(t, func(t *engine.T) {
		x := syncmodel.NewIntVar(t, "x", 0)
		x.Store(t, 1) // before spawn: ordered by the spawn edge
		h := t.Go("w", func(t *engine.T) {
			x.Store(t, 2)
		})
		h.Join(t)
		x.Store(t, 3) // after join: ordered by the join edge
	})
	if len(races) != 0 {
		t.Fatalf("false races across spawn/join: %v", races)
	}
}

func TestChannelSynchronizesHandoff(t *testing.T) {
	races := detect(t, func(t *engine.T) {
		x := syncmodel.NewIntVar(t, "x", 0)
		ch := syncmodel.NewChannel(t, "ch", 1)
		h := t.Go("producer", func(t *engine.T) {
			x.Store(t, 42)
			ch.Send(t, 1)
		})
		ch.Recv(t)
		_ = x.Load(t) // ordered by send->recv
		h.Join(t)
	})
	for _, r := range races {
		if r.ObjName == "x" {
			t.Fatalf("false race across channel handoff: %v", r)
		}
	}
}

func TestEventSynchronizes(t *testing.T) {
	races := detect(t, func(t *engine.T) {
		x := syncmodel.NewIntVar(t, "x", 0)
		ev := syncmodel.NewEvent(t, "ev", true, false)
		h := t.Go("producer", func(t *engine.T) {
			x.Store(t, 42)
			ev.Set(t)
		})
		ev.Wait(t)
		_ = x.Load(t)
		h.Join(t)
	})
	for _, r := range races {
		if r.ObjName == "x" {
			t.Fatalf("false race across event: %v", r)
		}
	}
}

func TestReadWriteRaceOnSpinFlagWithoutInterlocked(t *testing.T) {
	// A spin loop reading a plain variable another thread stores is a
	// read/write race (benign in this model, a real race on hardware).
	races := detect(t, func(t *engine.T) {
		x := syncmodel.NewIntVar(t, "x", 0)
		h := t.Go("w", func(t *engine.T) {
			x.Store(t, 1)
		})
		for x.Load(t) != 1 {
			t.Yield()
		}
		h.Join(t)
	})
	found := false
	for _, r := range races {
		if r.ObjName == "x" && !r.WriteWrite {
			found = true
		}
	}
	if !found {
		t.Fatalf("missed read/write race on spin flag: %v", races)
	}
}

func TestInterlockedAccessesDoNotRace(t *testing.T) {
	// Interlocked read-modify-writes order memory; two Add calls on
	// the same variable are not a race.
	races := detect(t, func(t *engine.T) {
		x := syncmodel.NewIntVar(t, "x", 0)
		wg := syncmodel.NewWaitGroup(t, "wg", 2)
		for i := 0; i < 2; i++ {
			t.Go("w", func(t *engine.T) {
				x.Add(t, 1)
				wg.Done(t)
			})
		}
		wg.Wait(t)
	})
	if len(races) != 0 {
		t.Fatalf("false races on interlocked ops: %v", races)
	}
}

func TestArrayElementGranularity(t *testing.T) {
	// Disjoint array elements do not race; the same element does.
	races := detect(t, func(t *engine.T) {
		a := syncmodel.NewIntArray(t, "a", 2)
		wg := syncmodel.NewWaitGroup(t, "wg", 2)
		for i := 0; i < 2; i++ {
			i := i
			t.Go("w", func(t *engine.T) {
				a.Set(t, i, 1) // disjoint elements
				wg.Done(t)
			})
		}
		wg.Wait(t)
	})
	if len(races) != 0 {
		t.Fatalf("false race on disjoint elements: %v", races)
	}

	races = detect(t, func(t *engine.T) {
		a := syncmodel.NewIntArray(t, "a", 2)
		wg := syncmodel.NewWaitGroup(t, "wg", 2)
		for i := 0; i < 2; i++ {
			t.Go("w", func(t *engine.T) {
				a.Set(t, 0, 1) // same element
				wg.Done(t)
			})
		}
		wg.Wait(t)
	})
	if len(races) == 0 {
		t.Fatal("missed race on shared element")
	}
}

func TestWSQBuggyStealRaces(t *testing.T) {
	// The lock-free steal (WSQ bug 2) touches head/tasks without the
	// lock; the detector flags it even on passing interleavings.
	d := race.NewDetector()
	prog := progs.WorkStealingQueue(progs.WSQConfig{Items: 2, Stealers: 1, Bug: progs.WSQBug2})
	search.Explore(prog, search.Options{
		Fair:          true,
		ContextBound:  1,
		MaxSteps:      10000,
		MaxExecutions: 2000,
		Monitor:       d,
		// Bug executions abort; races accumulate regardless.
		ContinueAfterViolation: true,
	})
	if len(d.Races()) == 0 {
		t.Fatal("no races flagged in the lock-free-steal WSQ")
	}
}
