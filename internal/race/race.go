// Package race is a happens-before race detector over the checker's
// event stream (an extension: CHESS shipped a companion data-race
// detector in the same spirit).
//
// In this model every shared access is a scheduling point, so
// executions are always serialized — there are no torn reads. What
// the detector flags is *missing synchronization*: two accesses to the
// same shared variable by different threads, at least one a write,
// with no happens-before path between them through locks, channels,
// events, semaphores, wait groups, or spawn/join edges. Such pairs are
// exactly the accesses that would be data races if the program were
// run on real hardware, even in interleavings where nothing misbehaves
// — so the detector finds the missing lock on executions that happen
// to pass.
//
// The implementation is a standard vector-clock detector: each thread
// carries a clock; every synchronization object carries the clock of
// its last releaser; shared variables remember a write clock-point and
// read clock-points per location.
package race

import (
	"fmt"
	"sort"
	"strings"

	"fairmc/internal/engine"
	"fairmc/internal/tidset"
)

// VC is a vector clock, indexed by thread id.
type VC []uint32

func (v VC) clone() VC {
	out := make(VC, len(v))
	copy(out, v)
	return out
}

func (v *VC) extend(n int) {
	for len(*v) < n {
		*v = append(*v, 0)
	}
}

// joinWith merges o into v (pointwise max).
func (v *VC) joinWith(o VC) {
	v.extend(len(o))
	for i, x := range o {
		if x > (*v)[i] {
			(*v)[i] = x
		}
	}
}

// leq reports whether v happens-before-or-equals o pointwise.
func (v VC) leq(o VC) bool {
	for i, x := range v {
		var y uint32
		if i < len(o) {
			y = o[i]
		}
		if x > y {
			return false
		}
	}
	return true
}

// epoch is one access: the clock value of the accessing thread at the
// access.
type epoch struct {
	tid  tidset.Tid
	time uint32
	step int // step index, for reporting
}

// happenedBefore reports whether access e happens-before the thread
// whose clock is now.
func (e epoch) happenedBefore(now VC) bool {
	return int(e.tid) < len(now) && e.time <= now[int(e.tid)]
}

// location is a (variable, element) pair.
type location struct {
	obj  engine.ObjID
	elem int64
}

type varState struct {
	lastWrite *epoch
	reads     []epoch // reads since the last write, concurrent frontier
}

// Race is one detected unsynchronized access pair.
type Race struct {
	Obj        engine.ObjID
	ObjName    string
	Elem       int64
	FirstTid   tidset.Tid
	FirstStep  int
	SecondTid  tidset.Tid
	SecondStep int
	// WriteWrite is true for a write/write pair, false for read/write.
	WriteWrite bool
}

func (r Race) String() string {
	kind := "read/write"
	if r.WriteWrite {
		kind = "write/write"
	}
	loc := r.ObjName
	if r.Elem >= 0 {
		loc = fmt.Sprintf("%s[%d]", r.ObjName, r.Elem)
	}
	return fmt.Sprintf("%s race on %s: thread %d (step %d) vs thread %d (step %d)",
		kind, loc, r.FirstTid, r.FirstStep, r.SecondTid, r.SecondStep)
}

// Detector is an engine.Monitor that tracks happens-before and records
// races. One Detector observes one or more executions; races
// accumulate (deduplicated by location and thread pair).
type Detector struct {
	clocks   []VC
	syncObjs map[engine.ObjID]VC
	vars     map[location]*varState
	step     int

	races map[string]Race
}

// NewDetector returns an empty detector.
func NewDetector() *Detector {
	return &Detector{races: map[string]Race{}}
}

// Races returns the accumulated races sorted by report string.
func (d *Detector) Races() []Race {
	out := make([]Race, 0, len(d.races))
	for _, r := range d.races {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// AfterInit implements engine.Monitor: reset per-execution state.
func (d *Detector) AfterInit(e *engine.Engine) {
	d.clocks = []VC{{1}}
	d.syncObjs = map[engine.ObjID]VC{}
	d.vars = map[location]*varState{}
	d.step = 0
}

func (d *Detector) clock(t tidset.Tid) *VC {
	for len(d.clocks) <= int(t) {
		d.clocks = append(d.clocks, nil)
	}
	c := &d.clocks[t]
	c.extend(int(t) + 1)
	return c
}

func (d *Detector) now(t tidset.Tid) uint32 {
	return (*d.clock(t))[int(t)]
}

// AfterStep implements engine.Monitor: interpret the last transition.
func (d *Detector) AfterStep(e *engine.Engine) {
	tid := e.LastScheduled()
	info := e.LastOpInfo()
	d.interpret(e, tid, info)
	d.step++
}

func (d *Detector) interpret(e *engine.Engine, tid tidset.Tid, info engine.OpInfo) {
	c := d.clock(tid)
	switch info.Kind {
	case "spawn":
		// Child inherits the parent's knowledge.
		child := tidset.Tid(info.Aux)
		cc := d.clock(child)
		cc.joinWith(*c)
		(*cc)[int(child)]++
		d.tick(tid)
	case "join":
		// Parent learns everything the child did.
		target := tidset.Tid(info.Aux)
		c.joinWith(*d.clock(target))
		d.tick(tid)
	case "lock", "wlock", "rlock", "sem.acquire", "event.wait", "wg.wait",
		"chan.recv", "cond.reacquire":
		// Acquire: join the object's release clock.
		if rel, ok := d.syncObjs[info.Obj]; ok {
			c.joinWith(rel)
		}
		d.tick(tid)
	case "unlock", "wunlock", "runlock", "sem.release", "event.set",
		"wg.add", "chan.send", "chan.close", "cond.signal", "cond.broadcast",
		"cond.wait":
		// Release: publish the thread's clock on the object.
		rel := d.syncObjs[info.Obj]
		rel.joinWith(*c)
		d.syncObjs[info.Obj] = rel
		d.tick(tid)
	case "trylock", "locktimeout", "sem.try", "sem.timeout", "event.timeout",
		"chan.trysend", "chan.tryrecv":
		// Conservative: treat successful try-ops as acquire+release.
		if rel, ok := d.syncObjs[info.Obj]; ok {
			c.joinWith(rel)
		}
		rel := d.syncObjs[info.Obj]
		rel.joinWith(*c)
		d.syncObjs[info.Obj] = rel
		d.tick(tid)
	case "load", "any.load":
		d.read(e, tid, location{obj: info.Obj, elem: -1})
	case "arr.get":
		d.read(e, tid, location{obj: info.Obj, elem: info.Aux})
	case "store", "any.store":
		d.write(e, tid, location{obj: info.Obj, elem: -1})
	case "arr.set":
		d.write(e, tid, location{obj: info.Obj, elem: info.Aux})
	case "add", "cas", "swap":
		// Interlocked read-modify-write: a write for conflict purposes,
		// and also a synchronization point in the release/acquire sense
		// (Interlocked* operations order memory on real hardware).
		if rel, ok := d.syncObjs[info.Obj]; ok {
			c.joinWith(rel)
		}
		d.write(e, tid, location{obj: info.Obj, elem: -1})
		rel := d.syncObjs[info.Obj]
		rel.joinWith(*c)
		d.syncObjs[info.Obj] = rel
	default:
		// yield, sleep, choose, start, …: no effect on happens-before.
		d.tick(tid)
	}
}

func (d *Detector) tick(t tidset.Tid) {
	(*d.clock(t))[int(t)]++
}

func (d *Detector) state(l location) *varState {
	s := d.vars[l]
	if s == nil {
		s = &varState{}
		d.vars[l] = s
	}
	return s
}

func (d *Detector) read(e *engine.Engine, tid tidset.Tid, l location) {
	s := d.state(l)
	c := d.clock(tid)
	if s.lastWrite != nil && s.lastWrite.tid != tid && !s.lastWrite.happenedBefore(*c) {
		d.report(e, l, *s.lastWrite, tid, false)
	}
	s.reads = append(s.reads, epoch{tid: tid, time: d.now(tid), step: d.step})
	d.tick(tid)
}

func (d *Detector) write(e *engine.Engine, tid tidset.Tid, l location) {
	s := d.state(l)
	c := d.clock(tid)
	if s.lastWrite != nil && s.lastWrite.tid != tid && !s.lastWrite.happenedBefore(*c) {
		d.report(e, l, *s.lastWrite, tid, true)
	}
	for _, r := range s.reads {
		if r.tid != tid && !r.happenedBefore(*c) {
			d.report(e, l, r, tid, false)
		}
	}
	s.lastWrite = &epoch{tid: tid, time: d.now(tid), step: d.step}
	s.reads = s.reads[:0]
	d.tick(tid)
}

func (d *Detector) report(e *engine.Engine, l location, prev epoch, tid tidset.Tid, ww bool) {
	name := fmt.Sprintf("#%d", l.obj)
	if int(l.obj) < len(e.Objects()) {
		_, _, n := e.Objects()[l.obj].ObjectInfo()
		name = n
	}
	r := Race{
		Obj: l.obj, ObjName: name, Elem: l.elem,
		FirstTid: prev.tid, FirstStep: prev.step,
		SecondTid: tid, SecondStep: d.step,
		WriteWrite: ww,
	}
	// Deduplicate by location and thread pair, keeping the first.
	key := fmt.Sprintf("%d/%d/%d/%d/%v", l.obj, l.elem, prev.tid, tid, ww)
	if _, ok := d.races[key]; !ok {
		d.races[key] = r
	}
}

// Summary renders the detector's findings.
func (d *Detector) Summary() string {
	races := d.Races()
	if len(races) == 0 {
		return "no races detected"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d race(s) detected:\n", len(races))
	for _, r := range races {
		fmt.Fprintf(&b, "  %s\n", r)
	}
	return b.String()
}
