// Package liveness classifies diverging executions.
//
// The fair stateless model checking semi-algorithm has two diverging
// outcomes (paper §2): in the limit it generates an infinite execution
// that either (2) violates the good-samaritan property GS — some
// thread is scheduled infinitely often but stops yielding — or (3) is
// fair, i.e. a fair nontermination: a livelock if the program was
// expected to fair-terminate.
//
// In practice the checker cannot generate an infinite execution; it
// stops at a large step bound and hands the finite prefix to the user
// (paper: "this execution is then examined by the user to see if it
// actually indicates an error"). Classify automates that examination:
// it inspects the tail of the bounded execution and decides which
// limit behaviour the prefix is converging to.
package liveness

import (
	"fmt"
	"sort"
	"strings"

	"fairmc/internal/engine"
	"fairmc/internal/tidset"
)

// Kind is the classification of a diverging execution.
type Kind int8

const (
	// NotDiverging: the execution did not hit the step bound.
	NotDiverging Kind = iota
	// GoodSamaritanViolation: in the execution tail some thread is
	// scheduled persistently without ever yielding — the program
	// breaks the contract that threads unable to make progress yield
	// (paper §4.3.1's worker-group bug).
	GoodSamaritanViolation
	// FairNontermination: the tail is consistent with a fair infinite
	// execution in which every running thread keeps yielding — a
	// livelock in a program expected to fair-terminate (paper §4.3.2's
	// Promise bug, Figure 1's dining philosophers).
	FairNontermination
)

func (k Kind) String() string {
	switch k {
	case NotDiverging:
		return "not diverging"
	case GoodSamaritanViolation:
		return "good-samaritan violation"
	case FairNontermination:
		return "fair nontermination (livelock)"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ThreadStat summarizes one thread's behaviour in the analyzed tail.
type ThreadStat struct {
	Tid    tidset.Tid
	Sched  int // transitions taken in the tail
	Yields int // yielding transitions among them
	// Agent marks a scheduler agent (e.g. a TSO flush agent): it takes
	// steps but is not a program thread, so the good-samaritan contract
	// does not apply to it and it is never a culprit.
	Agent bool
}

// Report is the result of classifying a diverging execution.
type Report struct {
	Kind Kind
	// Culprits are, for a good-samaritan violation, the threads that
	// run persistently without yielding; for a fair nontermination,
	// the threads participating in the livelock cycle.
	Culprits []tidset.Tid
	// TailStats describes every thread scheduled in the tail.
	TailStats []ThreadStat
	// Window is the number of trailing steps analyzed.
	Window int
}

// String renders the report for diagnostics.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (tail window %d steps)\n", r.Kind, r.Window)
	for _, s := range r.TailStats {
		agent := ""
		if s.Agent {
			agent = " (agent)"
		}
		fmt.Fprintf(&b, "  thread %d: %d steps, %d yields%s\n", s.Tid, s.Sched, s.Yields, agent)
	}
	if len(r.Culprits) > 0 {
		fmt.Fprintf(&b, "  culprits: %v\n", r.Culprits)
	}
	return b.String()
}

// Options tunes the classification heuristics.
type Options struct {
	// Window is the number of trailing steps to analyze; 0 derives it
	// from the trace length (half the trace, at least MinSched·4,
	// at most the whole trace).
	Window int
	// MinSched is the minimum number of tail transitions a thread
	// must take before its yield behaviour is judged; 0 means 8.
	MinSched int
}

// Classify analyzes a diverged execution. The result must carry a
// recorded trace (search reproduces divergences with tracing on).
func Classify(r *engine.Result, opts Options) *Report {
	if r.Outcome != engine.Diverged {
		return &Report{Kind: NotDiverging}
	}
	if len(r.Trace) == 0 {
		panic("liveness: Classify needs a recorded trace")
	}
	minSched := opts.MinSched
	if minSched <= 0 {
		minSched = 8
	}
	window := opts.Window
	if window <= 0 {
		window = len(r.Trace) / 2
		if window < 4*minSched {
			window = 4 * minSched
		}
	}
	if window > len(r.Trace) {
		window = len(r.Trace)
	}
	tail := r.Trace[len(r.Trace)-window:]

	// Agents (store-buffer flush owners, engine.AddAgent) take steps but
	// are not program threads: they never yield by design, so judging
	// them against GS would misreport every diverging TSO execution as a
	// good-samaritan violation.
	agents := map[tidset.Tid]bool{}
	for _, ts := range r.PerThread {
		if ts.Agent {
			agents[ts.Tid] = true
		}
	}

	stats := map[tidset.Tid]*ThreadStat{}
	for _, s := range tail {
		st := stats[s.Alt.Tid]
		if st == nil {
			st = &ThreadStat{Tid: s.Alt.Tid, Agent: agents[s.Alt.Tid]}
			stats[s.Alt.Tid] = st
		}
		st.Sched++
		if s.Yield {
			st.Yields++
		}
	}
	rep := &Report{Window: window}
	for _, st := range stats {
		rep.TailStats = append(rep.TailStats, *st)
	}
	sort.Slice(rep.TailStats, func(i, j int) bool {
		return rep.TailStats[i].Tid < rep.TailStats[j].Tid
	})

	// A thread that runs persistently in the tail without a single
	// yield converges to a GS violation; if every persistent thread
	// keeps yielding, the limit execution satisfies GS and — being
	// generated by the fair scheduler (Theorem 1: GS ⇒ SF) — is a
	// fair nontermination.
	for _, st := range rep.TailStats {
		if !st.Agent && st.Sched >= minSched && st.Yields == 0 {
			rep.Kind = GoodSamaritanViolation
			rep.Culprits = append(rep.Culprits, st.Tid)
		}
	}
	if rep.Kind == GoodSamaritanViolation {
		return rep
	}
	rep.Kind = FairNontermination
	for _, st := range rep.TailStats {
		if !st.Agent && st.Sched >= minSched {
			rep.Culprits = append(rep.Culprits, st.Tid)
		}
	}
	return rep
}
