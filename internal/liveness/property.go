package liveness

import (
	"fmt"
	"strings"

	"fairmc/internal/engine"
)

// This file implements the paper's stated next step — "we would like
// to extend CHESS to check an arbitrary liveness property" (§6) — for
// the fragment that matters in practice for multithreaded software:
// conjunctions of GF p ("p holds infinitely often") and FG p
// ("eventually p holds forever") over state predicates.
//
// A stateless checker can never observe an infinite execution; like
// the built-in fair-termination check, property checking works on the
// bounded prefix the fair scheduler generates before the divergence
// bound, interpreting its tail as the execution's limit behaviour:
//
//	GF p holds   if p is observed at least once in the tail window
//	             (a violation candidate otherwise);
//	FG p holds   if p holds at every observed tail state.
//
// These are sound *warnings*, not proofs, exactly like the paper's
// divergence warning: the user inspects the reported execution and, in
// the rare boundary case, increases the bound and reruns.

// Pred is a named predicate over the engine's state, sampled after
// every step of the monitored execution.
type Pred struct {
	Name string
	Eval func(*engine.Engine) bool
}

// Property is a liveness property: the conjunction of GF p for every
// p in InfinitelyOften and FG q for every q in EventuallyAlways.
type Property struct {
	InfinitelyOften  []Pred
	EventuallyAlways []Pred
}

// PropertyViolation describes one failed conjunct.
type PropertyViolation struct {
	// Pred is the predicate's name.
	Pred string
	// Temporal is "GF" or "FG".
	Temporal string
	// FailStep is the first tail step witnessing the failure (for FG),
	// or -1 (for GF, where the failure is the absence of a witness).
	FailStep int
}

func (v PropertyViolation) String() string {
	if v.Temporal == "GF" {
		return fmt.Sprintf("GF %s violated: never observed in the execution tail", v.Pred)
	}
	return fmt.Sprintf("FG %s violated: false at tail step %d", v.Pred, v.FailStep)
}

// PropertyReport is the result of monitoring a property.
type PropertyReport struct {
	// Diverged reports whether the execution reached the step bound;
	// liveness verdicts are only meaningful for diverging executions.
	Diverged bool
	// Violations lists the failed conjuncts (empty = property held on
	// the observed tail).
	Violations []PropertyViolation
	// Window is the number of tail samples analyzed.
	Window int
}

func (r *PropertyReport) String() string {
	if !r.Diverged {
		return "execution terminated; liveness property not applicable"
	}
	if len(r.Violations) == 0 {
		return fmt.Sprintf("property held on the %d-step tail", r.Window)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d liveness violation(s) on the %d-step tail:\n", len(r.Violations), r.Window)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	return b.String()
}

// PropertyMonitor samples a Property along an execution; attach it as
// the engine/search Monitor and call Report once the execution (or
// search) ends. The monitor keeps a sliding window of the most recent
// samples, so memory is bounded regardless of execution length.
type PropertyMonitor struct {
	prop   Property
	window int
	// ring buffers of samples, one per predicate, length window.
	gf   [][]bool
	fg   [][]bool
	n    int // samples seen this execution
	last *engine.Engine
}

// NewPropertyMonitor builds a monitor with the given tail window
// (0 means 256 samples).
func NewPropertyMonitor(prop Property, window int) *PropertyMonitor {
	if window <= 0 {
		window = 256
	}
	m := &PropertyMonitor{prop: prop, window: window}
	m.gf = make([][]bool, len(prop.InfinitelyOften))
	for i := range m.gf {
		m.gf[i] = make([]bool, window)
	}
	m.fg = make([][]bool, len(prop.EventuallyAlways))
	for i := range m.fg {
		m.fg[i] = make([]bool, window)
	}
	return m
}

// AfterInit implements engine.Monitor: reset for a new execution.
func (m *PropertyMonitor) AfterInit(e *engine.Engine) {
	m.n = 0
	m.last = e
}

// AfterStep implements engine.Monitor.
func (m *PropertyMonitor) AfterStep(e *engine.Engine) {
	slot := m.n % m.window
	for i, p := range m.prop.InfinitelyOften {
		m.gf[i][slot] = p.Eval(e)
	}
	for i, p := range m.prop.EventuallyAlways {
		m.fg[i][slot] = p.Eval(e)
	}
	m.n++
	m.last = e
}

// Report evaluates the property against the sampled tail of the
// execution described by res.
func (m *PropertyMonitor) Report(res *engine.Result) *PropertyReport {
	rep := &PropertyReport{Diverged: res.Outcome == engine.Diverged}
	if !rep.Diverged {
		return rep
	}
	window := m.window
	if m.n < window {
		window = m.n
	}
	rep.Window = window
	for i, p := range m.prop.InfinitelyOften {
		seen := false
		for s := 0; s < window; s++ {
			if m.gf[i][s] {
				seen = true
				break
			}
		}
		if !seen {
			rep.Violations = append(rep.Violations, PropertyViolation{
				Pred: p.Name, Temporal: "GF", FailStep: -1,
			})
		}
	}
	for i, p := range m.prop.EventuallyAlways {
		// Scan the tail in chronological order: oldest sample first.
		for s := 0; s < window; s++ {
			idx := s
			if m.n > m.window {
				idx = (m.n + s) % m.window
			}
			if !m.fg[i][idx] {
				rep.Violations = append(rep.Violations, PropertyViolation{
					Pred: p.Name, Temporal: "FG", FailStep: m.n - window + s,
				})
				break
			}
		}
	}
	return rep
}
