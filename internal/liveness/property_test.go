package liveness_test

import (
	"strings"
	"testing"

	"fairmc/internal/engine"
	"fairmc/internal/liveness"
	"fairmc/internal/syncmodel"
)

// tokenRing is a two-thread token passer that never terminates; the
// token alternates, so GF "thread 0 holds" and GF "thread 1 holds"
// both hold, while FG "thread 0 holds" fails.
func tokenRing(turn **syncmodel.IntVar) func(*engine.T) {
	return func(t *engine.T) {
		v := syncmodel.NewIntVar(t, "turn", 0)
		*turn = v
		for i := 0; i < 2; i++ {
			me := int64(i)
			t.Go("p", func(t *engine.T) {
				for {
					t.Label(1)
					if v.Load(t) == me {
						v.Store(t, 1-me)
					}
					t.Yield()
				}
			})
		}
	}
}

func runWithProperty(t *testing.T, mkProp func(*syncmodel.IntVar) liveness.Property) *liveness.PropertyReport {
	t.Helper()
	var turn *syncmodel.IntVar
	prog := tokenRing(&turn)
	var mon *liveness.PropertyMonitor
	// The predicate needs the IntVar created inside the execution, so
	// build the monitor lazily on first init via a shim.
	shim := &lazyMonitor{build: func() engine.Monitor {
		mon = liveness.NewPropertyMonitor(mkProp(turn), 64)
		return mon
	}}
	r := engine.Run(prog, engine.RunToCompletionChooser{}, engine.Config{
		Fair:     true,
		MaxSteps: 600,
		Monitor:  shim,
	})
	if r.Outcome != engine.Diverged {
		t.Fatalf("outcome = %v, want diverged", r.Outcome)
	}
	return mon.Report(r)
}

// lazyMonitor defers monitor construction until the program has set up
// its objects (AfterInit fires before the first step, but the turn
// variable is created during the main thread's first transition, so
// the real sampling starts at AfterStep anyway).
type lazyMonitor struct {
	build func() engine.Monitor
	inner engine.Monitor
}

func (l *lazyMonitor) AfterInit(e *engine.Engine) { l.inner = nil }
func (l *lazyMonitor) AfterStep(e *engine.Engine) {
	if l.inner == nil {
		l.inner = l.build()
		l.inner.AfterInit(e)
	}
	l.inner.AfterStep(e)
}

func TestGFHoldsOnAlternatingToken(t *testing.T) {
	rep := runWithProperty(t, func(turn *syncmodel.IntVar) liveness.Property {
		return liveness.Property{
			InfinitelyOften: []liveness.Pred{
				{Name: "turn=0", Eval: func(*engine.Engine) bool { return turn.Peek() == 0 }},
				{Name: "turn=1", Eval: func(*engine.Engine) bool { return turn.Peek() == 1 }},
			},
		}
	})
	if len(rep.Violations) != 0 {
		t.Fatalf("GF conjuncts violated: %s", rep)
	}
}

func TestFGFailsOnAlternatingToken(t *testing.T) {
	rep := runWithProperty(t, func(turn *syncmodel.IntVar) liveness.Property {
		return liveness.Property{
			EventuallyAlways: []liveness.Pred{
				{Name: "turn=0", Eval: func(*engine.Engine) bool { return turn.Peek() == 0 }},
			},
		}
	})
	if len(rep.Violations) != 1 || rep.Violations[0].Temporal != "FG" {
		t.Fatalf("expected one FG violation: %s", rep)
	}
	if !strings.Contains(rep.String(), "FG turn=0 violated") {
		t.Fatalf("report rendering: %s", rep)
	}
}

func TestGFFailsWhenPredicateNeverHolds(t *testing.T) {
	rep := runWithProperty(t, func(turn *syncmodel.IntVar) liveness.Property {
		return liveness.Property{
			InfinitelyOften: []liveness.Pred{
				{Name: "turn=7", Eval: func(*engine.Engine) bool { return turn.Peek() == 7 }},
			},
		}
	})
	if len(rep.Violations) != 1 || rep.Violations[0].Temporal != "GF" {
		t.Fatalf("expected one GF violation: %s", rep)
	}
}

func TestPropertyNotApplicableOnTermination(t *testing.T) {
	mon := liveness.NewPropertyMonitor(liveness.Property{
		InfinitelyOften: []liveness.Pred{{Name: "p", Eval: func(*engine.Engine) bool { return true }}},
	}, 16)
	r := engine.Run(func(t *engine.T) { t.Yield() }, engine.FirstChooser{}, engine.Config{
		Fair:    true,
		Monitor: mon,
	})
	rep := mon.Report(r)
	if rep.Diverged {
		t.Fatal("terminated run reported as diverged")
	}
	if !strings.Contains(rep.String(), "not applicable") {
		t.Fatalf("report: %s", rep)
	}
}
