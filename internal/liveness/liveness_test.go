package liveness_test

import (
	"strings"
	"testing"

	"fairmc/internal/engine"
	"fairmc/internal/liveness"
	"fairmc/internal/search"
	"fairmc/internal/syncmodel"
	"fairmc/internal/tidset"
)

// trace builds a synthetic diverged result from (tid, yield) pairs.
func trace(steps ...[2]int) *engine.Result {
	r := &engine.Result{Outcome: engine.Diverged}
	for _, s := range steps {
		r.Trace = append(r.Trace, engine.Step{
			Alt:   engine.Alt{Tid: tidset.Tid(s[0]), Arg: -1},
			Yield: s[1] == 1,
		})
	}
	r.Steps = int64(len(r.Trace))
	return r
}

func repeat(n int, steps ...[2]int) [][2]int {
	var out [][2]int
	for i := 0; i < n; i++ {
		out = append(out, steps...)
	}
	return out
}

func TestClassifyGSViolation(t *testing.T) {
	// Thread 1 spins without yielding for the whole tail.
	steps := repeat(100, [2]int{1, 0})
	rep := liveness.Classify(trace(steps...), liveness.Options{})
	if rep.Kind != liveness.GoodSamaritanViolation {
		t.Fatalf("kind = %v, want GS violation\n%s", rep.Kind, rep)
	}
	if len(rep.Culprits) != 1 || rep.Culprits[0] != 1 {
		t.Fatalf("culprits = %v, want [1]", rep.Culprits)
	}
}

func TestClassifyLivelock(t *testing.T) {
	// Two threads alternate, each yielding every other step: a fair
	// cycle.
	steps := repeat(50, [2]int{1, 0}, [2]int{1, 1}, [2]int{2, 0}, [2]int{2, 1})
	rep := liveness.Classify(trace(steps...), liveness.Options{})
	if rep.Kind != liveness.FairNontermination {
		t.Fatalf("kind = %v, want livelock\n%s", rep.Kind, rep)
	}
	if len(rep.Culprits) != 2 {
		t.Fatalf("culprits = %v, want both threads", rep.Culprits)
	}
}

func TestClassifyIgnoresSparseThreads(t *testing.T) {
	// A thread that takes only a couple of non-yielding steps in the
	// tail (below MinSched) must not be blamed for a GS violation.
	steps := append(repeat(40, [2]int{1, 0}, [2]int{1, 1}), [2]int{2, 0}, [2]int{2, 0})
	rep := liveness.Classify(trace(steps...), liveness.Options{})
	if rep.Kind != liveness.FairNontermination {
		t.Fatalf("kind = %v, want livelock\n%s", rep.Kind, rep)
	}
}

func TestClassifyNonDiverged(t *testing.T) {
	rep := liveness.Classify(&engine.Result{Outcome: engine.Terminated}, liveness.Options{})
	if rep.Kind != liveness.NotDiverging {
		t.Fatalf("kind = %v", rep.Kind)
	}
}

func TestClassifyRequiresTrace(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for missing trace")
		}
	}()
	liveness.Classify(&engine.Result{Outcome: engine.Diverged}, liveness.Options{})
}

func TestWindowOption(t *testing.T) {
	// Thread 1 yields early in the trace but stops yielding: with the
	// default half-trace window the early yields fall outside and the
	// GS violation is detected.
	var steps [][2]int
	steps = append(steps, repeat(10, [2]int{1, 1})...)
	steps = append(steps, repeat(90, [2]int{1, 0})...)
	rep := liveness.Classify(trace(steps...), liveness.Options{})
	if rep.Kind != liveness.GoodSamaritanViolation {
		t.Fatalf("kind = %v, want GS violation\n%s", rep.Kind, rep)
	}
	// With a window covering the whole trace the early yields mask it.
	rep = liveness.Classify(trace(steps...), liveness.Options{Window: 100})
	if rep.Kind != liveness.FairNontermination {
		t.Fatalf("kind = %v, want livelock with full window", rep.Kind)
	}
}

// TestEndToEndGSViolation drives a real program whose worker spins
// without yielding once a stop flag race strikes — a miniature of the
// paper's §4.3.1 — and checks the search+classification pipeline.
func TestEndToEndGSViolation(t *testing.T) {
	prog := func(t *engine.T) {
		flag := syncmodel.NewIntVar(t, "flag", 0)
		t.Go("spinner", func(t *engine.T) {
			for {
				t.Label(1)
				if flag.Load(t) == 1 {
					break
				}
				// BUG: spins without yielding.
			}
		})
		// Nobody ever sets flag; the spinner hogs the schedule.
	}
	rep := search.Explore(prog, search.Options{
		Fair:         true,
		ContextBound: -1,
		MaxSteps:     400,
	})
	if rep.Divergence == nil {
		t.Fatalf("no divergence: %+v", rep)
	}
	lrep := liveness.Classify(rep.Divergence, liveness.Options{})
	if lrep.Kind != liveness.GoodSamaritanViolation {
		t.Fatalf("kind = %v, want GS violation\n%s", lrep.Kind, lrep)
	}
}

// TestEndToEndLivelock drives a fair token-passing livelock through
// the pipeline.
func TestEndToEndLivelock(t *testing.T) {
	prog := func(t *engine.T) {
		turn := syncmodel.NewIntVar(t, "turn", 0)
		for i := 0; i < 2; i++ {
			me := int64(i)
			t.Go("p", func(t *engine.T) {
				for {
					t.Label(1)
					if turn.Load(t) == me {
						turn.Store(t, 1-me)
					}
					t.Yield()
				}
			})
		}
	}
	rep := search.Explore(prog, search.Options{
		Fair:         true,
		ContextBound: -1,
		MaxSteps:     400,
	})
	if rep.Divergence == nil {
		t.Fatalf("no divergence: %+v", rep)
	}
	lrep := liveness.Classify(rep.Divergence, liveness.Options{})
	if lrep.Kind != liveness.FairNontermination {
		t.Fatalf("kind = %v, want livelock\n%s", lrep.Kind, lrep)
	}
}

func TestKindStrings(t *testing.T) {
	cases := map[liveness.Kind]string{
		liveness.NotDiverging:           "not diverging",
		liveness.GoodSamaritanViolation: "good-samaritan violation",
		liveness.FairNontermination:     "fair nontermination (livelock)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if liveness.Kind(99).String() == "" {
		t.Error("unknown kind renders empty")
	}
}

func TestReportString(t *testing.T) {
	steps := repeat(50, [2]int{1, 0})
	rep := liveness.Classify(trace(steps...), liveness.Options{})
	s := rep.String()
	for _, want := range []string{"good-samaritan", "thread 1", "culprits"} {
		if !stringsContains(s, want) {
			t.Errorf("report %q missing %q", s, want)
		}
	}
}

func stringsContains(s, sub string) bool {
	return len(s) >= len(sub) && strings.Contains(s, sub)
}

func TestMinSchedOption(t *testing.T) {
	// A thread with 5 non-yielding steps: below the default MinSched
	// of 8 it is not blamed, with MinSched 3 it is.
	steps := append(repeat(30, [2]int{1, 0}, [2]int{1, 1}), repeat(5, [2]int{2, 0})...)
	rep := liveness.Classify(trace(steps...), liveness.Options{Window: len(steps)})
	if rep.Kind != liveness.FairNontermination {
		t.Fatalf("default MinSched: kind = %v", rep.Kind)
	}
	rep = liveness.Classify(trace(steps...), liveness.Options{Window: len(steps), MinSched: 3})
	if rep.Kind != liveness.GoodSamaritanViolation {
		t.Fatalf("MinSched=3: kind = %v", rep.Kind)
	}
}
