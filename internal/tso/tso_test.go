package tso_test

import (
	"testing"
	"time"

	"fairmc"
	"fairmc/conc"
	"fairmc/internal/tso"
	"fairmc/progs"
)

func TestStoreLoadForwarding(t *testing.T) {
	// A client always sees its own buffered stores (newest wins),
	// while the world sees global memory until the pump drains.
	prog := func(t *conc.T) {
		m := tso.New(t, "m", 2, 1, 4)
		m.Store(t, 0, 0, 7)
		m.Store(t, 0, 0, 9)
		t.Assert(m.Load(t, 0, 0) == 9, "forwarding returns newest own store")
		// Client 1 reads global memory: 0, 7 or 9 depending on drain
		// progress — but never anything else.
		v := m.Load(t, 1, 0)
		t.Assert(v == 0 || v == 7 || v == 9, "other client sees a real value")
		m.Fence(t, 0)
		t.Assert(m.Load(t, 1, 0) == 9, "after fence the store is global")
		m.Close(t)
	}
	res := mustCheck(t, prog, fairmc.Options{
		Fair: true, ContextBound: 1, MaxSteps: 10000, TimeLimit: 20 * time.Second,
	})
	if !res.Ok() {
		if res.FirstBug != nil {
			t.Fatalf("tso semantics: %s", res.FirstBug.FormatTrace())
		}
		t.Fatalf("divergence: %s", res.Liveness)
	}
}

func TestBufferStallBlocksStore(t *testing.T) {
	// Filling the buffer beyond capacity must not lose stores: the
	// storer stalls until the pump drains, and all values land.
	prog := func(t *conc.T) {
		m := tso.New(t, "m", 1, 1, 2)
		for i := int64(1); i <= 4; i++ {
			m.Store(t, 0, 0, i)
		}
		m.Fence(t, 0)
		t.Assert(m.Load(t, 0, 0) == 4, "last store visible after drain")
		m.Close(t)
	}
	r := fairmc.RunOnce(prog, fairmc.Defaults())
	if r.Outcome != fairmc.Terminated {
		t.Fatalf("outcome = %v\n%s", r.Outcome, r.FormatTrace())
	}
}

func TestPetersonBreaksUnderTSO(t *testing.T) {
	// The lexicographic DFS drowns in the pump threads' yield subtrees
	// before reaching the buggy ordering; the randomized schedulers
	// find it quickly (the strategy-comparison lesson in practice).
	p, _ := progs.Lookup("peterson-tso")
	res := mustCheck(t, p.Body, fairmc.Options{
		Fair: true, RandomWalk: true, MaxExecutions: 20000, MaxSteps: 5000, Seed: 3,
	})
	if res.FirstBug == nil {
		t.Fatalf("TSO mutual-exclusion violation not found by random walk (%d executions)",
			res.Executions)
	}
	pct := mustCheck(t, p.Body, fairmc.Options{
		Fair: true, PCT: true, PCTDepth: 3, MaxExecutions: 20000, MaxSteps: 5000, Seed: 3,
	})
	if pct.FirstBug == nil {
		t.Fatalf("TSO violation not found by PCT (%d executions)", pct.Executions)
	}
}

func TestPetersonFencedVerifiedUnderTSO(t *testing.T) {
	p, _ := progs.Lookup("peterson-tso-fenced")
	res := mustCheck(t, p.Body, fairmc.Options{
		Fair: true, ContextBound: 1, MaxSteps: 10000, TimeLimit: 15 * time.Second,
	})
	if !res.Ok() {
		if res.FirstBug != nil {
			t.Fatalf("fenced Peterson flagged: %s", res.FirstBug.FormatTrace())
		}
		t.Fatalf("divergence: %s", res.Liveness)
	}
	if !res.Exhausted {
		t.Logf("note: cb=1 search not exhausted within budget (%d executions)", res.Executions)
	}
	// The randomized schedulers that break the unfenced variant in
	// seconds stay clean on the fenced one.
	walk := mustCheck(t, p.Body, fairmc.Options{
		Fair: true, RandomWalk: true, MaxExecutions: 20000, MaxSteps: 5000, Seed: 3,
	})
	if !walk.Ok() {
		t.Fatalf("random walk flagged the fenced variant: %+v", walk.Report)
	}
}

// mustCheck unwraps the facade's error return; the options in these
// tests are statically valid.
func mustCheck(t *testing.T, prog func(*conc.T), opts fairmc.Options) *fairmc.Result {
	t.Helper()
	res, err := fairmc.Check(prog, opts)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return res
}
