package tso_test

import (
	"testing"
	"time"

	"fairmc"
	"fairmc/conc"
	"fairmc/internal/tso"
)

// The adapter pins TSO regardless of the search's memory-model option,
// so these tests run under default options; the searched-axis behaviour
// (SC vs -mm=tso verdicts, strategy coverage) is asserted on the progs
// fixtures in progs/weakmem_test.go.

func TestStoreLoadForwarding(t *testing.T) {
	// A client always sees its own buffered stores (newest wins),
	// while the world sees global memory until the buffer flushes.
	prog := func(t *conc.T) {
		m := tso.New(t, "m", 2, 1, 4)
		m.Store(t, 0, 0, 7)
		m.Store(t, 0, 0, 9)
		t.Assert(m.Load(t, 0, 0) == 9, "forwarding returns newest own store")
		// Client 1 reads global memory: 0, 7 or 9 depending on flush
		// progress — but never anything else.
		v := m.Load(t, 1, 0)
		t.Assert(v == 0 || v == 7 || v == 9, "other client sees a real value")
		m.Fence(t, 0)
		t.Assert(m.Load(t, 1, 0) == 9, "after fence the store is global")
		m.Close(t)
	}
	res := mustCheck(t, prog, fairmc.Options{
		Fair: true, ContextBound: 1, MaxSteps: 10000, TimeLimit: 20 * time.Second,
	})
	if !res.Ok() {
		if res.FirstBug != nil {
			t.Fatalf("tso semantics: %s", res.FirstBug.FormatTrace())
		}
		t.Fatalf("divergence: %s", res.Liveness)
	}
}

// TestBufferStallCap1 exercises the degenerate capacity: every second
// store must stall until the flush agent drains the single slot, under
// a search that enumerates the stall/flush interleavings.
func TestBufferStallCap1(t *testing.T) {
	prog := func(t *conc.T) {
		m := tso.New(t, "m", 1, 1, 1)
		for i := int64(1); i <= 3; i++ {
			m.Store(t, 0, 0, i)
		}
		m.Fence(t, 0)
		t.Assert(m.Load(t, 0, 0) == 3, "last store visible after drain")
		m.Close(t)
	}
	res := mustCheck(t, prog, fairmc.Options{
		Fair: true, ContextBound: -1, MaxSteps: 10000, TimeLimit: 20 * time.Second,
	})
	if !res.Ok() {
		t.Fatalf("cap-1 stall: bug=%v divergence=%v", res.FirstBug, res.Divergence)
	}
	if !res.Exhausted {
		t.Fatalf("cap-1 search did not exhaust: %+v", res.Report)
	}
}

// TestBufferStallCapN overfills a capacity-N buffer from two threads at
// once: no store may be lost, storers must stall rather than deadlock
// or spin, and the final memory must reflect some store of each
// variable.
func TestBufferStallCapN(t *testing.T) {
	prog := func(t *conc.T) {
		m := tso.New(t, "m", 2, 2, 2)
		wg := conc.NewWaitGroup(t, "wg", 2)
		for c := 0; c < 2; c++ {
			c := c
			t.Go("storer", func(t *conc.T) {
				for i := int64(1); i <= 4; i++ {
					m.Store(t, c, c, i)
				}
				m.Fence(t, c)
				t.Assert(m.Load(t, c, c) == 4, "own stores land in order")
				wg.Done(t)
			})
		}
		wg.Wait(t)
		m.Close(t)
		t.Assert(m.Load(t, 0, 0) == 4 && m.Load(t, 0, 1) == 4,
			"both threads' stores fully drained")
	}
	res := mustCheck(t, prog, fairmc.Options{
		Fair: true, ContextBound: 1, MaxSteps: 20000, TimeLimit: 30 * time.Second,
	})
	if !res.Ok() {
		if res.FirstBug != nil {
			t.Fatalf("cap-N stall: %s", res.FirstBug.FormatTrace())
		}
		t.Fatalf("cap-N divergence: %s", res.Liveness)
	}
}

// TestFenceWaitIsNotDivergence pins the fence fix: a fence over a full
// buffer is a disabled transition (the engine schedules flushes until
// the buffer drains), not a spin loop, so it can never be classified
// as a livelock or good-samaritan violation.
func TestFenceWaitIsNotDivergence(t *testing.T) {
	prog := func(t *conc.T) {
		m := tso.New(t, "m", 1, 1, 8)
		for i := int64(1); i <= 8; i++ {
			m.Store(t, 0, 0, i)
		}
		m.Fence(t, 0) // eight pending flushes; the fence must just wait
		m.Close(t)
	}
	res := mustCheck(t, prog, fairmc.Options{
		Fair: true, ContextBound: -1, MaxSteps: 200, TimeLimit: 20 * time.Second,
	})
	if res.Divergence != nil {
		t.Fatalf("fence wait misclassified as divergence: %s", res.Liveness)
	}
	if !res.Ok() || !res.Exhausted {
		t.Fatalf("fence program: %+v", res.Report)
	}
}

// mustCheck unwraps the facade's error return; the options in these
// tests are statically valid.
func mustCheck(t *testing.T, prog func(*conc.T), opts fairmc.Options) *fairmc.Result {
	t.Helper()
	res, err := fairmc.Check(prog, opts)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return res
}
