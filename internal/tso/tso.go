// Package tso is the forced-TSO compatibility adapter over the
// weak-memory subsystem (internal/wm).
//
// Historically this package modeled total store order with one *pump*
// model thread per client draining a hand-rolled ring buffer — flush
// delay was ordinary scheduler nondeterminism, at the cost of fake
// threads whose yield subtrees drowned systematic search. The engine
// now owns that machinery: wm registers one flush *agent* per storing
// thread (engine.AddAgent), so flushes are first-class schedulable
// steps with no goroutines behind them, covered by digests, DPOR, and
// the fair scheduler's priority relation. This adapter pins the model
// to TSO regardless of the search's -mm setting (its callers are TSO
// tests by construction); programs that should follow the searched
// memory-model axis use conc.NewMemory instead.
//
// API changes from the pump era, kept deliberately small:
//
//   - Store buffers are keyed by the *calling thread*, as on real
//     hardware; the client index c is retained in the signatures for
//     compatibility but no longer selects the buffer.
//   - Fence no longer spin-yields: the fence transition is enabled
//     only once the caller's buffer is empty, so a fence is a blocked
//     (then yielding) step that cannot trip the livelock detector.
//   - Close drains every buffer instead of stopping pump threads.
package tso

import (
	"fairmc/conc"
	"fairmc/internal/core"
	"fairmc/internal/wm"
)

// Memory is a TSO memory of nvars cells. Client slots are historical:
// buffers belong to calling threads.
type Memory struct {
	m *wm.Memory
}

// New creates a TSO-pinned memory. bufCap bounds each thread's store
// buffer; a store into a full buffer blocks the storer until a flush
// drains an entry (as real store buffers stall). nclients is accepted
// for compatibility and validated but otherwise unused — buffers are
// created per storing thread, on first store.
func New(t *conc.T, name string, nclients, nvars, bufCap int) *Memory {
	if nclients < 1 || nvars < 1 || bufCap < 1 {
		t.Failf("tso %q: bad shape (%d clients, %d vars, cap %d)", name, nclients, nvars, bufCap)
	}
	return &Memory{m: wm.NewWithModel(t, name, nvars, core.MemTSO, bufCap)}
}

// Store appends (v = val) to the calling thread's store buffer,
// blocking while the buffer is full.
func (m *Memory) Store(t *conc.T, c int, v int, val int64) {
	m.m.Store(t, v, val)
}

// Load reads v: newest matching entry of the calling thread's own
// buffer (store-to-load forwarding), else global memory.
func (m *Memory) Load(t *conc.T, c int, v int) int64 {
	return m.m.Load(t, v)
}

// Fence blocks the calling thread until its store buffer has drained —
// an MFENCE. The wait is a disabled transition, not a spin.
func (m *Memory) Fence(t *conc.T, c int) {
	m.m.Fence(t)
}

// Close blocks until every thread's store buffer has drained; call it
// when the clients are done, before asserting on final memory.
func (m *Memory) Close(t *conc.T) {
	m.m.Drain(t)
}

// WM returns the underlying weak-memory object, for tests that assert
// on buffer state.
func (m *Memory) WM() *wm.Memory { return m.m }
