// Package tso models total-store-order (x86-style) relaxed memory on
// top of the checker — the direction the CHESS project itself took
// next (Sober, the store-buffer-based relaxed-memory checker, came
// from the same group in the same year).
//
// Each client thread owns a FIFO store buffer. A store appends to the
// owner's buffer; a load first searches the owner's own buffer
// (store-to-load forwarding, newest entry wins) and falls back to
// global memory. Crucially, draining a buffer entry into global
// memory is performed by a dedicated *pump* model thread per client —
// so the flush delay is ordinary scheduler nondeterminism and the
// checker explores every TSO-admissible reordering with no engine
// changes at all. A Fence spin-waits (yielding, good-samaritan style)
// until the caller's buffer is empty.
//
// The classic demonstration lives in progs: Peterson's algorithm is
// correct under sequential consistency but broken under TSO unless a
// fence separates the intent-flag store from the rival-flag load.
package tso

import (
	"fmt"

	"fairmc/conc"
)

// Memory is a TSO memory of nvars cells shared by nclients client
// threads (client slots are assigned by the program, not thread ids).
type Memory struct {
	global *conc.IntArray
	// Per-client ring buffers of (var, val) pairs.
	bufVar []*conc.IntArray
	bufVal []*conc.IntArray
	head   []*conc.IntVar // next entry to drain
	tail   []*conc.IntVar // next free slot
	cap    int
	done   *conc.IntVar
	pumps  []*conc.Handle
}

// New creates a TSO memory and spawns one pump thread per client.
// bufCap bounds each store buffer; a store into a full buffer blocks
// the storer until the pump drains (as real store buffers stall).
func New(t *conc.T, name string, nclients, nvars, bufCap int) *Memory {
	if nclients < 1 || nvars < 1 || bufCap < 1 {
		t.Failf("tso %q: bad shape (%d clients, %d vars, cap %d)", name, nclients, nvars, bufCap)
	}
	m := &Memory{
		global: conc.NewIntArray(t, name+".mem", nvars),
		cap:    bufCap,
		done:   conc.NewIntVar(t, name+".done", 0),
	}
	for c := 0; c < nclients; c++ {
		m.bufVar = append(m.bufVar, conc.NewIntArray(t, fmt.Sprintf("%s.bv%d", name, c), bufCap))
		m.bufVal = append(m.bufVal, conc.NewIntArray(t, fmt.Sprintf("%s.bd%d", name, c), bufCap))
		m.head = append(m.head, conc.NewIntVar(t, fmt.Sprintf("%s.h%d", name, c), 0))
		m.tail = append(m.tail, conc.NewIntVar(t, fmt.Sprintf("%s.t%d", name, c), 0))
	}
	for c := 0; c < nclients; c++ {
		c := c
		m.pumps = append(m.pumps, t.Go(fmt.Sprintf("%s.pump%d", name, c), func(t *conc.T) {
			m.pump(t, c)
		}))
	}
	return m
}

// pump drains client c's buffer into global memory, one entry per
// transition, at scheduler-chosen moments — the flush nondeterminism.
func (m *Memory) pump(t *conc.T, c int) {
	for {
		t.Label(1)
		h := m.head[c].Load(t)
		tl := m.tail[c].Load(t)
		if h < tl {
			slot := int(h) % m.cap
			v := m.bufVar[c].Get(t, slot)
			val := m.bufVal[c].Get(t, slot)
			m.global.Set(t, int(v), val)
			m.head[c].Store(t, h+1)
			continue
		}
		if m.done.Load(t) == 1 {
			return
		}
		t.Yield() // empty buffer: be a good samaritan
	}
}

// Store appends (v = val) to client c's store buffer; it blocks
// (spin-yield) while the buffer is full.
func (m *Memory) Store(t *conc.T, c int, v int, val int64) {
	for {
		t.Label(2)
		h := m.head[c].Load(t)
		tl := m.tail[c].Load(t)
		if tl-h < int64(m.cap) {
			slot := int(tl) % m.cap
			m.bufVar[c].Set(t, slot, int64(v))
			m.bufVal[c].Set(t, slot, val)
			m.tail[c].Store(t, tl+1)
			return
		}
		t.Yield() // buffer stall
	}
}

// Load reads v as client c: newest matching entry of c's own buffer
// (store-to-load forwarding), else global memory.
func (m *Memory) Load(t *conc.T, c int, v int) int64 {
	h := m.head[c].Load(t)
	tl := m.tail[c].Load(t)
	for i := tl - 1; i >= h; i-- {
		slot := int(i) % m.cap
		if m.bufVar[c].Get(t, slot) == int64(v) {
			return m.bufVal[c].Get(t, slot)
		}
	}
	return m.global.Get(t, v)
}

// Fence blocks client c (spin-yield) until its store buffer has
// drained — an MFENCE.
func (m *Memory) Fence(t *conc.T, c int) {
	for {
		t.Label(3)
		if m.head[c].Load(t) == m.tail[c].Load(t) {
			return
		}
		t.Yield()
	}
}

// Close tells the pumps to exit once drained and joins them; call it
// when the clients are done, before asserting on final memory.
func (m *Memory) Close(t *conc.T) {
	m.done.Store(t, 1)
	for _, h := range m.pumps {
		h.Join(t)
	}
}
