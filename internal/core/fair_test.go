package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fairmc/internal/tidset"
)

const (
	tT = tidset.Tid(0) // thread t of Figure 3
	tU = tidset.Tid(1) // thread u of Figure 3
)

// TestFigure4Emulation replays the emulation of Algorithm 1 from
// Figure 4 of the paper: the scheduler runs thread u of the Figure 3
// spin-loop program continuously; after u's second yield the edge
// (u, t) appears in P and u becomes unschedulable, forcing t to run.
func TestFigure4Emulation(t *testing.T) {
	f := NewFair(2, 1)
	es := tidset.Of(tT, tU) // both threads enabled throughout

	// Initialization convention: S(u) = D(u) = Tid, E(u) = ∅, P = ∅.
	if !f.WindowS(tU).Equal(es) || !f.WindowD(tU).Equal(es) || !f.WindowE(tU).Empty() {
		t.Fatalf("bad init: %v", f)
	}
	if len(f.Edges()) != 0 {
		t.Fatalf("P not empty at init: %v", f.Edges())
	}

	// Step 1: u executes the while test (a,c) -> (a,d). Not a yield.
	f.OnStep(tU, false, es, es)
	if !f.WindowS(tU).Equal(es) || !f.WindowD(tU).Equal(es) || !f.WindowE(tU).Empty() {
		t.Fatalf("after step 1: %v", f)
	}

	// Step 2: u executes yield() (a,d) -> (a,c). First window closes;
	// H = (∅ ∪ {t,u}) \ {t,u} = ∅, so P stays empty and the window
	// sets are reset: S(u)=∅, D(u)=∅, E(u)=ES.
	f.OnStep(tU, true, es, es)
	if len(f.Edges()) != 0 {
		t.Fatalf("P not empty after first yield: %v", f.Edges())
	}
	if !f.WindowS(tU).Empty() || !f.WindowD(tU).Empty() || !f.WindowE(tU).Equal(es) {
		t.Fatalf("window not reset after first yield: %v", f)
	}

	// Step 3: u executes the while test again. S(u) = {u}.
	f.OnStep(tU, false, es, es)
	if !f.WindowS(tU).Equal(tidset.Of(tU)) || !f.WindowD(tU).Empty() || !f.WindowE(tU).Equal(es) {
		t.Fatalf("after step 3: %v", f)
	}
	// P still empty: the scheduler may still choose either thread.
	if got := f.Schedulable(es); !got.Equal(es) {
		t.Fatalf("Schedulable = %v, want %v", got, es)
	}

	// Step 4: u yields a second time. H = ({t,u} ∪ ∅) \ {u} = {t};
	// the edge (u, t) enters P.
	f.OnStep(tU, true, es, es)
	if !f.Priority(tU, tT) {
		t.Fatalf("edge (u,t) missing: %v", f.Edges())
	}
	if f.Priority(tT, tU) {
		t.Fatal("spurious edge (t,u)")
	}

	// Now T = {t}: the scheduler is forced to run t.
	if got := f.Schedulable(es); !got.Equal(tidset.Of(tT)) {
		t.Fatalf("Schedulable = %v, want {t}", got)
	}
	if !f.Blocked(tU, es) {
		t.Fatal("u not reported Blocked")
	}
	if f.Blocked(tT, es) {
		t.Fatal("t reported Blocked")
	}

	// If t were disabled, u would become schedulable again: the edge
	// only suppresses u while t is enabled.
	onlyU := tidset.Of(tU)
	if got := f.Schedulable(onlyU); !got.Equal(onlyU) {
		t.Fatalf("Schedulable with t disabled = %v, want {u}", got)
	}

	// Step 5: t runs (a,c) -> (b,c), setting x := 1. Line 13 removes
	// edges with sink t, but (u,t) has sink t... no: (u,t) has source
	// u and sink t, so scheduling t removes it.
	f.OnStep(tT, false, es, es)
	if f.Priority(tU, tT) {
		t.Fatalf("edge (u,t) not removed after t scheduled: %v", f.Edges())
	}
	if got := f.Schedulable(es); !got.Equal(es) {
		t.Fatalf("Schedulable = %v, want both", got)
	}
}

// TestFirstYieldInert verifies the initialization convention: a
// thread's very first yield never adds priority edges, for any
// interleaving prefix without other yields.
func TestFirstYieldInert(t *testing.T) {
	f := NewFair(3, 1)
	es := tidset.Universe(3)
	f.OnStep(0, false, es, es)
	f.OnStep(1, false, es, es)
	f.OnStep(2, true, es, es) // first yield of thread 2
	if len(f.Edges()) != 0 {
		t.Fatalf("first yield added edges: %v", f.Edges())
	}
}

// TestYieldFreeKeepsPEmpty is the heart of Theorem 5: along an
// execution with no yields the priority relation stays empty, so the
// fair scheduler behaves exactly like the unconstrained one.
func TestYieldFreeKeepsPEmpty(t *testing.T) {
	f := NewFair(4, 1)
	es := tidset.Universe(4)
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		tid := tidset.Tid(r.Intn(4))
		// Random enabled-set churn, never a yield.
		esAfter := tidset.New(4)
		for j := 0; j < 4; j++ {
			if r.Intn(3) > 0 {
				esAfter.Add(tidset.Tid(j))
			}
		}
		f.OnStep(tid, false, es, esAfter)
		es = esAfter
		if len(f.Edges()) != 0 {
			t.Fatalf("step %d: P nonempty without yields: %v", i, f.Edges())
		}
	}
}

// TestDisabledThreadGetsEdge exercises case 2 of Theorem 1: a thread u
// disabled by t inside t's window (and never scheduled) lands in D(t)
// and receives a priority edge at t's next yield.
func TestDisabledThreadGetsEdge(t *testing.T) {
	f := NewFair(2, 1)
	both := tidset.Of(0, 1)
	only0 := tidset.Of(0)

	// Open thread 0's first window with an inert yield.
	f.OnStep(0, true, both, both)
	// Thread 0 disables thread 1 (e.g. takes a lock 1 is waiting on).
	f.OnStep(0, false, both, only0)
	if !f.WindowD(0).Contains(1) {
		t.Fatalf("D(0) missing disabled thread: %v", f.WindowD(0))
	}
	// Thread 1 re-enables (thread 0 released the lock)...
	f.OnStep(0, false, only0, both)
	// ...and thread 0 yields: H = (E ∪ D) \ S ∋ 1.
	f.OnStep(0, true, both, both)
	if !f.Priority(0, 1) {
		t.Fatalf("edge (0,1) missing: %v", f.Edges())
	}
	if got := f.Schedulable(both); !got.Equal(tidset.Of(1)) {
		t.Fatalf("Schedulable = %v, want {1}", got)
	}
}

// TestScheduledThreadNoEdge: a thread that *was* scheduled during the
// window is in S(t) and must not receive an edge.
func TestScheduledThreadNoEdge(t *testing.T) {
	f := NewFair(2, 1)
	both := tidset.Of(0, 1)
	f.OnStep(0, true, both, both) // open window
	f.OnStep(1, false, both, both)
	f.OnStep(0, false, both, both)
	f.OnStep(0, true, both, both) // close window; 1 ∈ S(0)
	if f.Priority(0, 1) {
		t.Fatalf("edge (0,1) added although 1 was scheduled: %v", f.Edges())
	}
}

// TestEdgeRemovedWhenSinkScheduled: line 13 removes all edges with
// sink t when t is scheduled.
func TestEdgeRemovedWhenSinkScheduled(t *testing.T) {
	f := NewFair(2, 1)
	both := tidset.Of(0, 1)
	f.OnStep(0, true, both, both)
	f.OnStep(0, false, both, both)
	f.OnStep(0, true, both, both) // adds (0,1)
	if !f.Priority(0, 1) {
		t.Fatal("setup failed: edge (0,1) missing")
	}
	f.OnStep(1, false, both, both)
	if f.Priority(0, 1) {
		t.Fatal("edge (0,1) survived scheduling of 1")
	}
}

// TestKParameterization: with k = 2 only every second yield closes a
// window, so the edge appears one yield later than with k = 1.
func TestKParameterization(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		f := NewFair(2, k)
		both := tidset.Of(0, 1)
		// Repeated starvation loop: thread 0 runs one non-yield step
		// then yields, never scheduling thread 1.
		yields := 0
		edgeAt := -1
		for i := 0; i < 12; i++ {
			f.OnStep(0, false, both, both)
			f.OnStep(0, true, both, both)
			yields++
			if edgeAt < 0 && f.Priority(0, 1) {
				edgeAt = yields
			}
			if f.Priority(0, 1) {
				break
			}
		}
		// With k=1: first yield inert, second adds the edge (yield 2).
		// With k=2: boundaries at yields 2 and 4; first boundary inert
		// (window started at init), edge at yield 4. Generally 2k.
		want := 2 * k
		if edgeAt != want {
			t.Errorf("k=%d: edge after %d yields, want %d", k, edgeAt, want)
		}
	}
}

func TestNewFairBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFair with k=0 did not panic")
		}
	}()
	NewFair(2, 0)
}

func TestAddThreadOutOfOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddThread out of order did not panic")
		}
	}()
	f := NewFair(1, 1)
	f.AddThread(5)
}

func TestOnStepUnknownThreadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("OnStep for unknown thread did not panic")
		}
	}()
	f := NewFair(1, 1)
	f.OnStep(3, false, tidset.Of(0), tidset.Of(0))
}

// TestDynamicThreadCreation: window sets of existing threads absorb
// the new thread so that already-open windows stay inert for it.
func TestDynamicThreadCreation(t *testing.T) {
	f := NewFair(1, 1)
	one := tidset.Of(0)
	f.OnStep(0, true, one, one) // open thread 0's window
	f.AddThread(1)
	both := tidset.Of(0, 1)
	// Thread 0 yields; thread 1 was never scheduled and is not in
	// E(0) (E only shrinks), but it IS in S(0) and D(0) by the
	// creation convention, so H = ∅.
	f.OnStep(0, true, both, both)
	if len(f.Edges()) != 0 {
		t.Fatalf("creation convention violated: %v", f.Edges())
	}
	// But sustained starvation after creation still yields an edge.
	f.OnStep(0, false, both, both)
	f.OnStep(0, true, both, both)
	if !f.Priority(0, 1) {
		t.Fatalf("edge (0,1) missing after real starvation: %v", f.Edges())
	}
}

// randomWalk drives a Fair instance through n random steps and reports
// whether the Theorem 3 invariants held throughout: P acyclic, and
// Schedulable(es) empty iff es empty.
func randomWalk(seed int64, nthreads, steps, k int) bool {
	if nthreads < 1 {
		nthreads = 1
	}
	if k < 1 {
		k = 1
	}
	f := NewFair(nthreads, k)
	r := rand.New(rand.NewSource(seed))
	es := tidset.Universe(nthreads)
	for i := 0; i < steps; i++ {
		tset := f.Schedulable(es)
		if tset.Empty() != es.Empty() {
			return false
		}
		if es.Empty() {
			// Re-enable a random nonempty subset and continue.
			es.Add(tidset.Tid(r.Intn(nthreads)))
			continue
		}
		// Choose a random schedulable thread.
		cands := tset.Slice()
		tid := cands[r.Intn(len(cands))]
		// Random post enabled-set; keep it arbitrary (threads may
		// block, unblock, or exit).
		esAfter := tidset.New(nthreads)
		for j := 0; j < nthreads; j++ {
			if r.Intn(4) > 0 {
				esAfter.Add(tidset.Tid(j))
			}
		}
		f.OnStep(tid, r.Intn(3) == 0, es, esAfter)
		es = esAfter
		if !f.Acyclic() {
			return false
		}
	}
	return true
}

// TestQuickTheorem3Invariant is a property-based test of Theorem 3: P
// stays acyclic under arbitrary schedules, and the schedulable set is
// empty only when the enabled set is.
func TestQuickTheorem3Invariant(t *testing.T) {
	prop := func(seed int64, nthreads, k uint8) bool {
		return randomWalk(seed, int(nthreads%8)+1, 300, int(k%3)+1)
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickNoSelfEdges: P is irreflexive under arbitrary schedules
// (a corollary used in the Theorem 3 proof).
func TestQuickNoSelfEdges(t *testing.T) {
	prop := func(seed int64) bool {
		f := NewFair(4, 1)
		r := rand.New(rand.NewSource(seed))
		es := tidset.Universe(4)
		for i := 0; i < 200; i++ {
			cands := f.Schedulable(es).Slice()
			if len(cands) == 0 {
				return false
			}
			tid := cands[r.Intn(len(cands))]
			f.OnStep(tid, r.Intn(2) == 0, es, es)
			for _, e := range f.Edges() {
				if e[0] == e[1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestStarvationBoundedByTwoWindows mirrors Theorem 4 at the core
// level: a spinning thread that yields each iteration while another
// thread stays enabled is cut off by the priority relation after at
// most two full windows (two yields past the inert first one).
func TestStarvationBoundedByTwoWindows(t *testing.T) {
	f := NewFair(2, 1)
	both := tidset.Of(0, 1)
	spins := 0
	for {
		tset := f.Schedulable(both)
		if !tset.Contains(0) {
			break // spinner deprioritized
		}
		f.OnStep(0, false, both, both) // loop body
		f.OnStep(0, true, both, both)  // back-edge yield
		spins++
		if spins > 3 {
			t.Fatalf("spinner still schedulable after %d windows", spins)
		}
	}
	if spins != 2 {
		t.Fatalf("spinner ran %d windows before cutoff, want 2", spins)
	}
}

func TestStringSmoke(t *testing.T) {
	f := NewFair(2, 1)
	if f.String() == "" {
		t.Fatal("empty String()")
	}
	es := tidset.Of(0, 1)
	f.OnStep(0, true, es, es)
	f.OnStep(0, false, es, es)
	f.OnStep(0, true, es, es)
	if f.String() == "" {
		t.Fatal("empty String() after steps")
	}
}
