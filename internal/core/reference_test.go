package core

import (
	"math/rand"
	"testing"

	"fairmc/internal/tidset"
)

// refFair is a deliberately naive transcription of Algorithm 1's
// pseudocode using map-based sets, for differential testing against
// the bitset implementation. Lines refer to the paper's listing.
type refFair struct {
	p map[[2]int]bool // (t, u) ∈ P
	e []map[int]bool
	d []map[int]bool
	s []map[int]bool
	n int
}

func newRefFair(n int) *refFair {
	r := &refFair{p: map[[2]int]bool{}}
	for i := 0; i < n; i++ {
		r.addThread()
	}
	return r
}

func (r *refFair) addThread() {
	// init.E(u) := {}; init.D(u) := Tid; init.S(u) := Tid — with the
	// dynamic-creation convention: the newcomer also joins every
	// existing thread's S and D.
	id := r.n
	r.n++
	for u := 0; u < id; u++ {
		r.s[u][id] = true
		r.d[u][id] = true
	}
	e, d, s := map[int]bool{}, map[int]bool{}, map[int]bool{}
	for v := 0; v <= id; v++ {
		d[v] = true
		s[v] = true
	}
	r.e = append(r.e, e)
	r.d = append(r.d, d)
	r.s = append(r.s, s)
}

// schedulable computes T := ES \ pre(P, ES)   (line 7).
func (r *refFair) schedulable(es map[int]bool) map[int]bool {
	t := map[int]bool{}
	for x := range es {
		blocked := false
		for y := range es {
			if r.p[[2]int{x, y}] {
				blocked = true
				break
			}
		}
		if !blocked {
			t[x] = true
		}
	}
	return t
}

// onStep applies lines 13–29 for scheduled thread t.
func (r *refFair) onStep(t int, wasYield bool, esBefore, esAfter map[int]bool) {
	// Line 13: next.P := curr.P \ (Tid × {t}).
	for edge := range r.p {
		if edge[1] == t {
			delete(r.p, edge)
		}
	}
	// Lines 14–22.
	for u := 0; u < r.n; u++ {
		for v := range r.e[u] {
			if !esAfter[v] {
				delete(r.e[u], v)
			}
		}
		r.s[u][t] = true
	}
	for v := range esBefore {
		if !esAfter[v] {
			r.d[t][v] = true
		}
	}
	// Lines 23–29.
	if !wasYield {
		return
	}
	for v := 0; v < r.n; v++ {
		if (r.e[t][v] || r.d[t][v]) && !r.s[t][v] {
			r.p[[2]int{t, v}] = true
		}
	}
	r.e[t] = map[int]bool{}
	for v := range esAfter {
		r.e[t][v] = true
	}
	r.d[t] = map[int]bool{}
	r.s[t] = map[int]bool{}
}

func setOf(m map[int]bool) tidset.Set {
	var s tidset.Set
	for v, ok := range m {
		if ok {
			s.Add(tidset.Tid(v))
		}
	}
	return s
}

// TestDifferentialAgainstReference drives the production Fair and the
// naive transcription with the same random schedules (including
// dynamic thread creation) and demands identical schedulable sets and
// priority edges at every step.
func TestDifferentialAgainstReference(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(3)
		fair := NewFair(n, 1)
		ref := newRefFair(n)

		es := map[int]bool{}
		for i := 0; i < n; i++ {
			es[i] = true
		}

		for step := 0; step < 250; step++ {
			// Occasionally create a thread (exercises the dynamic
			// convention).
			if n < 6 && r.Intn(25) == 0 {
				fair.AddThread(tidset.Tid(n))
				ref.addThread()
				es[n] = true
				n++
			}
			wantT := ref.schedulable(es)
			gotT := fair.Schedulable(setOf(es))
			if !gotT.Equal(setOf(wantT)) {
				t.Fatalf("seed %d step %d: schedulable %v != reference %v\nimpl: %v",
					seed, step, gotT, setOf(wantT), fair)
			}
			if len(wantT) == 0 {
				// Everything disabled: re-enable someone and continue.
				es[r.Intn(n)] = true
				continue
			}
			// Choose a random schedulable thread.
			var cands []int
			for v := range wantT {
				cands = append(cands, v)
			}
			// Deterministic order for rand.
			for i := 1; i < len(cands); i++ {
				for j := i; j > 0 && cands[j] < cands[j-1]; j-- {
					cands[j], cands[j-1] = cands[j-1], cands[j]
				}
			}
			tid := cands[r.Intn(len(cands))]
			wasYield := r.Intn(3) == 0
			esAfter := map[int]bool{}
			for v := 0; v < n; v++ {
				if r.Intn(4) > 0 {
					esAfter[v] = true
				}
			}
			ref.onStep(tid, wasYield, es, esAfter)
			fair.OnStep(tidset.Tid(tid), wasYield, setOf(es), setOf(esAfter))
			es = esAfter

			// Compare the full priority relation.
			for x := 0; x < n; x++ {
				for y := 0; y < n; y++ {
					want := ref.p[[2]int{x, y}]
					got := fair.Priority(tidset.Tid(x), tidset.Tid(y))
					if want != got {
						t.Fatalf("seed %d step %d: edge (%d,%d) impl=%v ref=%v",
							seed, step, x, y, got, want)
					}
				}
			}
		}
	}
}
