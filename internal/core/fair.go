// Package core implements the fair demonic scheduler of Musuvathi &
// Qadeer, "Fair Stateless Model Checking" (PLDI 2008), Algorithm 1.
//
// The scheduler maintains, along the execution being explored:
//
//   - a priority relation P ⊆ Tid × Tid: if (t, u) ∈ P then t may be
//     scheduled in a state only when u is disabled in that state;
//   - for every thread t, three window sets describing the execution
//     since the last yield of t:
//     S(t) — threads scheduled since the last yield of t,
//     E(t) — threads continuously enabled since the last yield of t,
//     D(t) — threads disabled by a transition of t since the last yield.
//
// At every scheduling point the set of schedulable threads is
//
//	T = ES \ pre(P, ES),  pre(P, X) = {x | ∃y. (x,y) ∈ P ∧ y ∈ X}
//
// and when a thread t takes a yielding transition, the algorithm adds
// the edges {t} × H with H = (E(t) ∪ D(t)) \ S(t), deprioritizing the
// yielder below every thread it starved or disabled during the window.
//
// The implementation preserves the paper's theorems:
//
//	Thm 1: every infinite execution generated satisfies GS ⇒ SF.
//	Thm 3: P stays acyclic, so T = ∅ iff ES = ∅ (no false deadlocks).
//	Thm 4: an unfair cycle is unrolled at most twice.
//	Thm 5: all yield-free executions survive (P empty without yields).
//
// The state is recomputed deterministically during stateless replay;
// it is cheap: a handful of bitset operations per step.
package core

import (
	"fmt"
	"sort"
	"strings"

	"fairmc/internal/tidset"
)

// Fair is the scheduler state threaded along one execution. The zero
// value is not usable; call NewFair. Fair is not safe for concurrent
// use; the engine runs strictly single-threaded.
type Fair struct {
	// p[t] is the successor set of t in P: u ∈ p[t] iff (t, u) ∈ P,
	// meaning t may run only when u is disabled.
	p []tidset.Set
	e []tidset.Set // E(t)
	d []tidset.Set // D(t)
	s []tidset.Set // S(t)

	// n is the number of registered threads. The slices above may be
	// longer: Reset keeps their storage (and each element's bitset
	// storage) so a pooled engine re-registers threads allocation-free,
	// and AddThread re-initializes slots below len in place.
	n int

	scratch tidset.Set // per-step temporary, reused across OnStep calls
	hbuf    tidset.Set // window-close H buffer, reused across OnStep calls

	// yieldSeen[t] counts yielding transitions of t, for the k-th
	// yield parameterization at the end of §3 of the paper: window
	// boundaries are processed only at every k-th yield.
	yieldSeen []int
	k         int

	universe tidset.Set // all thread ids ever created

	// Priority-graph churn counters: edgeAdds counts insertions by
	// "P := P ∪ {t}×H" (lines 23–29), edgeErases removals by
	// "P := P \ (Tid × {t})" (line 13). Exposed via EdgeStats for the
	// observability layer; deterministic along a replayed execution.
	edgeAdds   int64
	edgeErases int64
}

// NewFair returns a fair scheduler state for an execution starting
// with nthreads threads (ids 0..nthreads-1). k selects the k-th-yield
// parameterization; k = 1 is Algorithm 1 exactly. k < 1 panics.
func NewFair(nthreads, k int) *Fair {
	if k < 1 {
		panic(fmt.Sprintf("core: yield parameter k = %d, want >= 1", k))
	}
	f := &Fair{k: k}
	for i := 0; i < nthreads; i++ {
		f.AddThread(tidset.Tid(i))
	}
	return f
}

// AddThread registers a new thread t. Per the paper's initialization
// convention (init.E(u) = ∅, init.D(u) = Tid, init.S(u) = Tid), the
// window sets are seeded so that the first yield of t adds no edges:
// the first window of a thread begins only after its first yield.
//
// Dynamic thread creation extends the paper's fixed-Tid model: the new
// thread is also inserted into S(u) and D(u) of every existing thread
// u, which keeps the "first window is inert" property for windows that
// were already open when t was created. This weakens, never
// strengthens, the edges added at the enclosing yields, so the
// fairness guarantee (Theorem 1) and the no-false-deadlock guarantee
// (Theorem 3) are preserved.
func (f *Fair) AddThread(t tidset.Tid) {
	if int(t) != f.n {
		panic(fmt.Sprintf("core: AddThread(%d), want next id %d", t, f.n))
	}
	f.universe.Add(t)
	for u := 0; u < f.n; u++ {
		f.s[u].Add(t)
		f.d[u].Add(t)
	}
	if f.n < len(f.p) {
		// Reuse the storage a Reset retained for this slot.
		f.p[f.n].Clear()
		f.e[f.n].Clear()
		f.d[f.n].CopyFrom(f.universe)
		f.s[f.n].CopyFrom(f.universe)
		f.yieldSeen[f.n] = 0
	} else {
		f.p = append(f.p, tidset.Set{})
		f.e = append(f.e, tidset.Set{})
		f.d = append(f.d, f.universe.Clone())
		f.s = append(f.s, f.universe.Clone())
		f.yieldSeen = append(f.yieldSeen, 0)
	}
	f.n++
}

// Reset returns f to the state NewFair(0, k) would produce, keeping
// all backing storage so a pooled engine can rebuild the scheduler
// state for its next execution without allocating.
func (f *Fair) Reset(k int) {
	if k < 1 {
		panic(fmt.Sprintf("core: yield parameter k = %d, want >= 1", k))
	}
	f.k = k
	f.n = 0
	f.universe.Clear()
	f.edgeAdds = 0
	f.edgeErases = 0
}

// NumThreads returns the number of threads registered so far.
func (f *Fair) NumThreads() int { return f.n }

// Schedulable returns T = ES \ pre(P, ES): the enabled threads not
// priority-blocked by another enabled thread. By Theorem 3 the result
// is empty iff es is empty.
func (f *Fair) Schedulable(es tidset.Set) tidset.Set {
	var t tidset.Set
	f.SchedulableInto(&t, es)
	return t
}

// SchedulableInto is Schedulable writing into dst's storage, for hot
// loops that compute T every step. Returns *dst for convenience.
func (f *Fair) SchedulableInto(dst *tidset.Set, es tidset.Set) tidset.Set {
	dst.CopyFrom(es)
	es.ForEach(func(x tidset.Tid) {
		if int(x) < f.n && f.p[x].Intersects(es) {
			dst.Remove(x)
		}
	})
	return *dst
}

// Blocked reports whether thread t, although enabled, is excluded from
// scheduling by a priority edge to a currently enabled thread. The
// context-bounded search uses this to avoid counting fairness-forced
// context switches as preemptions (paper §4).
func (f *Fair) Blocked(t tidset.Tid, es tidset.Set) bool {
	return int(t) < f.n && f.p[t].Intersects(es)
}

// OnStep applies one iteration of Algorithm 1's update (lines 13–29)
// after thread t executed a transition. wasYield must be the value of
// yield(t) in the pre-state (the transition just executed was a
// yielding one); esBefore and esAfter are the enabled sets of the pre-
// and post-state.
//
// When the transition closes t's yield window (its k-th yield), OnStep
// returns closed = true and h = (E(t) ∪ D(t)) \ S(t), the edge set just
// added as {t}×H. Otherwise closed is false and h is the empty set.
// Callers that only drive the scheduler may ignore both results.
//
// The returned h aliases a buffer owned by f and is valid only until
// the next OnStep (or Reset) call; callers that retain it must copy.
func (f *Fair) OnStep(t tidset.Tid, wasYield bool, esBefore, esAfter tidset.Set) (h tidset.Set, closed bool) {
	if int(t) >= f.n {
		panic(fmt.Sprintf("core: OnStep for unknown thread %d", t))
	}
	// Line 13: next.P := curr.P \ (Tid × {t}) — drop edges with sink t,
	// decreasing the relative priority of the just-scheduled thread.
	for u := 0; u < f.n; u++ {
		if f.p[u].Contains(t) {
			f.p[u].Remove(t)
			f.edgeErases++
		}
	}
	// Lines 14–22: window bookkeeping.
	f.scratch.CopyFrom(esBefore)
	f.scratch.MinusWith(esAfter)
	disabledNow := f.scratch
	for u := 0; u < f.n; u++ {
		f.e[u].IntersectWith(esAfter)
		f.s[u].Add(t)
	}
	f.d[t].UnionWith(disabledNow)

	// Lines 23–29: close the window of t on a yielding transition.
	if !wasYield {
		return tidset.Set{}, false
	}
	f.yieldSeen[t]++
	if f.yieldSeen[t]%f.k != 0 {
		return tidset.Set{}, false // k-th yield parameterization: skip this boundary
	}
	f.hbuf.CopyFrom(f.e[t])
	f.hbuf.UnionWith(f.d[t])
	f.hbuf.MinusWith(f.s[t])
	h = f.hbuf
	// t ∈ S(t) always holds here (line 21 added t), so H never
	// contains t and P stays irreflexive and acyclic (Theorem 3).
	f.p[t].UnionWith(h)
	f.edgeAdds += int64(h.Len())
	// In-place resets keep each slot's bitset storage across windows
	// (and, through Reset, across pooled executions).
	f.e[t].CopyFrom(esAfter)
	f.d[t].Clear()
	f.s[t].Clear()
	return h, true
}

// EdgeStats returns the number of priority-edge insertions and
// removals performed so far along this execution.
func (f *Fair) EdgeStats() (adds, erases int64) { return f.edgeAdds, f.edgeErases }

// Priority reports whether the edge (t, u) is currently in P.
func (f *Fair) Priority(t, u tidset.Tid) bool {
	return int(t) < f.n && f.p[t].Contains(u)
}

// PrioritySuccessors returns a copy of {u | (t, u) ∈ P}.
func (f *Fair) PrioritySuccessors(t tidset.Tid) tidset.Set {
	if int(t) >= f.n {
		return tidset.Set{}
	}
	return f.p[t].Clone()
}

// Edges returns every edge of P in deterministic order.
func (f *Fair) Edges() [][2]tidset.Tid {
	var out [][2]tidset.Tid
	for t := 0; t < f.n; t++ {
		f.p[t].ForEach(func(u tidset.Tid) {
			out = append(out, [2]tidset.Tid{tidset.Tid(t), u})
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// WindowE returns a copy of E(t) (threads continuously enabled since
// the last yield of t).
func (f *Fair) WindowE(t tidset.Tid) tidset.Set { return f.e[t].Clone() }

// WindowD returns a copy of D(t) (threads disabled by t since its last
// yield).
func (f *Fair) WindowD(t tidset.Tid) tidset.Set { return f.d[t].Clone() }

// WindowS returns a copy of S(t) (threads scheduled since the last
// yield of t).
func (f *Fair) WindowS(t tidset.Tid) tidset.Set { return f.s[t].Clone() }

// YieldCount returns the number of yielding transitions taken by t.
func (f *Fair) YieldCount(t tidset.Tid) int { return f.yieldSeen[t] }

// Acyclic reports whether P, viewed as a directed graph, is acyclic.
// Theorem 3 proves this is an invariant; it is exported for tests and
// for the engine's internal self-checks.
func (f *Fair) Acyclic() bool {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, f.n)
	var visit func(int) bool
	visit = func(v int) bool {
		color[v] = grey
		ok := true
		f.p[v].ForEach(func(u tidset.Tid) {
			switch color[u] {
			case grey:
				ok = false
			case white:
				if !visit(int(u)) {
					ok = false
				}
			}
		})
		color[v] = black
		return ok
	}
	for v := 0; v < f.n; v++ {
		if color[v] == white && !visit(v) {
			return false
		}
	}
	return true
}

// String renders the priority relation and window sets for debugging.
func (f *Fair) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "P=%v", f.Edges())
	for t := 0; t < f.n; t++ {
		fmt.Fprintf(&b, " S(%d)=%v D(%d)=%v E(%d)=%v", t, f.s[t], t, f.d[t], t, f.e[t])
	}
	return b.String()
}
