package core

import "fmt"

// MemModel selects the memory model an execution runs under. The model
// is a searched dimension of the checker, not a property of the
// program: the same model program can be explored under sequential
// consistency and under TSO, and the search enumerates the extra
// nondeterminism (store-buffer flush interleavings) the weaker model
// introduces.
//
// The enum lives in core so that the engine, the weak-memory subsystem
// (internal/wm), and the search can all name the model without import
// cycles, the same way the fair-scheduler state does.
type MemModel int8

const (
	// MemSC is sequential consistency: every store is globally visible
	// the moment it executes. The default, and the model the paper's
	// CHESS assumes.
	MemSC MemModel = iota
	// MemTSO is total store order (x86-style): stores enter a per-thread
	// FIFO buffer and become globally visible only when a separately
	// scheduled flush step drains them; loads forward from the issuing
	// thread's own buffer first. Flush steps are schedulable transitions
	// subject to the fair scheduler's priority relation P, following
	// "Making Weak Memory Models Fair" (Lahav et al.) and "Unified
	// Fairness for Weak Memory Verification" (Abdulla et al.).
	MemTSO
)

func (m MemModel) String() string {
	switch m {
	case MemSC:
		return "sc"
	case MemTSO:
		return "tso"
	default:
		return fmt.Sprintf("memmodel(%d)", int(m))
	}
}

// ParseMemModel resolves the user-facing model name ("sc", "tso"; ""
// means sc).
func ParseMemModel(s string) (MemModel, error) {
	switch s {
	case "", "sc":
		return MemSC, nil
	case "tso":
		return MemTSO, nil
	default:
		return MemSC, fmt.Errorf("unknown memory model %q (have: sc, tso)", s)
	}
}
