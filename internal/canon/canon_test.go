package canon_test

import (
	"testing"

	"fairmc/internal/canon"
	"fairmc/internal/engine"
	"fairmc/internal/search"
	"fairmc/internal/state"
	"fairmc/internal/syncmodel"
	"fairmc/internal/tidset"
)

// symmetricCreators is a program in which two spawned threads each
// create a mutex and lock it; the raw object ids and the lock owners
// depend on which thread ran first, so the "both workers parked after
// locking their own mutex" state fingerprints differently raw per
// schedule, but identically canonically.
func symmetricCreators(t *engine.T) {
	gate := syncmodel.NewIntVar(t, "gate", 0)
	for i := 0; i < 2; i++ {
		t.Go("worker", func(t *engine.T) {
			m := syncmodel.NewMutex(t, "mine")
			m.Lock(t)
			for gate.Load(t) == 0 {
				t.Yield()
			}
			m.Unlock(t)
		})
	}
	gate.Store(t, 1)
}

// runSchedule replays one prefix and returns raw and canonical
// fingerprints of the state it stops in.
func runSchedule(t *testing.T, prefix []engine.Alt) (raw, can engine.Fingerprint) {
	t.Helper()
	type capture struct {
		raw, can engine.Fingerprint
	}
	var c capture
	mon := engine.FuncChooser(func(ctx *engine.ChooseContext) (engine.Alt, bool) {
		c.raw = ctx.Engine.Fingerprint()
		c.can = canon.Fingerprint(ctx.Engine)
		return engine.Alt{}, false
	})
	_ = mon
	ch := &engine.ReplayChooser{Schedule: prefix, Strict: true}
	r := engine.Run(symmetricCreators, engine.FuncChooser(func(ctx *engine.ChooseContext) (engine.Alt, bool) {
		a, ok := ch.Choose(ctx)
		if !ok {
			c.raw = ctx.Engine.Fingerprint()
			c.can = canon.Fingerprint(ctx.Engine)
			return engine.Alt{}, false
		}
		return a, ok
	}), engine.Config{Fair: false, MaxSteps: 1000})
	if r.Outcome != engine.Aborted {
		t.Fatalf("prefix run outcome = %v", r.Outcome)
	}
	return c.raw, c.can
}

func alt(tid int) engine.Alt { return engine.Alt{Tid: tidset.Tid(tid), Arg: -1} }

func TestCanonicalFingerprintMergesSymmetricStates(t *testing.T) {
	// Schedule A: main spawns both, worker 1 creates+locks, then
	// worker 2 creates+locks. Schedule B: worker 2 first, then
	// worker 1. In both final states each worker holds "its" mutex
	// and is about to load the gate.
	schedA := []engine.Alt{
		alt(0), alt(0), alt(0), // main: start, spawn, spawn
		alt(1), alt(1), // w1: start(create mutex)+lock published... lock, load
		alt(2), alt(2),
	}
	schedB := []engine.Alt{
		alt(0), alt(0), alt(0),
		alt(2), alt(2),
		alt(1), alt(1),
	}
	rawA, canA := runSchedule(t, schedA)
	rawB, canB := runSchedule(t, schedB)
	if rawA == rawB {
		t.Log("note: raw fingerprints already equal (object order coincided)")
	}
	if canA != canB {
		t.Fatalf("canonical fingerprints differ for symmetric states:\nA=%+v\nB=%+v", canA, canB)
	}
}

func TestCanonicalMatchesRawForMainOnlyCreation(t *testing.T) {
	// For programs whose objects and threads are all created by main,
	// canonical and raw coverage must agree exactly.
	prog := func(t *engine.T) {
		x := syncmodel.NewIntVar(t, "x", 0)
		m := syncmodel.NewMutex(t, "m")
		wg := syncmodel.NewWaitGroup(t, "wg", 2)
		for i := 0; i < 2; i++ {
			t.Go("w", func(t *engine.T) {
				m.Lock(t)
				x.Add(t, 1)
				m.Unlock(t)
				wg.Done(t)
			})
		}
		wg.Wait(t)
	}
	rawCov := state.NewCoverage()
	canCov := canon.NewCoverage()
	rep := search.Explore(prog, search.Options{
		Fair:         true,
		ContextBound: -1,
		MaxSteps:     10000,
		Monitor:      engine.MultiMonitor{rawCov, canCov},
	})
	if !rep.Exhausted {
		t.Fatalf("search not exhausted: %+v", rep)
	}
	if rawCov.Count() != canCov.Count() {
		t.Fatalf("raw %d states, canonical %d states", rawCov.Count(), canCov.Count())
	}
}

func TestCanonicalNeverSplitsStates(t *testing.T) {
	// Canonicalization may only merge states, never split them: on any
	// program the canonical count is <= the raw count.
	canCov := canon.NewCoverage()
	rawCov := state.NewCoverage()
	rep := search.Explore(symmetricCreators, search.Options{
		Fair:         true,
		ContextBound: -1,
		MaxSteps:     10000,
		Monitor:      engine.MultiMonitor{rawCov, canCov},
	})
	if !rep.Exhausted {
		t.Fatalf("search not exhausted: %+v", rep)
	}
	if canCov.Count() > rawCov.Count() {
		t.Fatalf("canonical %d > raw %d", canCov.Count(), rawCov.Count())
	}
	if canCov.Count() >= rawCov.Count() {
		t.Fatalf("expected canonicalization to merge symmetric states: canonical %d, raw %d",
			canCov.Count(), rawCov.Count())
	}
}
