// Package canon computes schedule-independent ("canonicalized") state
// fingerprints.
//
// The engine's raw fingerprints encode threads and objects in creation
// order, which is deterministic for a given schedule but may differ
// between schedules when several threads create threads or objects
// concurrently: the same logical state then hashes differently and
// coverage is overcounted. The paper faced the analogous problem with
// heap addresses and applied Iosif's heap canonicalization [14]; this
// package is the model-level equivalent:
//
//   - every thread gets a canonical name: its spawn path from the main
//     thread (main = ε, the k-th child of p = p.k), which is invariant
//     under scheduling;
//   - threads are encoded in spawn-path order and every embedded
//     thread id (lock owners, waiter queues, join targets) is remapped
//     to the canonical index;
//   - objects are keyed by (creator's canonical name, per-thread
//     creation sequence) — likewise schedule-invariant — and encoded
//     in that order, with object references remapped.
//
// Programs whose spawns and object creations all happen on the main
// thread (the coverage programs) hash identically raw or canonical;
// programs with symmetric concurrent creation need canon for exact
// state counting.
package canon

import (
	"encoding/binary"
	"sort"

	"fairmc/internal/engine"
	"fairmc/internal/tidset"
)

// Fingerprint returns the canonical fingerprint of the engine's
// current state.
func Fingerprint(e *engine.Engine) engine.Fingerprint {
	return engine.HashBytes(AppendStateBytes(e, nil))
}

// AppendStateBytes appends the canonical state encoding to buf.
func AppendStateBytes(e *engine.Engine, buf []byte) []byte {
	tidOrder, tidMap := threadOrder(e)
	mapTid := func(t tidset.Tid) tidset.Tid {
		if t < 0 || int(t) >= len(tidMap) {
			return t
		}
		return tidMap[t]
	}
	objOrder, objMap := objectOrder(e, tidMap)

	buf = binary.AppendUvarint(buf, uint64(len(tidOrder)))
	for _, t := range tidOrder {
		s := e.SnapshotThread(t)
		buf = append(buf, s.Status)
		if !s.Live {
			continue
		}
		buf = binary.AppendVarint(buf, int64(s.PC))
		buf = binary.AppendVarint(buf, int64(s.SinceLabel))
		buf = appendString(buf, s.Pending.Kind)
		obj := s.Pending.Obj
		if obj != engine.NoObj && int(obj) < len(objMap) {
			obj = objMap[obj]
		}
		buf = binary.AppendVarint(buf, int64(obj))
		aux := s.Pending.Aux
		if s.Pending.Kind == "join" || s.Pending.Kind == "spawn" {
			aux = int64(mapTid(tidset.Tid(aux)))
		}
		buf = binary.AppendVarint(buf, aux)
		if s.Enabled {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}

	objects := e.Objects()
	buf = binary.AppendUvarint(buf, uint64(len(objOrder)))
	for _, id := range objOrder {
		obj := objects[id]
		_, kind, name := obj.ObjectInfo()
		buf = appendString(buf, kind)
		buf = appendString(buf, name)
		if c, ok := obj.(engine.CanonicalObject); ok {
			buf = c.AppendStateMapped(buf, mapTid)
		} else {
			buf = obj.AppendState(buf)
		}
	}
	return buf
}

// threadOrder returns the thread ids sorted by canonical spawn path,
// plus the raw-to-canonical index map.
func threadOrder(e *engine.Engine) (order []tidset.Tid, tidMap []tidset.Tid) {
	n := e.NumThreads()
	paths := make([][]int, n)
	for i := 0; i < n; i++ {
		paths[i] = spawnPath(e, tidset.Tid(i))
	}
	order = make([]tidset.Tid, n)
	for i := range order {
		order[i] = tidset.Tid(i)
	}
	sort.Slice(order, func(a, b int) bool {
		return lessPath(paths[order[a]], paths[order[b]])
	})
	tidMap = make([]tidset.Tid, n)
	for canonIdx, raw := range order {
		tidMap[raw] = tidset.Tid(canonIdx)
	}
	return order, tidMap
}

// spawnPath returns the spawn-sequence path from the main thread.
func spawnPath(e *engine.Engine, t tidset.Tid) []int {
	var rev []int
	for t != tidset.None {
		parent, seq := e.ThreadMeta(t)
		if parent == tidset.None {
			break // main thread: empty path element
		}
		rev = append(rev, seq)
		t = parent
	}
	// Reverse into root-first order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

func lessPath(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// objectOrder returns object ids sorted by (creator canonical path,
// creation seq), plus the raw-to-canonical ObjID map. Objects
// registered without attribution sort after attributed ones, by raw
// id (their order is schedule-dependent; syncmodel always attributes).
func objectOrder(e *engine.Engine, tidMap []tidset.Tid) (order []engine.ObjID, objMap []engine.ObjID) {
	objects := e.Objects()
	order = make([]engine.ObjID, len(objects))
	for i := range order {
		order[i] = engine.ObjID(i)
	}
	key := func(id engine.ObjID) (int, int, int) {
		m := e.ObjectMeta(id)
		if m.Creator == tidset.None {
			return 1 << 30, 0, int(id)
		}
		return int(tidMap[m.Creator]), m.Seq, 0
	}
	sort.Slice(order, func(a, b int) bool {
		a1, a2, a3 := key(order[a])
		b1, b2, b3 := key(order[b])
		if a1 != b1 {
			return a1 < b1
		}
		if a2 != b2 {
			return a2 < b2
		}
		return a3 < b3
	})
	objMap = make([]engine.ObjID, len(objects))
	for canonIdx, raw := range order {
		objMap[raw] = engine.ObjID(canonIdx)
	}
	return order, objMap
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// Coverage is a state-coverage monitor (like state.Coverage) that
// counts canonical fingerprints.
type Coverage struct {
	seen map[engine.Fingerprint]struct{}
}

// NewCoverage returns an empty canonical coverage tracker.
func NewCoverage() *Coverage {
	return &Coverage{seen: make(map[engine.Fingerprint]struct{})}
}

// AfterInit implements engine.Monitor.
func (c *Coverage) AfterInit(e *engine.Engine) { c.seen[Fingerprint(e)] = struct{}{} }

// AfterStep implements engine.Monitor.
func (c *Coverage) AfterStep(e *engine.Engine) { c.seen[Fingerprint(e)] = struct{}{} }

// Count returns the number of distinct canonical states seen.
func (c *Coverage) Count() int { return len(c.seen) }
