package fuzzprog_test

import (
	"testing"

	"fairmc/internal/canon"
	"fairmc/internal/engine"
	"fairmc/internal/fuzzprog"
	"fairmc/internal/rng"
	"fairmc/internal/search"
	"fairmc/internal/state"
)

const fuzzSeeds = 25

// TestFairSearchCleanOnGeneratedPrograms: generated programs are
// correct by construction; the exhaustive fair search must find
// nothing and terminate.
func TestFairSearchCleanOnGeneratedPrograms(t *testing.T) {
	for seed := uint64(0); seed < fuzzSeeds; seed++ {
		prog := fuzzprog.Generate(fuzzprog.DefaultConfig(), seed)
		rep := search.Explore(prog, search.Options{
			Fair:          true,
			ContextBound:  1,
			MaxSteps:      1 << 16,
			MaxExecutions: 300000,
		})
		if rep.FirstBug != nil {
			t.Fatalf("seed %d: false finding:\n%s", seed, rep.FirstBug.FormatTrace())
		}
		if rep.Divergence != nil {
			t.Fatalf("seed %d: false divergence after %d steps", seed, rep.Divergence.Steps)
		}
		if !rep.Exhausted && !rep.ExecBounded {
			t.Fatalf("seed %d: search neither exhausted nor bounded: %+v", seed, rep)
		}
	}
}

// TestReplayDeterminismOnGeneratedPrograms: a random execution of a
// generated program replays to an identical trace.
func TestReplayDeterminismOnGeneratedPrograms(t *testing.T) {
	for seed := uint64(0); seed < fuzzSeeds; seed++ {
		prog := fuzzprog.Generate(fuzzprog.DefaultConfig(), seed)
		r := rng.New(rng.Mix(seed, 7))
		random := engine.FuncChooser(func(ctx *engine.ChooseContext) (engine.Alt, bool) {
			return ctx.Cands[r.Intn(len(ctx.Cands))], true
		})
		first := engine.Run(prog, random, engine.Config{
			Fair: true, MaxSteps: 4000, RecordTrace: true,
		})
		if first.Outcome != engine.Terminated {
			t.Fatalf("seed %d: random run outcome %v", seed, first.Outcome)
		}
		replay := engine.Run(prog, &engine.ReplayChooser{Schedule: first.Schedule, Strict: true},
			engine.Config{Fair: true, MaxSteps: 4000, RecordTrace: true})
		if replay.Outcome != engine.Terminated || replay.Steps != first.Steps {
			t.Fatalf("seed %d: replay mismatch: %v/%d vs %v/%d",
				seed, replay.Outcome, replay.Steps, first.Outcome, first.Steps)
		}
		for i := range first.Trace {
			if first.Trace[i] != replay.Trace[i] {
				t.Fatalf("seed %d: trace differs at step %d", seed, i)
			}
		}
	}
}

// TestSleepSetsPreserveCoverageOnGeneratedPrograms: on terminating
// generated programs (no spins), the sleep-set DFS visits exactly the
// plain DFS's states in at most as many executions.
func TestSleepSetsPreserveCoverageOnGeneratedPrograms(t *testing.T) {
	cfg := fuzzprog.DefaultConfig()
	cfg.AllowSpin = false // termination under all schedules
	cfg.Threads = 2
	cfg.OpsPerThread = 3
	for seed := uint64(0); seed < fuzzSeeds; seed++ {
		prog := fuzzprog.Generate(cfg, seed)
		run := func(sleep bool) (*search.Report, *state.Coverage) {
			cov := state.NewCoverage()
			rep := search.Explore(prog, search.Options{
				Fair:         false,
				ContextBound: -1,
				MaxSteps:     1 << 16,
				Monitor:      cov,
				SleepSets:    sleep,
			})
			if !rep.Exhausted {
				t.Fatalf("seed %d (sleep=%v): not exhausted: %+v", seed, sleep, rep)
			}
			return rep, cov
		}
		plain, plainCov := run(false)
		slept, sleptCov := run(true)
		if plainCov.Count() != sleptCov.Count() {
			t.Fatalf("seed %d: coverage differs: plain %d, sleep %d",
				seed, plainCov.Count(), sleptCov.Count())
		}
		if slept.Executions > plain.Executions {
			t.Fatalf("seed %d: sleep sets increased executions: %d > %d",
				seed, slept.Executions, plain.Executions)
		}
	}
}

// TestCanonicalNeverExceedsRawOnGeneratedPrograms: canonicalization
// merges states, never splits them.
func TestCanonicalNeverExceedsRawOnGeneratedPrograms(t *testing.T) {
	for seed := uint64(0); seed < fuzzSeeds; seed++ {
		prog := fuzzprog.Generate(fuzzprog.DefaultConfig(), seed)
		raw := state.NewCoverage()
		can := canon.NewCoverage()
		rep := search.Explore(prog, search.Options{
			Fair:          true,
			ContextBound:  1,
			MaxSteps:      1 << 16,
			MaxExecutions: 100000,
			Monitor:       engine.MultiMonitor{raw, can},
		})
		_ = rep
		if can.Count() > raw.Count() {
			t.Fatalf("seed %d: canonical %d > raw %d", seed, can.Count(), raw.Count())
		}
	}
}

// TestContextBoundMonotoneOnGeneratedPrograms: a larger preemption
// budget never reaches fewer states.
func TestContextBoundMonotoneOnGeneratedPrograms(t *testing.T) {
	cfg := fuzzprog.DefaultConfig()
	cfg.AllowSpin = false
	cfg.OpsPerThread = 3
	for seed := uint64(0); seed < 10; seed++ {
		prog := fuzzprog.Generate(cfg, seed)
		counts := make([]int, 3)
		for cb := 0; cb < 3; cb++ {
			cov := state.NewCoverage()
			rep := search.Explore(prog, search.Options{
				Fair:         false,
				ContextBound: cb,
				MaxSteps:     1 << 16,
				Monitor:      cov,
			})
			if !rep.Exhausted {
				t.Fatalf("seed %d cb=%d: not exhausted", seed, cb)
			}
			counts[cb] = cov.Count()
		}
		if counts[1] < counts[0] || counts[2] < counts[1] {
			t.Fatalf("seed %d: non-monotone coverage %v", seed, counts)
		}
	}
}
