// Package fuzzprog generates random model programs for metamorphic
// testing of the checker itself.
//
// Generated programs are correct by construction:
//
//   - shared access only through conc objects;
//   - locks nest in ascending index order, so no deadlocks;
//   - loops are either bounded or spin-with-yield on a flag the main
//     thread is guaranteed to set, so programs are fair-terminating
//     (and, without spin ops, terminating under every schedule).
//
// The checker must therefore: exhaust the fair search with no
// findings; replay any execution to an identical trace; cover the same
// states with and without sleep sets; and count no more canonical than
// raw states. Violations of these properties are checker bugs, which
// is exactly what the fuzz tests hunt.
package fuzzprog

import (
	"fmt"

	"fairmc/internal/engine"
	"fairmc/internal/rng"
	"fairmc/internal/syncmodel"
)

// Config bounds the generated program shapes.
type Config struct {
	// Threads is the number of spawned threads (besides main).
	Threads int
	// Vars and Mutexes are the shared-object counts.
	Vars    int
	Mutexes int
	// OpsPerThread bounds each thread's straight-line length.
	OpsPerThread int
	// AllowSpin permits spin-with-yield waits on the main-set flag,
	// making the state space cyclic. Programs with spins are only
	// fair-terminating, not terminating.
	AllowSpin bool
}

// DefaultConfig is a small shape that keeps exhaustive search fast.
func DefaultConfig() Config {
	return Config{Threads: 2, Vars: 2, Mutexes: 2, OpsPerThread: 4, AllowSpin: true}
}

// op is one generated instruction.
type op struct {
	kind kind
	a, b int
}

type kind int8

const (
	kStore kind = iota // vars[a] <- b
	kLoad              // read vars[a]
	kAdd               // vars[a] += b
	kYield
	kSleep
	kLockBlock // acquire mutexes[a], run nested block, release
	kSpinFlag  // spin (with yield) until the main-done flag is set
)

// program is a generated program: per-thread op lists.
type program struct {
	cfg     Config
	threads [][]op
	nested  [][]op // block id (kLockBlock's b field) -> nested ops
}

// Generate builds a deterministic random program from seed.
func Generate(cfg Config, seed uint64) func(*engine.T) {
	r := rng.New(rng.Mix(seed, 0x66757a7a))
	p := &program{cfg: cfg}
	for i := 0; i < cfg.Threads; i++ {
		n := 1 + r.Intn(cfg.OpsPerThread)
		p.threads = append(p.threads, p.genBlock(r, n, 0, true))
	}
	return p.body
}

// genBlock generates n ops; locks drawn from indices >= minLock keep
// the global acquisition order.
func (p *program) genBlock(r *rng.Rand, n, minLock int, topLevel bool) []op {
	var out []op
	for i := 0; i < n; i++ {
		roll := r.Intn(10)
		switch {
		case roll < 3 && p.cfg.Vars > 0:
			out = append(out, op{kind: kStore, a: r.Intn(p.cfg.Vars), b: r.Intn(5)})
		case roll < 5 && p.cfg.Vars > 0:
			out = append(out, op{kind: kLoad, a: r.Intn(p.cfg.Vars)})
		case roll < 6 && p.cfg.Vars > 0:
			out = append(out, op{kind: kAdd, a: r.Intn(p.cfg.Vars), b: 1 + r.Intn(3)})
		case roll < 7:
			out = append(out, op{kind: kYield})
		case roll < 8 && p.cfg.Mutexes > minLock:
			m := minLock + r.Intn(p.cfg.Mutexes-minLock)
			// Reserve the block id before recursing: the recursive
			// genBlock call allocates ids of its own.
			id := len(p.nested)
			p.nested = append(p.nested, nil)
			p.nested[id] = p.genBlock(r, 1+r.Intn(2), m+1, false)
			out = append(out, op{kind: kLockBlock, a: m, b: id})
		case roll < 9 && p.cfg.AllowSpin && topLevel:
			out = append(out, op{kind: kSpinFlag})
		default:
			out = append(out, op{kind: kSleep, a: 1 + r.Intn(3)})
		}
	}
	return out
}

// body runs the generated program.
func (p *program) body(t *engine.T) {
	vars := make([]*syncmodel.IntVar, p.cfg.Vars)
	for i := range vars {
		vars[i] = syncmodel.NewIntVar(t, fmt.Sprintf("v%d", i), 0)
	}
	mutexes := make([]*syncmodel.Mutex, p.cfg.Mutexes)
	for i := range mutexes {
		mutexes[i] = syncmodel.NewMutex(t, fmt.Sprintf("m%d", i))
	}
	flag := syncmodel.NewIntVar(t, "mainDone", 0)
	wg := syncmodel.NewWaitGroup(t, "wg", int64(len(p.threads)))
	for i, ops := range p.threads {
		ops := ops
		t.Go(fmt.Sprintf("g%d", i), func(t *engine.T) {
			p.run(t, ops, vars, mutexes, flag)
			wg.Done(t)
		})
	}
	// The guarantee spin waits rely on: main sets the flag after all
	// spawns, unconditionally.
	flag.Store(t, 1)
	wg.Wait(t)
}

func (p *program) run(t *engine.T, ops []op, vars []*syncmodel.IntVar,
	mutexes []*syncmodel.Mutex, flag *syncmodel.IntVar) {
	for _, o := range ops {
		switch o.kind {
		case kStore:
			vars[o.a].Store(t, int64(o.b))
		case kLoad:
			vars[o.a].Load(t)
		case kAdd:
			vars[o.a].Add(t, int64(o.b))
		case kYield:
			t.Yield()
		case kSleep:
			t.Sleep(int64(o.a))
		case kLockBlock:
			mutexes[o.a].Lock(t)
			p.run(t, p.nested[o.b], vars, mutexes, flag)
			mutexes[o.a].Unlock(t)
		case kSpinFlag:
			for {
				t.Label(100)
				if flag.Load(t) == 1 {
					break
				}
				t.Yield()
			}
		default:
			panic("fuzzprog: unknown op")
		}
	}
}
