package state_test

import (
	"testing"

	"fairmc/internal/engine"
	"fairmc/internal/state"
	"fairmc/internal/syncmodel"
)

func run(t *testing.T, mon engine.Monitor, body func(*engine.T)) *engine.Result {
	t.Helper()
	r := engine.Run(body, engine.FirstChooser{}, engine.Config{
		Fair:    true,
		Monitor: mon,
	})
	if r.Outcome != engine.Terminated {
		t.Fatalf("outcome = %v", r.Outcome)
	}
	return r
}

func prog(t *engine.T) {
	x := syncmodel.NewIntVar(t, "x", 0)
	x.Store(t, 1)
	x.Store(t, 2)
}

func TestCoverageCountsDistinctStates(t *testing.T) {
	cov := state.NewCoverage()
	r := run(t, cov, prog)
	// Initial state + one per step, all distinct here.
	want := int(r.Steps) + 1
	if cov.Count() != want {
		t.Fatalf("Count = %d, want %d", cov.Count(), want)
	}
	if cov.Transitions != r.Steps {
		t.Fatalf("Transitions = %d, want %d", cov.Transitions, r.Steps)
	}
}

func TestCoverageDeduplicatesAcrossExecutions(t *testing.T) {
	cov := state.NewCoverage()
	r1 := run(t, cov, prog)
	first := cov.Count()
	run(t, cov, prog)
	if cov.Count() != first {
		t.Fatalf("identical execution added states: %d -> %d", first, cov.Count())
	}
	if cov.Transitions != 2*r1.Steps {
		t.Fatalf("Transitions = %d, want %d", cov.Transitions, 2*r1.Steps)
	}
}

func TestHasAndMissing(t *testing.T) {
	a := state.NewCoverage()
	run(t, a, prog)
	b := state.NewCoverage()
	if missing := b.Missing(a); len(missing) != a.Count() {
		t.Fatalf("empty tracker missing %d of %d", len(missing), a.Count())
	}
	var sample engine.Fingerprint
	found := false
	mon := probe{f: func(e *engine.Engine) {
		sample = e.Fingerprint()
		found = true
	}}
	run(t, mon, prog)
	if !found {
		t.Fatal("probe never fired")
	}
	if !a.Has(sample) {
		t.Fatal("tracked state not reported by Has")
	}
	run(t, b, prog)
	if missing := b.Missing(a); len(missing) != 0 {
		t.Fatalf("same program, %d missing states", len(missing))
	}
}

type probe struct{ f func(*engine.Engine) }

func (p probe) AfterInit(e *engine.Engine) { p.f(e) }
func (p probe) AfterStep(e *engine.Engine) { p.f(e) }
