// Package state measures state coverage during stateless exploration.
//
// CHESS is stateless and normally captures no states; for the coverage
// experiments of §4.2.1 the paper adds a manual state-extraction
// facility to two programs and stores state signatures in a hash
// table. Coverage is the equivalent here: an engine monitor that
// fingerprints the state after every transition (and the initial
// state) and counts distinct signatures across all executions of a
// search. The "Total States" reference of Table 2 comes from running
// the search with Options.StatefulPrune, which prunes at revisited
// states and therefore terminates on finite-state programs.
package state

import "fairmc/internal/engine"

// Coverage accumulates distinct state fingerprints across executions.
// It implements engine.Monitor. Not safe for concurrent use; searches
// are single-threaded.
type Coverage struct {
	seen map[engine.Fingerprint]struct{}
	// Transitions counts all monitored steps (visited states including
	// revisits, minus initial states).
	Transitions int64
}

// NewCoverage returns an empty coverage tracker.
func NewCoverage() *Coverage {
	return &Coverage{seen: make(map[engine.Fingerprint]struct{})}
}

// AfterInit implements engine.Monitor.
func (c *Coverage) AfterInit(e *engine.Engine) {
	c.seen[e.Fingerprint()] = struct{}{}
}

// AfterStep implements engine.Monitor.
func (c *Coverage) AfterStep(e *engine.Engine) {
	c.seen[e.Fingerprint()] = struct{}{}
	c.Transitions++
}

// Count returns the number of distinct states seen.
func (c *Coverage) Count() int { return len(c.seen) }

// Has reports whether a fingerprint has been seen.
func (c *Coverage) Has(fp engine.Fingerprint) bool {
	_, ok := c.seen[fp]
	return ok
}

// Missing returns the fingerprints in reference that this tracker has
// not seen; used to verify 100% coverage against a stateful-search
// reference.
func (c *Coverage) Missing(reference *Coverage) []engine.Fingerprint {
	var out []engine.Fingerprint
	for fp := range reference.seen {
		if _, ok := c.seen[fp]; !ok {
			out = append(out, fp)
		}
	}
	return out
}
