package engine

import (
	"encoding/binary"
	"fmt"

	"fairmc/internal/tidset"
)

// This file implements schedule-conformance checking: the defense
// against programs that are not a deterministic function of the
// scheduler's choices (wall-clock reads, unseeded randomness, map
// iteration, goroutines outside the conc API). The stateless-checking
// contract — replay a schedule, get the same execution — silently
// breaks on such programs; CHESS detects the break as *schedule
// divergence* during replay. Here every scheduling point can be
// summarized into a StepDigest (a fingerprint of the candidate set
// plus the chosen thread's pending operation), and a replay compares
// the digest it observes against the digest recorded when the
// schedule was first explored. The first mismatch is reported as a
// structured DivergenceError instead of an exploration of the wrong
// tree.

// StepDigest is the conformance summary of one scheduling point: a
// hash of the full candidate set (thread ids, choice values, and each
// candidate thread's pending op kind/object/aux) plus the chosen
// alternative's thread and pending operation in the clear, so a
// mismatch can name the expected and observed ops.
type StepDigest struct {
	// Hash fingerprints the candidate set at this scheduling point.
	Hash uint64 `json:"hash"`
	// Tid is the thread the recorded schedule runs at this step.
	Tid tidset.Tid `json:"tid"`
	// Op is that thread's pending operation at the time the digest was
	// recorded.
	Op OpInfo `json:"op"`
}

func (d StepDigest) String() string {
	return fmt.Sprintf("t%d pending %s (cands %#x)", d.Tid, d.Op, d.Hash)
}

// DivergenceError reports the first step at which a replayed schedule
// stopped conforming to the program: either the scheduled alternative
// was not schedulable at all (NotSchedulable), or the candidate set /
// pending operation differed from what was recorded. Both mean the
// program has nondeterminism outside the checker's control.
type DivergenceError struct {
	// Step is the 0-based schedule index that failed to conform.
	Step int
	// Want is the alternative the schedule asked for.
	Want Alt
	// Expected is the digest recorded when the schedule was explored;
	// Observed is the digest of the state the replay actually reached.
	Expected StepDigest
	Observed StepDigest
	// NumCands is how many alternatives were schedulable at the
	// divergent step.
	NumCands int
	// NotSchedulable marks the harder failure: Want was not among the
	// candidates at all.
	NotSchedulable bool
}

func (e *DivergenceError) Error() string {
	if e.NotSchedulable {
		return fmt.Sprintf("schedule divergence at step %d: %s not among the %d schedulable alternatives "+
			"(observed %s): the program is not a deterministic function of the schedule",
			e.Step, e.Want, e.NumCands, e.Observed)
	}
	return fmt.Sprintf("schedule divergence at step %d: thread %d expected %s, observed %s "+
		"(candidate-set digest %#x vs %#x): the program is not a deterministic function of the schedule",
		e.Step, e.Want.Tid, e.Expected.Op, e.Observed.Op, e.Expected.Hash, e.Observed.Hash)
}

// PendingOpInfo returns the pending-operation description of thread t,
// or a zero OpInfo when t is out of range (a schedule recorded against
// a different program may name threads that were never created here).
func (e *Engine) PendingOpInfo(t tidset.Tid) OpInfo {
	if int(t) < 0 || int(t) >= len(e.threads) {
		return OpInfo{}
	}
	return e.threads[t].pending.Info()
}

// CandsDigest hashes the current candidate set: for each candidate its
// thread id, choice value, and the thread's pending op kind, object
// and aux. The encoding reuses the engine-owned scratch buffer, so a
// digest costs no allocations on the search hot path.
func (e *Engine) CandsDigest(cands []Alt) uint64 {
	buf := e.digBuf[:0]
	buf = binary.AppendUvarint(buf, uint64(len(cands)))
	for _, c := range cands {
		buf = binary.AppendVarint(buf, int64(c.Tid))
		buf = binary.AppendVarint(buf, int64(c.Arg))
		info := e.PendingOpInfo(c.Tid)
		buf = appendString(buf, info.Kind)
		buf = binary.AppendVarint(buf, int64(info.Obj))
		buf = binary.AppendVarint(buf, info.Aux)
	}
	e.digBuf = buf
	return HashBytes(buf).Hi
}

// StepDigest summarizes the scheduling point where alt was (or is
// about to be) chosen among cands.
func (e *Engine) StepDigest(cands []Alt, alt Alt) StepDigest {
	return StepDigest{
		Hash: e.CandsDigest(cands),
		Tid:  alt.Tid,
		Op:   e.PendingOpInfo(alt.Tid),
	}
}
