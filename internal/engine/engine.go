package engine

import (
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"

	"fairmc/internal/core"
	"fairmc/internal/obs"
	"fairmc/internal/tidset"
)

// Chooser resolves the nondeterminism at each scheduling point: which
// schedulable thread runs next and, for data-choice operations, which
// alternative it takes. Search strategies implement Chooser.
type Chooser interface {
	// Choose picks one of ctx.Cands. Returning ok = false aborts the
	// execution (outcome Aborted); the search uses this to prune.
	Choose(ctx *ChooseContext) (alt Alt, ok bool)
}

// ChooseContext is the information available to a Chooser at one
// scheduling point. The context and its Cands slice are owned by the
// engine and valid only for the duration of the Choose call; a chooser
// that retains alternatives across calls must copy them.
type ChooseContext struct {
	// Step is the 0-based index of the decision being made.
	Step int
	// Cands are the available alternatives in deterministic order
	// (ascending thread id, then choice value). Never empty. The slice
	// is reused between steps: copy it to retain it.
	Cands []Alt
	// PrevTid is the thread scheduled at the previous step, or
	// tidset.None at the first step.
	PrevTid tidset.Tid
	// PrevEnabled reports whether the previous thread is enabled now.
	// Switching away from an enabled previous thread is a preemption…
	PrevEnabled bool
	// PrevFairBlocked: …unless the fair scheduler priority-blocked it,
	// in which case the forced switch is not counted against a
	// context bound (paper §4).
	PrevFairBlocked bool
	// PrevYielded reports whether the previous transition was a
	// yield; switching after a voluntary yield is not a preemption.
	PrevYielded bool
	// Engine gives monitors and strategies read access to the state.
	Engine *Engine
}

// PrevInCands reports whether the previously scheduled thread is among
// the candidates (i.e. the execution can continue without a context
// switch).
func (c *ChooseContext) PrevInCands() bool {
	for _, a := range c.Cands {
		if a.Tid == c.PrevTid {
			return true
		}
	}
	return false
}

// IsPreemption reports whether choosing alt at this point constitutes
// a preemption in the CHESS sense: a forced context switch away from a
// thread that could have continued. Fairness-forced switches and
// switches after voluntary yields are not preemptions, and scheduler
// agents (flush steps) are exempt in both directions: delaying a flush
// or interleaving one is weak-memory nondeterminism, not a context
// switch of program code, so it never consumes a context bound.
func (c *ChooseContext) IsPreemption(alt Alt) bool {
	if c.Engine != nil &&
		(c.Engine.IsAgent(alt.Tid) ||
			(c.PrevTid != tidset.None && c.Engine.IsAgent(c.PrevTid))) {
		return false
	}
	return c.PrevTid != tidset.None &&
		alt.Tid != c.PrevTid &&
		c.PrevEnabled &&
		!c.PrevFairBlocked &&
		!c.PrevYielded
}

// Monitor observes an execution as the engine drives it. AfterInit
// fires once before the first step; AfterStep fires after every step.
type Monitor interface {
	AfterInit(e *Engine)
	AfterStep(e *Engine)
}

// Config controls one execution.
type Config struct {
	// Fair enables the fair scheduler (Algorithm 1). Without it the
	// schedulable set is simply the enabled set.
	Fair bool
	// FairK is the k-th-yield parameterization (§3); 0 means 1.
	FairK int
	// MaxSteps is the execution depth cap; an execution exceeding it
	// ends with outcome Diverged. 0 means DefaultMaxSteps.
	MaxSteps int64
	// RecordTrace captures a full per-step trace in the Result.
	RecordTrace bool
	// RecordDigests captures a per-step conformance StepDigest in the
	// Result, so a later strict replay can verify that the program
	// still conforms to the recorded schedule (see conformance.go).
	RecordDigests bool
	// Monitor, if non-nil, observes the execution.
	Monitor Monitor
	// CheckInvariants enables internal self-checks (P acyclicity and
	// the Theorem 3 equivalence) at every step. Used by tests.
	CheckInvariants bool
	// Watchdog is the stuck-thread detector: the maximum wall-clock
	// time the engine waits for a scheduled thread to park at its next
	// operation or exit. A thread that exceeds it is blocked or
	// spinning outside the conc API — uncontrolled code the engine can
	// neither schedule nor unwind — so the execution ends with outcome
	// Wedged and the thread's goroutine is leaked (it self-destructs if
	// it ever reaches a scheduling point again). 0 disables the
	// watchdog; then a non-cooperative thread hangs the engine forever.
	Watchdog time.Duration
	// Deadline, when nonzero, is an absolute wall-clock bound on the
	// whole execution, checked between steps: a search TimeLimit
	// threaded down so that one very long (but cooperative) execution
	// cannot blow past the search budget. Exceeding it ends the
	// execution with outcome Aborted and Result.DeadlineExceeded set.
	Deadline time.Time
	// Metrics, if non-nil, receives this execution's telemetry in one
	// atomic flush when the execution ends (internal/obs). The per-step
	// hot path accumulates in plain engine-local counters, so metrics
	// cost almost nothing while the execution runs.
	Metrics *obs.Metrics
	// EventSink, if non-nil, receives structured trace events (schedule
	// points, yield-window closures, execution ends) as the execution
	// runs. Emission never blocks: a full sink drops events and counts
	// them (see obs.Recorder).
	EventSink *obs.Recorder
	// ExecIndex tags emitted events with the execution's index within
	// its search, for correlating the event stream with the report.
	ExecIndex int64
	// NoFastPath disables the baton-passing fast path (fastpath.go) and
	// forces the historical engine-mediated handshake for every step.
	// The two paths make the identical decide/commit sequence in the
	// identical order, so results are byte-for-byte the same; the flag
	// exists as a bisection escape hatch and for the determinism suite.
	NoFastPath bool
	// MemModel selects the memory model (internal/wm) this execution
	// runs under: core.MemSC (the default) or core.MemTSO. Under TSO
	// each thread's wm stores drain through a flush agent (AddAgent)
	// whose steps the search schedules like any thread's, so flush
	// nondeterminism is part of the explored tree and the fair
	// scheduler's priority relation P covers flush delay.
	MemModel core.MemModel
	// TSOBufCap bounds each thread's store buffer under TSO: a thread
	// storing into a full buffer blocks until a flush drains an entry.
	// 0 means unbounded.
	TSOBufCap int
}

// DefaultMaxSteps bounds executions when Config.MaxSteps is zero. The
// paper asks the user for a bound "orders of magnitude greater than
// the maximum number of steps the user expects".
const DefaultMaxSteps = 1 << 20

type eventKind int8

const (
	evParked  eventKind = iota
	evExited            // thread's body returned (or unwound)
	evStashed           // fast path: thread decided a terminal outcome inline
)

type event struct {
	kind eventKind
	th   *thread
}

// Engine drives one execution of a model program. Create one per
// execution with Run, or reuse one across executions through a Pool
// (pool.go); outside a Pool an Engine must not be reused.
type Engine struct {
	cfg     Config
	chooser Chooser
	fair    *core.Fair
	threads []*thread
	thFree  []*thread // exited thread records recycled across pooled runs
	// idleWorkers holds worker goroutines parked between jobs (pooled
	// engines only). Pushes happen at evExited processing and pops at
	// thread launch — both on the logical scheduler timeline, so no
	// locking is needed (same ownership discipline as e.threads).
	idleWorkers []*worker
	objects     []Object
	objMeta     []ObjMeta
	ready       chan event
	// aborting is read by model goroutines at scheduling points to
	// unwind themselves. It is atomic because after a wedge the stuck
	// goroutine runs concurrently with the scheduler and may observe
	// the flag without a happens-before edge from a channel handoff.
	aborting atomic.Bool

	violation   *ViolationInfo
	wedge       *WedgeInfo
	wdTimer     *time.Timer
	deadlineHit bool
	stepCount   int64
	yieldCnt    int64
	schedule    []Alt
	trace       []Step
	digests     []StepDigest

	// Per-execution observability accumulators (plain locals flushed to
	// Config.Metrics once, in result): scheduling decisions made,
	// alternatives offered across them, and enabled-but-priority-blocked
	// (thread, step) pairs.
	choiceCnt      int64
	candCnt        int64
	fairBlockedCnt int64
	// wm accumulates the weak-memory subsystem's per-execution telemetry
	// (internal/wm increments it through WM()).
	wm WMCounters

	prevTid     tidset.Tid
	prevYielded bool
	lastInfo    OpInfo // OpInfo of the last executed transition

	// Fast-path state (fastpath.go). The granted-but-uncommitted step is
	// the "pending" step: its commit runs when the granted thread reaches
	// its next scheduling point (or exits).
	fast      bool
	pooled    bool         // drawn from a Pool: Result must own its slices
	schedGate atomic.Int64 // 0 free, 1 inline section active, 2 watchdog poison
	progress  atomic.Int64 // scheduling points completed (watchdog signal)
	pendTh    *thread      // thread the pending step was granted to
	pendAlt   Alt
	pendYield bool
	pendDig   StepDigest // pre-step digest of the pending step (RecordDigests)
	stashOut  Outcome    // terminal outcome decided inline by a thread
	inlineCnt int64      // steps granted without any goroutine handoff
	handoffs  int64      // direct thread-to-thread baton handoffs

	// Hot-path scratch: one execution makes one scheduling decision per
	// step, so the per-step working storage is engine-owned and reused
	// rather than reallocated (see candidates, loop, Fingerprint).
	candsBuf []Alt         // backing for ChooseContext.Cands
	ctxBuf   ChooseContext // the context handed to the chooser
	esBuf    tidset.Set    // enabled set at the top of a step
	esAfter  tidset.Set    // enabled set after a step
	schedBuf tidset.Set    // fair-schedulable set for the current step
	fpBuf    []byte        // canonical state encoding scratch
	digBuf   []byte        // conformance-digest encoding scratch
	// esReady means esAfter holds the enabled set commit just computed
	// and no user code has run since, so the next decide reuses it as
	// its ES instead of recomputing the identical set.
	esReady bool
}

// Run executes the program whose main thread runs body, resolving all
// nondeterminism through chooser, and returns the execution's Result.
func Run(body func(*T), chooser Chooser, cfg Config) *Result {
	normalize(&cfg)
	return newEngine(chooser, cfg).run(body)
}

// normalize fills the Config defaults both Run and Pool.Run apply.
func normalize(cfg *Config) {
	if cfg.FairK <= 0 {
		cfg.FairK = 1
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = DefaultMaxSteps
	}
}

func newEngine(chooser Chooser, cfg Config) *Engine {
	e := &Engine{
		cfg:     cfg,
		chooser: chooser,
		ready:   make(chan event, 1),
		prevTid: tidset.None,
		fast:    !cfg.NoFastPath,
	}
	if cfg.Fair {
		e.fair = core.NewFair(0, cfg.FairK)
	}
	return e
}

// run drives one execution on a prepared engine.
func (e *Engine) run(body func(*T)) *Result {
	e.newThread("main", body, nil)
	if e.cfg.Monitor != nil {
		e.cfg.Monitor.AfterInit(e)
	}
	var outcome Outcome
	if e.fast {
		outcome = e.loopFast()
	} else {
		outcome = e.loop()
	}
	// Build the result before abort unwinds the surviving threads:
	// deadlock reporting needs their pending operations.
	r := e.result(outcome)
	e.abort()
	return r
}

// allocThread allocates a thread record with the next dense id,
// recycling a record from a previous pooled run when one is free, and
// registers it with the fair scheduler. Shared by newThread and
// AddAgent; the caller fills in the role-specific fields.
func (e *Engine) allocThread(name string) *thread {
	var th *thread
	if n := len(e.thFree); n > 0 {
		th = e.thFree[n-1]
		e.thFree[n-1] = nil
		e.thFree = e.thFree[:n-1]
		// The resume channel is empty by construction (every grant was
		// consumed before the previous run's abort returned), so only
		// the channel survives the wipe.
		*th = thread{resume: th.resume}
	} else {
		th = &thread{resume: make(chan struct{}, 1)}
	}
	th.id = tidset.Tid(len(e.threads))
	th.name = name
	th.parent = tidset.None
	e.threads = append(e.threads, th)
	if e.fair != nil {
		e.fair.AddThread(th.id)
	}
	return th
}

// newThread allocates a thread record in embryo state. parent is nil
// for the main thread.
func (e *Engine) newThread(name string, body func(*T), parent *thread) *thread {
	th := e.allocThread(name)
	th.body = body
	th.status = statusEmbryo
	th.armed = parent == nil // the main thread starts immediately
	th.pending = startOp{th: th}
	if parent != nil {
		th.parent = parent.id
		th.spawnSeq = parent.childCount
		parent.childCount++
	}
	return th
}

// AddAgent registers a scheduler agent: a thread record with no
// goroutine whose pending op the engine executes inline (decideLoop)
// when the search schedules it. The weak-memory subsystem registers
// one agent per store buffer, which makes buffer flushes schedulable
// transitions: they appear in the candidate set, in schedules and
// digests, and in the fair scheduler's priority relation exactly like
// thread steps. op stays the agent's pending op for the whole
// execution (Enabled gates when it is schedulable); a non-nil Execute
// continuation replaces it.
//
// Agents do not count as live threads (the execution terminates when
// every real thread has exited, buffered or not), never appear in a
// deadlock's blocked list, and are exempt from preemption accounting —
// delaying a flush is the nondeterminism under search, not a context
// switch. Must be called from model code (an Op.Execute or a thread
// body), which is serialized with the scheduler.
func (e *Engine) AddAgent(name string, op Op) tidset.Tid {
	th := e.allocThread(name)
	th.status = statusAgent
	th.pending = op
	return th.id
}

// IsAgent reports whether tid names a scheduler agent rather than a
// program thread.
func (e *Engine) IsAgent(t tidset.Tid) bool {
	return e.threads[t].status == statusAgent
}

// MemModel returns the memory model this execution runs under.
func (e *Engine) MemModel() core.MemModel { return e.cfg.MemModel }

// TSOBufCap returns the configured per-thread store-buffer capacity
// under TSO (0 = unbounded).
func (e *Engine) TSOBufCap() int { return e.cfg.TSOBufCap }

// WM returns the engine's weak-memory counters for internal/wm to
// increment from op Execute bodies (serialized with the scheduler).
func (e *Engine) WM() *WMCounters { return &e.wm }

// enabledSet computes ES over live threads by querying pending ops,
// rebuilding into buf so the per-step sets reuse their storage.
func (e *Engine) enabledSet(buf tidset.Set) tidset.Set {
	buf.Reset(len(e.threads))
	for _, th := range e.threads {
		if th.status == statusExited {
			continue
		}
		if th.pending.Enabled() {
			buf.Add(th.id)
		}
	}
	return buf
}

// liveCount returns the number of program threads not yet exited.
// Agents do not count: when every real thread is done no observer
// remains, so the execution terminates even with stores still
// buffered.
func (e *Engine) liveCount() int {
	n := 0
	for _, th := range e.threads {
		if th.status != statusExited && th.status != statusAgent {
			n++
		}
	}
	return n
}

// loop is the legacy scheduler (Config.NoFastPath): Algorithm 1's main
// loop with the Choose made explicit through the Chooser. The fast
// path (fastpath.go) runs the same decide/commit sequence; only who
// drives it differs.
func (e *Engine) loop() Outcome {
	for {
		alt, out, terminal := e.decideLoop()
		if terminal {
			return out
		}
		_, wasYield := e.prepare(alt)
		e.executeStep(alt)
		if e.wedge != nil {
			// The granted step never completed: the thread is stuck in
			// uncontrolled code. Do not record the step — a replay of
			// the schedule so far reproduces the wedge-free prefix.
			return Wedged
		}
		if out, done := e.commit(alt, wasYield); done {
			return out
		}
	}
}

// decideLoop wraps decide, running agent steps inline: when the
// chooser grants an agent (a flush step), there is no goroutine to
// hand the baton to, so the engine executes the step on the spot —
// the same prepare/Execute/commit sequence a thread step runs, just
// without the handoff — and decides again, until a real thread is
// granted or the execution ends. Every decide call site on both
// scheduler paths goes through decideLoop, so agent steps land in
// schedules, digests, traces, and fair-scheduler bookkeeping
// identically with the fast path on or off.
func (e *Engine) decideLoop() (alt Alt, out Outcome, terminal bool) {
	for {
		alt, out, terminal = e.decide()
		if terminal {
			return alt, out, true
		}
		th := e.threads[alt.Tid]
		if th.status != statusAgent {
			return alt, out, false
		}
		_, wasYield := e.prepare(alt)
		if cont := th.pending.Execute(); cont != nil {
			th.pending = cont
		}
		if out, done := e.commit(alt, wasYield); done {
			return alt, out, true
		}
	}
}

// decide runs the top half of a scheduling point: terminal-outcome
// checks, enabled/schedulable set computation, candidate expansion,
// and the chooser call. terminal = true means the execution is over
// with outcome out; otherwise alt is the granted alternative. The
// enabled set it computes stays in e.esBuf for the matching commit.
func (e *Engine) decide() (alt Alt, out Outcome, terminal bool) {
	if e.violation != nil {
		return alt, Violation, true
	}
	if e.liveCount() == 0 {
		return alt, Terminated, true
	}
	if e.stepCount >= e.cfg.MaxSteps {
		return alt, Diverged, true
	}
	// Wall-clock deadline, amortized: one time.Now every 64 steps.
	if !e.cfg.Deadline.IsZero() && e.stepCount&63 == 0 &&
		time.Now().After(e.cfg.Deadline) {
		e.deadlineHit = true
		return alt, Aborted, true
	}
	var es tidset.Set
	if e.esReady {
		// The previous commit computed the post-step enabled set and no
		// user code has run since (decide directly follows commit on
		// both paths), so it is exactly this step's ES. Swap buffers:
		// esAfter's storage becomes esBuf, which must survive to the
		// matching commit, and the old esBuf is rebuilt there.
		e.esBuf, e.esAfter = e.esAfter, e.esBuf
		e.esReady = false
		es = e.esBuf
	} else {
		es = e.enabledSet(e.esBuf)
		e.esBuf = es
	}
	var schedulable tidset.Set
	if e.fair != nil {
		schedulable = e.fair.SchedulableInto(&e.schedBuf, es)
		// schedulable ⊆ es, so the difference in size is exactly the
		// number of enabled threads excluded by a priority edge here.
		e.fairBlockedCnt += int64(es.Len() - schedulable.Len())
		if e.cfg.CheckInvariants {
			if !e.fair.Acyclic() {
				panic("engine: priority relation P is cyclic (Theorem 3 violated)")
			}
			if schedulable.Empty() != es.Empty() {
				panic("engine: T empty but ES nonempty (Theorem 3 violated)")
			}
		}
	} else {
		schedulable = es
	}
	if schedulable.Empty() {
		return alt, Deadlock, true
	}
	cands := e.candidates(schedulable)
	e.ctxBuf = ChooseContext{
		Step:        int(e.stepCount),
		Cands:       cands,
		PrevTid:     e.prevTid,
		PrevYielded: e.prevYielded,
		Engine:      e,
	}
	ctx := &e.ctxBuf
	if e.prevTid != tidset.None {
		ctx.PrevEnabled = es.Contains(e.prevTid)
		if e.fair != nil {
			ctx.PrevFairBlocked = ctx.PrevEnabled && e.fair.Blocked(e.prevTid, es)
		}
	}
	e.choiceCnt++
	e.candCnt += int64(len(cands))
	alt, ok := e.chooser.Choose(ctx)
	if !ok {
		return alt, Aborted, true
	}
	if err := validateAlt(alt, cands); err != nil {
		panic(fmt.Sprintf("engine: chooser returned invalid alternative: %v", err))
	}
	if e.cfg.EventSink != nil {
		e.cfg.EventSink.Emit(obs.Event{
			Type: "schedule",
			Exec: e.cfg.ExecIndex,
			Step: e.stepCount,
			Schedule: &obs.ScheduleEvent{
				Tid:        int(alt.Tid),
				Candidates: len(cands),
				Enabled:    es.Len(),
				Preemption: ctx.IsPreemption(alt),
			},
		})
	}
	// Digest the pre-step state now (executing the step mutates it),
	// but append only in commit, alongside the schedule, so a wedged
	// step — absent from the schedule — leaves no digest either.
	if e.cfg.RecordDigests {
		e.pendDig = e.StepDigest(cands, alt)
	}
	return alt, 0, false
}

// prepare applies the granted alternative to its thread's pending op
// and does the engine-side per-step bookkeeping. It is the part of
// granting a step that both paths share; actually waking the thread is
// the caller's job.
func (e *Engine) prepare(alt Alt) (th *thread, wasYield bool) {
	th = e.threads[alt.Tid]
	op := th.pending
	if c, ok := op.(ChoiceOp); ok && alt.Arg >= 0 {
		c.SetChoice(alt.Arg)
	}
	wasYield = op.Yielding()
	e.lastInfo = op.Info()
	// Per-thread accounting happens here, on the scheduler side of the
	// handoff, so that result() never reads counters a wedged thread's
	// goroutine might still be writing.
	th.steps++
	th.sinceLabel++
	if wasYield {
		th.yields++
	}
	return th, wasYield
}

// commit runs the bottom half of a scheduling point, after the granted
// step executed: record it, then do the fairness and monitor
// bookkeeping. done = true ends the execution with outcome out. The
// enabled set in e.esBuf must still be the one decide computed for
// this step.
func (e *Engine) commit(alt Alt, wasYield bool) (out Outcome, done bool) {
	// Record the step before the violation check so that the schedule
	// always includes the violating transition and a replay reproduces
	// the violation.
	es := e.esBuf
	esAfter := e.enabledSet(e.esAfter)
	e.esAfter = esAfter
	e.esReady = true
	e.schedule = append(e.schedule, alt)
	if e.cfg.RecordDigests {
		e.digests = append(e.digests, e.pendDig)
	}
	if e.cfg.RecordTrace {
		e.trace = append(e.trace, Step{
			Alt:          alt,
			Info:         e.lastInfo,
			Yield:        wasYield,
			EnabledAfter: esAfter.Len(),
		})
	}
	e.stepCount++
	if wasYield {
		e.yieldCnt++
	}
	if e.violation != nil {
		return Violation, true
	}
	if e.fair != nil {
		h, windowClosed := e.fair.OnStep(alt.Tid, wasYield, es, esAfter)
		if windowClosed && e.cfg.EventSink != nil {
			hs := make([]int, 0, h.Len())
			h.ForEach(func(u tidset.Tid) { hs = append(hs, int(u)) })
			e.cfg.EventSink.Emit(obs.Event{
				Type:  "yield",
				Exec:  e.cfg.ExecIndex,
				Step:  e.stepCount - 1,
				Yield: &obs.YieldEvent{Tid: int(alt.Tid), H: hs},
			})
		}
	}
	e.prevTid = alt.Tid
	e.prevYielded = wasYield
	if e.cfg.Monitor != nil {
		e.cfg.Monitor.AfterStep(e)
	}
	return 0, false
}

func validateAlt(alt Alt, cands []Alt) error {
	for _, c := range cands {
		if c == alt {
			return nil
		}
	}
	return fmt.Errorf("%v not in %v", alt, cands)
}

// candidates expands the schedulable set into alternatives, one per
// thread, or one per choice value for threads at a ChoiceOp. The
// returned slice is the engine's reused buffer: it is valid only until
// the next step (see ChooseContext).
func (e *Engine) candidates(schedulable tidset.Set) []Alt {
	cands := e.candsBuf[:0]
	schedulable.ForEach(func(t tidset.Tid) {
		th := e.threads[t]
		if c, ok := th.pending.(ChoiceOp); ok {
			for i := 0; i < c.Arity(); i++ {
				cands = append(cands, Alt{Tid: t, Arg: i})
			}
		} else {
			cands = append(cands, Alt{Tid: t, Arg: noChoice})
		}
	})
	// ForEach ascends and choice values are appended ascending, so the
	// slice is already ordered; the insertion sort is a cheap,
	// allocation-free safeguard of the documented invariant.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && altLess(cands[j], cands[j-1]); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	e.candsBuf = cands
	return cands
}

func altLess(a, b Alt) bool {
	if a.Tid != b.Tid {
		return a.Tid < b.Tid
	}
	return a.Arg < b.Arg
}

// executeStep (legacy path) wakes alt's prepared thread and waits
// until it parks again or exits.
func (e *Engine) executeStep(alt Alt) {
	th := e.threads[alt.Tid]
	e.launch(th)
	var ev event
	if e.cfg.Watchdog > 0 {
		if e.wdTimer == nil {
			e.wdTimer = time.NewTimer(e.cfg.Watchdog)
		} else {
			e.wdTimer.Reset(e.cfg.Watchdog)
		}
		select {
		case ev = <-e.ready:
			if !e.wdTimer.Stop() {
				<-e.wdTimer.C
			}
		case <-e.wdTimer.C:
			// The thread neither parked nor exited within the interval:
			// it is wedged in uncontrolled code. Flag abort first so
			// that, should the thread ever wake, it unwinds itself at
			// its next scheduling point instead of touching engine
			// state that is being torn down concurrently.
			e.aborting.Store(true)
			e.wedge = &WedgeInfo{
				Tid:    th.id,
				Name:   th.name,
				LastOp: e.lastInfo,
				Step:   e.stepCount,
			}
			return
		}
	} else {
		ev = <-e.ready
	}
	switch ev.kind {
	case evParked:
		ev.th.status = statusParked
	case evExited:
		ev.th.status = statusExited
		e.recycleWorker(ev.th)
	}
	if ev.th != th {
		panic("engine: event from thread that was not scheduled")
	}
}

// launch wakes a prepared thread: starts its goroutine (embryo) or
// sends its resume token (parked).
func (e *Engine) launch(th *thread) {
	switch th.status {
	case statusEmbryo:
		th.status = statusRunning
		e.startThread(th)
	case statusParked:
		th.status = statusRunning
		th.resume <- struct{}{}
	default:
		panic(fmt.Sprintf("engine: scheduling thread %d in status %s", th.id, th.status))
	}
}

// park publishes op as th's pending transition and blocks until the
// scheduler grants it, then executes it (and any continuations).
// Called from the thread's own goroutine via T.Do.
func (e *Engine) park(th *thread, op Op) {
	if e.aborting.Load() {
		panic(killSentinel{})
	}
	th.pending = op
	if e.fast {
		e.parkFast(th)
		return
	}
	for {
		if e.aborting.Load() {
			// Covers a wedged thread completing a continuation after the
			// engine gave up on it: unwind instead of re-parking.
			panic(killSentinel{})
		}
		e.ready <- event{kind: evParked, th: th}
		<-th.resume
		if e.aborting.Load() {
			panic(killSentinel{})
		}
		cur := th.pending
		cont := cur.Execute()
		if cont == nil {
			return
		}
		th.pending = cont
	}
}

// runThread is the top of a single-use model goroutine: it runs the
// body, converts panics into violations or clean unwinds, and always
// reports exit to the scheduler. Pooled engines run bodies on reusable
// worker goroutines instead (worker.go), which share this defer via
// finishThread.
func (e *Engine) runThread(th *thread) {
	defer func() {
		if r := recover(); r != nil {
			e.recoverBody(th, r)
		}
		e.finishThread(th)
	}()
	th.body(&T{e: e, th: th})
}

// finishThread reports a completed body to the scheduler. On the fast
// path the dying goroutine runs the scheduling point itself (exitFast);
// when that is not possible — legacy path, abort in progress, poisoned
// gate — it falls back to the engine-mediated exit event.
func (e *Engine) finishThread(th *thread) {
	if e.fast && e.exitFast(th) {
		return
	}
	e.ready <- event{kind: evExited, th: th}
}

// recoverBody converts a panic that unwound a thread body into a
// safety violation — unless it is the engine's own kill sentinel, or a
// violation was already recorded by Failf (which panics killSentinel).
func (e *Engine) recoverBody(th *thread, r any) {
	if _, ok := r.(killSentinel); ok {
		return
	}
	if e.violation == nil {
		e.violation = &ViolationInfo{
			Tid:     th.id,
			Msg:     fmt.Sprint(r),
			IsPanic: true,
			Stack:   string(debug.Stack()),
		}
	}
}

// fail records a safety violation on behalf of th and unwinds its
// goroutine. It does not return.
func (e *Engine) fail(th *thread, msg string) {
	if e.violation == nil {
		e.violation = &ViolationInfo{Tid: th.id, Msg: msg}
	}
	panic(killSentinel{})
}

// abort unwinds every remaining model goroutine so Run leaks nothing.
// The one exception is a wedged thread: it is stuck in uncontrolled
// code, cannot be unwound, and is leaked (it self-destructs at its
// next scheduling point, should it ever reach one).
func (e *Engine) abort() {
	e.aborting.Store(true)
	for _, th := range e.threads {
		switch th.status {
		case statusParked:
			th.resume <- struct{}{}
			e.drainUntilExit(th)
			th.status = statusExited
		case statusEmbryo, statusAgent:
			th.status = statusExited
		case statusRunning:
			if e.wedge != nil && th.id == e.wedge.Tid {
				continue // leaked; see the wedge note above
			}
			panic("engine: thread still running at abort")
		}
	}
}

// drainUntilExit consumes ready events until th reports exit. After a
// wedge the stuck thread may wake at any moment and interleave its own
// unwind events with the abort handshake; those are absorbed here.
func (e *Engine) drainUntilExit(th *thread) {
	for {
		ev := <-e.ready
		if ev.th == th && ev.kind == evExited {
			e.recycleWorker(th)
			return
		}
		if e.wedge != nil && ev.th.id == e.wedge.Tid {
			switch ev.kind {
			case evExited:
				ev.th.status = statusExited
			case evParked:
				// It reached a scheduling point after all: grant one
				// resume so the park loop observes aborting and unwinds.
				ev.th.resume <- struct{}{}
			}
			continue
		}
		panic("engine: unexpected event during abort")
	}
}

func (e *Engine) result(outcome Outcome) *Result {
	r := &Result{
		Outcome:     outcome,
		Steps:       e.stepCount,
		Schedule:    e.schedule,
		Trace:       e.trace,
		Digests:     e.digests,
		Threads:     len(e.threads),
		Yields:      e.yieldCnt,
		FairBlocked: e.fairBlockedCnt,
	}
	if e.pooled {
		// A pooled engine reuses its step buffers on the next run, so
		// the Result must own copies. A single-use engine keeps the
		// historical aliasing: the buffers die with it.
		r.Schedule = append([]Alt(nil), e.schedule...)
		r.Trace = append([]Step(nil), e.trace...)
		r.Digests = append([]StepDigest(nil), e.digests...)
	}
	if e.fair != nil {
		r.EdgeAdds, r.EdgeErases = e.fair.EdgeStats()
	}
	r.WM = e.wm
	if m := e.cfg.Metrics; m != nil {
		m.FlushExec(obs.ExecFlush{
			Steps:          e.stepCount,
			Yields:         e.yieldCnt,
			Choices:        e.choiceCnt,
			Candidates:     e.candCnt,
			FairBlocked:    e.fairBlockedCnt,
			EdgeAdds:       r.EdgeAdds,
			EdgeErases:     r.EdgeErases,
			InlineSteps:    e.inlineCnt,
			Handoffs:       e.handoffs,
			BufferedStores: e.wm.BufferedStores,
			Flushes:        e.wm.Flushes,
			Fences:         e.wm.Fences,
			Forwards:       e.wm.Forwards,
			Outcome:        outcome.String(),
		})
	}
	if sink := e.cfg.EventSink; sink != nil {
		sink.Emit(obs.Event{
			Type: "exec_end",
			Exec: e.cfg.ExecIndex,
			ExecEnd: &obs.ExecEndEvent{
				Outcome: outcome.String(),
				Steps:   int(e.stepCount),
				Yields:  int(e.yieldCnt),
			},
		})
	}
	for _, th := range e.threads {
		r.PerThread = append(r.PerThread, ThreadStat{
			Tid:    th.id,
			Name:   th.name,
			Steps:  th.steps,
			Yields: th.yields,
			Exited: th.status == statusExited,
			Agent:  th.status == statusAgent,
		})
	}
	if outcome == Violation {
		r.Violation = e.violation
	}
	if outcome == Wedged {
		r.Wedge = e.wedge
	}
	r.DeadlineExceeded = e.deadlineHit
	if outcome == Deadlock {
		// Agents are omitted: a deadlock means no agent was enabled
		// either (drained buffers), and an agent is never "blocked" in
		// the program's sense.
		for _, th := range e.threads {
			if th.status != statusExited && th.status != statusAgent {
				r.Blocked = append(r.Blocked, BlockedInfo{
					Tid:  th.id,
					Name: th.name,
					Op:   th.pending.Info(),
				})
			}
		}
	}
	return r
}

// RegisterObject records a shared object created during the execution
// and returns its id. Called by the syncmodel constructors.
func (e *Engine) RegisterObject(obj Object) ObjID {
	id := ObjID(len(e.objects))
	e.objects = append(e.objects, obj)
	e.objMeta = append(e.objMeta, ObjMeta{Creator: tidset.None})
	return id
}

// RegisterObjectBy is RegisterObject with creator attribution: the
// object is tagged with the creating thread and its per-thread
// creation sequence number, the stable identity heap canonicalization
// (internal/canon) keys on.
func (e *Engine) RegisterObjectBy(t *T, obj Object) ObjID {
	id := ObjID(len(e.objects))
	e.objects = append(e.objects, obj)
	th := t.th
	e.objMeta = append(e.objMeta, ObjMeta{Creator: th.id, Seq: th.objSeq})
	th.objSeq++
	return id
}

// ObjMeta is the creation identity of a registered object.
type ObjMeta struct {
	// Creator is the creating thread, or tidset.None when the object
	// was registered without attribution.
	Creator tidset.Tid
	// Seq is the creation index within the creating thread.
	Seq int
}

// Objects returns the registered objects in creation order.
func (e *Engine) Objects() []Object { return e.objects }

// ObjectMeta returns the creation identity of object id.
func (e *Engine) ObjectMeta(id ObjID) ObjMeta { return e.objMeta[id] }

// ThreadMeta returns the spawn identity of thread t: its parent and
// its spawn sequence number within the parent. The main thread has
// parent tidset.None.
func (e *Engine) ThreadMeta(t tidset.Tid) (parent tidset.Tid, seq int) {
	th := e.threads[t]
	return th.parent, th.spawnSeq
}

// StepCount returns the number of transitions executed so far.
func (e *Engine) StepCount() int64 { return e.stepCount }

// NumThreads returns the number of threads created so far.
func (e *Engine) NumThreads() int { return len(e.threads) }

// ThreadPC returns the last Label value of thread t.
func (e *Engine) ThreadPC(t tidset.Tid) int { return e.threads[t].pc }

// LastScheduled returns the thread scheduled in the most recent step.
func (e *Engine) LastScheduled() tidset.Tid { return e.prevTid }

// LastOpInfo returns the OpInfo of the most recently executed
// transition, for monitors that interpret the event stream.
func (e *Engine) LastOpInfo() OpInfo { return e.lastInfo }
