package engine_test

import (
	"errors"
	"testing"

	"fairmc/internal/engine"
	"fairmc/internal/syncmodel"
)

// mutatingProg builds a program that closes over *val: the worker's
// store carries whatever the variable holds at run time, modelling a
// program that changes between record and replay (a re-deployed
// binary, hidden global state, an unseeded random).
func mutatingProg(val *int64) func(*engine.T) {
	return func(t *engine.T) {
		x := syncmodel.NewIntVar(t, "x", 0)
		done := syncmodel.NewIntVar(t, "done", 0)
		h := t.Go("worker", func(t *engine.T) {
			x.Store(t, *val)
			done.Store(t, 1)
		})
		for done.Load(t) == 0 {
			t.Yield()
		}
		h.Join(t)
	}
}

// TestStrictReplayDetectsMutation records a schedule with digests, then
// mutates the program and replays strictly: the replay must stop at the
// first divergent step with a structured DivergenceError and return the
// partial result, not explore a wrong execution to completion.
func TestStrictReplayDetectsMutation(t *testing.T) {
	val := int64(1)
	prog := mutatingProg(&val)
	cfg := engine.Config{Fair: true, MaxSteps: 1000, RecordDigests: true}

	r := engine.Run(prog, engine.RunToCompletionChooser{}, cfg)
	if r.Outcome != engine.Terminated {
		t.Fatalf("recording run outcome = %v", r.Outcome)
	}
	if len(r.Digests) != len(r.Schedule) {
		t.Fatalf("recorded %d digests for %d schedule steps", len(r.Digests), len(r.Schedule))
	}

	// Unmutated strict replay conforms end to end.
	ch := &engine.ReplayChooser{Schedule: r.Schedule, Digests: r.Digests, Strict: true}
	rr := engine.Run(prog, ch, cfg)
	if ch.Div != nil || ch.Err != nil || rr.Outcome != r.Outcome {
		t.Fatalf("conforming replay failed: div=%v err=%v outcome=%v", ch.Div, ch.Err, rr.Outcome)
	}

	// Mutate and replay: the digest comparison must catch the change
	// even though the same threads stay schedulable.
	val = 2
	ch = &engine.ReplayChooser{Schedule: r.Schedule, Digests: r.Digests, Strict: true}
	rr = engine.Run(prog, ch, cfg)
	if ch.Div == nil {
		t.Fatalf("mutated replay not detected: outcome=%v", rr.Outcome)
	}
	div := ch.Div
	if div.Step < 0 || div.Step >= len(r.Schedule) {
		t.Fatalf("divergent step %d out of schedule range [0,%d)", div.Step, len(r.Schedule))
	}
	if div.Expected.Hash == div.Observed.Hash {
		t.Fatalf("divergence reports equal digests: %+v", div)
	}
	// The first divergent step is the first one where the worker's
	// pending store — the only thing that changed — is visible in the
	// candidate set: verify the pinpointing by checking that every
	// earlier digest still matched (the replay got exactly that far).
	if rr.Outcome != engine.Aborted {
		t.Fatalf("diverged replay outcome = %v, want aborted partial result", rr.Outcome)
	}
	if rr.Steps != int64(div.Step) {
		t.Fatalf("partial result has %d steps, divergence at step %d", rr.Steps, div.Step)
	}
	var divErr *engine.DivergenceError
	if !errors.As(error(div), &divErr) {
		t.Fatal("DivergenceError does not satisfy errors.As")
	}
	if div.Error() == "" || div.Expected.String() == "" {
		t.Fatal("empty diagnostics")
	}
}

// TestStrictReplayNotSchedulable: when the mutation removes the
// scheduled thread entirely, the divergence is flagged NotSchedulable.
// No digests are supplied here — schedule-only strict replay is the
// legacy mode — so this exercises the not-schedulable detection on its
// own (with digests, the candidate-set mismatch would fire first, at an
// earlier step).
func TestStrictReplayNotSchedulable(t *testing.T) {
	spawn := true
	prog := func(t *engine.T) {
		x := syncmodel.NewIntVar(t, "x", 0)
		if spawn {
			h := t.Go("worker", func(t *engine.T) {
				x.Store(t, 1)
			})
			h.Join(t)
		}
		// Keep the main thread running past the branch so the replay is
		// still alive at the step that schedules the missing worker.
		x.Store(t, 9)
		x.Store(t, 10)
	}
	cfg := engine.Config{Fair: true, MaxSteps: 1000, RecordDigests: true}
	r := engine.Run(prog, engine.FirstChooser{}, cfg)
	if r.Outcome != engine.Terminated {
		t.Fatalf("recording run outcome = %v", r.Outcome)
	}

	spawn = false // the worker named by the schedule never exists
	ch := &engine.ReplayChooser{Schedule: r.Schedule, Strict: true}
	rr := engine.Run(prog, ch, cfg)
	if ch.Div == nil {
		t.Fatalf("missing-thread replay not detected: outcome=%v", rr.Outcome)
	}
	if !ch.Div.NotSchedulable {
		t.Fatalf("divergence not flagged NotSchedulable: %+v", ch.Div)
	}
	if ch.Err == nil {
		t.Fatal("legacy ReplayError not populated alongside DivergenceError")
	}
	if ch.Div.Step != ch.Err.Step {
		t.Fatalf("divergence step %d != replay-error step %d", ch.Div.Step, ch.Err.Step)
	}
}
