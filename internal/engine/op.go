// Package engine is the deterministic cooperative execution runtime
// underneath the fair stateless model checker.
//
// CHESS controls a real program by intercepting every Win32/.NET
// synchronization API. We obtain the same control by construction:
// model threads are goroutines that perform every shared-state access
// through an Op published at a scheduling point, where the goroutine
// parks until the checker grants it the step. Exactly one model
// goroutine runs at a time, so execution is fully deterministic and an
// execution is replayable from its schedule (the sequence of
// (thread, choice) decisions) alone — the essence of stateless model
// checking.
package engine

import (
	"fmt"

	"fairmc/internal/tidset"
)

// Op is one pending operation of a parked thread: the thread's next
// transition. The engine queries Enabled to build the enabled set ES
// and runs Execute (in the owning goroutine) when the scheduler grants
// the step.
type Op interface {
	// Enabled reports whether the transition can currently fire.
	// A thread whose pending op is disabled is blocked.
	Enabled() bool

	// Execute applies the transition's effect. It runs in the owning
	// thread's goroutine, strictly serialized with all other model
	// code. A non-nil return value is a continuation: the thread
	// re-parks with that op instead of resuming user code (used for
	// multi-phase operations such as condition-variable wait, which
	// must release, block, and reacquire).
	Execute() Op

	// Yielding reports whether this transition is a yield in the
	// paper's sense: an explicit processor yield or a synchronization
	// operation with a finite timeout (§4: inference of yielding
	// transitions). The fair scheduler closes the thread's window
	// after a yielding transition.
	Yielding() bool

	// Info describes the operation for traces and fingerprints.
	Info() OpInfo
}

// ChoiceOp is implemented by operations that introduce data
// nondeterminism (T.Choose). The search resolves the choice and the
// engine calls SetChoice before Execute.
type ChoiceOp interface {
	Op
	// Arity returns the number of alternatives; choices are 0..Arity-1.
	Arity() int
	// SetChoice fixes the alternative Execute will take.
	SetChoice(int)
}

// OpInfo is the trace- and fingerprint-facing description of an Op.
type OpInfo struct {
	Kind string // e.g. "lock", "yield", "store"
	Obj  ObjID  // object operated on, or NoObj
	Aux  int64  // operation-specific detail (value stored, chosen index…)
}

func (i OpInfo) String() string {
	switch {
	case i.Obj == NoObj && i.Aux == 0:
		return i.Kind
	case i.Obj == NoObj:
		return fmt.Sprintf("%s(%d)", i.Kind, i.Aux)
	default:
		return fmt.Sprintf("%s(#%d,%d)", i.Kind, i.Obj, i.Aux)
	}
}

// ObjID identifies a registered synchronization object or shared
// variable within one execution. IDs are assigned in creation order.
type ObjID int32

// NoObj marks operations that touch no registered object.
const NoObj ObjID = -1

// Object is a registered shared object: a sync primitive or shared
// variable. Objects expose their state for fingerprinting.
type Object interface {
	// ObjectInfo returns the object's id, kind and name.
	ObjectInfo() (ObjID, string, string)
	// AppendState appends a canonical encoding of the object's
	// current state. Encodings must be self-delimiting and
	// deterministic: equal logical states yield equal bytes.
	AppendState(buf []byte) []byte
}

// Alt is one alternative at a scheduling point: schedule thread Tid,
// and if its pending op is a ChoiceOp, resolve it to Arg (otherwise
// Arg is -1).
type Alt struct {
	Tid tidset.Tid
	Arg int
}

func (a Alt) String() string {
	if a.Arg < 0 {
		return fmt.Sprintf("t%d", a.Tid)
	}
	return fmt.Sprintf("t%d:%d", a.Tid, a.Arg)
}

// noChoice is the Arg value for alternatives without data choice.
const noChoice = -1

// startOp is the pending op of a spawned-but-not-yet-started thread:
// its first transition runs the thread body to its first scheduling
// point. The thread record is allocated while the parent is still
// running (before the parent's spawn transition is scheduled), so the
// start transition is enabled only once the parent's spawn op has
// actually executed (th.armed). Execute is never called; the engine
// starts the goroutine instead.
type startOp struct {
	th *thread
}

func (o startOp) Enabled() bool { return o.th.armed }
func (o startOp) Execute() Op   { panic("engine: startOp.Execute must not be called") }
func (o startOp) Yielding() bool {
	return false
}
func (o startOp) Info() OpInfo { return OpInfo{Kind: "start", Obj: NoObj} }

// yieldOp implements T.Yield and T.Sleep: always enabled, no effect,
// and yielding — the good-samaritan signal the fair scheduler keys on.
type yieldOp struct {
	kind string
	aux  int64
}

func (yieldOp) Enabled() bool  { return true }
func (yieldOp) Execute() Op    { return nil }
func (yieldOp) Yielding() bool { return true }
func (o yieldOp) Info() OpInfo { return OpInfo{Kind: o.kind, Obj: NoObj, Aux: o.aux} }

// chooseOp implements T.Choose(n): a data-nondeterminism point with n
// alternatives, resolved by the search.
type chooseOp struct {
	n      int
	choice int
}

func (o *chooseOp) Enabled() bool  { return true }
func (o *chooseOp) Execute() Op    { return nil }
func (o *chooseOp) Yielding() bool { return false }
func (o *chooseOp) Arity() int     { return o.n }
func (o *chooseOp) SetChoice(c int) {
	if c < 0 || c >= o.n {
		panic(fmt.Sprintf("engine: choice %d out of range [0,%d)", c, o.n))
	}
	o.choice = c
}
func (o *chooseOp) Info() OpInfo {
	return OpInfo{Kind: "choose", Obj: NoObj, Aux: int64(o.choice)}
}

// joinOp blocks until the target thread exits.
type joinOp struct {
	target *thread
}

func (o *joinOp) Enabled() bool  { return o.target.status == statusExited }
func (o *joinOp) Execute() Op    { return nil }
func (o *joinOp) Yielding() bool { return false }
func (o *joinOp) Info() OpInfo {
	return OpInfo{Kind: "join", Obj: NoObj, Aux: int64(o.target.id)}
}
