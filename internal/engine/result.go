package engine

import (
	"fmt"
	"strings"

	"fairmc/internal/tidset"
)

// Outcome classifies how one execution ended.
type Outcome int8

const (
	// Terminated: every thread ran to completion (a terminating
	// execution in the paper's sense).
	Terminated Outcome = iota
	// Deadlock: no thread is enabled but some threads are still live.
	// By Theorem 3 the fair scheduler never reports a false deadlock.
	Deadlock
	// Violation: an assertion failed, a model API was misused, or the
	// program panicked.
	Violation
	// Diverged: the execution exceeded the step bound. Under the fair
	// scheduler this is the signature of a liveness error: in the
	// limit the algorithm generates an infinite execution that either
	// violates the good-samaritan property or is a fair
	// nontermination (livelock). See internal/liveness.
	Diverged
	// Aborted: the chooser cut the execution short (search pruning).
	Aborted
	// Wedged: the scheduled thread failed to reach its next scheduling
	// point within Config.Watchdog — it is blocked or spinning outside
	// the checker's API, so the engine can neither continue nor unwind
	// it. The execution ends, the offending thread's goroutine is
	// leaked, and Result.Wedge identifies it.
	Wedged
)

func (o Outcome) String() string {
	switch o {
	case Terminated:
		return "terminated"
	case Deadlock:
		return "deadlock"
	case Violation:
		return "violation"
	case Diverged:
		return "diverged"
	case Aborted:
		return "aborted"
	case Wedged:
		return "wedged"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// ViolationInfo describes a safety violation.
type ViolationInfo struct {
	Tid     tidset.Tid
	Msg     string
	IsPanic bool   // true if the thread body panicked
	Stack   string // goroutine stack for panics
}

func (v *ViolationInfo) String() string {
	kind := "failure"
	if v.IsPanic {
		kind = "panic"
	}
	return fmt.Sprintf("thread %d %s: %s", v.Tid, kind, v.Msg)
}

// WedgeInfo identifies the thread that tripped the execution watchdog:
// the thread that was granted a step and never parked or exited again.
// LastOp is the operation the engine granted it — the last controlled
// transition before it wandered off into uncontrolled code.
type WedgeInfo struct {
	Tid    tidset.Tid `json:"tid"`
	Name   string     `json:"name"`
	LastOp OpInfo     `json:"lastOp"`
	// Step is the index of the granted-but-never-completed step.
	Step int64 `json:"step"`
}

func (w *WedgeInfo) String() string {
	return fmt.Sprintf("thread %d (%s) wedged at step %d after %s: "+
		"no scheduling point reached within the watchdog interval",
		w.Tid, w.Name, w.Step, w.LastOp)
}

// BlockedInfo describes one thread blocked at a deadlock.
type BlockedInfo struct {
	Tid  tidset.Tid
	Name string
	Op   OpInfo
}

// Step is one recorded transition of an execution trace.
type Step struct {
	Alt   Alt
	Info  OpInfo
	Yield bool // the transition was yielding
	// EnabledAfter is the number of enabled threads after the step
	// (cheap context for trace display and liveness classification).
	EnabledAfter int
}

// ThreadStat summarizes one thread's activity in an execution.
type ThreadStat struct {
	Tid    tidset.Tid
	Name   string
	Steps  int64 // transitions taken
	Yields int64 // yielding transitions among them
	Exited bool
	// Agent marks a scheduler agent (a store-buffer flush owner, see
	// Engine.AddAgent) rather than a program thread. Liveness
	// classification keys on it: agents never yield by design, so the
	// good-samaritan judgment must not apply to them.
	Agent bool
}

// WMCounters aggregates the weak-memory subsystem's per-execution
// telemetry (internal/wm): stores buffered instead of hitting memory,
// flush steps executed, fences completed, and loads served by
// store-to-load forwarding from the issuing thread's own buffer. All
// four are deterministic functions of the schedule.
type WMCounters struct {
	BufferedStores int64
	Flushes        int64
	Fences         int64
	Forwards       int64
}

// Result reports one complete execution.
type Result struct {
	Outcome  Outcome
	Steps    int64
	Schedule []Alt  // the decisions taken, sufficient for replay
	Trace    []Step // full trace if Config.RecordTrace
	// Digests are the per-step conformance digests if
	// Config.RecordDigests; a strict ReplayChooser given these verifies
	// the program still conforms to the schedule (see conformance.go).
	Digests   []StepDigest
	Violation *ViolationInfo
	Blocked   []BlockedInfo // populated for Deadlock
	// Wedge identifies the stuck thread for outcome Wedged.
	Wedge *WedgeInfo
	// DeadlineExceeded reports that the execution was cut because the
	// wall-clock Config.Deadline passed (outcome Aborted). The searcher
	// translates this into its TimeLimit accounting.
	DeadlineExceeded bool
	Threads          int   // threads created
	Yields           int64 // yielding transitions taken
	// Priority-graph churn under the fair scheduler (zero without it):
	// EdgeAdds counts insertions by P := P ∪ {t}×H at yield-window
	// boundaries, EdgeErases removals by line 13's P := P \ (Tid × {t}),
	// and FairBlocked the (step, thread) pairs where an enabled thread
	// was excluded from scheduling by a priority edge. All three are
	// deterministic functions of the schedule.
	EdgeAdds    int64
	EdgeErases  int64
	FairBlocked int64
	// WM is the weak-memory telemetry (all zero under SC with no
	// explicit wm.Memory use).
	WM WMCounters
	// PerThread breaks Steps/Yields down by thread, in id order. The
	// good-samaritan discipline is visible here: a thread with many
	// steps and no yields in a diverging execution is the §4.3.1 bug.
	PerThread []ThreadStat
}

// FormatTrace renders the recorded trace (or, without trace recording,
// just the schedule) for human consumption.
func (r *Result) FormatTrace() string {
	var b strings.Builder
	fmt.Fprintf(&b, "outcome: %s after %d steps, %d threads\n", r.Outcome, r.Steps, r.Threads)
	if r.Violation != nil {
		fmt.Fprintf(&b, "violation: %s\n", r.Violation)
	}
	if r.Wedge != nil {
		fmt.Fprintf(&b, "wedge: %s\n", r.Wedge)
	}
	for i, bl := range r.Blocked {
		fmt.Fprintf(&b, "blocked[%d]: thread %d (%s) at %s\n", i, bl.Tid, bl.Name, bl.Op)
	}
	if len(r.Trace) > 0 {
		for i, s := range r.Trace {
			y := ""
			if s.Yield {
				y = " [yield]"
			}
			fmt.Fprintf(&b, "%5d: %s %s%s\n", i, s.Alt, s.Info, y)
		}
	} else {
		fmt.Fprintf(&b, "schedule: %v\n", r.Schedule)
	}
	return b.String()
}

// FormatColumns renders the recorded trace as one column per thread —
// the layout concurrency bugs are easiest to read in. Requires a
// recorded trace; falls back to FormatTrace otherwise. width is the
// column width (0 = 14).
func (r *Result) FormatColumns(width int) string {
	if len(r.Trace) == 0 {
		return r.FormatTrace()
	}
	if width <= 0 {
		width = 14
	}
	var b strings.Builder
	fmt.Fprintf(&b, "outcome: %s after %d steps\n", r.Outcome, r.Steps)
	// Header: thread names.
	fmt.Fprintf(&b, "%5s ", "")
	for _, ts := range r.PerThread {
		fmt.Fprintf(&b, "| %-*s", width, clip(fmt.Sprintf("%d:%s", ts.Tid, ts.Name), width))
	}
	b.WriteByte('\n')
	for i, s := range r.Trace {
		fmt.Fprintf(&b, "%5d ", i)
		for _, ts := range r.PerThread {
			cell := ""
			if ts.Tid == s.Alt.Tid {
				cell = s.Info.String()
				if s.Yield {
					cell += "*"
				}
			}
			fmt.Fprintf(&b, "| %-*s", width, clip(cell, width))
		}
		b.WriteByte('\n')
	}
	if r.Violation != nil {
		fmt.Fprintf(&b, "violation: %s\n", r.Violation)
	}
	return b.String()
}

func clip(s string, w int) string {
	if len(s) <= w {
		return s
	}
	if w <= 1 {
		return s[:w]
	}
	return s[:w-1] + "…"
}
