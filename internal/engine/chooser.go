package engine

import (
	"fmt"

	"fairmc/internal/tidset"
)

// FirstChooser always picks the first candidate: the lowest thread id
// with the lowest choice value. Useful as a default continuation
// policy and in tests.
type FirstChooser struct{}

// Choose implements Chooser.
func (FirstChooser) Choose(ctx *ChooseContext) (Alt, bool) {
	return ctx.Cands[0], true
}

// RunToCompletionChooser keeps running the previously scheduled thread
// for as long as it is a candidate, otherwise switches to the first
// candidate. This emulates a non-preemptive scheduler and is the
// cheapest way to obtain one representative execution.
type RunToCompletionChooser struct{}

// Choose implements Chooser.
func (RunToCompletionChooser) Choose(ctx *ChooseContext) (Alt, bool) {
	if ctx.PrevTid != tidset.None {
		for _, a := range ctx.Cands {
			if a.Tid == ctx.PrevTid {
				return a, true
			}
		}
	}
	return ctx.Cands[0], true
}

// ReplayMode selects what a ReplayChooser does when its schedule runs
// out.
type ReplayMode int8

const (
	// ReplayThenAbort ends the execution when the schedule is
	// exhausted (outcome Aborted).
	ReplayThenAbort ReplayMode = iota
	// ReplayThenFirst continues with FirstChooser after the prefix.
	ReplayThenFirst
	// ReplayThenRun continues with RunToCompletionChooser.
	ReplayThenRun
)

// ReplayError describes a replay divergence: the recorded schedule
// asked for an alternative that is not schedulable at that step. The
// schedule is corrupted or truncated, or was recorded for a different
// program or engine configuration.
type ReplayError struct {
	// Step is the 0-based schedule index that failed to apply.
	Step int
	// Want is the alternative the schedule asked for.
	Want Alt
	// NumCands is how many alternatives were actually schedulable.
	NumCands int
}

func (e *ReplayError) Error() string {
	return fmt.Sprintf("replay divergence at step %d: %s not among the %d schedulable alternatives "+
		"(corrupted or truncated schedule, or a schedule from a different program/configuration)",
		e.Step, e.Want, e.NumCands)
}

// ReplayChooser replays a recorded schedule. Replay is the foundation
// of stateless search: an execution is identified by its schedule and
// can be reproduced at will.
type ReplayChooser struct {
	Schedule []Alt
	Mode     ReplayMode
	// Strict makes a divergence — a scheduled alternative that is not
	// among the candidates (schedule/program mismatch) — abort the
	// execution and record the diagnostic in Err; otherwise the
	// chooser falls back to its exhaustion mode.
	Strict bool
	// Digests, when non-empty in strict mode, are the per-step
	// conformance digests recorded when the schedule was explored
	// (Config.RecordDigests); each replayed step is verified against
	// them and the first mismatch is recorded in Div. This catches
	// nondeterminism that still happens to keep the scheduled
	// alternative schedulable.
	Digests []StepDigest
	// Err is the structured diagnostic of the first strict-mode
	// divergence; callers check it after Run.
	Err *ReplayError
	// Div is the structured diagnostic of the first conformance
	// failure (digest mismatch, or not-schedulable when digests give
	// the expected op); callers check it after Run alongside Err.
	Div *DivergenceError
	pos int
}

// Choose implements Chooser.
func (r *ReplayChooser) Choose(ctx *ChooseContext) (Alt, bool) {
	if r.pos < len(r.Schedule) {
		want := r.Schedule[r.pos]
		step := r.pos
		r.pos++
		for _, a := range ctx.Cands {
			if a == want {
				if r.Strict && step < len(r.Digests) {
					obs := ctx.Engine.StepDigest(ctx.Cands, want)
					if exp := r.Digests[step]; obs != exp {
						if r.Div == nil {
							r.Div = &DivergenceError{
								Step:     step,
								Want:     want,
								Expected: exp,
								Observed: obs,
								NumCands: len(ctx.Cands),
							}
						}
						return Alt{}, false
					}
				}
				return a, true
			}
		}
		if r.Strict {
			if r.Err == nil {
				r.Err = &ReplayError{Step: step, Want: want, NumCands: len(ctx.Cands)}
			}
			if r.Div == nil {
				div := &DivergenceError{
					Step:           step,
					Want:           want,
					Observed:       ctx.Engine.StepDigest(ctx.Cands, want),
					NumCands:       len(ctx.Cands),
					NotSchedulable: true,
				}
				if step < len(r.Digests) {
					div.Expected = r.Digests[step]
				}
				r.Div = div
			}
			return Alt{}, false
		}
	}
	switch r.Mode {
	case ReplayThenFirst:
		return FirstChooser{}.Choose(ctx)
	case ReplayThenRun:
		return RunToCompletionChooser{}.Choose(ctx)
	default:
		return Alt{}, false
	}
}

// FuncChooser adapts a function to the Chooser interface.
type FuncChooser func(ctx *ChooseContext) (Alt, bool)

// Choose implements Chooser.
func (f FuncChooser) Choose(ctx *ChooseContext) (Alt, bool) { return f(ctx) }
