package engine

import (
	"encoding/binary"

	"fairmc/internal/tidset"
)

// Fingerprint is a 128-bit state signature: two independent 64-bit
// FNV-1a hashes over the canonical state encoding. The paper's CHESS
// stores such signatures in a hash table to measure state coverage
// (§4.2.1); 128 bits make accidental collisions negligible for the
// state-space sizes involved.
type Fingerprint struct {
	Hi, Lo uint64
}

// Fingerprint captures the current program state: for every thread its
// status, program label and pending operation, and for every
// registered object its canonical state encoding.
//
// This is the model-checking analogue of the paper's manually added
// state-extraction facility: it is sound for programs that keep all
// behaviour-relevant state in registered objects and thread labels
// (the discipline the coverage programs follow). Objects and threads
// are encoded in creation order, which is deterministic for a given
// schedule; programs whose logical object identity varies across
// schedules should route fingerprints through internal/canon first.
func (e *Engine) Fingerprint() Fingerprint {
	e.fpBuf = e.AppendStateBytes(e.fpBuf[:0])
	return HashBytes(e.fpBuf)
}

// AppendStateBytes appends the canonical encoding of the current state
// to buf and returns the extended slice.
func (e *Engine) AppendStateBytes(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(e.threads)))
	for _, th := range e.threads {
		buf = append(buf, byte(th.status))
		if th.status == statusExited {
			// An exited thread has no future; its final program point
			// is irrelevant to the state.
			continue
		}
		buf = binary.AppendVarint(buf, int64(th.pc))
		buf = binary.AppendVarint(buf, int64(th.sinceLabel))
		info := th.pending.Info()
		buf = appendString(buf, info.Kind)
		buf = binary.AppendVarint(buf, int64(info.Obj))
		buf = binary.AppendVarint(buf, info.Aux)
		if th.pending.Enabled() {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(e.objects)))
	for _, obj := range e.objects {
		_, kind, name := obj.ObjectInfo()
		buf = appendString(buf, kind)
		buf = appendString(buf, name)
		buf = obj.AppendState(buf)
	}
	return buf
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// ThreadSnapshot exposes one thread's fingerprint-relevant state to
// canonical encoders (internal/canon).
type ThreadSnapshot struct {
	Status     byte
	PC         int
	SinceLabel int
	Live       bool
	Pending    OpInfo // valid when Live
	Enabled    bool   // valid when Live
}

// SnapshotThread returns the fingerprint-relevant state of thread t.
func (e *Engine) SnapshotThread(t tidset.Tid) ThreadSnapshot {
	th := e.threads[t]
	s := ThreadSnapshot{
		Status:     byte(th.status),
		PC:         th.pc,
		SinceLabel: th.sinceLabel,
		Live:       th.status != statusExited,
	}
	if s.Live {
		s.Pending = th.pending.Info()
		s.Enabled = th.pending.Enabled()
	}
	return s
}

// FNV-1a parameters (hash/fnv's 64-bit variant, inlined so both
// halves of the fingerprint fall out of one pass with no hash-state
// allocations).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// loSeedState is the FNV-1a state after absorbing the 4-byte domain
// separator {0x9e, 0x37, 0x79, 0xb9}. Starting Lo's accumulator here
// yields exactly the hash of (separator ++ buf) without a second pass
// over the buffer.
var loSeedState = func() uint64 {
	h := fnvOffset64
	for _, b := range [...]byte{0x9e, 0x37, 0x79, 0xb9} {
		h = (h ^ uint64(b)) * fnvPrime64
	}
	return h
}()

// HashBytes hashes a canonical encoding the same way Fingerprint does,
// so canonical and raw fingerprints are comparable artifacts. Both
// 64-bit halves are computed in a single pass: Hi is plain FNV-1a over
// buf, Lo is FNV-1a over buf from a seeded initial state.
func HashBytes(buf []byte) Fingerprint {
	h1, h2 := fnvOffset64, loSeedState
	for _, b := range buf {
		h1 = (h1 ^ uint64(b)) * fnvPrime64
		h2 = (h2 ^ uint64(b)) * fnvPrime64
	}
	return Fingerprint{Hi: h1, Lo: h2}
}

// CanonicalObject is implemented by objects whose state encoding
// embeds thread identifiers. AppendStateMapped must produce the same
// encoding as AppendState except that every embedded thread id is
// first passed through mapTid; canonical fingerprints depend on it.
type CanonicalObject interface {
	Object
	AppendStateMapped(buf []byte, mapTid func(tidset.Tid) tidset.Tid) []byte
}
