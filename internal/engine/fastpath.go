package engine

import (
	"runtime"
	"time"
)

// The fast path removes the engine goroutine from the per-step hot
// path. In the legacy handshake every scheduling point costs two
// channel handoffs and two goroutine context switches: the thread
// parks (ready <-), the engine decides, the engine wakes someone
// (resume <-). But exactly one model goroutine logically runs at a
// time, so the running thread can carry the scheduling baton itself:
// at its own park it commits the step it just finished, decides the
// next one, and
//
//   - keeps running when it granted itself the next step (zero
//     handoffs — the batching win: a thread with the only schedulable
//     transition executes a whole run of steps inline),
//   - hands the baton directly to the next thread (one handoff
//     instead of two), or
//   - stashes a terminal outcome and wakes the engine goroutine.
//
// The engine goroutine only participates at spawn-free boundaries:
// thread exits (the dying goroutine cannot decide on behalf of the
// program) and terminal outcomes. Both paths execute the identical
// decide/prepare/commit sequence in the identical order, so
// schedules, digests, traces, events, and counters are byte-for-byte
// the same with the fast path on or off.
//
// Concurrency protocol. Engine state is only touched inside "inline
// sections" guarded by e.schedGate (a tiny CAS lock): the baton holder
// holds it for the duration of one commit/decide/grant and never
// across user code, and baton handoffs (channel send/receive pairs and
// go statements) give the happens-before edges that order one
// section after the previous one. The only concurrent party is the
// watchdog in e.await: it watches e.progress, and on a stall poisons
// the gate (CAS 0→2) so no further section can start, which makes
// declaring the wedge race-free. A genuine wedge always happens in
// user code — never inside a section — so the poison CAS succeeds
// exactly when the baton holder is stuck.

// enterSection acquires the scheduling gate for an inline section.
// Model threads never contend with each other for it (one baton); the
// loop only spins when the watchdog poisoned the gate, in which case
// the thread unwinds as soon as the abort flag is up.
func (e *Engine) enterSection() {
	if !e.tryEnterSection() {
		panic(killSentinel{})
	}
}

// Sections end with e.progress.Add(1) followed by e.schedGate.Store(0)
// at each site; the progress bump must precede the release because the
// watchdog re-checks progress after poisoning the gate and must see
// the bump of any section that completed first.

// parkFast is the fast-path park loop: the running thread, arriving at
// its next scheduling point with th.pending already published, drives
// the scheduler itself.
func (e *Engine) parkFast(th *thread) {
	for {
		e.enterSection()
		// From here the thread is logically parked at its scheduling
		// point — observable state (fingerprints encode thread status)
		// must match the slow path's evParked handling exactly.
		th.status = statusParked
		// Commit the step that granted us this window: its
		// enabled-set-after must see our newly published pending op.
		out, done := e.commit(e.pendAlt, e.pendYield)
		if !done {
			var alt Alt
			var terminal bool
			alt, out, terminal = e.decideLoop()
			if !terminal {
				target, wasYield := e.prepare(alt)
				e.setPending(target, alt, wasYield)
				if target == th {
					// Self-grant: continue executing with no handoff.
					th.status = statusRunning
					e.inlineCnt++
					e.progress.Add(1)
					e.schedGate.Store(0)
					cur := th.pending
					cont := cur.Execute()
					if cont == nil {
						return
					}
					th.pending = cont
					continue
				}
				// Direct baton handoff to another thread. All engine
				// state is settled before the gate is released; the
				// wake itself happens outside the section (a buffered
				// send or a go statement — never blocking).
				e.handoffs++
				embryo := target.status == statusEmbryo
				target.status = statusRunning
				e.progress.Add(1)
				e.schedGate.Store(0)
				if embryo {
					e.startThread(target)
				} else {
					target.resume <- struct{}{}
				}
				e.waitResume(th)
				cur := th.pending
				cont := cur.Execute()
				if cont == nil {
					return
				}
				th.pending = cont
				continue
			}
		}
		// Terminal outcome decided on a thread: stash it for the
		// engine goroutine and park for good (only abort wakes us).
		e.stashOut = out
		e.progress.Add(1)
		e.schedGate.Store(0)
		e.ready <- event{kind: evStashed, th: th}
		e.waitResume(th)
		panic("engine: stashed thread resumed outside abort")
	}
}

// exitFast is parkFast's counterpart at a thread's death: the dying
// goroutine — still perfectly able to run one more inline section —
// carries the baton across its own exit instead of bouncing through
// the engine goroutine. It commits the step that was granted to the
// thread, decides the next one, and either hands the baton to the next
// thread or stashes the terminal outcome. Returns false when the
// section cannot be entered (abort in progress or gate poisoned); the
// caller then falls back to the engine-mediated evExited handshake,
// which the abort drain expects.
func (e *Engine) exitFast(th *thread) bool {
	if !e.tryEnterSection() {
		return false
	}
	th.status = statusExited
	if e.pendTh != th {
		panic("engine: exiting thread was not the scheduled thread")
	}
	// Requeue this goroutine's worker before deciding: a spawn granted
	// below may reuse it (its job channel is buffered, so handing a
	// body to a worker that is still unwinding here never blocks).
	e.recycleWorker(th)
	out, done := e.commit(e.pendAlt, e.pendYield)
	if !done {
		var alt Alt
		var terminal bool
		alt, out, terminal = e.decideLoop()
		if !terminal {
			// th is exited and never a candidate, so target != th.
			target, wasYield := e.prepare(alt)
			e.setPending(target, alt, wasYield)
			e.handoffs++
			embryo := target.status == statusEmbryo
			target.status = statusRunning
			e.progress.Add(1)
			e.schedGate.Store(0)
			if embryo {
				e.startThread(target)
			} else {
				target.resume <- struct{}{}
			}
			return true
		}
	}
	e.stashOut = out
	e.progress.Add(1)
	e.schedGate.Store(0)
	e.ready <- event{kind: evStashed, th: th}
	return true
}

// tryEnterSection is enterSection for callers that cannot unwind: it
// reports failure instead of panicking when the engine is aborting.
func (e *Engine) tryEnterSection() bool {
	for {
		// aborting is checked before the CAS: during the final abort the
		// gate is free, and a section must never start concurrently with
		// the teardown.
		if e.aborting.Load() {
			return false
		}
		if e.schedGate.CompareAndSwap(0, 1) {
			return true
		}
		runtime.Gosched()
	}
}

// waitResume blocks until this thread is granted again (by a baton
// handoff, the engine goroutine, or the abort teardown).
func (e *Engine) waitResume(th *thread) {
	<-th.resume
	if e.aborting.Load() {
		panic(killSentinel{})
	}
}

// setPending records the granted-but-uncommitted step; its commit runs
// at the granted thread's next scheduling point (or on its exit).
func (e *Engine) setPending(th *thread, alt Alt, wasYield bool) {
	e.pendTh = th
	e.pendAlt = alt
	e.pendYield = wasYield
}

// loopFast is the engine goroutine's half of the fast path: grant the
// first step, then absorb thread exits and stashed terminal outcomes
// while the threads schedule each other.
func (e *Engine) loopFast() Outcome {
	alt, out, terminal := e.decideLoop()
	if terminal {
		return out
	}
	th, wasYield := e.prepare(alt)
	e.setPending(th, alt, wasYield)
	e.progress.Add(1)
	e.launch(th)
	for {
		ev, wedged := e.await()
		if wedged {
			return Wedged
		}
		switch ev.kind {
		case evStashed:
			// The stashing goroutine already settled ev.th's status:
			// parked (parkFast) or exited (exitFast).
			return e.stashOut
		case evExited:
			ev.th.status = statusExited
			e.recycleWorker(ev.th)
			if ev.th != e.pendTh {
				panic("engine: exit event from thread that was not scheduled")
			}
			if out, done := e.commit(e.pendAlt, e.pendYield); done {
				return out
			}
			alt, out, terminal := e.decideLoop()
			if terminal {
				return out
			}
			th, wasYield := e.prepare(alt)
			e.setPending(th, alt, wasYield)
			e.progress.Add(1)
			e.launch(th)
		default:
			panic("engine: unexpected park event on fast path")
		}
	}
}

// await waits for the next thread event, running the watchdog. A
// single baton handoff is invisible to the engine goroutine, so the
// fast-path watchdog watches the progress counter instead: when no
// scheduling point completes for a full interval, the thread holding
// the baton is stuck in uncontrolled code. Poisoning the gate before
// declaring the wedge closes the race with a section that is just
// starting or just finished.
func (e *Engine) await() (event, bool) {
	if e.cfg.Watchdog <= 0 {
		return <-e.ready, false
	}
	if e.wdTimer == nil {
		e.wdTimer = time.NewTimer(e.cfg.Watchdog)
	} else {
		e.wdTimer.Reset(e.cfg.Watchdog)
	}
	last := e.progress.Load()
	for {
		select {
		case ev := <-e.ready:
			if !e.wdTimer.Stop() {
				<-e.wdTimer.C
			}
			return ev, false
		case <-e.wdTimer.C:
			p := e.progress.Load()
			if p != last {
				// Steps completed during the interval: not stuck.
				last = p
				e.wdTimer.Reset(e.cfg.Watchdog)
				continue
			}
			if !e.schedGate.CompareAndSwap(0, 2) {
				// A thread is inside an inline section right now, so
				// progress is imminent; check again next interval.
				e.wdTimer.Reset(e.cfg.Watchdog)
				continue
			}
			if e.progress.Load() != p {
				// A section completed between the progress check and
				// the poison CAS: un-poison and keep waiting.
				e.schedGate.Store(0)
				last = e.progress.Load()
				e.wdTimer.Reset(e.cfg.Watchdog)
				continue
			}
			// Quiescent and poisoned: the pending step's thread never
			// reached its next scheduling point. Flag abort first so
			// the stuck goroutine unwinds itself if it ever wakes.
			e.aborting.Store(true)
			th := e.pendTh
			e.wedge = &WedgeInfo{
				Tid:    th.id,
				Name:   th.name,
				LastOp: e.lastInfo,
				Step:   e.stepCount,
			}
			return event{}, true
		}
	}
}
