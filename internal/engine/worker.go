package engine

// Goroutine creation is not free: a fresh goroutine starts on a 2 KiB
// stack, and the fast path's inline sections run the whole scheduler on
// the model thread's stack, so every new goroutine pays runtime stack
// growth (copystack) before it reaches steady state — per thread, per
// execution. Pooled engines therefore reuse worker goroutines across
// executions: a worker runs one thread body, requeues itself, and
// parks on its job channel until the engine hands it the next body.
// Single-use engines keep spawning plain goroutines (runThread).

// worker is a reusable goroutine for running thread bodies. Its job
// channel is buffered so handing over a body never blocks the
// scheduler; closing it retires the worker.
type worker struct {
	job chan *thread
}

// startThread begins executing an embryo thread's body: on a pooled
// engine it hands the body to an idle worker (or starts a new one), on
// a single-use engine it spawns a plain goroutine. Callers have already
// moved th to statusRunning.
func (e *Engine) startThread(th *thread) {
	if !e.pooled {
		go e.runThread(th)
		return
	}
	if n := len(e.idleWorkers); n > 0 {
		w := e.idleWorkers[n-1]
		e.idleWorkers[n-1] = nil
		e.idleWorkers = e.idleWorkers[:n-1]
		th.w = w
		w.job <- th
		return
	}
	w := &worker{job: make(chan *thread, 1)}
	th.w = w
	w.job <- th
	go e.workerLoop(w)
}

// workerLoop runs thread bodies until the worker is retired. Each body
// run ends by reporting evExited (inside runThread's defer), and the
// engine requeues the worker while processing that event — so by the
// time the next job can arrive here, the previous one is fully
// accounted for.
func (e *Engine) workerLoop(w *worker) {
	for th := range w.job {
		e.runThread(th)
	}
}

// recycleWorker detaches th's worker and returns it to the idle list.
// Called while processing th's exit event; must not be called for a
// wedged thread (its worker is stuck in user code and is leaked with
// it).
func (e *Engine) recycleWorker(th *thread) {
	if th.w != nil {
		e.idleWorkers = append(e.idleWorkers, th.w)
		th.w = nil
	}
}

// releaseWorkers retires every idle worker goroutine. A wedged engine's
// stuck worker is not idle and stays leaked (same as its single-use
// counterpart).
func (e *Engine) releaseWorkers() {
	for i, w := range e.idleWorkers {
		close(w.job)
		e.idleWorkers[i] = nil
	}
	e.idleWorkers = e.idleWorkers[:0]
}
