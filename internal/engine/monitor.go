package engine

// MultiMonitor fans engine callbacks out to several monitors in order.
type MultiMonitor []Monitor

// AfterInit implements Monitor.
func (m MultiMonitor) AfterInit(e *Engine) {
	for _, mm := range m {
		mm.AfterInit(e)
	}
}

// AfterStep implements Monitor.
func (m MultiMonitor) AfterStep(e *Engine) {
	for _, mm := range m {
		mm.AfterStep(e)
	}
}
