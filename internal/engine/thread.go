package engine

import (
	"fmt"

	"fairmc/internal/tidset"
)

type threadStatus int8

const (
	statusEmbryo  threadStatus = iota // spawned, goroutine not yet started
	statusParked                      // goroutine parked at a scheduling point
	statusRunning                     // goroutine executing between scheduling points
	statusExited                      // body returned (or was killed during abort)
	// statusAgent marks a scheduler agent (Engine.AddAgent): a thread
	// record with no goroutine whose pending op the engine executes
	// inline when the search schedules it. Agents hold this status for
	// the whole execution (abort retires them to statusExited). The
	// value comes after statusExited so the status bytes of ordinary
	// threads — which fingerprints encode — are unchanged.
	statusAgent
)

func (s threadStatus) String() string {
	switch s {
	case statusEmbryo:
		return "embryo"
	case statusParked:
		return "parked"
	case statusRunning:
		return "running"
	case statusExited:
		return "exited"
	case statusAgent:
		return "agent"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// thread is the engine-side record of one model thread.
type thread struct {
	id     tidset.Tid
	name   string
	body   func(*T)
	status threadStatus

	pending Op   // valid while status is embryo or parked
	armed   bool // spawn transition executed; start is schedulable
	resume  chan struct{}
	w       *worker // pooled engines: goroutine running this body

	pc         int   // last Label() value, for state fingerprints
	sinceLabel int   // transitions since the last Label (intra-label pc)
	steps      int64 // transitions taken by this thread
	yields     int64 // yielding transitions taken
	spawnSeq   int   // creation index within the parent thread
	childCount int   // threads spawned by this thread so far
	objSeq     int   // objects registered by this thread so far
	parent     tidset.Tid
}

// killSentinel is panicked through a model goroutine to unwind it when
// the engine aborts an execution. User code must not recover it; the
// run wrapper re-checks and re-panics if it leaks into user recovery.
type killSentinel struct{}

// T is the per-thread handle passed to every model-thread body. All
// interaction with shared state goes through T (directly or via the
// synchronization objects in internal/syncmodel, which call T.Do).
//
// A T is only valid inside its own thread body, during the execution
// that created it.
type T struct {
	e  *Engine
	th *thread
}

// ID returns the thread's identifier (dense, creation order, main = 0).
func (t *T) ID() tidset.Tid { return t.th.id }

// Name returns the thread's name.
func (t *T) Name() string { return t.th.name }

// Do publishes op as this thread's next transition and parks until the
// scheduler grants and executes it. Synchronization objects use Do to
// implement their operations; test programs normally use the
// higher-level API.
func (t *T) Do(op Op) {
	t.e.park(t.th, op)
}

// Go spawns a new model thread running body. The spawn itself is a
// scheduling point; the new thread's first transition (running body to
// its first scheduling point) is a separately scheduled step, so the
// checker explores orderings between parent and child from the very
// first instruction.
func (t *T) Go(name string, body func(*T)) *Handle {
	nt := t.e.newThread(name, body, t.th)
	t.Do(&spawnOp{child: nt})
	return &Handle{th: nt}
}

// spawnOp makes thread creation itself a transition.
type spawnOp struct {
	child *thread
}

func (o *spawnOp) Enabled() bool { return true }
func (o *spawnOp) Execute() Op {
	o.child.armed = true
	return nil
}
func (o *spawnOp) Yielding() bool { return false }
func (o *spawnOp) Info() OpInfo {
	return OpInfo{Kind: "spawn", Obj: NoObj, Aux: int64(o.child.id)}
}

// Handle refers to a spawned thread.
type Handle struct {
	th *thread
}

// ID returns the spawned thread's identifier.
func (h *Handle) ID() tidset.Tid { return h.th.id }

// Join parks t until the target thread has exited.
func (h *Handle) Join(t *T) {
	t.Do(&joinOp{target: h.th})
}

// Yield is an explicit processor yield: the good-samaritan signal. It
// is always enabled and has no effect on program state, but it closes
// the thread's fairness window (Algorithm 1, lines 23–29).
func (t *T) Yield() {
	t.Do(yieldOp{kind: "yield"})
}

// Sleep models sleeping for a finite duration d (an opaque number of
// model ticks). Per the paper (§4), any synchronization operation with
// a finite timeout is treated as a yield; Sleep is exactly that.
func (t *T) Sleep(d int64) {
	t.Do(yieldOp{kind: "sleep", aux: d})
}

// Choose introduces data nondeterminism: the checker explores all
// values 0..n-1. n must be at least 1.
func (t *T) Choose(n int) int {
	if n < 1 {
		t.Failf("Choose(%d): arity must be >= 1", n)
	}
	op := &chooseOp{n: n}
	t.Do(op)
	return op.choice
}

// Label records a program-counter label for state fingerprinting. It
// is not a scheduling point. Coverage experiments label loop heads so
// that a state fingerprint determines future behaviour (the paper adds
// the equivalent facility manually to its two coverage programs).
//
// Between labels the engine counts transitions, so the pair
// (label, transitions-since-label) identifies the exact program point
// as long as the code between two labels is straight-line — which
// labeling every loop head guarantees.
func (t *T) Label(pc int) {
	t.th.pc = pc
	t.th.sinceLabel = 0
}

// Assert reports a safety violation and aborts the execution if cond
// is false.
func (t *T) Assert(cond bool, msg string) {
	if !cond {
		t.Failf("assertion failed: %s", msg)
	}
}

// Failf reports a safety violation with a formatted message and aborts
// the current execution. It does not return.
func (t *T) Failf(format string, args ...any) {
	t.e.fail(t.th, fmt.Sprintf(format, args...))
	panic(killSentinel{}) // unreachable: fail panics; kept for clarity
}

// Engine returns the engine running this thread, for object
// registration by the syncmodel package.
func (t *T) Engine() *Engine { return t.e }
