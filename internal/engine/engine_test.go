package engine_test

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"fairmc/internal/engine"
	"fairmc/internal/syncmodel"
	"fairmc/internal/tidset"
)

func cfg() engine.Config {
	return engine.Config{Fair: true, CheckInvariants: true, RecordTrace: true}
}

// maxTidChooser always schedules the highest-numbered candidate: an
// adversarial policy that starves low-numbered threads whenever the
// scheduler lets it.
type maxTidChooser struct{}

func (maxTidChooser) Choose(ctx *engine.ChooseContext) (engine.Alt, bool) {
	return ctx.Cands[len(ctx.Cands)-1], true
}

// preferChooser schedules the given thread whenever it is a candidate,
// starving everyone else for as long as the scheduler allows.
type preferChooser struct{ tid tidset.Tid }

func (p preferChooser) Choose(ctx *engine.ChooseContext) (engine.Alt, bool) {
	for _, c := range ctx.Cands {
		if c.Tid == p.tid {
			return c, true
		}
	}
	return ctx.Cands[len(ctx.Cands)-1], true
}

func TestEmptyProgramTerminates(t *testing.T) {
	r := engine.Run(func(*engine.T) {}, engine.FirstChooser{}, cfg())
	if r.Outcome != engine.Terminated {
		t.Fatalf("outcome = %v, want terminated", r.Outcome)
	}
	if r.Steps != 1 { // the main thread's start transition
		t.Fatalf("steps = %d, want 1", r.Steps)
	}
	if r.Threads != 1 {
		t.Fatalf("threads = %d, want 1", r.Threads)
	}
}

func TestSpawnAndJoin(t *testing.T) {
	var order []string
	r := engine.Run(func(t *engine.T) {
		v := syncmodel.NewIntVar(t, "v", 0)
		h := t.Go("child", func(t *engine.T) {
			v.Store(t, 42)
			order = append(order, "child")
		})
		h.Join(t)
		order = append(order, "main")
		t.Assert(v.Load(t) == 42, "child effect visible after join")
	}, engine.FirstChooser{}, cfg())
	if r.Outcome != engine.Terminated {
		t.Fatalf("outcome = %v: %s", r.Outcome, r.FormatTrace())
	}
	if len(order) != 2 || order[0] != "child" || order[1] != "main" {
		t.Fatalf("order = %v", order)
	}
	if r.Threads != 2 {
		t.Fatalf("threads = %d, want 2", r.Threads)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	// Two threads each do a read-modify-write of a shared counter
	// under a lock; the final value must be 2 under every schedule.
	prog := func(t *engine.T) {
		m := syncmodel.NewMutex(t, "m")
		c := syncmodel.NewIntVar(t, "c", 0)
		wg := syncmodel.NewWaitGroup(t, "wg", 2)
		for i := 0; i < 2; i++ {
			t.Go("worker", func(t *engine.T) {
				m.Lock(t)
				x := c.Load(t)
				c.Store(t, x+1)
				m.Unlock(t)
				wg.Done(t)
			})
		}
		wg.Wait(t)
		t.Assert(c.Load(t) == 2, "counter must be 2")
	}
	for _, ch := range []engine.Chooser{engine.FirstChooser{}, maxTidChooser{}, engine.RunToCompletionChooser{}} {
		r := engine.Run(prog, ch, cfg())
		if r.Outcome != engine.Terminated {
			t.Fatalf("chooser %T: %s", ch, r.FormatTrace())
		}
	}
}

func TestDeadlockDetection(t *testing.T) {
	// Classic ABBA deadlock, forced by a schedule that alternates the
	// two lockers' first acquisitions.
	prog := func(t *engine.T) {
		a := syncmodel.NewMutex(t, "a")
		b := syncmodel.NewMutex(t, "b")
		t.Go("ab", func(t *engine.T) {
			a.Lock(t)
			b.Lock(t)
			b.Unlock(t)
			a.Unlock(t)
		})
		t.Go("ba", func(t *engine.T) {
			b.Lock(t)
			a.Lock(t)
			a.Unlock(t)
			b.Unlock(t)
		})
	}
	// Alternate between threads 1 and 2 after both exist.
	turn := 0
	ch := engine.FuncChooser(func(ctx *engine.ChooseContext) (engine.Alt, bool) {
		want := tidset.Tid(1 + turn%2)
		for _, c := range ctx.Cands {
			if c.Tid == want {
				turn++
				return c, true
			}
		}
		return ctx.Cands[0], true
	})
	r := engine.Run(prog, ch, cfg())
	if r.Outcome != engine.Deadlock {
		t.Fatalf("outcome = %v, want deadlock\n%s", r.Outcome, r.FormatTrace())
	}
	if len(r.Blocked) != 2 {
		t.Fatalf("blocked = %v, want 2 threads", r.Blocked)
	}
	for _, b := range r.Blocked {
		if b.Op.Kind != "lock" {
			t.Fatalf("blocked op = %v, want lock", b.Op)
		}
	}
}

func TestAssertionViolation(t *testing.T) {
	r := engine.Run(func(t *engine.T) {
		v := syncmodel.NewIntVar(t, "v", 7)
		t.Assert(v.Load(t) == 8, "v should be 8")
	}, engine.FirstChooser{}, cfg())
	if r.Outcome != engine.Violation {
		t.Fatalf("outcome = %v, want violation", r.Outcome)
	}
	if r.Violation == nil || r.Violation.IsPanic {
		t.Fatalf("violation = %+v", r.Violation)
	}
	if r.Violation.Tid != 0 {
		t.Fatalf("violation tid = %d", r.Violation.Tid)
	}
}

func TestPanicBecomesViolation(t *testing.T) {
	r := engine.Run(func(t *engine.T) {
		t.Yield()
		panic("boom")
	}, engine.FirstChooser{}, cfg())
	if r.Outcome != engine.Violation {
		t.Fatalf("outcome = %v, want violation", r.Outcome)
	}
	if r.Violation == nil || !r.Violation.IsPanic || r.Violation.Msg != "boom" {
		t.Fatalf("violation = %+v", r.Violation)
	}
	if r.Violation.Stack == "" {
		t.Fatal("panic stack not captured")
	}
}

func TestDeferRunsDuringViolationUnwind(t *testing.T) {
	// A deferred model operation during violation unwinding must not
	// wedge the engine.
	r := engine.Run(func(t *engine.T) {
		m := syncmodel.NewMutex(t, "m")
		m.Lock(t)
		defer m.Unlock(t)
		t.Failf("deliberate")
	}, engine.FirstChooser{}, cfg())
	if r.Outcome != engine.Violation {
		t.Fatalf("outcome = %v, want violation", r.Outcome)
	}
}

// fig3 is the paper's Figure 3 program: thread t sets x to 1 while
// thread u spins (with a yield) until it observes the store. The
// spinner is spawned first (thread id 1) so adversarial choosers can
// target it before t exists.
func fig3(t *engine.T) {
	x := syncmodel.NewIntVar(t, "x", 0)
	hu := t.Go("u", func(t *engine.T) {
		for {
			t.Label(1)
			if x.Load(t) == 1 {
				break
			}
			t.Yield()
		}
	})
	ht := t.Go("t", func(t *engine.T) {
		x.Store(t, 1)
	})
	ht.Join(t)
	hu.Join(t)
}

func TestFairSchedulerTerminatesFig3(t *testing.T) {
	// Under an adversarial chooser that always prefers the spinner,
	// the fair scheduler must still force the other threads to run
	// (Figure 4's emulation) and the program must terminate.
	c := cfg()
	c.MaxSteps = 10000
	r := engine.Run(fig3, preferChooser{tid: 1}, c)
	if r.Outcome != engine.Terminated {
		t.Fatalf("outcome = %v, want terminated\n%s", r.Outcome, r.FormatTrace())
	}
	if r.Steps > 60 {
		t.Fatalf("fair run took %d steps; unfair cycles not pruned?", r.Steps)
	}
}

func TestUnfairSchedulerDivergesFig3(t *testing.T) {
	// The same adversarial chooser without fairness spins forever and
	// hits the step bound: exactly the problem the paper solves.
	c := engine.Config{Fair: false, MaxSteps: 500, RecordTrace: false}
	r := engine.Run(fig3, preferChooser{tid: 1}, c)
	if r.Outcome != engine.Diverged {
		t.Fatalf("outcome = %v, want diverged", r.Outcome)
	}
	if r.Steps != 500 {
		t.Fatalf("steps = %d, want 500", r.Steps)
	}
}

func TestChoose(t *testing.T) {
	var seen int
	ch := engine.FuncChooser(func(ctx *engine.ChooseContext) (engine.Alt, bool) {
		// Pick the alternative with the largest Arg at choice points.
		best := ctx.Cands[0]
		for _, c := range ctx.Cands {
			if c.Arg > best.Arg {
				best = c
			}
		}
		return best, true
	})
	r := engine.Run(func(t *engine.T) {
		seen = t.Choose(5)
	}, ch, cfg())
	if r.Outcome != engine.Terminated {
		t.Fatalf("outcome = %v", r.Outcome)
	}
	if seen != 4 {
		t.Fatalf("Choose returned %d, want 4", seen)
	}
}

func TestChooseArityValidation(t *testing.T) {
	r := engine.Run(func(t *engine.T) {
		t.Choose(0)
	}, engine.FirstChooser{}, cfg())
	if r.Outcome != engine.Violation {
		t.Fatalf("outcome = %v, want violation for Choose(0)", r.Outcome)
	}
}

func TestReplayDeterminism(t *testing.T) {
	prog := func(t *engine.T) {
		m := syncmodel.NewMutex(t, "m")
		c := syncmodel.NewIntVar(t, "c", 0)
		for i := 0; i < 3; i++ {
			t.Go("w", func(t *engine.T) {
				if m.TryLock(t) {
					c.Add(t, 1)
					m.Unlock(t)
				} else {
					t.Yield()
				}
			})
		}
	}
	first := engine.Run(prog, maxTidChooser{}, cfg())
	if first.Outcome != engine.Terminated {
		t.Fatalf("first run: %v", first.Outcome)
	}
	replay := engine.Run(prog, &engine.ReplayChooser{
		Schedule: first.Schedule,
		Strict:   true,
	}, cfg())
	if replay.Outcome != engine.Terminated {
		t.Fatalf("replay run: %v", replay.Outcome)
	}
	if replay.Steps != first.Steps {
		t.Fatalf("replay steps = %d, want %d", replay.Steps, first.Steps)
	}
	if len(replay.Trace) != len(first.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(replay.Trace), len(first.Trace))
	}
	for i := range replay.Trace {
		if replay.Trace[i] != first.Trace[i] {
			t.Fatalf("trace step %d differs: %+v vs %+v", i, replay.Trace[i], first.Trace[i])
		}
	}
}

func TestReplayAbortsWhenScheduleExhausted(t *testing.T) {
	r := engine.Run(fig3, &engine.ReplayChooser{
		Schedule: []engine.Alt{{Tid: 0, Arg: -1}}, // just start main
		Mode:     engine.ReplayThenAbort,
	}, cfg())
	if r.Outcome != engine.Aborted {
		t.Fatalf("outcome = %v, want aborted", r.Outcome)
	}
	if r.Steps != 1 {
		t.Fatalf("steps = %d, want 1", r.Steps)
	}
}

func TestNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		// Mix of outcomes, including aborts with threads mid-flight.
		engine.Run(fig3, &engine.ReplayChooser{
			Schedule: []engine.Alt{{Tid: 0, Arg: -1}, {Tid: 0, Arg: -1}, {Tid: 1, Arg: -1}},
			Mode:     engine.ReplayThenAbort,
		}, cfg())
		engine.Run(fig3, engine.FirstChooser{}, cfg())
	}
	// Allow the runtime a moment to retire exiting goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		runtime.Gosched()
	}
	after := runtime.NumGoroutine()
	if after > before+2 {
		t.Fatalf("goroutines leaked: before %d, after %d", before, after)
	}
}

func TestFingerprintStability(t *testing.T) {
	// The same schedule must produce the same fingerprint sequence.
	collect := func() []engine.Fingerprint {
		var fps []engine.Fingerprint
		mon := fpMonitor{fps: &fps}
		c := cfg()
		c.Monitor = mon
		r := engine.Run(fig3, engine.FirstChooser{}, c)
		if r.Outcome != engine.Terminated {
			t.Fatalf("outcome = %v", r.Outcome)
		}
		return fps
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatalf("fingerprint counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fingerprint %d differs", i)
		}
	}
}

type fpMonitor struct{ fps *[]engine.Fingerprint }

func (m fpMonitor) AfterInit(e *engine.Engine) { *m.fps = append(*m.fps, e.Fingerprint()) }
func (m fpMonitor) AfterStep(e *engine.Engine) { *m.fps = append(*m.fps, e.Fingerprint()) }

func TestRelockFails(t *testing.T) {
	r := engine.Run(func(t *engine.T) {
		m := syncmodel.NewMutex(t, "m")
		m.Lock(t)
		m.Lock(t)
	}, engine.FirstChooser{}, cfg())
	if r.Outcome != engine.Violation {
		t.Fatalf("outcome = %v, want violation", r.Outcome)
	}
}

func TestUnlockByNonOwnerFails(t *testing.T) {
	r := engine.Run(func(t *engine.T) {
		m := syncmodel.NewMutex(t, "m")
		m.Unlock(t)
	}, engine.FirstChooser{}, cfg())
	if r.Outcome != engine.Violation {
		t.Fatalf("outcome = %v, want violation", r.Outcome)
	}
}

func TestLastScheduledAndStepCount(t *testing.T) {
	var steps int64
	mon := engine.FuncChooser(func(ctx *engine.ChooseContext) (engine.Alt, bool) {
		steps = ctx.Engine.StepCount()
		return ctx.Cands[0], true
	})
	r := engine.Run(func(t *engine.T) {
		t.Yield()
		t.Yield()
	}, mon, cfg())
	if r.Outcome != engine.Terminated {
		t.Fatalf("outcome = %v", r.Outcome)
	}
	if steps != r.Steps-1 {
		t.Fatalf("last observed StepCount = %d, result steps = %d", steps, r.Steps)
	}
}

func TestYieldCounting(t *testing.T) {
	r := engine.Run(func(t *engine.T) {
		t.Yield()
		t.Sleep(5)
		t.Yield()
	}, engine.FirstChooser{}, cfg())
	if r.Yields != 3 {
		t.Fatalf("yields = %d, want 3 (Sleep is a yield)", r.Yields)
	}
}

func TestOutcomeStrings(t *testing.T) {
	cases := map[engine.Outcome]string{
		engine.Terminated: "terminated",
		engine.Deadlock:   "deadlock",
		engine.Violation:  "violation",
		engine.Diverged:   "diverged",
		engine.Aborted:    "aborted",
	}
	for o, want := range cases {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), want)
		}
	}
	if engine.Outcome(42).String() == "" {
		t.Error("unknown outcome renders empty")
	}
}

func TestFormatTraceDeadlock(t *testing.T) {
	prog := func(t *engine.T) {
		a := syncmodel.NewMutex(t, "a")
		b := syncmodel.NewMutex(t, "b")
		t.Go("ab", func(t *engine.T) {
			a.Lock(t)
			b.Lock(t)
		})
		t.Go("ba", func(t *engine.T) {
			b.Lock(t)
			a.Lock(t)
		})
	}
	turn := 0
	ch := engine.FuncChooser(func(ctx *engine.ChooseContext) (engine.Alt, bool) {
		want := tidset.Tid(1 + turn%2)
		for _, c := range ctx.Cands {
			if c.Tid == want {
				turn++
				return c, true
			}
		}
		return ctx.Cands[0], true
	})
	r := engine.Run(prog, ch, cfg())
	if r.Outcome != engine.Deadlock {
		t.Fatalf("outcome = %v", r.Outcome)
	}
	out := r.FormatTrace()
	if !strings.Contains(out, "deadlock") || !strings.Contains(out, "blocked") {
		t.Fatalf("FormatTrace missing deadlock info:\n%s", out)
	}
}

func TestFormatTraceScheduleOnly(t *testing.T) {
	r := engine.Run(func(t *engine.T) { t.Yield() }, engine.FirstChooser{}, engine.Config{Fair: true})
	out := r.FormatTrace()
	if !strings.Contains(out, "schedule:") {
		t.Fatalf("FormatTrace without trace should print the schedule:\n%s", out)
	}
}

func TestMultiMonitorFansOut(t *testing.T) {
	var inits, steps [2]int
	mk := func(i int) engine.Monitor {
		return countMonitor{init: &inits[i], step: &steps[i]}
	}
	c := cfg()
	c.Monitor = engine.MultiMonitor{mk(0), mk(1)}
	r := engine.Run(func(t *engine.T) { t.Yield() }, engine.FirstChooser{}, c)
	for i := 0; i < 2; i++ {
		if inits[i] != 1 {
			t.Errorf("monitor %d: inits = %d", i, inits[i])
		}
		if int64(steps[i]) != r.Steps {
			t.Errorf("monitor %d: steps = %d, want %d", i, steps[i], r.Steps)
		}
	}
}

type countMonitor struct{ init, step *int }

func (m countMonitor) AfterInit(*engine.Engine) { *m.init++ }
func (m countMonitor) AfterStep(*engine.Engine) { *m.step++ }

func TestHandleAndNames(t *testing.T) {
	engine.Run(func(t *engine.T) {
		if t.ID() != 0 || t.Name() != "main" {
			t.Failf("main identity wrong: %d %q", t.ID(), t.Name())
		}
		h := t.Go("worker", func(t *engine.T) {
			if t.ID() != 1 || t.Name() != "worker" {
				t.Failf("worker identity wrong: %d %q", t.ID(), t.Name())
			}
		})
		if h.ID() != 1 {
			t.Failf("handle id = %d", h.ID())
		}
		h.Join(t)
	}, engine.FirstChooser{}, cfg())
}

func TestOpInfoString(t *testing.T) {
	cases := []struct {
		info engine.OpInfo
		want string
	}{
		{engine.OpInfo{Kind: "yield", Obj: engine.NoObj}, "yield"},
		{engine.OpInfo{Kind: "sleep", Obj: engine.NoObj, Aux: 5}, "sleep(5)"},
		{engine.OpInfo{Kind: "lock", Obj: 3}, "lock(#3,0)"},
	}
	for _, c := range cases {
		if got := c.info.String(); got != c.want {
			t.Errorf("%+v String = %q, want %q", c.info, got, c.want)
		}
	}
}

func TestViolationInfoString(t *testing.T) {
	v := &engine.ViolationInfo{Tid: 2, Msg: "boom", IsPanic: true}
	if !strings.Contains(v.String(), "panic") || !strings.Contains(v.String(), "boom") {
		t.Fatalf("ViolationInfo.String = %q", v.String())
	}
}

func TestDefaultMaxStepsApplied(t *testing.T) {
	// MaxSteps zero must fall back to the default rather than 0.
	r := engine.Run(func(t *engine.T) {
		t.Yield()
	}, engine.FirstChooser{}, engine.Config{Fair: true})
	if r.Outcome != engine.Terminated {
		t.Fatalf("outcome = %v", r.Outcome)
	}
}

func TestPerThreadStats(t *testing.T) {
	r := engine.Run(func(t *engine.T) {
		h := t.Go("worker", func(t *engine.T) {
			t.Yield()
			t.Yield()
		})
		h.Join(t)
	}, engine.FirstChooser{}, cfg())
	if r.Outcome != engine.Terminated {
		t.Fatalf("outcome = %v", r.Outcome)
	}
	if len(r.PerThread) != 2 {
		t.Fatalf("PerThread = %v", r.PerThread)
	}
	main, worker := r.PerThread[0], r.PerThread[1]
	if main.Name != "main" || worker.Name != "worker" {
		t.Fatalf("names: %v", r.PerThread)
	}
	if worker.Yields != 2 {
		t.Fatalf("worker yields = %d, want 2", worker.Yields)
	}
	if main.Yields != 0 {
		t.Fatalf("main yields = %d, want 0", main.Yields)
	}
	if !main.Exited || !worker.Exited {
		t.Fatal("threads not marked exited")
	}
	var sum int64
	for _, s := range r.PerThread {
		sum += s.Steps
	}
	if sum != r.Steps {
		t.Fatalf("per-thread steps sum %d != total %d", sum, r.Steps)
	}
}

// TestIsPreemptionSemantics pins the §4 preemption-accounting rules:
// continuing the previous thread is never a preemption; switching away
// from an enabled thread is; switches after a voluntary yield or a
// fairness-forced block are free.
func TestIsPreemptionSemantics(t *testing.T) {
	type probe struct {
		step        int
		prev        tidset.Tid
		prevEnabled bool
		prevBlocked bool
		prevYielded bool
		inCands     bool
	}
	var probes []probe
	prog := func(t *engine.T) {
		x := syncmodel.NewIntVar(t, "x", 0)
		wg := syncmodel.NewWaitGroup(t, "wg", 2)
		for i := 0; i < 2; i++ {
			t.Go("w", func(t *engine.T) {
				x.Add(t, 1)
				t.Yield()
				x.Add(t, 1)
				wg.Done(t)
			})
		}
		wg.Wait(t)
	}
	ch := engine.FuncChooser(func(ctx *engine.ChooseContext) (engine.Alt, bool) {
		probes = append(probes, probe{
			step:        ctx.Step,
			prev:        ctx.PrevTid,
			prevEnabled: ctx.PrevEnabled,
			prevBlocked: ctx.PrevFairBlocked,
			prevYielded: ctx.PrevYielded,
			inCands:     ctx.PrevInCands(),
		})
		// Exercise IsPreemption on every candidate.
		for _, c := range ctx.Cands {
			got := ctx.IsPreemption(c)
			want := ctx.PrevTid != tidset.None && c.Tid != ctx.PrevTid &&
				ctx.PrevEnabled && !ctx.PrevFairBlocked && !ctx.PrevYielded
			if got != want {
				t.Errorf("step %d alt %v: IsPreemption = %v, want %v", ctx.Step, c, got, want)
			}
		}
		return ctx.Cands[0], true
	})
	r := engine.Run(prog, ch, cfg())
	if r.Outcome != engine.Terminated {
		t.Fatalf("outcome = %v", r.Outcome)
	}
	if probes[0].prev != tidset.None {
		t.Error("first step has a previous thread")
	}
	sawYieldFree := false
	for _, p := range probes {
		if p.prevYielded {
			sawYieldFree = true
		}
	}
	if !sawYieldFree {
		t.Error("no post-yield step observed")
	}
}

func TestEngineAccessors(t *testing.T) {
	var inspected bool
	ch := engine.FuncChooser(func(ctx *engine.ChooseContext) (engine.Alt, bool) {
		e := ctx.Engine
		if ctx.Step == 3 {
			inspected = true
			if e.NumThreads() < 1 {
				t.Error("NumThreads < 1")
			}
			if got := e.ThreadPC(0); got != 7 {
				t.Errorf("ThreadPC = %d, want 7", got)
			}
			if e.LastScheduled() == tidset.None {
				t.Error("LastScheduled unset after steps")
			}
			if e.LastOpInfo().Kind == "" {
				t.Error("LastOpInfo empty")
			}
			snap := e.SnapshotThread(0)
			if !snap.Live || snap.PC != 7 {
				t.Errorf("SnapshotThread = %+v", snap)
			}
			if engine.HashBytes([]byte("a")) == engine.HashBytes([]byte("b")) {
				t.Error("HashBytes collides trivially")
			}
		}
		return ctx.Cands[0], true
	})
	r := engine.Run(func(t *engine.T) {
		t.Label(7)
		t.Yield()
		t.Yield()
		t.Yield()
	}, ch, cfg())
	if r.Outcome != engine.Terminated || !inspected {
		t.Fatalf("outcome = %v inspected = %v", r.Outcome, inspected)
	}
}

func TestFormatColumns(t *testing.T) {
	r := engine.Run(func(t *engine.T) {
		x := syncmodel.NewIntVar(t, "x", 0)
		h := t.Go("w", func(t *engine.T) { x.Store(t, 1) })
		h.Join(t)
	}, engine.FirstChooser{}, cfg())
	out := r.FormatColumns(0)
	for _, want := range []string{"0:main", "1:w", "store", "spawn"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatColumns missing %q:\n%s", want, out)
		}
	}
	// Every trace row appears.
	if got := strings.Count(out, "\n"); int64(got) < r.Steps {
		t.Fatalf("too few lines: %d for %d steps", got, r.Steps)
	}
	// Without a trace it falls back to FormatTrace.
	r2 := engine.Run(func(t *engine.T) { t.Yield() }, engine.FirstChooser{},
		engine.Config{Fair: true})
	if !strings.Contains(r2.FormatColumns(0), "schedule:") {
		t.Fatal("fallback missing")
	}
}
