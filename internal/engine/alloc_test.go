package engine_test

import (
	"testing"

	"fairmc/internal/engine"
	"fairmc/progs"
)

// The allocation budget is a regression gate, not a target: the seed
// engine spent 122 heap allocations per spinloop execution, and the
// fast-path work (buffer reuse, fair-state reset, engine pooling)
// brought that well under budget. CI fails this test if a change
// creeps back over the seed's number.
const spinloopAllocBudget = 122

func spinloopCfg() engine.Config {
	return engine.Config{Fair: true, RecordTrace: true}
}

func TestSpinLoopAllocBudget(t *testing.T) {
	allocs := testing.AllocsPerRun(100, func() {
		engine.Run(progs.SpinLoop, engine.RunToCompletionChooser{}, spinloopCfg())
	})
	if allocs > spinloopAllocBudget {
		t.Fatalf("spinloop allocates %.0f per execution, budget is %d", allocs, spinloopAllocBudget)
	}
	t.Logf("spinloop: %.0f allocs/exec (budget %d)", allocs, spinloopAllocBudget)
}

func TestSpinLoopAllocBudgetPooled(t *testing.T) {
	var pool engine.Pool
	defer pool.Close()
	pool.Run(progs.SpinLoop, engine.RunToCompletionChooser{}, spinloopCfg())
	allocs := testing.AllocsPerRun(100, func() {
		pool.Run(progs.SpinLoop, engine.RunToCompletionChooser{}, spinloopCfg())
	})
	if allocs > spinloopAllocBudget {
		t.Fatalf("pooled spinloop allocates %.0f per execution, budget is %d", allocs, spinloopAllocBudget)
	}
	t.Logf("pooled spinloop: %.0f allocs/exec (budget %d)", allocs, spinloopAllocBudget)
}
