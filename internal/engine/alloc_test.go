package engine_test

import (
	"testing"

	"fairmc/internal/engine"
	"fairmc/progs"
)

// The allocation budgets are regression gates, not targets: the seed
// engine spent 122 heap allocations per spinloop execution; the
// fast-path work (buffer reuse, fair-state reset, engine pooling)
// brought that to 84/28 (plain/pooled), and reusing the fair
// scheduler's yield-window H buffer took it to 81/24. CI fails these
// tests if a change creeps back over the measured numbers plus a small
// jitter margin.
const (
	spinloopAllocBudget       = 88
	spinloopAllocBudgetPooled = 28
)

func spinloopCfg() engine.Config {
	return engine.Config{Fair: true, RecordTrace: true}
}

func TestSpinLoopAllocBudget(t *testing.T) {
	allocs := testing.AllocsPerRun(100, func() {
		engine.Run(progs.SpinLoop, engine.RunToCompletionChooser{}, spinloopCfg())
	})
	if allocs > spinloopAllocBudget {
		t.Fatalf("spinloop allocates %.0f per execution, budget is %d", allocs, spinloopAllocBudget)
	}
	t.Logf("spinloop: %.0f allocs/exec (budget %d)", allocs, spinloopAllocBudget)
}

func TestSpinLoopAllocBudgetPooled(t *testing.T) {
	var pool engine.Pool
	defer pool.Close()
	pool.Run(progs.SpinLoop, engine.RunToCompletionChooser{}, spinloopCfg())
	allocs := testing.AllocsPerRun(100, func() {
		pool.Run(progs.SpinLoop, engine.RunToCompletionChooser{}, spinloopCfg())
	})
	if allocs > spinloopAllocBudgetPooled {
		t.Fatalf("pooled spinloop allocates %.0f per execution, budget is %d", allocs, spinloopAllocBudgetPooled)
	}
	t.Logf("pooled spinloop: %.0f allocs/exec (budget %d)", allocs, spinloopAllocBudgetPooled)
}
