package engine

import (
	"fairmc/internal/core"
	"fairmc/internal/tidset"
)

// Pool reuses Engine allocations across the thousands of executions a
// search performs. It is a single-slot freelist: a sequential driver
// (a searcher, or one worker goroutine of a parallel driver) runs one
// execution at a time, so one retained engine — with its thread
// records, resume channels, step buffers, and scratch space — captures
// all the reuse there is. A Pool must not be shared between goroutines
// without external synchronization.
type Pool struct {
	free *Engine
}

// Run is engine.Run drawing the Engine from the pool and returning it
// afterwards. Engines that end wedged are discarded: the wedged
// goroutine is leaked and may still touch the engine if it ever wakes.
// The Result owns its Schedule/Trace/Digests slices (unlike a
// single-use engine's Result, which aliases buffers that die with the
// engine), so callers may retain it across executions.
func (p *Pool) Run(body func(*T), chooser Chooser, cfg Config) *Result {
	normalize(&cfg)
	e := p.free
	if e != nil {
		p.free = nil
		e.reset(chooser, cfg)
		if cfg.Metrics != nil {
			cfg.Metrics.EngineReuses.Inc()
		}
	} else {
		e = newEngine(chooser, cfg)
	}
	e.pooled = true
	r := e.run(body)
	if e.wedge == nil {
		p.free = e
	} else {
		// Discarded engine: retire its idle workers so only the stuck
		// goroutine itself is leaked.
		e.releaseWorkers()
	}
	return r
}

// Close retires the pooled engine's idle worker goroutines. Callers
// that created a Pool should Close it when their search finishes; a
// dropped pool without Close leaks one parked goroutine per reused
// thread record until process exit.
func (p *Pool) Close() {
	if e := p.free; e != nil {
		p.free = nil
		e.releaseWorkers()
	}
}

// reset returns a finished engine to its pre-run state, keeping every
// allocation that can be kept. It must only run after run() returned:
// by then abort has unwound every goroutine (wedged engines never get
// here), every resume token and ready event has been consumed, and no
// other goroutine can touch the engine.
func (e *Engine) reset(chooser Chooser, cfg Config) {
	if e.wedge != nil {
		panic("engine: resetting a wedged engine")
	}
	e.cfg = cfg
	e.chooser = chooser
	e.fast = !cfg.NoFastPath
	if cfg.Fair {
		if e.fair != nil {
			e.fair.Reset(cfg.FairK)
		} else {
			e.fair = core.NewFair(0, cfg.FairK)
		}
	} else {
		e.fair = nil
	}
	// Recycle thread records (with their resume channels) through the
	// freelist newThread pops from.
	e.thFree = append(e.thFree, e.threads...)
	for i := range e.threads {
		e.threads[i] = nil
	}
	e.threads = e.threads[:0]
	for i := range e.objects {
		e.objects[i] = nil
	}
	e.objects = e.objects[:0]
	e.objMeta = e.objMeta[:0]
	e.aborting.Store(false)
	e.violation = nil
	e.deadlineHit = false
	e.stepCount = 0
	e.yieldCnt = 0
	e.schedule = e.schedule[:0]
	e.trace = e.trace[:0]
	e.digests = e.digests[:0]
	e.choiceCnt = 0
	e.candCnt = 0
	e.fairBlockedCnt = 0
	e.wm = WMCounters{}
	e.prevTid = tidset.None
	e.prevYielded = false
	e.lastInfo = OpInfo{}
	e.esReady = false
	e.schedGate.Store(0)
	e.progress.Store(0)
	e.pendTh = nil
	e.pendAlt = Alt{}
	e.pendYield = false
	e.pendDig = StepDigest{}
	e.stashOut = 0
	e.inlineCnt = 0
	e.handoffs = 0
}
