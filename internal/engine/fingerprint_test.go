package engine_test

import (
	"hash/fnv"
	"testing"

	"fairmc/internal/engine"
)

// referenceHash is the original two-pass implementation of HashBytes:
// Hi hashes buf with hash/fnv, Lo hashes a 4-byte domain separator
// followed by buf. The production single-pass version must agree
// byte-for-byte so fingerprints recorded before the optimization stay
// comparable.
func referenceHash(buf []byte) engine.Fingerprint {
	h1 := fnv.New64a()
	h1.Write(buf)
	h2 := fnv.New64a()
	h2.Write([]byte{0x9e, 0x37, 0x79, 0xb9})
	h2.Write(buf)
	return engine.Fingerprint{Hi: h1.Sum64(), Lo: h2.Sum64()}
}

func TestHashBytesMatchesReference(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0},
		{0xff},
		[]byte("fair stateless model checking"),
		make([]byte, 1024),
	}
	// A deterministic pseudo-random buffer to cover all byte values.
	long := make([]byte, 4096)
	x := uint32(0x2545f491)
	for i := range long {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		long[i] = byte(x)
	}
	cases = append(cases, long)

	for i, buf := range cases {
		got := engine.HashBytes(buf)
		want := referenceHash(buf)
		if got != want {
			t.Errorf("case %d: HashBytes = %+v, reference = %+v", i, got, want)
		}
	}
}
