package engine_test

import (
	"testing"
	"time"

	"fairmc/internal/engine"
	"fairmc/internal/syncmodel"
)

// TestWatchdogWedgedThread: a model thread that blocks on a raw Go
// channel — outside the conc API — can never reach its next scheduling
// point. The watchdog must end the execution with outcome Wedged and
// identify the offending thread, instead of hanging the engine forever.
func TestWatchdogWedgedThread(t *testing.T) {
	block := make(chan struct{}) // never closed: the thread wedges for good
	c := cfg()
	c.Watchdog = 50 * time.Millisecond
	done := make(chan *engine.Result, 1)
	go func() {
		done <- engine.Run(func(t *engine.T) {
			v := syncmodel.NewIntVar(t, "v", 0)
			t.Go("stuck", func(t *engine.T) {
				v.Store(t, 1)
				<-block // uncontrolled blocking: the engine cannot see or unwind this
			})
			v.Store(t, 2)
		}, engine.FirstChooser{}, c)
	}()
	var r *engine.Result
	select {
	case r = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("engine hung despite watchdog")
	}
	if r.Outcome != engine.Wedged {
		t.Fatalf("outcome = %v, want wedged\n%s", r.Outcome, r.FormatTrace())
	}
	if r.Wedge == nil {
		t.Fatal("Wedged result without WedgeInfo")
	}
	if r.Wedge.Name != "stuck" {
		t.Fatalf("wedged thread = %d (%s), want the stuck thread", r.Wedge.Tid, r.Wedge.Name)
	}
	if r.Wedge.String() == "" || r.Wedge.LastOp.Kind == "" {
		t.Fatalf("WedgeInfo missing diagnostics: %+v", r.Wedge)
	}
	// The granted-but-never-completed step is not part of the schedule:
	// replaying it must reproduce the wedge-free prefix.
	if int64(len(r.Schedule)) != r.Steps {
		t.Fatalf("schedule has %d entries for %d steps", len(r.Schedule), r.Steps)
	}
}

// TestWatchdogWakingThreadSelfDestructs: a thread that merely outsleeps
// the watchdog wakes up after the engine has given up on it. At its
// next scheduling point it must observe the abort flag and unwind
// itself without corrupting engine state or panicking the process.
func TestWatchdogWakingThreadSelfDestructs(t *testing.T) {
	c := cfg()
	c.Watchdog = 20 * time.Millisecond
	r := engine.Run(func(t *engine.T) {
		v := syncmodel.NewIntVar(t, "v", 0)
		t.Go("sleeper", func(t *engine.T) {
			time.Sleep(200 * time.Millisecond) // uncontrolled wait, > watchdog
			v.Store(t, 1)                      // scheduling point after waking
		})
		v.Store(t, 2)
	}, engine.FirstChooser{}, c)
	if r.Outcome != engine.Wedged {
		t.Fatalf("outcome = %v, want wedged", r.Outcome)
	}
	if r.Wedge == nil || r.Wedge.Name != "sleeper" {
		t.Fatalf("wedge = %+v, want the sleeper thread", r.Wedge)
	}
	// Give the sleeper time to wake and self-destruct so the leak
	// detector in TestNoGoroutineLeaks isn't confused by this test.
	time.Sleep(300 * time.Millisecond)
}

// TestWatchdogCooperativeProgramUnaffected: a program where every
// thread parks promptly must be untouched by an armed watchdog.
func TestWatchdogCooperativeProgramUnaffected(t *testing.T) {
	c := cfg()
	c.Watchdog = time.Second
	r := engine.Run(func(t *engine.T) {
		v := syncmodel.NewIntVar(t, "v", 0)
		h := t.Go("child", func(t *engine.T) { v.Store(t, 1) })
		h.Join(t)
		t.Assert(v.Load(t) == 1, "child ran")
	}, engine.FirstChooser{}, c)
	if r.Outcome != engine.Terminated {
		t.Fatalf("outcome = %v, want terminated\n%s", r.Outcome, r.FormatTrace())
	}
	if r.Wedge != nil || r.DeadlineExceeded {
		t.Fatalf("spurious wedge/deadline: %+v", r)
	}
}

// TestDeadlineAborts: an already-expired Config.Deadline must cut the
// execution immediately with outcome Aborted and DeadlineExceeded set.
func TestDeadlineAborts(t *testing.T) {
	c := cfg()
	c.Deadline = time.Now().Add(-time.Second)
	r := engine.Run(func(t *engine.T) {
		v := syncmodel.NewIntVar(t, "v", 0)
		for i := 0; i < 100; i++ {
			v.Store(t, int64(i))
		}
	}, engine.FirstChooser{}, c)
	if r.Outcome != engine.Aborted {
		t.Fatalf("outcome = %v, want aborted", r.Outcome)
	}
	if !r.DeadlineExceeded {
		t.Fatal("DeadlineExceeded not set")
	}
}

// TestReplayDivergenceReturnsError: a strict replay of a schedule that
// names an unschedulable alternative must end with outcome Aborted and
// a structured ReplayError — not a panic mid-engine.
func TestReplayDivergenceReturnsError(t *testing.T) {
	prog := func(t *engine.T) {
		v := syncmodel.NewIntVar(t, "v", 0)
		h := t.Go("child", func(t *engine.T) { v.Store(t, 1) })
		h.Join(t)
	}
	// Thread 7 never exists: the schedule cannot apply at step 0.
	ch := &engine.ReplayChooser{
		Schedule: []engine.Alt{{Tid: 7}},
		Strict:   true,
	}
	r := engine.Run(prog, ch, cfg())
	if r.Outcome != engine.Aborted {
		t.Fatalf("outcome = %v, want aborted", r.Outcome)
	}
	if ch.Err == nil {
		t.Fatal("strict divergence did not populate ReplayChooser.Err")
	}
	if ch.Err.Step != 0 {
		t.Fatalf("Err.Step = %d, want 0", ch.Err.Step)
	}
	if ch.Err.Error() == "" {
		t.Fatal("empty error message")
	}
}
