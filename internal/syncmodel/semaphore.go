package syncmodel

import "fairmc/internal/engine"

// Semaphore is a counting semaphore with an optional maximum count.
type Semaphore struct {
	base
	count int64
	max   int64 // 0 = unbounded
}

// NewSemaphore creates a semaphore with the given initial count.
// max = 0 means unbounded.
func NewSemaphore(t *engine.T, name string, initial, max int64) *Semaphore {
	if initial < 0 || (max > 0 && initial > max) {
		t.Failf("semaphore %q: bad initial count %d (max %d)", name, initial, max)
	}
	s := &Semaphore{base: base{kind: "sem", name: name}, count: initial, max: max}
	s.id = t.Engine().RegisterObjectBy(t, s)
	return s
}

// Count returns the current count.
func (s *Semaphore) Count() int64 { return s.count }

// Acquire decrements the count, blocking (disabled) while it is zero.
func (s *Semaphore) Acquire(t *engine.T) {
	t.Do(&semAcquireOp{s: s})
}

// TryAcquire attempts a non-blocking decrement and reports success.
func (s *Semaphore) TryAcquire(t *engine.T) bool {
	op := &semTryOp{s: s}
	t.Do(op)
	return op.ok
}

// AcquireTimeout attempts a decrement with a finite timeout; it is a
// yielding transition per the paper's yield inference rule.
func (s *Semaphore) AcquireTimeout(t *engine.T) bool {
	op := &semTryOp{s: s, timeout: true}
	t.Do(op)
	return op.ok
}

// Release increments the count by n, failing if the maximum would be
// exceeded.
func (s *Semaphore) Release(t *engine.T, n int64) {
	if n <= 0 {
		t.Failf("semaphore %q: Release(%d)", s.name, n)
	}
	if s.max > 0 && s.count+n > s.max {
		t.Failf("semaphore %q: release overflows max %d", s.name, s.max)
	}
	t.Do(&semReleaseOp{s: s, n: n})
}

// AppendState implements engine.Object.
func (s *Semaphore) AppendState(buf []byte) []byte {
	return appendVarint(buf, s.count)
}

type semAcquireOp struct{ s *Semaphore }

func (o *semAcquireOp) Enabled() bool { return o.s.count > 0 }
func (o *semAcquireOp) Execute() engine.Op {
	o.s.count--
	return nil
}
func (o *semAcquireOp) Yielding() bool { return false }
func (o *semAcquireOp) Info() engine.OpInfo {
	return engine.OpInfo{Kind: "sem.acquire", Obj: o.s.id}
}

type semTryOp struct {
	s       *Semaphore
	timeout bool
	ok      bool
}

func (o *semTryOp) Enabled() bool { return true }
func (o *semTryOp) Execute() engine.Op {
	if o.s.count > 0 {
		o.s.count--
		o.ok = true
	} else {
		o.ok = false
	}
	return nil
}
func (o *semTryOp) Yielding() bool { return o.timeout }
func (o *semTryOp) Info() engine.OpInfo {
	kind := "sem.try"
	if o.timeout {
		kind = "sem.timeout"
	}
	return engine.OpInfo{Kind: kind, Obj: o.s.id}
}

type semReleaseOp struct {
	s *Semaphore
	n int64
}

func (o *semReleaseOp) Enabled() bool { return true }
func (o *semReleaseOp) Execute() engine.Op {
	o.s.count += o.n
	return nil
}
func (o *semReleaseOp) Yielding() bool { return false }
func (o *semReleaseOp) Info() engine.OpInfo {
	return engine.OpInfo{Kind: "sem.release", Obj: o.s.id, Aux: o.n}
}
