package syncmodel

import (
	"fairmc/internal/engine"
	"fairmc/internal/tidset"
)

// Once is a one-time initialization gate, like sync.Once: the first
// thread to arrive wins the right to initialize and everyone else
// blocks until it reports completion. Unlike a bare flag, Once
// captures the *blocking* semantics real implementations have — a
// loser is disabled until the winner finishes, making the classic
// "check the flag without waiting" bug expressible as its absence.
type Once struct {
	base
	state  int64 // 0 idle, 1 running, 2 done
	winner tidset.Tid
}

// NewOnce creates an idle Once.
func NewOnce(t *engine.T, name string) *Once {
	o := &Once{base: base{kind: "once", name: name}, winner: tidset.None}
	o.id = t.Engine().RegisterObjectBy(t, o)
	return o
}

// Done reports whether initialization completed.
func (o *Once) Done() bool { return o.state == 2 }

// Begin arbitrates: it returns true to exactly one caller — the
// winner, who must call Complete after initializing — and blocks
// every other caller until Complete, then returns false.
func (o *Once) Begin(t *engine.T) bool {
	op := &onceBeginOp{o: o, t: t}
	t.Do(op)
	return op.won
}

// Complete marks initialization done; only the winner may call it.
func (o *Once) Complete(t *engine.T) {
	if o.state != 1 || o.winner != t.ID() {
		t.Failf("once %q: Complete by thread %d (state %d, winner %d)",
			o.name, t.ID(), o.state, o.winner)
	}
	t.Do(&onceCompleteOp{o: o})
}

// Do runs f exactly once across all callers; losers block until the
// winner's f returns.
func (o *Once) Do(t *engine.T, f func(*engine.T)) {
	if o.Begin(t) {
		f(t)
		o.Complete(t)
	}
}

// AppendState implements engine.Object.
func (o *Once) AppendState(buf []byte) []byte {
	buf = appendVarint(buf, o.state)
	return appendTid(buf, o.winner)
}

// AppendStateMapped implements engine.CanonicalObject.
func (o *Once) AppendStateMapped(buf []byte, mapTid func(tidset.Tid) tidset.Tid) []byte {
	buf = appendVarint(buf, o.state)
	return appendTid(buf, mapTid(o.winner))
}

type onceBeginOp struct {
	o   *Once
	t   *engine.T
	won bool
}

// Enabled: the arbitration itself is always enabled when idle or done;
// a loser arriving while the winner runs is disabled until Complete.
func (op *onceBeginOp) Enabled() bool { return op.o.state != 1 }
func (op *onceBeginOp) Execute() engine.Op {
	if op.o.state == 0 {
		op.o.state = 1
		op.o.winner = op.t.ID()
		op.won = true
	}
	return nil
}
func (op *onceBeginOp) Yielding() bool { return false }
func (op *onceBeginOp) Info() engine.OpInfo {
	return engine.OpInfo{Kind: "once.begin", Obj: op.o.id}
}

type onceCompleteOp struct{ o *Once }

func (op *onceCompleteOp) Enabled() bool { return true }
func (op *onceCompleteOp) Execute() engine.Op {
	op.o.state = 2
	op.o.winner = tidset.None
	return nil
}
func (op *onceCompleteOp) Yielding() bool { return false }
func (op *onceCompleteOp) Info() engine.OpInfo {
	return engine.OpInfo{Kind: "once.complete", Obj: op.o.id}
}

// Barrier is a reusable rendezvous for a fixed party count, like a
// sense-reversing barrier (progs/classic.go builds one by hand; this
// is the primitive version with blocking semantics: waiters are
// disabled, not spinning).
type Barrier struct {
	base
	parties int64
	arrived int64
	phase   int64
}

// NewBarrier creates a barrier for parties threads.
func NewBarrier(t *engine.T, name string, parties int64) *Barrier {
	if parties < 1 {
		t.Failf("barrier %q: parties = %d", name, parties)
	}
	b := &Barrier{base: base{kind: "barrier", name: name}, parties: parties}
	b.id = t.Engine().RegisterObjectBy(t, b)
	return b
}

// Phase returns the current phase number (completed rendezvous).
func (b *Barrier) Phase() int64 { return b.phase }

// Await arrives at the barrier and blocks until all parties have
// arrived in this phase.
func (b *Barrier) Await(t *engine.T) {
	t.Do(&barrierArriveOp{b: b})
}

// AppendState implements engine.Object.
func (b *Barrier) AppendState(buf []byte) []byte {
	buf = appendVarint(buf, b.arrived)
	return appendVarint(buf, b.phase)
}

// barrierArriveOp is a two-phase transition: arrive, then (if not the
// last) wait for the phase to advance.
type barrierArriveOp struct{ b *Barrier }

func (op *barrierArriveOp) Enabled() bool { return true }
func (op *barrierArriveOp) Execute() engine.Op {
	op.b.arrived++
	if op.b.arrived == op.b.parties {
		op.b.arrived = 0
		op.b.phase++
		return nil
	}
	return &barrierWaitOp{b: op.b, phase: op.b.phase}
}
func (op *barrierArriveOp) Yielding() bool { return false }
func (op *barrierArriveOp) Info() engine.OpInfo {
	return engine.OpInfo{Kind: "barrier.arrive", Obj: op.b.id}
}

type barrierWaitOp struct {
	b     *Barrier
	phase int64
}

func (op *barrierWaitOp) Enabled() bool { return op.b.phase != op.phase }
func (op *barrierWaitOp) Execute() engine.Op {
	return nil
}
func (op *barrierWaitOp) Yielding() bool { return false }
func (op *barrierWaitOp) Info() engine.OpInfo {
	return engine.OpInfo{Kind: "barrier.wait", Obj: op.b.id}
}
