package syncmodel

import (
	"fairmc/internal/engine"
	"fairmc/internal/tidset"
)

// Channel is a FIFO channel of int64 values with a fixed capacity.
// Capacity zero gives rendezvous semantics: a send is enabled only
// when a receiver is parked on the channel and delivers directly to
// it. Send on a closed channel is a detected error; receive on a
// closed empty channel returns (0, false).
//
// Values are int64 so channel contents fingerprint canonically;
// programs pass richer payloads as indices into their own tracked
// arrays, as the progs package does.
type Channel struct {
	base
	capacity int
	buf      []int64
	closed   bool
	recvQ    []*recvWaiter // parked receivers, FIFO
}

type recvWaiter struct {
	tid       tidset.Tid
	delivered bool
	val       int64
}

// NewChannel creates a channel with the given capacity (>= 0).
func NewChannel(t *engine.T, name string, capacity int) *Channel {
	if capacity < 0 {
		t.Failf("channel %q: negative capacity %d", name, capacity)
	}
	c := &Channel{base: base{kind: "chan", name: name}, capacity: capacity}
	c.id = t.Engine().RegisterObjectBy(t, c)
	return c
}

// Len returns the number of buffered values.
func (c *Channel) Len() int { return len(c.buf) }

// Cap returns the channel capacity.
func (c *Channel) Cap() int { return c.capacity }

// Closed reports whether the channel has been closed.
func (c *Channel) Closed() bool { return c.closed }

// Send enqueues v, blocking (disabled) while the channel is full (or,
// for capacity zero, until a receiver is waiting). Sending on a closed
// channel is a detected error.
func (c *Channel) Send(t *engine.T, v int64) {
	t.Do(&sendOp{c: c, t: t, v: v})
}

// TrySend attempts a non-blocking send and reports success.
func (c *Channel) TrySend(t *engine.T, v int64) bool {
	op := &sendOp{c: c, t: t, v: v, try: true}
	t.Do(op)
	return op.ok
}

// Recv dequeues a value, blocking (disabled) while the channel is
// empty and open. On a closed empty channel it returns (0, false).
func (c *Channel) Recv(t *engine.T) (int64, bool) {
	op := &recvOp{c: c, w: &recvWaiter{tid: t.ID()}}
	c.recvQ = append(c.recvQ, op.w)
	t.Do(op)
	return op.val, op.ok
}

// TryRecv attempts a non-blocking receive. It returns (v, true, true)
// on success, (0, false, true) if the channel is closed and drained,
// and (0, _, false) if no value was available.
func (c *Channel) TryRecv(t *engine.T) (v int64, open bool, got bool) {
	op := &tryRecvOp{c: c}
	t.Do(op)
	return op.val, op.open, op.got
}

// Close closes the channel. Closing twice is a detected error.
func (c *Channel) Close(t *engine.T) {
	t.Do(&closeOp{c: c, t: t})
}

// AppendState implements engine.Object.
func (c *Channel) AppendState(buf []byte) []byte {
	buf = appendBool(buf, c.closed)
	buf = appendVarint(buf, int64(len(c.buf)))
	for _, v := range c.buf {
		buf = appendVarint(buf, v)
	}
	buf = appendVarint(buf, int64(len(c.recvQ)))
	for _, w := range c.recvQ {
		buf = appendTid(buf, w.tid)
		buf = appendBool(buf, w.delivered)
		buf = appendVarint(buf, w.val)
	}
	return buf
}

// undeliveredReceiver returns the first parked receiver that has not
// been handed a value yet, or nil.
func (c *Channel) undeliveredReceiver() *recvWaiter {
	for _, w := range c.recvQ {
		if !w.delivered {
			return w
		}
	}
	return nil
}

type sendOp struct {
	c   *Channel
	t   *engine.T
	v   int64
	try bool
	ok  bool
}

func (o *sendOp) canDeliver() bool {
	if o.c.capacity == 0 {
		return o.c.undeliveredReceiver() != nil
	}
	return len(o.c.buf) < o.c.capacity
}

func (o *sendOp) Enabled() bool {
	// Enabled on a closed channel so the misuse fires as a violation
	// rather than a spurious deadlock.
	return o.try || o.c.closed || o.canDeliver()
}

func (o *sendOp) Execute() engine.Op {
	if o.c.closed {
		o.t.Failf("channel %q: send on closed channel", o.c.name)
	}
	if !o.canDeliver() {
		o.ok = false // try-send failure
		return nil
	}
	if o.c.capacity == 0 {
		w := o.c.undeliveredReceiver()
		w.delivered = true
		w.val = o.v
	} else {
		o.c.buf = append(o.c.buf, o.v)
	}
	o.ok = true
	return nil
}
func (o *sendOp) Yielding() bool { return false }
func (o *sendOp) Info() engine.OpInfo {
	kind := "chan.send"
	if o.try {
		kind = "chan.trysend"
	}
	return engine.OpInfo{Kind: kind, Obj: o.c.id, Aux: o.v}
}

type recvOp struct {
	c   *Channel
	w   *recvWaiter
	val int64
	ok  bool
}

func (o *recvOp) Enabled() bool {
	return o.w.delivered || len(o.c.buf) > 0 || o.c.closed
}

func (o *recvOp) Execute() engine.Op {
	switch {
	case o.w.delivered:
		o.val, o.ok = o.w.val, true
	case len(o.c.buf) > 0:
		o.val, o.ok = o.c.buf[0], true
		o.c.buf = o.c.buf[1:]
	default: // closed and empty
		o.val, o.ok = 0, false
	}
	o.c.removeWaiter(o.w)
	return nil
}
func (o *recvOp) Yielding() bool { return false }
func (o *recvOp) Info() engine.OpInfo {
	return engine.OpInfo{Kind: "chan.recv", Obj: o.c.id}
}

func (c *Channel) removeWaiter(w *recvWaiter) {
	for i, x := range c.recvQ {
		if x == w {
			c.recvQ = append(c.recvQ[:i], c.recvQ[i+1:]...)
			return
		}
	}
}

type tryRecvOp struct {
	c    *Channel
	val  int64
	open bool
	got  bool
}

func (o *tryRecvOp) Enabled() bool { return true }
func (o *tryRecvOp) Execute() engine.Op {
	o.open = !o.c.closed
	if len(o.c.buf) > 0 {
		o.val, o.got = o.c.buf[0], true
		o.c.buf = o.c.buf[1:]
	}
	return nil
}
func (o *tryRecvOp) Yielding() bool { return false }
func (o *tryRecvOp) Info() engine.OpInfo {
	return engine.OpInfo{Kind: "chan.tryrecv", Obj: o.c.id}
}

type closeOp struct {
	c *Channel
	t *engine.T
}

func (o *closeOp) Enabled() bool { return true }
func (o *closeOp) Execute() engine.Op {
	if o.c.closed {
		o.t.Failf("channel %q: close of closed channel", o.c.name)
	}
	o.c.closed = true
	return nil
}
func (o *closeOp) Yielding() bool { return false }
func (o *closeOp) Info() engine.OpInfo {
	return engine.OpInfo{Kind: "chan.close", Obj: o.c.id}
}

// AppendStateMapped implements engine.CanonicalObject.
func (c *Channel) AppendStateMapped(buf []byte, mapTid func(tidset.Tid) tidset.Tid) []byte {
	buf = appendBool(buf, c.closed)
	buf = appendVarint(buf, int64(len(c.buf)))
	for _, v := range c.buf {
		buf = appendVarint(buf, v)
	}
	buf = appendVarint(buf, int64(len(c.recvQ)))
	for _, w := range c.recvQ {
		buf = appendTid(buf, mapTid(w.tid))
		buf = appendBool(buf, w.delivered)
		buf = appendVarint(buf, w.val)
	}
	return buf
}
