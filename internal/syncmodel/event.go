package syncmodel

import "fairmc/internal/engine"

// Event is a Win32-style event object. A manual-reset event stays
// signaled until Reset; an auto-reset event releases exactly one
// waiter per Set. The Dryad- and APE-style programs in progs use
// events heavily, as the originals did.
type Event struct {
	base
	manual   bool
	signaled bool
}

// NewEvent creates an event. manual selects manual-reset semantics.
func NewEvent(t *engine.T, name string, manual, signaled bool) *Event {
	e := &Event{base: base{kind: "event", name: name}, manual: manual, signaled: signaled}
	e.id = t.Engine().RegisterObjectBy(t, e)
	return e
}

// Signaled reports the current state.
func (e *Event) Signaled() bool { return e.signaled }

// Wait blocks (disabled) until the event is signaled; an auto-reset
// event is consumed.
func (e *Event) Wait(t *engine.T) {
	t.Do(&eventWaitOp{e: e})
}

// WaitTimeout waits with a finite timeout: always enabled, yielding,
// reports whether the event was signaled.
func (e *Event) WaitTimeout(t *engine.T) bool {
	op := &eventTimeoutOp{e: e}
	t.Do(op)
	return op.ok
}

// Set signals the event.
func (e *Event) Set(t *engine.T) {
	t.Do(&eventSetOp{e: e, to: true})
}

// Reset unsignals the event.
func (e *Event) Reset(t *engine.T) {
	t.Do(&eventSetOp{e: e, to: false})
}

// AppendState implements engine.Object.
func (e *Event) AppendState(buf []byte) []byte {
	return appendBool(buf, e.signaled)
}

type eventWaitOp struct{ e *Event }

func (o *eventWaitOp) Enabled() bool { return o.e.signaled }
func (o *eventWaitOp) Execute() engine.Op {
	if !o.e.manual {
		o.e.signaled = false
	}
	return nil
}
func (o *eventWaitOp) Yielding() bool { return false }
func (o *eventWaitOp) Info() engine.OpInfo {
	return engine.OpInfo{Kind: "event.wait", Obj: o.e.id}
}

type eventTimeoutOp struct {
	e  *Event
	ok bool
}

func (o *eventTimeoutOp) Enabled() bool { return true }
func (o *eventTimeoutOp) Execute() engine.Op {
	o.ok = o.e.signaled
	if o.ok && !o.e.manual {
		o.e.signaled = false
	}
	return nil
}
func (o *eventTimeoutOp) Yielding() bool { return true }
func (o *eventTimeoutOp) Info() engine.OpInfo {
	return engine.OpInfo{Kind: "event.timeout", Obj: o.e.id}
}

type eventSetOp struct {
	e  *Event
	to bool
}

func (o *eventSetOp) Enabled() bool { return true }
func (o *eventSetOp) Execute() engine.Op {
	o.e.signaled = o.to
	return nil
}
func (o *eventSetOp) Yielding() bool { return false }
func (o *eventSetOp) Info() engine.OpInfo {
	kind := "event.set"
	if !o.to {
		kind = "event.reset"
	}
	return engine.OpInfo{Kind: kind, Obj: o.e.id}
}
