package syncmodel

import (
	"fairmc/internal/engine"
	"fairmc/internal/tidset"
)

// Mutex is a non-reentrant mutual-exclusion lock. A thread blocked in
// Lock is *disabled* until the lock is released (it does not spin), so
// lock waits never trip the fair scheduler: only explicit yields and
// finite timeouts do.
type Mutex struct {
	base
	owner tidset.Tid
}

// NewMutex creates and registers a mutex. Like all model objects it
// belongs to the current execution only.
func NewMutex(t *engine.T, name string) *Mutex {
	m := &Mutex{base: base{kind: "mutex", name: name}, owner: tidset.None}
	m.id = t.Engine().RegisterObjectBy(t, m)
	return m
}

// Locked reports whether the mutex is currently held. Test-harness
// assertions may read this between scheduling points of the owning
// thread.
func (m *Mutex) Locked() bool { return m.owner != tidset.None }

// Owner returns the holder, or tidset.None.
func (m *Mutex) Owner() tidset.Tid { return m.owner }

// Lock acquires the mutex, blocking (disabled) while it is held.
// Relocking by the owner is a detected error.
func (m *Mutex) Lock(t *engine.T) {
	if m.owner == t.ID() {
		t.Failf("mutex %q: relock by owner thread %d", m.name, t.ID())
	}
	t.Do(&lockOp{m: m, t: t})
}

// TryLock attempts to acquire the mutex without blocking and reports
// success. It is always enabled (it is the TryAcquire of the paper's
// Figure 1 dining-philosophers program).
func (m *Mutex) TryLock(t *engine.T) bool {
	op := &tryLockOp{m: m, t: t}
	t.Do(op)
	return op.ok
}

// LockTimeout attempts to acquire the mutex, giving up if it is held.
// Per the paper it models an acquire with a finite timeout and is
// therefore a *yielding* transition.
func (m *Mutex) LockTimeout(t *engine.T) bool {
	op := &tryLockOp{m: m, t: t, timeout: true}
	t.Do(op)
	return op.ok
}

// Unlock releases the mutex. Unlocking a mutex the caller does not
// hold is a detected error.
func (m *Mutex) Unlock(t *engine.T) {
	if m.owner != t.ID() {
		t.Failf("mutex %q: unlock by non-owner thread %d (owner %d)", m.name, t.ID(), m.owner)
	}
	t.Do(&unlockOp{m: m})
}

// AppendState implements engine.Object.
func (m *Mutex) AppendState(buf []byte) []byte {
	return appendTid(buf, m.owner)
}

type lockOp struct {
	m *Mutex
	t *engine.T
}

func (o *lockOp) Enabled() bool { return o.m.owner == tidset.None }
func (o *lockOp) Execute() engine.Op {
	o.m.owner = o.t.ID()
	return nil
}
func (o *lockOp) Yielding() bool { return false }
func (o *lockOp) Info() engine.OpInfo {
	return engine.OpInfo{Kind: "lock", Obj: o.m.id}
}

type tryLockOp struct {
	m       *Mutex
	t       *engine.T
	timeout bool
	ok      bool
}

func (o *tryLockOp) Enabled() bool { return true }
func (o *tryLockOp) Execute() engine.Op {
	if o.m.owner == tidset.None {
		o.m.owner = o.t.ID()
		o.ok = true
	} else {
		o.ok = false
	}
	return nil
}
func (o *tryLockOp) Yielding() bool { return o.timeout }
func (o *tryLockOp) Info() engine.OpInfo {
	kind := "trylock"
	if o.timeout {
		kind = "locktimeout"
	}
	return engine.OpInfo{Kind: kind, Obj: o.m.id}
}

type unlockOp struct {
	m *Mutex
}

func (o *unlockOp) Enabled() bool { return true }
func (o *unlockOp) Execute() engine.Op {
	o.m.owner = tidset.None
	return nil
}
func (o *unlockOp) Yielding() bool { return false }
func (o *unlockOp) Info() engine.OpInfo {
	return engine.OpInfo{Kind: "unlock", Obj: o.m.id}
}

// RWMutex is a reader/writer lock without writer preference: readers
// may enter whenever no writer holds the lock.
type RWMutex struct {
	base
	writer  tidset.Tid
	readers []tidset.Tid // in acquisition order
}

// NewRWMutex creates and registers a reader/writer lock.
func NewRWMutex(t *engine.T, name string) *RWMutex {
	m := &RWMutex{base: base{kind: "rwmutex", name: name}, writer: tidset.None}
	m.id = t.Engine().RegisterObjectBy(t, m)
	return m
}

func (m *RWMutex) hasReader(t tidset.Tid) bool {
	for _, r := range m.readers {
		if r == t {
			return true
		}
	}
	return false
}

// Lock acquires the lock exclusively, blocking while any reader or
// writer holds it.
func (m *RWMutex) Lock(t *engine.T) {
	if m.writer == t.ID() {
		t.Failf("rwmutex %q: write relock by thread %d", m.name, t.ID())
	}
	if m.hasReader(t.ID()) {
		t.Failf("rwmutex %q: write lock while holding read lock, thread %d", m.name, t.ID())
	}
	t.Do(&wLockOp{m: m, t: t})
}

// Unlock releases the exclusive lock.
func (m *RWMutex) Unlock(t *engine.T) {
	if m.writer != t.ID() {
		t.Failf("rwmutex %q: unlock by non-writer thread %d", m.name, t.ID())
	}
	t.Do(&wUnlockOp{m: m})
}

// RLock acquires the lock shared, blocking while a writer holds it.
func (m *RWMutex) RLock(t *engine.T) {
	if m.hasReader(t.ID()) {
		t.Failf("rwmutex %q: read relock by thread %d", m.name, t.ID())
	}
	if m.writer == t.ID() {
		t.Failf("rwmutex %q: read lock while holding write lock, thread %d", m.name, t.ID())
	}
	t.Do(&rLockOp{m: m, t: t})
}

// RUnlock releases a shared hold.
func (m *RWMutex) RUnlock(t *engine.T) {
	if !m.hasReader(t.ID()) {
		t.Failf("rwmutex %q: read unlock without read lock, thread %d", m.name, t.ID())
	}
	t.Do(&rUnlockOp{m: m, t: t})
}

// AppendState implements engine.Object.
func (m *RWMutex) AppendState(buf []byte) []byte {
	buf = appendTid(buf, m.writer)
	return appendTidSlice(buf, m.readers)
}

type wLockOp struct {
	m *RWMutex
	t *engine.T
}

func (o *wLockOp) Enabled() bool {
	return o.m.writer == tidset.None && len(o.m.readers) == 0
}
func (o *wLockOp) Execute() engine.Op {
	o.m.writer = o.t.ID()
	return nil
}
func (o *wLockOp) Yielding() bool { return false }
func (o *wLockOp) Info() engine.OpInfo {
	return engine.OpInfo{Kind: "wlock", Obj: o.m.id}
}

type wUnlockOp struct{ m *RWMutex }

func (o *wUnlockOp) Enabled() bool { return true }
func (o *wUnlockOp) Execute() engine.Op {
	o.m.writer = tidset.None
	return nil
}
func (o *wUnlockOp) Yielding() bool { return false }
func (o *wUnlockOp) Info() engine.OpInfo {
	return engine.OpInfo{Kind: "wunlock", Obj: o.m.id}
}

type rLockOp struct {
	m *RWMutex
	t *engine.T
}

func (o *rLockOp) Enabled() bool { return o.m.writer == tidset.None }
func (o *rLockOp) Execute() engine.Op {
	o.m.readers = append(o.m.readers, o.t.ID())
	return nil
}
func (o *rLockOp) Yielding() bool { return false }
func (o *rLockOp) Info() engine.OpInfo {
	return engine.OpInfo{Kind: "rlock", Obj: o.m.id}
}

type rUnlockOp struct {
	m *RWMutex
	t *engine.T
}

func (o *rUnlockOp) Enabled() bool { return true }
func (o *rUnlockOp) Execute() engine.Op {
	id := o.t.ID()
	for i, r := range o.m.readers {
		if r == id {
			o.m.readers = append(o.m.readers[:i], o.m.readers[i+1:]...)
			break
		}
	}
	return nil
}
func (o *rUnlockOp) Yielding() bool { return false }
func (o *rUnlockOp) Info() engine.OpInfo {
	return engine.OpInfo{Kind: "runlock", Obj: o.m.id}
}

// AppendStateMapped implements engine.CanonicalObject.
func (m *Mutex) AppendStateMapped(buf []byte, mapTid func(tidset.Tid) tidset.Tid) []byte {
	return appendTid(buf, mapTid(m.owner))
}

// AppendStateMapped implements engine.CanonicalObject.
func (m *RWMutex) AppendStateMapped(buf []byte, mapTid func(tidset.Tid) tidset.Tid) []byte {
	buf = appendTid(buf, mapTid(m.writer))
	mapped := make([]tidset.Tid, len(m.readers))
	for i, r := range m.readers {
		mapped[i] = mapTid(r)
	}
	return appendTidSlice(buf, mapped)
}
