package syncmodel

import (
	"fmt"

	"fairmc/internal/engine"
)

// IntVar is a shared integer variable. Every access is a scheduling
// point, giving the variable "volatile" (sequentially consistent)
// semantics: the checker explores all interleavings of accesses. The
// read-modify-write operations model the Interlocked* primitives the
// paper's work-stealing queue and Promise programs rely on.
type IntVar struct {
	base
	v int64
}

// NewIntVar creates a shared integer variable with the given initial
// value.
func NewIntVar(t *engine.T, name string, initial int64) *IntVar {
	v := &IntVar{base: base{kind: "int", name: name}, v: initial}
	v.id = t.Engine().RegisterObjectBy(t, v)
	return v
}

// Peek returns the current value without a scheduling point. It is
// intended for harness-side assertions between steps of the calling
// thread, not for modeling program reads.
func (v *IntVar) Peek() int64 { return v.v }

// Load reads the variable (InterlockedRead).
func (v *IntVar) Load(t *engine.T) int64 {
	op := &loadOp{v: v}
	t.Do(op)
	return op.res
}

// Store writes the variable.
func (v *IntVar) Store(t *engine.T, x int64) {
	t.Do(&storeOp{v: v, x: x})
}

// Add atomically adds delta and returns the new value
// (InterlockedAdd).
func (v *IntVar) Add(t *engine.T, delta int64) int64 {
	op := &addOp{v: v, delta: delta}
	t.Do(op)
	return op.res
}

// CompareAndSwap atomically replaces old with new and reports success
// (InterlockedCompareExchange).
func (v *IntVar) CompareAndSwap(t *engine.T, old, new int64) bool {
	op := &casOp{v: v, old: old, new: new}
	t.Do(op)
	return op.ok
}

// Swap atomically stores x and returns the previous value
// (InterlockedExchange).
func (v *IntVar) Swap(t *engine.T, x int64) int64 {
	op := &swapOp{v: v, x: x}
	t.Do(op)
	return op.res
}

// AppendState implements engine.Object.
func (v *IntVar) AppendState(buf []byte) []byte {
	return appendVarint(buf, v.v)
}

type loadOp struct {
	v   *IntVar
	res int64
}

func (o *loadOp) Enabled() bool { return true }
func (o *loadOp) Execute() engine.Op {
	o.res = o.v.v
	return nil
}
func (o *loadOp) Yielding() bool { return false }
func (o *loadOp) Info() engine.OpInfo {
	return engine.OpInfo{Kind: "load", Obj: o.v.id}
}

type storeOp struct {
	v *IntVar
	x int64
}

func (o *storeOp) Enabled() bool { return true }
func (o *storeOp) Execute() engine.Op {
	o.v.v = o.x
	return nil
}
func (o *storeOp) Yielding() bool { return false }
func (o *storeOp) Info() engine.OpInfo {
	return engine.OpInfo{Kind: "store", Obj: o.v.id, Aux: o.x}
}

type addOp struct {
	v     *IntVar
	delta int64
	res   int64
}

func (o *addOp) Enabled() bool { return true }
func (o *addOp) Execute() engine.Op {
	o.v.v += o.delta
	o.res = o.v.v
	return nil
}
func (o *addOp) Yielding() bool { return false }
func (o *addOp) Info() engine.OpInfo {
	return engine.OpInfo{Kind: "add", Obj: o.v.id, Aux: o.delta}
}

type casOp struct {
	v        *IntVar
	old, new int64
	ok       bool
}

func (o *casOp) Enabled() bool { return true }
func (o *casOp) Execute() engine.Op {
	if o.v.v == o.old {
		o.v.v = o.new
		o.ok = true
	} else {
		o.ok = false
	}
	return nil
}
func (o *casOp) Yielding() bool { return false }
func (o *casOp) Info() engine.OpInfo {
	return engine.OpInfo{Kind: "cas", Obj: o.v.id, Aux: o.new}
}

type swapOp struct {
	v   *IntVar
	x   int64
	res int64
}

func (o *swapOp) Enabled() bool { return true }
func (o *swapOp) Execute() engine.Op {
	o.res = o.v.v
	o.v.v = o.x
	return nil
}
func (o *swapOp) Yielding() bool { return false }
func (o *swapOp) Info() engine.OpInfo {
	return engine.OpInfo{Kind: "swap", Obj: o.v.id, Aux: o.x}
}

// IntArray is a fixed-size shared array of integers; element accesses
// are scheduling points. The work-stealing queue stores its tasks in
// one.
type IntArray struct {
	base
	elems []int64
}

// NewIntArray creates a zero-initialized shared array of length n.
func NewIntArray(t *engine.T, name string, n int) *IntArray {
	if n < 0 {
		t.Failf("intarray %q: negative length %d", name, n)
	}
	a := &IntArray{base: base{kind: "array", name: name}, elems: make([]int64, n)}
	a.id = t.Engine().RegisterObjectBy(t, a)
	return a
}

// Len returns the array length (immutable, no scheduling point).
func (a *IntArray) Len() int { return len(a.elems) }

// Get reads element i.
func (a *IntArray) Get(t *engine.T, i int) int64 {
	if i < 0 || i >= len(a.elems) {
		t.Failf("intarray %q: index %d out of range [0,%d)", a.name, i, len(a.elems))
	}
	op := &arrGetOp{a: a, i: i}
	t.Do(op)
	return op.res
}

// Set writes element i.
func (a *IntArray) Set(t *engine.T, i int, x int64) {
	if i < 0 || i >= len(a.elems) {
		t.Failf("intarray %q: index %d out of range [0,%d)", a.name, i, len(a.elems))
	}
	t.Do(&arrSetOp{a: a, i: i, x: x})
}

// AppendState implements engine.Object.
func (a *IntArray) AppendState(buf []byte) []byte {
	buf = appendVarint(buf, int64(len(a.elems)))
	for _, e := range a.elems {
		buf = appendVarint(buf, e)
	}
	return buf
}

type arrGetOp struct {
	a   *IntArray
	i   int
	res int64
}

func (o *arrGetOp) Enabled() bool { return true }
func (o *arrGetOp) Execute() engine.Op {
	o.res = o.a.elems[o.i]
	return nil
}
func (o *arrGetOp) Yielding() bool { return false }
func (o *arrGetOp) Info() engine.OpInfo {
	return engine.OpInfo{Kind: "arr.get", Obj: o.a.id, Aux: int64(o.i)}
}

type arrSetOp struct {
	a *IntArray
	i int
	x int64
}

func (o *arrSetOp) Enabled() bool { return true }
func (o *arrSetOp) Execute() engine.Op {
	o.a.elems[o.i] = o.x
	return nil
}
func (o *arrSetOp) Yielding() bool { return false }
func (o *arrSetOp) Info() engine.OpInfo {
	return engine.OpInfo{Kind: "arr.set", Obj: o.a.id, Aux: int64(o.i)}
}

// AnyVar is a shared variable holding an arbitrary value. Its
// fingerprint encoding uses the value's %#v rendering, so values
// stored in fingerprinted programs must render deterministically
// (numbers, strings, booleans, structs of those; fmt sorts map keys).
type AnyVar struct {
	base
	v any
}

// NewAnyVar creates a shared variable holding initial.
func NewAnyVar(t *engine.T, name string, initial any) *AnyVar {
	v := &AnyVar{base: base{kind: "any", name: name}, v: initial}
	v.id = t.Engine().RegisterObjectBy(t, v)
	return v
}

// Load reads the variable.
func (v *AnyVar) Load(t *engine.T) any {
	op := &anyLoadOp{v: v}
	t.Do(op)
	return op.res
}

// Store writes the variable.
func (v *AnyVar) Store(t *engine.T, x any) {
	t.Do(&anyStoreOp{v: v, x: x})
}

// Peek returns the current value without a scheduling point (harness
// assertions only).
func (v *AnyVar) Peek() any { return v.v }

// AppendState implements engine.Object.
func (v *AnyVar) AppendState(buf []byte) []byte {
	s := fmt.Sprintf("%#v", v.v)
	buf = appendVarint(buf, int64(len(s)))
	return append(buf, s...)
}

type anyLoadOp struct {
	v   *AnyVar
	res any
}

func (o *anyLoadOp) Enabled() bool { return true }
func (o *anyLoadOp) Execute() engine.Op {
	o.res = o.v.v
	return nil
}
func (o *anyLoadOp) Yielding() bool { return false }
func (o *anyLoadOp) Info() engine.OpInfo {
	return engine.OpInfo{Kind: "any.load", Obj: o.v.id}
}

type anyStoreOp struct {
	v *AnyVar
	x any
}

func (o *anyStoreOp) Enabled() bool { return true }
func (o *anyStoreOp) Execute() engine.Op {
	o.v.v = o.x
	return nil
}
func (o *anyStoreOp) Yielding() bool { return false }
func (o *anyStoreOp) Info() engine.OpInfo {
	return engine.OpInfo{Kind: "any.store", Obj: o.v.id}
}
