package syncmodel

import (
	"fairmc/internal/engine"
	"fairmc/internal/tidset"
)

// Cond is a condition variable bound to a Mutex. Wait atomically
// releases the mutex and blocks until signaled, then reacquires the
// mutex before returning — a two-phase transition in the model.
// Signal wakes waiters in FIFO order (deterministically).
type Cond struct {
	base
	m       *Mutex
	waiters []*condWaiter
}

type condWaiter struct {
	tid      tidset.Tid
	signaled bool
}

// NewCond creates a condition variable using m as its lock.
func NewCond(t *engine.T, name string, m *Mutex) *Cond {
	c := &Cond{base: base{kind: "cond", name: name}, m: m}
	c.id = t.Engine().RegisterObjectBy(t, c)
	return c
}

// Wait releases the mutex, blocks until signaled, and reacquires the
// mutex. The caller must hold the mutex.
func (c *Cond) Wait(t *engine.T) {
	if c.m.owner != t.ID() {
		t.Failf("cond %q: Wait without holding mutex %q", c.name, c.m.name)
	}
	t.Do(&condWaitOp{c: c, t: t})
}

// Signal marks the longest-waiting unsignaled waiter runnable. It may
// be called with or without the mutex held.
func (c *Cond) Signal(t *engine.T) {
	t.Do(&condSignalOp{c: c, all: false})
}

// Broadcast marks every waiter runnable.
func (c *Cond) Broadcast(t *engine.T) {
	t.Do(&condSignalOp{c: c, all: true})
}

// NumWaiters returns the number of threads currently waiting.
func (c *Cond) NumWaiters() int { return len(c.waiters) }

// AppendState implements engine.Object.
func (c *Cond) AppendState(buf []byte) []byte {
	buf = appendVarint(buf, int64(len(c.waiters)))
	for _, w := range c.waiters {
		buf = appendTid(buf, w.tid)
		buf = appendBool(buf, w.signaled)
	}
	return buf
}

// condWaitOp is phase one: release the mutex and enter the wait queue.
type condWaitOp struct {
	c *Cond
	t *engine.T
}

func (o *condWaitOp) Enabled() bool { return true }
func (o *condWaitOp) Execute() engine.Op {
	o.c.m.owner = tidset.None
	w := &condWaiter{tid: o.t.ID()}
	o.c.waiters = append(o.c.waiters, w)
	return &condReacquireOp{c: o.c, t: o.t, w: w}
}
func (o *condWaitOp) Yielding() bool { return false }
func (o *condWaitOp) Info() engine.OpInfo {
	return engine.OpInfo{Kind: "cond.wait", Obj: o.c.id}
}

// condReacquireOp is phase two: once signaled, reacquire the mutex.
type condReacquireOp struct {
	c *Cond
	t *engine.T
	w *condWaiter
}

func (o *condReacquireOp) Enabled() bool {
	return o.w.signaled && o.c.m.owner == tidset.None
}
func (o *condReacquireOp) Execute() engine.Op {
	o.c.m.owner = o.t.ID()
	for i, w := range o.c.waiters {
		if w == o.w {
			o.c.waiters = append(o.c.waiters[:i], o.c.waiters[i+1:]...)
			break
		}
	}
	return nil
}
func (o *condReacquireOp) Yielding() bool { return false }
func (o *condReacquireOp) Info() engine.OpInfo {
	return engine.OpInfo{Kind: "cond.reacquire", Obj: o.c.id}
}

type condSignalOp struct {
	c   *Cond
	all bool
}

func (o *condSignalOp) Enabled() bool { return true }
func (o *condSignalOp) Execute() engine.Op {
	for _, w := range o.c.waiters {
		if !w.signaled {
			w.signaled = true
			if !o.all {
				break
			}
		}
	}
	return nil
}
func (o *condSignalOp) Yielding() bool { return false }
func (o *condSignalOp) Info() engine.OpInfo {
	kind := "cond.signal"
	if o.all {
		kind = "cond.broadcast"
	}
	return engine.OpInfo{Kind: kind, Obj: o.c.id}
}

// AppendStateMapped implements engine.CanonicalObject.
func (c *Cond) AppendStateMapped(buf []byte, mapTid func(tidset.Tid) tidset.Tid) []byte {
	buf = appendVarint(buf, int64(len(c.waiters)))
	for _, w := range c.waiters {
		buf = appendTid(buf, mapTid(w.tid))
		buf = appendBool(buf, w.signaled)
	}
	return buf
}
