package syncmodel

import "fairmc/internal/engine"

// WaitGroup counts outstanding work, like sync.WaitGroup.
type WaitGroup struct {
	base
	count int64
}

// NewWaitGroup creates a wait group with the given initial count.
func NewWaitGroup(t *engine.T, name string, initial int64) *WaitGroup {
	if initial < 0 {
		t.Failf("waitgroup %q: negative initial count %d", name, initial)
	}
	w := &WaitGroup{base: base{kind: "wg", name: name}, count: initial}
	w.id = t.Engine().RegisterObjectBy(t, w)
	return w
}

// Count returns the current counter value.
func (w *WaitGroup) Count() int64 { return w.count }

// Add adds delta (which may be negative) to the counter; driving the
// counter negative is a detected error.
func (w *WaitGroup) Add(t *engine.T, delta int64) {
	t.Do(&wgAddOp{w: w, t: t, delta: delta})
}

// Done decrements the counter by one.
func (w *WaitGroup) Done(t *engine.T) { w.Add(t, -1) }

// Wait blocks (disabled) until the counter reaches zero.
func (w *WaitGroup) Wait(t *engine.T) {
	t.Do(&wgWaitOp{w: w})
}

// AppendState implements engine.Object.
func (w *WaitGroup) AppendState(buf []byte) []byte {
	return appendVarint(buf, w.count)
}

type wgAddOp struct {
	w     *WaitGroup
	t     *engine.T
	delta int64
}

func (o *wgAddOp) Enabled() bool { return true }
func (o *wgAddOp) Execute() engine.Op {
	o.w.count += o.delta
	if o.w.count < 0 {
		o.t.Failf("waitgroup %q: negative counter %d", o.w.name, o.w.count)
	}
	return nil
}
func (o *wgAddOp) Yielding() bool { return false }
func (o *wgAddOp) Info() engine.OpInfo {
	return engine.OpInfo{Kind: "wg.add", Obj: o.w.id, Aux: o.delta}
}

type wgWaitOp struct{ w *WaitGroup }

func (o *wgWaitOp) Enabled() bool { return o.w.count == 0 }
func (o *wgWaitOp) Execute() engine.Op {
	return nil
}
func (o *wgWaitOp) Yielding() bool { return false }
func (o *wgWaitOp) Info() engine.OpInfo {
	return engine.OpInfo{Kind: "wg.wait", Obj: o.w.id}
}
