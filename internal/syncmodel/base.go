// Package syncmodel implements the model-level synchronization objects
// of the checker: mutexes, reader/writer locks, semaphores, condition
// variables, events, wait groups, bounded channels, and shared
// variables with interlocked operations.
//
// Every operation on these objects is a scheduling point: the calling
// model thread publishes an Op and parks until the checker grants the
// step (see internal/engine). Each object knows how to report whether
// a pending operation is enabled — that is where the checker's
// enabled(t) predicate comes from — and encodes its state canonically
// for fingerprinting.
//
// Operations with finite timeouts (AcquireTimeout, WaitTimeout, …) are
// yielding transitions, per the paper's yield-inference rule (§4):
// "every synchronization operation with a finite timeout and every
// explicit processor yield" signal that the thread cannot make
// progress.
package syncmodel

import (
	"encoding/binary"

	"fairmc/internal/engine"
	"fairmc/internal/tidset"
)

// base carries the identity shared by all model objects.
type base struct {
	id   engine.ObjID
	kind string
	name string
}

// ObjectInfo implements engine.Object.
func (b *base) ObjectInfo() (engine.ObjID, string, string) {
	return b.id, b.kind, b.name
}

// ID returns the object's engine id.
func (b *base) ID() engine.ObjID { return b.id }

func appendVarint(buf []byte, v int64) []byte {
	return binary.AppendVarint(buf, v)
}

func appendTid(buf []byte, t tidset.Tid) []byte {
	return binary.AppendVarint(buf, int64(t))
}

func appendBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func appendTidSlice(buf []byte, ts []tidset.Tid) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ts)))
	for _, t := range ts {
		buf = appendTid(buf, t)
	}
	return buf
}
