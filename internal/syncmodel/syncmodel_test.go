package syncmodel_test

import (
	"testing"

	"fairmc/internal/engine"
	"fairmc/internal/syncmodel"
)

func run(t *testing.T, body func(*engine.T)) *engine.Result {
	t.Helper()
	return engine.Run(body, engine.FirstChooser{}, engine.Config{
		Fair:            true,
		CheckInvariants: true,
		RecordTrace:     true,
		MaxSteps:        100000,
	})
}

func wantTerminated(t *testing.T, r *engine.Result) {
	t.Helper()
	if r.Outcome != engine.Terminated {
		t.Fatalf("outcome = %v\n%s", r.Outcome, r.FormatTrace())
	}
}

func wantViolation(t *testing.T, r *engine.Result, why string) {
	t.Helper()
	if r.Outcome != engine.Violation {
		t.Fatalf("outcome = %v, want violation (%s)", r.Outcome, why)
	}
}

func TestMutexBasics(t *testing.T) {
	wantTerminated(t, run(t, func(t *engine.T) {
		m := syncmodel.NewMutex(t, "m")
		t.Assert(!m.Locked(), "fresh mutex unlocked")
		m.Lock(t)
		t.Assert(m.Locked(), "locked after Lock")
		t.Assert(m.Owner() == t.ID(), "owner is locker")
		t.Assert(!m.TryLock(t) || false, "TryLock on held lock fails")
		m.Unlock(t)
		t.Assert(m.TryLock(t), "TryLock on free lock succeeds")
		m.Unlock(t)
		t.Assert(m.LockTimeout(t), "LockTimeout on free lock succeeds")
		m.Unlock(t)
	}))
}

func TestMutexBlocksAndHandsOff(t *testing.T) {
	wantTerminated(t, run(t, func(t *engine.T) {
		m := syncmodel.NewMutex(t, "m")
		v := syncmodel.NewIntVar(t, "v", 0)
		m.Lock(t)
		h := t.Go("w", func(t *engine.T) {
			m.Lock(t) // disabled until main unlocks
			v.Store(t, 1)
			m.Unlock(t)
		})
		t.Assert(v.Load(t) == 0, "worker cannot have run")
		m.Unlock(t)
		h.Join(t)
		t.Assert(v.Load(t) == 1, "worker ran after release")
	}))
}

func TestLockTimeoutIsYielding(t *testing.T) {
	r := run(t, func(t *engine.T) {
		m := syncmodel.NewMutex(t, "m")
		m.LockTimeout(t)
		m.Unlock(t)
	})
	wantTerminated(t, r)
	if r.Yields != 1 {
		t.Fatalf("yields = %d, want 1 (LockTimeout has a finite timeout)", r.Yields)
	}
}

func TestRWMutex(t *testing.T) {
	wantTerminated(t, run(t, func(t *engine.T) {
		m := syncmodel.NewRWMutex(t, "rw")
		v := syncmodel.NewIntVar(t, "v", 0)

		m.RLock(t)
		h := t.Go("writer", func(t *engine.T) {
			m.Lock(t) // blocked while reader holds
			v.Store(t, 1)
			m.Unlock(t)
		})
		t.Assert(v.Load(t) == 0, "writer blocked by reader")
		m.RUnlock(t)
		h.Join(t)
		t.Assert(v.Load(t) == 1, "writer ran")

		// Multiple concurrent readers.
		m.RLock(t)
		h2 := t.Go("reader", func(t *engine.T) {
			m.RLock(t)
			m.RUnlock(t)
		})
		h2.Join(t)
		m.RUnlock(t)
	}))
}

func TestRWMutexMisuse(t *testing.T) {
	wantViolation(t, run(t, func(t *engine.T) {
		m := syncmodel.NewRWMutex(t, "rw")
		m.Unlock(t)
	}), "unlock without lock")
	wantViolation(t, run(t, func(t *engine.T) {
		m := syncmodel.NewRWMutex(t, "rw")
		m.RLock(t)
		m.Lock(t)
	}), "upgrade attempt")
	wantViolation(t, run(t, func(t *engine.T) {
		m := syncmodel.NewRWMutex(t, "rw")
		m.RUnlock(t)
	}), "read unlock without read lock")
}

func TestSemaphore(t *testing.T) {
	wantTerminated(t, run(t, func(t *engine.T) {
		s := syncmodel.NewSemaphore(t, "s", 2, 3)
		s.Acquire(t)
		s.Acquire(t)
		t.Assert(!s.TryAcquire(t), "count exhausted")
		s.Release(t, 1)
		t.Assert(s.TryAcquire(t), "count available after release")
		t.Assert(!s.AcquireTimeout(t), "timeout on empty semaphore")
		s.Release(t, 2)
		t.Assert(s.AcquireTimeout(t), "timeout acquire succeeds when available")
	}))
}

func TestSemaphoreBlocking(t *testing.T) {
	wantTerminated(t, run(t, func(t *engine.T) {
		s := syncmodel.NewSemaphore(t, "s", 0, 0)
		v := syncmodel.NewIntVar(t, "v", 0)
		h := t.Go("waiter", func(t *engine.T) {
			s.Acquire(t) // disabled until release
			v.Store(t, 1)
		})
		t.Assert(v.Load(t) == 0, "waiter blocked")
		s.Release(t, 1)
		h.Join(t)
		t.Assert(v.Load(t) == 1, "waiter ran")
	}))
}

func TestSemaphoreOverflowFails(t *testing.T) {
	wantViolation(t, run(t, func(t *engine.T) {
		s := syncmodel.NewSemaphore(t, "s", 1, 1)
		s.Release(t, 1)
	}), "release beyond max")
}

func TestCondSignalWakesOne(t *testing.T) {
	wantTerminated(t, run(t, func(t *engine.T) {
		m := syncmodel.NewMutex(t, "m")
		c := syncmodel.NewCond(t, "c", m)
		ready := syncmodel.NewIntVar(t, "ready", 0)
		woken := syncmodel.NewIntVar(t, "woken", 0)
		for i := 0; i < 2; i++ {
			t.Go("waiter", func(t *engine.T) {
				m.Lock(t)
				ready.Add(t, 1)
				c.Wait(t)
				woken.Add(t, 1)
				m.Unlock(t)
			})
		}
		for ready.Load(t) != 2 {
			t.Yield()
		}
		c.Signal(t)
		for woken.Load(t) != 1 {
			t.Yield()
		}
		t.Assert(c.NumWaiters() == 1, "one waiter remains")
		c.Broadcast(t)
		for woken.Load(t) != 2 {
			t.Yield()
		}
	}))
}

func TestCondWaitRequiresMutex(t *testing.T) {
	wantViolation(t, run(t, func(t *engine.T) {
		m := syncmodel.NewMutex(t, "m")
		c := syncmodel.NewCond(t, "c", m)
		c.Wait(t)
	}), "wait without mutex")
}

func TestCondWaitReacquiresMutex(t *testing.T) {
	wantTerminated(t, run(t, func(t *engine.T) {
		m := syncmodel.NewMutex(t, "m")
		c := syncmodel.NewCond(t, "c", m)
		state := syncmodel.NewIntVar(t, "state", 0)
		h := t.Go("waiter", func(t *engine.T) {
			m.Lock(t)
			for state.Load(t) == 0 {
				c.Wait(t)
			}
			t.Assert(m.Owner() == t.ID(), "mutex reacquired after Wait")
			m.Unlock(t)
		})
		for c.NumWaiters() == 0 {
			t.Yield()
		}
		m.Lock(t)
		state.Store(t, 1)
		c.Signal(t)
		m.Unlock(t)
		h.Join(t)
	}))
}

func TestEventManualAndAuto(t *testing.T) {
	wantTerminated(t, run(t, func(t *engine.T) {
		manual := syncmodel.NewEvent(t, "manual", true, false)
		auto := syncmodel.NewEvent(t, "auto", false, false)

		t.Assert(!manual.WaitTimeout(t), "manual unsignaled")
		manual.Set(t)
		manual.Wait(t)
		t.Assert(manual.Signaled(), "manual stays signaled")
		manual.Reset(t)
		t.Assert(!manual.Signaled(), "manual reset")

		auto.Set(t)
		auto.Wait(t)
		t.Assert(!auto.Signaled(), "auto consumed by wait")
		auto.Set(t)
		t.Assert(auto.WaitTimeout(t), "auto timeout-wait consumes")
		t.Assert(!auto.Signaled(), "auto consumed by timeout wait")
	}))
}

func TestEventWaitBlocks(t *testing.T) {
	wantTerminated(t, run(t, func(t *engine.T) {
		ev := syncmodel.NewEvent(t, "ev", true, false)
		v := syncmodel.NewIntVar(t, "v", 0)
		h := t.Go("waiter", func(t *engine.T) {
			ev.Wait(t)
			v.Store(t, 1)
		})
		t.Assert(v.Load(t) == 0, "waiter blocked on event")
		ev.Set(t)
		h.Join(t)
		t.Assert(v.Load(t) == 1, "waiter released")
	}))
}

func TestWaitGroup(t *testing.T) {
	wantTerminated(t, run(t, func(t *engine.T) {
		wg := syncmodel.NewWaitGroup(t, "wg", 0)
		wg.Add(t, 3)
		done := syncmodel.NewIntVar(t, "done", 0)
		for i := 0; i < 3; i++ {
			t.Go("w", func(t *engine.T) {
				done.Add(t, 1)
				wg.Done(t)
			})
		}
		wg.Wait(t)
		t.Assert(done.Load(t) == 3, "all workers finished before Wait returned")
	}))
}

func TestWaitGroupNegativeFails(t *testing.T) {
	wantViolation(t, run(t, func(t *engine.T) {
		wg := syncmodel.NewWaitGroup(t, "wg", 0)
		wg.Done(t)
	}), "counter below zero")
}

func TestIntVarOps(t *testing.T) {
	wantTerminated(t, run(t, func(t *engine.T) {
		v := syncmodel.NewIntVar(t, "v", 10)
		t.Assert(v.Load(t) == 10, "initial")
		v.Store(t, 20)
		t.Assert(v.Add(t, 5) == 25, "Add returns new value")
		t.Assert(v.CompareAndSwap(t, 25, 30), "CAS succeeds on match")
		t.Assert(!v.CompareAndSwap(t, 25, 40), "CAS fails on mismatch")
		t.Assert(v.Swap(t, 50) == 30, "Swap returns old value")
		t.Assert(v.Load(t) == 50, "Swap stored")
		t.Assert(v.Peek() == 50, "Peek sees current value")
	}))
}

func TestIntArray(t *testing.T) {
	wantTerminated(t, run(t, func(t *engine.T) {
		a := syncmodel.NewIntArray(t, "a", 4)
		t.Assert(a.Len() == 4, "length")
		a.Set(t, 2, 7)
		t.Assert(a.Get(t, 2) == 7, "set/get")
		t.Assert(a.Get(t, 0) == 0, "zero initialized")
	}))
	wantViolation(t, run(t, func(t *engine.T) {
		a := syncmodel.NewIntArray(t, "a", 2)
		a.Get(t, 5)
	}), "index out of range")
}

func TestAnyVar(t *testing.T) {
	wantTerminated(t, run(t, func(t *engine.T) {
		v := syncmodel.NewAnyVar(t, "v", "hello")
		t.Assert(v.Load(t) == "hello", "initial")
		v.Store(t, 42)
		t.Assert(v.Load(t) == 42, "stored int")
	}))
}

func TestChannelBuffered(t *testing.T) {
	wantTerminated(t, run(t, func(t *engine.T) {
		ch := syncmodel.NewChannel(t, "ch", 2)
		t.Assert(ch.TrySend(t, 1), "space available")
		ch.Send(t, 2)
		t.Assert(!ch.TrySend(t, 3), "full")
		v, ok := ch.Recv(t)
		t.Assert(ok && v == 1, "FIFO order")
		v, open, got := ch.TryRecv(t)
		t.Assert(got && open && v == 2, "tryrecv")
		_, _, got = ch.TryRecv(t)
		t.Assert(!got, "empty tryrecv")
	}))
}

func TestChannelBlockingSend(t *testing.T) {
	wantTerminated(t, run(t, func(t *engine.T) {
		ch := syncmodel.NewChannel(t, "ch", 1)
		ch.Send(t, 1)
		progressed := syncmodel.NewIntVar(t, "p", 0)
		h := t.Go("sender", func(t *engine.T) {
			ch.Send(t, 2) // disabled while full
			progressed.Store(t, 1)
		})
		t.Assert(progressed.Load(t) == 0, "sender blocked on full channel")
		v, ok := ch.Recv(t)
		t.Assert(ok && v == 1, "first value")
		h.Join(t)
		v, ok = ch.Recv(t)
		t.Assert(ok && v == 2, "second value after unblock")
	}))
}

func TestChannelRendezvous(t *testing.T) {
	wantTerminated(t, run(t, func(t *engine.T) {
		ch := syncmodel.NewChannel(t, "ch", 0)
		t.Assert(!ch.TrySend(t, 9), "no receiver waiting")
		got := syncmodel.NewIntVar(t, "got", 0)
		h := t.Go("receiver", func(t *engine.T) {
			v, ok := ch.Recv(t)
			t.Assert(ok, "rendezvous recv ok")
			got.Store(t, v)
		})
		ch.Send(t, 77) // enabled once receiver parked
		h.Join(t)
		t.Assert(got.Load(t) == 77, "value delivered")
	}))
}

func TestChannelClose(t *testing.T) {
	wantTerminated(t, run(t, func(t *engine.T) {
		ch := syncmodel.NewChannel(t, "ch", 2)
		ch.Send(t, 5)
		ch.Close(t)
		v, ok := ch.Recv(t)
		t.Assert(ok && v == 5, "drain after close")
		_, ok = ch.Recv(t)
		t.Assert(!ok, "closed and empty")
	}))
	wantViolation(t, run(t, func(t *engine.T) {
		ch := syncmodel.NewChannel(t, "ch", 1)
		ch.Close(t)
		ch.Send(t, 1)
	}), "send on closed")
	wantViolation(t, run(t, func(t *engine.T) {
		ch := syncmodel.NewChannel(t, "ch", 1)
		ch.Close(t)
		ch.Close(t)
	}), "double close")
}

func TestChannelCloseReleasesBlockedReceiver(t *testing.T) {
	wantTerminated(t, run(t, func(t *engine.T) {
		ch := syncmodel.NewChannel(t, "ch", 1)
		h := t.Go("receiver", func(t *engine.T) {
			_, ok := ch.Recv(t) // disabled until close
			t.Assert(!ok, "recv observes close")
		})
		ch.Close(t)
		h.Join(t)
	}))
}

func TestBlockedSenderFailsWhenChannelCloses(t *testing.T) {
	wantViolation(t, run(t, func(t *engine.T) {
		ch := syncmodel.NewChannel(t, "ch", 1)
		ch.Send(t, 1) // fill
		t.Go("sender", func(t *engine.T) {
			ch.Send(t, 2) // blocks; later the channel closes under it
		})
		ch.Close(t)
	}), "send on channel closed while blocked")
}

func TestOnceSingleWinner(t *testing.T) {
	wantTerminated(t, run(t, func(t *engine.T) {
		o := syncmodel.NewOnce(t, "o")
		inits := syncmodel.NewIntVar(t, "inits", 0)
		wg := syncmodel.NewWaitGroup(t, "wg", 3)
		for i := 0; i < 3; i++ {
			t.Go("w", func(t *engine.T) {
				o.Do(t, func(t *engine.T) {
					inits.Add(t, 1)
				})
				// After Do returns, initialization is complete.
				t.Assert(o.Done(), "once done after Do")
				t.Assert(inits.Load(t) == 1, "exactly one initializer")
				wg.Done(t)
			})
		}
		wg.Wait(t)
		t.Assert(inits.Load(t) == 1, "exactly one init overall")
	}))
}

func TestOnceLosersBlockDuringInit(t *testing.T) {
	wantTerminated(t, run(t, func(t *engine.T) {
		o := syncmodel.NewOnce(t, "o")
		won := o.Begin(t)
		t.Assert(won, "first arrival wins")
		progressed := syncmodel.NewIntVar(t, "p", 0)
		h := t.Go("loser", func(t *engine.T) {
			t.Assert(!o.Begin(t), "loser does not win") // disabled until Complete
			progressed.Store(t, 1)
		})
		t.Assert(progressed.Load(t) == 0, "loser blocked while winner initializes")
		o.Complete(t)
		h.Join(t)
		t.Assert(progressed.Load(t) == 1, "loser released")
	}))
}

func TestOnceCompleteMisuse(t *testing.T) {
	wantViolation(t, run(t, func(t *engine.T) {
		o := syncmodel.NewOnce(t, "o")
		o.Complete(t)
	}), "complete without begin")
}

func TestBarrierRendezvous(t *testing.T) {
	wantTerminated(t, run(t, func(t *engine.T) {
		b := syncmodel.NewBarrier(t, "b", 2)
		work := syncmodel.NewIntVar(t, "work", 0)
		h := t.Go("peer", func(t *engine.T) {
			work.Add(t, 1)
			b.Await(t)
			t.Assert(work.Load(t) == 2, "peer sees both contributions")
		})
		work.Add(t, 1)
		b.Await(t)
		t.Assert(work.Load(t) == 2, "main sees both contributions")
		h.Join(t)
		t.Assert(b.Phase() == 1, "one completed phase")
	}))
}

func TestBarrierReusable(t *testing.T) {
	wantTerminated(t, run(t, func(t *engine.T) {
		b := syncmodel.NewBarrier(t, "b", 2)
		rounds := syncmodel.NewIntVar(t, "rounds", 0)
		h := t.Go("peer", func(t *engine.T) {
			for r := 0; r < 3; r++ {
				t.Label(1)
				rounds.Add(t, 1)
				b.Await(t)
			}
		})
		for r := 0; r < 3; r++ {
			t.Label(1)
			rounds.Add(t, 1)
			b.Await(t)
			t.Assert(rounds.Load(t) >= int64(2*(r+1)), "round complete at crossing")
		}
		h.Join(t)
		t.Assert(b.Phase() == 3, "three phases")
	}))
}

func TestBarrierBadParties(t *testing.T) {
	wantViolation(t, run(t, func(t *engine.T) {
		syncmodel.NewBarrier(t, "b", 0)
	}), "zero parties")
}
