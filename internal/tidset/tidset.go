// Package tidset provides a dense bitset over thread identifiers.
//
// The fair scheduler of Musuvathi & Qadeer (Algorithm 1) manipulates
// sets of threads (the enabled set ES and the per-thread window sets
// E(t), D(t), S(t)) on every scheduling step. Thread identifiers are
// small dense integers assigned in creation order, so a bitset gives
// constant-time membership and word-parallel set algebra.
package tidset

import (
	"fmt"
	"math/bits"
	"strings"
)

// Tid identifies a thread. Tids are assigned densely from zero in
// creation order by the engine; the zero Tid is the main thread.
type Tid int

// None is a sentinel for "no thread".
const None Tid = -1

const wordBits = 64

// Set is a set of Tids. The zero value is the empty set. Sets grow on
// demand; all binary operations accept operands of different widths.
type Set struct {
	words []uint64
}

// New returns an empty set with capacity hint n.
func New(n int) Set {
	return Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// Of returns the set containing exactly the given tids.
func Of(tids ...Tid) Set {
	var s Set
	for _, t := range tids {
		s.Add(t)
	}
	return s
}

// Universe returns the set {0, 1, ..., n-1}.
func Universe(n int) Set {
	s := New(n)
	for i := 0; i < n; i++ {
		s.Add(Tid(i))
	}
	return s
}

func (s *Set) grow(w int) {
	for len(s.words) <= w {
		s.words = append(s.words, 0)
	}
}

// Add inserts t. Panics on negative t.
func (s *Set) Add(t Tid) {
	if t < 0 {
		panic(fmt.Sprintf("tidset: negative Tid %d", t))
	}
	w := int(t) / wordBits
	s.grow(w)
	s.words[w] |= 1 << (uint(t) % wordBits)
}

// Remove deletes t; removing an absent element is a no-op.
func (s *Set) Remove(t Tid) {
	if t < 0 {
		return
	}
	w := int(t) / wordBits
	if w < len(s.words) {
		s.words[w] &^= 1 << (uint(t) % wordBits)
	}
}

// Contains reports whether t is in the set.
func (s Set) Contains(t Tid) bool {
	if t < 0 {
		return false
	}
	w := int(t) / wordBits
	return w < len(s.words) && s.words[w]&(1<<(uint(t)%wordBits)) != 0
}

// Empty reports whether the set has no elements.
func (s Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Len returns the number of elements.
func (s Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Reset empties the set and ensures capacity for tids [0, n),
// reusing the existing backing storage where possible. It lets hot
// loops rebuild a set every step without reallocating.
func (s *Set) Reset(n int) {
	need := (n + wordBits - 1) / wordBits
	if cap(s.words) < need {
		s.words = make([]uint64, need)
		return
	}
	s.words = s.words[:need]
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clear empties the set, keeping its backing storage.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// CopyFrom makes s equal to o, reusing s's backing storage where
// possible.
func (s *Set) CopyFrom(o Set) {
	if cap(s.words) < len(o.words) {
		s.words = make([]uint64, len(o.words))
	} else {
		s.words = s.words[:len(o.words)]
	}
	copy(s.words, o.words)
}

// Intersects reports whether s ∩ o is nonempty, without allocating.
func (s Set) Intersects(o Set) bool {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	if len(s.words) == 0 {
		return Set{}
	}
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return Set{words: w}
}

// Union returns s ∪ o.
func (s Set) Union(o Set) Set {
	a, b := s.words, o.words
	if len(a) < len(b) {
		a, b = b, a
	}
	out := make([]uint64, len(a))
	copy(out, a)
	for i, w := range b {
		out[i] |= w
	}
	return Set{words: out}
}

// Intersect returns s ∩ o.
func (s Set) Intersect(o Set) Set {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = s.words[i] & o.words[i]
	}
	return Set{words: out}
}

// Minus returns s \ o.
func (s Set) Minus(o Set) Set {
	out := make([]uint64, len(s.words))
	copy(out, s.words)
	for i := 0; i < len(out) && i < len(o.words); i++ {
		out[i] &^= o.words[i]
	}
	return Set{words: out}
}

// UnionWith adds every element of o to s in place.
func (s *Set) UnionWith(o Set) {
	s.grow(len(o.words) - 1)
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// IntersectWith removes from s every element not in o, in place.
func (s *Set) IntersectWith(o Set) {
	for i := range s.words {
		if i < len(o.words) {
			s.words[i] &= o.words[i]
		} else {
			s.words[i] = 0
		}
	}
}

// MinusWith removes every element of o from s in place.
func (s *Set) MinusWith(o Set) {
	for i := 0; i < len(s.words) && i < len(o.words); i++ {
		s.words[i] &^= o.words[i]
	}
}

// Equal reports whether s and o contain the same elements.
func (s Set) Equal(o Set) bool {
	a, b := s.words, o.words
	if len(a) < len(b) {
		a, b = b, a
	}
	for i, w := range a {
		var v uint64
		if i < len(b) {
			v = b[i]
		}
		if w != v {
			return false
		}
	}
	return true
}

// Subset reports whether every element of s is in o.
func (s Set) Subset(o Set) bool {
	for i, w := range s.words {
		var v uint64
		if i < len(o.words) {
			v = o.words[i]
		}
		if w&^v != 0 {
			return false
		}
	}
	return true
}

// Slice returns the elements in increasing order.
func (s Set) Slice() []Tid {
	out := make([]Tid, 0, s.Len())
	s.ForEach(func(t Tid) { out = append(out, t) })
	return out
}

// ForEach calls f for each element in increasing order.
func (s Set) ForEach(f func(Tid)) {
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(Tid(i*wordBits + b))
			w &^= 1 << uint(b)
		}
	}
}

// Min returns the smallest element, or None if the set is empty.
func (s Set) Min() Tid {
	for i, w := range s.words {
		if w != 0 {
			return Tid(i*wordBits + bits.TrailingZeros64(w))
		}
	}
	return None
}

// String renders the set as "{0, 3, 7}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(t Tid) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", t)
	})
	b.WriteByte('}')
	return b.String()
}
