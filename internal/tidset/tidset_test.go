package tidset

import (
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	var s Set
	if !s.Empty() {
		t.Fatal("zero Set not empty")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
	if s.Contains(0) || s.Contains(100) {
		t.Fatal("empty set contains element")
	}
	if s.Min() != None {
		t.Fatalf("Min of empty = %d, want None", s.Min())
	}
	if s.String() != "{}" {
		t.Fatalf("String = %q, want {}", s.String())
	}
}

func TestAddRemoveContains(t *testing.T) {
	var s Set
	s.Add(0)
	s.Add(63)
	s.Add(64) // crosses word boundary
	s.Add(130)
	for _, want := range []Tid{0, 63, 64, 130} {
		if !s.Contains(want) {
			t.Errorf("missing %d", want)
		}
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	s.Remove(63)
	if s.Contains(63) {
		t.Error("63 still present after Remove")
	}
	s.Remove(999) // absent, no-op
	s.Remove(-1)  // negative, no-op
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
}

func TestContainsNegative(t *testing.T) {
	s := Of(1, 2)
	if s.Contains(-1) || s.Contains(None) {
		t.Fatal("Contains(negative) = true")
	}
}

func TestAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	var s Set
	s.Add(-1)
}

func TestOfAndUniverse(t *testing.T) {
	s := Of(3, 1, 4)
	if got := s.String(); got != "{1, 3, 4}" {
		t.Fatalf("Of String = %q", got)
	}
	u := Universe(5)
	if u.Len() != 5 || !u.Contains(0) || !u.Contains(4) || u.Contains(5) {
		t.Fatalf("Universe(5) = %v", u)
	}
	if Universe(0).Len() != 0 {
		t.Fatal("Universe(0) not empty")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := Of(1, 2, 3, 64)
	b := Of(2, 3, 4, 200)

	if got := a.Union(b); got.String() != "{1, 2, 3, 4, 64, 200}" {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); got.String() != "{2, 3}" {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(b); got.String() != "{1, 64}" {
		t.Errorf("Minus = %v", got)
	}
	if got := b.Minus(a); got.String() != "{4, 200}" {
		t.Errorf("Minus = %v", got)
	}
}

func TestInPlaceOps(t *testing.T) {
	a := Of(1, 2, 3)
	a.UnionWith(Of(3, 4, 100))
	if a.String() != "{1, 2, 3, 4, 100}" {
		t.Fatalf("UnionWith = %v", a)
	}
	a.IntersectWith(Of(2, 4, 100, 101))
	if a.String() != "{2, 4, 100}" {
		t.Fatalf("IntersectWith = %v", a)
	}
	a.MinusWith(Of(4))
	if a.String() != "{2, 100}" {
		t.Fatalf("MinusWith = %v", a)
	}
	// In-place ops with wider operands must grow/clip correctly.
	small := Of(1)
	small.IntersectWith(Of(1, 900))
	if small.String() != "{1}" {
		t.Fatalf("IntersectWith wide = %v", small)
	}
}

func TestEqualSubset(t *testing.T) {
	a := Of(1, 65)
	b := Of(1, 65)
	b.Add(300)
	b.Remove(300) // same elements, wider backing array
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("Equal fails across widths")
	}
	if !a.Subset(b) || !b.Subset(a) {
		t.Fatal("Subset fails across widths")
	}
	b.Add(2)
	if a.Equal(b) {
		t.Fatal("unequal sets Equal")
	}
	if !a.Subset(b) || b.Subset(a) {
		t.Fatal("Subset wrong after Add")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Of(1, 2)
	c := a.Clone()
	c.Add(3)
	if a.Contains(3) {
		t.Fatal("Clone shares storage")
	}
	var empty Set
	if !empty.Clone().Empty() {
		t.Fatal("Clone of empty not empty")
	}
}

func TestSliceForEachMin(t *testing.T) {
	s := Of(5, 0, 70)
	got := s.Slice()
	want := []Tid{0, 5, 70}
	if len(got) != len(want) {
		t.Fatalf("Slice = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice = %v, want %v", got, want)
		}
	}
	if s.Min() != 0 {
		t.Fatalf("Min = %d", s.Min())
	}
}

func TestQuickAlgebraLaws(t *testing.T) {
	mk := func(xs []uint8) Set {
		var s Set
		for _, x := range xs {
			s.Add(Tid(x))
		}
		return s
	}
	// De Morgan-ish law on finite sets: (a ∪ b) \ c == (a \ c) ∪ (b \ c).
	law1 := func(xa, xb, xc []uint8) bool {
		a, b, c := mk(xa), mk(xb), mk(xc)
		return a.Union(b).Minus(c).Equal(a.Minus(c).Union(b.Minus(c)))
	}
	if err := quick.Check(law1, nil); err != nil {
		t.Error(err)
	}
	// Intersection distributes over union.
	law2 := func(xa, xb, xc []uint8) bool {
		a, b, c := mk(xa), mk(xb), mk(xc)
		return a.Intersect(b.Union(c)).Equal(a.Intersect(b).Union(a.Intersect(c)))
	}
	if err := quick.Check(law2, nil); err != nil {
		t.Error(err)
	}
	// Len(a ∪ b) = Len(a) + Len(b) - Len(a ∩ b).
	law3 := func(xa, xb []uint8) bool {
		a, b := mk(xa), mk(xb)
		return a.Union(b).Len() == a.Len()+b.Len()-a.Intersect(b).Len()
	}
	if err := quick.Check(law3, nil); err != nil {
		t.Error(err)
	}
	// x ∈ a \ b  iff  x ∈ a ∧ x ∉ b.
	law4 := func(xa, xb []uint8, x uint8) bool {
		a, b := mk(xa), mk(xb)
		return a.Minus(b).Contains(Tid(x)) == (a.Contains(Tid(x)) && !b.Contains(Tid(x)))
	}
	if err := quick.Check(law4, nil); err != nil {
		t.Error(err)
	}
}
