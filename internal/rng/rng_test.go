package rng

import "testing"

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	seen := make([]bool, 10)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Errorf("value %d never drawn in 1000 tries", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestMixSensitivity(t *testing.T) {
	// Mix must differ on either argument changing.
	base := Mix(1, 1)
	if Mix(1, 2) == base || Mix(2, 1) == base {
		t.Fatal("Mix insensitive to inputs")
	}
	if Mix(1, 1) != base {
		t.Fatal("Mix not deterministic")
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r Rand
	_ = r.Uint64() // must not panic
}
