// Package rng provides a small deterministic pseudo-random generator
// (splitmix64). The checker never uses the global math/rand state:
// random-tail search must be reproducible from (seed, execution index)
// alone so that any execution the search finds can be replayed.
package rng

// Rand is a splitmix64 generator. The zero value is a valid generator
// seeded with zero.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Mix derives a new seed from two values; used to give every execution
// an independent but reproducible tail-search stream.
func Mix(a, b uint64) uint64 {
	x := a ^ (b + 0x9e3779b97f4a7c15 + (a << 6) + (a >> 2))
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}
