package faultinject

// The filesystem half of the chaos layer: a deterministic disk-fault
// injector behind the fsx.FS seam, the counterpart of the HTTP
// injector for the durability code paths (checkpoints, coordinator
// state, worker spool, job ledger).
//
// The scheduling discipline is the HTTP injector's, transplanted:
// every fault decision is a pure function of (seed, rule path pattern,
// per-rule operation ordinal), independent of wall-clock time and
// goroutine interleaving, so a test that replays the same operation
// sequence against the same (seed, scenario) sees the identical fault
// schedule.
//
// Fault kinds:
//
//   - short write: File.Write persists only a prefix of the buffer and
//     returns an error — a torn write, as a crashed or full disk
//     leaves it.
//   - fsync error: File.Sync fails without syncing; the data may or
//     may not be durable, exactly the ambiguity real fsync failures
//     have.
//   - torn rename: FS.Rename reports success but the target keeps its
//     old contents (the temp file is consumed) — what a crash between
//     rename and the parent-directory fsync looks like after reboot.
//   - read corruption: FS.ReadFile returns the data with one
//     deterministic bit flipped — silent media corruption, which the
//     CRC framing of ledger segments and spool entries must catch.

import (
	"fmt"
	"io/fs"
	"os"
	"strings"
	"sync"

	"fairmc/internal/fsx"
	"fairmc/internal/rng"
)

// Filesystem fault kinds, as reported to OnFault and in Counts.
const (
	KindShortWrite  = "short-write"
	KindSyncErr     = "sync-error"
	KindTornRename  = "torn-rename"
	KindReadCorrupt = "read-corrupt"
)

// FSRule is one line of a filesystem chaos scenario: which paths it
// matches and what misbehavior they get. Probabilities are in [0, 1]
// and are drawn independently, in a fixed order, from the same
// deterministic stream.
type FSRule struct {
	// Path selects files whose path contains this substring; ""
	// matches every file.
	Path string

	ShortWrite  float64 // probability a Write tears (prefix persisted, error returned)
	SyncErr     float64 // probability a Sync fails
	TornRename  float64 // probability a Rename is silently lost
	ReadCorrupt float64 // probability a ReadFile returns one flipped bit
}

// FSScenario is a named set of filesystem fault rules.
type FSScenario struct {
	Name  string
	Rules []FSRule
}

// FSInjector wraps an fsx.FS with a deterministic disk-fault schedule.
// Create with NewFS; safe for concurrent use — concurrency does not
// perturb the schedule because each rule keeps its own operation
// ordinal.
type FSInjector struct {
	seed     uint64
	scenario FSScenario
	base     fsx.FS

	// OnFault, when set, observes every injected fault (by kind).
	// Set before the first operation; typically wired to
	// obs.Metrics.FSFaultsInjected.
	OnFault func(kind string)

	mu     sync.Mutex
	seq    []int // per-rule operation ordinal
	counts map[string]int64
}

// NewFS returns a filesystem fault injector wrapping base (nil means
// fsx.OS) for the given seed and scenario.
func NewFS(seed uint64, sc FSScenario, base fsx.FS) *FSInjector {
	if base == nil {
		base = fsx.OS
	}
	return &FSInjector{
		seed:     seed,
		scenario: sc,
		base:     base,
		seq:      make([]int, len(sc.Rules)),
		counts:   map[string]int64{},
	}
}

// Counts returns how many faults of each kind have been injected.
func (in *FSInjector) Counts() map[string]int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]int64, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// Total returns the total number of injected filesystem faults.
func (in *FSInjector) Total() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var n int64
	for _, v := range in.counts {
		n += v
	}
	return n
}

func (in *FSInjector) note(kind string) {
	in.mu.Lock()
	in.counts[kind]++
	in.mu.Unlock()
	if in.OnFault != nil {
		in.OnFault(kind)
	}
}

// fsVerdict is the decision for one operation under the scenario.
type fsVerdict struct {
	shortWrite  bool
	syncErr     bool
	tornRename  bool
	readCorrupt bool
	corruptBit  uint64 // which bit of the read to flip
}

// decide draws the verdict for the next operation on path; the stream
// is keyed by (seed, rule path pattern, ordinal), matching the HTTP
// injector's (seed, endpoint, ordinal) discipline.
func (in *FSInjector) decide(path string) fsVerdict {
	in.mu.Lock()
	defer in.mu.Unlock()
	var v fsVerdict
	for i, r := range in.scenario.Rules {
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		ord := in.seq[i]
		in.seq[i]++
		g := rng.New(rng.Mix(rng.Mix(in.seed, pathHash(r.Path)), uint64(ord)+1))
		// Fixed draw order so removing one fault kind from a rule does
		// not reshuffle the others (same convention as the HTTP rules).
		pShort := float64(g.Uint64()%1e6) / 1e6
		pSync := float64(g.Uint64()%1e6) / 1e6
		pRename := float64(g.Uint64()%1e6) / 1e6
		pRead := float64(g.Uint64()%1e6) / 1e6
		bit := g.Uint64()

		if pShort < r.ShortWrite {
			v.shortWrite = true
		}
		if pSync < r.SyncErr {
			v.syncErr = true
		}
		if pRename < r.TornRename {
			v.tornRename = true
		}
		if pRead < r.ReadCorrupt {
			v.readCorrupt = true
			v.corruptBit = bit
		}
	}
	return v
}

// FSError is the synthetic error injected for short writes, fsync
// failures, and (never-surfaced) rename losses.
type FSError struct {
	Kind string
	Path string
}

func (e *FSError) Error() string {
	return fmt.Sprintf("faultinject: %s %s", e.Kind, e.Path)
}

// --- fsx.FS implementation ---

var _ fsx.FS = (*FSInjector)(nil)

// OpenFile wraps the handle so Write and Sync draw fault verdicts.
func (in *FSInjector) OpenFile(name string, flag int, perm os.FileMode) (fsx.File, error) {
	f, err := in.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{in: in, f: f, name: name}, nil
}

// ReadFile injects silent corruption: a deterministic bit of the
// returned data is flipped.
func (in *FSInjector) ReadFile(name string) ([]byte, error) {
	data, err := in.base.ReadFile(name)
	if err != nil {
		return data, err
	}
	v := in.decide(name)
	if v.readCorrupt && len(data) > 0 {
		in.note(KindReadCorrupt)
		c := append([]byte(nil), data...)
		pos := v.corruptBit % uint64(len(c)*8)
		c[pos/8] ^= 1 << (pos % 8)
		return c, nil
	}
	return data, nil
}

// Rename injects torn renames: the call reports success but the
// target keeps its previous contents — the post-crash state when the
// parent-directory fsync never happened. The temp source is consumed
// so the caller sees no residue.
func (in *FSInjector) Rename(oldpath, newpath string) error {
	v := in.decide(newpath)
	if v.tornRename {
		in.note(KindTornRename)
		in.base.Remove(oldpath)
		return nil
	}
	return in.base.Rename(oldpath, newpath)
}

func (in *FSInjector) Remove(name string) error                   { return in.base.Remove(name) }
func (in *FSInjector) ReadDir(name string) ([]fs.DirEntry, error) { return in.base.ReadDir(name) }
func (in *FSInjector) MkdirAll(path string, perm os.FileMode) error {
	return in.base.MkdirAll(path, perm)
}
func (in *FSInjector) Stat(name string) (os.FileInfo, error)  { return in.base.Stat(name) }
func (in *FSInjector) Truncate(name string, size int64) error { return in.base.Truncate(name, size) }
func (in *FSInjector) Glob(pattern string) ([]string, error)  { return in.base.Glob(pattern) }

// faultFile wraps a handle with write/sync fault injection.
type faultFile struct {
	in   *FSInjector
	f    fsx.File
	name string
}

func (ff *faultFile) Write(p []byte) (int, error) {
	v := ff.in.decide(ff.name)
	if v.shortWrite {
		ff.in.note(KindShortWrite)
		n := len(p) / 2
		if n > 0 {
			ff.f.Write(p[:n])
		}
		return n, &FSError{Kind: KindShortWrite, Path: ff.name}
	}
	return ff.f.Write(p)
}

func (ff *faultFile) Read(p []byte) (int, error) { return ff.f.Read(p) }

func (ff *faultFile) Sync() error {
	v := ff.in.decide(ff.name)
	if v.syncErr {
		ff.in.note(KindSyncErr)
		return &FSError{Kind: KindSyncErr, Path: ff.name}
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error { return ff.f.Close() }
func (ff *faultFile) Name() string { return ff.f.Name() }
