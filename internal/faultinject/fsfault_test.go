package faultinject

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"fairmc/internal/fsx"
)

// writeSeq replays a fixed operation sequence and returns which ops failed,
// so two runs with the same (seed, scenario) can be compared.
func writeSeq(t *testing.T, in *FSInjector, dir string) []bool {
	t.Helper()
	var outcome []bool
	for i := 0; i < 30; i++ {
		err := fsx.WriteFileAtomic(in, filepath.Join(dir, "wal-seg"), []byte("record-payload"))
		outcome = append(outcome, err != nil)
	}
	return outcome
}

func TestFSScheduleDeterministic(t *testing.T) {
	sc := FSScenario{Name: "mixed", Rules: []FSRule{
		{Path: "wal", ShortWrite: 0.2, SyncErr: 0.2, TornRename: 0.1},
	}}
	a := writeSeq(t, NewFS(7, sc, fsx.OS), t.TempDir())
	b := writeSeq(t, NewFS(7, sc, fsx.OS), t.TempDir())
	if len(a) != len(b) {
		t.Fatalf("length mismatch: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
	c := writeSeq(t, NewFS(8, sc, fsx.OS), t.TempDir())
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault schedules (suspicious)")
	}
}

func TestFSShortWriteLeavesPrefix(t *testing.T) {
	in := NewFS(1, FSScenario{Rules: []FSRule{{ShortWrite: 1}}}, fsx.OS)
	path := filepath.Join(t.TempDir(), "f")
	f, err := in.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, werr := f.Write([]byte("0123456789"))
	f.Close()
	var fe *FSError
	if !errors.As(werr, &fe) || fe.Kind != KindShortWrite {
		t.Fatalf("want short-write FSError, got n=%d err=%v", n, werr)
	}
	if n != 5 {
		t.Fatalf("short write reported n=%d, want 5", n)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "01234" {
		t.Fatalf("persisted %q, want the 5-byte prefix", got)
	}
	if in.Counts()[KindShortWrite] != 1 {
		t.Fatalf("counts = %v", in.Counts())
	}
}

func TestFSSyncError(t *testing.T) {
	in := NewFS(1, FSScenario{Rules: []FSRule{{SyncErr: 1}}}, fsx.OS)
	f, err := in.OpenFile(filepath.Join(t.TempDir(), "f"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var fe *FSError
	if err := f.Sync(); !errors.As(err, &fe) || fe.Kind != KindSyncErr {
		t.Fatalf("want sync-error FSError, got %v", err)
	}
}

func TestFSTornRenameKeepsOldTarget(t *testing.T) {
	in := NewFS(1, FSScenario{Rules: []FSRule{{TornRename: 1}}}, fsx.OS)
	dir := t.TempDir()
	oldp := filepath.Join(dir, "tmp")
	newp := filepath.Join(dir, "target")
	os.WriteFile(oldp, []byte("new-contents"), 0o644)
	os.WriteFile(newp, []byte("old-contents"), 0o644)
	if err := in.Rename(oldp, newp); err != nil {
		t.Fatalf("torn rename must report success, got %v", err)
	}
	got, _ := os.ReadFile(newp)
	if string(got) != "old-contents" {
		t.Fatalf("target = %q, want previous contents preserved", got)
	}
	if _, err := os.Stat(oldp); !os.IsNotExist(err) {
		t.Fatalf("temp source should be consumed, stat err = %v", err)
	}
}

func TestFSReadCorruptFlipsOneBit(t *testing.T) {
	in := NewFS(3, FSScenario{Rules: []FSRule{{ReadCorrupt: 1}}}, fsx.OS)
	path := filepath.Join(t.TempDir(), "f")
	want := []byte("the quick brown fox jumps over the lazy dog")
	os.WriteFile(path, want, 0o644)
	got, err := in.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("length changed: %d vs %d", len(got), len(want))
	}
	diffBits := 0
	for i := range got {
		x := got[i] ^ want[i]
		for ; x != 0; x &= x - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Fatalf("flipped %d bits, want exactly 1", diffBits)
	}
	// The underlying file is untouched: corruption is a read-path fault.
	onDisk, _ := os.ReadFile(path)
	if string(onDisk) != string(want) {
		t.Fatal("ReadFile corruption mutated the file on disk")
	}
}

func TestFSPathFilter(t *testing.T) {
	in := NewFS(1, FSScenario{Rules: []FSRule{{Path: "spool", SyncErr: 1}}}, fsx.OS)
	dir := t.TempDir()
	f, err := in.OpenFile(filepath.Join(dir, "ledger-seg"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("non-matching path must not fault: %v", err)
	}
	f.Close()
	g, err := in.OpenFile(filepath.Join(dir, "spool-1"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Sync(); err == nil {
		t.Fatal("matching path should fault")
	}
	g.Close()
}

func TestFSOnFaultHook(t *testing.T) {
	in := NewFS(1, FSScenario{Rules: []FSRule{{SyncErr: 1}}}, fsx.OS)
	var kinds []string
	in.OnFault = func(kind string) { kinds = append(kinds, kind) }
	f, _ := in.OpenFile(filepath.Join(t.TempDir(), "f"), os.O_WRONLY|os.O_CREATE, 0o644)
	f.Sync()
	f.Close()
	if len(kinds) != 1 || kinds[0] != KindSyncErr {
		t.Fatalf("OnFault saw %v", kinds)
	}
	if in.Total() != 1 {
		t.Fatalf("Total = %d", in.Total())
	}
}
