// Package faultinject is the chaos layer of the distributed search: a
// deterministic, seed-driven fault injector for HTTP traffic between
// workers and the coordinator.
//
// The injector wraps either side of a connection — an http.RoundTripper
// on the client, a middleware on the server — and can drop, delay,
// duplicate, truncate, and reset requests/responses, or black-hole a
// window of requests to simulate a network partition.
//
// Everything in this repo is replayable from a seed; chaos is no
// exception. Every fault decision is a pure function of
// (seed, scenario, endpoint, request ordinal): the n-th request to a
// given endpoint draws its verdict from a splitmix64 stream keyed by
// the seed and the endpoint path, independent of wall-clock time or
// goroutine interleaving. Re-running the same (seed, scenario) against
// the same request sequence reproduces the identical fault schedule —
// which is what lets ci/chaos_smoke.sh assert that a chaotic run's
// merged report is byte-identical to the fault-free one.
package faultinject

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"fairmc/internal/rng"
)

// Fault kinds, as reported to OnFault and in Counts.
const (
	KindDrop      = "drop"      // request never reaches the server
	KindDelay     = "delay"     // request is forwarded after a pause
	KindDup       = "dup"       // request is delivered twice
	KindTruncate  = "truncate"  // response body is cut short
	KindReset     = "reset"     // response is lost after delivery
	KindPartition = "partition" // request falls in a partition window
)

// Rule is one line of a chaos scenario: which endpoints it matches and
// what misbehavior they get. Probabilities are in [0, 1] and are
// evaluated independently in a fixed order (partition, drop, reset,
// dup, truncate, delay) from the same deterministic stream, so at most
// one terminal fault (drop/reset/partition) applies per request while
// dup, truncate and delay may combine with each other.
type Rule struct {
	// Endpoint selects requests whose URL path contains this substring;
	// "" matches every request.
	Endpoint string

	Drop     float64 // probability the request is dropped before sending
	Reset    float64 // probability the response is discarded after delivery
	Dup      float64 // probability the request is sent twice
	Truncate float64 // probability the response body is cut in half
	Delay    float64 // probability the request is delayed
	// MaxDelay bounds an injected delay; the actual pause is a
	// deterministic fraction of it. Zero with Delay > 0 means 20ms.
	MaxDelay time.Duration

	// PartitionFrom/PartitionTo define a half-open window of per-rule
	// request ordinals [From, To) during which every matching request
	// fails as if the network were partitioned. Zero values disable the
	// window.
	PartitionFrom int
	PartitionTo   int
}

// Scenario is a named set of rules.
type Scenario struct {
	Name  string
	Rules []Rule
}

// DroppedError is the synthetic transport error for drop, reset, and
// partition faults. It satisfies the error interface only — like a real
// severed TCP connection, the caller cannot tell whether the server
// processed the request (it did for reset, did not for drop).
type DroppedError struct {
	Kind string // KindDrop, KindReset, or KindPartition
	Path string
}

func (e *DroppedError) Error() string {
	return fmt.Sprintf("faultinject: %s %s", e.Kind, e.Path)
}

// Injector applies a scenario to HTTP traffic. Create with New; use
// RoundTripper for client-side faults or Middleware for server-side
// ones. Safe for concurrent use; concurrency does not perturb the
// fault schedule because each rule keeps its own request ordinal.
type Injector struct {
	seed     uint64
	scenario Scenario

	// OnFault, when set, observes every injected fault (by kind).
	// Set before the first request; typically wired to
	// obs.Metrics.DistFaultsInjected.
	OnFault func(kind string)

	// Sleep replaces time.Sleep for delay faults (tests); nil means
	// time.Sleep.
	Sleep func(time.Duration)

	mu     sync.Mutex
	seq    []int // per-rule request ordinal
	counts map[string]int64
}

// New returns an injector for the given seed and scenario.
func New(seed uint64, sc Scenario) *Injector {
	return &Injector{
		seed:     seed,
		scenario: sc,
		seq:      make([]int, len(sc.Rules)),
		counts:   map[string]int64{},
	}
}

// Counts returns how many faults of each kind have been injected.
func (in *Injector) Counts() map[string]int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]int64, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// Total returns the total number of injected faults.
func (in *Injector) Total() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var n int64
	for _, v := range in.counts {
		n += v
	}
	return n
}

// verdict is the decision for one request under one rule.
type verdict struct {
	drop, reset, dup, truncate bool
	partition                  bool
	delay                      time.Duration
}

func (v verdict) any() bool {
	return v.drop || v.reset || v.dup || v.truncate || v.partition || v.delay > 0
}

// pathHash is FNV-1a over the path, the endpoint half of the stream
// key.
func pathHash(p string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(p); i++ {
		h ^= uint64(p[i])
		h *= 1099511628211
	}
	return h
}

// decide draws the verdict for the next request to path. The stream is
// keyed by (seed, rule endpoint, ordinal): the i-th matching request of
// a rule always gets the same verdict, whatever else is in flight.
func (in *Injector) decide(path string) verdict {
	in.mu.Lock()
	defer in.mu.Unlock()
	var v verdict
	for i, r := range in.scenario.Rules {
		if r.Endpoint != "" && !strings.Contains(path, r.Endpoint) {
			continue
		}
		ord := in.seq[i]
		in.seq[i]++
		g := rng.New(rng.Mix(rng.Mix(in.seed, pathHash(r.Endpoint)), uint64(ord)+1))
		// Draw every probability in a fixed order so a rule edit that
		// removes one fault kind does not reshuffle the others.
		pDrop := float64(g.Uint64()%1e6) / 1e6
		pReset := float64(g.Uint64()%1e6) / 1e6
		pDup := float64(g.Uint64()%1e6) / 1e6
		pTrunc := float64(g.Uint64()%1e6) / 1e6
		pDelay := float64(g.Uint64()%1e6) / 1e6
		frac := float64(g.Uint64()%1e6) / 1e6

		if r.PartitionTo > r.PartitionFrom && ord >= r.PartitionFrom && ord < r.PartitionTo {
			v.partition = true
		}
		if pDrop < r.Drop {
			v.drop = true
		}
		if pReset < r.Reset {
			v.reset = true
		}
		if pDup < r.Dup {
			v.dup = true
		}
		if pTrunc < r.Truncate {
			v.truncate = true
		}
		if pDelay < r.Delay {
			max := r.MaxDelay
			if max <= 0 {
				max = 20 * time.Millisecond
			}
			if d := time.Duration(frac * float64(max)); d > v.delay {
				v.delay = d
			}
		}
	}
	// Terminal faults shadow each other: partition > drop > reset.
	if v.partition {
		v.drop, v.reset = false, false
	} else if v.drop {
		v.reset = false
	}
	return v
}

func (in *Injector) note(kind string) {
	in.mu.Lock()
	in.counts[kind]++
	in.mu.Unlock()
	if in.OnFault != nil {
		in.OnFault(kind)
	}
}

func (in *Injector) sleep(d time.Duration) {
	if in.Sleep != nil {
		in.Sleep(d)
		return
	}
	time.Sleep(d)
}

// RoundTripper wraps base (nil means http.DefaultTransport) with
// client-side fault injection.
func (in *Injector) RoundTripper(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &roundTripper{in: in, base: base}
}

type roundTripper struct {
	in   *Injector
	base http.RoundTripper
}

func (rt *roundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	in := rt.in
	path := req.URL.Path
	v := in.decide(path)
	if !v.any() {
		return rt.base.RoundTrip(req)
	}
	if v.delay > 0 {
		in.note(KindDelay)
		in.sleep(v.delay)
	}
	if v.partition {
		in.note(KindPartition)
		return nil, &DroppedError{Kind: KindPartition, Path: path}
	}
	if v.drop {
		in.note(KindDrop)
		return nil, &DroppedError{Kind: KindDrop, Path: path}
	}
	if v.dup {
		// Deliver the request twice: the extra delivery exercises the
		// receiver's idempotency handling. Requires a rewindable body
		// (true for all dist calls, which use bytes.Reader bodies).
		if extra := cloneRequest(req); extra != nil {
			in.note(KindDup)
			if resp, err := rt.base.RoundTrip(extra); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}
	resp, err := rt.base.RoundTrip(req)
	if err != nil {
		return resp, err
	}
	if v.reset {
		// The server processed the request, but the client never sees
		// the answer — the fault that flushes out non-idempotent
		// endpoints.
		in.note(KindReset)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, &DroppedError{Kind: KindReset, Path: path}
	}
	if v.truncate {
		in.note(KindTruncate)
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		cut := body[:len(body)/2]
		resp.Body = io.NopCloser(bytes.NewReader(cut))
		resp.ContentLength = int64(len(cut))
		resp.Header.Del("Content-Length")
	}
	return resp, nil
}

// cloneRequest duplicates a request with a rewound body; returns nil if
// the body cannot be replayed.
func cloneRequest(req *http.Request) *http.Request {
	if req.Body == nil {
		return req.Clone(req.Context())
	}
	if req.GetBody == nil {
		return nil
	}
	body, err := req.GetBody()
	if err != nil {
		return nil
	}
	c := req.Clone(req.Context())
	c.Body = body
	return c
}

// Middleware wraps next with server-side fault injection: delays and
// drops (the latter rendered as an aborted 502 so the client sees a
// retryable failure). Duplicate/reset/truncate are client-side-only
// faults; rules carrying them still delay and drop here.
func (in *Injector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		v := in.decide(r.URL.Path)
		if v.delay > 0 {
			in.note(KindDelay)
			in.sleep(v.delay)
		}
		if v.partition || v.drop {
			kind := KindDrop
			if v.partition {
				kind = KindPartition
			}
			in.note(kind)
			http.Error(w, "faultinject: "+kind, http.StatusBadGateway)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// Schedule renders the verdicts a rule stream would produce for the
// first n requests, for reproducibility tests and debugging: same
// (seed, scenario) → same string.
func Schedule(seed uint64, sc Scenario, n int) string {
	in := New(seed, sc)
	var b strings.Builder
	for i := 0; i < n; i++ {
		// Probe every rule endpoint so multi-rule scenarios are fully
		// rendered; paths are the rules' endpoint patterns.
		paths := map[string]bool{}
		for _, r := range sc.Rules {
			paths[r.Endpoint] = true
		}
		ordered := make([]string, 0, len(paths))
		for p := range paths {
			ordered = append(ordered, p)
		}
		sort.Strings(ordered)
		for _, p := range ordered {
			v := in.decide(p)
			fmt.Fprintf(&b, "%d %q drop=%v reset=%v dup=%v trunc=%v part=%v delay=%s\n",
				i, p, v.drop, v.reset, v.dup, v.truncate, v.partition, v.delay)
		}
	}
	return b.String()
}
