package faultinject

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Preset scenario names, usable with Lookup and the CLI's
// -chaos-scenario flag. The dist protocol paths referenced here are
// spelled out (rather than imported) so faultinject stays free of dist
// imports; they match internal/dist/protocol.go.
const (
	// ScenarioFlaky: every endpoint drops 8% of requests and delays 20%
	// by up to 20ms — a lossy, jittery link.
	ScenarioFlaky = "flaky"
	// ScenarioDup: result and heartbeat POSTs are duplicated 25% of the
	// time — the scenario that flushes out non-idempotent endpoints.
	ScenarioDup = "dup"
	// ScenarioPartition: lease/heartbeat/result traffic is black-holed
	// for a window of requests mid-search, then heals.
	ScenarioPartition = "partition"
	// ScenarioStandard is the headline chaos mix used by
	// ci/chaos_smoke.sh and the BENCH_dist chaos row: drops + delays +
	// duplicated deliveries + response resets + truncations + a
	// mid-search partition, all at once.
	ScenarioStandard = "standard"
)

// scenarios maps preset names to their rule sets.
var scenarios = map[string]Scenario{
	ScenarioFlaky: {Name: ScenarioFlaky, Rules: []Rule{
		{Endpoint: "", Drop: 0.08, Delay: 0.20, MaxDelay: 20 * time.Millisecond},
	}},
	ScenarioDup: {Name: ScenarioDup, Rules: []Rule{
		{Endpoint: "/v1/result", Dup: 0.25},
		{Endpoint: "/v1/heartbeat", Dup: 0.25},
	}},
	ScenarioPartition: {Name: ScenarioPartition, Rules: []Rule{
		{Endpoint: "/v1/lease", PartitionFrom: 12, PartitionTo: 24},
		{Endpoint: "/v1/heartbeat", PartitionFrom: 4, PartitionTo: 10},
		{Endpoint: "/v1/result", PartitionFrom: 3, PartitionTo: 6},
	}},
	ScenarioStandard: {Name: ScenarioStandard, Rules: []Rule{
		{Endpoint: "", Drop: 0.06, Delay: 0.20, MaxDelay: 15 * time.Millisecond},
		{Endpoint: "/v1/result", Dup: 0.20, Reset: 0.10},
		{Endpoint: "/v1/heartbeat", Dup: 0.15},
		{Endpoint: "/v1/lease", Truncate: 0.05, PartitionFrom: 16, PartitionTo: 26},
	}},
}

// Lookup returns a preset scenario by name.
func Lookup(name string) (Scenario, bool) {
	sc, ok := scenarios[name]
	return sc, ok
}

// Names lists the preset scenario names in sorted order (for usage
// messages).
func Names() []string {
	out := make([]string, 0, len(scenarios))
	for name := range scenarios {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// MustLookup is Lookup for callers that validated the name already.
func MustLookup(name string) Scenario {
	sc, ok := Lookup(name)
	if !ok {
		panic(fmt.Sprintf("faultinject: unknown scenario %q (have %s)",
			name, strings.Join(Names(), ", ")))
	}
	return sc
}
