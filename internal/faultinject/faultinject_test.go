package faultinject

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// stubTripper records every request it forwards and answers with a
// canned body.
type stubTripper struct {
	calls []string
	body  string
}

func (s *stubTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	var b []byte
	if req.Body != nil {
		b, _ = io.ReadAll(req.Body)
		req.Body.Close()
	}
	s.calls = append(s.calls, req.URL.Path+":"+string(b))
	return &http.Response{
		StatusCode: http.StatusOK,
		Body:       io.NopCloser(strings.NewReader(s.body)),
		Header:     http.Header{},
	}, nil
}

func newRequest(t *testing.T, path, body string) *http.Request {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, "http://x"+path, bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	return req
}

func TestScheduleDeterministic(t *testing.T) {
	for _, name := range Names() {
		sc := MustLookup(name)
		a := Schedule(7, sc, 50)
		b := Schedule(7, sc, 50)
		if a != b {
			t.Fatalf("scenario %q: same (seed, scenario) produced different schedules", name)
		}
		probabilistic := false
		for _, r := range sc.Rules {
			if r.Drop+r.Reset+r.Dup+r.Truncate+r.Delay > 0 {
				probabilistic = true
			}
		}
		if !probabilistic {
			continue // pure partition windows are seed-independent by design
		}
		c := Schedule(8, sc, 50)
		if a == c {
			t.Fatalf("scenario %q: different seeds produced identical schedules", name)
		}
	}
}

func TestScheduleIndependentOfInterleaving(t *testing.T) {
	// The verdict for the i-th request to an endpoint must not depend on
	// traffic to other endpoints: interleave two endpoints in different
	// orders and compare per-endpoint verdict streams via fault counts.
	sc := Scenario{Name: "t", Rules: []Rule{
		{Endpoint: "/a", Drop: 0.5},
		{Endpoint: "/b", Drop: 0.5},
	}}
	run := func(order []string) map[string]int64 {
		in := New(3, sc)
		st := &stubTripper{body: "ok"}
		rt := in.RoundTripper(st)
		for _, p := range order {
			req := newRequest(t, p, "x")
			if resp, err := rt.RoundTrip(req); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
		return in.Counts()
	}
	seq := []string{"/a", "/a", "/b", "/a", "/b", "/b", "/a", "/b"}
	shuffled := []string{"/b", "/a", "/b", "/b", "/a", "/a", "/b", "/a"}
	c1, c2 := run(seq), run(shuffled)
	if c1[KindDrop] != c2[KindDrop] {
		t.Fatalf("interleaving changed the fault schedule: %v vs %v", c1, c2)
	}
}

func TestDropReturnsErrorWithoutForwarding(t *testing.T) {
	sc := Scenario{Rules: []Rule{{Endpoint: "/x", Drop: 1}}}
	in := New(1, sc)
	st := &stubTripper{body: "ok"}
	rt := in.RoundTripper(st)
	_, err := rt.RoundTrip(newRequest(t, "/x", "hello"))
	de, ok := err.(*DroppedError)
	if !ok || de.Kind != KindDrop {
		t.Fatalf("want DroppedError{drop}, got %v", err)
	}
	if len(st.calls) != 0 {
		t.Fatalf("dropped request reached the server: %v", st.calls)
	}
	if in.Counts()[KindDrop] != 1 {
		t.Fatalf("counts = %v", in.Counts())
	}
}

func TestResetForwardsThenFails(t *testing.T) {
	sc := Scenario{Rules: []Rule{{Endpoint: "/x", Reset: 1}}}
	in := New(1, sc)
	st := &stubTripper{body: "ok"}
	rt := in.RoundTripper(st)
	_, err := rt.RoundTrip(newRequest(t, "/x", "hello"))
	de, ok := err.(*DroppedError)
	if !ok || de.Kind != KindReset {
		t.Fatalf("want DroppedError{reset}, got %v", err)
	}
	if len(st.calls) != 1 {
		t.Fatalf("reset must deliver the request exactly once, got %v", st.calls)
	}
}

func TestDupDeliversTwice(t *testing.T) {
	sc := Scenario{Rules: []Rule{{Endpoint: "/x", Dup: 1}}}
	in := New(1, sc)
	st := &stubTripper{body: "ok"}
	rt := in.RoundTripper(st)
	resp, err := rt.RoundTrip(newRequest(t, "/x", "payload"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Fatalf("caller should still get the real response, got %q", body)
	}
	if len(st.calls) != 2 || st.calls[0] != "/x:payload" || st.calls[1] != "/x:payload" {
		t.Fatalf("want two identical deliveries, got %v", st.calls)
	}
}

func TestTruncateCutsBody(t *testing.T) {
	sc := Scenario{Rules: []Rule{{Endpoint: "/x", Truncate: 1}}}
	in := New(1, sc)
	st := &stubTripper{body: "0123456789"}
	rt := in.RoundTripper(st)
	resp, err := rt.RoundTrip(newRequest(t, "/x", ""))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "01234" {
		t.Fatalf("want truncated body %q, got %q", "01234", body)
	}
}

func TestDelayUsesInjectedSleep(t *testing.T) {
	sc := Scenario{Rules: []Rule{{Endpoint: "/x", Delay: 1, MaxDelay: 40 * time.Millisecond}}}
	in := New(1, sc)
	var slept []time.Duration
	in.Sleep = func(d time.Duration) { slept = append(slept, d) }
	st := &stubTripper{body: "ok"}
	rt := in.RoundTripper(st)
	for i := 0; i < 5; i++ {
		resp, err := rt.RoundTrip(newRequest(t, "/x", ""))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if len(slept) != 5 {
		t.Fatalf("want 5 injected delays, got %d", len(slept))
	}
	for _, d := range slept {
		if d < 0 || d >= 40*time.Millisecond {
			t.Fatalf("delay %s out of [0, MaxDelay)", d)
		}
	}
}

func TestPartitionWindow(t *testing.T) {
	sc := Scenario{Rules: []Rule{{Endpoint: "/x", PartitionFrom: 2, PartitionTo: 4}}}
	in := New(1, sc)
	st := &stubTripper{body: "ok"}
	rt := in.RoundTripper(st)
	var failed []int
	for i := 0; i < 6; i++ {
		resp, err := rt.RoundTrip(newRequest(t, "/x", ""))
		if err != nil {
			if de, ok := err.(*DroppedError); !ok || de.Kind != KindPartition {
				t.Fatalf("request %d: want partition error, got %v", i, err)
			}
			failed = append(failed, i)
			continue
		}
		resp.Body.Close()
	}
	if len(failed) != 2 || failed[0] != 2 || failed[1] != 3 {
		t.Fatalf("partition window [2,4) should fail requests 2 and 3, got %v", failed)
	}
}

func TestMiddlewareDropsAndDelays(t *testing.T) {
	sc := Scenario{Rules: []Rule{{Endpoint: "/x", Drop: 1}}}
	in := New(1, sc)
	served := 0
	h := in.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/x", nil))
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("dropped request should 502, got %d", rec.Code)
	}
	if served != 0 {
		t.Fatal("dropped request reached the handler")
	}

	// Unmatched endpoints pass through untouched.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/y", nil))
	if rec.Code != http.StatusOK || served != 1 {
		t.Fatalf("clean request should pass through, code=%d served=%d", rec.Code, served)
	}
}

func TestStandardScenarioInjectsEveryHeadlineFault(t *testing.T) {
	// The acceptance criterion names drops + delays + duplicated
	// responses + a mid-search partition; drive enough traffic through
	// the standard preset to see each kind at least once.
	in := New(1, MustLookup(ScenarioStandard))
	in.Sleep = func(time.Duration) {}
	st := &stubTripper{body: "a body long enough to truncate"}
	rt := in.RoundTripper(st)
	for i := 0; i < 60; i++ {
		for _, p := range []string{"/v1/lease", "/v1/result", "/v1/heartbeat"} {
			req := newRequest(t, p, "x")
			if resp, err := rt.RoundTrip(req); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}
	counts := in.Counts()
	for _, kind := range []string{KindDrop, KindDelay, KindDup, KindPartition} {
		if counts[kind] == 0 {
			t.Fatalf("standard scenario never injected %q over 180 requests: %v", kind, counts)
		}
	}
	if in.Total() == 0 {
		t.Fatal("Total() = 0")
	}
}
