// Package wm is the weak-memory subsystem: shared memory whose
// consistency model is a searched dimension of the checker rather than
// a property of the program.
//
// A Memory is a block of shared variables. Under sequential
// consistency (core.MemSC, the default) it behaves like a volatile
// array: every store is globally visible the moment it executes. Under
// total store order (core.MemTSO) each storing thread gets a private
// FIFO store buffer: stores enter the buffer, loads forward from the
// issuing thread's own buffer first (newest matching entry wins), and
// buffered stores reach memory only when the buffer's *flush agent* —
// a scheduler agent registered through engine.AddAgent — is granted a
// step by the search.
//
// Making the flush a schedulable transition is the point of the
// design: flush nondeterminism lands in the candidate set next to
// thread steps, so DFS/PCT/DPOR enumerate buffer/flush interleavings
// natively, conformance digests cover them, and the fair scheduler's
// priority relation P extends to flush delay. A spinning thread that
// yields (the good-samaritan signal) deprioritizes itself below a
// continuously enabled flush agent, so every fair execution flushes
// every buffer eventually — the checker explores exactly the
// memory-fair executions of "Making Weak Memory Models Fair" (Lahav et
// al.) and "Unified Fairness for Weak Memory Verification" (Abdulla et
// al.), and a divergence under -mm=tso is a genuine TSO liveness bug,
// not a starved buffer. See docs/WEAKMEMORY.md.
package wm

import (
	"encoding/binary"

	"fairmc/internal/core"
	"fairmc/internal/engine"
	"fairmc/internal/tidset"
)

// AuxOwnerShift is the bit position of the owner tid in a "wm.flush"
// OpInfo.Aux: Aux = owner<<AuxOwnerShift | (headVar+1), with headVar+1
// == 0 encoding an empty buffer. The low bits identify the variable
// the next flush writes, so a flush op's Info changes whenever the
// buffer head changes — sleep sets and digests key on it.
const AuxOwnerShift = 20

// MaxVars bounds the variable count of one Memory so a variable index
// always fits below AuxOwnerShift.
const MaxVars = 1<<AuxOwnerShift - 2

// Memory is a block of shared int64 variables governed by a memory
// model. Create one per program with New (model from the engine
// configuration) or NewWithModel (model forced by the caller, used by
// the internal/tso compatibility adapter).
type Memory struct {
	id   engine.ObjID
	name string
	mod  core.MemModel
	cap  int // per-thread buffer capacity; 0 = unbounded
	mem  []int64
	bufs []*buffer // in creation order (deterministic encoding)
	e    *engine.Engine
}

// buffer is one thread's FIFO store buffer: ents[0] is the oldest
// entry, the one the next flush writes to memory.
type buffer struct {
	owner tidset.Tid
	agent tidset.Tid
	ents  []entry
}

type entry struct {
	v   int
	val int64
}

// New creates a Memory of n variables, all zero, governed by the
// memory model the engine was configured with (Config.MemModel /
// Config.TSOBufCap — the -mm and -tso-buf surface).
func New(t *engine.T, name string, n int) *Memory {
	e := t.Engine()
	return NewWithModel(t, name, n, e.MemModel(), e.TSOBufCap())
}

// NewWithModel is New with the memory model and buffer capacity forced
// by the caller instead of read from the engine configuration.
func NewWithModel(t *engine.T, name string, n int, mod core.MemModel, cap int) *Memory {
	if n < 0 || n > MaxVars {
		t.Failf("wm %q: variable count %d out of range [0,%d]", name, n, MaxVars)
	}
	if cap < 0 {
		t.Failf("wm %q: negative buffer capacity %d", name, cap)
	}
	m := &Memory{name: name, mod: mod, cap: cap, mem: make([]int64, n), e: t.Engine()}
	m.id = t.Engine().RegisterObjectBy(t, m)
	return m
}

// Model returns the memory model this Memory runs under.
func (m *Memory) Model() core.MemModel { return m.mod }

// ID returns the object's engine id.
func (m *Memory) ID() engine.ObjID { return m.id }

// ObjectInfo implements engine.Object.
func (m *Memory) ObjectInfo() (engine.ObjID, string, string) {
	return m.id, "wm", m.name
}

// AppendState implements engine.Object: memory content, then every
// store buffer (owner and FIFO entries) in creation order.
func (m *Memory) AppendState(buf []byte) []byte {
	return m.appendState(buf, nil)
}

// AppendStateMapped implements engine.CanonicalObject: buffer owners
// are thread ids and must be canonicalized.
func (m *Memory) AppendStateMapped(buf []byte, mapTid func(tidset.Tid) tidset.Tid) []byte {
	return m.appendState(buf, mapTid)
}

func (m *Memory) appendState(buf []byte, mapTid func(tidset.Tid) tidset.Tid) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(m.mem)))
	for _, v := range m.mem {
		buf = binary.AppendVarint(buf, v)
	}
	buf = binary.AppendUvarint(buf, uint64(len(m.bufs)))
	for _, b := range m.bufs {
		owner := b.owner
		if mapTid != nil {
			owner = mapTid(owner)
		}
		buf = binary.AppendVarint(buf, int64(owner))
		buf = binary.AppendUvarint(buf, uint64(len(b.ents)))
		for _, e := range b.ents {
			buf = binary.AppendVarint(buf, int64(e.v))
			buf = binary.AppendVarint(buf, e.val)
		}
	}
	return buf
}

// bufFor returns tid's store buffer, or nil. Linear scan: a program
// has a handful of storing threads, and creation order must stay the
// deterministic iteration order anyway.
func (m *Memory) bufFor(tid tidset.Tid) *buffer {
	for _, b := range m.bufs {
		if b.owner == tid {
			return b
		}
	}
	return nil
}

func (m *Memory) checkVar(t *engine.T, v int) {
	if v < 0 || v >= len(m.mem) {
		t.Failf("wm %q: variable %d out of range [0,%d)", m.name, v, len(m.mem))
	}
}

// Load reads variable v. Under TSO the load forwards from the calling
// thread's own store buffer when it holds an entry for v (the newest
// such entry — store-to-load forwarding); otherwise it reads memory.
func (m *Memory) Load(t *engine.T, v int) int64 {
	m.checkVar(t, v)
	op := &loadOp{m: m, tid: t.ID(), v: v}
	t.Do(op)
	return op.res
}

// Store writes variable v. Under SC the store hits memory directly;
// under TSO it enters the calling thread's store buffer (created — with
// its flush agent — on the thread's first store) and becomes globally
// visible only when a flush step drains it. With a bounded buffer
// (TSOBufCap > 0) a store into a full buffer blocks until a flush
// makes room — the storer-stall path of hardware TSO.
func (m *Memory) Store(t *engine.T, v int, x int64) {
	m.checkVar(t, v)
	if m.mod != core.MemTSO {
		t.Do(&scStoreOp{m: m, v: v, x: x})
		return
	}
	t.Do(&tsoStoreOp{m: m, tid: t.ID(), name: t.Name(), v: v, x: x})
}

// Fence drains the calling thread's store buffer: the fence transition
// is enabled only once the buffer is empty, so the thread blocks —
// without spinning — until the flush agent has drained every earlier
// store. It is a yielding transition (the good-samaritan hint): a
// fence is an explicit wait for the rest of the system, so it closes
// the thread's fairness window instead of looking like a busy loop to
// the livelock detector. Under SC it is a no-op scheduling point with
// the same yield semantics.
func (m *Memory) Fence(t *engine.T) {
	t.Do(&fenceOp{m: m, tid: t.ID()})
}

// Drain blocks until every thread's store buffer is empty. The
// internal/tso adapter's Close uses it to make all writes visible
// before a harness inspects memory; unlike Fence it waits for all
// buffers, not just the caller's.
func (m *Memory) Drain(t *engine.T) {
	t.Do(&drainOp{m: m})
}

// Peek returns variable v's memory value without a scheduling point
// and without forwarding. Harness-side assertions only; buffered
// stores are invisible to it.
func (m *Memory) Peek(v int) int64 { return m.mem[v] }

// loadOp reads a variable, forwarding from the issuing thread's own
// buffer under TSO.
type loadOp struct {
	m   *Memory
	tid tidset.Tid
	v   int
	res int64
}

func (o *loadOp) Enabled() bool { return true }
func (o *loadOp) Execute() engine.Op {
	m := o.m
	if m.mod == core.MemTSO {
		if b := m.bufFor(o.tid); b != nil {
			for i := len(b.ents) - 1; i >= 0; i-- {
				if b.ents[i].v == o.v {
					o.res = b.ents[i].val
					m.e.WM().Forwards++
					return nil
				}
			}
		}
	}
	o.res = m.mem[o.v]
	return nil
}
func (o *loadOp) Yielding() bool { return false }
func (o *loadOp) Info() engine.OpInfo {
	return engine.OpInfo{Kind: "wm.read", Obj: o.m.id, Aux: int64(o.v)}
}

// scStoreOp is a store under SC: straight to memory.
type scStoreOp struct {
	m *Memory
	v int
	x int64
}

func (o *scStoreOp) Enabled() bool { return true }
func (o *scStoreOp) Execute() engine.Op {
	o.m.mem[o.v] = o.x
	return nil
}
func (o *scStoreOp) Yielding() bool { return false }
func (o *scStoreOp) Info() engine.OpInfo {
	return engine.OpInfo{Kind: "wm.write", Obj: o.m.id, Aux: int64(o.v)}
}

// tsoStoreOp is a store under TSO: append to the issuing thread's
// buffer. The thread's first store creates the buffer and registers
// its flush agent, which allocates a thread id — such stores report
// kind "wm.buf1" so the independence oracle treats them like the other
// tid-allocating (lifecycle) transitions. Firstness is computed at
// Info time and is deterministic: only the owning thread ever creates
// its buffer, and no step runs between a decision and its execution.
type tsoStoreOp struct {
	m    *Memory
	tid  tidset.Tid
	name string
	v    int
	x    int64
}

func (o *tsoStoreOp) Enabled() bool {
	if o.m.cap == 0 {
		return true
	}
	b := o.m.bufFor(o.tid)
	return b == nil || len(b.ents) < o.m.cap
}

func (o *tsoStoreOp) Execute() engine.Op {
	m := o.m
	b := m.bufFor(o.tid)
	if b == nil {
		b = &buffer{owner: o.tid}
		m.bufs = append(m.bufs, b)
		b.agent = m.e.AddAgent("flush:"+o.name, &flushOp{m: m, b: b})
	}
	b.ents = append(b.ents, entry{v: o.v, val: o.x})
	m.e.WM().BufferedStores++
	return nil
}
func (o *tsoStoreOp) Yielding() bool { return false }
func (o *tsoStoreOp) Info() engine.OpInfo {
	kind := "wm.buf"
	if o.m.bufFor(o.tid) == nil {
		kind = "wm.buf1"
	}
	return engine.OpInfo{Kind: kind, Obj: o.m.id, Aux: int64(o.v)}
}

// flushOp is a flush agent's persistent pending op: enabled while its
// buffer holds entries, each execution writes the oldest entry to
// memory. Aux encodes owner and head variable (see AuxOwnerShift) so
// the op's identity tracks the buffer state.
type flushOp struct {
	m *Memory
	b *buffer
}

func (o *flushOp) Enabled() bool { return len(o.b.ents) > 0 }
func (o *flushOp) Execute() engine.Op {
	head := o.b.ents[0]
	o.b.ents = o.b.ents[1:]
	if len(o.b.ents) == 0 {
		o.b.ents = nil
	}
	o.m.mem[head.v] = head.val
	o.m.e.WM().Flushes++
	return nil
}
func (o *flushOp) Yielding() bool { return false }
func (o *flushOp) Info() engine.OpInfo {
	aux := int64(o.b.owner) << AuxOwnerShift
	if len(o.b.ents) > 0 {
		aux |= int64(o.b.ents[0].v) + 1
	}
	return engine.OpInfo{Kind: "wm.flush", Obj: o.m.id, Aux: aux}
}

// fenceOp blocks until the issuing thread's buffer is empty. Yielding:
// a fence is a declared wait, so it closes the fairness window.
type fenceOp struct {
	m   *Memory
	tid tidset.Tid
}

func (o *fenceOp) Enabled() bool {
	if o.m.mod != core.MemTSO {
		return true
	}
	b := o.m.bufFor(o.tid)
	return b == nil || len(b.ents) == 0
}
func (o *fenceOp) Execute() engine.Op {
	o.m.e.WM().Fences++
	return nil
}
func (o *fenceOp) Yielding() bool { return true }
func (o *fenceOp) Info() engine.OpInfo {
	return engine.OpInfo{Kind: "wm.fence", Obj: o.m.id, Aux: int64(o.tid)}
}

// drainOp blocks until every buffer is empty (Memory.Drain).
type drainOp struct {
	m *Memory
}

func (o *drainOp) Enabled() bool {
	for _, b := range o.m.bufs {
		if len(b.ents) > 0 {
			return false
		}
	}
	return true
}
func (o *drainOp) Execute() engine.Op { return nil }
func (o *drainOp) Yielding() bool     { return true }
func (o *drainOp) Info() engine.OpInfo {
	return engine.OpInfo{Kind: "wm.drain", Obj: o.m.id}
}
