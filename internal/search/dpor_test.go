package search_test

import (
	"testing"

	"fairmc/internal/engine"
	"fairmc/internal/fuzzprog"
	"fairmc/internal/search"
	"fairmc/internal/syncmodel"
)

func TestDPORFindsRace(t *testing.T) {
	rep := search.Explore(racyIncrement, search.Options{
		Fair:         false,
		ContextBound: -1,
		MaxSteps:     10000,
		DPOR:         true,
	})
	if rep.FirstBug == nil {
		t.Fatalf("DPOR missed the lost-update race (%d executions)", rep.Executions)
	}
}

func TestDPORFindsDeadlock(t *testing.T) {
	abba := func(t *engine.T) {
		a := syncmodel.NewMutex(t, "a")
		b := syncmodel.NewMutex(t, "b")
		t.Go("ab", func(t *engine.T) {
			a.Lock(t)
			b.Lock(t)
			b.Unlock(t)
			a.Unlock(t)
		})
		t.Go("ba", func(t *engine.T) {
			b.Lock(t)
			a.Lock(t)
			a.Unlock(t)
			b.Unlock(t)
		})
	}
	rep := search.Explore(abba, search.Options{
		Fair: false, ContextBound: -1, MaxSteps: 10000, DPOR: true,
	})
	if rep.FirstBug == nil || rep.FirstBug.Outcome != engine.Deadlock {
		t.Fatalf("DPOR missed the deadlock: %+v", rep)
	}
}

// parallel3 is the maximally independent workload: DPOR should
// collapse the interleaving explosion to near-linear.
func parallel3(t *engine.T) {
	vars := make([]*syncmodel.IntVar, 3)
	for i := range vars {
		vars[i] = syncmodel.NewIntVar(t, "v", 0)
	}
	wg := syncmodel.NewWaitGroup(t, "wg", 3)
	for i := 0; i < 3; i++ {
		i := i
		t.Go("w", func(t *engine.T) {
			vars[i].Store(t, 1)
			vars[i].Store(t, 2)
			wg.Done(t)
		})
	}
	wg.Wait(t)
}

func TestDPORReducesExecutions(t *testing.T) {
	plain := search.Explore(parallel3, search.Options{
		Fair: false, ContextBound: -1, MaxSteps: 10000,
	})
	dpor := search.Explore(parallel3, search.Options{
		Fair: false, ContextBound: -1, MaxSteps: 10000, DPOR: true,
	})
	if !plain.Exhausted || !dpor.Exhausted {
		t.Fatalf("searches not exhausted: plain %+v dpor %+v", plain, dpor)
	}
	// The conservative variant (no happens-before filtering) keeps
	// roughly a 9x reduction on this workload; demand at least 5x.
	if dpor.Executions*5 > plain.Executions {
		t.Fatalf("DPOR reduction too weak: %d vs %d", dpor.Executions, plain.Executions)
	}
	t.Logf("executions: plain %d, DPOR %d", plain.Executions, dpor.Executions)
}

func TestDPORComposesWithSleepSets(t *testing.T) {
	both := search.Explore(parallel3, search.Options{
		Fair: false, ContextBound: -1, MaxSteps: 10000, DPOR: true, SleepSets: true,
	})
	if !both.Exhausted {
		t.Fatalf("not exhausted: %+v", both)
	}
	solo := search.Explore(parallel3, search.Options{
		Fair: false, ContextBound: -1, MaxSteps: 10000, DPOR: true,
	})
	if both.Executions > solo.Executions {
		t.Fatalf("sleep sets on top of DPOR increased executions: %d > %d",
			both.Executions, solo.Executions)
	}
}

// TestDPORBugParityWithFullDFS checks the bug-preservation guarantee
// differentially: across seeded terminating programs (some with a
// planted assertion), DPOR finds a bug iff the full DFS does.
func TestDPORBugParityWithFullDFS(t *testing.T) {
	// A transient-state bug program parameterized by whether the
	// window exists.
	transient := func(buggy bool) func(*engine.T) {
		return func(t *engine.T) {
			x := syncmodel.NewIntVar(t, "x", 0)
			m := syncmodel.NewMutex(t, "m")
			wg := syncmodel.NewWaitGroup(t, "wg", 2)
			t.Go("A", func(t *engine.T) {
				if !buggy {
					m.Lock(t)
				}
				x.Store(t, 1)
				x.Store(t, 0)
				if !buggy {
					m.Unlock(t)
				}
				wg.Done(t)
			})
			t.Go("B", func(t *engine.T) {
				if !buggy {
					m.Lock(t)
				}
				t.Assert(x.Load(t) != 1, "transient state observed")
				if !buggy {
					m.Unlock(t)
				}
				wg.Done(t)
			})
			wg.Wait(t)
		}
	}
	for _, buggy := range []bool{false, true} {
		plain := search.Explore(transient(buggy), search.Options{
			Fair: false, ContextBound: -1, MaxSteps: 10000,
		})
		for _, sleep := range []bool{false, true} {
			dpor := search.Explore(transient(buggy), search.Options{
				Fair: false, ContextBound: -1, MaxSteps: 10000,
				DPOR: true, SleepSets: sleep,
			})
			if (plain.FirstBug != nil) != (dpor.FirstBug != nil) {
				t.Fatalf("buggy=%v sleep=%v: DFS found=%v, DPOR found=%v",
					buggy, sleep, plain.FirstBug != nil, dpor.FirstBug != nil)
			}
		}
	}
	// Clean generated programs: DPOR must stay clean and exhaust.
	cfg := fuzzprog.DefaultConfig()
	cfg.AllowSpin = false
	cfg.OpsPerThread = 3
	for seed := uint64(0); seed < 15; seed++ {
		prog := fuzzprog.Generate(cfg, seed)
		for _, sleep := range []bool{false, true} {
			rep := search.Explore(prog, search.Options{
				Fair: false, ContextBound: -1, MaxSteps: 1 << 16,
				DPOR: true, SleepSets: sleep,
			})
			if rep.FirstBug != nil {
				t.Fatalf("seed %d sleep=%v: DPOR false finding:\n%s",
					seed, sleep, rep.FirstBug.FormatTrace())
			}
			if !rep.Exhausted {
				t.Fatalf("seed %d sleep=%v: DPOR did not exhaust", seed, sleep)
			}
		}
	}
}

func TestDPORRequiresPlainSearch(t *testing.T) {
	for _, opts := range []search.Options{
		{DPOR: true, Fair: true},
		{DPOR: true, RandomWalk: true, MaxExecutions: 1},
		{DPOR: true, DepthBound: 10},
		{DPOR: true, StatefulPrune: true},
	} {
		opts := opts
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %+v", opts)
				}
			}()
			search.Explore(parallel3, opts)
		}()
	}
}
