package search_test

import (
	"testing"

	"fairmc/internal/engine"
	"fairmc/internal/search"
	"fairmc/internal/state"
	"fairmc/internal/syncmodel"
)

// fig3 is the paper's Figure 3 spin-loop program.
func fig3(t *engine.T) {
	x := syncmodel.NewIntVar(t, "x", 0)
	hu := t.Go("u", func(t *engine.T) {
		for {
			t.Label(1)
			if x.Load(t) == 1 {
				break
			}
			t.Yield()
		}
	})
	ht := t.Go("t", func(t *engine.T) {
		x.Store(t, 1)
	})
	ht.Join(t)
	hu.Join(t)
}

func TestChooseFanout(t *testing.T) {
	// A single thread with one Choose(3): exactly 3 executions.
	rep := search.Explore(func(t *engine.T) {
		t.Choose(3)
	}, search.Options{Fair: true, ContextBound: -1})
	if !rep.Exhausted {
		t.Fatal("search not exhausted")
	}
	if rep.Executions != 3 {
		t.Fatalf("executions = %d, want 3", rep.Executions)
	}
	if rep.Violations != 0 || rep.Deadlocks != 0 {
		t.Fatalf("unexpected bugs: %+v", rep)
	}
}

func TestNestedChooseFanout(t *testing.T) {
	var seen [2][2]bool
	rep := search.Explore(func(t *engine.T) {
		a := t.Choose(2)
		b := t.Choose(2)
		seen[a][b] = true
	}, search.Options{Fair: true, ContextBound: -1})
	if rep.Executions != 4 {
		t.Fatalf("executions = %d, want 4", rep.Executions)
	}
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			if !seen[a][b] {
				t.Fatalf("combination (%d,%d) never explored", a, b)
			}
		}
	}
}

// racyIncrement is a lost-update race: two threads read-modify-write a
// shared counter without a lock. The final assertion fails only when
// one thread is preempted between its load and its store.
func racyIncrement(t *engine.T) {
	x := syncmodel.NewIntVar(t, "x", 0)
	wg := syncmodel.NewWaitGroup(t, "wg", 2)
	for i := 0; i < 2; i++ {
		t.Go("inc", func(t *engine.T) {
			v := x.Load(t)
			x.Store(t, v+1)
			wg.Done(t)
		})
	}
	wg.Wait(t)
	t.Assert(x.Load(t) == 2, "lost update")
}

func TestContextBoundZeroMissesRace(t *testing.T) {
	rep := search.Explore(racyIncrement, search.Options{Fair: true, ContextBound: 0})
	if !rep.Exhausted {
		t.Fatal("cb=0 search not exhausted")
	}
	if rep.Violations != 0 {
		t.Fatalf("cb=0 found the race (%d violations); non-preemptive search should not", rep.Violations)
	}
}

func TestContextBoundOneFindsRace(t *testing.T) {
	rep := search.Explore(racyIncrement, search.Options{Fair: true, ContextBound: 1})
	if rep.FirstBug == nil {
		t.Fatal("cb=1 did not find the lost-update race")
	}
	if rep.FirstBug.Outcome != engine.Violation {
		t.Fatalf("bug outcome = %v", rep.FirstBug.Outcome)
	}
	if len(rep.FirstBug.Trace) == 0 {
		t.Fatal("bug has no repro trace")
	}
	if rep.FirstBugExecution < 1 || rep.FirstBugExecution > rep.Executions {
		t.Fatalf("bug execution index %d out of range", rep.FirstBugExecution)
	}
}

func TestUnboundedDFSFindsRace(t *testing.T) {
	rep := search.Explore(racyIncrement, search.Options{Fair: true, ContextBound: -1})
	if rep.FirstBug == nil {
		t.Fatal("dfs did not find the lost-update race")
	}
}

func TestDeadlockFoundAndCounted(t *testing.T) {
	abba := func(t *engine.T) {
		a := syncmodel.NewMutex(t, "a")
		b := syncmodel.NewMutex(t, "b")
		t.Go("ab", func(t *engine.T) {
			a.Lock(t)
			b.Lock(t)
			b.Unlock(t)
			a.Unlock(t)
		})
		t.Go("ba", func(t *engine.T) {
			b.Lock(t)
			a.Lock(t)
			a.Unlock(t)
			b.Unlock(t)
		})
	}
	rep := search.Explore(abba, search.Options{Fair: true, ContextBound: -1})
	if rep.FirstBug == nil || rep.FirstBug.Outcome != engine.Deadlock {
		t.Fatalf("deadlock not found: %+v", rep)
	}
	if rep.Deadlocks != 1 {
		t.Fatalf("deadlocks = %d", rep.Deadlocks)
	}
}

func TestFairSearchExhaustsFig3(t *testing.T) {
	// The spin loop makes the state space cyclic; the fair scheduler
	// prunes the unfair unrollings so the full DFS terminates.
	rep := search.Explore(fig3, search.Options{
		Fair:         true,
		ContextBound: -1,
		MaxSteps:     10000,
	})
	if !rep.Exhausted {
		t.Fatalf("fair dfs did not exhaust: %+v", rep)
	}
	if rep.NonTerminating != 0 {
		t.Fatalf("fair dfs hit the step bound %d times", rep.NonTerminating)
	}
	if rep.Violations != 0 || rep.Deadlocks != 0 {
		t.Fatalf("unexpected bugs: %+v", rep)
	}
}

func TestUnfairSearchDivergesWithoutDepthBound(t *testing.T) {
	// Without fairness, the very same program produces executions
	// that unroll the spin cycle up to the step cap.
	rep := search.Explore(fig3, search.Options{
		Fair:          false,
		ContextBound:  -1,
		MaxSteps:      200,
		MaxExecutions: 50,
	})
	if rep.Exhausted {
		t.Fatal("unfair unbounded dfs should not exhaust a cyclic space this quickly")
	}
	if rep.NonTerminating == 0 {
		t.Fatal("expected nonterminating executions")
	}
}

func TestDepthBoundWithoutTailCountsNonterminating(t *testing.T) {
	// Figure 2's measurement: prune at the depth bound and count.
	rep := search.Explore(fig3, search.Options{
		Fair:         false,
		ContextBound: -1,
		DepthBound:   12,
		RandomTail:   false,
	})
	if !rep.Exhausted {
		t.Fatalf("depth-bounded search did not exhaust: %+v", rep)
	}
	if rep.NonTerminating == 0 {
		t.Fatal("expected executions cut at the depth bound")
	}
}

func TestDepthBoundRandomTailTerminates(t *testing.T) {
	rep := search.Explore(fig3, search.Options{
		Fair:         false,
		ContextBound: -1,
		DepthBound:   12,
		RandomTail:   true,
		MaxSteps:     5000,
		Seed:         1,
	})
	if !rep.Exhausted {
		t.Fatalf("depth-bounded search did not exhaust: %+v", rep)
	}
	// The random tail is fair with probability 1, so (almost) all
	// executions finish; with this seed none should hit the cap.
	if rep.NonTerminating != 0 {
		t.Fatalf("nonterminating = %d with random tail", rep.NonTerminating)
	}
}

func TestStatefulPruneTerminatesUnfairSearch(t *testing.T) {
	cov := state.NewCoverage()
	rep := search.Explore(fig3, search.Options{
		Fair:          false,
		ContextBound:  -1,
		MaxSteps:      10000,
		StatefulPrune: true,
		Monitor:       cov,
	})
	if !rep.Exhausted {
		t.Fatalf("stateful search did not exhaust: %+v", rep)
	}
	if rep.PrunedVisited == 0 {
		t.Fatal("stateful search never pruned on the cyclic space")
	}
	if cov.Count() < 5 {
		t.Fatalf("coverage = %d states, suspiciously few", cov.Count())
	}
}

func TestFairCoverageMatchesStatefulReference(t *testing.T) {
	// The heart of Table 2: the fair search visits every state the
	// stateful reference search reaches.
	ref := state.NewCoverage()
	search.Explore(fig3, search.Options{
		Fair:          false,
		ContextBound:  -1,
		MaxSteps:      10000,
		StatefulPrune: true,
		Monitor:       ref,
	})
	cov := state.NewCoverage()
	rep := search.Explore(fig3, search.Options{
		Fair:         true,
		ContextBound: -1,
		MaxSteps:     10000,
		Monitor:      cov,
	})
	if !rep.Exhausted {
		t.Fatalf("fair search did not exhaust: %+v", rep)
	}
	if missing := cov.Missing(ref); len(missing) != 0 {
		t.Fatalf("fair search missed %d of %d reference states", len(missing), ref.Count())
	}
}

func TestStatefulPruneWithFairPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("StatefulPrune+Fair did not panic")
		}
	}()
	search.Explore(fig3, search.Options{Fair: true, StatefulPrune: true})
}

func TestMaxExecutionsBudget(t *testing.T) {
	rep := search.Explore(racyIncrement, search.Options{
		Fair:                   true,
		ContextBound:           -1,
		MaxExecutions:          2,
		ContinueAfterViolation: true,
	})
	if !rep.ExecBounded {
		t.Fatal("ExecBounded not set")
	}
	if rep.Executions != 2 {
		t.Fatalf("executions = %d, want 2", rep.Executions)
	}
}

func TestContinueAfterViolationCountsAll(t *testing.T) {
	rep := search.Explore(racyIncrement, search.Options{
		Fair:                   true,
		ContextBound:           1,
		ContinueAfterViolation: true,
	})
	if !rep.Exhausted {
		t.Fatal("search not exhausted")
	}
	if rep.Violations < 2 {
		t.Fatalf("violations = %d, expected several distinct buggy interleavings", rep.Violations)
	}
	if rep.FirstBug == nil {
		t.Fatal("first bug not recorded")
	}
}

func TestSearchDeterminism(t *testing.T) {
	run := func() *search.Report {
		return search.Explore(racyIncrement, search.Options{
			Fair:                   true,
			ContextBound:           2,
			ContinueAfterViolation: true,
			Seed:                   7,
		})
	}
	a, b := run(), run()
	if a.Executions != b.Executions || a.Violations != b.Violations ||
		a.TotalSteps != b.TotalSteps || a.FirstBugExecution != b.FirstBugExecution {
		t.Fatalf("search not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestDivergenceReportedInFairMode(t *testing.T) {
	// A genuine livelock under fair scheduling: two threads forever
	// handing a token back and forth with yields. The fair scheduler
	// cannot prune it (the cycle is fair), so the search reports a
	// divergence — the paper's livelock-detection mechanism.
	livelock := func(t *engine.T) {
		turn := syncmodel.NewIntVar(t, "turn", 0)
		for i := 0; i < 2; i++ {
			me := int64(i)
			t.Go("p", func(t *engine.T) {
				for {
					t.Label(1)
					if turn.Load(t) == me {
						turn.Store(t, 1-me)
					}
					t.Yield()
				}
			})
		}
	}
	rep := search.Explore(livelock, search.Options{
		Fair:         true,
		ContextBound: -1,
		MaxSteps:     300,
	})
	if rep.Divergence == nil {
		t.Fatalf("no divergence reported: %+v", rep)
	}
	if rep.Divergence.Outcome != engine.Diverged {
		t.Fatalf("divergence outcome = %v", rep.Divergence.Outcome)
	}
	if len(rep.Divergence.Trace) == 0 {
		t.Fatal("divergence has no trace")
	}
}

func TestRandomWalkFindsRace(t *testing.T) {
	rep := search.Explore(racyIncrement, search.Options{
		Fair:          true,
		RandomWalk:    true,
		MaxExecutions: 5000,
		MaxSteps:      1000,
		Seed:          3,
	})
	if rep.FirstBug == nil {
		t.Fatalf("random walk missed the race in %d executions", rep.Executions)
	}
	if rep.Exhausted {
		t.Fatal("random walk claims exhaustion")
	}
}

func TestRandomWalkDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) *search.Report {
		return search.Explore(racyIncrement, search.Options{
			Fair:                   true,
			RandomWalk:             true,
			MaxExecutions:          200,
			MaxSteps:               1000,
			Seed:                   seed,
			ContinueAfterViolation: true,
		})
	}
	a, b := run(9), run(9)
	if a.Violations != b.Violations || a.TotalSteps != b.TotalSteps {
		t.Fatalf("random walk not reproducible: %+v vs %+v", a, b)
	}
	c := run(10)
	if c.TotalSteps == a.TotalSteps && c.Violations == a.Violations {
		t.Log("note: different seeds produced identical statistics (possible but unlikely)")
	}
}

func TestRandomWalkWithoutBudgetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unbounded RandomWalk")
		}
	}()
	search.Explore(racyIncrement, search.Options{RandomWalk: true})
}
