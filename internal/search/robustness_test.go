package search_test

import (
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"fairmc/internal/engine"
	"fairmc/internal/search"
	"fairmc/internal/syncmodel"
)

// wedger spawns a thread that blocks on a raw Go channel — outside the
// conc API, invisible to the scheduler — so every execution wedges
// once the watchdog fires.
func wedger(t *engine.T) {
	x := syncmodel.NewIntVar(t, "x", 0)
	block := make(chan struct{})
	h := t.Go("stuck", func(t *engine.T) {
		x.Store(t, 1)
		<-block // escapes the checker: no scheduling point ever again
	})
	h.Join(t)
}

// normalizeFaults additionally strips the fault bookkeeping, for
// comparing a fault-injected report against a clean baseline.
func normalizeFaults(r *search.Report) *search.Report {
	c := *normalize(r)
	c.WorkerFailures = nil
	return &c
}

// TestSearchWatchdogWedge: a thread stuck outside the conc API ends
// the search with a Wedged finding instead of hanging it forever.
func TestSearchWatchdogWedge(t *testing.T) {
	rep := search.Explore(wedger, search.Options{
		Fair:         true,
		ContextBound: -1,
		MaxSteps:     1000,
		Watchdog:     30 * time.Millisecond,
	})
	if rep.Wedges != 1 || rep.FirstWedge == nil {
		t.Fatalf("wedges = %d, FirstWedge = %v; want 1 wedge recorded", rep.Wedges, rep.FirstWedge)
	}
	if rep.FirstWedgeExecution != 1 {
		t.Fatalf("FirstWedgeExecution = %d, want 1", rep.FirstWedgeExecution)
	}
	w := rep.FirstWedge.Wedge
	if w == nil || w.Name != "stuck" {
		t.Fatalf("wedge info = %+v, want thread %q identified", w, "stuck")
	}
	if rep.Exhausted {
		t.Fatal("a wedge-stopped search must not report exhaustion")
	}
}

// TestStrideWorkerPanicRetried: a worker that crashes once on one
// execution index is retried inline; the final report is identical to
// the uninjected run, with the crash recorded as history.
func TestStrideWorkerPanicRetried(t *testing.T) {
	opts := search.Options{
		Fair:                   true,
		RandomWalk:             true,
		MaxExecutions:          64,
		MaxSteps:               1000,
		Seed:                   3,
		Parallelism:            4,
		ContinueAfterViolation: true,
	}
	baseline := search.Explore(racyIncrement, opts)

	var fired atomic.Bool
	search.SetWorkerFaultHook(func(mode string, unit int64) {
		if mode == "stride" && unit == 5 && fired.CompareAndSwap(false, true) {
			panic("injected stride fault")
		}
	})
	defer search.SetWorkerFaultHook(nil)
	injected := search.Explore(racyIncrement, opts)

	if !reflect.DeepEqual(normalizeFaults(baseline), normalizeFaults(injected)) {
		t.Fatalf("injected run differs from baseline:\n%+v\nvs\n%+v", baseline, injected)
	}
	if len(injected.WorkerFailures) != 1 {
		t.Fatalf("worker failures = %+v, want exactly one", injected.WorkerFailures)
	}
	wf := injected.WorkerFailures[0]
	if wf.Mode != "stride" || wf.Unit != 5 || wf.Attempt != 1 || wf.Panic != "injected stride fault" {
		t.Fatalf("failure record = %+v", wf)
	}
	if wf.Stack == "" {
		t.Fatal("failure record is missing the goroutine stack")
	}
	if injected.Skipped != 0 {
		t.Fatalf("skipped = %d after a successful retry, want 0", injected.Skipped)
	}
}

// TestStrideWorkerPanicSkipped: an execution index that crashes on
// every attempt is abandoned after the retry budget — reported as
// Skipped with both attempts on record, never a hang or a silent gap.
func TestStrideWorkerPanicSkipped(t *testing.T) {
	opts := search.Options{
		Fair:                   true,
		RandomWalk:             true,
		MaxExecutions:          64,
		MaxSteps:               1000,
		Seed:                   3,
		Parallelism:            4,
		ContinueAfterViolation: true,
	}
	search.SetWorkerFaultHook(func(mode string, unit int64) {
		if mode == "stride" && unit == 5 {
			panic("persistent stride fault")
		}
	})
	defer search.SetWorkerFaultHook(nil)
	rep := search.Explore(racyIncrement, opts)

	if rep.Skipped != 1 {
		t.Fatalf("skipped = %d, want 1", rep.Skipped)
	}
	if rep.Executions != 63 {
		t.Fatalf("executions = %d, want 63 (64 minus the skipped index)", rep.Executions)
	}
	if len(rep.WorkerFailures) != 2 {
		t.Fatalf("worker failures = %+v, want both attempts", rep.WorkerFailures)
	}
	for i, wf := range rep.WorkerFailures {
		if wf.Unit != 5 || wf.Attempt != i+1 {
			t.Fatalf("failure %d = %+v, want unit 5 attempt %d", i, wf, i+1)
		}
	}
}

// TestPrefixWorkerPanicRetried: a crash while exploring one frontier
// subtree is requeued once; the merged report matches the uninjected
// parallel run.
func TestPrefixWorkerPanicRetried(t *testing.T) {
	opts := search.Options{
		Fair:         true,
		ContextBound: -1,
		MaxSteps:     1000,
		Parallelism:  4,
	}
	baseline := search.Explore(fig3, opts)
	if !baseline.Exhausted {
		t.Fatal("baseline did not exhaust; pick a smaller program")
	}

	var fired atomic.Bool
	search.SetWorkerFaultHook(func(mode string, unit int64) {
		if mode == "prefix" && unit == 2 && fired.CompareAndSwap(false, true) {
			panic("injected prefix fault")
		}
	})
	defer search.SetWorkerFaultHook(nil)
	injected := search.Explore(fig3, opts)

	if !reflect.DeepEqual(normalizeFaults(baseline), normalizeFaults(injected)) {
		t.Fatalf("injected run differs from baseline:\n%+v\nvs\n%+v", baseline, injected)
	}
	if len(injected.WorkerFailures) != 1 {
		t.Fatalf("worker failures = %+v, want exactly one", injected.WorkerFailures)
	}
	if wf := injected.WorkerFailures[0]; wf.Mode != "prefix" || wf.Unit != 2 || wf.Attempt != 1 {
		t.Fatalf("failure record = %+v", wf)
	}
}

// TestPrefixWorkerPanicSkipped: a subtree that crashes on both
// attempts is reported as a skipped subtree and the search can no
// longer claim exhaustion — explicit coverage loss, not silent.
func TestPrefixWorkerPanicSkipped(t *testing.T) {
	opts := search.Options{
		Fair:         true,
		ContextBound: -1,
		MaxSteps:     1000,
		Parallelism:  4,
	}
	search.SetWorkerFaultHook(func(mode string, unit int64) {
		if mode == "prefix" && unit == 2 {
			panic("persistent prefix fault")
		}
	})
	defer search.SetWorkerFaultHook(nil)
	rep := search.Explore(fig3, opts)

	if rep.Skipped != 1 {
		t.Fatalf("skipped = %d, want 1", rep.Skipped)
	}
	if rep.Exhausted {
		t.Fatal("a search with a skipped subtree must not report exhaustion")
	}
	if len(rep.WorkerFailures) != 2 {
		t.Fatalf("worker failures = %+v, want both attempts", rep.WorkerFailures)
	}
}

// TestWedgePlusWorkerPanicTerminates is the robustness acceptance
// scenario: one wedged thread and one injected worker crash in the
// same parallel search — it still terminates and reports both.
func TestWedgePlusWorkerPanicTerminates(t *testing.T) {
	var fired atomic.Bool
	search.SetWorkerFaultHook(func(mode string, unit int64) {
		if mode == "stride" && unit == 2 && fired.CompareAndSwap(false, true) {
			panic("injected worker crash")
		}
	})
	defer search.SetWorkerFaultHook(nil)
	rep := search.Explore(wedger, search.Options{
		Fair:          true,
		RandomWalk:    true,
		MaxExecutions: 4,
		MaxSteps:      1000,
		Seed:          1,
		Parallelism:   2,
		Watchdog:      20 * time.Millisecond,
	})
	if rep.FirstWedge == nil || rep.FirstWedgeExecution != 1 {
		t.Fatalf("wedge not reported: %+v", rep)
	}
	if len(rep.WorkerFailures) != 1 || rep.WorkerFailures[0].Unit != 2 {
		t.Fatalf("worker crash not reported: %+v", rep.WorkerFailures)
	}
	// Give the leaked wedged goroutines their store/park attempts so
	// they self-destruct before any later engine runs.
	time.Sleep(50 * time.Millisecond)
}

// roundTrip runs opts to completion as a baseline, then reruns it with
// a small execution budget plus a checkpoint, resumes from that
// checkpoint with the original budget, and requires the stitched
// report to be identical to the baseline.
func roundTrip(t *testing.T, prog func(*engine.T), opts search.Options, splitAt int64) {
	t.Helper()
	baseline := search.Explore(prog, opts)

	path := filepath.Join(t.TempDir(), "search.ckpt")
	first := opts
	first.MaxExecutions = splitAt
	first.CheckpointPath = path
	rep1 := search.Explore(prog, first)
	if !rep1.ExecBounded {
		t.Fatalf("first phase did not stop on the execution budget: %+v", rep1)
	}
	if rep1.CheckpointError != "" {
		t.Fatalf("checkpoint write failed: %s", rep1.CheckpointError)
	}

	ck, err := search.LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("loading checkpoint: %v", err)
	}
	second := opts
	second.CheckpointPath = path
	second.Resume = ck
	rep2 := search.Explore(prog, second)

	if !reflect.DeepEqual(normalize(baseline), normalize(rep2)) {
		t.Fatalf("resumed report differs from uninterrupted baseline:\n%+v\nvs\n%+v",
			baseline, rep2)
	}
	if rep2.Elapsed < rep1.Elapsed {
		t.Fatalf("resumed Elapsed %v did not accumulate the checkpointed %v",
			rep2.Elapsed, rep1.Elapsed)
	}
}

func TestCheckpointResumeRoundTrip(t *testing.T) {
	random := search.Options{
		Fair:                   true,
		RandomWalk:             true,
		MaxExecutions:          200,
		MaxSteps:               1000,
		Seed:                   7,
		ContinueAfterViolation: true,
		ProgramName:            "racy-increment",
	}
	systematic := search.Options{
		Fair:         true,
		ContextBound: -1,
		MaxSteps:     1000,
		ProgramName:  "fig3",
	}
	t.Run("seq-random", func(t *testing.T) {
		roundTrip(t, racyIncrement, random, 80)
	})
	t.Run("stride-p4", func(t *testing.T) {
		opts := random
		opts.Parallelism = 4
		roundTrip(t, racyIncrement, opts, 64)
	})
	t.Run("seq-dfs", func(t *testing.T) {
		roundTrip(t, fig3, systematic, 20)
	})
	t.Run("prefix-p4", func(t *testing.T) {
		opts := systematic
		opts.Parallelism = 4
		roundTrip(t, fig3, opts, 40)
	})
}

// TestStopChannelInterrupt: closing Options.Stop interrupts the search
// at an execution boundary, writes a resumable checkpoint, and the
// resumed search finishes exactly like an uninterrupted one.
func TestStopChannelInterrupt(t *testing.T) {
	opts := search.Options{
		Fair:                   true,
		RandomWalk:             true,
		MaxExecutions:          120,
		MaxSteps:               1000,
		Seed:                   5,
		ContinueAfterViolation: true,
		ProgramName:            "racy-increment",
	}
	baseline := search.Explore(racyIncrement, opts)

	path := filepath.Join(t.TempDir(), "search.ckpt")
	stopped := make(chan struct{})
	close(stopped) // interrupt at the very first poll
	first := opts
	first.CheckpointPath = path
	first.Stop = stopped
	rep1 := search.Explore(racyIncrement, first)
	if !rep1.Interrupted {
		t.Fatalf("search with closed Stop did not report Interrupted: %+v", rep1)
	}

	ck, err := search.LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("loading checkpoint: %v", err)
	}
	second := opts
	second.Resume = ck
	rep2 := search.Explore(racyIncrement, second)
	if !reflect.DeepEqual(normalize(baseline), normalize(rep2)) {
		t.Fatalf("resumed report differs from uninterrupted baseline:\n%+v\nvs\n%+v",
			baseline, rep2)
	}
}

// TestResumeValidation: a checkpoint is rejected when it belongs to a
// different search or marks a completed one.
func TestResumeValidation(t *testing.T) {
	opts := search.Options{
		Fair:                   true,
		RandomWalk:             true,
		MaxExecutions:          40,
		MaxSteps:               1000,
		Seed:                   7,
		ContinueAfterViolation: true,
		ProgramName:            "racy-increment",
	}
	path := filepath.Join(t.TempDir(), "search.ckpt")
	first := opts
	first.MaxExecutions = 10
	first.CheckpointPath = path
	search.Explore(racyIncrement, first)
	ck, err := search.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}

	reject := func(name string, mutate func(o *search.Options)) {
		t.Run(name, func(t *testing.T) {
			bad := opts
			bad.Resume = ck
			mutate(&bad)
			if err := bad.Validate(); err == nil {
				t.Fatalf("%s resume validated; want rejection", name)
			}
		})
	}
	reject("program", func(o *search.Options) { o.ProgramName = "other" })
	reject("seed", func(o *search.Options) { o.Seed = 99 })
	reject("strategy", func(o *search.Options) { o.RandomWalk = false; o.PCT = true })
	reject("parallelism", func(o *search.Options) { o.Parallelism = 4 })
	reject("semantic-option", func(o *search.Options) { o.ContinueAfterViolation = false })

	good := opts
	good.Resume = ck
	if err := good.Validate(); err != nil {
		t.Fatalf("matching resume rejected: %v", err)
	}
	// Budgets may change across a resume.
	good.MaxExecutions = 10_000
	good.TimeLimit = time.Hour
	if err := good.Validate(); err != nil {
		t.Fatalf("resume with larger budget rejected: %v", err)
	}

	// A terminal checkpoint (the search exhausted or stopped on a
	// finding) must be rejected: re-running would double-count.
	donePath := filepath.Join(t.TempDir(), "done.ckpt")
	doneOpts := search.Options{
		Fair:           true,
		ContextBound:   -1,
		MaxSteps:       1000,
		ProgramName:    "fig3",
		CheckpointPath: donePath,
	}
	if rep := search.Explore(fig3, doneOpts); !rep.Exhausted {
		t.Fatal("fig3 search did not exhaust")
	}
	doneCk, err := search.LoadCheckpoint(donePath)
	if err != nil {
		t.Fatal(err)
	}
	doneOpts.CheckpointPath = ""
	doneOpts.Resume = doneCk
	if err := doneOpts.Validate(); err == nil {
		t.Fatal("resume of a completed (Done) checkpoint validated; want rejection")
	}
}
