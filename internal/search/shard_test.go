package search_test

import (
	"reflect"
	"testing"

	"fairmc/internal/engine"
	"fairmc/internal/search"
)

// runPlan executes every shard of a plan sequentially and merges the
// reports in index order — the distributed coordinator's data path
// without the network.
func runPlan(t *testing.T, prog func(*engine.T), opts search.Options, refP int) *search.Report {
	t.Helper()
	plan, err := search.PlanShards(prog, opts, refP)
	if err != nil {
		t.Fatalf("PlanShards: %v", err)
	}
	if len(plan.Shards) < 2 {
		t.Fatalf("plan has %d shards; want a real split", len(plan.Shards))
	}
	m := search.NewShardMerger(opts, plan)
	for i, sh := range plan.Shards {
		m.Offer(i, search.RunShard(prog, opts, sh, nil))
	}
	if !m.Done() {
		t.Fatal("merger not done after offering every shard")
	}
	rep := m.Finish(0, nil)
	search.ConfirmFindings(prog, opts, rep)
	return rep
}

// TestShardPlanMatchesParallelPrefix: planning, running, and merging
// the shards of a systematic search reproduces the local parallel
// report exactly.
func TestShardPlanMatchesParallelPrefix(t *testing.T) {
	progs := map[string]func(*engine.T){
		"racy": racyIncrement,
		"fig3": fig3,
	}
	for name, prog := range progs {
		for _, cont := range []bool{false, true} {
			opts := search.Options{
				Fair:                   true,
				ContextBound:           -1,
				MaxSteps:               10000,
				ContinueAfterViolation: cont,
				ConfirmRuns:            2,
			}
			got := runPlan(t, prog, opts, 2)
			opts.Parallelism = 2
			ref := search.Explore(prog, opts)
			if !reflect.DeepEqual(normalize(ref), normalize(got)) {
				t.Fatalf("%s cont=%v: sharded run differs from local -p 2:\n%+v\nvs\n%+v",
					name, cont, ref, got)
			}
		}
	}
}

// TestShardPlanMatchesParallelStride: same for the seeded random
// strategies, where shards are global execution-index ranges.
func TestShardPlanMatchesParallelStride(t *testing.T) {
	for _, pct := range []bool{false, true} {
		for _, cont := range []bool{false, true} {
			opts := search.Options{
				Fair:                   true,
				RandomWalk:             !pct,
				PCT:                    pct,
				MaxExecutions:          400,
				MaxSteps:               1000,
				Seed:                   3,
				ContinueAfterViolation: cont,
				ConfirmRuns:            2,
			}
			got := runPlan(t, racyIncrement, opts, 2)
			opts.Parallelism = 2
			ref := search.Explore(racyIncrement, opts)
			if !reflect.DeepEqual(normalize(ref), normalize(got)) {
				t.Fatalf("pct=%v cont=%v: sharded run differs from local -p 2:\n%+v\nvs\n%+v",
					pct, cont, ref, got)
			}
		}
	}
}

// TestShardPlanNeedsBudget: random strategies cannot be sharded
// without a deterministic execution budget.
func TestShardPlanNeedsBudget(t *testing.T) {
	_, err := search.PlanShards(racyIncrement, search.Options{
		Fair: true, RandomWalk: true, MaxSteps: 1000, TimeLimit: 1,
	}, 2)
	if err == nil {
		t.Fatal("PlanShards accepted a random walk without MaxExecutions")
	}
}

// TestShardMergerLateDuplicate: a second report for an already-decided
// shard (a late result arriving after a retry finished first) must not
// change the merge.
func TestShardMergerLateDuplicate(t *testing.T) {
	opts := search.Options{
		Fair: true, RandomWalk: true, MaxExecutions: 400, MaxSteps: 1000, Seed: 3,
		ContinueAfterViolation: true,
	}
	plan, err := search.PlanShards(racyIncrement, opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	reports := make([]*search.Report, len(plan.Shards))
	for i, sh := range plan.Shards {
		reports[i] = search.RunShard(racyIncrement, opts, sh, nil)
	}
	m := search.NewShardMerger(opts, plan)
	for i := range plan.Shards {
		m.Offer(i, reports[i])
		m.Offer(i, reports[i]) // duplicate: must be ignored
	}
	got := m.Finish(0, nil)
	ref := runPlan(t, racyIncrement, opts, 2)
	// ConfirmFindings ran only on ref; align.
	search.ConfirmFindings(racyIncrement, opts, got)
	if !reflect.DeepEqual(normalize(ref), normalize(got)) {
		t.Fatalf("duplicate offers changed the merge:\n%+v\nvs\n%+v", ref, got)
	}
}
