package search_test

import (
	"testing"

	"fairmc/internal/engine"
	"fairmc/internal/search"
	"fairmc/internal/syncmodel"
)

// yieldCountProgram builds the §3-end scenario: the interesting state
// (the main thread reading 2) is only reachable by an execution in
// which thread A yields twice before storing — an execution of
// positive yield count. With k = 1, A's second yield closes a window
// in which the main thread (pending its load, never scheduled since
// before A started) was continuously enabled, so the edge (A, main)
// forces the load before the store and the state is unreachable. With
// k >= 2 the second yield is not a processed boundary (and the first
// processed boundary of a thread is always inert), so A runs through
// and the state is reached.
//
// The reader must be the already-running main thread: a spawned reader
// absorbs the priority edge with its start transition (line 13 drops
// edges into a scheduled thread), reopening the path even at k = 1.
func yieldCountProgram(witness *bool) func(*engine.T) {
	return func(t *engine.T) {
		x := syncmodel.NewIntVar(t, "x", 0)
		t.Go("A", func(t *engine.T) {
			t.Yield()
			t.Yield()
			x.Store(t, 2)
		})
		if x.Load(t) == 2 {
			*witness = true
		}
	}
}

func reachesWitness(t *testing.T, k int) bool {
	t.Helper()
	witness := false
	rep := search.Explore(yieldCountProgram(&witness), search.Options{
		Fair:         true,
		FairK:        k,
		ContextBound: -1,
		MaxSteps:     10000,
	})
	if !rep.Exhausted {
		t.Fatalf("k=%d: search not exhausted: %+v", k, rep)
	}
	return witness
}

// TestFairKParameterization exercises the paper's §3 escape hatch for
// states not reachable by yield-free executions: "our algorithm can be
// parameterized by a small constant k > 0 so as to only process every
// k-th yield of a thread".
func TestFairKParameterization(t *testing.T) {
	if reachesWitness(t, 1) {
		t.Error("k=1 reached the positive-yield-count state; fairness edges not applied?")
	}
	// At k=2, yield #2 is the thread's first *processed* boundary and
	// first boundaries are inert by the initialization convention.
	if !reachesWitness(t, 2) {
		t.Error("k=2 missed the state; first-boundary convention broken")
	}
	if !reachesWitness(t, 3) {
		t.Error("k=3 missed the state; parameterization broken")
	}
}

// TestFairKStillPrunesUnfairCycles: a larger k weakens the priority
// updates but must still terminate the search on the Figure 3 spin
// loop (the spinner accumulates yields and is eventually cut).
func TestFairKStillPrunesUnfairCycles(t *testing.T) {
	prog := func(t *engine.T) {
		x := syncmodel.NewIntVar(t, "x", 0)
		hu := t.Go("u", func(t *engine.T) {
			for {
				t.Label(1)
				if x.Load(t) == 1 {
					break
				}
				t.Yield()
			}
		})
		ht := t.Go("t", func(t *engine.T) {
			x.Store(t, 1)
		})
		ht.Join(t)
		hu.Join(t)
	}
	for _, k := range []int{1, 2, 4} {
		rep := search.Explore(prog, search.Options{
			Fair:         true,
			FairK:        k,
			ContextBound: -1,
			MaxSteps:     100000,
		})
		if !rep.Exhausted {
			t.Fatalf("k=%d: search did not exhaust: %+v", k, rep)
		}
		if rep.NonTerminating != 0 {
			t.Fatalf("k=%d: divergences on a fair-terminating program", k)
		}
		t.Logf("k=%d: %d executions", k, rep.Executions)
	}
}
