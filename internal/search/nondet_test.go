package search_test

import (
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"fairmc/internal/engine"
	"fairmc/internal/search"
	"fairmc/internal/syncmodel"
)

// hiddenCounter builds a program that is deliberately NOT a
// deterministic function of its schedule: the worker's store carries a
// monotonically increasing value that lives outside the conc API, so
// the worker's pending operation differs on every run, from its first
// schedulable step onward. The counter never repeats, so no
// divergence-retry attempt ever swings back into conformance. Each
// call returns an independent program (own counter), keeping tests
// isolated from one another.
func hiddenCounter() func(*engine.T) {
	var seq int64
	return func(t *engine.T) {
		x := syncmodel.NewIntVar(t, "x", 0)
		done := syncmodel.NewIntVar(t, "done", 0)
		n := atomic.AddInt64(&seq, 1)
		h := t.Go("worker", func(t *engine.T) {
			x.Store(t, n)
			done.Store(t, 1)
		})
		for done.Load(t) == 0 {
			t.Yield()
		}
		h.Join(t)
	}
}

func nondetOpts() search.Options {
	return search.Options{
		Fair:          true,
		ContextBound:  -1,
		MaxSteps:      2000,
		MaxExecutions: 200,
	}
}

// TestNondeterminismQuarantinedSequential: the sequential DFS detects
// the divergence, retries the default number of times, and quarantines
// the subtree with a populated report — it neither crashes nor keeps
// searching a wrong tree, and never misreports the program as buggy.
func TestNondeterminismQuarantinedSequential(t *testing.T) {
	rep := search.Explore(hiddenCounter(), nondetOpts())
	if rep.Quarantined == 0 {
		t.Fatalf("nondeterminism not quarantined: %+v", rep)
	}
	if int64(len(rep.Nondeterminism)) != rep.Quarantined {
		t.Fatalf("Quarantined = %d but %d reports", rep.Quarantined, len(rep.Nondeterminism))
	}
	for _, nr := range rep.Nondeterminism {
		if nr.Step < 0 || len(nr.Prefix) != nr.Step+1 {
			t.Fatalf("report prefix/step mismatch: %+v", nr)
		}
		if nr.Attempts != 3 { // 1 replay + defaultDivergenceRetries retries
			t.Fatalf("attempts = %d, want 3 (default retries)", nr.Attempts)
		}
		if !nr.NotSchedulable && nr.Expected.Hash == nr.Observed.Hash {
			t.Fatalf("digest-mismatch report with equal hashes: %+v", nr)
		}
	}
	if rep.FirstBug != nil {
		t.Fatalf("nondeterminism misreported as a bug: %+v", rep.FirstBug)
	}
	if rep.Exhausted {
		t.Fatal("a search with quarantined subtrees must not claim exhaustion")
	}
}

// TestNondeterminismRetryBudget: DivergenceRetries controls the number
// of replay attempts before quarantine (negative = none).
func TestNondeterminismRetryBudget(t *testing.T) {
	for _, tc := range []struct {
		retries      int
		wantAttempts int
	}{
		{retries: -1, wantAttempts: 1},
		{retries: 1, wantAttempts: 2},
		{retries: 4, wantAttempts: 5},
	} {
		opts := nondetOpts()
		opts.DivergenceRetries = tc.retries
		rep := search.Explore(hiddenCounter(), opts)
		if rep.Quarantined == 0 {
			t.Fatalf("retries=%d: nothing quarantined", tc.retries)
		}
		for _, nr := range rep.Nondeterminism {
			if nr.Attempts != tc.wantAttempts {
				t.Fatalf("retries=%d: attempts = %d, want %d", tc.retries, nr.Attempts, tc.wantAttempts)
			}
		}
	}
}

// TestNondeterminismQuarantinedParallel: the prefix-sharded parallel
// search applies the same protocol — a diverging prefix is frozen
// during frontier expansion, rediscovered by the worker, and
// quarantined into the merged report; no worker crashes.
func TestNondeterminismQuarantinedParallel(t *testing.T) {
	opts := nondetOpts()
	opts.Parallelism = 4
	rep := search.Explore(hiddenCounter(), opts)
	if rep.Quarantined == 0 {
		t.Fatalf("parallel nondeterminism not quarantined: %+v", rep)
	}
	if int64(len(rep.Nondeterminism)) != rep.Quarantined {
		t.Fatalf("Quarantined = %d but %d reports", rep.Quarantined, len(rep.Nondeterminism))
	}
	if len(rep.WorkerFailures) != 0 {
		t.Fatalf("divergence crashed workers: %+v", rep.WorkerFailures)
	}
	if rep.FirstBug != nil {
		t.Fatalf("nondeterminism misreported as a bug: %+v", rep.FirstBug)
	}
	if rep.Exhausted {
		t.Fatal("a search with quarantined subtrees must not claim exhaustion")
	}
}

// TestConformanceOffByteIdentical: for deterministic programs the
// conformance machinery is pure observation — reports with digests on
// and off are identical (modulo wall-clock), whether the program is
// clean or buggy.
func TestConformanceOffByteIdentical(t *testing.T) {
	clean := search.Options{Fair: true, ContextBound: -1, MaxSteps: 1000}
	buggy := clean
	buggy.ContinueAfterViolation = true
	for _, tc := range []struct {
		name string
		prog func(*engine.T)
		opts search.Options
	}{
		{"fig3", fig3, clean},
		{"racy-increment", racyIncrement, buggy},
	} {
		t.Run(tc.name, func(t *testing.T) {
			on := search.Explore(tc.prog, tc.opts)
			off := tc.opts
			off.DisableConformance = true
			offRep := search.Explore(tc.prog, off)
			if !reflect.DeepEqual(normalize(on), normalize(offRep)) {
				t.Fatalf("conformance changed a deterministic search:\n%+v\nvs\n%+v", on, offRep)
			}
		})
	}
}

// TestConfirmationStableBug: a deterministic bug replays on every
// confirmation run and is tagged stable.
func TestConfirmationStableBug(t *testing.T) {
	opts := search.Options{Fair: true, ContextBound: -1, MaxSteps: 1000, ConfirmRuns: 3}
	rep := search.Explore(racyIncrement, opts)
	if rep.FirstBug == nil {
		t.Fatal("race not found")
	}
	v := rep.BugReproducibility
	if !v.Stable() || v.Runs != 3 || v.Successes != 3 || v.FirstFailure != "" {
		t.Fatalf("verdict = %+v, want stable 3/3", v)
	}
	if v.String() != "stable (3/3)" {
		t.Fatalf("verdict string = %q", v.String())
	}

	// ConfirmRuns = 0 disables the pass entirely.
	opts.ConfirmRuns = 0
	rep = search.Explore(racyIncrement, opts)
	if rep.BugReproducibility != nil {
		t.Fatalf("verdict %+v present with ConfirmRuns = 0", rep.BugReproducibility)
	}
}

// TestConfirmationStableDivergence: divergence findings are confirmed
// by the same pass.
func TestConfirmationStableDivergence(t *testing.T) {
	spinner := func(t *engine.T) {
		x := syncmodel.NewIntVar(t, "x", 0)
		for x.Load(t) == 0 { // no writer exists: spins forever
			t.Yield()
		}
	}
	rep := search.Explore(spinner, search.Options{
		Fair: true, ContextBound: -1, MaxSteps: 200, ConfirmRuns: 3,
	})
	if rep.Divergence == nil {
		t.Fatalf("no divergence found: %+v", rep)
	}
	if v := rep.DivergenceReproducibility; !v.Stable() {
		t.Fatalf("deterministic divergence tagged %s (%+v)", v, v)
	}
}

// TestConfirmationFlakyBug: a "bug" that depends on hidden
// cross-execution state fails some confirmation replays and is tagged
// flaky instead of being presented as a trustworthy finding.
func TestConfirmationFlakyBug(t *testing.T) {
	var seq int64
	prog := func(t *engine.T) {
		x := syncmodel.NewIntVar(t, "x", 0)
		n := atomic.AddInt64(&seq, 1)
		t.Assert(n%2 == 0, "odd-run failure") // violates on every odd run
		x.Store(t, 1)
	}
	rep := search.Explore(prog, search.Options{
		Fair: true, ContextBound: -1, MaxSteps: 1000, ConfirmRuns: 4,
	})
	if rep.FirstBug == nil {
		t.Fatal("odd-run violation not found")
	}
	v := rep.BugReproducibility
	if v == nil || v.Stable() {
		t.Fatalf("hidden-state bug tagged %s, want flaky", v)
	}
	if v.Successes == 0 || v.Successes >= v.Runs {
		t.Fatalf("verdict = %+v, want partial reproducibility", v)
	}
	if v.FirstFailure == "" {
		t.Fatal("flaky verdict is missing its first-failure diagnostic")
	}
	if !strings.Contains(v.String(), "flaky") {
		t.Fatalf("verdict string = %q", v.String())
	}
}

// TestCheckpointCarriesQuarantine: quarantine counters and reports
// survive a checkpoint/resume round trip, and the resumed search
// continues accumulating on top of them.
func TestCheckpointCarriesQuarantine(t *testing.T) {
	prog := hiddenCounter()
	opts := nondetOpts()
	opts.ProgramName = "hidden-counter"

	path := filepath.Join(t.TempDir(), "nondet.ckpt")
	first := opts
	first.MaxExecutions = 2
	first.CheckpointPath = path
	rep1 := search.Explore(prog, first)
	if !rep1.ExecBounded {
		t.Fatalf("first phase did not stop on the execution budget: %+v", rep1)
	}
	if rep1.Quarantined == 0 {
		t.Fatalf("first phase quarantined nothing; cannot test carry-over: %+v", rep1)
	}

	ck, err := search.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Counters.Quarantined != rep1.Quarantined {
		t.Fatalf("checkpoint Quarantined = %d, report %d", ck.Counters.Quarantined, rep1.Quarantined)
	}
	if int64(len(ck.Nondeterminism)) != rep1.Quarantined {
		t.Fatalf("checkpoint carries %d reports, want %d", len(ck.Nondeterminism), rep1.Quarantined)
	}

	second := opts
	second.Resume = ck
	rep2 := search.Explore(prog, second)
	if rep2.Quarantined < rep1.Quarantined {
		t.Fatalf("resume lost quarantines: %d -> %d", rep1.Quarantined, rep2.Quarantined)
	}
	if int64(len(rep2.Nondeterminism)) != rep2.Quarantined {
		t.Fatalf("resumed Quarantined = %d but %d reports", rep2.Quarantined, len(rep2.Nondeterminism))
	}
	if !reflect.DeepEqual(rep2.Nondeterminism[:len(rep1.Nondeterminism)], rep1.Nondeterminism) {
		t.Fatalf("resumed search rewrote the checkpointed reports:\n%+v\nvs\n%+v",
			rep2.Nondeterminism[:len(rep1.Nondeterminism)], rep1.Nondeterminism)
	}
	if rep2.Exhausted {
		t.Fatal("resumed search with quarantines claims exhaustion")
	}
}

// TestResumeValidationQuarantine: corrupted quarantine bookkeeping and
// semantic conformance-option changes are rejected at resume time.
func TestResumeValidationQuarantine(t *testing.T) {
	prog := hiddenCounter()
	opts := nondetOpts()
	opts.ProgramName = "hidden-counter"

	path := filepath.Join(t.TempDir(), "nondet.ckpt")
	first := opts
	first.MaxExecutions = 2
	first.CheckpointPath = path
	if rep := search.Explore(prog, first); rep.Quarantined == 0 {
		t.Fatalf("nothing quarantined; cannot test validation: %+v", rep)
	}
	ck, err := search.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}

	good := opts
	good.Resume = ck
	if err := good.Validate(); err != nil {
		t.Fatalf("matching resume rejected: %v", err)
	}
	// Operational settings may change across a resume.
	good.DivergenceRetries = 5
	good.ConfirmRuns = 1
	if err := good.Validate(); err != nil {
		t.Fatalf("resume with different retry/confirm settings rejected: %v", err)
	}

	// Toggling conformance changes what the saved frames mean: reject.
	off := opts
	off.Resume = ck
	off.DisableConformance = true
	if err := off.Validate(); err == nil {
		t.Fatal("resume with DisableConformance toggled validated; want rejection")
	}

	// A checkpoint whose counter disagrees with its reports is corrupt.
	bad := opts
	corrupt := *ck
	corrupt.Counters.Quarantined++
	bad.Resume = &corrupt
	if err := bad.Validate(); err == nil {
		t.Fatal("corrupted quarantine counter validated; want rejection")
	}
}
