package search_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"fairmc/internal/obs"
	"fairmc/internal/search"
)

// TestMetricsMatchSequentialReport: on a clean sequential search there
// are no divergence retries and no discarded parallel work, so the live
// registry and the merged report agree exactly on every deterministic
// counter.
func TestMetricsMatchSequentialReport(t *testing.T) {
	m := obs.NewMetrics()
	rep := search.Explore(fig3, search.Options{
		Fair:         true,
		ContextBound: -1,
		MaxSteps:     10000,
		Metrics:      m,
	})
	if !rep.Exhausted {
		t.Fatalf("search not exhausted: %+v", rep)
	}
	s := m.Snapshot()
	if s.Executions != rep.Executions {
		t.Fatalf("metrics executions %d != report %d", s.Executions, rep.Executions)
	}
	if s.Steps != rep.TotalSteps {
		t.Fatalf("metrics steps %d != report %d", s.Steps, rep.TotalSteps)
	}
	if s.Yields != rep.Yields || s.EdgeAdds != rep.EdgeAdds ||
		s.EdgeErases != rep.EdgeErases || s.FairBlocked != rep.FairBlocked {
		t.Fatalf("fairness counters diverge: metrics %+v vs report %+v", s, rep)
	}
	if s.Yields == 0 || s.EdgeAdds == 0 {
		t.Fatalf("spin loop produced no fairness activity: %+v", s)
	}
	if s.Terminations != rep.Executions {
		t.Fatalf("terminations %d != executions %d", s.Terminations, rep.Executions)
	}
	if s.ExecSteps == nil || m.ExecSteps.Count() != rep.Executions {
		t.Fatalf("exec-steps histogram count %d != executions %d",
			m.ExecSteps.Count(), rep.Executions)
	}
}

// TestMetricsStrideParallelExact: a count-everything stride random walk
// runs every execution index exactly once, with no replays and no
// cancelled work — so even at Parallelism 4 the registry matches the
// merged report exactly. Run under -race, this is also the concurrency
// test for engine flushes from parallel workers.
func TestMetricsStrideParallelExact(t *testing.T) {
	m := obs.NewMetrics()
	rep := search.Explore(racyIncrement, search.Options{
		Fair:                   true,
		RandomWalk:             true,
		MaxExecutions:          400,
		MaxSteps:               1000,
		Seed:                   3,
		Parallelism:            4,
		ContinueAfterViolation: true,
		Metrics:                m,
	})
	s := m.Snapshot()
	if s.Executions != rep.Executions || s.Steps != rep.TotalSteps ||
		s.Yields != rep.Yields || s.EdgeAdds != rep.EdgeAdds ||
		s.EdgeErases != rep.EdgeErases || s.FairBlocked != rep.FairBlocked {
		t.Fatalf("stride metrics diverge from report:\n%+v\nvs\n%+v", s, rep)
	}
}

// TestMetricsPrefixParallelCoverReport: prefix-parallel workers replay
// their frontier prefix inside each engine run and the frontier
// construction itself executes, so the registry counts at least the
// report's work — never less.
func TestMetricsPrefixParallelCoverReport(t *testing.T) {
	m := obs.NewMetrics()
	rep := search.Explore(fig3, search.Options{
		Fair:         true,
		ContextBound: -1,
		MaxSteps:     10000,
		Parallelism:  4,
		Metrics:      m,
	})
	if !rep.Exhausted {
		t.Fatalf("search not exhausted: %+v", rep)
	}
	s := m.Snapshot()
	if s.Executions < rep.Executions || s.Steps < rep.TotalSteps ||
		s.Yields < rep.Yields {
		t.Fatalf("metrics undercount the report:\n%+v\nvs\n%+v", s, rep)
	}
	outcomes := s.Terminations + s.Deadlocks + s.Violations + s.Diverged + s.Aborts + s.Wedges
	if outcomes != s.Executions {
		t.Fatalf("outcome counters sum to %d, executions %d", outcomes, s.Executions)
	}
}

// TestEventStreamSequential: a sequential search emits one schedule
// event per step, one exec_end per execution, and nothing is dropped
// when the queue is large enough.
func TestEventStreamSequential(t *testing.T) {
	var buf bytes.Buffer
	rec := obs.NewRecorder(&buf, 1<<16)
	rep := search.Explore(fig3, search.Options{
		Fair:         true,
		ContextBound: -1,
		MaxSteps:     10000,
		EventSink:    rec,
	})
	if err := rec.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if rec.Dropped() != 0 {
		t.Fatalf("%d events dropped with an oversized queue", rec.Dropped())
	}
	var schedules, yields, execEnds, yieldsWithH int64
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad JSONL line: %v\n%s", err, line)
		}
		switch ev.Type {
		case "schedule":
			schedules++
		case "yield":
			yields++
			if ev.Yield == nil {
				t.Fatalf("yield event without payload: %s", line)
			}
			// H may legitimately be empty (nobody starved in the window).
			if len(ev.Yield.H) > 0 {
				yieldsWithH++
			}
		case "exec_end":
			execEnds++
		}
	}
	if schedules != rep.TotalSteps {
		t.Fatalf("schedule events %d != total steps %d", schedules, rep.TotalSteps)
	}
	if execEnds != rep.Executions {
		t.Fatalf("exec_end events %d != executions %d", execEnds, rep.Executions)
	}
	if yields == 0 || yieldsWithH == 0 {
		t.Fatalf("no yield-window events with priority edges from the spin loop (yields=%d withH=%d)",
			yields, yieldsWithH)
	}
}

// TestEventStreamFinding: stopping at the first violation emits a
// finding event with the violation's stack-free message.
func TestEventStreamFinding(t *testing.T) {
	var buf bytes.Buffer
	rec := obs.NewRecorder(&buf, 1<<16)
	rep := search.Explore(racyIncrement, search.Options{
		Fair:         true,
		ContextBound: 2,
		MaxSteps:     1000,
		EventSink:    rec,
	})
	if err := rec.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if rep.FirstBug == nil {
		t.Fatalf("racy increment found no bug: %+v", rep)
	}
	var findings []obs.Event
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad JSONL line: %v\n%s", err, line)
		}
		if ev.Type == "finding" {
			findings = append(findings, ev)
		}
	}
	if len(findings) != 1 {
		t.Fatalf("got %d finding events, want 1", len(findings))
	}
	f := findings[0]
	if f.Finding.Kind != "violation" || f.Exec != rep.FirstBugExecution ||
		f.Finding.Message == "" || strings.Contains(f.Finding.Message, "goroutine") {
		t.Fatalf("finding event wrong: %+v", f.Finding)
	}
}
