package search

import (
	"sort"

	"fairmc/internal/engine"
	"fairmc/internal/rng"
	"fairmc/internal/tidset"
)

// This file implements PCT — probabilistic concurrency testing
// (Burckhardt, Kothari, Musuvathi, Nagarakatte: "A Randomized
// Scheduler with Probabilistic Guarantees of Finding Bugs", ASPLOS
// 2010) — the CHESS lineage's randomized alternative to systematic
// search, included here as the third point of comparison next to the
// fair DFS and the uniform random walk.
//
// Each execution draws a random priority assignment over threads and
// d−1 random priority-change points over steps; the scheduler always
// runs the highest-priority enabled thread, demoting the running
// thread below every base priority when a change point fires. Any bug
// of depth d is found per execution with probability ≥ 1/(n·kᵈ⁻¹).

// pctState is the per-execution PCT machinery.
type pctState struct {
	depth   int
	horizon int64
	rand    *rng.Rand
	// prio maps thread → priority; higher runs first. Base priorities
	// are ≥ depth; demoted priorities are d−1−i < depth.
	prio map[tidset.Tid]int64
	// changes are the remaining change points, ascending.
	changes []int64
	fired   int
}

// newPCTState draws the assignment for one execution.
func newPCTState(depth int, horizon int64, r *rng.Rand) *pctState {
	if depth < 1 {
		depth = 1
	}
	if horizon < 1 {
		horizon = 1
	}
	s := &pctState{
		depth:   depth,
		horizon: horizon,
		rand:    r,
		prio:    map[tidset.Tid]int64{},
	}
	for i := 0; i < depth-1; i++ {
		s.changes = append(s.changes, 1+int64(r.Intn(int(horizon))))
	}
	sort.Slice(s.changes, func(a, b int) bool { return s.changes[a] < s.changes[b] })
	return s
}

// priority returns (assigning lazily) the thread's priority. Base
// priorities are random values ≥ depth, distinct with overwhelming
// probability; ties break deterministically by thread id in choose.
func (s *pctState) priority(t tidset.Tid) int64 {
	if p, ok := s.prio[t]; ok {
		return p
	}
	p := int64(s.depth) + int64(s.rand.Uint64()%(1<<40))
	s.prio[t] = p
	return p
}

// choose picks the highest-priority candidate, firing due change
// points first (each demotes the thread that would run next).
func (s *pctState) choose(ctx *engine.ChooseContext) engine.Alt {
	step := int64(ctx.Step)
	for s.fired < len(s.changes) && s.changes[s.fired] <= step {
		top := s.best(ctx.Cands)
		// Demote below every base priority: d−1−i, descending with
		// each fired change point so later demotions sink lower.
		s.prio[top.Tid] = int64(s.depth - 1 - s.fired)
		s.fired++
	}
	return s.best(ctx.Cands)
}

// best returns the highest-priority candidate; among a thread's data
// choices it picks randomly (data nondeterminism is not part of PCT's
// model, so any distribution is admissible).
func (s *pctState) best(cands []engine.Alt) engine.Alt {
	bestIdx := 0
	var bestPrio int64
	for i, c := range cands {
		p := s.priority(c.Tid)
		if i == 0 || p > bestPrio || (p == bestPrio && c.Tid < cands[bestIdx].Tid) {
			bestIdx, bestPrio = i, p
		}
	}
	// Collect the winning thread's alternatives (choose-op fanout).
	tid := cands[bestIdx].Tid
	var alts []engine.Alt
	for _, c := range cands {
		if c.Tid == tid {
			alts = append(alts, c)
		}
	}
	if len(alts) == 1 {
		return alts[0]
	}
	return alts[s.rand.Intn(len(alts))]
}
