package search_test

import (
	"testing"

	"fairmc/internal/engine"
	"fairmc/internal/search"
	"fairmc/internal/syncmodel"
)

func TestPCTFindsDepth1Bug(t *testing.T) {
	// The lost-update race has depth 1 (one priority inversion): PCT
	// with default depth finds it within a modest execution budget.
	rep := search.Explore(racyIncrement, search.Options{
		Fair:          true,
		PCT:           true,
		MaxExecutions: 2000,
		MaxSteps:      1000,
		Seed:          5,
	})
	if rep.FirstBug == nil {
		t.Fatalf("PCT missed the race in %d executions", rep.Executions)
	}
}

func TestPCTFindsOrderingBug(t *testing.T) {
	// A depth-2 ordering bug: the assertion fails only when B runs
	// entirely between A's two stores — a window a uniform walk hits
	// rarely but PCT's change points target directly.
	prog := func(t *engine.T) {
		x := syncmodel.NewIntVar(t, "x", 0)
		wg := syncmodel.NewWaitGroup(t, "wg", 2)
		t.Go("A", func(t *engine.T) {
			x.Store(t, 1)
			x.Store(t, 0)
			wg.Done(t)
		})
		t.Go("B", func(t *engine.T) {
			t.Assert(x.Load(t) != 1, "observed the transient state")
			wg.Done(t)
		})
		wg.Wait(t)
	}
	rep := search.Explore(prog, search.Options{
		Fair:          true,
		PCT:           true,
		PCTDepth:      2,
		MaxExecutions: 5000,
		MaxSteps:      1000,
		Seed:          11,
	})
	if rep.FirstBug == nil {
		t.Fatalf("PCT missed the transient-state bug in %d executions", rep.Executions)
	}
}

func TestPCTDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) *search.Report {
		return search.Explore(racyIncrement, search.Options{
			Fair:                   true,
			PCT:                    true,
			MaxExecutions:          300,
			MaxSteps:               1000,
			Seed:                   seed,
			ContinueAfterViolation: true,
		})
	}
	a, b := run(4), run(4)
	if a.Violations != b.Violations || a.TotalSteps != b.TotalSteps {
		t.Fatalf("PCT not reproducible: %+v vs %+v", a, b)
	}
}

func TestPCTTerminatesCleanPrograms(t *testing.T) {
	// On the fair-terminating spin loop, every PCT execution must end
	// (the fair scheduler underneath cuts the starvation PCT's static
	// priorities would otherwise cause).
	rep := search.Explore(fig3, search.Options{
		Fair:          true,
		PCT:           true,
		MaxExecutions: 300,
		MaxSteps:      5000,
		Seed:          8,
	})
	if rep.FirstBug != nil || rep.Divergence != nil {
		t.Fatalf("false finding on clean program: %+v", rep)
	}
	if rep.NonTerminating != 0 {
		t.Fatalf("%d executions failed to terminate", rep.NonTerminating)
	}
}

func TestPCTWithoutBudgetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unbounded PCT")
		}
	}()
	search.Explore(racyIncrement, search.Options{PCT: true})
}

func TestPCTAndRandomWalkExclusive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for PCT+RandomWalk")
		}
	}()
	search.Explore(racyIncrement, search.Options{
		PCT: true, RandomWalk: true, MaxExecutions: 1,
	})
}
