package search

// This file exports the sharding layer the distributed coordinator
// (internal/dist) is built on. A search is split into an ordered list
// of shards — contiguous execution-index ranges for the random
// strategies, frontier prefixes for the systematic ones — that can be
// run by independent processes and merged back in index order. The
// shard boundaries and the merge are the exact code paths the
// in-process parallel driver uses (splitFrontier, exploreSubtree,
// mergeSubtree, and the sequential stride searcher), which is what
// makes a distributed run's merged report byte-identical to a local
// Parallelism=N run of the same seed and configuration.

import (
	"errors"
	"fmt"
	"time"

	"fairmc/internal/engine"
	"fairmc/internal/por"
)

// Shard is one unit of distributable work.
//
// For the random strategies (RandomWalk, PCT) a shard is the closed
// range of global execution indices [Lo, Hi]; executions are seeded by
// index, so the range fully determines the work. For the systematic
// strategies a shard is one frontier prefix: the worker explores
// exactly the subtree below it. For DPOR a shard is one work unit
// (one execution); DPOR plans grow as the merge discovers race
// reversals — the ShardMerger appends child shards in a deterministic
// order, so every process derives the identical plan.
type Shard struct {
	// Index is the shard's position in the plan; reports are merged in
	// Index order.
	Index int `json:"index"`
	// Lo and Hi bound the execution-index range (random strategies).
	Lo int64 `json:"lo,omitempty"`
	Hi int64 `json:"hi,omitempty"`
	// Prefix is the frontier prefix (systematic strategies).
	Prefix *SavedPrefix `json:"prefix,omitempty"`
	// Unit is the DPOR work unit (DPOR searches).
	Unit *por.Unit `json:"unit,omitempty"`
}

// Plan is the full, ordered shard list for one search. It is
// JSON-serializable so a coordinator can persist it in its state file
// and hand shards to remote workers.
type Plan struct {
	// Strategy is the canonical strategy name (StrategyName).
	Strategy string `json:"strategy"`
	// RefParallelism is the local Parallelism the plan mirrors: the
	// merged report is byte-identical to a local run with
	// Parallelism=RefParallelism.
	RefParallelism int `json:"refParallelism"`
	// OptionsHash fingerprints the semantic options the plan was built
	// from (see OptionsHash); workers recompute it from their own
	// options and refuse to run a plan that does not match.
	OptionsHash uint64  `json:"optionsHash"`
	Shards      []Shard `json:"shards"`
}

// PlanShards splits the search defined by opts into distributable
// shards. refParallelism picks which local parallel run the plan (and
// therefore the merged report) mirrors; the shard count is the same
// work-unit granularity the local driver uses for that parallelism.
//
// The random strategies require MaxExecutions: a wall-clock budget
// cannot be partitioned into deterministic index ranges.
func PlanShards(prog func(*engine.T), opts Options, refParallelism int) (*Plan, error) {
	if refParallelism < 1 {
		refParallelism = 1
	}
	opts.Parallelism = 1
	opts.Stop = nil
	opts.Resume = nil
	opts.CheckpointPath = ""
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	plan := &Plan{
		Strategy:       strategyOf(&opts),
		RefParallelism: refParallelism,
		OptionsHash:    optionsHash(&opts),
	}
	if opts.DPOR {
		// DPOR plans start with the single root unit; the merge appends
		// a child shard per undiscovered race reversal as unit reports
		// come in (ShardMerger.drain), in an order that is a function
		// of the reports alone — every coordinator derives the same
		// grown plan.
		plan.Shards = append(plan.Shards, Shard{Index: 0, Unit: &por.Unit{}})
		return plan, nil
	}
	if opts.RandomWalk || opts.PCT {
		m := opts.MaxExecutions
		if m <= 0 {
			return nil, errors.New("search: a distributed random/pct search needs MaxExecutions (a wall-clock budget cannot be sharded deterministically)")
		}
		// Aim for the same work-unit count the frontier split targets,
		// but never shards smaller than a stride round batch.
		target := int64(prefixTargetFactor * refParallelism)
		chunk := (m + target - 1) / target
		if chunk < strideBatch {
			chunk = strideBatch
		}
		for lo := int64(1); lo <= m; lo += chunk {
			hi := lo + chunk - 1
			if hi > m {
				hi = m
			}
			plan.Shards = append(plan.Shards, Shard{Index: len(plan.Shards), Lo: lo, Hi: hi})
		}
		return plan, nil
	}
	frontier := splitFrontier(prog, opts, prefixTargetFactor*refParallelism)
	for i, pfx := range frontier {
		plan.Shards = append(plan.Shards, Shard{Index: i, Prefix: &SavedPrefix{
			Sched: pfx.sched, Digs: pfx.digs, Leaf: pfx.leaf,
		}})
	}
	return plan, nil
}

// RunShard executes one shard to completion with the sequential
// engine and returns its report, ready for ShardMerger.Offer.
//
// Stride shards run as a resumed sequential search whose executions
// counter starts at Lo-1 and whose budget ends at Hi, so every
// execution gets its global index (and therefore the same per-index
// seed as a local run); the returned Executions counter is then
// reduced to the shard's own count, while finding indices
// (FirstBugExecution etc.) stay global. Stride shards honor
// opts.CheckpointPath/opts.Resume for worker-local per-shard
// checkpointing; prefix shards ignore them (a prefix subtree reruns
// from scratch).
//
// stop, when non-nil, cancels the shard between executions; a
// cancelled shard returns with Interrupted set and must not be merged.
func RunShard(prog func(*engine.T), opts Options, sh Shard, stop <-chan struct{}) *Report {
	opts.Parallelism = 1
	opts.TimeLimit = 0
	opts.ConfirmRuns = 0 // the coordinator confirms the merged findings
	if sh.Unit != nil {
		opts.CheckpointPath = ""
		opts.Resume = nil
		opts.Stop = nil
		if stop != nil {
			select {
			case <-stop:
				return &Report{Interrupted: true}
			default:
			}
		}
		var pool engine.Pool
		defer pool.Close()
		return runDporUnit(prog, &opts, &pool, sh.Unit, time.Time{})
	}
	if sh.Prefix != nil {
		opts.CheckpointPath = ""
		opts.Resume = nil
		opts.Stop = nil
		var cancelled func() bool
		if stop != nil {
			cancelled = func() bool {
				select {
				case <-stop:
					return true
				default:
					return false
				}
			}
		}
		pfx := &prefixNode{
			sched: append([]engine.Alt(nil), sh.Prefix.Sched...),
			digs:  append([]engine.StepDigest(nil), sh.Prefix.Digs...),
			leaf:  sh.Prefix.Leaf,
		}
		rep := exploreSubtree(prog, opts, pfx, time.Time{}, cancelled)
		if cancelled != nil && cancelled() {
			rep.Interrupted = true
		}
		return rep
	}
	opts.Stop = stop
	opts.MaxExecutions = sh.Hi
	if opts.Resume == nil {
		// Synthetic checkpoint: position the sequential searcher at
		// global index Lo with zeroed counters, so the shard report is
		// a pure delta.
		ck := buildCheckpoint(&opts, &Report{Executions: sh.Lo - 1}, 0, false)
		ck.Stride = &StrideState{NextIndex: sh.Lo - 1}
		opts.Resume = ck
	}
	if err := opts.Validate(); err != nil {
		// Internal misuse or a corrupt worker-local checkpoint the
		// caller should have validated; fail loudly.
		panic(fmt.Sprintf("search: RunShard: %v", err))
	}
	rep := exploreSequential(prog, opts)
	rep.Executions -= sh.Lo - 1
	return rep
}

// ValidateShardResume reports whether a worker-local checkpoint can
// resume the given stride shard: it must belong to the same search
// (program, strategy, seed, options hash), be non-terminal, and sit
// inside the shard's index range.
func ValidateShardResume(opts *Options, sh Shard, ck *Checkpoint) error {
	if sh.Prefix != nil {
		return errors.New("search: prefix shards do not support checkpoint resume")
	}
	if sh.Unit != nil {
		return errors.New("search: dpor unit shards do not support checkpoint resume")
	}
	if ck.Done {
		return errors.New("search: shard checkpoint is terminal")
	}
	if ck.Stride == nil {
		return errors.New("search: shard checkpoint lacks stride state")
	}
	o := *opts
	o.Parallelism = 1
	if ck.Meta.Strategy != strategyOf(&o) || ck.Meta.Seed != o.Seed ||
		ck.Meta.OptionsHash != optionsHash(&o) || ck.Meta.Program != o.ProgramName {
		return errors.New("search: shard checkpoint belongs to a different search")
	}
	if ck.Counters.Executions < sh.Lo-1 || ck.Counters.Executions > sh.Hi {
		return fmt.Errorf("search: shard checkpoint at execution %d is outside shard [%d,%d]",
			ck.Counters.Executions, sh.Lo, sh.Hi)
	}
	return nil
}

// ShardMerger folds shard reports into one merged report in shard
// order, applying the same classify/stop semantics as the in-process
// parallel drivers. It is not safe for concurrent use; the caller
// serializes Offer calls.
type ShardMerger struct {
	opts    Options
	plan    *Plan
	rep     *Report
	pending map[int]*Report
	next    int

	allExhausted bool
	stride       bool
	stopped      bool
	done         bool

	// DPOR mode: dpor folds unit reports and materializes child units;
	// spawnNext is the plan index the next spawned child receives.
	// Because children regenerate deterministically from the reports,
	// a resume that re-offers completed shards re-derives the already
	// grown plan instead of appending duplicates.
	dpor      *dporMerger
	spawnNext int
}

// NewShardMerger prepares a merger for the given plan. opts must be
// the same options the plan was built from.
func NewShardMerger(opts Options, plan *Plan) *ShardMerger {
	m := &ShardMerger{
		opts:         opts,
		plan:         plan,
		rep:          &Report{},
		pending:      make(map[int]*Report),
		allExhausted: true,
		stride:       opts.RandomWalk || opts.PCT,
	}
	if opts.DPOR {
		m.dpor = newDporMerger(&m.opts, m.rep)
		m.spawnNext = 1 // DPOR plans start with the single root shard
	}
	return m
}

// Offer hands the merger shard idx's report; nil records a shard
// abandoned after repeated failures (explicit coverage loss). Reports
// may arrive in any order; the merger buffers them and merges each as
// its turn comes. Offers at or past a stop, and duplicate offers, are
// ignored.
func (m *ShardMerger) Offer(idx int, r *Report) {
	if m.stopped || idx < m.next || idx >= len(m.plan.Shards) {
		return
	}
	if _, dup := m.pending[idx]; dup {
		return
	}
	m.pending[idx] = r
	m.drain()
}

func (m *ShardMerger) drain() {
	for !m.stopped && m.next < len(m.plan.Shards) {
		if !m.stride && m.opts.MaxExecutions > 0 && m.rep.Executions >= m.opts.MaxExecutions {
			// Same pre-merge budget check the in-process prefix driver
			// makes before consuming the next subtree.
			m.rep.ExecBounded = true
			m.stopped = true
			return
		}
		r, ok := m.pending[m.next]
		if !ok {
			return
		}
		delete(m.pending, m.next)
		if m.stride {
			m.mergeStride(m.plan.Shards[m.next], r)
			if !m.stopped {
				m.next++
			}
			continue
		}
		if m.dpor != nil {
			m.mergeDporShard(r)
			continue
		}
		counted, stopped, done := mergeSubtree(&m.opts, m.rep, r, &m.allExhausted)
		if counted {
			m.next++
		}
		if stopped {
			m.stopped = true
			m.done = m.done || done
		}
	}
}

// mergeDporShard folds one DPOR unit report in and grows the plan with
// the child shards its race reversals spawn. The append order is the
// proposal-discovery order of the reports merged so far — a pure
// function of the reports — so a coordinator resume that re-offers the
// completed shards regenerates the identical plan and skips the
// already-present entries.
func (m *ShardMerger) mergeDporShard(r *Report) {
	sh := m.plan.Shards[m.next]
	children, counted, stopped, done := m.dpor.offer(sh.Unit, r)
	for _, child := range children {
		if m.spawnNext >= len(m.plan.Shards) {
			m.plan.Shards = append(m.plan.Shards, Shard{Index: m.spawnNext, Unit: child})
		}
		m.spawnNext++
	}
	if counted {
		m.next++
	}
	if stopped {
		m.stopped = true
		m.done = m.done || done
	}
}

// mergeStride folds one stride-shard report in. The shard ran the
// sequential searcher over its global index range, so its counters are
// deltas and its finding indices are global; a shard that stopped
// before exhausting its range stopped on a finding, which ends the
// merge exactly where the sequential search would have stopped.
func (m *ShardMerger) mergeStride(sh Shard, r *Report) {
	if r == nil {
		m.rep.Skipped += sh.Hi - sh.Lo + 1
		return
	}
	if r.FirstBug != nil && m.rep.FirstBug == nil {
		m.rep.FirstBug = r.FirstBug
		m.rep.FirstBugExecution = r.FirstBugExecution
	}
	if r.Divergence != nil && m.rep.Divergence == nil {
		m.rep.Divergence = r.Divergence
		m.rep.DivergenceExecution = r.DivergenceExecution
	}
	if r.FirstWedge != nil && m.rep.FirstWedge == nil {
		m.rep.FirstWedge = r.FirstWedge
		m.rep.FirstWedgeExecution = r.FirstWedgeExecution
	}
	m.rep.Executions += r.Executions
	m.rep.TotalSteps += r.TotalSteps
	m.rep.Yields += r.Yields
	m.rep.EdgeAdds += r.EdgeAdds
	m.rep.EdgeErases += r.EdgeErases
	m.rep.FairBlocked += r.FairBlocked
	m.rep.BufferedStores += r.BufferedStores
	m.rep.Flushes += r.Flushes
	m.rep.Fences += r.Fences
	m.rep.Forwards += r.Forwards
	if r.MaxDepth > m.rep.MaxDepth {
		m.rep.MaxDepth = r.MaxDepth
	}
	m.rep.NonTerminating += r.NonTerminating
	m.rep.Deadlocks += r.Deadlocks
	m.rep.Violations += r.Violations
	m.rep.Wedges += r.Wedges
	m.rep.Skipped += r.Skipped
	m.rep.Quarantined += r.Quarantined
	m.rep.Nondeterminism = append(m.rep.Nondeterminism, r.Nondeterminism...)
	if !r.ExecBounded {
		// The shard stopped before its budget: a finding ended it.
		m.stopped, m.done = true, true
	}
}

// Stopped reports that no further shard can contribute: shards at or
// past Horizon are dead work and should be cancelled.
func (m *ShardMerger) Stopped() bool { return m.stopped }

// Merged returns how many shards have been consumed.
func (m *ShardMerger) Merged() int { return m.next }

// Horizon is the merge's cancellation horizon: shards with index >=
// Horizon will never be merged.
func (m *ShardMerger) Horizon() int {
	if m.stopped {
		return m.next
	}
	return len(m.plan.Shards)
}

// Done reports that the merge is complete: every shard consumed, or a
// terminal stop reached.
func (m *ShardMerger) Done() bool {
	return m.stopped || m.next == len(m.plan.Shards)
}

// Finish seals the merge and returns the final report, applying the
// same end-of-search classification as the in-process drivers.
// failures (in any order) become the report's sorted WorkerFailures.
func (m *ShardMerger) Finish(elapsed time.Duration, failures []WorkerFailure) *Report {
	switch {
	case m.stride:
		if !m.stopped && m.next == len(m.plan.Shards) {
			// Every index in [1, MaxExecutions] has been merged (or
			// explicitly skipped): the execution budget is spent.
			m.rep.ExecBounded = true
		}
	case m.dpor != nil:
		m.rep.Exhausted = !m.stopped && m.next == len(m.plan.Shards) && m.dpor.allExhausted
	default:
		m.rep.Exhausted = !m.stopped && m.next == len(m.plan.Shards) && m.allExhausted
	}
	fs := &failSink{list: append([]WorkerFailure(nil), failures...)}
	m.rep.WorkerFailures = fs.sorted()
	m.rep.Elapsed = elapsed
	return m.rep
}

// Snapshot exposes the merged-so-far report (for coordinator state
// files and status endpoints). The returned report is live; callers
// must not retain it across further Offers.
func (m *ShardMerger) Snapshot() *Report { return m.rep }

// OptionsHash exposes the semantic-options fingerprint checkpoints
// carry (budget and operational fields excluded). The distributed
// protocol uses it to reject configuration skew between coordinator
// and workers before any work is handed out.
func OptionsHash(o *Options) uint64 {
	oo := *o
	oo.Parallelism = 1
	return optionsHash(&oo)
}

// ConfirmFindings runs the post-search confirmation pass
// (Options.ConfirmRuns) over rep's schedule-backed findings, exactly
// as Explore does after a local search. The distributed coordinator
// calls it once on the merged report.
func ConfirmFindings(prog func(*engine.T), opts Options, rep *Report) {
	confirmReport(prog, &opts, rep)
}
