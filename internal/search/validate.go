package search

import (
	"errors"
	"fmt"

	"fairmc/internal/core"
)

// Validate reports whether the option combination is usable. It is the
// user-facing gate for every misconfiguration the package used to
// panic on: the fairmc facade and the CLI call it and surface the
// error; search.Explore keeps a panic backstop for internal callers
// that bypass validation. Panics remain only for internal invariant
// violations (e.g. a chooser returning a non-candidate).
func (o *Options) Validate() error {
	if _, err := core.ParseMemModel(o.MemModel); err != nil {
		return fmt.Errorf("search: %w", err)
	}
	if o.TSOBufCap < 0 {
		return fmt.Errorf("search: TSOBufCap must be >= 0 (0 = unbounded), got %d", o.TSOBufCap)
	}
	if o.StatefulPrune && o.Fair {
		return errors.New("search: StatefulPrune is unsound with Fair (the fair scheduler's state is path-dependent)")
	}
	if o.SleepSets && o.Fair {
		return errors.New("search: SleepSets is unsound with Fair (the reduction assumes transitions commute)")
	}
	if o.RandomWalk && o.PCT {
		return errors.New("search: RandomWalk and PCT are mutually exclusive")
	}
	if (o.RandomWalk || o.PCT) && o.MaxExecutions <= 0 && o.TimeLimit <= 0 {
		return errors.New("search: RandomWalk/PCT never exhausts; set MaxExecutions or TimeLimit")
	}
	if o.DPOR && (o.Fair || o.RandomWalk || o.PCT ||
		o.DepthBound > 0 || o.RandomTail || o.StatefulPrune) {
		return errors.New("search: DPOR requires a plain unfair systematic search (no Fair/RandomWalk/PCT/DepthBound/RandomTail/StatefulPrune)")
	}
	if o.Parallelism > 1 {
		if o.StatefulPrune {
			return errors.New("search: StatefulPrune requires Parallelism <= 1 (the visited map is shared across executions)")
		}
		if o.SleepSets && !o.DPOR {
			// Under DPOR the sleep state rides inside the serializable
			// work units (por.Unit.Sleep) and parallelizes with them.
			return errors.New("search: SleepSets requires Parallelism <= 1 (sleep sets depend on sibling exploration order)")
		}
		if o.Monitor != nil {
			return errors.New("search: Monitor requires Parallelism <= 1 (monitors observe executions from one goroutine)")
		}
	}
	if o.CheckpointPath != "" || o.Resume != nil {
		switch {
		case o.StatefulPrune:
			return errors.New("search: checkpointing is incompatible with StatefulPrune (the visited map is not serialized)")
		case o.SleepSets && !o.DPOR:
			return errors.New("search: checkpointing is incompatible with SleepSets (sleep state is not serialized)")
		case o.Monitor != nil:
			return errors.New("search: checkpointing is incompatible with Monitor (monitor state is not serialized)")
		}
	}
	if ck := o.Resume; ck != nil {
		if err := o.validateResume(ck); err != nil {
			return err
		}
	}
	return nil
}

// memModel returns the parsed memory model the options select. Unknown
// names have been rejected by Validate; internal callers reaching this
// with an unvalidated string get the backstop panic.
func (o *Options) memModel() core.MemModel {
	m, err := core.ParseMemModel(o.MemModel)
	if err != nil {
		panic(err)
	}
	return m
}

// validateResume checks that a checkpoint belongs to this exact search
// so a resume silently exploring the wrong tree is impossible.
func (o *Options) validateResume(ck *Checkpoint) error {
	if !checkpointVersionReadable(ck.Version) {
		// v3 (pre-DPOR) and v4 (pre-weak-memory) checkpoints remain
		// readable: each later version only adds fields.
		return fmt.Errorf("search: resume: checkpoint format version %d, this build reads versions 3 through %d",
			ck.Version, CheckpointVersion)
	}
	if ck.Done {
		return errors.New("search: resume: checkpoint marks a completed search (stopped on a finding or exhausted the tree); re-running it would double-count results")
	}
	if ck.Meta.Program != o.ProgramName {
		return fmt.Errorf("search: resume: checkpoint was written for program %q, options name %q",
			ck.Meta.Program, o.ProgramName)
	}
	if got, want := strategyOf(o), ck.Meta.Strategy; got != want {
		return fmt.Errorf("search: resume: checkpoint strategy %q, options strategy %q", want, got)
	}
	if ck.Meta.Seed != o.Seed {
		return fmt.Errorf("search: resume: checkpoint seed %d, options seed %d", ck.Meta.Seed, o.Seed)
	}
	if ck.Meta.Parallelism != o.Parallelism {
		return fmt.Errorf("search: resume: checkpoint parallelism %d, options parallelism %d (sharding must match for deterministic continuation)",
			ck.Meta.Parallelism, o.Parallelism)
	}
	if got := optionsHash(o); ck.Meta.OptionsHash != got {
		return fmt.Errorf("search: resume: options hash mismatch (checkpoint %#x, options %#x): a semantic option differs from the checkpointed search; only budgets (MaxExecutions, TimeLimit) and operational settings may change across a resume",
			ck.Meta.OptionsHash, got)
	}
	if ck.Counters.Quarantined != int64(len(ck.Nondeterminism)) {
		return fmt.Errorf("search: resume: checkpoint counts %d quarantined subtrees but carries %d nondeterminism reports (corrupted checkpoint)",
			ck.Counters.Quarantined, len(ck.Nondeterminism))
	}
	// Strategy state must be present for the mode that will run.
	switch {
	case o.RandomWalk || o.PCT:
		if ck.Stride == nil {
			return errors.New("search: resume: checkpoint is missing the random-strategy frontier")
		}
	case o.DPOR:
		if ck.Dpor == nil {
			return errors.New("search: resume: checkpoint is missing the DPOR unit frontier")
		}
	case o.Parallelism > 1:
		if ck.Prefix == nil {
			return errors.New("search: resume: checkpoint is missing the prefix frontier")
		}
	default:
		if ck.Seq == nil {
			return errors.New("search: resume: checkpoint is missing the DFS stack")
		}
	}
	return nil
}
