package search

import (
	"fairmc/internal/engine"
	"fairmc/internal/por"
)

// This file implements conservative dynamic partial-order reduction in
// the lineage of Flanagan & Godefroid (POPL 2005), adapted to the
// stateless re-execution stack: instead of expanding every alternative
// at every choice point (full DFS), each frame starts with a single
// alternative and the search *earns* alternatives dynamically — when a
// step's transition conflicts with an earlier transition of another
// thread, the earlier step's frame gains a backtrack point that will
// reverse the pair.
//
// This variant is conservative: it inserts a backtrack point at every
// earlier conflicting step (the classic algorithm prunes further using
// happens-before clocks to keep only the last reversible race). That
// sacrifices some reduction for a simpler soundness argument — every
// reversal the clock-filtered algorithm performs is a subset of ours.
//
// Guarantee (as for classic DPOR): on programs that terminate under
// every schedule, all deadlocks and all assertion violations are
// found. Unlike sleep sets, DPOR does *not* visit every intermediate
// state — it explores one representative per Mazurkiewicz trace — so
// it is a bug-finding mode, not a state-coverage mode. It requires the
// unfair scheduler (like sleep sets: priority state breaks
// commutativity) and composes with sleep sets.

// dporAnalyze runs the backtrack-point insertion for the step about to
// execute: frame index n (== s.pos-1 after the frame bookkeeping),
// chosen alternative alt.
func (s *searcher) dporAnalyze(ctx *engine.ChooseContext, n int, alt engine.Alt) {
	m := por.MoveOf(ctx.Engine, alt)
	for i := n - 1; i >= 0; i-- {
		prev := s.executed[i]
		if prev.Tid == m.Tid || por.Independent(prev, m) {
			continue
		}
		fr := &s.stack[i]
		// Add the conflicting thread's alternatives at the earlier
		// state; if it was not enabled there, conservatively add
		// every alternative.
		added := false
		for _, a := range fr.full {
			if a.Tid == m.Tid {
				fr.addAlt(a)
				added = true
			}
		}
		if !added {
			for _, a := range fr.full {
				fr.addAlt(a)
			}
		}
	}
}

// addAlt appends a to the frame's exploration list unless present.
func (fr *frame) addAlt(a engine.Alt) {
	for _, x := range fr.alts {
		if x == a {
			return
		}
	}
	fr.alts = append(fr.alts, a)
}
