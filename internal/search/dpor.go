package search

// This file implements dynamic partial-order reduction over explicit,
// serializable work units (por.Unit), in the lineage of Flanagan &
// Godefroid (POPL 2005) reformulated the parsimonious way: instead of
// inserting backtrack points into shared DFS-stack state, every
// detected race spawns one self-contained unit — a schedule prefix
// ending in the race reversal, plus the sleep-set entries the reversal
// inherits. Units are independent: a worker replays the prefix
// (digest-verified, with the same retry/quarantine protocol as every
// other replay in this package), extends it with leftmost-awake
// choices to a complete execution, and reports the races found along
// the trace; the merge turns unseen reversals into child units.
//
// The merge consumes unit reports strictly in spawn (FIFO) order, and
// children are spawned in proposal-discovery order, so the explored
// tree, every counter, and every finding are functions of the program
// alone — independent of worker count and timing. That one property
// buys everything downstream: exploreDpor runs the identical
// enumeration at any Parallelism, the ShardMerger replays the identical
// enumeration across distributed workers (Shard.Unit), and checkpoints
// (DporState, format v4) capture the frontier as plain data.
//
// The race analysis itself (por.Analyze) is the conservative variant:
// every dependent pair proposes a reversal at the earlier step, with
// no happens-before filtering. Each pair is analyzed exactly once
// globally — a unit analyzes only pairs whose later step is at or past
// its branch point; earlier pairs occurred identically in the parent's
// trace. Guarantee (as for classic DPOR): on programs that terminate
// under every schedule, all deadlocks and assertion violations are
// found. It requires the unfair scheduler and composes with sleep
// sets, whose state rides inside the units (Unit.Sleep).

import (
	"fmt"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"

	"fairmc/internal/engine"
	"fairmc/internal/obs"
	"fairmc/internal/por"
)

// DporResult is the unit-exploration payload a DPOR work-unit report
// carries back to the merge: how the unit's execution continued past
// its prefix, and the race reversals its trace proposes. It rides on
// Report only for unit runs (RunShard with Shard.Unit, the internal
// workers of exploreDpor); merged reports never carry one.
type DporResult struct {
	// ContIdx are the filtered-candidate indices chosen at the steps
	// past the unit's prefix, and Cont the corresponding alternatives;
	// the unit's full path is Unit.Path + ContIdx.
	ContIdx []int        `json:"contIdx,omitempty"`
	Cont    []engine.Alt `json:"cont,omitempty"`
	// ContDigs are the conformance digests of the continuation steps
	// (empty when conformance is disabled).
	ContDigs []engine.StepDigest `json:"contDigs,omitempty"`
	// Nodes carries the candidate landscape of every step that received
	// at least one proposal — what the merge needs to materialize child
	// units.
	Nodes []DporNodeRec `json:"nodes,omitempty"`
	// Proposals are the race reversals the trace proposes, in
	// discovery order.
	Proposals []DporProposal `json:"proposals,omitempty"`
}

// DporNodeRec is one step's recorded candidate landscape: the
// context-bound-filtered alternatives, their moves, and the
// conformance digest of the state.
type DporNodeRec struct {
	// Pos is the 0-based step index within the unit's full path.
	Pos int `json:"pos"`
	// Alts is the filtered candidate list at the step's state.
	Alts []engine.Alt `json:"alts"`
	// Moves[i] is the pending move of Alts[i] at that state.
	Moves []por.Move `json:"moves"`
	// Hash is the unfiltered candidate-set digest of the state (0 when
	// conformance is disabled).
	Hash uint64 `json:"hash,omitempty"`
}

// DporProposal mirrors por.Proposal with JSON tags for transport: take
// alternative Idx at step Pos.
type DporProposal struct {
	Pos int `json:"pos"`
	Idx int `json:"idx"`
}

// DporTraceRec is the compact history of one consumed work unit, kept
// for checkpoint/resume: the unit's path, and the continuation indices
// its run chose (empty for quarantined or skipped units). The merge's
// dedup set is exactly the prefixes of Path+Cont over all consumed
// units plus the paths of pending units, so a resume reconstructs it
// from these records alone.
type DporTraceRec struct {
	Path []int `json:"path,omitempty"`
	Cont []int `json:"cont,omitempty"`
}

// DporState is the DPOR frontier of a checkpoint (format v4): the
// consumed-unit count, the pending units in spawn order, and the
// consumed-unit trace records the dedup set is rebuilt from.
type DporState struct {
	// Merged counts work units consumed by the merge across all
	// sessions of the search.
	Merged int64 `json:"merged"`
	// AllExhausted is false once any unit was skipped or quarantined.
	AllExhausted bool `json:"allExhausted"`
	// Units are the spawned-but-unmerged units in spawn order; resume
	// re-runs exactly these (results in flight at checkpoint time are
	// recomputed).
	Units []por.Unit `json:"units,omitempty"`
	// Traces records every consumed unit, in consumption order.
	Traces []DporTraceRec `json:"traces,omitempty"`
}

// unitChooser executes one DPOR work unit: it replays the unit's
// schedule under digest verification, then extends the execution with
// leftmost-awake choices, recording the per-step candidate landscape
// por.Analyze consumes.
type unitChooser struct {
	opts *Options
	unit *por.Unit

	pos         int
	preemptUsed int
	sleep       por.Set

	steps    []por.ExecStep
	hashes   []uint64 // unfiltered candidate-set digest per step (conformance on)
	contIdx  []int
	cont     []engine.Alt
	contDigs []engine.StepDigest

	div        *engine.DivergenceError
	abortSleep bool
}

// Choose implements engine.Chooser for one unit execution.
func (c *unitChooser) Choose(ctx *engine.ChooseContext) (engine.Alt, bool) {
	e := ctx.Engine
	step := c.pos
	var hash uint64
	haveDig := !c.opts.DisableConformance
	if haveDig {
		hash = e.CandsDigest(ctx.Cands)
	}
	replay := step < len(c.unit.Sched)
	if replay {
		want := c.unit.Sched[step]
		if err := altIn(want, ctx.Cands); err != "" {
			// The recorded alternative is not schedulable anymore: the
			// program is nondeterministic outside the scheduler's
			// control. Abort for retry/quarantine.
			exp := engine.StepDigest{}
			if step < len(c.unit.Digs) {
				exp = c.unit.Digs[step]
			}
			c.div = &engine.DivergenceError{
				Step:           step,
				Want:           want,
				Expected:       exp,
				Observed:       e.StepDigest(ctx.Cands, want),
				NumCands:       len(ctx.Cands),
				NotSchedulable: true,
			}
			return engine.Alt{}, false
		}
		if haveDig && step < len(c.unit.Digs) {
			obsOp := e.PendingOpInfo(want.Tid)
			exp := c.unit.Digs[step]
			if hash != exp.Hash || obsOp != exp.Op {
				c.div = &engine.DivergenceError{
					Step:     step,
					Want:     want,
					Expected: exp,
					Observed: engine.StepDigest{Hash: hash, Tid: want.Tid, Op: obsOp},
					NumCands: len(ctx.Cands),
				}
				return engine.Alt{}, false
			}
		}
	}

	// The same frontier filtering as the sequential searcher: the
	// preemption budget first (Path indices are relative to this list),
	// then the sleep mask. ctx.Cands is the engine's reused buffer, so
	// the recorded list must be an owned copy.
	alts := ctx.Cands
	owned := false
	if c.opts.ContextBound >= 0 && c.preemptUsed >= c.opts.ContextBound {
		alts = nonPreempting(ctx)
		if len(alts) == 0 {
			panic("search: empty alternative set under context bound")
		}
		owned = true
	}
	if !owned {
		alts = append([]engine.Alt(nil), alts...)
	}
	if c.opts.SleepSets && step < len(c.unit.Sleep) {
		// Install the serialized sleep entries for this state — the
		// siblings already covered when the unit was spawned — before
		// computing the awake mask.
		for _, m := range c.unit.Sleep[step] {
			c.sleep.Add(m)
		}
	}
	rec := por.ExecStep{
		Alts:  alts,
		Moves: make([]por.Move, len(alts)),
		Awake: make([]bool, len(alts)),
	}
	for i, a := range alts {
		rec.Moves[i] = por.MoveOf(e, a)
		rec.Awake[i] = !c.opts.SleepSets || !c.sleep.Contains(e, a)
	}

	var chosen engine.Alt
	if replay {
		chosen = c.unit.Sched[step]
	} else {
		k := -1
		for i := range alts {
			if rec.Awake[i] {
				k = i
				break
			}
		}
		if k < 0 {
			// Every alternative is asleep: the state's successors are
			// covered by sibling units. Prune.
			c.abortSleep = true
			return engine.Alt{}, false
		}
		chosen = alts[k]
		c.contIdx = append(c.contIdx, k)
		c.cont = append(c.cont, chosen)
		if haveDig {
			c.contDigs = append(c.contDigs, engine.StepDigest{
				Hash: hash, Tid: chosen.Tid, Op: e.PendingOpInfo(chosen.Tid),
			})
		}
	}
	rec.Chosen = por.MoveOf(e, chosen)
	c.steps = append(c.steps, rec)
	if haveDig {
		c.hashes = append(c.hashes, hash)
	}
	if ctx.IsPreemption(chosen) {
		c.preemptUsed++
	}
	if c.opts.SleepSets {
		c.sleep.Step(rec.Chosen)
	}
	c.pos++
	return chosen, true
}

// runDporUnit executes one work unit to completion and returns its
// report, ready for dporMerger.offer (or, distributed, for
// ShardMerger.Offer). It mirrors the sequential execution loop
// exactly: divergence retry then quarantine, unconditional counter
// accounting, classify semantics per outcome.
func runDporUnit(prog func(*engine.T), opts *Options, pool *engine.Pool, unit *por.Unit, deadline time.Time) *Report {
	var r *engine.Result
	var c *unitChooser
	for attempt := 1; ; attempt++ {
		c = &unitChooser{opts: opts, unit: unit}
		cfg := engine.Config{
			Fair:        opts.Fair,
			FairK:       opts.FairK,
			MaxSteps:    opts.MaxSteps,
			MemModel:    opts.memModel(),
			TSOBufCap:   opts.TSOBufCap,
			RecordTrace: opts.RecordTrace,
			Monitor:     opts.Monitor,
			Watchdog:    opts.Watchdog,
			Deadline:    deadline,
			Metrics:     opts.Metrics,
			EventSink:   opts.EventSink,
			ExecIndex:   1,
			NoFastPath:  opts.NoFastPath,
		}
		if opts.NoFastPath {
			r = engine.Run(prog, c, cfg)
		} else {
			r = pool.Run(prog, c, cfg)
		}
		if c.div == nil {
			break
		}
		if m := opts.Metrics; m != nil {
			m.ReplayDivergences.Inc()
		}
		if attempt > opts.divergenceRetries() {
			return quarantineUnitReport(opts, unit, c.div, attempt)
		}
	}

	rep := &Report{
		Executions:     1,
		TotalSteps:     r.Steps,
		MaxDepth:       r.Steps,
		Yields:         r.Yields,
		EdgeAdds:       r.EdgeAdds,
		EdgeErases:     r.EdgeErases,
		FairBlocked:    r.FairBlocked,
		BufferedStores: r.WM.BufferedStores,
		Flushes:        r.WM.Flushes,
		Fences:         r.WM.Fences,
		Forwards:       r.WM.Forwards,
		Exhausted:      true,
	}
	switch r.Outcome {
	case engine.Terminated:
	case engine.Deadlock:
		rep.Deadlocks = 1
		rep.FirstBug = reproduceStandalone(prog, *opts, r)
		rep.FirstBugExecution = 1
		emitUnitFinding(opts, "deadlock", r)
	case engine.Violation:
		rep.Violations = 1
		rep.FirstBug = reproduceStandalone(prog, *opts, r)
		rep.FirstBugExecution = 1
		emitUnitFinding(opts, "violation", r)
	case engine.Diverged:
		// DPOR requires the unfair scheduler, where exceeding the step
		// bound is an ordinary nonterminating execution, not a finding.
		rep.NonTerminating = 1
	case engine.Wedged:
		rep.Wedges = 1
		rep.FirstWedge = r
		rep.FirstWedgeExecution = 1
		emitUnitFinding(opts, "wedge", r)
	case engine.Aborted:
		if r.DeadlineExceeded {
			// The shared deadline cut this unit; the merge discards the
			// partial work so a resume re-runs the unit in full.
			rep.TimedOut = true
			return rep
		}
		if !c.abortSleep {
			panic("search: unexpected abort in DPOR unit run")
		}
		rep.PrunedSleep = 1
	default:
		panic("search: unknown outcome in DPOR unit run")
	}
	rep.Dpor = buildDporResult(opts, unit, c)
	return rep
}

// quarantineUnitReport builds the report of a unit whose prefix replay
// persistently stopped conforming, mirroring searcher.quarantine.
func quarantineUnitReport(opts *Options, unit *por.Unit, div *engine.DivergenceError, attempts int) *Report {
	k := div.Step + 1
	if k > len(unit.Sched) {
		k = len(unit.Sched)
	}
	prefix := append([]engine.Alt(nil), unit.Sched[:k]...)
	rep := &Report{
		Quarantined: 1,
		Nondeterminism: []NondeterminismReport{{
			Prefix:         prefix,
			Step:           div.Step,
			Want:           div.Want,
			Expected:       div.Expected,
			Observed:       div.Observed,
			NotSchedulable: div.NotSchedulable,
			Attempts:       attempts,
		}},
	}
	if m := opts.Metrics; m != nil {
		m.Quarantined.Inc()
	}
	if sink := opts.EventSink; sink != nil {
		reason := "digest mismatch"
		if div.NotSchedulable {
			reason = "recorded alternative not schedulable"
		}
		sink.Emit(obs.Event{Type: "quarantine", Quarantine: &obs.QuarantineEvent{
			PrefixLen: len(prefix),
			Attempts:  attempts,
			Reason:    reason,
		}})
	}
	return rep
}

// emitUnitFinding publishes a finding classified by a unit run.
func emitUnitFinding(opts *Options, kind string, r *engine.Result) {
	sink := opts.EventSink
	if sink == nil {
		return
	}
	sink.Emit(obs.Event{Type: "finding", Exec: 1, Finding: &obs.FindingEvent{
		Kind:    kind,
		Steps:   int(r.Steps),
		Message: findingMessage(kind, r),
	}})
}

// buildDporResult runs the race analysis over the unit's trace and
// packages the result for the merge.
func buildDporResult(opts *Options, unit *por.Unit, c *unitChooser) *DporResult {
	props := por.Analyze(len(unit.Sched)-1, c.steps)
	if m := opts.Metrics; m != nil && len(props) > 0 {
		m.DporRaces.Add(int64(len(props)))
	}
	d := &DporResult{ContIdx: c.contIdx, Cont: c.cont, ContDigs: c.contDigs}
	if len(props) == 0 {
		return d
	}
	d.Proposals = make([]DporProposal, len(props))
	haveNode := make(map[int]bool)
	for i, pr := range props {
		d.Proposals[i] = DporProposal{Pos: pr.Pos, Idx: pr.Idx}
		if haveNode[pr.Pos] {
			continue
		}
		haveNode[pr.Pos] = true
		st := &c.steps[pr.Pos]
		var hash uint64
		if pr.Pos < len(c.hashes) {
			hash = c.hashes[pr.Pos]
		}
		d.Nodes = append(d.Nodes, DporNodeRec{Pos: pr.Pos, Alts: st.Alts, Moves: st.Moves, Hash: hash})
	}
	return d
}

// pathKey encodes a unit path as the merge's dedup-set key.
func pathKey(path []int) string {
	var b strings.Builder
	for i, v := range path {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// dporMerger folds unit reports into a merged report in spawn order
// and materializes child units from unseen reversal proposals. It is
// the single merge definition shared by the in-process driver
// (exploreDpor) and the distributed coordinator (ShardMerger), which
// is what makes local and distributed DPOR reports byte-identical.
type dporMerger struct {
	opts *Options
	rep  *Report
	// seen holds the path keys of every spawned unit and every prefix
	// of every consumed unit's full path: the Mazurkiewicz-trace dedup
	// set that keeps reversals from re-spawning explored subtrees.
	seen         map[string]bool
	traces       []DporTraceRec
	allExhausted bool
}

func newDporMerger(opts *Options, rep *Report) *dporMerger {
	return &dporMerger{
		opts:         opts,
		rep:          rep,
		seen:         map[string]bool{"": true}, // the root unit's path mark
		allExhausted: true,
	}
}

// markPath marks every prefix of path as seen (resume reconstruction;
// prefixes of a spawned unit's path are provably already seen in the
// original run, so over-marking cannot change the enumeration).
func (dm *dporMerger) markPath(path []int) {
	for k := 1; k <= len(path); k++ {
		dm.seen[pathKey(path[:k])] = true
	}
}

// restore re-seeds the merger from checkpointed trace records.
func (dm *dporMerger) restore(traces []DporTraceRec, allExhausted bool) {
	dm.traces = append(dm.traces, traces...)
	dm.allExhausted = allExhausted
	for _, tr := range traces {
		full := make([]int, 0, len(tr.Path)+len(tr.Cont))
		full = append(full, tr.Path...)
		full = append(full, tr.Cont...)
		dm.markPath(full)
	}
}

// offer folds one unit's report into the merged report and returns the
// child units its proposals spawn, in canonical (proposal-discovery)
// order.
//
// Returns:
//   - children: new units to enqueue, nil on any stop.
//   - counted: the unit was consumed and the merge index advances.
//     False only for a budget-cut unit, which a resume re-runs.
//   - stopped: no further unit may be merged.
//   - done: the stop is terminal (a finding), not a budget cut.
func (dm *dporMerger) offer(unit *por.Unit, r *Report) (children []*por.Unit, counted, stopped, done bool) {
	counted, stopped, done = mergeSubtree(dm.opts, dm.rep, r, &dm.allExhausted)
	if !counted {
		return nil, false, stopped, done
	}
	if r == nil || r.Dpor == nil {
		// Skipped after repeated crashes, or quarantined: the unit
		// consumed its turn but spawns nothing. Record its path so a
		// resume reconstructs the dedup set.
		dm.traces = append(dm.traces, DporTraceRec{Path: append([]int(nil), unit.Path...)})
		return nil, true, stopped, done
	}
	d := r.Dpor
	fullPath := make([]int, 0, len(unit.Path)+len(d.ContIdx))
	fullPath = append(fullPath, unit.Path...)
	fullPath = append(fullPath, d.ContIdx...)
	// Mark the taken path first: proposals matching a step the unit
	// itself took (or any already-spawned sibling) are redundant.
	dm.markPath(fullPath)
	dm.traces = append(dm.traces, DporTraceRec{
		Path: append([]int(nil), unit.Path...),
		Cont: append([]int(nil), d.ContIdx...),
	})
	if stopped {
		return nil, true, stopped, done
	}
	fullSched := make([]engine.Alt, 0, len(unit.Sched)+len(d.Cont))
	fullSched = append(fullSched, unit.Sched...)
	fullSched = append(fullSched, d.Cont...)
	var fullDigs []engine.StepDigest
	if !dm.opts.DisableConformance {
		fullDigs = make([]engine.StepDigest, 0, len(unit.Digs)+len(d.ContDigs))
		fullDigs = append(fullDigs, unit.Digs...)
		fullDigs = append(fullDigs, d.ContDigs...)
	}
	nodeAt := make(map[int]*DporNodeRec, len(d.Nodes))
	for i := range d.Nodes {
		nodeAt[d.Nodes[i].Pos] = &d.Nodes[i]
	}
	for _, pr := range d.Proposals {
		node := nodeAt[pr.Pos]
		if node == nil || pr.Pos >= len(fullPath) || pr.Idx >= len(node.Alts) {
			continue // malformed payload (defensive; never produced by runDporUnit)
		}
		childPath := make([]int, 0, pr.Pos+1)
		childPath = append(childPath, fullPath[:pr.Pos]...)
		childPath = append(childPath, pr.Idx)
		key := pathKey(childPath)
		if dm.seen[key] {
			if m := dm.opts.Metrics; m != nil {
				m.DporUnitsPruned.Inc()
			}
			continue
		}
		dm.seen[key] = true
		child := &por.Unit{
			Path:  childPath,
			Sched: append(append(make([]engine.Alt, 0, pr.Pos+1), fullSched[:pr.Pos]...), node.Alts[pr.Idx]),
		}
		if fullDigs != nil && len(fullDigs) >= pr.Pos {
			child.Digs = append(append(make([]engine.StepDigest, 0, pr.Pos+1), fullDigs[:pr.Pos]...),
				engine.StepDigest{Hash: node.Hash, Tid: node.Alts[pr.Idx].Tid, Op: node.Moves[pr.Idx].Info})
		}
		if dm.opts.SleepSets {
			// The child inherits the parent's installed sleep entries
			// along the shared prefix, and at the branch point puts every
			// already-covered sibling to sleep. Spawn order makes the
			// covered-by relation acyclic, which is what keeps the
			// reduction sound.
			sleep := make([][]por.Move, pr.Pos+1)
			for k := 0; k < pr.Pos && k < len(unit.Sleep); k++ {
				sleep[k] = unit.Sleep[k]
			}
			var sl []por.Move
			for j := range node.Alts {
				if j == pr.Idx {
					continue
				}
				sib := append(append(make([]int, 0, pr.Pos+1), fullPath[:pr.Pos]...), j)
				if dm.seen[pathKey(sib)] {
					sl = append(sl, node.Moves[j])
				}
			}
			sleep[pr.Pos] = sl
			child.Sleep = sleep
		}
		children = append(children, child)
	}
	return children, true, false, false
}

// dporQueue hands work units to workers: fresh units in spawn order,
// crashed units requeued for one retry. Unlike the prefix queue, the
// unit list grows while workers run (the merge enqueues children), so
// idle workers block on the condition variable until more work arrives
// or the queue is sealed.
type dporQueue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	units    []*por.Unit
	next     int
	requeued []int
	attempts map[int]int
	sealed   bool
}

func newDporQueue() *dporQueue {
	q := &dporQueue{attempts: map[int]int{}}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// add enqueues units (spawn order = merge order).
func (q *dporQueue) add(units []*por.Unit) {
	q.mu.Lock()
	q.units = append(q.units, units...)
	q.cond.Broadcast()
	q.mu.Unlock()
}

// get claims the next unit, retries first; ok=false means the queue is
// sealed and drained.
func (q *dporQueue) get() (idx int, unit *por.Unit, attempt int, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if len(q.requeued) > 0 {
			i := q.requeued[0]
			q.requeued = q.requeued[1:]
			return i, q.units[i], q.attempts[i] + 1, true
		}
		if q.next < len(q.units) {
			i := q.next
			q.next++
			return i, q.units[i], 1, true
		}
		if q.sealed {
			return 0, nil, 0, false
		}
		q.cond.Wait()
	}
}

// fail records a crashed attempt; true means the unit was requeued.
func (q *dporQueue) fail(i int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.attempts[i]++
	if q.attempts[i] >= workerAttempts {
		return false
	}
	q.requeued = append(q.requeued, i)
	q.cond.Broadcast()
	return true
}

// seal marks the queue closed: blocked getters drain and exit.
func (q *dporQueue) seal() {
	q.mu.Lock()
	q.sealed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// total is the number of units ever enqueued.
func (q *dporQueue) total() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.units)
}

// unitAt returns the unit at spawn index i.
func (q *dporQueue) unitAt(i int) *por.Unit {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.units[i]
}

// pendingUnits copies the unmerged units in spawn order (checkpoints).
func (q *dporQueue) pendingUnits(merged int) []por.Unit {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]por.Unit, 0, len(q.units)-merged)
	for _, u := range q.units[merged:] {
		out = append(out, *u)
	}
	return out
}

// runDporUnitRecover executes one unit under recover: a crash anywhere
// below becomes a recorded WorkerFailure, not a process abort.
func runDporUnitRecover(prog func(*engine.T), opts Options, pool *engine.Pool,
	unit *por.Unit, deadline time.Time, idx, attempt int, fails *failSink) (rep *Report, failed bool) {
	defer func() {
		if p := recover(); p != nil {
			fails.add(WorkerFailure{Mode: "dpor", Unit: int64(idx), Attempt: attempt,
				Panic: fmt.Sprint(p), Stack: string(debug.Stack())})
			observeWorkerRetry(&opts)
			rep, failed = nil, true
		}
	}()
	if h := workerFaultHook; h != nil {
		h("dpor", int64(idx))
	}
	return runDporUnit(prog, &opts, pool, unit, deadline), false
}

// exploreDpor is the DPOR driver for every local Parallelism (1..N):
// P workers execute units from a shared FIFO queue while the merge
// consumes reports strictly in spawn order, enqueueing children as
// proposals arrive. Because both the spawn order and the merge order
// are functions of the unit reports alone, the merged report is
// byte-identical at any P — and to a distributed run, which feeds the
// same units through ShardMerger.
func exploreDpor(prog func(*engine.T), opts Options) *Report {
	p := opts.Parallelism
	if p < 1 {
		p = 1
	}
	start := time.Now()
	var deadline time.Time
	if opts.TimeLimit > 0 {
		deadline = start.Add(opts.TimeLimit)
	}

	rep := &Report{}
	dm := newDporMerger(&opts, rep)
	q := newDporQueue()
	var prevElapsed time.Duration
	var consumed int64
	if ck := opts.Resume; ck != nil {
		applyCheckpoint(rep, ck)
		prevElapsed = time.Duration(ck.Counters.ElapsedNS)
		observeResume(&opts, ck)
		st := ck.Dpor
		consumed = st.Merged
		dm.restore(st.Traces, st.AllExhausted)
		units := make([]*por.Unit, len(st.Units))
		for i := range st.Units {
			u := st.Units[i]
			units[i] = &u
			dm.markPath(u.Path)
		}
		q.add(units)
	} else {
		q.add([]*por.Unit{{}}) // the root unit: the search's first execution
	}
	fails := &failSink{list: rep.WorkerFailures}

	type dporRes struct {
		idx int
		rep *Report // nil: skipped after repeated worker crashes
	}
	results := make(chan dporRes, 64)
	var wg sync.WaitGroup
	subOpts := opts
	subOpts.Parallelism = 1
	subOpts.TimeLimit = 0       // the shared deadline is passed explicitly
	subOpts.CheckpointPath = "" // the driver checkpoints at merge granularity
	subOpts.Resume = nil
	subOpts.Stop = nil
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var pool engine.Pool
			defer pool.Close()
			for {
				i, unit, attempt, ok := q.get()
				if !ok {
					return
				}
				r, failed := runDporUnitRecover(prog, subOpts, &pool, unit, deadline, i, attempt, fails)
				if failed {
					if q.fail(i) {
						continue // requeued for one retry
					}
					results <- dporRes{i, nil}
					continue
				}
				results <- dporRes{i, r}
			}
		}()
	}

	lastCkpt := start
	done := false
	merged := 0
	writeCkpt := func(d bool) {
		if opts.CheckpointPath == "" {
			return
		}
		rep.WorkerFailures = fails.sorted()
		ck := buildCheckpoint(&opts, rep, prevElapsed+time.Since(start), d)
		ck.Dpor = &DporState{
			Merged:       consumed,
			AllExhausted: dm.allExhausted,
			Units:        q.pendingUnits(merged),
			Traces:       dm.traces,
		}
		if err := ck.WriteFile(opts.CheckpointPath); err != nil {
			if rep.CheckpointError == "" {
				rep.CheckpointError = err.Error()
			}
			return
		}
		observeCheckpoint(&opts, rep.Executions)
	}

	pending := make(map[int]*Report)
	stopped := false
merge:
	for merged < q.total() {
		// The same pre-execution budget checks the sequential loop makes:
		// they run only while a next unit is pending, so the stop flags
		// land on the identical execution boundary.
		if opts.MaxExecutions > 0 && rep.Executions >= opts.MaxExecutions {
			rep.ExecBounded = true
			stopped = true
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			rep.TimedOut = true
			stopped = true
			break
		}
		if opts.Stop != nil {
			select {
			case <-opts.Stop:
				rep.Interrupted = true
				stopped = true
				break merge
			default:
			}
		}
		r, ok := pending[merged]
		if !ok {
			if opts.Stop != nil {
				select {
				case pr := <-results:
					pending[pr.idx] = pr.rep
				case <-opts.Stop:
					rep.Interrupted = true
					stopped = true
					break merge
				}
			} else {
				pr := <-results
				pending[pr.idx] = pr.rep
			}
			continue
		}
		delete(pending, merged)
		children, counted, st, dn := dm.offer(q.unitAt(merged), r)
		if counted {
			if len(children) > 0 {
				q.add(children)
			}
			merged++
			consumed++
			if m := opts.Metrics; m != nil {
				n := int64(q.total() - merged)
				m.DporUnitQueue.Set(n)
				m.Frontier.Set(n) // unmerged units, like the prefix driver
			}
			if opts.CheckpointPath != "" {
				iv := opts.CheckpointInterval
				if iv <= 0 {
					iv = defaultCheckpointInterval
				}
				if time.Since(lastCkpt) >= iv {
					lastCkpt = time.Now()
					writeCkpt(false)
				}
			}
		}
		if st {
			stopped = true
			done = done || dn
			break
		}
	}
	q.seal()
	go func() {
		wg.Wait()
		close(results)
	}()
	for range results {
		// Drain in-flight results so workers never block on send.
	}

	rep.Exhausted = !stopped && merged == q.total() && dm.allExhausted
	if rep.Exhausted {
		done = true
	}
	rep.WorkerFailures = fails.sorted()
	rep.Elapsed = prevElapsed + time.Since(start)
	writeCkpt(done)
	return rep
}
