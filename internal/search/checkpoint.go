package search

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"time"

	"fairmc/internal/core"
	"fairmc/internal/engine"
	"fairmc/internal/fsx"
)

// This file implements checkpoint/resume: a long-running search
// periodically serializes its progress to a JSON file so that a crash,
// an eviction, or a deliberate SIGINT loses at most one checkpoint
// interval of work. A checkpoint captures (a) the accumulated Report
// counters and findings, and (b) the strategy-specific frontier —
// enough to restart the search at exactly the same point in its
// deterministic enumeration:
//
//   - Random strategies (RandomWalk, PCT): executions are seeded by
//     global index (rng.Mix(Seed, i)), so the frontier is a single
//     integer — the next index to run. This holds sequentially and in
//     stride-parallel mode (NextIndex is then the next round base).
//   - Sequential systematic search: the DFS stack (alternatives and
//     the index taken at each frame), restored verbatim so the next
//     execution replays the saved prefix and explores below it.
//   - Prefix-parallel systematic search: the DFS-ordered frontier of
//     schedule prefixes plus how many of them have been merged;
//     resuming re-runs only the unmerged suffix.
//
// Findings (FirstBug, Divergence, FirstWedge) are stored as their full
// engine.Result: replay cannot regenerate a wedge (the wedged step is
// deliberately absent from the schedule), and storing the result makes
// a resumed report identical to an uninterrupted one by construction.
//
// Writes are atomic (tmp file + rename in the destination directory)
// so a crash mid-write leaves the previous checkpoint intact. Meta
// identifies what the checkpoint belongs to; Options.Validate rejects
// a resume whose program, strategy, seed, options hash, or parallelism
// does not match, and rejects Done checkpoints (the search stopped for
// a reason resuming cannot continue past, e.g. a first finding —
// rerunning it would double-count the finding's execution).

// CheckpointVersion is the on-disk format version; bump on any
// incompatible change to the Checkpoint schema. Version 2 added the
// conformance digests (per-frame and per-prefix), the Quarantined
// counter, and the NondeterminismReports; version-1 checkpoints lack
// the digests the resumed search would verify replays against, so
// they are rejected rather than silently resumed unverified.
// Version 3 added the fair-scheduler counters (Yields, EdgeAdds,
// EdgeErases, FairBlocked); resuming a version-2 checkpoint would
// zero them and break run-report determinism across a resume, so old
// checkpoints are rejected.
// Version 4 added the DPOR work-unit frontier (Dpor: pending units in
// spawn order plus consumed-unit trace records) and the pruning
// counters (PrunedVisited, PrunedSleep). It is purely additive, so
// version-3 checkpoints remain readable.
// Version 5 added the weak-memory counters (BufferedStores, Flushes,
// Fences, Forwards). Also purely additive — versions 3 and 4 remain
// readable (their wm counters resume as zero, which is exact: those
// searches could not have run under TSO, whose options fold into the
// options hash) — and this build always writes version 5.
const CheckpointVersion = 5

// checkpointVersionReadable reports the on-disk format versions this
// build can resume from.
func checkpointVersionReadable(v int) bool {
	return v >= 3 && v <= CheckpointVersion
}

// defaultCheckpointInterval is used when CheckpointPath is set but
// CheckpointInterval is zero.
const defaultCheckpointInterval = 30 * time.Second

// CheckpointMeta identifies the search a checkpoint belongs to. All
// fields are validated on resume.
type CheckpointMeta struct {
	// Program is Options.ProgramName at write time.
	Program string `json:"program,omitempty"`
	// Strategy is "random", "pct", or "dfs" (any systematic search).
	Strategy string `json:"strategy"`
	Seed     uint64 `json:"seed"`
	// OptionsHash fingerprints the semantic options (everything that
	// changes the explored schedule set). Budget options
	// (MaxExecutions, TimeLimit) and operational options (Watchdog,
	// checkpoint settings) are excluded so a resume may raise budgets.
	OptionsHash uint64 `json:"optionsHash"`
	Parallelism int    `json:"parallelism"`
}

// CheckpointCounters is the accumulated Report state.
type CheckpointCounters struct {
	Executions     int64 `json:"executions"`
	TotalSteps     int64 `json:"totalSteps"`
	MaxDepth       int64 `json:"maxDepth"`
	Yields         int64 `json:"yields"`
	EdgeAdds       int64 `json:"edgeAdds"`
	EdgeErases     int64 `json:"edgeErases"`
	FairBlocked    int64 `json:"fairBlocked"`
	NonTerminating int64 `json:"nonTerminating"`
	PrunedVisited  int64 `json:"prunedVisited,omitempty"`
	PrunedSleep    int64 `json:"prunedSleep,omitempty"`
	Deadlocks      int64 `json:"deadlocks"`
	Violations     int64 `json:"violations"`
	Wedges         int64 `json:"wedges"`
	Skipped        int64 `json:"skipped"`
	Quarantined    int64 `json:"quarantined,omitempty"`
	BufferedStores int64 `json:"bufferedStores,omitempty"`
	Flushes        int64 `json:"flushes,omitempty"`
	Fences         int64 `json:"fences,omitempty"`
	Forwards       int64 `json:"forwards,omitempty"`
	ElapsedNS      int64 `json:"elapsedNs"`
}

// savedFrame is one DFS stack frame of the sequential systematic
// searcher, including its conformance digest so a resumed search
// keeps verifying replays of the saved prefix.
type savedFrame struct {
	Alts   []engine.Alt    `json:"alts"`
	Idx    int             `json:"idx"`
	Dig    uint64          `json:"dig,omitempty"`
	HasDig bool            `json:"hasDig,omitempty"`
	Ops    []engine.OpInfo `json:"ops,omitempty"`
}

// SeqState is the sequential systematic searcher's frontier.
type SeqState struct {
	Stack []savedFrame `json:"stack"`
}

// StrideState is the random strategies' frontier: the next execution
// index (sequential) or next round base (stride-parallel).
type StrideState struct {
	NextIndex int64 `json:"nextIndex"`
}

// SavedPrefix is one frontier prefix of the prefix-parallel search.
type SavedPrefix struct {
	Sched []engine.Alt        `json:"sched"`
	Digs  []engine.StepDigest `json:"digs,omitempty"`
	Leaf  bool                `json:"leaf,omitempty"`
}

// PrefixState is the prefix-parallel searcher's frontier.
type PrefixState struct {
	Frontier []SavedPrefix `json:"frontier"`
	// Merged counts frontier prefixes whose subtree reports have been
	// merged; resume re-runs prefixes [Merged, len(Frontier)).
	Merged       int  `json:"merged"`
	AllExhausted bool `json:"allExhausted"`
}

// Checkpoint is a resumable snapshot of search progress.
type Checkpoint struct {
	Version int            `json:"version"`
	Meta    CheckpointMeta `json:"meta"`
	// Done marks a terminal checkpoint: the search stopped on a
	// finding or exhausted the tree. Resuming it would re-count work,
	// so Validate rejects it; resumable stops are ExecBounded,
	// TimedOut, and Interrupted.
	Done     bool               `json:"done,omitempty"`
	Counters CheckpointCounters `json:"counters"`

	FirstBug            *engine.Result `json:"firstBug,omitempty"`
	FirstBugExecution   int64          `json:"firstBugExecution,omitempty"`
	Divergence          *engine.Result `json:"divergence,omitempty"`
	DivergenceExecution int64          `json:"divergenceExecution,omitempty"`
	FirstWedge          *engine.Result `json:"firstWedge,omitempty"`
	FirstWedgeExecution int64          `json:"firstWedgeExecution,omitempty"`

	WorkerFailures []WorkerFailure `json:"workerFailures,omitempty"`
	// Nondeterminism carries the quarantined-subtree reports alongside
	// the Counters.Quarantined count (validated for consistency on
	// resume).
	Nondeterminism []NondeterminismReport `json:"nondeterminism,omitempty"`

	Stride *StrideState `json:"stride,omitempty"`
	Seq    *SeqState    `json:"seq,omitempty"`
	Prefix *PrefixState `json:"prefix,omitempty"`
	Dpor   *DporState   `json:"dpor,omitempty"`
}

// LoadCheckpoint reads and decodes a checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("search: reading checkpoint: %w", err)
	}
	ck := &Checkpoint{}
	if err := json.Unmarshal(data, ck); err != nil {
		return nil, fmt.Errorf("search: decoding checkpoint %s: %w", path, err)
	}
	if !checkpointVersionReadable(ck.Version) {
		return nil, fmt.Errorf("search: checkpoint %s has format version %d, this build reads versions 3 through %d",
			path, ck.Version, CheckpointVersion)
	}
	return ck, nil
}

// WriteFile atomically and durably persists the checkpoint; see
// AtomicWriteFile for the exact guarantees.
func (ck *Checkpoint) WriteFile(path string) error {
	data, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("search: encoding checkpoint: %w", err)
	}
	if err := AtomicWriteFile(path, data); err != nil {
		return fmt.Errorf("search: writing checkpoint: %w", err)
	}
	return nil
}

// AtomicWriteFile persists data at path so that a crash at any point
// leaves either the previous file or the new one, never a mix; it is
// a thin wrapper over fsx.WriteFileAtomic (the single temp-write +
// fsync + rename + parent-dir-fsync implementation shared with the
// distributed coordinator's state file, the worker result spool, and
// the job ledger).
func AtomicWriteFile(path string, data []byte) error {
	return fsx.WriteFileAtomic(fsx.OS, path, data)
}

// strategyOf names the enumeration strategy for checkpoint Meta.
func strategyOf(o *Options) string {
	switch {
	case o.RandomWalk:
		return "random"
	case o.PCT:
		return "pct"
	default:
		return "dfs"
	}
}

// StrategyName returns the canonical name of the enumeration strategy
// the options select: "random", "pct", or "dfs" (any systematic
// search). It is the same name checkpoints carry in their Meta and run
// reports carry in their Strategy field.
func StrategyName(o *Options) string { return strategyOf(o) }

// optionsHash fingerprints the options that determine the schedule
// enumeration. Budget fields (MaxExecutions, TimeLimit) and
// operational fields (Watchdog, checkpoint/stop plumbing, Monitor) are
// deliberately excluded: resuming with a larger budget is the point of
// checkpointing.
func optionsHash(o *Options) uint64 {
	h := fnv.New64a()
	b := func(v bool) {
		if v {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	i := func(v int64) {
		var buf [8]byte
		for k := 0; k < 8; k++ {
			buf[k] = byte(v >> (8 * k))
		}
		h.Write(buf[:])
	}
	b(o.Fair)
	i(int64(o.FairK))
	i(int64(o.ContextBound))
	i(int64(o.DepthBound))
	b(o.RandomTail)
	b(o.RandomWalk)
	b(o.PCT)
	i(int64(o.PCTDepth))
	i(o.MaxSteps)
	i(int64(o.Seed))
	b(o.StatefulPrune)
	b(o.DPOR)
	b(o.SleepSets)
	b(o.ContinueAfterViolation)
	b(o.ContinueAfterDivergence)
	b(o.RecordTrace)
	// DisableConformance is semantic: it changes which subtrees get
	// quarantined, hence the explored tree. DivergenceRetries and
	// ConfirmRuns are operational (retry/confirmation effort) and may
	// change across a resume — as is NoFastPath, which by construction
	// does not change any explored schedule or report byte.
	b(o.DisableConformance)
	// The memory model folds in only when it is not the default, so
	// every pre-weak-memory checkpoint (necessarily an SC search) keeps
	// its hash and stays resumable.
	if m := o.memModel(); m != core.MemSC {
		i(int64(m))
		i(int64(o.TSOBufCap))
	}
	return h.Sum64()
}

// buildCheckpoint captures the strategy-independent progress; the
// caller attaches the strategy state (Stride/Seq/Prefix).
func buildCheckpoint(opts *Options, rep *Report, elapsed time.Duration, done bool) *Checkpoint {
	return &Checkpoint{
		Version: CheckpointVersion,
		Meta: CheckpointMeta{
			Program:     opts.ProgramName,
			Strategy:    strategyOf(opts),
			Seed:        opts.Seed,
			OptionsHash: optionsHash(opts),
			Parallelism: opts.Parallelism,
		},
		Done: done,
		Counters: CheckpointCounters{
			Executions:     rep.Executions,
			TotalSteps:     rep.TotalSteps,
			MaxDepth:       rep.MaxDepth,
			Yields:         rep.Yields,
			EdgeAdds:       rep.EdgeAdds,
			EdgeErases:     rep.EdgeErases,
			FairBlocked:    rep.FairBlocked,
			NonTerminating: rep.NonTerminating,
			PrunedVisited:  rep.PrunedVisited,
			PrunedSleep:    rep.PrunedSleep,
			Deadlocks:      rep.Deadlocks,
			Violations:     rep.Violations,
			Wedges:         rep.Wedges,
			Skipped:        rep.Skipped,
			Quarantined:    rep.Quarantined,
			BufferedStores: rep.BufferedStores,
			Flushes:        rep.Flushes,
			Fences:         rep.Fences,
			Forwards:       rep.Forwards,
			ElapsedNS:      int64(elapsed),
		},
		FirstBug:            rep.FirstBug,
		FirstBugExecution:   rep.FirstBugExecution,
		Divergence:          rep.Divergence,
		DivergenceExecution: rep.DivergenceExecution,
		FirstWedge:          rep.FirstWedge,
		FirstWedgeExecution: rep.FirstWedgeExecution,
		WorkerFailures:      rep.WorkerFailures,
		Nondeterminism:      rep.Nondeterminism,
	}
}

// applyCheckpoint seeds a fresh Report with a checkpoint's accumulated
// progress.
func applyCheckpoint(rep *Report, ck *Checkpoint) {
	rep.Executions = ck.Counters.Executions
	rep.TotalSteps = ck.Counters.TotalSteps
	rep.MaxDepth = ck.Counters.MaxDepth
	rep.Yields = ck.Counters.Yields
	rep.EdgeAdds = ck.Counters.EdgeAdds
	rep.EdgeErases = ck.Counters.EdgeErases
	rep.FairBlocked = ck.Counters.FairBlocked
	rep.NonTerminating = ck.Counters.NonTerminating
	rep.PrunedVisited = ck.Counters.PrunedVisited
	rep.PrunedSleep = ck.Counters.PrunedSleep
	rep.Deadlocks = ck.Counters.Deadlocks
	rep.Violations = ck.Counters.Violations
	rep.Wedges = ck.Counters.Wedges
	rep.Skipped = ck.Counters.Skipped
	rep.Quarantined = ck.Counters.Quarantined
	rep.BufferedStores = ck.Counters.BufferedStores
	rep.Flushes = ck.Counters.Flushes
	rep.Fences = ck.Counters.Fences
	rep.Forwards = ck.Counters.Forwards
	rep.Nondeterminism = ck.Nondeterminism
	rep.FirstBug = ck.FirstBug
	rep.FirstBugExecution = ck.FirstBugExecution
	rep.Divergence = ck.Divergence
	rep.DivergenceExecution = ck.DivergenceExecution
	rep.FirstWedge = ck.FirstWedge
	rep.FirstWedgeExecution = ck.FirstWedgeExecution
	rep.WorkerFailures = ck.WorkerFailures
}
