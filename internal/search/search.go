// Package search implements stateless state-space exploration over the
// schedule tree of a model program: depth-first search, context-
// bounded search (preemption bounding, Musuvathi & Qadeer PLDI 2007),
// depth-bounded search with a seeded random tail, and optional
// stateful pruning used to compute ground-truth state counts for the
// coverage experiments.
//
// The searcher is a Chooser: each execution replays the decisions kept
// on the DFS stack and then explores fresh alternatives, recording new
// choice points. Backtracking truncates the stack to the deepest
// choice point with an untried alternative. Combined with the fair
// scheduler (internal/core, wired in by the engine) this is the
// paper's fair stateless model checking algorithm with a systematic
// search strategy plugged into the Choose of Algorithm 1.
package search

import (
	"time"

	"fairmc/internal/engine"
	"fairmc/internal/obs"
	"fairmc/internal/por"
	"fairmc/internal/rng"
)

// Options configures a search.
type Options struct {
	// Fair enables the fair scheduler (Algorithm 1).
	Fair bool
	// FairK is the k-th-yield parameterization; 0 means 1.
	FairK int
	// ContextBound is the preemption budget per execution; negative
	// means unbounded (the paper's "dfs" strategy).
	ContextBound int
	// DepthBound stops systematic branching after this many steps;
	// 0 means none. The paper uses depth bounds only for the unfair
	// searches, where termination is otherwise not guaranteed.
	DepthBound int
	// RandomTail finishes depth-bounded executions with seeded random
	// scheduling until termination or MaxSteps (paper §4.2.1: "once
	// the depth-bound is reached, a random search is performed until
	// the end of the execution is reached"). Without it, executions
	// are cut at the depth bound and counted as nonterminating
	// (Figure 2's measurement).
	RandomTail bool
	// RandomWalk replaces the systematic DFS entirely: every execution
	// is scheduled uniformly at random (seeded per execution index).
	// The walk never exhausts; bound it with MaxExecutions or
	// TimeLimit. This is the "stress testing, but reproducible"
	// baseline a systematic checker is measured against.
	RandomWalk bool
	// PCT replaces the systematic DFS with probabilistic concurrency
	// testing (Burckhardt et al., ASPLOS 2010): random thread
	// priorities plus PCTDepth−1 random priority-change points per
	// execution; any bug of depth d is found per execution with
	// probability ≥ 1/(n·kᵈ⁻¹). Like RandomWalk it never exhausts:
	// bound it with MaxExecutions or TimeLimit.
	PCT bool
	// PCTDepth is the targeted bug depth d; 0 means 3.
	PCTDepth int
	// MaxSteps caps a single execution; exceeding it is a divergence.
	// 0 means engine.DefaultMaxSteps.
	MaxSteps int64
	// MemModel selects the memory model programs using conc.Memory run
	// under: "" or "sc" (sequential consistency, the default) or "tso"
	// (total store order: per-thread store buffers with store-to-load
	// forwarding, drained by engine-scheduled flush steps). The model is
	// a searched axis — flush nondeterminism enters the candidate set
	// like any thread, so every strategy (DFS, PCT, DPOR, …) and the
	// fair scheduler cover it. Semantic: part of the checkpoint options
	// hash whenever it is not the default.
	MemModel string
	// TSOBufCap bounds each thread's store buffer under MemModel "tso";
	// a store into a full buffer blocks until a flush drains an entry.
	// 0 means unbounded. Ignored under "sc".
	TSOBufCap int
	// MaxExecutions caps the number of executions; 0 means unbounded.
	MaxExecutions int64
	// TimeLimit caps the wall-clock duration; 0 means unbounded.
	TimeLimit time.Duration
	// Seed drives random tails.
	Seed uint64
	// Monitor, if non-nil, observes every execution (coverage
	// tracking for Table 2 hooks in here).
	Monitor engine.Monitor
	// StatefulPrune cuts executions that re-enter an already-expanded
	// state, turning the search into the stateful reference search
	// used for the "Total States" column of Table 2. Unsound together
	// with Fair (the fair scheduler's state is path-dependent), so it
	// requires Fair to be false.
	StatefulPrune bool
	// DPOR enables conservative dynamic partial-order reduction (see
	// internal/search/dpor.go and docs/DPOR.md): the search explores
	// one schedule, and every pair of conflicting transitions it
	// observes spawns a self-contained work unit — a schedule prefix
	// ending in the race reversal — until no unexplored reversal
	// remains. Finds all deadlocks and assertion violations of
	// programs that terminate under every schedule, in far fewer
	// executions than full DFS; it does NOT guarantee full state
	// coverage (use SleepSets for that). Requires Fair to be false and
	// a terminating program (no DepthBound / RandomTail / RandomWalk /
	// PCT). Because the units are serializable and merged in a
	// canonical order, DPOR runs at any Parallelism, distributed
	// (Shard.Unit), and under checkpoint/resume (format v4), always
	// with a byte-identical report.
	DPOR bool
	// SleepSets enables sleep-set partial-order reduction
	// (internal/por): redundant interleavings of independent
	// transitions are pruned while every reachable state stays
	// visited. The reduction assumes transitions commute outright,
	// which the fair scheduler's path-dependent state breaks, so it
	// requires Fair to be false (the paper flags combining the two as
	// future work).
	SleepSets bool
	// Parallelism runs the search on this many worker goroutines, each
	// with its own engine; 0 or 1 is the sequential searcher. The
	// random strategies (RandomWalk, PCT) stride-partition execution
	// indices across workers, so the explored schedule set is identical
	// to the sequential run for any Parallelism; the systematic
	// strategies split the schedule tree into prefixes at shallow
	// choice points and explore the subtrees concurrently. Reports
	// merge deterministically (see internal/search/parallel.go).
	// Caveat: RandomTail seeds tails by subtree-local execution index,
	// so a parallel depth-bounded search is deterministic for a given
	// Parallelism but explores different tails than the sequential one.
	// Incompatible with StatefulPrune, Monitor, and SleepSets without
	// DPOR, whose state is shared across executions: those
	// combinations panic rather than race (no silent unsoundness).
	// DPOR (with or without SleepSets) parallelizes: its state lives
	// in self-contained work units, not the searcher.
	Parallelism int
	// DivergenceRetries is how many times a prefix replay that stops
	// conforming to its recorded digests is re-executed before the
	// subtree is quarantined (counted in Report.Quarantined with a
	// NondeterminismReport). 0 means the default (2); negative means
	// no retries.
	DivergenceRetries int
	// ConfirmRuns is the confirmation pass: each schedule-backed
	// finding (FirstBug, Divergence) is replayed this many times after
	// the search and tagged with a Reproducibility verdict
	// (stable/flaky). 0 disables the pass; the fairmc facade defaults
	// it to 3. Wedges are never confirmed (not replayable).
	ConfirmRuns int
	// DisableConformance turns off the per-step conformance digests the
	// systematic searcher records at every choice point and verifies on
	// every prefix replay. Detection of outright not-schedulable
	// divergence (and quarantine) remains active; only the digest
	// comparison — which catches nondeterminism that keeps the
	// scheduled alternative schedulable — is skipped. Deterministic
	// programs produce identical reports with conformance on or off.
	DisableConformance bool
	// ContinueAfterViolation keeps searching after safety violations
	// instead of stopping at the first one.
	ContinueAfterViolation bool
	// ContinueAfterDivergence keeps searching after a fair execution
	// exceeds MaxSteps. In fair mode a divergence is a liveness-error
	// candidate and stops the search by default; in unfair mode
	// divergences are ordinary nonterminating executions and the
	// search always continues.
	ContinueAfterDivergence bool
	// RecordTrace makes every execution record a full trace (slow;
	// the searcher replays the offending schedule itself to produce
	// repro traces, so this is normally unnecessary).
	RecordTrace bool
	// Watchdog is the per-execution stuck-thread detector interval,
	// threaded to engine.Config.Watchdog: a model thread that blocks or
	// spins outside the conc API for longer than this ends its
	// execution with outcome Wedged (a finding — see Report.Wedges)
	// instead of hanging the search forever. 0 disables it.
	Watchdog time.Duration
	// ProgramName identifies the program under test in checkpoints;
	// a resume whose ProgramName differs from the checkpoint's fails
	// validation. Optional for searches that never checkpoint.
	ProgramName string
	// CheckpointPath, when nonempty, makes the search periodically
	// write a resumable JSON snapshot of its progress to this file
	// (atomically: tmp + rename), and once more when it stops. See
	// internal/search/checkpoint.go for what is captured per strategy.
	CheckpointPath string
	// CheckpointInterval is the minimum time between periodic
	// checkpoint writes; 0 means 30s. The final write on stop always
	// happens regardless of the interval.
	CheckpointInterval time.Duration
	// Resume restarts the search from a checkpoint previously written
	// via CheckpointPath. The checkpoint's Meta (program name,
	// strategy, seed, options hash, parallelism) must match these
	// Options; budgets (MaxExecutions, TimeLimit) may differ, so an
	// interrupted search can be resumed with a larger budget.
	Resume *Checkpoint
	// Stop, when non-nil, is polled between executions (sequential) or
	// at round/merge boundaries (parallel): closing it interrupts the
	// search, which writes a final checkpoint (when configured) and
	// returns with Report.Interrupted set. This is how cmd/fairmc
	// turns SIGINT/SIGTERM into a clean, resumable stop.
	Stop <-chan struct{}
	// NoFastPath disables the engine fast path and everything built on
	// it: step batching (threads carry the scheduling baton inline),
	// engine pooling across executions, and the searcher's prefix
	// memoization. Purely operational — reports are byte-identical with
	// the fast path on or off, so this is a bisection escape hatch, not
	// a semantic switch (it is excluded from the checkpoint options
	// hash: a search may be resumed with the opposite setting).
	NoFastPath bool
	// Metrics, if non-nil, is the live telemetry registry every engine
	// run and searcher decision updates (internal/obs). Safe with any
	// Parallelism (updates are atomic) and with checkpointing (the
	// registry is operational state, not search state: it is excluded
	// from the options hash and not persisted). Metrics count work
	// actually performed — divergence retries, cancelled subtrees —
	// so they are not deterministic across Parallelism; the merged
	// Report is.
	Metrics *obs.Metrics
	// EventSink, if non-nil, receives structured JSONL trace events
	// (schedule points, yield-window closures, findings, quarantine and
	// checkpoint lifecycle). Same compatibility story as Metrics.
	// Emission never blocks; a slow sink drops events and counts them.
	EventSink *obs.Recorder
}

// Report summarizes a search.
type Report struct {
	// Executions is the number of executions explored.
	Executions int64
	// TotalSteps is the sum of execution lengths.
	TotalSteps int64
	// MaxDepth is the longest execution seen.
	MaxDepth int64
	// Yields is the total number of yielding transitions, and EdgeAdds /
	// EdgeErases / FairBlocked the summed fair-scheduler statistics of
	// every counted execution (see engine.Result). Deterministic: like
	// TotalSteps they are merged in execution order, so they are
	// identical at any Parallelism and across checkpoint/resume.
	Yields      int64
	EdgeAdds    int64
	EdgeErases  int64
	FairBlocked int64
	// BufferedStores / Flushes / Fences / Forwards are the summed
	// weak-memory counters of every counted execution (engine.Result.WM):
	// stores buffered, flush steps scheduled, fences completed, and loads
	// served by store-to-load forwarding. All zero under SC with no
	// wm.Memory use; merged in execution order like the fields above, so
	// deterministic at any Parallelism and across checkpoint/resume.
	BufferedStores int64
	Flushes        int64
	Fences         int64
	Forwards       int64
	// NonTerminating counts executions cut at the depth bound or the
	// step cap (Figure 2's y-axis).
	NonTerminating int64
	// PrunedVisited counts executions cut by stateful pruning.
	PrunedVisited int64
	// PrunedSleep counts executions cut because every remaining
	// alternative was asleep (sleep-set reduction).
	PrunedSleep int64
	// Deadlocks and Violations count erroneous executions found.
	Deadlocks  int64
	Violations int64
	// FirstBug is the first safety violation or deadlock found, with
	// a full repro trace, and FirstBugExecution the 1-based index of
	// the execution that found it.
	FirstBug          *engine.Result
	FirstBugExecution int64
	// Divergence is the first fair execution that exceeded MaxSteps:
	// the candidate liveness error the paper's outcome 2/3 describes.
	Divergence          *engine.Result
	DivergenceExecution int64
	// Wedges counts executions that ended with outcome Wedged: a model
	// thread blocked or spun outside the conc API past the watchdog
	// interval. FirstWedge is the first such execution's result (its
	// schedule is the wedge-free prefix) and FirstWedgeExecution its
	// 1-based index. A wedge stops the search like a violation unless
	// ContinueAfterViolation is set.
	Wedges              int64
	FirstWedge          *engine.Result
	FirstWedgeExecution int64
	// Quarantined counts subtrees abandoned because a prefix replay
	// persistently stopped conforming to the recorded schedule: the
	// program is nondeterministic outside the scheduler's control
	// there, and exploring further would search a wrong tree. Each
	// quarantined subtree has a NondeterminismReport. Like Skipped,
	// this is explicit coverage loss: a search with quarantines never
	// claims Exhausted.
	Quarantined int64
	// Nondeterminism describes each quarantined subtree, in the order
	// the (sequential or merged-parallel) search encountered them.
	Nondeterminism []NondeterminismReport
	// BugReproducibility / DivergenceReproducibility are the
	// confirmation verdicts for FirstBug / Divergence when
	// Options.ConfirmRuns > 0 (see Reproducibility).
	BugReproducibility        *Reproducibility
	DivergenceReproducibility *Reproducibility
	// Exhausted reports that the schedule tree was fully explored.
	Exhausted bool
	// TimedOut / ExecBounded report which budget stopped the search.
	TimedOut    bool
	ExecBounded bool
	// Interrupted reports that the search stopped because Options.Stop
	// was closed (e.g. SIGINT in cmd/fairmc). Interrupted searches are
	// resumable from their final checkpoint.
	Interrupted bool
	// Skipped counts work units (stride executions or frontier
	// subtrees) abandoned after a worker crashed on them twice —
	// explicit coverage loss, never silent. Details are in
	// WorkerFailures.
	Skipped int64
	// WorkerFailures records every recovered parallel-worker crash,
	// sorted by (Unit, Attempt). A unit appears once per failed
	// attempt; a unit whose retry succeeded contributes its results
	// normally and appears here only as history.
	WorkerFailures []WorkerFailure
	// CheckpointError records the first failed checkpoint write; the
	// search itself continues (losing resumability is better than
	// losing the run).
	CheckpointError string
	// Dpor carries a DPOR work unit's exploration payload (its
	// continuation and race-reversal proposals) back to the merge. Set
	// only on single-unit reports (RunShard with Shard.Unit); merged
	// reports never carry it.
	Dpor *DporResult `json:",omitempty"`
	// Elapsed is the wall-clock search time; a resumed search
	// accumulates the checkpointed elapsed time.
	Elapsed time.Duration
}

// frame is one decision on the DFS stack.
type frame struct {
	alts []engine.Alt // alternatives to explore, in discovery order
	idx  int          // alternative currently taken
	// Conformance bookkeeping: dig is the candidate-set digest recorded
	// when this choice point was first reached (hasDig gates it — a
	// frame restored from an old checkpoint or with conformance
	// disabled has none), and ops[i] is the pending op of alts[i] at
	// that time. ops may be shorter than alts for frames restored from
	// an old checkpoint; replay then verifies the digest only.
	dig    uint64
	hasDig bool
	ops    []engine.OpInfo
	// Prefix memo: an owned snapshot of the full unfiltered candidate
	// set and each candidate's pending op, captured when this choice
	// point was first expanded. A replay that matches it structurally
	// has validated strictly more than the digest compare (CandsDigest
	// is a pure function of exactly these values), so it skips the
	// digest re-encoding. Empty when memoization is off (NoFastPath,
	// DisableConformance), past memoDepthCap, or for frames restored
	// from a checkpoint (the memo is never persisted).
	memoCands []engine.Alt
	memoOps   []engine.OpInfo
}

// memoDepthCap bounds the prefix memo by depth: frames deeper than
// this carry no memo and replay through the digest compare instead.
// Shallow frames are the most-replayed ones (a frame at depth d is
// revisited once per execution in its subtree), so capping by depth is
// the "evict deepest first" policy with zero bookkeeping.
const memoDepthCap = 4096

type abortReason int8

const (
	abortNone abortReason = iota
	abortDepthBound
	abortVisited
	abortSleep
	abortDiverged
)

// searcher runs the exploration; it implements engine.Chooser.
type searcher struct {
	prog func(*engine.T)
	opts Options

	stack []frame
	fixed int // frames [0, fixed) are replayed; the frame at fixed-1 carries the new branch

	pos         int // frames consumed in the current execution
	preemptUsed int
	tailRand    *rng.Rand
	reason      abortReason
	divErr      *engine.DivergenceError // set when reason == abortDiverged
	sleep       por.Set                 // current sleep set (when Options.SleepSets)
	pct         *pctState               // per-execution PCT assignment (when Options.PCT)

	visited map[visitKey]struct{}

	// pool reuses one engine (threads, buffers, worker goroutines)
	// across this searcher's executions; unused when opts.NoFastPath.
	// Owners must call pool.Close when the searcher is done.
	pool engine.Pool
	// execHits / execMisses are this execution's prefix-memo counters,
	// flushed to opts.Metrics after every engine run (searcher-local so
	// the hot path costs no atomics).
	execHits   int64
	execMisses int64

	// cancelled, when non-nil, is polled between executions; a true
	// return abandons the search (the parallel driver cancels subtree
	// workers whose results will be discarded).
	cancelled func() bool

	report   Report
	start    time.Time
	deadline time.Time

	// Checkpoint bookkeeping (sequential searcher only; the parallel
	// drivers checkpoint at their own round/merge boundaries).
	nextExec    int64         // execution index the next engine.Run would get
	ckptDone    bool          // the stop reason is terminal (non-resumable)
	prevElapsed time.Duration // elapsed time carried over from a resumed checkpoint
	lastCkpt    time.Time
}

type visitKey struct {
	fp engine.Fingerprint
	// budget disambiguates states under context bounding: the same
	// program state with more preemption budget left has successors a
	// lower-budget visit must not prune away.
	budget int16
}

// Explore runs the search to completion (tree exhausted) or until a
// budget or stop condition is hit, then runs the confirmation pass
// over any findings (Options.ConfirmRuns).
func Explore(prog func(*engine.T), opts Options) *Report {
	// Backstop: user-facing entry points (the fairmc facade, the CLI)
	// call Options.Validate and surface the error; internal callers
	// reaching Explore with invalid options are a bug.
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	var rep *Report
	if opts.DPOR {
		// DPOR has its own driver at every Parallelism: exploration is
		// an expanding queue of serializable work units merged in spawn
		// order, so the report is byte-identical at any worker count.
		rep = exploreDpor(prog, opts)
	} else if opts.Parallelism > 1 {
		rep = exploreParallel(prog, opts)
	} else {
		rep = exploreSequential(prog, opts)
	}
	confirmReport(prog, &opts, rep)
	return rep
}

// exploreSequential is the single-goroutine searcher.
func exploreSequential(prog func(*engine.T), opts Options) *Report {
	s := &searcher{prog: prog, opts: opts, start: time.Now()}
	if opts.TimeLimit > 0 {
		s.deadline = s.start.Add(opts.TimeLimit)
	}
	if opts.StatefulPrune {
		s.visited = make(map[visitKey]struct{})
	}
	if ck := opts.Resume; ck != nil {
		applyCheckpoint(&s.report, ck)
		s.prevElapsed = time.Duration(ck.Counters.ElapsedNS)
		if sink := opts.EventSink; sink != nil {
			sink.Emit(obs.Event{Type: "resume", Checkpoint: &obs.CheckpointEvent{
				Path:       opts.CheckpointPath,
				Executions: ck.Counters.Executions,
			}})
		}
		if ck.Seq != nil && !(opts.RandomWalk || opts.PCT) {
			for _, fr := range ck.Seq.Stack {
				s.stack = append(s.stack, frame{
					alts:   append([]engine.Alt(nil), fr.Alts...),
					idx:    fr.Idx,
					dig:    fr.Dig,
					hasDig: fr.HasDig && !opts.DisableConformance,
					ops:    append([]engine.OpInfo(nil), fr.Ops...),
				})
			}
			s.fixed = len(s.stack)
		}
	}
	s.run()
	s.pool.Close()
	s.report.Elapsed = s.prevElapsed + time.Since(s.start)
	if opts.CheckpointPath != "" {
		s.writeCheckpoint(s.ckptDone)
	}
	return &s.report
}

// flushMemoCounters publishes one execution's prefix-memo hit/miss
// counts to the metrics registry and zeroes the local accumulators.
func (s *searcher) flushMemoCounters() {
	if s.execHits == 0 && s.execMisses == 0 {
		return
	}
	if m := s.opts.Metrics; m != nil {
		m.PrefixHits.Add(s.execHits)
		m.PrefixMisses.Add(s.execMisses)
	}
	s.execHits = 0
	s.execMisses = 0
}

// writeCheckpoint persists the searcher's current frontier and
// counters. Failures are recorded, not fatal.
func (s *searcher) writeCheckpoint(done bool) {
	ck := buildCheckpoint(&s.opts, &s.report, s.prevElapsed+time.Since(s.start), done)
	if s.opts.RandomWalk || s.opts.PCT {
		ck.Stride = &StrideState{NextIndex: s.nextExec}
	} else {
		st := &SeqState{Stack: make([]savedFrame, len(s.stack))}
		for i, fr := range s.stack {
			st.Stack[i] = savedFrame{
				Alts:   append([]engine.Alt(nil), fr.alts...),
				Idx:    fr.idx,
				Dig:    fr.dig,
				HasDig: fr.hasDig,
				Ops:    append([]engine.OpInfo(nil), fr.ops...),
			}
		}
		ck.Seq = st
	}
	if err := ck.WriteFile(s.opts.CheckpointPath); err != nil {
		if s.report.CheckpointError == "" {
			s.report.CheckpointError = err.Error()
		}
		return
	}
	if m := s.opts.Metrics; m != nil {
		m.Checkpoints.Inc()
	}
	if sink := s.opts.EventSink; sink != nil {
		sink.Emit(obs.Event{Type: "checkpoint", Checkpoint: &obs.CheckpointEvent{
			Path:       s.opts.CheckpointPath,
			Executions: s.report.Executions,
		}})
	}
}

// maybeCheckpoint writes a periodic checkpoint when the interval has
// elapsed. Called at the top of the execution loop, where the stack /
// next index describe exactly the work that has not run yet.
func (s *searcher) maybeCheckpoint() {
	if s.opts.CheckpointPath == "" {
		return
	}
	iv := s.opts.CheckpointInterval
	if iv <= 0 {
		iv = defaultCheckpointInterval
	}
	now := time.Now()
	if s.lastCkpt.IsZero() {
		s.lastCkpt = now
		return
	}
	if now.Sub(s.lastCkpt) < iv {
		return
	}
	s.lastCkpt = now
	s.writeCheckpoint(false)
}

func (s *searcher) run() {
	// Execution indices are global across resumes: a resumed search
	// continues the same enumeration (and, for the random strategies,
	// the same per-index seeding) the uninterrupted search would run.
	// Quarantined replays do not consume an index, so the index is
	// re-derived from the executions counter each iteration.
	for {
		exec := s.report.Executions + 1
		s.nextExec = exec
		if s.opts.MaxExecutions > 0 && exec > s.opts.MaxExecutions {
			s.report.ExecBounded = true
			return
		}
		if !s.deadline.IsZero() && time.Now().After(s.deadline) {
			s.report.TimedOut = true
			return
		}
		if s.opts.Stop != nil {
			select {
			case <-s.opts.Stop:
				s.report.Interrupted = true
				return
			default:
			}
		}
		if s.cancelled != nil && s.cancelled() {
			return // result will be discarded by the parallel driver
		}
		s.maybeCheckpoint()

		var r *engine.Result
		quarantined := false
		for attempt := 1; ; attempt++ {
			s.resetExec(exec)
			cfg := engine.Config{
				Fair:        s.opts.Fair,
				FairK:       s.opts.FairK,
				MaxSteps:    s.opts.MaxSteps,
				MemModel:    s.opts.memModel(),
				TSOBufCap:   s.opts.TSOBufCap,
				RecordTrace: s.opts.RecordTrace,
				Monitor:     s.opts.Monitor,
				Watchdog:    s.opts.Watchdog,
				Deadline:    s.deadline,
				Metrics:     s.opts.Metrics,
				EventSink:   s.opts.EventSink,
				ExecIndex:   exec,
				NoFastPath:  s.opts.NoFastPath,
			}
			if s.opts.NoFastPath {
				r = engine.Run(s.prog, s, cfg)
			} else {
				r = s.pool.Run(s.prog, s, cfg)
			}
			s.flushMemoCounters()
			if s.reason != abortDiverged {
				break
			}
			if m := s.opts.Metrics; m != nil {
				m.ReplayDivergences.Inc()
			}
			if attempt > s.opts.divergenceRetries() {
				s.quarantine(attempt)
				quarantined = true
				break
			}
		}
		if quarantined {
			// The divergent replay is not an execution; prune the
			// quarantined subtree and continue with the rest of the tree.
			if !s.backtrack() {
				s.ckptDone = true
				return
			}
			continue
		}
		s.report.Executions++
		s.report.TotalSteps += r.Steps
		s.report.Yields += r.Yields
		s.report.EdgeAdds += r.EdgeAdds
		s.report.EdgeErases += r.EdgeErases
		s.report.FairBlocked += r.FairBlocked
		s.report.BufferedStores += r.WM.BufferedStores
		s.report.Flushes += r.WM.Flushes
		s.report.Fences += r.WM.Fences
		s.report.Forwards += r.WM.Forwards
		if r.Steps > s.report.MaxDepth {
			s.report.MaxDepth = r.Steps
		}

		stop := s.classify(r, exec)
		if stop {
			// A deadline abort (TimedOut) is resumable; stops on a
			// finding are terminal — resuming would re-run and
			// re-count the finding's execution.
			s.ckptDone = !r.DeadlineExceeded
			s.nextExec = exec + 1
			return
		}
		if s.opts.RandomWalk || s.opts.PCT {
			if m := s.opts.Metrics; m != nil {
				m.Frontier.Set(exec + 1) // next execution index
			}
			continue // no schedule tree to backtrack over
		}
		if !s.backtrack() {
			// Quarantined subtrees are explicit coverage loss: the tree
			// was not fully explored, so it is not Exhausted (mirrors
			// Skipped in the parallel merge).
			s.report.Exhausted = s.report.Quarantined == 0
			s.ckptDone = true
			s.nextExec = exec + 1
			return
		}
		// Subtree workers of the prefix-parallel driver (cancelled !=
		// nil) skip the gauge: the driver publishes the number of
		// unmerged prefixes instead.
		if m := s.opts.Metrics; m != nil && s.cancelled == nil {
			m.Frontier.Set(int64(len(s.stack))) // DFS stack depth
		}
	}
}

// resetExec resets the per-execution state ahead of one engine.Run;
// divergence-retry attempts reset identically, which is what makes the
// attempt ordering deterministic.
func (s *searcher) resetExec(exec int64) {
	s.pos = 0
	s.preemptUsed = 0
	s.reason = abortNone
	s.divErr = nil
	s.sleep = por.Set{}
	s.tailRand = rng.New(rng.Mix(s.opts.Seed, uint64(exec)))
	if s.opts.PCT {
		depth := s.opts.PCTDepth
		if depth <= 0 {
			depth = 3
		}
		horizon := s.opts.MaxSteps
		if horizon <= 0 {
			horizon = engine.DefaultMaxSteps
		}
		s.pct = newPCTState(depth, horizon, s.tailRand)
	}
}

// quarantine records the persistent divergence at s.divErr and prunes
// the subtree below the first divergent step: the recorded tree no
// longer describes the program there, so every alternative at (and
// below) the divergent choice point is abandoned. The caller
// backtracks from the truncated stack.
func (s *searcher) quarantine(attempts int) {
	div := s.divErr
	k := div.Step
	if k > len(s.stack) {
		k = len(s.stack)
	}
	prefix := make([]engine.Alt, 0, k+1)
	for i := 0; i <= k && i < len(s.stack); i++ {
		fr := &s.stack[i]
		prefix = append(prefix, fr.alts[fr.idx])
	}
	s.report.Quarantined++
	s.report.Nondeterminism = append(s.report.Nondeterminism, NondeterminismReport{
		Prefix:         prefix,
		Step:           div.Step,
		Want:           div.Want,
		Expected:       div.Expected,
		Observed:       div.Observed,
		NotSchedulable: div.NotSchedulable,
		Attempts:       attempts,
	})
	if m := s.opts.Metrics; m != nil {
		m.Quarantined.Inc()
	}
	if sink := s.opts.EventSink; sink != nil {
		reason := "digest mismatch"
		if div.NotSchedulable {
			reason = "recorded alternative not schedulable"
		}
		sink.Emit(obs.Event{Type: "quarantine", Quarantine: &obs.QuarantineEvent{
			PrefixLen: len(prefix),
			Attempts:  attempts,
			Reason:    reason,
		}})
	}
	s.divErr = nil
	s.stack = s.stack[:k]
}

// classify accounts one finished execution and reports whether the
// search should stop.
func (s *searcher) classify(r *engine.Result, exec int64) bool {
	switch r.Outcome {
	case engine.Terminated:
		return false
	case engine.Deadlock:
		s.report.Deadlocks++
		s.recordBug(r, exec)
		s.emitFinding("deadlock", r, exec)
		return !s.opts.ContinueAfterViolation
	case engine.Violation:
		s.report.Violations++
		s.recordBug(r, exec)
		s.emitFinding("violation", r, exec)
		return !s.opts.ContinueAfterViolation
	case engine.Diverged:
		s.report.NonTerminating++
		if s.opts.Fair {
			if s.report.Divergence == nil {
				s.report.Divergence = s.reproduce(r)
				s.report.DivergenceExecution = exec
			}
			s.emitFinding("livelock", r, exec)
			return !s.opts.ContinueAfterDivergence
		}
		return false
	case engine.Aborted:
		if r.DeadlineExceeded {
			// The engine-level deadline (TimeLimit threaded down) cut a
			// runaway execution: account it and stop like a timeout.
			s.report.TimedOut = true
			return true
		}
		switch s.reason {
		case abortDepthBound:
			s.report.NonTerminating++
		case abortVisited:
			s.report.PrunedVisited++
		case abortSleep:
			s.report.PrunedSleep++
		}
		return false
	case engine.Wedged:
		// A wedge is a finding: the program escaped the checker's
		// control. No reproduce run — replaying the schedule would
		// only reach the wedge-free prefix (and wedge again).
		s.report.Wedges++
		if s.report.FirstWedge == nil {
			s.report.FirstWedge = r
			s.report.FirstWedgeExecution = exec
		}
		s.emitFinding("wedge", r, exec)
		return !s.opts.ContinueAfterViolation
	default:
		panic("search: unknown outcome")
	}
}

// emitFinding publishes one finding to the event stream, with the
// one-line message findingMessage derives from the result.
func (s *searcher) emitFinding(kind string, r *engine.Result, exec int64) {
	sink := s.opts.EventSink
	if sink == nil {
		return
	}
	sink.Emit(obs.Event{Type: "finding", Exec: exec, Finding: &obs.FindingEvent{
		Kind:    kind,
		Steps:   int(r.Steps),
		Message: findingMessage(kind, r),
	}})
}

// findingMessage is the one-line description of a finding, shared by
// the event stream and the run report. Deliberately stack-free:
// goroutine stacks vary run to run and would break report determinism.
func findingMessage(kind string, r *engine.Result) string {
	switch {
	case r.Violation != nil && !r.Violation.IsPanic:
		return r.Violation.String()
	case r.Violation != nil:
		// Panic messages may embed addresses; keep only the fact.
		return "thread panic"
	case r.Wedge != nil:
		return r.Wedge.String()
	case kind == "livelock":
		return "execution exceeded the step bound under the fair scheduler"
	case kind == "deadlock":
		return "no thread enabled with live threads remaining"
	default:
		return ""
	}
}

func (s *searcher) recordBug(r *engine.Result, exec int64) {
	if s.report.FirstBug == nil {
		s.report.FirstBug = s.reproduce(r)
		s.report.FirstBugExecution = exec
	}
}

// reproduce re-runs r's schedule with trace and digest recording to
// produce a self-contained repro, unless r already carries a trace. A
// schedule the searcher itself just ran should replay; when it does
// not, the program is nondeterministic under its own schedule — the
// original (traceless) result is kept and the confirmation pass will
// mark the finding flaky rather than crashing the search.
func (s *searcher) reproduce(r *engine.Result) *engine.Result {
	if len(r.Trace) > 0 {
		return r
	}
	rr, _ := reproduceResult(s.prog, &s.opts, r)
	return rr
}

// backtrack advances the deepest frame with an untried alternative and
// truncates the stack below it. It reports false when the tree is
// exhausted.
func (s *searcher) backtrack() bool {
	for len(s.stack) > 0 {
		last := &s.stack[len(s.stack)-1]
		last.idx++
		if last.idx < len(last.alts) {
			s.fixed = len(s.stack)
			return true
		}
		s.stack = s.stack[:len(s.stack)-1]
	}
	return false
}

// Choose implements engine.Chooser: replay the stack, then explore.
func (s *searcher) Choose(ctx *engine.ChooseContext) (engine.Alt, bool) {
	// Stateful pruning: once past the replayed prefix (the first new
	// branch is taken at frame index fixed-1, so fresh states appear
	// from the Choose call at pos == fixed onward), cut executions
	// that re-enter an already-expanded state.
	if s.visited != nil && s.pos >= s.fixed {
		key := visitKey{fp: ctx.Engine.Fingerprint()}
		if s.opts.ContextBound >= 0 {
			key.budget = int16(s.preemptUsed)
		}
		if _, seen := s.visited[key]; seen {
			s.reason = abortVisited
			return engine.Alt{}, false
		}
		s.visited[key] = struct{}{}
	}

	if s.opts.RandomWalk {
		alt := ctx.Cands[s.tailRand.Intn(len(ctx.Cands))]
		if ctx.IsPreemption(alt) {
			s.preemptUsed++
		}
		return alt, true
	}
	if s.opts.PCT {
		return s.pct.choose(ctx), true
	}

	if s.pos < len(s.stack) {
		fr := &s.stack[s.pos]
		s.pos++
		alt := fr.alts[fr.idx]
		if err := altIn(alt, ctx.Cands); err != "" {
			// The recorded alternative is not even schedulable anymore:
			// the program is nondeterministic outside the scheduler's
			// control. Abort for retry/quarantine instead of exploring a
			// wrong tree (or crashing the worker).
			s.divErr = &engine.DivergenceError{
				Step:           s.pos - 1,
				Want:           alt,
				Expected:       s.expectedDigest(fr, alt),
				Observed:       ctx.Engine.StepDigest(ctx.Cands, alt),
				NumCands:       len(ctx.Cands),
				NotSchedulable: true,
			}
			s.reason = abortDiverged
			return engine.Alt{}, false
		}
		if fr.hasDig {
			if len(fr.memoCands) > 0 && s.memoMatches(ctx, fr) {
				// Prefix-memo hit: the candidate set and every pending op
				// match the snapshot taken when this choice point was
				// first expanded. CandsDigest is a pure function of those
				// values, so the digest compare would pass too; skip the
				// re-encoding.
				s.execHits++
			} else {
				s.execMisses++
				obsHash := ctx.Engine.CandsDigest(ctx.Cands)
				obsOp := ctx.Engine.PendingOpInfo(alt.Tid)
				expOp := obsOp // old-checkpoint frames may lack recorded ops
				if fr.idx < len(fr.ops) {
					expOp = fr.ops[fr.idx]
				}
				if obsHash != fr.dig || obsOp != expOp {
					s.divErr = &engine.DivergenceError{
						Step:     s.pos - 1,
						Want:     alt,
						Expected: engine.StepDigest{Hash: fr.dig, Tid: alt.Tid, Op: expOp},
						Observed: engine.StepDigest{Hash: obsHash, Tid: alt.Tid, Op: obsOp},
						NumCands: len(ctx.Cands),
					}
					s.reason = abortDiverged
					return engine.Alt{}, false
				}
			}
		}
		if ctx.IsPreemption(alt) {
			s.preemptUsed++
		}
		s.advanceSleep(ctx, fr, alt)
		return alt, true
	}

	// Depth bound: stop branching, either abort (Figure 2 counting)
	// or continue with the seeded random tail (Table 2 runs).
	if s.opts.DepthBound > 0 && ctx.Step >= s.opts.DepthBound {
		if !s.opts.RandomTail {
			s.reason = abortDepthBound
			return engine.Alt{}, false
		}
		alt := ctx.Cands[s.tailRand.Intn(len(ctx.Cands))]
		if ctx.IsPreemption(alt) {
			s.preemptUsed++
		}
		return alt, true
	}

	// Frontier: compute the admissible alternatives under the
	// preemption budget and push a new choice point. ctx.Cands is the
	// engine's reused buffer, so any slice pushed onto the stack must
	// be an owned copy (the filters below copy as they go). The
	// conformance digest is taken over the unfiltered candidate set —
	// the state property a later replay of any alternative must match.
	var dig uint64
	haveDig := false
	if !s.opts.DisableConformance {
		dig = ctx.Engine.CandsDigest(ctx.Cands)
		haveDig = true
	}
	memoCands, memoOps := s.memoSnapshot(ctx, haveDig)
	alts := ctx.Cands
	owned := false
	if s.opts.ContextBound >= 0 && s.preemptUsed >= s.opts.ContextBound {
		// The filtered set is never empty: if the previous thread is a
		// candidate its alternatives do not preempt, and if it is not
		// a candidate the switch is forced (or follows a voluntary
		// yield), so IsPreemption is false for every alternative.
		alts = nonPreempting(ctx)
		if len(alts) == 0 {
			panic("search: empty alternative set under context bound")
		}
		owned = true
	}
	if s.opts.SleepSets {
		awake := make([]engine.Alt, 0, len(alts))
		for _, a := range alts {
			if !s.sleep.Contains(ctx.Engine, a) {
				awake = append(awake, a)
			}
		}
		if len(awake) == 0 {
			// Every alternative is asleep: the state's successors are
			// covered by sibling branches. Prune.
			s.reason = abortSleep
			return engine.Alt{}, false
		}
		alts = awake
		owned = true
	}
	if !owned {
		alts = append([]engine.Alt(nil), alts...)
	}
	s.stack = append(s.stack, frame{alts: alts,
		dig: dig, hasDig: haveDig, ops: s.frameOps(ctx, alts, haveDig),
		memoCands: memoCands, memoOps: memoOps})
	s.pos++
	alt := alts[0]
	if ctx.IsPreemption(alt) {
		s.preemptUsed++
	}
	s.advanceSleep(ctx, &s.stack[len(s.stack)-1], alt)
	return alt, true
}

// memoSnapshot captures the prefix memo for a fresh choice point: an
// owned copy of the full unfiltered candidate set and each candidate's
// pending op. Returns nil slices when memoization does not apply —
// conformance off (nothing to validate against), NoFastPath (one flag
// restores full legacy behavior), or past the depth cap.
func (s *searcher) memoSnapshot(ctx *engine.ChooseContext, haveDig bool) ([]engine.Alt, []engine.OpInfo) {
	if !haveDig || s.opts.NoFastPath || len(s.stack) >= memoDepthCap {
		return nil, nil
	}
	cands := append([]engine.Alt(nil), ctx.Cands...)
	ops := make([]engine.OpInfo, len(cands))
	for i, a := range cands {
		ops[i] = ctx.Engine.PendingOpInfo(a.Tid)
	}
	return cands, ops
}

// memoMatches validates a replayed scheduling point against the
// frame's memo: same candidates in the same order, each with the same
// pending op as when the choice point was first expanded.
func (s *searcher) memoMatches(ctx *engine.ChooseContext, fr *frame) bool {
	if len(ctx.Cands) != len(fr.memoCands) {
		return false
	}
	for i, c := range ctx.Cands {
		if c != fr.memoCands[i] {
			return false
		}
		if ctx.Engine.PendingOpInfo(c.Tid) != fr.memoOps[i] {
			return false
		}
	}
	return true
}

// frameOps records the pending op of each alternative at a fresh
// choice point, the per-alternative half of the conformance digest.
func (s *searcher) frameOps(ctx *engine.ChooseContext, alts []engine.Alt, haveDig bool) []engine.OpInfo {
	if !haveDig {
		return nil
	}
	ops := make([]engine.OpInfo, len(alts))
	for i, a := range alts {
		ops[i] = ctx.Engine.PendingOpInfo(a.Tid)
	}
	return ops
}

// expectedDigest reconstructs the digest recorded for the frame's
// current alternative, for divergence diagnostics.
func (s *searcher) expectedDigest(fr *frame, alt engine.Alt) engine.StepDigest {
	d := engine.StepDigest{Hash: fr.dig, Tid: alt.Tid}
	if fr.idx < len(fr.ops) {
		d.Op = fr.ops[fr.idx]
	}
	return d
}

// advanceSleep updates the sleep set across one step: the frame's
// already-explored siblings go to sleep, then every sleeping move
// dependent on the chosen transition wakes up.
func (s *searcher) advanceSleep(ctx *engine.ChooseContext, fr *frame, chosen engine.Alt) {
	if !s.opts.SleepSets {
		return
	}
	for i := 0; i < fr.idx; i++ {
		s.sleep.Add(por.MoveOf(ctx.Engine, fr.alts[i]))
	}
	s.sleep.Step(por.MoveOf(ctx.Engine, chosen))
}

// nonPreempting returns the candidates that do not consume a
// preemption: the previous thread itself, and any candidate when the
// switch away from the previous thread is forced or voluntary.
func nonPreempting(ctx *engine.ChooseContext) []engine.Alt {
	out := make([]engine.Alt, 0, len(ctx.Cands))
	for _, a := range ctx.Cands {
		if !ctx.IsPreemption(a) {
			out = append(out, a)
		}
	}
	return out
}

func altIn(alt engine.Alt, cands []engine.Alt) string {
	for _, c := range cands {
		if c == alt {
			return ""
		}
	}
	return alt.String() + " not schedulable"
}
