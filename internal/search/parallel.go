package search

import (
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fairmc/internal/engine"
	"fairmc/internal/obs"
	"fairmc/internal/rng"
)

// This file implements parallel exploration. Stateless model checking
// is embarrassingly parallel — every execution is an independent replay from the initial
// state — so the searcher can run on P workers, each owning its own
// engine.Run instance, without any shared mutable program state. Two
// sharding modes cover the two kinds of search:
//
//   - Stride mode (RandomWalk, PCT): execution indices are
//     stride-partitioned — worker w runs executions w+1, w+1+P,
//     w+1+2P, … with the sequential per-index seeding
//     rng.Mix(Seed, index), so the set of explored schedules is
//     identical to the sequential run for any P. Workers proceed in
//     rounds of P×strideBatch indices; rounds are merged in index
//     order, and stop conditions (first bug, divergence, execution
//     budget) are evaluated during the merge exactly as the
//     sequential classify would, so for budgets expressed in
//     executions the merged Report is byte-identical to the
//     sequential one (wall-clock TimeLimit runs stop at a round
//     boundary instead of mid-round).
//
//   - Prefix mode (systematic DFS / context-bounded search): the
//     schedule tree is split at shallow choice points into a
//     DFS-ordered frontier of schedule prefixes that partition the
//     tree (the CHESS distributed-search shape). Workers claim
//     prefixes from a shared queue, replay the prefix, and run the
//     ordinary sequential DFS over the subtree below it. Subtree
//     reports are merged in frontier (= sequential DFS) order;
//     because the frontier partitions the tree and sequential DFS
//     visits the subtrees contiguously in the same order, the merged
//     counters, FirstBug, and FirstBugExecution are byte-identical to
//     the sequential search whenever the stop condition is a finding
//     or exhaustion (MaxExecutions is quantized to prefix
//     granularity, TimeLimit to wall-clock as always).
//
// Selecting FirstBug/Divergence by smallest execution index (stride
// mode) or smallest DFS position (prefix mode) — never by wall-clock
// arrival — is what makes the output reproducible regardless of
// worker timing. The fair scheduler needs no cross-worker treatment:
// Algorithm 1's P/E/D/S state lives inside each worker's engine and
// never outlives one execution.
//
// Fault isolation: every work unit (one stride execution, one prefix
// subtree) runs under recover(). A crash is recorded as a structured
// WorkerFailure and the unit is retried once — stride inline, prefix
// by requeueing onto the shared queue — then reported as Skipped.
// One crashing unit therefore costs at most its own coverage, never
// the process or the other workers' merged results.

const (
	// strideBatch is the number of executions each stride worker runs
	// per round. Larger batches amortize the round barrier; smaller
	// batches stop sooner after a finding. One round costs P×strideBatch
	// executions of overshoot in the worst case.
	strideBatch = 32
	// prefixTargetFactor sizes the frontier at prefixTargetFactor×P
	// prefixes, bounding idle tail time when subtree sizes are skewed.
	prefixTargetFactor = 8
	// workerAttempts bounds how often a crashing work unit is tried
	// before it is abandoned as Skipped: the first attempt plus one
	// retry.
	workerAttempts = 2
)

// WorkerFailure is one recovered parallel-worker crash.
type WorkerFailure struct {
	// Mode is the sharding mode, "stride" or "prefix".
	Mode string `json:"mode"`
	// Unit is the 1-based execution index (stride) or 0-based frontier
	// prefix index (prefix) the worker crashed on.
	Unit int64 `json:"unit"`
	// Attempt is the 1-based attempt that crashed.
	Attempt int `json:"attempt"`
	// Panic is the stringified panic value; Stack the goroutine stack.
	Panic string `json:"panic"`
	Stack string `json:"stack"`
}

// workerFaultHook, when non-nil, runs at the start of every parallel
// work unit. Fault-injection tests install a panicking hook here to
// exercise the isolation path; production never sets it.
var workerFaultHook func(mode string, unit int64)

// failSink collects WorkerFailures from concurrent workers.
type failSink struct {
	mu   sync.Mutex
	list []WorkerFailure
}

func (f *failSink) add(w WorkerFailure) {
	f.mu.Lock()
	f.list = append(f.list, w)
	f.mu.Unlock()
}

// sorted returns the failures ordered by (Unit, Attempt) so the Report
// is deterministic regardless of worker timing.
func (f *failSink) sorted() []WorkerFailure {
	f.mu.Lock()
	defer f.mu.Unlock()
	sort.Slice(f.list, func(i, j int) bool {
		if f.list[i].Unit != f.list[j].Unit {
			return f.list[i].Unit < f.list[j].Unit
		}
		return f.list[i].Attempt < f.list[j].Attempt
	})
	return f.list
}

// exploreParallel dispatches to the sharding mode matching the search
// strategy. Callers have already validated the options.
func exploreParallel(prog func(*engine.T), opts Options) *Report {
	if opts.RandomWalk || opts.PCT {
		return exploreStride(prog, opts)
	}
	return explorePrefix(prog, opts)
}

// observeCheckpoint publishes one successful checkpoint write to the
// observability layer.
func observeCheckpoint(opts *Options, executions int64) {
	if m := opts.Metrics; m != nil {
		m.Checkpoints.Inc()
	}
	if sink := opts.EventSink; sink != nil {
		sink.Emit(obs.Event{Type: "checkpoint", Checkpoint: &obs.CheckpointEvent{
			Path:       opts.CheckpointPath,
			Executions: executions,
		}})
	}
}

// observeResume publishes a resume-from-checkpoint to the event stream.
func observeResume(opts *Options, ck *Checkpoint) {
	if sink := opts.EventSink; sink != nil {
		sink.Emit(obs.Event{Type: "resume", Checkpoint: &obs.CheckpointEvent{
			Path:       opts.CheckpointPath,
			Executions: ck.Counters.Executions,
		}})
	}
}

// observeWorkerRetry counts one recovered worker crash.
func observeWorkerRetry(opts *Options) {
	if m := opts.Metrics; m != nil {
		m.WorkerRetries.Inc()
	}
}

// emitMergeFinding publishes a finding classified by the stride merge
// (stride workers run bare engines and never classify; the merge is
// where an outcome becomes a finding). r.repro may be nil when the
// worker already had a repro of this kind; the message is then empty.
func emitMergeFinding(opts *Options, kind string, rec *strideRec, exec int64) {
	sink := opts.EventSink
	if sink == nil {
		return
	}
	msg := ""
	if rec.repro != nil {
		msg = findingMessage(kind, rec.repro)
	}
	sink.Emit(obs.Event{Type: "finding", Exec: exec, Finding: &obs.FindingEvent{
		Kind:    kind,
		Steps:   int(rec.steps),
		Message: msg,
	}})
}

// reproduceStandalone is searcher.reproduce without a searcher: re-run
// r's schedule with trace and digest recording to produce a
// self-contained repro. A non-conforming replay keeps the original
// (traceless) result; the confirmation pass will mark the finding
// flaky.
func reproduceStandalone(prog func(*engine.T), opts Options, r *engine.Result) *engine.Result {
	if len(r.Trace) > 0 {
		return r
	}
	rr, _ := reproduceResult(prog, &opts, r)
	return rr
}

// ---------------------------------------------------------------------
// Stride mode
// ---------------------------------------------------------------------

// strideRec is one execution's accounting, produced by a worker and
// consumed by the in-order merge.
type strideRec struct {
	steps    int64
	outcome  engine.Outcome
	deadline bool           // the engine-level deadline cut this execution
	skipped  bool           // abandoned after repeated worker crashes
	repro    *engine.Result // full repro for the worker's first notable event, when still wanted
	// Fair-scheduler and weak-memory statistics of the execution, merged
	// into the report's deterministic counters in index order.
	yields      int64
	edgeAdds    int64
	edgeErases  int64
	fairBlocked int64
	wm          engine.WMCounters
}

// strideChooser replays the sequential searcher's random-mode choice
// stream for one execution index.
type strideChooser struct {
	rand *rng.Rand
	pct  *pctState
}

func newStrideChooser(opts *Options, index int64) *strideChooser {
	c := &strideChooser{rand: rng.New(rng.Mix(opts.Seed, uint64(index)))}
	if opts.PCT {
		depth := opts.PCTDepth
		if depth <= 0 {
			depth = 3
		}
		horizon := opts.MaxSteps
		if horizon <= 0 {
			horizon = engine.DefaultMaxSteps
		}
		c.pct = newPCTState(depth, horizon, c.rand)
	}
	return c
}

// Choose implements engine.Chooser: PCT priorities when configured,
// otherwise a uniform pick from the stride's seeded generator.
func (c *strideChooser) Choose(ctx *engine.ChooseContext) (engine.Alt, bool) {
	if c.pct != nil {
		return c.pct.choose(ctx), true
	}
	return ctx.Cands[c.rand.Intn(len(ctx.Cands))], true
}

// exploreStride runs the random strategies with stride-partitioned
// execution indices and an index-ordered merge.
func exploreStride(prog func(*engine.T), opts Options) *Report {
	p := opts.Parallelism
	start := time.Now()
	var deadline time.Time
	if opts.TimeLimit > 0 {
		deadline = start.Add(opts.TimeLimit)
	}
	rep := &Report{}
	var prevElapsed time.Duration
	base := int64(0) // execution indices ≤ base are merged (or never existed)
	if ck := opts.Resume; ck != nil {
		applyCheckpoint(rep, ck)
		prevElapsed = time.Duration(ck.Counters.ElapsedNS)
		base = ck.Stride.NextIndex
		observeResume(&opts, ck)
	}
	fails := &failSink{list: rep.WorkerFailures}
	roundSize := int64(p) * strideBatch
	recs := make([][]strideRec, p)
	// needBugRepro/needDivRepro/needWedgeRepro tell workers whether the
	// merged report still lacks a repro; written only between rounds.
	needBugRepro := rep.FirstBug == nil
	needDivRepro := opts.Fair && rep.Divergence == nil
	needWedgeRepro := rep.FirstWedge == nil

	cfg := engine.Config{
		Fair:        opts.Fair,
		FairK:       opts.FairK,
		MaxSteps:    opts.MaxSteps,
		MemModel:    opts.memModel(),
		TSOBufCap:   opts.TSOBufCap,
		RecordTrace: opts.RecordTrace,
		Watchdog:    opts.Watchdog,
		Deadline:    deadline,
		Metrics:     opts.Metrics,
		EventSink:   opts.EventSink,
		NoFastPath:  opts.NoFastPath,
	}
	// One engine pool per worker slot, living across rounds. Pools are
	// single-owner: worker w of every round is the only goroutine that
	// touches pools[w], and rounds are separated by the WaitGroup.
	pools := make([]engine.Pool, p)
	defer func() {
		for i := range pools {
			pools[i].Close()
		}
	}()

	lastCkpt := start
	done := false
	writeCkpt := func(d bool) {
		if opts.CheckpointPath == "" {
			return
		}
		rep.WorkerFailures = fails.sorted()
		ck := buildCheckpoint(&opts, rep, prevElapsed+time.Since(start), d)
		ck.Stride = &StrideState{NextIndex: base}
		if err := ck.WriteFile(opts.CheckpointPath); err != nil {
			if rep.CheckpointError == "" {
				rep.CheckpointError = err.Error()
			}
			return
		}
		observeCheckpoint(&opts, rep.Executions)
	}

loop:
	for {
		if opts.MaxExecutions > 0 && base >= opts.MaxExecutions {
			rep.ExecBounded = true
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			rep.TimedOut = true
			break
		}
		if opts.Stop != nil {
			select {
			case <-opts.Stop:
				rep.Interrupted = true
				break loop
			default:
			}
		}
		if opts.CheckpointPath != "" {
			iv := opts.CheckpointInterval
			if iv <= 0 {
				iv = defaultCheckpointInterval
			}
			if time.Since(lastCkpt) >= iv {
				lastCkpt = time.Now()
				writeCkpt(false)
			}
		}
		hi := base + roundSize
		if opts.MaxExecutions > 0 && hi > opts.MaxExecutions {
			hi = opts.MaxExecutions
		}
		var wg sync.WaitGroup
		for w := 0; w < p; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				recs[w] = strideWorker(prog, &opts, cfg, &pools[w], recs[w][:0],
					base, hi, w, needBugRepro, needDivRepro, needWedgeRepro, fails)
			}(w)
		}
		wg.Wait()

		// Merge the round in global execution-index order, applying the
		// sequential classify semantics record by record. Indexing is
		// relative to the round base, which a resume makes arbitrary.
		stop := false
		for i := base + 1; i <= hi && !stop; i++ {
			rel := i - 1 - base
			r := recs[int(rel%int64(p))][rel/int64(p)]
			if r.skipped {
				// The worker crashed on this index twice: explicit
				// coverage loss, never a silent gap in the merge.
				rep.Skipped++
				continue
			}
			rep.Executions++
			rep.TotalSteps += r.steps
			rep.Yields += r.yields
			rep.EdgeAdds += r.edgeAdds
			rep.EdgeErases += r.edgeErases
			rep.FairBlocked += r.fairBlocked
			rep.BufferedStores += r.wm.BufferedStores
			rep.Flushes += r.wm.Flushes
			rep.Fences += r.wm.Fences
			rep.Forwards += r.wm.Forwards
			if r.steps > rep.MaxDepth {
				rep.MaxDepth = r.steps
			}
			switch r.outcome {
			case engine.Terminated:
			case engine.Deadlock, engine.Violation:
				kind := "violation"
				if r.outcome == engine.Deadlock {
					rep.Deadlocks++
					kind = "deadlock"
				} else {
					rep.Violations++
				}
				if rep.FirstBug == nil {
					rep.FirstBug = r.repro
					rep.FirstBugExecution = i
					needBugRepro = false
				}
				emitMergeFinding(&opts, kind, &r, i)
				if !opts.ContinueAfterViolation {
					stop, done = true, true
				}
			case engine.Diverged:
				rep.NonTerminating++
				if opts.Fair {
					if rep.Divergence == nil {
						rep.Divergence = r.repro
						rep.DivergenceExecution = i
						needDivRepro = false
					}
					emitMergeFinding(&opts, "livelock", &r, i)
					if !opts.ContinueAfterDivergence {
						stop, done = true, true
					}
				}
			case engine.Wedged:
				rep.Wedges++
				if rep.FirstWedge == nil {
					rep.FirstWedge = r.repro
					rep.FirstWedgeExecution = i
					needWedgeRepro = false
				}
				emitMergeFinding(&opts, "wedge", &r, i)
				if !opts.ContinueAfterViolation {
					stop, done = true, true
				}
			case engine.Aborted:
				if r.deadline {
					rep.TimedOut = true
					stop = true // resumable, unlike a finding stop
				} else {
					panic("search: unexpected abort in stride merge")
				}
			default:
				panic("search: unexpected outcome in stride merge")
			}
		}
		base = hi
		if m := opts.Metrics; m != nil {
			m.Frontier.Set(base + 1) // next unmerged execution index
		}
		if stop {
			break
		}
	}
	rep.WorkerFailures = fails.sorted()
	rep.Elapsed = prevElapsed + time.Since(start)
	writeCkpt(done)
	return rep
}

// strideWorker runs worker w's slice of round indices (base, hi] and
// records per-execution accounting. It reproduces at most one bug, one
// divergence, and one wedge — its first of each, which is the only
// candidate the ordered merge can select from this worker. A crashing
// index is retried once, then marked skipped.
func strideWorker(prog func(*engine.T), opts *Options, cfg engine.Config,
	pool *engine.Pool, buf []strideRec, base, hi int64, w int,
	needBug, needDiv, needWedge bool, fails *failSink) []strideRec {
	p := int64(opts.Parallelism)
	for i := base + 1 + int64(w); i <= hi; i += p {
		var rec strideRec
		ok := false
		for attempt := 1; attempt <= workerAttempts && !ok; attempt++ {
			rec, ok = runStrideIndex(prog, opts, cfg, pool, i, attempt,
				needBug, needDiv, needWedge, fails)
		}
		if !ok {
			rec = strideRec{skipped: true}
		}
		if rec.repro != nil {
			switch rec.outcome {
			case engine.Deadlock, engine.Violation:
				needBug = false
			case engine.Diverged:
				needDiv = false
			case engine.Wedged:
				needWedge = false
			}
		}
		buf = append(buf, rec)
	}
	return buf
}

// runStrideIndex runs one execution index under recover, converting a
// crash anywhere in the engine/searcher machinery into a recorded
// WorkerFailure instead of a process abort.
func runStrideIndex(prog func(*engine.T), opts *Options, cfg engine.Config,
	pool *engine.Pool, i int64, attempt int, needBug, needDiv, needWedge bool,
	fails *failSink) (rec strideRec, ok bool) {
	defer func() {
		if p := recover(); p != nil {
			fails.add(WorkerFailure{Mode: "stride", Unit: i, Attempt: attempt,
				Panic: fmt.Sprint(p), Stack: string(debug.Stack())})
			observeWorkerRetry(opts)
			rec, ok = strideRec{}, false
		}
	}()
	if h := workerFaultHook; h != nil {
		h("stride", i)
	}
	cfg.ExecIndex = i // cfg is this call's copy
	var r *engine.Result
	if opts.NoFastPath {
		r = engine.Run(prog, newStrideChooser(opts, i), cfg)
	} else {
		r = pool.Run(prog, newStrideChooser(opts, i), cfg)
	}
	rec = strideRec{steps: r.Steps, outcome: r.Outcome, deadline: r.DeadlineExceeded,
		yields: r.Yields, edgeAdds: r.EdgeAdds, edgeErases: r.EdgeErases,
		fairBlocked: r.FairBlocked, wm: r.WM}
	switch r.Outcome {
	case engine.Deadlock, engine.Violation:
		if needBug {
			rec.repro = reproduceStandalone(prog, *opts, r)
		}
	case engine.Diverged:
		if needDiv {
			rec.repro = reproduceStandalone(prog, *opts, r)
		}
	case engine.Wedged:
		// A wedge cannot be replayed (the wedged step is absent from
		// the schedule); the original result is the repro.
		if needWedge {
			rec.repro = r
		}
	}
	return rec, true
}

// ---------------------------------------------------------------------
// Prefix mode
// ---------------------------------------------------------------------

// prefixNode is one schedule prefix of the frontier. The frontier is
// kept in DFS order and always partitions the schedule tree: every
// full execution extends exactly one frontier prefix.
type prefixNode struct {
	sched []engine.Alt
	// digs are the conformance digests recorded (one per sched step)
	// when the prefix was expanded; workers verify their replays
	// against them. Empty when conformance is disabled.
	digs []engine.StepDigest
	// leaf marks a prefix whose replay ended (or hit the depth bound)
	// before reaching a fresh choice point, or stopped conforming
	// during expansion: it cannot be split further. (A non-conforming
	// leaf is quarantined by the worker that replays it.)
	leaf bool
}

// expandChooser replays a prefix and captures the admissible
// alternatives at the first fresh choice point, applying exactly the
// sequential searcher's frontier filtering (preemption budget). It
// then aborts the execution: expansion runs are bookkeeping, not
// explored executions. Replayed steps are verified against the
// prefix's recorded digests; the first non-conformance is recorded in
// div and the expansion abandoned (the worker that later replays the
// prefix handles retry and quarantine).
type expandChooser struct {
	opts        *Options
	sched       []engine.Alt
	digs        []engine.StepDigest
	pos         int
	preemptUsed int
	alts        []engine.Alt    // captured fresh alternatives (owned copy)
	freshDig    uint64          // candidate-set digest at the fresh choice point
	freshOps    []engine.OpInfo // pending op per captured alternative
	ended       bool            // depth bound reached before a fresh choice point
	div         *engine.DivergenceError
}

// Choose implements engine.Chooser: replay the prefix (verifying
// conformance), then capture the first fresh choice point and stop.
func (c *expandChooser) Choose(ctx *engine.ChooseContext) (engine.Alt, bool) {
	if c.pos < len(c.sched) {
		alt := c.sched[c.pos]
		step := c.pos
		c.pos++
		if err := altIn(alt, ctx.Cands); err != "" {
			c.div = &engine.DivergenceError{
				Step:           step,
				Want:           alt,
				Observed:       ctx.Engine.StepDigest(ctx.Cands, alt),
				NumCands:       len(ctx.Cands),
				NotSchedulable: true,
			}
			if step < len(c.digs) {
				c.div.Expected = c.digs[step]
			}
			return engine.Alt{}, false
		}
		if step < len(c.digs) && !c.opts.DisableConformance {
			got := ctx.Engine.StepDigest(ctx.Cands, alt)
			if exp := c.digs[step]; got != exp {
				c.div = &engine.DivergenceError{
					Step:     step,
					Want:     alt,
					Expected: exp,
					Observed: got,
					NumCands: len(ctx.Cands),
				}
				return engine.Alt{}, false
			}
		}
		if ctx.IsPreemption(alt) {
			c.preemptUsed++
		}
		return alt, true
	}
	if c.opts.DepthBound > 0 && ctx.Step >= c.opts.DepthBound {
		// The sequential searcher stops branching here; the subtree
		// below is a single (random-tail or aborted) continuation.
		c.ended = true
		return engine.Alt{}, false
	}
	alts := ctx.Cands
	if c.opts.ContextBound >= 0 && c.preemptUsed >= c.opts.ContextBound {
		alts = nonPreempting(ctx)
		if len(alts) == 0 {
			panic("search: empty alternative set under context bound")
		}
	}
	c.alts = append([]engine.Alt(nil), alts...)
	if !c.opts.DisableConformance {
		c.freshDig = ctx.Engine.CandsDigest(ctx.Cands)
		c.freshOps = make([]engine.OpInfo, len(c.alts))
		for i, a := range c.alts {
			c.freshOps[i] = ctx.Engine.PendingOpInfo(a.Tid)
		}
	}
	return engine.Alt{}, false
}

// splitFrontier grows the root prefix into a DFS-ordered frontier of
// at least target prefixes (when the tree is wide enough), expanding
// the shallowest prefix first. Each expansion costs one partial
// replay; the total is capped so degenerate single-candidate chains
// terminate.
func splitFrontier(prog func(*engine.T), opts Options, target int) []*prefixNode {
	frontier := []*prefixNode{{}}
	replays := 0
	replayCap := 8*target + 64
	var pool engine.Pool
	defer pool.Close()
	for len(frontier) < target && replays < replayCap {
		// Expand the shallowest non-leaf prefix; ties break toward the
		// DFS-earliest so expansion order is deterministic.
		idx := -1
		for j, pfx := range frontier {
			if !pfx.leaf && (idx < 0 || len(pfx.sched) < len(frontier[idx].sched)) {
				idx = j
			}
		}
		if idx < 0 {
			break
		}
		pfx := frontier[idx]
		replays++
		c := &expandChooser{opts: &opts, sched: pfx.sched, digs: pfx.digs}
		ecfg := engine.Config{
			Fair:       opts.Fair,
			FairK:      opts.FairK,
			MaxSteps:   opts.MaxSteps,
			MemModel:   opts.memModel(),
			TSOBufCap:  opts.TSOBufCap,
			Watchdog:   opts.Watchdog,
			NoFastPath: opts.NoFastPath,
		}
		var r *engine.Result
		if opts.NoFastPath {
			r = engine.Run(prog, c, ecfg)
		} else {
			r = pool.Run(prog, c, ecfg)
		}
		if c.div != nil {
			// The expansion replay stopped conforming: splitting below a
			// state the program does not reproduce would partition a
			// wrong tree. Freeze the prefix as a leaf; the worker that
			// replays it runs the retry-then-quarantine protocol.
			pfx.leaf = true
			continue
		}
		if r.Outcome != engine.Aborted || c.ended || len(c.alts) == 0 {
			// The execution finished (terminated, deadlocked, violated,
			// diverged, or wedged) or stopped branching during the
			// replay: the prefix is a complete execution by itself. A
			// worker will run and classify it.
			pfx.leaf = true
			continue
		}
		children := make([]*prefixNode, len(c.alts))
		for k, a := range c.alts {
			sched := make([]engine.Alt, len(pfx.sched)+1)
			copy(sched, pfx.sched)
			sched[len(pfx.sched)] = a
			children[k] = &prefixNode{sched: sched}
			if len(c.freshOps) == len(c.alts) {
				digs := make([]engine.StepDigest, len(pfx.digs)+1)
				copy(digs, pfx.digs)
				digs[len(pfx.digs)] = engine.StepDigest{
					Hash: c.freshDig, Tid: a.Tid, Op: c.freshOps[k],
				}
				children[k].digs = digs
			}
		}
		// Replace the parent with its children in place, preserving the
		// frontier's DFS order (children are in candidate order).
		tail := append(children, frontier[idx+1:]...)
		frontier = append(frontier[:idx], tail...)
	}
	return frontier
}

// exploreSubtree runs the sequential searcher over the subtree below
// one prefix: the prefix decisions become single-alternative stack
// frames, so backtracking exhausts exactly the subtree.
func exploreSubtree(prog func(*engine.T), opts Options, pfx *prefixNode,
	deadline time.Time, cancelled func() bool) *Report {
	s := &searcher{prog: prog, opts: opts, start: time.Now(),
		deadline: deadline, cancelled: cancelled}
	for i, a := range pfx.sched {
		fr := frame{alts: []engine.Alt{a}}
		if i < len(pfx.digs) {
			d := pfx.digs[i]
			fr.dig = d.Hash
			fr.hasDig = !opts.DisableConformance
			fr.ops = []engine.OpInfo{d.Op}
		}
		s.stack = append(s.stack, fr)
	}
	s.fixed = len(s.stack)
	s.run()
	s.pool.Close()
	s.report.Elapsed = time.Since(s.start)
	return &s.report
}

// prefixQueue hands frontier indices to workers: fresh indices in DFS
// order, crashed indices requeued for one retry.
type prefixQueue struct {
	mu       sync.Mutex
	next     int
	n        int
	requeued []int
	attempts map[int]int // failed attempts per index
}

// get claims the next prefix below the cancellation horizon, retries
// first. ok=false means no work remains for this worker. A requeued
// index is only ever produced here after its failing attempt returned,
// so attempts never run concurrently with themselves.
func (q *prefixQueue) get(stopBefore *atomic.Int64) (idx, attempt int, ok bool) {
	horizon := int(stopBefore.Load())
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.requeued) > 0 {
		i := q.requeued[0]
		q.requeued = q.requeued[1:]
		if i >= horizon {
			continue // the merge already gave up on this subtree
		}
		return i, q.attempts[i] + 1, true
	}
	if q.next < q.n && q.next < horizon {
		i := q.next
		q.next++
		return i, 1, true
	}
	return 0, 0, false
}

// fail records a crashed attempt. It reports true when the index was
// requeued for another try, false when the retry budget is spent.
func (q *prefixQueue) fail(i int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.attempts[i]++
	if q.attempts[i] >= workerAttempts {
		return false
	}
	q.requeued = append(q.requeued, i)
	return true
}

// runPrefixUnit explores one frontier subtree under recover: a crash
// anywhere below becomes a recorded WorkerFailure, not a process abort.
func runPrefixUnit(prog func(*engine.T), opts Options, pfx *prefixNode,
	deadline time.Time, i, attempt int, stopBefore *atomic.Int64,
	fails *failSink) (rep *Report, failed bool) {
	defer func() {
		if p := recover(); p != nil {
			fails.add(WorkerFailure{Mode: "prefix", Unit: int64(i), Attempt: attempt,
				Panic: fmt.Sprint(p), Stack: string(debug.Stack())})
			observeWorkerRetry(&opts)
			rep, failed = nil, true
		}
	}()
	if h := workerFaultHook; h != nil {
		h("prefix", int64(i))
	}
	return exploreSubtree(prog, opts, pfx, deadline,
		func() bool { return int64(i) >= stopBefore.Load() }), false
}

// explorePrefix runs the systematic strategies over a shared,
// DFS-ordered prefix queue with an order-preserving merge.
func explorePrefix(prog func(*engine.T), opts Options) *Report {
	p := opts.Parallelism
	start := time.Now()
	var deadline time.Time
	if opts.TimeLimit > 0 {
		deadline = start.Add(opts.TimeLimit)
	}

	rep := &Report{}
	var prevElapsed time.Duration
	var prefixes []*prefixNode
	merged := 0
	allExhausted := true
	if ck := opts.Resume; ck != nil {
		applyCheckpoint(rep, ck)
		prevElapsed = time.Duration(ck.Counters.ElapsedNS)
		merged = ck.Prefix.Merged
		allExhausted = ck.Prefix.AllExhausted
		observeResume(&opts, ck)
		// The saved frontier is authoritative: prefixes below Merged
		// are done; the rest are re-queued (results that were in
		// flight at checkpoint time are recomputed).
		prefixes = make([]*prefixNode, len(ck.Prefix.Frontier))
		for i, sp := range ck.Prefix.Frontier {
			prefixes[i] = &prefixNode{
				sched: append([]engine.Alt(nil), sp.Sched...),
				digs:  append([]engine.StepDigest(nil), sp.Digs...),
				leaf:  sp.Leaf,
			}
		}
	} else {
		prefixes = splitFrontier(prog, opts, prefixTargetFactor*p)
	}
	fails := &failSink{list: rep.WorkerFailures}

	// Workers claim prefixes in frontier order; stopBefore is the
	// merge's cancellation horizon — prefixes at or beyond it will be
	// discarded, so claiming or continuing them is wasted work.
	queue := &prefixQueue{next: merged, n: len(prefixes), attempts: map[int]int{}}
	var stopBefore atomic.Int64
	stopBefore.Store(int64(len(prefixes)))

	type prefixResult struct {
		idx int
		rep *Report // nil: skipped after repeated worker crashes
	}
	// Each prefix produces at most one result (a crash that will be
	// retried produces none), so this capacity makes sends nonblocking
	// even when the merge has already stopped.
	results := make(chan prefixResult, len(prefixes))
	var wg sync.WaitGroup
	subOpts := opts
	subOpts.Parallelism = 1
	subOpts.TimeLimit = 0       // the shared deadline is passed explicitly
	subOpts.CheckpointPath = "" // the driver checkpoints at merge granularity
	subOpts.Resume = nil
	subOpts.Stop = nil // cancellation reaches subtrees via stopBefore
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, attempt, ok := queue.get(&stopBefore)
				if !ok {
					return
				}
				r, failed := runPrefixUnit(prog, subOpts, prefixes[i], deadline,
					i, attempt, &stopBefore, fails)
				if failed {
					if queue.fail(i) {
						continue // requeued for one retry
					}
					results <- prefixResult{i, nil}
					continue
				}
				results <- prefixResult{i, r}
			}
		}()
	}

	// Ordered merge: process subtree reports strictly in frontier
	// order, mirroring the sequential classify/stop semantics at
	// subtree granularity. Everything after a stop is discarded, so
	// the merged report is independent of worker timing.
	lastCkpt := start
	done := false
	writeCkpt := func(d bool) {
		if opts.CheckpointPath == "" {
			return
		}
		rep.WorkerFailures = fails.sorted()
		ck := buildCheckpoint(&opts, rep, prevElapsed+time.Since(start), d)
		st := &PrefixState{Merged: merged, AllExhausted: allExhausted,
			Frontier: make([]SavedPrefix, len(prefixes))}
		for i, pfx := range prefixes {
			st.Frontier[i] = SavedPrefix{Sched: pfx.sched, Digs: pfx.digs, Leaf: pfx.leaf}
		}
		ck.Prefix = st
		if err := ck.WriteFile(opts.CheckpointPath); err != nil {
			if rep.CheckpointError == "" {
				rep.CheckpointError = err.Error()
			}
			return
		}
		observeCheckpoint(&opts, rep.Executions)
	}

	pending := make(map[int]*Report)
	stopped := false
merge:
	for merged < len(prefixes) {
		if opts.MaxExecutions > 0 && rep.Executions >= opts.MaxExecutions {
			rep.ExecBounded = true
			stopped = true
			break
		}
		r, ok := pending[merged]
		if !ok {
			if opts.Stop != nil {
				select {
				case pr := <-results:
					pending[pr.idx] = pr.rep
				case <-opts.Stop:
					rep.Interrupted = true
					stopped = true
					break merge
				}
			} else {
				pr := <-results
				pending[pr.idx] = pr.rep
			}
			continue
		}
		delete(pending, merged)
		counted, st, dn := mergeSubtree(&opts, rep, r, &allExhausted)
		if counted {
			merged++
			if r != nil {
				if m := opts.Metrics; m != nil {
					m.Frontier.Set(int64(len(prefixes) - merged)) // unmerged prefixes
				}
			}
		}
		if st {
			stopped = true
			done = done || dn
			break
		}
		if r == nil {
			continue
		}
		if opts.CheckpointPath != "" {
			iv := opts.CheckpointInterval
			if iv <= 0 {
				iv = defaultCheckpointInterval
			}
			if time.Since(lastCkpt) >= iv {
				lastCkpt = time.Now()
				writeCkpt(false)
			}
		}
	}
	stopBefore.Store(int64(merged))
	wg.Wait()
	close(results)

	rep.Exhausted = !stopped && merged == len(prefixes) && allExhausted
	if rep.Exhausted {
		done = true
	}
	rep.WorkerFailures = fails.sorted()
	rep.Elapsed = prevElapsed + time.Since(start)
	writeCkpt(done)
	return rep
}

// mergeSubtree folds one frontier subtree report into rep, mirroring
// the sequential classify/stop semantics at subtree granularity. It is
// the single merge definition shared by the in-process prefix driver
// (explorePrefix) and the distributed coordinator (ShardMerger), which
// is what makes the two byte-identical.
//
// r == nil records a subtree abandoned after repeated worker crashes:
// the coverage loss is explicit (Skipped) and the tree can no longer be
// called exhausted.
//
// Returns:
//   - counted: the subtree was consumed and the merge index advances.
//     False only for a budget-cut subtree, whose partial coverage is
//     discarded so a resume re-explores it in full.
//   - stopped: no further subtree may be merged.
//   - done: the stop is terminal (a finding), not a budget cut.
func mergeSubtree(opts *Options, rep *Report, r *Report, allExhausted *bool) (counted, stopped, done bool) {
	if r != nil && (r.ExecBounded || r.TimedOut) {
		// The subtree itself was cut short by a budget, so its
		// report covers only part of the prefix. Merging it would
		// mark the prefix complete and a resume would skip the
		// unexplored tail; discard the partial work and stop at the
		// last fully merged prefix instead.
		rep.ExecBounded = rep.ExecBounded || r.ExecBounded
		rep.TimedOut = rep.TimedOut || r.TimedOut
		return false, true, false
	}
	if r == nil {
		rep.Skipped++
		*allExhausted = false
		return true, false, false
	}
	if r.FirstBug != nil && rep.FirstBug == nil {
		rep.FirstBug = r.FirstBug
		rep.FirstBugExecution = rep.Executions + r.FirstBugExecution
	}
	if r.Divergence != nil && rep.Divergence == nil {
		rep.Divergence = r.Divergence
		rep.DivergenceExecution = rep.Executions + r.DivergenceExecution
	}
	if r.FirstWedge != nil && rep.FirstWedge == nil {
		rep.FirstWedge = r.FirstWedge
		rep.FirstWedgeExecution = rep.Executions + r.FirstWedgeExecution
	}
	rep.Executions += r.Executions
	rep.TotalSteps += r.TotalSteps
	rep.Yields += r.Yields
	rep.EdgeAdds += r.EdgeAdds
	rep.EdgeErases += r.EdgeErases
	rep.FairBlocked += r.FairBlocked
	rep.BufferedStores += r.BufferedStores
	rep.Flushes += r.Flushes
	rep.Fences += r.Fences
	rep.Forwards += r.Forwards
	if r.MaxDepth > rep.MaxDepth {
		rep.MaxDepth = r.MaxDepth
	}
	rep.NonTerminating += r.NonTerminating
	rep.PrunedVisited += r.PrunedVisited
	rep.PrunedSleep += r.PrunedSleep
	rep.Deadlocks += r.Deadlocks
	rep.Violations += r.Violations
	rep.Wedges += r.Wedges
	// Quarantined subtrees merge in frontier order, so the
	// nondeterminism reports are deterministic regardless of worker
	// timing.
	rep.Quarantined += r.Quarantined
	rep.Nondeterminism = append(rep.Nondeterminism, r.Nondeterminism...)
	if !r.Exhausted {
		*allExhausted = false
	}
	// Stop conditions, in the order the subtree searcher hit them.
	if r.FirstBug != nil && !opts.ContinueAfterViolation {
		stopped, done = true, true
	}
	if r.Divergence != nil && !opts.ContinueAfterDivergence {
		stopped, done = true, true
	}
	if r.FirstWedge != nil && !opts.ContinueAfterViolation {
		stopped, done = true, true
	}
	return true, stopped, done
}
