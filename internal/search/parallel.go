package search

import (
	"sync"
	"sync/atomic"
	"time"

	"fairmc/internal/engine"
	"fairmc/internal/rng"
)

// This file implements parallel exploration. Stateless model checking
// is embarrassingly parallel — every execution is an independent replay from the initial
// state — so the searcher can run on P workers, each owning its own
// engine.Run instance, without any shared mutable program state. Two
// sharding modes cover the two kinds of search:
//
//   - Stride mode (RandomWalk, PCT): execution indices are
//     stride-partitioned — worker w runs executions w+1, w+1+P,
//     w+1+2P, … with the sequential per-index seeding
//     rng.Mix(Seed, index), so the set of explored schedules is
//     identical to the sequential run for any P. Workers proceed in
//     rounds of P×strideBatch indices; rounds are merged in index
//     order, and stop conditions (first bug, divergence, execution
//     budget) are evaluated during the merge exactly as the
//     sequential classify would, so for budgets expressed in
//     executions the merged Report is byte-identical to the
//     sequential one (wall-clock TimeLimit runs stop at a round
//     boundary instead of mid-round).
//
//   - Prefix mode (systematic DFS / context-bounded search): the
//     schedule tree is split at shallow choice points into a
//     DFS-ordered frontier of schedule prefixes that partition the
//     tree (the CHESS distributed-search shape). Workers claim
//     prefixes from a shared queue, replay the prefix, and run the
//     ordinary sequential DFS over the subtree below it. Subtree
//     reports are merged in frontier (= sequential DFS) order;
//     because the frontier partitions the tree and sequential DFS
//     visits the subtrees contiguously in the same order, the merged
//     counters, FirstBug, and FirstBugExecution are byte-identical to
//     the sequential search whenever the stop condition is a finding
//     or exhaustion (MaxExecutions is quantized to prefix
//     granularity, TimeLimit to wall-clock as always).
//
// Selecting FirstBug/Divergence by smallest execution index (stride
// mode) or smallest DFS position (prefix mode) — never by wall-clock
// arrival — is what makes the output reproducible regardless of
// worker timing. The fair scheduler needs no cross-worker treatment:
// Algorithm 1's P/E/D/S state lives inside each worker's engine and
// never outlives one execution.

const (
	// strideBatch is the number of executions each stride worker runs
	// per round. Larger batches amortize the round barrier; smaller
	// batches stop sooner after a finding. One round costs P×strideBatch
	// executions of overshoot in the worst case.
	strideBatch = 32
	// prefixTargetFactor sizes the frontier at prefixTargetFactor×P
	// prefixes, bounding idle tail time when subtree sizes are skewed.
	prefixTargetFactor = 8
)

// exploreParallel dispatches to the sharding mode matching the search
// strategy. Callers have already validated the options.
func exploreParallel(prog func(*engine.T), opts Options) *Report {
	if opts.RandomWalk || opts.PCT {
		return exploreStride(prog, opts)
	}
	return explorePrefix(prog, opts)
}

// reproduceStandalone is searcher.reproduce without a searcher: re-run
// r's schedule with trace recording to produce a self-contained repro.
func reproduceStandalone(prog func(*engine.T), opts Options, r *engine.Result) *engine.Result {
	if len(r.Trace) > 0 {
		return r
	}
	rr := engine.Run(prog, &engine.ReplayChooser{Schedule: r.Schedule, Strict: true},
		engine.Config{
			Fair:        opts.Fair,
			FairK:       opts.FairK,
			MaxSteps:    opts.MaxSteps,
			RecordTrace: true,
		})
	if rr.Outcome != r.Outcome {
		panic("search: replay diverged from original outcome: " + rr.Outcome.String() +
			" != " + r.Outcome.String())
	}
	return rr
}

// ---------------------------------------------------------------------
// Stride mode
// ---------------------------------------------------------------------

// strideRec is one execution's accounting, produced by a worker and
// consumed by the in-order merge.
type strideRec struct {
	steps   int64
	outcome engine.Outcome
	repro   *engine.Result // full repro for the worker's first notable event, when still wanted
}

// strideChooser replays the sequential searcher's random-mode choice
// stream for one execution index.
type strideChooser struct {
	rand *rng.Rand
	pct  *pctState
}

func newStrideChooser(opts *Options, index int64) *strideChooser {
	c := &strideChooser{rand: rng.New(rng.Mix(opts.Seed, uint64(index)))}
	if opts.PCT {
		depth := opts.PCTDepth
		if depth <= 0 {
			depth = 3
		}
		horizon := opts.MaxSteps
		if horizon <= 0 {
			horizon = engine.DefaultMaxSteps
		}
		c.pct = newPCTState(depth, horizon, c.rand)
	}
	return c
}

func (c *strideChooser) Choose(ctx *engine.ChooseContext) (engine.Alt, bool) {
	if c.pct != nil {
		return c.pct.choose(ctx), true
	}
	return ctx.Cands[c.rand.Intn(len(ctx.Cands))], true
}

// exploreStride runs the random strategies with stride-partitioned
// execution indices and an index-ordered merge.
func exploreStride(prog func(*engine.T), opts Options) *Report {
	p := opts.Parallelism
	start := time.Now()
	var deadline time.Time
	if opts.TimeLimit > 0 {
		deadline = start.Add(opts.TimeLimit)
	}
	rep := &Report{}
	roundSize := int64(p) * strideBatch
	recs := make([][]strideRec, p)
	// needBugRepro/needDivRepro tell workers whether the merged report
	// still lacks a repro; they are written only between rounds.
	needBugRepro, needDivRepro := true, opts.Fair

	cfg := engine.Config{
		Fair:        opts.Fair,
		FairK:       opts.FairK,
		MaxSteps:    opts.MaxSteps,
		RecordTrace: opts.RecordTrace,
	}

	for base := int64(0); ; base += roundSize {
		if opts.MaxExecutions > 0 && base >= opts.MaxExecutions {
			rep.ExecBounded = true
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			rep.TimedOut = true
			break
		}
		hi := base + roundSize
		if opts.MaxExecutions > 0 && hi > opts.MaxExecutions {
			hi = opts.MaxExecutions
		}
		var wg sync.WaitGroup
		for w := 0; w < p; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				recs[w] = strideWorker(prog, &opts, cfg, recs[w][:0], base, hi, w,
					needBugRepro, needDivRepro)
			}(w)
		}
		wg.Wait()

		// Merge the round in global execution-index order, applying the
		// sequential classify semantics record by record.
		stop := false
		for i := base + 1; i <= hi && !stop; i++ {
			r := recs[int((i-1)%int64(p))][(i-1-base)/int64(p)]
			rep.Executions++
			rep.TotalSteps += r.steps
			if r.steps > rep.MaxDepth {
				rep.MaxDepth = r.steps
			}
			switch r.outcome {
			case engine.Terminated:
			case engine.Deadlock, engine.Violation:
				if r.outcome == engine.Deadlock {
					rep.Deadlocks++
				} else {
					rep.Violations++
				}
				if rep.FirstBug == nil {
					rep.FirstBug = r.repro
					rep.FirstBugExecution = i
					needBugRepro = false
				}
				stop = !opts.ContinueAfterViolation
			case engine.Diverged:
				rep.NonTerminating++
				if opts.Fair {
					if rep.Divergence == nil {
						rep.Divergence = r.repro
						rep.DivergenceExecution = i
						needDivRepro = false
					}
					stop = !opts.ContinueAfterDivergence
				}
			default:
				panic("search: unexpected outcome in stride merge")
			}
		}
		if stop {
			break
		}
	}
	rep.Elapsed = time.Since(start)
	return rep
}

// strideWorker runs worker w's slice of round indices (base, hi] and
// records per-execution accounting. It reproduces at most one bug and
// one divergence — its first of each, which is the only candidate the
// ordered merge can select from this worker.
func strideWorker(prog func(*engine.T), opts *Options, cfg engine.Config,
	buf []strideRec, base, hi int64, w int, needBug, needDiv bool) []strideRec {
	p := int64(opts.Parallelism)
	for i := base + 1 + int64(w); i <= hi; i += p {
		r := engine.Run(prog, newStrideChooser(opts, i), cfg)
		rec := strideRec{steps: r.Steps, outcome: r.Outcome}
		switch r.Outcome {
		case engine.Deadlock, engine.Violation:
			if needBug {
				rec.repro = reproduceStandalone(prog, *opts, r)
				needBug = false
			}
		case engine.Diverged:
			if needDiv {
				rec.repro = reproduceStandalone(prog, *opts, r)
				needDiv = false
			}
		}
		buf = append(buf, rec)
	}
	return buf
}

// ---------------------------------------------------------------------
// Prefix mode
// ---------------------------------------------------------------------

// prefixNode is one schedule prefix of the frontier. The frontier is
// kept in DFS order and always partitions the schedule tree: every
// full execution extends exactly one frontier prefix.
type prefixNode struct {
	sched []engine.Alt
	// leaf marks a prefix whose replay ended (or hit the depth bound)
	// before reaching a fresh choice point: it cannot be split further.
	leaf bool
}

// expandChooser replays a prefix and captures the admissible
// alternatives at the first fresh choice point, applying exactly the
// sequential searcher's frontier filtering (preemption budget). It
// then aborts the execution: expansion runs are bookkeeping, not
// explored executions.
type expandChooser struct {
	opts        *Options
	sched       []engine.Alt
	pos         int
	preemptUsed int
	alts        []engine.Alt // captured fresh alternatives (owned copy)
	ended       bool         // depth bound reached before a fresh choice point
}

func (c *expandChooser) Choose(ctx *engine.ChooseContext) (engine.Alt, bool) {
	if c.pos < len(c.sched) {
		alt := c.sched[c.pos]
		c.pos++
		if err := altIn(alt, ctx.Cands); err != "" {
			panic("search: prefix replay divergence: " + err)
		}
		if ctx.IsPreemption(alt) {
			c.preemptUsed++
		}
		return alt, true
	}
	if c.opts.DepthBound > 0 && ctx.Step >= c.opts.DepthBound {
		// The sequential searcher stops branching here; the subtree
		// below is a single (random-tail or aborted) continuation.
		c.ended = true
		return engine.Alt{}, false
	}
	alts := ctx.Cands
	if c.opts.ContextBound >= 0 && c.preemptUsed >= c.opts.ContextBound {
		alts = nonPreempting(ctx)
		if len(alts) == 0 {
			panic("search: empty alternative set under context bound")
		}
	}
	c.alts = append([]engine.Alt(nil), alts...)
	return engine.Alt{}, false
}

// splitFrontier grows the root prefix into a DFS-ordered frontier of
// at least target prefixes (when the tree is wide enough), expanding
// the shallowest prefix first. Each expansion costs one partial
// replay; the total is capped so degenerate single-candidate chains
// terminate.
func splitFrontier(prog func(*engine.T), opts Options, target int) []*prefixNode {
	frontier := []*prefixNode{{}}
	replays := 0
	replayCap := 8*target + 64
	for len(frontier) < target && replays < replayCap {
		// Expand the shallowest non-leaf prefix; ties break toward the
		// DFS-earliest so expansion order is deterministic.
		idx := -1
		for j, pfx := range frontier {
			if !pfx.leaf && (idx < 0 || len(pfx.sched) < len(frontier[idx].sched)) {
				idx = j
			}
		}
		if idx < 0 {
			break
		}
		pfx := frontier[idx]
		replays++
		c := &expandChooser{opts: &opts, sched: pfx.sched}
		r := engine.Run(prog, c, engine.Config{
			Fair:     opts.Fair,
			FairK:    opts.FairK,
			MaxSteps: opts.MaxSteps,
		})
		if r.Outcome != engine.Aborted || c.ended || len(c.alts) == 0 {
			// The execution finished (terminated, deadlocked, violated,
			// or diverged) or stopped branching during the replay: the
			// prefix is a complete execution by itself. A worker will
			// run and classify it.
			pfx.leaf = true
			continue
		}
		children := make([]*prefixNode, len(c.alts))
		for k, a := range c.alts {
			sched := make([]engine.Alt, len(pfx.sched)+1)
			copy(sched, pfx.sched)
			sched[len(pfx.sched)] = a
			children[k] = &prefixNode{sched: sched}
		}
		// Replace the parent with its children in place, preserving the
		// frontier's DFS order (children are in candidate order).
		tail := append(children, frontier[idx+1:]...)
		frontier = append(frontier[:idx], tail...)
	}
	return frontier
}

// exploreSubtree runs the sequential searcher over the subtree below
// one prefix: the prefix decisions become single-alternative stack
// frames, so backtracking exhausts exactly the subtree.
func exploreSubtree(prog func(*engine.T), opts Options, pfx *prefixNode,
	deadline time.Time, cancelled func() bool) *Report {
	s := &searcher{prog: prog, opts: opts, start: time.Now(),
		deadline: deadline, cancelled: cancelled}
	for _, a := range pfx.sched {
		s.stack = append(s.stack, frame{alts: []engine.Alt{a}})
	}
	s.fixed = len(s.stack)
	s.run()
	s.report.Elapsed = time.Since(s.start)
	return &s.report
}

// explorePrefix runs the systematic strategies over a shared,
// DFS-ordered prefix queue with an order-preserving merge.
func explorePrefix(prog func(*engine.T), opts Options) *Report {
	p := opts.Parallelism
	start := time.Now()
	var deadline time.Time
	if opts.TimeLimit > 0 {
		deadline = start.Add(opts.TimeLimit)
	}

	prefixes := splitFrontier(prog, opts, prefixTargetFactor*p)

	// Workers claim prefixes in frontier order; stopBefore is the
	// merge's cancellation horizon — prefixes at or beyond it will be
	// discarded, so claiming or continuing them is wasted work.
	var claim atomic.Int64
	var stopBefore atomic.Int64
	stopBefore.Store(int64(len(prefixes)))

	type prefixResult struct {
		idx int
		rep *Report
	}
	results := make(chan prefixResult, len(prefixes))
	var wg sync.WaitGroup
	subOpts := opts
	subOpts.Parallelism = 1
	subOpts.TimeLimit = 0 // the shared deadline is passed explicitly
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := claim.Add(1) - 1
				if i >= int64(len(prefixes)) || i >= stopBefore.Load() {
					return
				}
				rep := exploreSubtree(prog, subOpts, prefixes[i], deadline,
					func() bool { return i >= stopBefore.Load() })
				results <- prefixResult{int(i), rep}
			}
		}()
	}

	// Ordered merge: process subtree reports strictly in frontier
	// order, mirroring the sequential classify/stop semantics at
	// subtree granularity. Everything after a stop is discarded, so
	// the merged report is independent of worker timing.
	rep := &Report{}
	pending := make(map[int]*Report)
	merged := 0
	stopped := false
	allExhausted := true
	for merged < len(prefixes) {
		if opts.MaxExecutions > 0 && rep.Executions >= opts.MaxExecutions {
			rep.ExecBounded = true
			stopped = true
			break
		}
		r, ok := pending[merged]
		if !ok {
			pr := <-results
			pending[pr.idx] = pr.rep
			continue
		}
		delete(pending, merged)
		if r.FirstBug != nil && rep.FirstBug == nil {
			rep.FirstBug = r.FirstBug
			rep.FirstBugExecution = rep.Executions + r.FirstBugExecution
		}
		if r.Divergence != nil && rep.Divergence == nil {
			rep.Divergence = r.Divergence
			rep.DivergenceExecution = rep.Executions + r.DivergenceExecution
		}
		rep.Executions += r.Executions
		rep.TotalSteps += r.TotalSteps
		if r.MaxDepth > rep.MaxDepth {
			rep.MaxDepth = r.MaxDepth
		}
		rep.NonTerminating += r.NonTerminating
		rep.Deadlocks += r.Deadlocks
		rep.Violations += r.Violations
		if !r.Exhausted {
			allExhausted = false
		}
		merged++
		// Stop conditions, in the order the subtree searcher hit them.
		if r.FirstBug != nil && !opts.ContinueAfterViolation {
			stopped = true
		}
		if r.Divergence != nil && !opts.ContinueAfterDivergence {
			stopped = true
		}
		if r.TimedOut {
			rep.TimedOut = true
			stopped = true
		}
		if r.ExecBounded { // a single subtree exceeded MaxExecutions
			rep.ExecBounded = true
			stopped = true
		}
		if stopped {
			break
		}
	}
	stopBefore.Store(int64(merged))
	wg.Wait()
	close(results)

	rep.Exhausted = !stopped && merged == len(prefixes) && allExhausted
	rep.Elapsed = time.Since(start)
	return rep
}
