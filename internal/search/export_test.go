package search

// SetWorkerFaultHook installs (or, with nil, removes) the fault-
// injection hook run at the start of every parallel work unit. Test
// helper only; see workerFaultHook.
func SetWorkerFaultHook(h func(mode string, unit int64)) { workerFaultHook = h }
