package search

import (
	"fmt"

	"fairmc/internal/engine"
)

// This file is the search-level half of the nondeterminism defense
// (see internal/engine/conformance.go for the digest machinery):
//
//   - Divergence quarantine: when a prefix replay stops conforming to
//     the recorded digests, the searcher re-executes the prefix up to
//     Options.DivergenceRetries times (attempts are plain deterministic
//     re-runs — the per-execution seeding is reset identically each
//     time, so the attempt ordering itself is deterministic) and then
//     quarantines the subtree below the first divergent step: it is
//     counted in Report.Quarantined with a NondeterminismReport, and
//     the search moves on instead of exploring a wrong tree.
//
//   - Confirmation pass: after the search, each schedule-backed
//     finding (FirstBug, Divergence) is replayed Options.ConfirmRuns
//     times under a strict, digest-verified ReplayChooser and tagged
//     with a Reproducibility verdict, so a flaky finding is reported
//     but clearly marked. Wedges are excluded: the wedged step is
//     deliberately absent from the schedule, so they cannot be
//     replayed at all.

// defaultDivergenceRetries is the number of replay retries before a
// divergent prefix is quarantined, when Options.DivergenceRetries is 0.
const defaultDivergenceRetries = 2

// divergenceRetries resolves Options.DivergenceRetries: 0 means the
// default, negative means no retries.
func (o *Options) divergenceRetries() int {
	switch {
	case o.DivergenceRetries < 0:
		return 0
	case o.DivergenceRetries == 0:
		return defaultDivergenceRetries
	default:
		return o.DivergenceRetries
	}
}

// NondeterminismReport describes one quarantined subtree: a schedule
// prefix the program stopped conforming to.
type NondeterminismReport struct {
	// Prefix is the schedule prefix being replayed when the divergence
	// was detected, up to and including the first divergent step.
	Prefix []engine.Alt `json:"prefix"`
	// Step is the 0-based index of the first divergent step.
	Step int `json:"step"`
	// Want is the alternative the prefix asked for at Step.
	Want engine.Alt `json:"want"`
	// Expected and Observed are the conformance digests at Step: what
	// was recorded when the prefix was explored vs. what the final
	// replay attempt reached.
	Expected engine.StepDigest `json:"expected"`
	Observed engine.StepDigest `json:"observed"`
	// NotSchedulable marks the harder failure: Want was not among the
	// candidates at all on the final attempt.
	NotSchedulable bool `json:"notSchedulable,omitempty"`
	// Attempts is how many times the prefix was replayed (the original
	// replay plus retries) before being quarantined.
	Attempts int `json:"attempts"`
}

// String renders the divergence as the one-line summary the CLI and
// logs print.
func (n *NondeterminismReport) String() string {
	kind := "digest mismatch"
	if n.NotSchedulable {
		kind = fmt.Sprintf("%s not schedulable", n.Want)
	}
	return fmt.Sprintf("prefix of %d steps diverged at step %d (%s; expected %s, observed %s) after %d attempts",
		len(n.Prefix), n.Step, kind, n.Expected, n.Observed, n.Attempts)
}

// Reproducibility is the confirmation verdict of one finding: how many
// of the ConfirmRuns replay attempts reproduced it.
type Reproducibility struct {
	// Runs is the number of confirmation replays attempted.
	Runs int `json:"runs"`
	// Successes is how many of them reproduced the finding (conforming
	// replay reaching the same outcome).
	Successes int `json:"successes"`
	// FirstFailure describes the first non-reproducing replay, empty
	// when all runs succeeded.
	FirstFailure string `json:"firstFailure,omitempty"`
}

// Stable reports that every confirmation replay reproduced the
// finding.
func (r *Reproducibility) Stable() bool {
	return r != nil && r.Runs > 0 && r.Successes == r.Runs
}

// String renders the verdict as "stable (n/n)" or "flaky (k/n)".
func (r *Reproducibility) String() string {
	if r.Stable() {
		return fmt.Sprintf("stable (%d/%d)", r.Successes, r.Runs)
	}
	return fmt.Sprintf("flaky (%d/%d)", r.Successes, r.Runs)
}

// reproduceResult re-runs r's schedule with trace and digest recording
// to produce a self-contained repro. ok=false means the replay did not
// conform (or reached a different outcome): the program is
// nondeterministic under its own schedule, and the caller should keep
// the original result — the confirmation pass will mark it flaky.
func reproduceResult(prog func(*engine.T), opts *Options, r *engine.Result) (*engine.Result, bool) {
	ch := &engine.ReplayChooser{Schedule: r.Schedule, Strict: true}
	rr := engine.Run(prog, ch, engine.Config{
		Fair:          opts.Fair,
		FairK:         opts.FairK,
		MaxSteps:      opts.MaxSteps,
		MemModel:      opts.memModel(),
		TSOBufCap:     opts.TSOBufCap,
		RecordTrace:   true,
		RecordDigests: true,
		Watchdog:      opts.Watchdog,
		NoFastPath:    opts.NoFastPath,
	})
	if ch.Err != nil || ch.Div != nil || rr.Outcome != r.Outcome {
		return r, false
	}
	return rr, true
}

// confirmReport runs the post-search confirmation pass: every
// schedule-backed finding in rep is replayed ConfirmRuns times and
// tagged with its Reproducibility verdict.
func confirmReport(prog func(*engine.T), opts *Options, rep *Report) {
	n := opts.ConfirmRuns
	if n <= 0 {
		return
	}
	if rep.FirstBug != nil {
		rep.BugReproducibility = confirmResult(prog, opts, rep.FirstBug, n)
	}
	if rep.Divergence != nil {
		rep.DivergenceReproducibility = confirmResult(prog, opts, rep.Divergence, n)
	}
	// FirstWedge is deliberately unconfirmed: the wedged step is absent
	// from the schedule, so its replay reaches only the wedge-free
	// prefix and can neither confirm nor refute the wedge.
}

// confirmResult replays r's schedule n times under a strict,
// digest-verified ReplayChooser. A run succeeds when the replay
// conforms end to end and reaches r's outcome.
func confirmResult(prog func(*engine.T), opts *Options, r *engine.Result, n int) *Reproducibility {
	rep := &Reproducibility{Runs: n}
	for i := 0; i < n; i++ {
		ch := &engine.ReplayChooser{Schedule: r.Schedule, Digests: r.Digests, Strict: true}
		rr := engine.Run(prog, ch, engine.Config{
			Fair:       opts.Fair,
			FairK:      opts.FairK,
			MaxSteps:   opts.MaxSteps,
			MemModel:   opts.memModel(),
			TSOBufCap:  opts.TSOBufCap,
			Watchdog:   opts.Watchdog,
			NoFastPath: opts.NoFastPath,
		})
		var fail string
		switch {
		case ch.Div != nil:
			fail = ch.Div.Error()
		case ch.Err != nil:
			fail = ch.Err.Error()
		case rr.Outcome != r.Outcome:
			fail = fmt.Sprintf("replay reached outcome %s, finding was %s", rr.Outcome, r.Outcome)
		default:
			rep.Successes++
			continue
		}
		if rep.FirstFailure == "" {
			rep.FirstFailure = fmt.Sprintf("run %d/%d: %s", i+1, n, fail)
		}
	}
	return rep
}
